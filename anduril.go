// Package anduril is a Go reproduction of ANDURIL (SOSP 2024): a fault
// injection tool that efficiently reproduces a specific fault-induced
// failure in a distributed system, rather than hunting for new bugs.
//
// Given the four inputs of the paper's problem statement — the target
// system's code, a production failure log, a driving workload, and a
// failure oracle — Reproduce searches the space of (fault site, dynamic
// occurrence) pairs for a root-cause fault whose injection satisfies the
// oracle, using a static causal graph plus feedback from each unsuccessful
// injection round.
//
// The package is a facade over the building blocks in internal/: the
// discrete-event simulation substrate, the five miniature target systems,
// the static analyzer, and the explorer. A minimal session looks like:
//
//	target, _ := anduril.Dataset("f17") // HB-25905, the paper's motivating example
//	report := anduril.Reproduce(target, anduril.Options{})
//	if report.Reproduced {
//		fmt.Println(anduril.Script(report)) // deterministic reproduction plan
//	}
//
// Custom targets are assembled with NewTarget from any workload, oracle
// and failure log produced against the simulated cluster substrate.
package anduril

import (
	"fmt"

	"anduril/internal/analysis"
	"anduril/internal/cluster"
	"anduril/internal/core"
	"anduril/internal/des"
	"anduril/internal/failures"
	"anduril/internal/inject"
	"anduril/internal/logging"
	"anduril/internal/oracle"
)

// Target aliases the explorer's target: one failure-reproduction problem.
type Target = core.Target

// Options aliases the explorer's options.
type Options = core.Options

// Report aliases the explorer's reproduction report.
type Report = core.Report

// Strategy selects the exploration algorithm.
type Strategy = core.Strategy

// Oracle is a failure oracle (see the oracle helpers re-exported below).
type Oracle = oracle.Oracle

// Workload drives the simulated system for one round.
type Workload = cluster.Workload

// Instance names a dynamic fault candidate: site and occurrence.
type Instance = inject.Instance

// Exploration strategies: FullFeedback is complete ANDURIL; the rest are
// the paper's ablation variants (§8.3) and comparison baselines (§8.4).
const (
	FullFeedback      = core.FullFeedback
	Exhaustive        = core.Exhaustive
	SiteDistance      = core.SiteDistance
	SiteDistanceLimit = core.SiteDistanceLimit
	SiteFeedback      = core.SiteFeedback
	MultiplyFeedback  = core.MultiplyFeedback
	FATE              = core.FATE
	CrashTuner        = core.CrashTuner
	StackTrace        = core.StackTrace
	Random            = core.Random
)

// Fault classes for Options.FaultClasses / Target.FaultClasses: error-return
// sites (the paper's space), environment faults (crash/restart,
// partition/heal, message drop/delay), combined-fault pairs (site×site
// and site×env, for failures no single fault triggers), and partial
// failures (short writes, mid-append ENOSPC, torn renames, duplicated
// deliveries, interrupted sends — errno-level faults that leave state a
// clean all-or-nothing fault cannot).
const (
	ClassSite    = core.ClassSite
	ClassEnv     = core.ClassEnv
	ClassPair    = core.ClassPair
	ClassPartial = core.ClassPartial
)

// ValidFaultClass reports whether a fault-class name is recognized.
func ValidFaultClass(c string) bool { return core.ValidFaultClass(c) }

// Addressing selects how injection plans name dynamic fault instances:
// AddrOccurrence (the paper's per-site global reach counter, the default)
// or AddrPath (distributed execution indexing — an instance is named by
// its canonical call path like "client.put>coord.write[2]>store.persist#1",
// which stays pinned to the same logical point across interleavings).
type Addressing = core.Addressing

// Addressing modes for Options.Addressing.
const (
	AddrOccurrence = core.AddrOccurrence
	AddrPath       = core.AddrPath
)

// ValidAddressing reports whether an addressing-mode name is recognized
// ("" selects the default occurrence mode).
func ValidAddressing(a string) bool { return core.ValidAddressing(a) }

// Strategies lists every registered strategy in registration order (the
// built-ins follow Table 2 column order).
func Strategies() []Strategy { return core.Strategies() }

// StrategyRegistered reports whether a strategy name is registered.
func StrategyRegistered(name Strategy) bool { return core.StrategyRegistered(name) }

// Explorer is a pluggable exploration strategy; see RegisterStrategy.
type Explorer = core.Explorer

// Search is the prepared search surface handed to an Explorer.
type Search = core.Search

// QueueFunc adapts a fixed-queue enumeration into an Explorer.
type QueueFunc = core.QueueFunc

// RegisterStrategy registers a custom Explorer under a new strategy name;
// it then works everywhere a built-in strategy does (Options.Strategy, the
// eval tables, the CLIs). Call it from an init function.
func RegisterStrategy(name Strategy, impl Explorer) { core.RegisterStrategy(name, impl) }

// Reproduce runs the explorer until the oracle is satisfied, the fault
// space is exhausted, or the round cap is hit (workflow steps 1–5 of §3).
func Reproduce(t *Target, opts Options) *Report {
	return core.Reproduce(t, opts)
}

// Resume continues an interrupted search from a checkpoint file written
// by a previous run with Options.Checkpoint set. The target, strategy and
// seed must match the checkpointed run; the resumed search then produces
// the same report (and continues the same trace stream) as an
// uninterrupted run.
func Resume(t *Target, opts Options, path string) (*Report, error) {
	return core.Resume(t, opts, path)
}

// Verify deterministically replays a reproduction script and reports
// whether the oracle is satisfied.
func Verify(t *Target, script Instance, seed int64) bool {
	return core.Verify(t, script, seed)
}

// IterReport is the outcome of an iterative multi-fault reproduction.
type IterReport = core.IterReport

// ReproduceIterative extends the single-fault workflow to failures caused
// by multiple causally-independent faults (the paper's §6 limitation 2,
// automated per the iterative usage §3 describes): each failed pass bakes
// the closest partial fault into the workload and searches for the next.
func ReproduceIterative(t *Target, opts Options, maxFaults int) *IterReport {
	return core.ReproduceIterative(t, opts, maxFaults)
}

// VerifyMulti deterministically replays a multi-fault script.
func VerifyMulti(t *Target, scripts []Instance, seed int64) bool {
	return core.VerifyMulti(t, scripts, seed)
}

// Script renders a report's deterministic reproduction plan (step 4.a).
// Combined-fault scripts list both member faults; path-addressed scripts
// show the canonical call path instead of the bare occurrence counter.
func Script(r *Report) string {
	if r == nil || !r.Reproduced || r.Script == nil {
		return "no reproduction script: the failure was not reproduced"
	}
	if a, b, ok := inject.PairMembers(*r.Script); ok {
		return fmt.Sprintf("inject %s as a fault pair: %s and %s (found in %d rounds)",
			r.Target, memberRef(a), memberRef(b), r.Rounds)
	}
	if r.Script.Path != "" {
		return fmt.Sprintf("inject %s at path %s (found in %d rounds)",
			r.Target, r.Script.Path, r.Rounds)
	}
	return fmt.Sprintf("inject %s at site %s, dynamic occurrence %d (found in %d rounds)",
		r.Target, r.Script.Site, r.Script.Occurrence, r.Rounds)
}

// memberRef renders one pair member for Script.
func memberRef(m Instance) string {
	if m.Path != "" {
		return m.Path
	}
	return fmt.Sprintf("%s#%d", m.Site, m.Occurrence)
}

// Dataset returns one of the dataset failures (f1..f22 mirror the paper's
// 22 real-world issues; f23..f25 are env-rooted — crash, partition,
// message delay; f26..f29 are anti-entropy failures of the Dynamo-style
// dyn target; f30..f31 are combined-fault failures that reproduce only
// under a pair of faults; f32..f34 are partial-failure failures — torn
// rename, short write, duplicated delivery — that no clean fault
// reproduces) by id or issue id like "HB-25905", as a ready-to-reproduce
// target.
func Dataset(id string) (*Target, error) {
	s, ok := failures.ByID(id)
	if !ok {
		return nil, fmt.Errorf("anduril: no dataset failure %q", id)
	}
	return s.BuildTarget()
}

// DatasetIDs lists the dataset failures in order.
func DatasetIDs() []string {
	var out []string
	for _, s := range failures.All() {
		out = append(out, s.ID)
	}
	return out
}

// DatasetInfo describes one dataset entry.
type DatasetInfo struct {
	ID          string
	Issue       string
	System      string
	Description string
}

// DatasetCatalog lists id, issue, system and description for every entry.
func DatasetCatalog() []DatasetInfo {
	var out []DatasetInfo
	for _, s := range failures.All() {
		out = append(out, DatasetInfo{ID: s.ID, Issue: s.Issue, System: s.System, Description: s.Description})
	}
	return out
}

// NewTarget assembles a custom reproduction target from user-provided
// parts. srcDirs are the Go source directories of the target system (for
// the static causal graph); failureLog is the production log text.
func NewTarget(id string, workload Workload, horizon des.Time, orc Oracle, failureLogText string, srcDirs []string) (*Target, error) {
	an, err := analysis.AnalyzePackagesCached(srcDirs)
	if err != nil {
		return nil, err
	}
	return &Target{
		ID:         id,
		Workload:   workload,
		Horizon:    horizon,
		Oracle:     orc,
		FailureLog: logging.Parse(failureLogText),
		Analysis:   an,
	}, nil
}

// Oracle helpers, re-exported for building custom targets.
var (
	LogContains      = oracle.LogContains
	LogContainsExact = oracle.LogContainsExact
	ThreadStuck      = oracle.ThreadStuck
	FileMissing      = oracle.FileMissing
	FileExists       = oracle.FileExists
	OracleAnd        = oracle.And
	OracleOr         = oracle.Or
	OracleNot        = oracle.Not
)
