package anduril

import (
	"strings"
	"testing"

	"anduril/internal/cluster"
	"anduril/internal/inject"
	"anduril/internal/sys/zk"
)

func TestDatasetLookup(t *testing.T) {
	ids := DatasetIDs()
	if len(ids) != 34 {
		t.Fatalf("dataset size: %d", len(ids))
	}
	if ids[0] != "f1" || ids[21] != "f22" || ids[24] != "f25" || ids[30] != "f31" || ids[33] != "f34" {
		t.Fatalf("dataset order: %v", ids)
	}
	if _, err := Dataset("f17"); err != nil {
		t.Fatal(err)
	}
	if _, err := Dataset("HB-25905"); err != nil {
		t.Fatal(err)
	}
	if _, err := Dataset("f99"); err == nil {
		t.Fatal("bogus id accepted")
	}
}

func TestDatasetCatalog(t *testing.T) {
	cat := DatasetCatalog()
	if len(cat) != 34 {
		t.Fatalf("catalog size: %d", len(cat))
	}
	systems := map[string]int{}
	for _, c := range cat {
		systems[c.System]++
		if c.Description == "" || c.Issue == "" {
			t.Fatalf("incomplete entry: %+v", c)
		}
	}
	// The paper's 22 site-rooted failures plus the three env-rooted ones
	// (f23 zk, f24 mq, f25 dfs), the four dyn anti-entropy ones, the two
	// combined-fault ones (f30 dyn, f31 dfs), and the three
	// partial-failure ones (f32 dfs, f33 zk, f34 mq).
	want := map[string]int{"zk": 6, "dfs": 10, "tablestore": 6, "mq": 5, "kvstore": 2, "dyn": 5}
	for sys, n := range want {
		if systems[sys] != n {
			t.Errorf("%s: %d scenarios, want %d", sys, systems[sys], n)
		}
	}
}

func TestReproduceAndVerify(t *testing.T) {
	target, err := Dataset("f1")
	if err != nil {
		t.Fatal(err)
	}
	report := Reproduce(target, Options{Seed: 1})
	if !report.Reproduced {
		t.Fatalf("f1 not reproduced in %d rounds", report.Rounds)
	}
	if !Verify(target, *report.Script, report.ScriptSeed) {
		t.Fatal("script does not verify")
	}
	s := Script(report)
	if !strings.Contains(s, report.Script.Site) {
		t.Fatalf("script rendering: %q", s)
	}
}

func TestScriptWithoutReproduction(t *testing.T) {
	if s := Script(&Report{}); !strings.Contains(s, "not reproduced") {
		t.Fatalf("script: %q", s)
	}
	if s := Script(nil); !strings.Contains(s, "not reproduced") {
		t.Fatalf("nil script: %q", s)
	}
}

func TestNewTargetCustom(t *testing.T) {
	// Build a custom target the way examples/walstuck does, against the zk
	// quorum workload and the f1 bug.
	orc := OracleAnd(
		LogContains("Severe unrecoverable error, exiting SyncRequestProcessor"),
		LogContains("timed out; server unavailable"),
	)
	prod := cluster.Execute(555,
		inject.Exact(inject.Instance{Site: "zk.sync.append-txn", Occurrence: 1}),
		false, zk.WorkloadQuorum, zk.Horizon)
	if !orc.Satisfied(prod) {
		t.Fatal("production incident not triggered")
	}
	target, err := NewTarget("custom-f1", zk.WorkloadQuorum, zk.Horizon, orc, prod.RenderLog(), []string{"internal/sys/zk"})
	if err != nil {
		t.Fatal(err)
	}
	report := Reproduce(target, Options{Seed: 2})
	if !report.Reproduced {
		t.Fatalf("custom target not reproduced in %d rounds", report.Rounds)
	}
	if report.Script.Site != "zk.sync.append-txn" {
		t.Fatalf("found %v, want zk.sync.append-txn", report.Script)
	}
}

func TestStrategiesExported(t *testing.T) {
	all := []Strategy{FullFeedback, Exhaustive, SiteDistance, SiteDistanceLimit,
		SiteFeedback, MultiplyFeedback, FATE, CrashTuner, StackTrace, Random}
	seen := map[Strategy]bool{}
	for _, s := range all {
		if s == "" || seen[s] {
			t.Fatalf("bad strategy constant %q", s)
		}
		seen[s] = true
	}
}
