package anduril

// The benchmarks in this file regenerate every table and figure of the
// paper's evaluation (§8 + appendix) and print them, so that
//
//	go test -bench=. -benchmem
//
// produces the full experimental record (see EXPERIMENTS.md for the
// measured-vs-paper comparison). Each benchmark also reports headline
// numbers as custom metrics: "reproduced" (failures reproduced) and
// "med_rounds" (median rounds to reproduction) where applicable.

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"anduril/internal/core"
	"anduril/internal/eval"
	"anduril/internal/failures"
)

// benchOpt leaves Workers at 0: experiment cells fan across one worker
// per CPU by default. Output is deterministic either way; see
// BenchmarkTable2EfficacyWorkers for the serial-vs-parallel comparison.
var benchOpt = eval.Options{Seed: 1, MaxRounds: 500}

var printOnce sync.Map

// emit prints a table once per benchmark name (b.N loops would repeat it).
func emit(name string, t *eval.Table) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", t.Render())
	}
}

func reproStats(t *eval.Table, roundCol int) (reproduced int, medRounds float64) {
	var rounds []int
	for _, row := range t.Rows {
		if roundCol >= len(row) || row[roundCol] == "-" {
			continue
		}
		if n, err := strconv.Atoi(row[roundCol]); err == nil {
			reproduced++
			rounds = append(rounds, n)
		}
	}
	if len(rounds) == 0 {
		return reproduced, 0
	}
	sort.Ints(rounds)
	return reproduced, float64(rounds[len(rounds)/2])
}

// BenchmarkTable1FaultSites regenerates Table 1 (systems and fault sites).
func BenchmarkTable1FaultSites(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.Table1FaultSites(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		emit("table1", t)
	}
}

// BenchmarkTable2Efficacy regenerates Table 2 (the headline result): every
// strategy against every failure.
func BenchmarkTable2Efficacy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.Table2Efficacy(benchOpt, nil)
		if err != nil {
			b.Fatal(err)
		}
		emit("table2", t)
		reproduced, med := reproStats(t, 1) // full-feedback columns
		b.ReportMetric(float64(reproduced), "reproduced")
		b.ReportMetric(med, "med_rounds")
	}
}

// BenchmarkTable2EfficacyWorkers regenerates Table 2 at different worker
// counts — the serial-vs-parallel wall-time comparison for the harness
// (the rendered content is identical; only wall time may differ).
func BenchmarkTable2EfficacyWorkers(b *testing.B) {
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	for _, j := range counts {
		opt := benchOpt
		opt.Workers = j
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.Table2Efficacy(opt, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3Sensitivity regenerates Table 3 (window size k and
// adjustment s sensitivity).
func BenchmarkTable3Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.Table3Sensitivity(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		emit("table3", t)
	}
}

// BenchmarkTable4Performance regenerates Table 4 (per-system explorer
// performance medians).
func BenchmarkTable4Performance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.Table4Performance(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		emit("table4", t)
	}
}

// BenchmarkTable5StackTrace regenerates appendix Table 5 (dataset plus the
// stacktrace-injector baseline).
func BenchmarkTable5StackTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.Table5Failures(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		emit("table5", t)
		reproduced, _ := reproStats(t, 2)
		b.ReportMetric(float64(reproduced), "reproduced")
	}
}

// BenchmarkTable6NewRootCauses regenerates appendix Table 6 (new root
// causes discovered while reproducing).
func BenchmarkTable6NewRootCauses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.Table6NewRootCauses(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		emit("table6", t)
		b.ReportMetric(float64(len(t.Rows)), "new_causes")
	}
}

// BenchmarkTable7StaticAnalysis regenerates appendix Table 7 (static
// analysis cost breakdown).
func BenchmarkTable7StaticAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.Table7StaticAnalysis(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		emit("table7", t)
	}
}

// BenchmarkTable8Runtime regenerates appendix Table 8 (per-failure runtime
// details).
func BenchmarkTable8Runtime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.Table8Runtime(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		emit("table8", t)
	}
}

// BenchmarkFigure6RankTrajectory regenerates Figure 6 (root-cause site
// rank across trials) for ZK-3006, whose window-1 trajectory is long
// enough to see the search traverse wrong candidates first.
func BenchmarkFigure6RankTrajectory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.Figure6RankTrajectory(benchOpt, "f4")
		if err != nil {
			b.Fatal(err)
		}
		emit("figure6", t)
		b.ReportMetric(float64(len(t.Rows)), "trials")
	}
}

// BenchmarkAblations evaluates every design-choice toggle of §5.1-§5.2.5
// over the whole dataset (see eval.AblationTable): min vs sum aggregation,
// log-distance vs order temporal priority, doubling vs fixed window, and
// per-thread vs global diff.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.AblationTable(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		emit("ablations", t)
	}
}

// BenchmarkFreeRun measures the cost of one workload round per system —
// the unit of every explorer trial.
func BenchmarkFreeRun(b *testing.B) {
	for _, id := range []string{"f1", "f5", "f17", "f18", "f21"} {
		s, _ := failures.ByID(id)
		b.Run(s.System, func(b *testing.B) {
			tgt, err := s.BuildTarget()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Reproduce(tgt, core.Options{Strategy: core.FullFeedback, Seed: int64(i), MaxRounds: 1})
			}
		})
	}
}

// BenchmarkReproduceMotivating measures an end-to-end reproduction of the
// motivating example (HB-25905).
func BenchmarkReproduceMotivating(b *testing.B) {
	s, _ := failures.ByID("f17")
	tgt, err := s.BuildTarget()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := core.Reproduce(tgt, core.Options{Strategy: core.FullFeedback, Seed: int64(i + 1), MaxRounds: 500})
		if !rep.Reproduced {
			b.Fatalf("iteration %d: not reproduced", i)
		}
	}
}

// BenchmarkReproduceSharedTarget drives concurrent Reproduce calls on ONE
// shared Target via b.RunParallel — the unit of work the parallel
// evaluation harness scales, and a standing check that a shared Target
// really is read-only under load (run with -race).
func BenchmarkReproduceSharedTarget(b *testing.B) {
	s, _ := failures.ByID("f17")
	tgt, err := s.BuildTarget()
	if err != nil {
		b.Fatal(err)
	}
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rep := core.Reproduce(tgt, core.Options{
				Strategy: core.FullFeedback, Seed: seed.Add(1), MaxRounds: 500,
			})
			if !rep.Reproduced {
				b.Fatal("not reproduced")
			}
		}
	})
}
