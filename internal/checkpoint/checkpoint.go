// Package checkpoint reads and writes crash-safe state files. A checkpoint
// is a versioned JSON envelope around an arbitrary payload:
//
//	{"kind":"explorer-search","version":1,"data":{...}}
//
// Save writes atomically — the payload goes to a temporary file in the
// destination directory, is synced, and is renamed over the target — so a
// process killed mid-write always leaves either the previous checkpoint or
// the new one on disk, never a torn file. Load validates the envelope
// (kind, version, payload presence) and returns an error for any malformed
// input; it must never panic, whatever bytes it is handed (the package's
// fuzz target enforces this).
//
// The explorer's search checkpoints (core.Options.Checkpoint) and the
// evaluation grid's per-cell reports (eval.Options.ResumeDir) are both
// stored in this envelope, each under its own kind.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// Envelope is the on-disk frame around a checkpoint payload.
type Envelope struct {
	Kind    string          `json:"kind"`
	Version int             `json:"version"`
	Data    json.RawMessage `json:"data"`
}

// Save atomically and durably writes data as a checkpoint of the given
// kind and version. The write is crash-safe: a temporary file next to path
// receives the full encoding first and is renamed over path only once
// synced, so a kill at any instant leaves the previous checkpoint
// readable. It is also power-loss-safe: the parent directory is fsynced
// after the rename, so once Save returns the new checkpoint — not merely
// one of the two — is what a post-crash mount sees.
func Save(path, kind string, version int, data any) error {
	raw, err := json.Marshal(data)
	if err != nil {
		return fmt.Errorf("checkpoint: encode %s payload: %w", kind, err)
	}
	env, err := json.Marshal(Envelope{Kind: kind, Version: version, Data: raw})
	if err != nil {
		return fmt.Errorf("checkpoint: encode %s envelope: %w", kind, err)
	}
	env = append(env, '\n')

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(env); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: write %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: sync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	// The rename is atomic but not yet durable: the directory entry for
	// path lives in the parent directory's data, and a power loss before
	// that data reaches disk can roll the directory back to the pre-rename
	// state even though the file contents were synced. Fsyncing the parent
	// completes the guarantee the package documents: once Save returns,
	// the new checkpoint survives both a process kill AND a power loss —
	// which is what lets the server treat these envelopes as a write-ahead
	// journal, not just a crash-safe cache.
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so a just-renamed or just-created entry in it
// is durable. Save calls it on the checkpoint's parent; callers that
// create the directories themselves (the server's per-job journal dirs)
// call it on THEIR parent for the same reason. Platforms whose directory
// handles reject Sync (it is optional in POSIX) report a benign error;
// those are ignored, matching what journaling databases do.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: sync dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("checkpoint: sync dir %s: %w", dir, err)
	}
	return nil
}

// Load reads a checkpoint and returns its payload after validating the
// envelope: the file must decode as JSON, carry the expected kind and
// version, and contain a payload. Every failure mode — missing file,
// truncation, corruption, kind or version skew — is an error; Load never
// panics.
func Load(path, kind string, version int) (json.RawMessage, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return Decode(raw, kind, version)
}

// Decode validates an in-memory envelope encoding; see Load.
func Decode(raw []byte, kind string, version int) (json.RawMessage, error) {
	var env Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, fmt.Errorf("checkpoint: corrupt envelope: %w", err)
	}
	if env.Kind != kind {
		return nil, fmt.Errorf("checkpoint: kind %q, want %q", env.Kind, kind)
	}
	if env.Version != version {
		return nil, fmt.Errorf("checkpoint: version %d, want %d (regenerate the checkpoint)", env.Version, version)
	}
	if len(env.Data) == 0 || string(env.Data) == "null" {
		return nil, fmt.Errorf("checkpoint: %s envelope has no payload", kind)
	}
	return env.Data, nil
}
