package checkpoint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Round int    `json:"round"`
	Note  string `json:"note"`
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	want := payload{Round: 7, Note: "after round 7"}
	if err := Save(path, "test-state", 3, want); err != nil {
		t.Fatal(err)
	}
	raw, err := Load(path, "test-state", 3)
	if err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestSaveOverwrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	for round := 1; round <= 3; round++ {
		if err := Save(path, "test-state", 1, payload{Round: round}); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := Load(path, "test-state", 1)
	if err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Round != 3 {
		t.Fatalf("round %d survived, want the last write (3)", got.Round)
	}
}

// A process killed mid-write dies between creating the temporary file and
// the rename. Simulate every such state — a garbage temp file alongside a
// valid checkpoint — and verify the previous checkpoint stays readable.
func TestKillMidWriteLeavesPreviousReadable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	if err := Save(path, "test-state", 1, payload{Round: 4}); err != nil {
		t.Fatal(err)
	}
	// The dying writer left a partial temp file (same naming scheme Save
	// uses) that never got renamed.
	partial := filepath.Join(dir, "ck.json.tmp-99999")
	if err := os.WriteFile(partial, []byte(`{"kind":"test-state","ver`), 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := Load(path, "test-state", 1)
	if err != nil {
		t.Fatalf("previous checkpoint unreadable after simulated mid-write kill: %v", err)
	}
	var got payload
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Round != 4 {
		t.Fatalf("round %d, want 4", got.Round)
	}
	// A fresh Save still succeeds with the stale temp file present.
	if err := Save(path, "test-state", 1, payload{Round: 5}); err != nil {
		t.Fatal(err)
	}
}

// The server journals jobs as one envelope file per job directory
// (jobs/<key>/job.json). A daemon SIGKILLed mid-write dies with temp files
// strewn across several job directories at once; every directory must
// independently keep its previous record readable, and fresh Saves (the
// restarted daemon re-journaling state transitions) must succeed with the
// stale temp files still present.
func TestKillMidWriteJournalDirectory(t *testing.T) {
	root := t.TempDir()
	keys := []string{"job-a1", "job-b2", "job-c3"}
	for _, key := range keys {
		dir := filepath.Join(root, "jobs", key)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "job.json")
		if err := Save(path, "server-job", 1, payload{Round: 1, Note: key}); err != nil {
			t.Fatal(err)
		}
		// The dying daemon left partial temp files in every job directory.
		for i, junk := range []string{`{"kind":"server-jo`, "", `garbage bytes`} {
			partial := filepath.Join(dir, "job.json.tmp-"+strings.Repeat("9", i+3))
			if err := os.WriteFile(partial, []byte(junk), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, key := range keys {
		path := filepath.Join(root, "jobs", key, "job.json")
		raw, err := Load(path, "server-job", 1)
		if err != nil {
			t.Fatalf("job %s unreadable after simulated mid-write kill: %v", key, err)
		}
		var got payload
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		if got.Note != key {
			t.Fatalf("job %s holds record %q", key, got.Note)
		}
		// The restarted daemon re-journals the job's next state transition.
		if err := Save(path, "server-job", 1, payload{Round: 2, Note: key}); err != nil {
			t.Fatalf("re-journal %s: %v", key, err)
		}
	}
}

func TestLoadRejectsSkew(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	if err := Save(path, "test-state", 2, payload{Round: 1}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name         string
		kind         string
		version      int
		wantFragment string
	}{
		{"version skew", "test-state", 1, "version 2, want 1"},
		{"kind skew", "other-state", 2, `kind "test-state"`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Load(path, c.kind, c.version)
			if err == nil || !strings.Contains(err.Error(), c.wantFragment) {
				t.Fatalf("err = %v, want mention of %q", err, c.wantFragment)
			}
		})
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"empty":        "",
		"truncated":    `{"kind":"test-state","version":1,"data":{"rou`,
		"not json":     "round 7 note after",
		"null payload": `{"kind":"test-state","version":1,"data":null}`,
		"no payload":   `{"kind":"test-state","version":1}`,
		"wrong types":  `{"kind":1,"version":"x","data":[]}`,
	}
	for name, content := range cases {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, "bad.json")
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Load(path, "test-state", 1); err == nil {
				t.Fatalf("Load accepted malformed checkpoint %q", content)
			}
		})
	}
	if _, err := Load(filepath.Join(dir, "missing.json"), "test-state", 1); err == nil {
		t.Fatal("Load accepted a missing file")
	}
}

// FuzzDecode: whatever bytes a crashed or hostile writer left behind,
// Decode must return a payload or an error — never panic. Valid envelopes
// must round-trip their payload bytes.
func FuzzDecode(f *testing.F) {
	f.Add([]byte(`{"kind":"explorer-search","version":1,"data":{"round":3}}`))
	f.Add([]byte(`{"kind":"explorer-search","version":2,"data":{}}`))
	f.Add([]byte(`{"kind":"","version":0}`))
	f.Add([]byte(`{"kind":"explorer-search","version":1,"data":`)) // truncated
	f.Add([]byte(`null`))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, raw []byte) {
		data, err := Decode(raw, "explorer-search", 1)
		if err != nil {
			return
		}
		if len(data) == 0 {
			t.Fatal("Decode returned no error and no payload")
		}
		if !json.Valid(data) {
			t.Fatalf("Decode returned invalid JSON payload %q", data)
		}
	})
}
