// Package logging provides the run logger for the simulated systems and the
// log-file model that ANDURIL's explorer consumes.
//
// The paper uses log messages as the observables of an execution (§3): they
// are cheap to collect, they mark state transitions, and they can be
// statically tied to program points. This package mirrors the properties
// that matter there:
//
//   - every record carries a thread (actor) name, because the explorer
//     diffs logs per thread (§5.1.1);
//   - every record keeps its constant format string (the "template"), which
//     is what the static analyzer extracts from source and what observables
//     are matched against;
//   - the logical position of a record (its sequence number) defines the
//     logical timeline used by the temporal-distance feedback (§5.2.3);
//   - records render to timestamped text lines — the shape of a production
//     log file — and can be parsed back, because the failure log input is
//     plain text from an uninstrumented deployment.
package logging

import (
	"fmt"
	"strings"
	"time"

	"anduril/internal/des"
)

// Level is a log severity.
type Level int

// Severities, lowest to highest.
const (
	Debug Level = iota
	Info
	Warn
	Error
)

func (l Level) String() string {
	switch l {
	case Debug:
		return "DEBUG"
	case Info:
		return "INFO"
	case Warn:
		return "WARN"
	case Error:
		return "ERROR"
	default:
		return fmt.Sprintf("LEVEL(%d)", int(l))
	}
}

// ParseLevel converts a severity token back to a Level.
func ParseLevel(s string) (Level, bool) {
	switch s {
	case "DEBUG":
		return Debug, true
	case "INFO":
		return Info, true
	case "WARN":
		return Warn, true
	case "ERROR":
		return Error, true
	}
	return Info, false
}

// Record is one log message emitted during a simulated run.
type Record struct {
	Seq      int      // 0-based logical position in the run's timeline
	Time     des.Time // virtual time of emission
	Thread   string   // emitting actor ("main" outside event dispatch)
	Level    Level
	Template string // the constant format string at the log statement
	Msg      string // rendered message
}

// Log collects the records of a single run.
type Log struct {
	sim     *des.Sim
	records []Record
}

// New creates a logger bound to a simulation (for time and thread names).
func New(sim *des.Sim) *Log { return &Log{sim: sim} }

// Pos returns the number of records emitted so far — the current logical
// time on the run's timeline.
func (l *Log) Pos() int { return len(l.records) }

// Records returns a copy of all records emitted so far. Callers may keep
// or mutate the returned slice freely; earlier versions handed out the
// internal backing array, which aliased against subsequent emits.
func (l *Log) Records() []Record {
	out := make([]Record, len(l.records))
	copy(out, l.records)
	return out
}

// Len reports the number of records emitted so far without copying.
func (l *Log) Len() int { return len(l.records) }

func (l *Log) emit(level Level, format string, args ...interface{}) {
	thread := "main"
	var at des.Time
	if l.sim != nil {
		if c := l.sim.Current(); c != "" {
			thread = c
		}
		at = l.sim.Now()
	}
	msg := format
	if len(args) > 0 || strings.IndexByte(format, '%') >= 0 {
		msg = fmt.Sprintf(format, args...)
	}
	if cap(l.records) == len(l.records) {
		// Pre-size the first growth generously: run logs routinely reach a
		// few hundred records, and letting append double from 1 costs ~10
		// reallocations per run on the reproduce hot path.
		next := make([]Record, len(l.records), max(256, 2*cap(l.records)))
		copy(next, l.records)
		l.records = next
	}
	l.records = append(l.records, Record{
		Seq:      len(l.records),
		Time:     at,
		Thread:   thread,
		Level:    level,
		Template: format,
		Msg:      msg,
	})
}

// Debugf logs at Debug severity.
func (l *Log) Debugf(format string, args ...interface{}) { l.emit(Debug, format, args...) }

// Infof logs at Info severity.
func (l *Log) Infof(format string, args ...interface{}) { l.emit(Info, format, args...) }

// Warnf logs at Warn severity.
func (l *Log) Warnf(format string, args ...interface{}) { l.emit(Warn, format, args...) }

// Errorf logs at Error severity.
func (l *Log) Errorf(format string, args ...interface{}) { l.emit(Error, format, args...) }

// baseWall anchors rendered timestamps; the exact value is irrelevant since
// the explorer sanitizes timestamps away, but it makes rendered logs look
// like real production logs.
var baseWall = time.Date(2024, 11, 4, 9, 0, 0, 0, time.UTC)

// RenderLine formats a record the way a Log4j-style production logger
// would: "2024-11-04 09:00:00,123 [thread] LEVEL message".
func RenderLine(r Record) string {
	t := baseWall.Add(time.Duration(r.Time))
	return fmt.Sprintf("%s,%03d [%s] %s %s",
		t.Format("2006-01-02 15:04:05"), t.Nanosecond()/1e6, r.Thread, r.Level, r.Msg)
}

// Render formats the whole run log as production-style text.
func (l *Log) Render() string {
	var b strings.Builder
	for _, r := range l.records {
		b.WriteString(RenderLine(r))
		b.WriteByte('\n')
	}
	return b.String()
}

// Entry is a parsed production log line: what the explorer can recover from
// an uninstrumented system's log file (no template, no seq — just text).
type Entry struct {
	Thread string
	Level  Level
	Msg    string
}

// ParseLine parses one rendered production-style line. It tolerates the
// common "date time,millis [thread] LEVEL msg" convention; lines that do
// not match return ok=false (real logs contain stack-trace continuation
// lines and other noise).
func ParseLine(line string) (Entry, bool) {
	// Expect: "YYYY-MM-DD HH:MM:SS,mmm [thread] LEVEL msg"
	rest := line
	sp1 := strings.IndexByte(rest, ' ')
	if sp1 < 0 {
		return Entry{}, false
	}
	sp2 := strings.IndexByte(rest[sp1+1:], ' ')
	if sp2 < 0 {
		return Entry{}, false
	}
	rest = rest[sp1+1+sp2+1:]
	if !strings.HasPrefix(rest, "[") {
		return Entry{}, false
	}
	// Thread names may themselves contain brackets (e.g. "node[1]"), so the
	// closing bracket is the first ']' that is followed by a valid severity
	// token — not simply the first ']'.
	for close := strings.IndexByte(rest, ']'); close >= 0; {
		after := strings.TrimPrefix(rest[close+1:], " ")
		if sp3 := strings.IndexByte(after, ' '); sp3 >= 0 {
			if lvl, ok := ParseLevel(after[:sp3]); ok {
				return Entry{Thread: rest[1:close], Level: lvl, Msg: after[sp3+1:]}, true
			}
		}
		next := strings.IndexByte(rest[close+1:], ']')
		if next < 0 {
			break
		}
		close += 1 + next
	}
	return Entry{}, false
}

// Parse parses a production-style log file into entries, skipping
// unparseable lines.
func Parse(text string) []Entry {
	var out []Entry
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if e, ok := ParseLine(line); ok {
			out = append(out, e)
		}
	}
	return out
}

// Entries converts a run's records into parsed-entry form so in-process
// runs and parsed production logs flow through the same diff pipeline.
func (l *Log) Entries() []Entry {
	out := make([]Entry, len(l.records))
	for i, r := range l.records {
		out[i] = Entry{Thread: r.Thread, Level: r.Level, Msg: r.Msg}
	}
	return out
}
