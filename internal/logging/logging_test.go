package logging

import (
	"strings"
	"testing"
	"testing/quick"

	"anduril/internal/des"
)

func TestEmitCapturesThreadAndSeq(t *testing.T) {
	sim := des.New(1)
	lg := New(sim)
	sim.Schedule("wal-consumer", 5, func() { lg.Infof("sync %d entries", 3) })
	sim.Schedule("roller", 10, func() { lg.Warnf("roll requested") })
	sim.Run(des.Second)

	recs := lg.Records()
	if len(recs) != 2 {
		t.Fatalf("records=%d, want 2", len(recs))
	}
	if recs[0].Thread != "wal-consumer" || recs[1].Thread != "roller" {
		t.Fatalf("threads: %q %q", recs[0].Thread, recs[1].Thread)
	}
	if recs[0].Seq != 0 || recs[1].Seq != 1 {
		t.Fatalf("seqs: %d %d", recs[0].Seq, recs[1].Seq)
	}
	if recs[0].Template != "sync %d entries" {
		t.Fatalf("template=%q", recs[0].Template)
	}
	if recs[0].Msg != "sync 3 entries" {
		t.Fatalf("msg=%q", recs[0].Msg)
	}
	if lg.Pos() != 2 {
		t.Fatalf("Pos=%d", lg.Pos())
	}
}

func TestMainThreadOutsideEvents(t *testing.T) {
	lg := New(des.New(1))
	lg.Errorf("boot failed")
	if got := lg.Records()[0].Thread; got != "main" {
		t.Fatalf("thread=%q, want main", got)
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	sim := des.New(1)
	lg := New(sim)
	sim.Schedule("dn-1", 7*des.Millisecond, func() {
		lg.Errorf("failed to receive block %s: %s", "blk_1", "IOError")
	})
	sim.Run(des.Second)

	text := lg.Render()
	if !strings.Contains(text, "[dn-1] ERROR failed to receive block blk_1: IOError") {
		t.Fatalf("rendered: %q", text)
	}
	entries := Parse(text)
	if len(entries) != 1 {
		t.Fatalf("parsed %d entries", len(entries))
	}
	e := entries[0]
	if e.Thread != "dn-1" || e.Level != Error || e.Msg != "failed to receive block blk_1: IOError" {
		t.Fatalf("entry: %+v", e)
	}
}

func TestParseSkipsNoise(t *testing.T) {
	text := "garbage line\n" +
		"\tat org.apache.stack.Trace(Frame.java:10)\n" +
		"2024-11-04 09:00:00,001 [main] INFO ok\n"
	entries := Parse(text)
	if len(entries) != 1 || entries[0].Msg != "ok" {
		t.Fatalf("entries: %+v", entries)
	}
}

func TestParseLevels(t *testing.T) {
	for _, lvl := range []Level{Debug, Info, Warn, Error} {
		got, ok := ParseLevel(lvl.String())
		if !ok || got != lvl {
			t.Fatalf("round trip %v -> %v (%v)", lvl, got, ok)
		}
	}
	if _, ok := ParseLevel("TRACE"); ok {
		t.Fatal("unknown level accepted")
	}
}

func TestEntriesMatchesRenderParse(t *testing.T) {
	sim := des.New(2)
	lg := New(sim)
	sim.Schedule("a", 1, func() { lg.Infof("one") })
	sim.Schedule("b", 2, func() { lg.Warnf("two %s", "x") })
	sim.Run(des.Second)

	direct := lg.Entries()
	parsed := Parse(lg.Render())
	if len(direct) != len(parsed) {
		t.Fatalf("len %d vs %d", len(direct), len(parsed))
	}
	for i := range direct {
		if direct[i] != parsed[i] {
			t.Fatalf("entry %d: %+v vs %+v", i, direct[i], parsed[i])
		}
	}
}

func TestParseLineBracketedThread(t *testing.T) {
	cases := []struct {
		line   string
		thread string
		msg    string
	}{
		{"2024-11-04 09:00:00,001 [node[1]] INFO joined ring", "node[1]", "joined ring"},
		{"2024-11-04 09:00:00,001 [pool-1-thread-2] WARN queue full", "pool-1-thread-2", "queue full"},
		{"2024-11-04 09:00:00,001 [rs[a][b]] ERROR split failed", "rs[a][b]", "split failed"},
		{"2024-11-04 09:00:00,001 [w] INFO saw [x] ERROR in payload", "w", "saw [x] ERROR in payload"},
	}
	for _, c := range cases {
		e, ok := ParseLine(c.line)
		if !ok {
			t.Fatalf("ParseLine(%q) failed", c.line)
		}
		if e.Thread != c.thread || e.Msg != c.msg {
			t.Fatalf("ParseLine(%q) = %+v, want thread %q msg %q", c.line, e, c.thread, c.msg)
		}
	}
	if _, ok := ParseLine("2024-11-04 09:00:00,001 [node1 INFO no close"); ok {
		t.Fatal("accepted line whose bracket never closes")
	}
	if _, ok := ParseLine("2024-11-04 09:00:00,001 [node[1]] NOTALEVEL msg"); ok {
		t.Fatal("accepted line with no valid level after any bracket")
	}
}

// Property: thread names containing brackets (Log4j's "node[1]" style)
// survive a render/parse round trip together with arbitrary messages.
func TestRoundTripBracketedThreadProperty(t *testing.T) {
	f := func(base uint8, idx uint8, raw string) bool {
		thread := strings.Repeat("n", int(base%3)+1) + "[" + string(rune('0'+idx%10)) + "]"
		msg := strings.Map(func(r rune) rune {
			if r == '\n' || r == '\r' {
				return ' '
			}
			return r
		}, raw)
		if msg == "" {
			msg = "x"
		}
		sim := des.New(4)
		lg := New(sim)
		sim.Schedule(thread, 1, func() { lg.Infof("%s", msg) })
		sim.Run(des.Second)
		parsed := Parse(lg.Render())
		return len(parsed) == 1 && parsed[0].Msg == msg && parsed[0].Thread == thread
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: any message without newlines survives a render/parse round trip.
func TestRoundTripProperty(t *testing.T) {
	f := func(raw string) bool {
		msg := strings.Map(func(r rune) rune {
			if r == '\n' || r == '\r' {
				return ' '
			}
			return r
		}, raw)
		sim := des.New(3)
		lg := New(sim)
		sim.Schedule("t", 1, func() { lg.Infof("%s", msg) })
		sim.Run(des.Second)
		parsed := Parse(lg.Render())
		if msg == "" {
			return true // empty messages render to a trailing space-free line; fine either way
		}
		return len(parsed) == 1 && parsed[0].Msg == msg && parsed[0].Thread == "t"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
