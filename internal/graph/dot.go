package graph

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the causal graph in Graphviz format, for inspecting what the
// static analysis inferred. Fault sites are boxes, log statements are
// ellipses, handlers are diamonds; maxNodes caps the output for large
// graphs (0 = no cap, highest-degree nodes kept first).
func (g *Graph) DOT(title string, maxNodes int) string {
	nodes := g.Nodes()
	if maxNodes > 0 && len(nodes) > maxNodes {
		// Keep the best-connected nodes so the excerpt stays meaningful.
		deg := make(map[string]int, len(nodes))
		for id, outs := range g.out {
			deg[id] += len(outs)
		}
		for id, ins := range g.in {
			deg[id] += len(ins)
		}
		sort.SliceStable(nodes, func(i, j int) bool { return deg[nodes[i].ID] > deg[nodes[j].ID] })
		nodes = nodes[:maxNodes]
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	}
	keep := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		keep[n.ID] = true
	}

	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [fontsize=9];\n", title)
	for _, n := range nodes {
		shape, color := "ellipse", "gray70"
		label := n.ID
		switch {
		case n.IsFaultSite():
			shape, color = "box", "indianred"
			label = n.Site
		case n.Kind == Handler:
			shape, color = "diamond", "goldenrod"
		case n.Kind == Condition:
			shape, color = "hexagon", "skyblue"
		case n.Kind == Invocation:
			shape, color = "cds", "gray80"
		case n.Kind == InternalException:
			shape, color = "octagon", "plum"
		case n.Kind == Location && n.Template != "":
			shape, color = "ellipse", "palegreen"
			label = truncate(n.Template, 40)
		}
		fmt.Fprintf(&b, "  %q [shape=%s,style=filled,fillcolor=%s,label=%q];\n", n.ID, shape, color, label)
	}
	ids := make([]string, 0, len(g.out))
	for id := range g.out {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if !keep[id] {
			continue
		}
		outs := append([]string(nil), g.out[id]...)
		sort.Strings(outs)
		for _, to := range outs {
			if keep[to] {
				fmt.Fprintf(&b, "  %q -> %q;\n", id, to)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
