// Package graph holds the static causal graph of §4.1.
//
// Nodes are program points classified with the paper's seven node kinds;
// edges run from a causally-prior node to its effect, so source nodes are
// fault sites (new-exception and external-exception nodes) and sink nodes
// are the statements that produce log messages. The explorer's spatial
// distance L_{i,k} is the unweighted shortest-path length from fault site i
// to the statement emitting observable k.
package graph

import (
	"fmt"
	"sort"
)

// Kind classifies a causal-graph node (§4.1).
type Kind int

// Node kinds. Location/Condition/Invocation follow Pensieve; Handler and
// the three exception kinds are the paper's extensions.
const (
	Location Kind = iota
	Condition
	Invocation
	Handler
	InternalException
	NewException
	ExternalException
)

func (k Kind) String() string {
	switch k {
	case Location:
		return "location"
	case Condition:
		return "condition"
	case Invocation:
		return "invocation"
	case Handler:
		return "handler"
	case InternalException:
		return "internal-exception"
	case NewException:
		return "new-exception"
	case ExternalException:
		return "external-exception"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node is one program point in the causal graph.
type Node struct {
	ID       string // unique; convention "kind:file:line[:extra]"
	Kind     Kind
	Pos      string // "file:line" of the program point
	Site     string // fault-site ID for exception source nodes
	Template string // log format string for log-statement location nodes
	Func     string // enclosing function, for diagnostics
}

// IsFaultSite reports whether the node is an injectable source node.
func (n *Node) IsFaultSite() bool {
	return (n.Kind == NewException || n.Kind == ExternalException) && n.Site != ""
}

// Graph is a directed causal graph; an edge u->v means "u is causally prior
// to v" (a fault at u can make v happen).
type Graph struct {
	nodes map[string]*Node
	out   map[string][]string
	in    map[string][]string
	edges int
}

// New creates an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[string]*Node),
		out:   make(map[string][]string),
		in:    make(map[string][]string),
	}
}

// AddNode inserts a node if absent and returns the stored copy.
func (g *Graph) AddNode(n Node) *Node {
	if existing, ok := g.nodes[n.ID]; ok {
		return existing
	}
	stored := n
	g.nodes[n.ID] = &stored
	return &stored
}

// Node returns the node by ID.
func (g *Graph) Node(id string) (*Node, bool) {
	n, ok := g.nodes[id]
	return n, ok
}

// AddEdge records that cause is causally prior to effect. Duplicate edges
// are ignored. Both endpoints must already exist.
func (g *Graph) AddEdge(cause, effect string) error {
	if _, ok := g.nodes[cause]; !ok {
		return fmt.Errorf("graph: unknown cause node %q", cause)
	}
	if _, ok := g.nodes[effect]; !ok {
		return fmt.Errorf("graph: unknown effect node %q", effect)
	}
	for _, e := range g.out[cause] {
		if e == effect {
			return nil
		}
	}
	g.out[cause] = append(g.out[cause], effect)
	g.in[effect] = append(g.in[effect], cause)
	g.edges++
	return nil
}

// NumNodes and NumEdges report the graph size (reported per-system the way
// §4.1 quotes the HBase graph size).
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of distinct edges.
func (g *Graph) NumEdges() int { return g.edges }

// Nodes returns all nodes sorted by ID for deterministic iteration.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Edges returns every edge as a [cause, effect] pair, sorted, for
// deterministic serialization. Rebuilding a graph from Nodes() and Edges()
// reproduces the same node set, edge set, and therefore the same BFS
// distances.
func (g *Graph) Edges() [][2]string {
	out := make([][2]string, 0, g.edges)
	for cause, effects := range g.out {
		for _, effect := range effects {
			out = append(out, [2]string{cause, effect})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// FaultSites returns all injectable source nodes, sorted by site ID.
func (g *Graph) FaultSites() []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if n.IsFaultSite() {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// LogStatements returns all location nodes carrying a log template.
func (g *Graph) LogStatements() []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if n.Kind == Location && n.Template != "" {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DistancesTo runs a reverse BFS from the given node and returns, for every
// node that can reach it, the unweighted shortest-path length. The target
// itself has distance 0.
func (g *Graph) DistancesTo(id string) map[string]int {
	dist := map[string]int{}
	if _, ok := g.nodes[id]; !ok {
		return dist
	}
	dist[id] = 0
	queue := []string{id}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, prev := range g.in[cur] {
			if _, seen := dist[prev]; !seen {
				dist[prev] = dist[cur] + 1
				queue = append(queue, prev)
			}
		}
	}
	return dist
}

// SiteDistances computes, for every fault site, the distance to each log
// template it can reach: the L_{i,k} table of §5.2.2. The result maps
// site -> template -> hops (minimum over statements sharing a template).
func (g *Graph) SiteDistances() map[string]map[string]int {
	res := make(map[string]map[string]int)
	for _, sink := range g.LogStatements() {
		d := g.DistancesTo(sink.ID)
		for id, hops := range d {
			n := g.nodes[id]
			if !n.IsFaultSite() {
				continue
			}
			m := res[n.Site]
			if m == nil {
				m = make(map[string]int)
				res[n.Site] = m
			}
			if old, ok := m[sink.Template]; !ok || hops < old {
				m[sink.Template] = hops
			}
		}
	}
	return res
}

// ReachableSites returns the fault sites with a path to at least one of the
// given log templates — the "inferred" fault-site set of Table 1.
func (g *Graph) ReachableSites(templates map[string]bool) []string {
	dist := g.SiteDistances()
	var out []string
	for site, m := range dist {
		for tmpl := range m {
			if templates[tmpl] {
				out = append(out, site)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}
