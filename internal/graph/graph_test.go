package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildDiamond builds: site -> a -> log1, site -> b -> c -> log1, b -> log2.
func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	g.AddNode(Node{ID: "site", Kind: ExternalException, Site: "sys.op"})
	g.AddNode(Node{ID: "a", Kind: Handler})
	g.AddNode(Node{ID: "b", Kind: Invocation})
	g.AddNode(Node{ID: "c", Kind: Condition})
	g.AddNode(Node{ID: "log1", Kind: Location, Template: "op failed: %s"})
	g.AddNode(Node{ID: "log2", Kind: Location, Template: "retrying"})
	for _, e := range [][2]string{{"site", "a"}, {"a", "log1"}, {"site", "b"}, {"b", "c"}, {"c", "log1"}, {"b", "log2"}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddEdgeUnknownNode(t *testing.T) {
	g := New()
	g.AddNode(Node{ID: "x", Kind: Location})
	if err := g.AddEdge("x", "missing"); err == nil {
		t.Fatal("expected error for unknown effect")
	}
	if err := g.AddEdge("missing", "x"); err == nil {
		t.Fatal("expected error for unknown cause")
	}
}

func TestDuplicateEdgesIgnored(t *testing.T) {
	g := buildDiamond(t)
	before := g.NumEdges()
	if err := g.AddEdge("site", "a"); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != before {
		t.Fatalf("duplicate edge counted: %d -> %d", before, g.NumEdges())
	}
}

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	n1 := g.AddNode(Node{ID: "x", Kind: Handler})
	n2 := g.AddNode(Node{ID: "x", Kind: Location}) // second insert ignored
	if n1 != n2 || n2.Kind != Handler {
		t.Fatalf("AddNode not idempotent: %+v vs %+v", n1, n2)
	}
}

func TestDistancesTo(t *testing.T) {
	g := buildDiamond(t)
	d := g.DistancesTo("log1")
	if d["log1"] != 0 || d["a"] != 1 || d["c"] != 1 || d["b"] != 2 || d["site"] != 2 {
		t.Fatalf("distances: %v", d)
	}
	if _, ok := d["log2"]; ok {
		t.Fatal("log2 cannot reach log1")
	}
}

func TestSiteDistances(t *testing.T) {
	g := buildDiamond(t)
	sd := g.SiteDistances()
	m := sd["sys.op"]
	if m == nil {
		t.Fatal("no distances for site")
	}
	// site->a->log1 is 2 hops; site->b->log2 is 2 hops.
	if m["op failed: %s"] != 2 || m["retrying"] != 2 {
		t.Fatalf("distances: %v", m)
	}
}

func TestReachableSites(t *testing.T) {
	g := buildDiamond(t)
	g.AddNode(Node{ID: "lonely", Kind: NewException, Site: "sys.lonely"})
	got := g.ReachableSites(map[string]bool{"retrying": true})
	if len(got) != 1 || got[0] != "sys.op" {
		t.Fatalf("reachable: %v", got)
	}
	if got := g.ReachableSites(map[string]bool{"unknown": true}); len(got) != 0 {
		t.Fatalf("unexpected reachable: %v", got)
	}
}

func TestFaultSitesAndLogStatements(t *testing.T) {
	g := buildDiamond(t)
	sites := g.FaultSites()
	if len(sites) != 1 || sites[0].Site != "sys.op" {
		t.Fatalf("sites: %v", sites)
	}
	logs := g.LogStatements()
	if len(logs) != 2 {
		t.Fatalf("log statements: %v", logs)
	}
}

func TestKindString(t *testing.T) {
	for k := Location; k <= ExternalException; k++ {
		if k.String() == "" {
			t.Fatalf("empty string for kind %d", int(k))
		}
	}
}

// Property: BFS distances satisfy the triangle property along edges:
// for any edge u->v with both distances defined, d(u) <= d(v)+1.
func TestBFSProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := New()
		n := 5 + r.Intn(30)
		ids := make([]string, n)
		for i := range ids {
			ids[i] = string(rune('A'+i%26)) + string(rune('0'+i/26))
			kind := Location
			if i%4 == 0 {
				kind = ExternalException
			}
			g.AddNode(Node{ID: ids[i], Kind: kind, Site: "s" + ids[i], Template: "t" + ids[i]})
		}
		type edge struct{ u, v string }
		var edges []edge
		for i := 0; i < n*2; i++ {
			u, v := ids[r.Intn(n)], ids[r.Intn(n)]
			if u == v {
				continue
			}
			g.AddEdge(u, v)
			edges = append(edges, edge{u, v})
		}
		target := ids[r.Intn(n)]
		d := g.DistancesTo(target)
		for _, e := range edges {
			du, okU := d[e.u]
			dv, okV := d[e.v]
			if okV && (!okU || du > dv+1) {
				return false
			}
		}
		return d[target] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
