package graph

import (
	"strings"
	"testing"
)

func TestDOTRendersAllKinds(t *testing.T) {
	g := buildDiamond(t)
	dot := g.DOT("demo", 0)
	if !strings.HasPrefix(dot, "digraph \"demo\"") {
		t.Fatalf("header: %q", dot[:40])
	}
	for _, frag := range []string{"sys.op", "op failed", "->", "indianred", "palegreen"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q", frag)
		}
	}
	// Edge count: 6 edges in the diamond.
	if got := strings.Count(dot, "->"); got != 6 {
		t.Errorf("edges in DOT: %d", got)
	}
}

func TestDOTCapsNodes(t *testing.T) {
	g := New()
	for i := 0; i < 50; i++ {
		g.AddNode(Node{ID: string(rune('A'+i%26)) + string(rune('0'+i/26)), Kind: Location})
	}
	dot := g.DOT("capped", 10)
	if got := strings.Count(dot, "shape="); got != 10 {
		t.Errorf("nodes in capped DOT: %d", got)
	}
}

func TestDOTOmitsEdgesToDroppedNodes(t *testing.T) {
	g := buildDiamond(t)
	// Keep only 2 nodes: every surviving edge must connect kept nodes.
	dot := g.DOT("tiny", 2)
	for _, line := range strings.Split(dot, "\n") {
		if strings.Contains(line, "->") {
			if strings.Count(dot, "shape=") != 2 {
				t.Fatalf("unexpected node count")
			}
		}
	}
}

func TestTruncate(t *testing.T) {
	if got := truncate("short", 10); got != "short" {
		t.Fatalf("truncate short: %q", got)
	}
	if got := truncate("averylongtemplate", 8); len(got) > 10 || !strings.HasSuffix(got, "…") {
		t.Fatalf("truncate long: %q", got)
	}
}
