// Combined-fault addressing. Some failures only manifest when two
// faults land in one execution — a first fault that corrupts state and a
// second that blocks the recovery path. A fault *pair* is addressed
// through a pseudo-site, exactly like the environment classes, so the
// explorer's (site, occurrence) currency covers combinations without new
// plan, tried-set or checkpoint machinery:
//
//	pair/<siteA>+<siteB>    the unordered pair of member fault sites
//
// A pair *instance* additionally needs its two member instances; they
// ride in the Instance's Path field as two member references joined by
// '+' (the one character no site ID, env site ID or path string may
// contain). A member reference is either the member's full canonical
// path string (under path addressing) or "site:occ" (under occurrence
// addressing) — ':' likewise never appears in either grammar, keeping
// the two forms distinguishable on parse.
package inject

import (
	"strconv"
	"strings"
)

// pairSitePrefix marks combined-fault pseudo-sites; ordinary dotted site
// IDs and env/ pseudo-sites can never start with it.
const pairSitePrefix = "pair/"

// IsPairSite reports whether a site ID addresses a fault pair.
func IsPairSite(site string) bool { return strings.HasPrefix(site, pairSitePrefix) }

// PairSiteID builds the pseudo-site ID for an unordered pair of member
// fault sites. The members are sorted so PairSiteID(a, b) == PairSiteID(b, a).
func PairSiteID(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return pairSitePrefix + a + "+" + b
}

// ParsePairSite splits a pair pseudo-site into its member site IDs, the
// inverse of PairSiteID.
func ParsePairSite(site string) (a, b string, ok bool) {
	rest, found := strings.CutPrefix(site, pairSitePrefix)
	if !found {
		return "", "", false
	}
	a, b, ok = strings.Cut(rest, "+")
	if !ok || a == "" || b == "" {
		return "", "", false
	}
	return a, b, true
}

// memberRef renders one pair member as a replayable reference.
func memberRef(m Instance) string {
	if m.Path != "" {
		return m.Path
	}
	return m.Site + ":" + strconv.Itoa(m.Occurrence)
}

// parseMemberRef decodes a member reference back into an Instance.
func parseMemberRef(ref string) (Instance, bool) {
	if i := strings.LastIndexByte(ref, ':'); i >= 0 {
		occ, err := strconv.Atoi(ref[i+1:])
		if err != nil || occ < 1 || ref[:i] == "" {
			return Instance{}, false
		}
		return Instance{Site: ref[:i], Occurrence: occ}, true
	}
	addr, ok := ParsePathAddr(ref)
	if !ok {
		return Instance{}, false
	}
	return Instance{Site: addr.Site, Path: ref}, true
}

// PairInstance builds the combined Instance for two member instances.
// The member references are sorted into a canonical order; Occurrence is
// left zero for the caller (the explorer numbers pair instances within
// their pair site).
func PairInstance(a, b Instance) Instance {
	ra, rb := memberRef(a), memberRef(b)
	if rb < ra {
		ra, rb = rb, ra
	}
	return Instance{Site: PairSiteID(a.Site, b.Site), Path: ra + "+" + rb}
}

// PairMembers decodes a pair Instance back into its two member
// instances (ok false if inst is not a well-formed pair).
func PairMembers(inst Instance) (a, b Instance, ok bool) {
	if !IsPairSite(inst.Site) {
		return Instance{}, Instance{}, false
	}
	ra, rb, found := strings.Cut(inst.Path, "+")
	if !found || ra == "" || rb == "" {
		return Instance{}, Instance{}, false
	}
	a, ok = parseMemberRef(ra)
	if !ok {
		return Instance{}, Instance{}, false
	}
	b, ok = parseMemberRef(rb)
	if !ok {
		return Instance{}, Instance{}, false
	}
	return a, b, true
}

// PairPlan arms k ranked pair candidates for one round. The first reach
// matching any armed member commits the round to the best-ranked pair
// containing that member; from then on only the committed pair's other
// member may fire, so the round carries exactly the two faults of one
// pair (or one, if injecting the first member steers execution away from
// the second). The plan is stateful — build a fresh one per trial run.
type PairPlan struct {
	pairs     [][2]Instance // rank order, best first
	committed int           // index into pairs, -1 until the first member fires
	fired     [2]bool
}

// PairWindow returns a plan arming the given pairs, best-ranked first.
func PairWindow(pairs [][2]Instance) *PairPlan {
	return &PairPlan{pairs: pairs, committed: -1}
}

// matchMember reports whether a reach matches one member instance.
func matchMember(m Instance, site string, occ int, path string) bool {
	if m.Path != "" {
		return path != "" && m.Path == path
	}
	return m.Site == site && m.Occurrence == occ
}

func (p *PairPlan) decide(site string, occ int, path string) bool {
	if p.committed >= 0 {
		pr := &p.pairs[p.committed]
		for i := 0; i < 2; i++ {
			if !p.fired[i] && matchMember(pr[i], site, occ, path) {
				p.fired[i] = true
				return true
			}
		}
		return false
	}
	for i := range p.pairs {
		for j := 0; j < 2; j++ {
			if matchMember(p.pairs[i][j], site, occ, path) {
				p.committed = i
				p.fired[j] = true
				return true
			}
		}
	}
	return false
}

// Decide implements Plan for occurrence-addressed members.
func (p *PairPlan) Decide(site string, occ int) bool { return p.decide(site, occ, "") }

// DecidePath implements PathDecider for path-addressed members.
func (p *PairPlan) DecidePath(site string, occ int, path string) bool {
	return p.decide(site, occ, path)
}

// Budget implements Budgeter: a pair round injects up to two faults.
func (p *PairPlan) Budget() int { return 2 }

// Reset implements Resetter: uncommits the plan for a fresh trial.
func (p *PairPlan) Reset() {
	p.committed = -1
	p.fired = [2]bool{}
}

// Committed reports which armed pair (by rank index) the run committed
// to, once any member has fired.
func (p *PairPlan) Committed() (int, bool) { return p.committed, p.committed >= 0 }

func (p *PairPlan) carriesEnv() bool {
	for i := range p.pairs {
		for j := 0; j < 2; j++ {
			if IsEnvSite(p.pairs[i][j].Site) {
				return true
			}
		}
	}
	return false
}

func (p *PairPlan) carriesPartial() bool {
	for i := range p.pairs {
		for j := 0; j < 2; j++ {
			if IsPartialSite(p.pairs[i][j].Site) {
				return true
			}
		}
	}
	return false
}

func (p *PairPlan) carriesPath() bool {
	for i := range p.pairs {
		for j := 0; j < 2; j++ {
			if p.pairs[i][j].Path != "" {
				return true
			}
		}
	}
	return false
}
