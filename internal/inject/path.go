// Path-sensitive injection addressing (distributed execution indexing).
//
// The default currency of the explorer is (site, global occurrence
// counter), which is brittle under concurrency: any reordering of
// unrelated work shifts every later occurrence number. Following the
// call-path-context idea of Distributed Execution Indexing, a PathAddr
// instead names a dynamic injection point by its position in the
// distributed call tree — the chain of message-send edges that led to
// the executing context, each with a per-edge sequence number, plus the
// occurrence of the site within that exact context:
//
//	client.put>coord.write[2]>dyn.store.persist#1
//
// reads "the 1st reach of dyn.store.persist inside the handler of the
// 2nd coord.write message sent from the handler of the 1st client.put
// message". Edge labels are the fault-site IDs of the sending network
// operations, so the address is derived entirely from bookkeeping the
// harness already owns (the DES dispatcher's current event lineage and
// the network's send edges) — target systems are not modified.
//
// Environment pseudo-sites (env/...) are always root-addressed: their
// occurrence counter is already a deterministic per-run event index, so
// their path form is simply "env/crash/zk3#4".
//
// The canonical string grammar:
//
//	path    = { edge ">" } site "#" n
//	edge    = label | label "[" seq "]"     seq omitted when 1
//	site    = fault-site ID (dotted, or env/... pseudo-site)
//
// Site IDs never contain '>', '#', '[', ']', ':' or '+' (the env grammar
// uses '/', '~' and '>' only inside env/msg-* channel IDs, which are
// handled as an opaque terminal), so parsing is unambiguous.
package inject

import (
	"strconv"
	"strings"
)

// PathEdge is one step of a distributed call path: the fault-site label
// of the message-send edge and the 1-based sequence number of that label
// within its parent context (how many sends of this label the parent had
// posted, this one included).
type PathEdge struct {
	Label string
	Seq   int
}

// PathAddr addresses a dynamic injection point by call-path context:
// the chain of send edges from the workload root, the fault site, and
// the 1-based occurrence of the site within that exact context.
type PathAddr struct {
	Edges []PathEdge
	Site  string
	N     int
}

// String renders the canonical form. A sequence of 1 is omitted
// (client.put, not client.put[1]); the terminal "#n" is always present.
func (a PathAddr) String() string {
	var b strings.Builder
	for _, e := range a.Edges {
		b.WriteString(e.Label)
		if e.Seq != 1 {
			b.WriteByte('[')
			b.WriteString(strconv.Itoa(e.Seq))
			b.WriteByte(']')
		}
		b.WriteByte('>')
	}
	b.WriteString(a.Site)
	b.WriteByte('#')
	b.WriteString(strconv.Itoa(a.N))
	return b.String()
}

// validPathLabel reports whether a string can serve as an edge label or
// a (non-env) terminal site in the path grammar.
func validPathLabel(s string) bool {
	if s == "" {
		return false
	}
	return !strings.ContainsAny(s, ">#[]+:")
}

// parsePathTerminal splits the "site#n" terminal.
func parsePathTerminal(s string) (site string, n int, ok bool) {
	i := strings.LastIndexByte(s, '#')
	if i < 0 {
		return "", 0, false
	}
	site = s[:i]
	n, err := strconv.Atoi(s[i+1:])
	if err != nil || n < 1 || site == "" {
		return "", 0, false
	}
	return site, n, true
}

// ParsePathAddr decodes a canonical path string, the inverse of
// PathAddr.String. Env pseudo-sites (which may contain '>' in their
// channel IDs) are recognized first and parsed as an edge-less terminal.
func ParsePathAddr(s string) (PathAddr, bool) {
	if IsEnvSite(s) {
		site, n, ok := parsePathTerminal(s)
		if !ok {
			return PathAddr{}, false
		}
		if _, ok := ParseEnvSite(site); !ok {
			return PathAddr{}, false
		}
		return PathAddr{Site: site, N: n}, true
	}
	segs := strings.Split(s, ">")
	var a PathAddr
	for _, seg := range segs[:len(segs)-1] {
		e := PathEdge{Label: seg, Seq: 1}
		if j := strings.IndexByte(seg, '['); j >= 0 {
			if !strings.HasSuffix(seg, "]") {
				return PathAddr{}, false
			}
			seq, err := strconv.Atoi(seg[j+1 : len(seg)-1])
			if err != nil || seq < 1 {
				return PathAddr{}, false
			}
			e.Label, e.Seq = seg[:j], seq
		}
		if !validPathLabel(e.Label) {
			return PathAddr{}, false
		}
		a.Edges = append(a.Edges, e)
	}
	site, n, ok := parsePathTerminal(segs[len(segs)-1])
	if !ok || !validPathLabel(site) {
		return PathAddr{}, false
	}
	a.Site, a.N = site, n
	return a, true
}

// PathDecider is implemented by plans that can match the path form of a
// reach. Under path addressing the Runtime dispatches to DecidePath with
// the reach's canonical path string (and still passes the global
// occurrence, so occurrence-addressed candidates keep matching inside
// mixed plans).
type PathDecider interface {
	DecidePath(site string, occurrence int, path string) bool
}

// pathCarrier is implemented by plans that can report whether any of
// their candidate instances is path-addressed.
type pathCarrier interface{ carriesPath() bool }

func (p exactPlan) carriesPath() bool { return p.inst.Path != "" }

func (p windowPlan) carriesPath() bool { return len(p.byPath) > 0 }

func (p *multiPlan) carriesPath() bool {
	for _, sub := range p.plans {
		if PlanCarriesPath(sub) {
			return true
		}
	}
	return false
}

// PlanCarriesPath reports whether a plan's candidates include any
// path-addressed instance, so replaying a path-addressed reproduction
// script auto-enables path bookkeeping without extra wiring. Plans that
// implement neither check nor PathDecider cannot use paths, so they
// conservatively report false and run in plain occurrence mode.
func PlanCarriesPath(p Plan) bool {
	if p == nil {
		return false
	}
	if c, ok := p.(pathCarrier); ok {
		return c.carriesPath()
	}
	_, isPD := p.(PathDecider)
	return isPD
}
