// Environment faults extend the fault space beyond exception-shaped
// error returns to the faults a deployment environment inflicts on a
// distributed system: node crash/restart, pairwise network partition
// with a later heal, and per-message drop or delay. Each environment
// fault class is addressed through a *pseudo-site* so that the
// explorer's universal currency — the (site, occurrence) Instance —
// covers the whole heterogeneous space without new plan, window,
// tried-set or checkpoint machinery:
//
//	env/crash/<node>          crash the node, restart after a duration
//	env/partition/<a>~<b>     cut the pair symmetrically, heal after a duration
//	env/msg-drop/<from>><to>  silently drop one message on the channel
//	env/msg-delay/<from>><to> delay one message past the receiver's patience
//
// The occurrence of an env pseudo-site is counted against a
// deterministic per-run event counter: the network reaches every env
// site relevant to a message (both endpoints' crash sites, the pair's
// partition site, and the channel's drop/delay sites) exactly once per
// message, in a fixed order, so occurrence j of env/crash/zk3 names
// "the j-th network event touching zk3" identically in every run of the
// same seed. Durations are virtual-time constants fixed per class, so
// an Instance alone reconstructs the full fault deterministically.
//
// Env sites use '/' separators precisely so they can never collide with
// the dotted "<system>.<component>.<operation>" IDs of error-return
// sites (see the stable site-ID contract above).
package inject

import (
	"strconv"
	"strings"

	"anduril/internal/des"
)

// EnvClass names an environment-fault class.
type EnvClass string

// The environment-fault classes.
const (
	EnvCrash     EnvClass = "crash"
	EnvPartition EnvClass = "partition"
	EnvDrop      EnvClass = "msg-drop"
	EnvDelay     EnvClass = "msg-delay"
)

// Fault kinds produced by environment faults (the surfaced error for
// crash/partition is a ConnectionError from the network layer; these
// kinds record the class at the injection site itself).
const (
	CrashFault     Kind = "CrashFault"
	PartitionFault Kind = "PartitionFault"
	MsgDropFault   Kind = "MsgDropFault"
	MsgDelayFault  Kind = "MsgDelayFault"
)

// envSitePrefix marks environment pseudo-sites; ordinary dotted site IDs
// can never start with it.
const envSitePrefix = "env/"

// Default durations, in virtual time, for the stateful env-fault
// classes. They are exported constants — not plan parameters — so a
// reproduction script (an Instance) fully determines the execution:
//
//   - EnvCrashRestartAfter: how long a crashed node stays down before the
//     environment restarts it with recovered state.
//   - EnvPartitionHealAfter: how long a pairwise cut lasts before healing.
//   - EnvDelayBy: the extra delivery latency a delayed message suffers —
//     chosen to exceed every target's RPC timeout, so a delayed request or
//     response looks lost to the sender but still arrives.
const (
	EnvCrashRestartAfter  = 600 * des.Millisecond
	EnvPartitionHealAfter = 500 * des.Millisecond
	EnvDelayBy            = 400 * des.Millisecond
)

// EnvDuration returns the virtual-time duration for a class (zero for
// instantaneous classes like msg-drop).
func EnvDuration(class EnvClass) des.Time {
	switch class {
	case EnvCrash:
		return EnvCrashRestartAfter
	case EnvPartition:
		return EnvPartitionHealAfter
	case EnvDelay:
		return EnvDelayBy
	default:
		return 0
	}
}

// EnvKind returns the fault Kind recorded for a class.
func EnvKind(class EnvClass) Kind {
	switch class {
	case EnvCrash:
		return CrashFault
	case EnvPartition:
		return PartitionFault
	case EnvDrop:
		return MsgDropFault
	case EnvDelay:
		return MsgDelayFault
	default:
		return Kind("EnvFault")
	}
}

// EnvFault describes one environment fault to execute: the class, the
// subject node (and peer for pairwise classes), the dynamic occurrence
// that triggered it, and the virtual-time duration of its stateful
// phase (down time before restart, cut time before heal, added delay).
type EnvFault struct {
	Class      EnvClass
	Subject    string // node (crash), first node of pair, or sender
	Peer       string // second node of pair, or receiver; empty for crash
	Occurrence int    // 1-based occurrence of the pseudo-site this run
	Duration   des.Time
}

// Site returns the pseudo-site ID addressing this fault.
func (f EnvFault) Site() string { return EnvSiteID(f.Class, f.Subject, f.Peer) }

// EnvSiteID builds the pseudo-site ID for a class and its subject
// node(s). Partition pairs are order-insensitive: the two nodes are
// sorted so env/partition/a~b and env/partition/b~a are the same site.
func EnvSiteID(class EnvClass, subject, peer string) string {
	switch class {
	case EnvCrash:
		return envSitePrefix + string(EnvCrash) + "/" + subject
	case EnvPartition:
		a, b := subject, peer
		if b < a {
			a, b = b, a
		}
		return envSitePrefix + string(EnvPartition) + "/" + a + "~" + b
	default: // msg-drop, msg-delay: directed channel
		return envSitePrefix + string(class) + "/" + subject + ">" + peer
	}
}

// EnvMarker returns the log line the network emits at the moment the
// env fault at this site fires ("", false for non-env sites). The text
// is defined here, next to the site grammar, because two layers depend
// on it staying identical: the network logs it on injection, and the
// explorer treats a failure-log observable equal to a site's sanitized
// marker as direct evidence for that site (the production log names the
// environment event itself).
func EnvMarker(site string) (string, bool) {
	f, ok := ParseEnvSite(site)
	if !ok {
		return "", false
	}
	switch f.Class {
	case EnvCrash:
		return "env: node " + f.Subject + " crashed", true
	case EnvPartition:
		return "env: partition " + f.Subject + "/" + f.Peer + " cut", true
	case EnvDrop:
		return "env: message " + f.Subject + ">" + f.Peer + " dropped", true
	case EnvDelay:
		return "env: message " + f.Subject + ">" + f.Peer + " delayed", true
	}
	return "", false
}

// IsEnvSite reports whether a site ID addresses an environment fault.
func IsEnvSite(site string) bool { return strings.HasPrefix(site, envSitePrefix) }

// EnvClassOf extracts the class from an env pseudo-site ID ("" if the
// site is not an env site or malformed).
func EnvClassOf(site string) EnvClass {
	f, ok := ParseEnvSite(site)
	if !ok {
		return ""
	}
	return f.Class
}

// ParseEnvSite decodes an env pseudo-site ID into an EnvFault template
// (Occurrence zero; Duration filled with the class default). It is the
// inverse of EnvSiteID.
func ParseEnvSite(site string) (EnvFault, bool) {
	rest, ok := strings.CutPrefix(site, envSitePrefix)
	if !ok {
		return EnvFault{}, false
	}
	class, subject, ok := strings.Cut(rest, "/")
	if !ok || subject == "" {
		return EnvFault{}, false
	}
	f := EnvFault{Class: EnvClass(class), Duration: EnvDuration(EnvClass(class))}
	switch f.Class {
	case EnvCrash:
		f.Subject = subject
	case EnvPartition:
		a, b, ok := strings.Cut(subject, "~")
		if !ok || a == "" || b == "" {
			return EnvFault{}, false
		}
		f.Subject, f.Peer = a, b
	case EnvDrop, EnvDelay:
		from, to, ok := strings.Cut(subject, ">")
		if !ok || from == "" || to == "" {
			return EnvFault{}, false
		}
		f.Subject, f.Peer = from, to
	default:
		return EnvFault{}, false
	}
	return f, true
}

// envCarrier is implemented by plans that can report whether any of
// their candidate instances address env pseudo-sites.
type envCarrier interface{ carriesEnv() bool }

func (p exactPlan) carriesEnv() bool { return IsEnvSite(p.inst.Site) }

func (p windowPlan) carriesEnv() bool {
	for c := range p.candidates {
		if IsEnvSite(c.Site) {
			return true
		}
	}
	return false
}

func (p *multiPlan) carriesEnv() bool {
	for _, sub := range p.plans {
		if PlanCarriesEnv(sub) {
			return true
		}
	}
	return false
}

// PlanCarriesEnv reports whether a plan's candidates include any env
// pseudo-site instance. Plans that do not implement the check are
// conservatively assumed to carry env instances, so custom plans work
// under replay without extra wiring.
func PlanCarriesEnv(p Plan) bool {
	if p == nil {
		return false
	}
	if c, ok := p.(envCarrier); ok {
		return c.carriesEnv()
	}
	return true
}

// envActive reports whether env pseudo-sites are reached (counted,
// traced, injectable) this run. Counting is gated so that runs without
// env faults keep byte-identical traces and occurrence counts with
// pre-env builds; a plan that carries env instances force-enables
// counting so deterministic replay of an env script needs no flag.
func (r *Runtime) envActive() bool { return r.EnvEnabled || r.envAuto }

// EnvActive exposes envActive to the network layer, which short-circuits
// its per-message env-site sweep — including building the five pseudo-site
// ID strings — when the run reaches no env sites anyway. Site-only runs
// (the paper's fault space) pay nothing per message for the env machinery.
func (r *Runtime) EnvActive() bool { return r.envActive() }

// ReachEnv is the environment analog of Reach, called by the network
// once per (message, env site) pair. It records the dynamic occurrence
// and returns the EnvFault to execute if the plan injects here. When
// env faults are not enabled for the run it is a no-op returning false.
func (r *Runtime) ReachEnv(site string) (EnvFault, bool) {
	if !r.envActive() {
		return EnvFault{}, false
	}
	f, ok := ParseEnvSite(site)
	if !ok {
		return EnvFault{}, false
	}
	rec := r.site(site)
	rec.count++
	rec.kind = EnvKind(f.Class)
	occ := rec.count

	// Env pseudo-sites are always root-addressed: their occurrence is
	// already a deterministic per-run event index, so the path form is
	// simply "site#occ" with no context edges.
	path := ""
	if r.pathActive() {
		path = site + "#" + strconv.Itoa(occ)
	}
	inject := r.decide(site, occ, path)

	if r.KeepTrace || inject {
		r.record(site, occ, path, inject)
	}

	if !inject {
		return EnvFault{}, false
	}
	f.Occurrence = occ
	return f, true
}
