// Partial faults extend the fault space a third time, past clean typed
// exceptions (site faults) and environment events (env faults), to the
// messy errno-level partial failures real incidents are rooted in: a
// write that persists only a prefix before erroring, ENOSPC striking
// midway through an append, a rename torn between source and
// destination, a send interrupted after the bytes left, a message
// delivered twice. Like env faults, each partial-failure mode is
// addressed through a *pseudo-site*, so the explorer's universal
// currency — the (site, occurrence) Instance — covers the space with no
// new plan, window, tried-set or checkpoint machinery:
//
//	partial/disk/short-write/<site>   persist a prefix of the data, then fail
//	partial/disk/enospc-after/<site>  append a prefix, then report no space
//	partial/disk/torn-rename/<site>   copy to destination but keep the source
//	partial/net/eintr/<site>          deliver the message but fail the sender
//	partial/net/dup-deliver/<from>><to>  deliver the same message twice
//
// The occurrence of a partial pseudo-site counts the reaches of the
// underlying operation: occurrence j of partial/disk/short-write/S is
// the j-th write executed at disk site S, and occurrence j of
// partial/net/dup-deliver/a>b is the j-th message on the a>b channel.
// Semantics are deterministic functions of the operation's own payload
// (the short-write prefix is half the data; the duplicate arrives a
// fixed virtual-time offset later), so an Instance alone reconstructs
// the fault — the Zhang et al. realism idea of calibrating amplitude
// from observed fault-free executions, with the observation made
// exactly at the perturbed call.
//
// Partial sites use '/' separators, like env and pair pseudo-sites, so
// they can never collide with dotted error-return site IDs.
package inject

import (
	"strconv"
	"strings"

	"anduril/internal/des"
)

// PartialClass names a partial-failure fault class.
type PartialClass string

// The partial-failure classes. The disk classes perturb simdisk
// operations; the net classes perturb simnet sends.
const (
	PartialShortWrite PartialClass = "short-write"  // disk: prefix persisted, then error
	PartialENOSPC     PartialClass = "enospc-after" // disk: prefix appended, then no space
	PartialTornRename PartialClass = "torn-rename"  // disk: destination written, source kept
	PartialEINTR      PartialClass = "eintr"        // net: delivered, but sender sees EINTR
	PartialDupDeliver PartialClass = "dup-deliver"  // net: same message delivered twice
)

// Fault kinds produced by partial faults. Duplicated delivery surfaces
// no error to the sender (the kind only labels the injection record);
// eintr reuses the existing Interrupted kind, matching the errno.
const (
	ShortWrite Kind = "ShortWriteError"
	NoSpace    Kind = "NoSpaceError"
	TornRename Kind = "TornRenameError"
	DupDeliver Kind = "DupDeliverFault"
)

// partialSitePrefix marks partial pseudo-sites; ordinary dotted site IDs
// can never start with it.
const partialSitePrefix = "partial/"

// PartialDupOffset is the fixed virtual-time offset at which the second
// copy of a duplicated message is delivered. Like the env durations it
// is an exported constant, not a plan parameter, so a reproduction
// script (an Instance) fully determines the execution.
const PartialDupOffset = 250 * des.Millisecond

// partialMedium returns the medium segment of a class's site ID.
func partialMedium(class PartialClass) string {
	switch class {
	case PartialShortWrite, PartialENOSPC, PartialTornRename:
		return "disk"
	case PartialEINTR, PartialDupDeliver:
		return "net"
	default:
		return ""
	}
}

// PartialKind returns the fault Kind recorded for a class.
func PartialKind(class PartialClass) Kind {
	switch class {
	case PartialShortWrite:
		return ShortWrite
	case PartialENOSPC:
		return NoSpace
	case PartialTornRename:
		return TornRename
	case PartialEINTR:
		return Interrupted
	case PartialDupDeliver:
		return DupDeliver
	default:
		return Kind("PartialFault")
	}
}

// PartialFault describes one partial failure to execute: the class, the
// perturbed subject (a disk or net site ID, or the sender of a
// duplicated channel), the peer (receiver of a duplicated channel; empty
// otherwise), the dynamic occurrence that triggered it, and the
// amplitude observed at the perturbed call (payload length in bytes for
// the disk classes; zero for the net classes, whose semantics need no
// amplitude).
type PartialFault struct {
	Class      PartialClass
	Subject    string // underlying site ID, or sender of the channel
	Peer       string // receiver of the channel; empty for non-channel classes
	Occurrence int    // 1-based occurrence of the pseudo-site this run
	Amp        int    // observed payload length at the perturbed call
}

// Site returns the pseudo-site ID addressing this fault.
func (f PartialFault) Site() string { return PartialSiteID(f.Class, f.Subject, f.Peer) }

// PartialSiteID builds the pseudo-site ID for a class and its subject.
// Channel classes (dup-deliver) take a directed from>to pair; the other
// classes wrap the underlying operation's own site ID.
func PartialSiteID(class PartialClass, subject, peer string) string {
	if class == PartialDupDeliver {
		return partialSitePrefix + partialMedium(class) + "/" + string(class) + "/" + subject + ">" + peer
	}
	return partialSitePrefix + partialMedium(class) + "/" + string(class) + "/" + subject
}

// PartialMarker returns the log line the executing layer emits at the
// moment the partial fault at this site fires ("", false for
// non-partial sites). As with env markers, the text lives next to the
// site grammar because two layers depend on it staying identical: the
// disk/network log it on injection, and the explorer treats a
// failure-log observable equal to a site's sanitized marker as direct
// evidence for that site.
func PartialMarker(site string) (string, bool) {
	f, ok := ParsePartialSite(site)
	if !ok {
		return "", false
	}
	switch f.Class {
	case PartialShortWrite:
		return "partial: short write at " + f.Subject, true
	case PartialENOSPC:
		return "partial: no space after partial append at " + f.Subject, true
	case PartialTornRename:
		return "partial: torn rename at " + f.Subject, true
	case PartialEINTR:
		return "partial: send at " + f.Subject + " interrupted", true
	case PartialDupDeliver:
		return "partial: message " + f.Subject + ">" + f.Peer + " duplicated", true
	}
	return "", false
}

// IsPartialSite reports whether a site ID addresses a partial fault.
func IsPartialSite(site string) bool { return strings.HasPrefix(site, partialSitePrefix) }

// PartialClassOf extracts the class from a partial pseudo-site ID (""
// if the site is not a partial site or malformed).
func PartialClassOf(site string) PartialClass {
	f, ok := ParsePartialSite(site)
	if !ok {
		return ""
	}
	return f.Class
}

// ParsePartialSite decodes a partial pseudo-site ID into a PartialFault
// template (Occurrence and Amp zero). It is the inverse of
// PartialSiteID.
func ParsePartialSite(site string) (PartialFault, bool) {
	rest, ok := strings.CutPrefix(site, partialSitePrefix)
	if !ok {
		return PartialFault{}, false
	}
	medium, rest, ok := strings.Cut(rest, "/")
	if !ok {
		return PartialFault{}, false
	}
	class, subject, ok := strings.Cut(rest, "/")
	if !ok || subject == "" {
		return PartialFault{}, false
	}
	f := PartialFault{Class: PartialClass(class)}
	if partialMedium(f.Class) != medium || medium == "" {
		return PartialFault{}, false
	}
	if f.Class == PartialDupDeliver {
		from, to, ok := strings.Cut(subject, ">")
		if !ok || from == "" || to == "" {
			return PartialFault{}, false
		}
		f.Subject, f.Peer = from, to
		return f, true
	}
	f.Subject = subject
	return f, true
}

// partialCarrier is implemented by plans that can report whether any of
// their candidate instances address partial pseudo-sites.
type partialCarrier interface{ carriesPartial() bool }

func (p exactPlan) carriesPartial() bool { return IsPartialSite(p.inst.Site) }

func (p windowPlan) carriesPartial() bool {
	for c := range p.candidates {
		if IsPartialSite(c.Site) {
			return true
		}
	}
	return false
}

func (p *multiPlan) carriesPartial() bool {
	for _, sub := range p.plans {
		if PlanCarriesPartial(sub) {
			return true
		}
	}
	return false
}

// PlanCarriesPartial reports whether a plan's candidates include any
// partial pseudo-site instance. Plans that do not implement the check
// are conservatively assumed to carry partial instances, so custom
// plans work under replay without extra wiring.
func PlanCarriesPartial(p Plan) bool {
	if p == nil {
		return false
	}
	if c, ok := p.(partialCarrier); ok {
		return c.carriesPartial()
	}
	return true
}

// partialActive reports whether partial pseudo-sites are reached
// (counted, traced, injectable) this run. Counting is gated exactly
// like env counting: runs without partial faults keep byte-identical
// traces and occurrence counts with pre-partial builds, and a plan that
// carries partial instances force-enables counting so deterministic
// replay of a partial script needs no flag.
func (r *Runtime) partialActive() bool { return r.PartialEnabled || r.partialAuto }

// PartialActive exposes partialActive to the disk and network layers,
// which short-circuit their per-operation partial-site sweeps —
// including building the pseudo-site ID strings — when the run reaches
// no partial sites anyway. Site-only runs pay nothing per operation.
func (r *Runtime) PartialActive() bool { return r.partialActive() }

// ReachPartial is the partial-failure analog of Reach, called by the
// disk once per perturbable operation and by the network once per
// (message, partial site) pair. amp is the observed amplitude of the
// operation (payload length for disk writes; zero where amplitude is
// meaningless). It records the dynamic occurrence and returns the
// PartialFault to execute if the plan injects here. When partial faults
// are not enabled for the run it is a no-op returning false.
func (r *Runtime) ReachPartial(site string, amp int) (PartialFault, bool) {
	if !r.partialActive() {
		return PartialFault{}, false
	}
	f, ok := ParsePartialSite(site)
	if !ok {
		return PartialFault{}, false
	}
	rec := r.site(site)
	rec.count++
	rec.kind = PartialKind(f.Class)
	occ := rec.count

	// Partial pseudo-sites are root-addressed like env sites: their
	// occurrence is already a deterministic per-run operation index, so
	// the path form is simply "site#occ" with no context edges.
	path := ""
	if r.pathActive() {
		path = site + "#" + strconv.Itoa(occ)
	}
	inject := r.decide(site, occ, path)

	if r.KeepTrace || inject {
		r.recordAmp(site, occ, path, inject, amp)
	}

	if !inject {
		return PartialFault{}, false
	}
	f.Occurrence = occ
	f.Amp = amp
	return f, true
}
