package inject_test

// FuzzPartialPlan mirrors FuzzEnvPlan for the partial-failure layer, but
// drives a real simdisk.Disk (hence the external test package) so the
// executed semantics are fuzzed, not just the plan bookkeeping:
//
//   - a window mixing partial pseudo-sites with dotted error-return sites
//     never panics, and Decide is idempotent across both site shapes;
//   - a fired short-write or enospc-after persists exactly the documented
//     prefix — at most, and for nonempty payloads strictly less than, the
//     payload the caller handed the disk;
//   - a fired torn rename leaves BOTH paths; a clean injected fault
//     leaves the file untouched;
//   - the window budget of 1 holds across clean and partial injections
//     combined, and the runtime records exactly the faults observed.

import (
	"fmt"
	"testing"

	"anduril/internal/inject"
	"anduril/internal/simdisk"
)

// fuzzPartialSite maps a byte onto a small partial pseudo-site alphabet
// covering every class, always in PartialSiteID's canonical form.
func fuzzPartialSite(b byte) string {
	disk := func(x byte) string { return fmt.Sprintf("d.s%d", x%3) }
	node := func(x byte) string { return fmt.Sprintf("n%d", x%3) }
	switch b % 5 {
	case 0:
		return inject.PartialSiteID(inject.PartialShortWrite, disk(b>>3), "")
	case 1:
		return inject.PartialSiteID(inject.PartialENOSPC, disk(b>>3), "")
	case 2:
		return inject.PartialSiteID(inject.PartialTornRename, disk(b>>3), "")
	case 3:
		return inject.PartialSiteID(inject.PartialEINTR, disk(b>>3), "")
	default:
		return inject.PartialSiteID(inject.PartialDupDeliver, node(b>>3), node(b>>5))
	}
}

func FuzzPartialPlan(f *testing.F) {
	f.Add([]byte{0, 7, 16, 33, 64}, []byte{10, 60, 130, 200, 10, 10})
	f.Add([]byte{}, []byte{0, 0, 0})
	f.Add([]byte{5, 10, 129, 254}, []byte{255, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, candBytes, ops []byte) {
		if len(candBytes) > 64 || len(ops) > 256 {
			t.Skip("keep the search space small")
		}
		// Candidates mix partial pseudo-sites and dotted error-return
		// sites in one window, like a combined-class search round.
		cands := make([]inject.Instance, 0, len(candBytes))
		carries := false
		for i, b := range candBytes {
			site := fmt.Sprintf("d.s%d", b%3)
			if i%2 == 0 {
				site = fuzzPartialSite(b)
				carries = true
			}
			cands = append(cands, inject.Instance{Site: site, Occurrence: int(b>>3)%8 + 1})
		}
		plan := inject.Window(cands)
		if inject.PlanCarriesPartial(plan) != carries {
			t.Fatalf("PlanCarriesPartial=%v, candidates carry partial: %v",
				inject.PlanCarriesPartial(plan), carries)
		}

		// Decide is pure across both site shapes: repeated consultation
		// with identical arguments agrees.
		for _, b := range candBytes {
			for _, site := range []string{fmt.Sprintf("d.s%d", b%3), fuzzPartialSite(b)} {
				occ := int(b>>3)%8 + 1
				if plan.Decide(site, occ) != plan.Decide(site, occ) {
					t.Fatalf("Decide(%s,%d) not idempotent", site, occ)
				}
			}
		}

		// Drive a real disk under the mixed plan. The plan carries partial
		// instances (when carries), so the runtime self-activates the
		// partial sweep — no flag, exactly like script replay.
		r := inject.NewRuntime(plan)
		d := simdisk.New(r, nil)
		fired := 0
		for i, b := range ops {
			site := fmt.Sprintf("d.s%d", b%3)
			path := fmt.Sprintf("f%d", int(b>>6))
			dst := fmt.Sprintf("r%d", i)
			payload := make([]byte, int(b>>2)%17)
			for j := range payload {
				payload[j] = byte(i + j)
			}
			before := d.Size(path)
			var err error
			wantPrefix := -1
			switch int(b>>4) % 3 {
			case 0:
				err = d.Append(site, path, payload)
				wantPrefix = before + len(payload)/2
			case 1:
				err = d.Write(site, path, payload)
				wantPrefix = len(payload) / 2
			default:
				if !d.Exists(path) {
					if cerr := d.Create(site, path); cerr != nil {
						fired++ // Create has no partial sites; only a clean injection errors
						continue
					}
				}
				err = d.Rename(site, path, dst)
			}
			if err == nil {
				continue
			}
			fault, ok := inject.AsFault(err)
			if !ok {
				t.Fatalf("disk error %v is not a Fault", err)
			}
			switch fault.Kind {
			case inject.ShortWrite, inject.NoSpace:
				fired++
				if !inject.IsPartialSite(fault.Site) {
					t.Fatalf("%s fault attributed to non-partial site %s", fault.Kind, fault.Site)
				}
				if len(payload)/2 > len(payload) {
					t.Fatalf("prefix %d exceeds payload %d", len(payload)/2, len(payload))
				}
				if len(payload) > 0 && len(payload)/2 >= len(payload) {
					t.Fatalf("prefix %d of nonempty payload %d is not strict", len(payload)/2, len(payload))
				}
				if d.Size(path) != wantPrefix {
					t.Fatalf("%s persisted %d bytes at %s, want prefix state %d",
						fault.Kind, d.Size(path), path, wantPrefix)
				}
			case inject.TornRename:
				fired++
				if !d.Exists(path) || !d.Exists(dst) {
					t.Fatalf("torn rename left src=%v dst=%v, want both", d.Exists(path), d.Exists(dst))
				}
			case inject.IO:
				// Clean injected fault at the operation's own site: the
				// all-or-nothing baseline leaves the file untouched.
				fired++
				if wantPrefix >= 0 && d.Size(path) != before {
					t.Fatalf("clean fault mutated %s: %d bytes, had %d", path, d.Size(path), before)
				}
			case inject.FileNotFound:
				// Environment error for a missing path, not an injection.
			default:
				t.Fatalf("unexpected fault kind %s from the disk", fault.Kind)
			}
		}
		if fired > 1 {
			t.Fatalf("window fired %d times, budget is 1", fired)
		}
		if len(r.InjectedAll()) != fired {
			t.Fatalf("runtime recorded %d injections, saw %d faults", len(r.InjectedAll()), fired)
		}
	})
}
