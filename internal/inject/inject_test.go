package inject

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestNoPlanNeverInjects(t *testing.T) {
	r := NewRuntime(nil)
	for i := 0; i < 100; i++ {
		if err := r.Reach("s1", IO); err != nil {
			t.Fatalf("unexpected injection: %v", err)
		}
	}
	if c := r.Counts()["s1"]; c != 100 {
		t.Fatalf("count=%d", c)
	}
	if _, ok := r.Injected(); ok {
		t.Fatal("injected reported without plan")
	}
	if len(r.Trace()) != 100 {
		t.Fatalf("trace len=%d", len(r.Trace()))
	}
}

func TestExactPlanInjectsOnce(t *testing.T) {
	r := NewRuntime(Exact(Instance{Site: "s1", Occurrence: 3}))
	var faults []error
	for i := 0; i < 5; i++ {
		if err := r.Reach("s1", Timeout); err != nil {
			faults = append(faults, err)
		}
	}
	if len(faults) != 1 {
		t.Fatalf("faults=%d, want 1", len(faults))
	}
	f, ok := AsFault(faults[0])
	if !ok || f.Site != "s1" || f.Occurrence != 3 || f.Kind != Timeout {
		t.Fatalf("fault: %+v", f)
	}
	ev, ok := r.Injected()
	if !ok || ev.Occurrence != 3 || !ev.Injected {
		t.Fatalf("injected event: %+v ok=%v", ev, ok)
	}
}

func TestExactPlanWrongSite(t *testing.T) {
	r := NewRuntime(Exact(Instance{Site: "other", Occurrence: 1}))
	for i := 0; i < 10; i++ {
		if err := r.Reach("s1", IO); err != nil {
			t.Fatalf("injected at wrong site: %v", err)
		}
	}
}

func TestWindowPlanFirstReachedWins(t *testing.T) {
	r := NewRuntime(Window([]Instance{
		{Site: "a", Occurrence: 2},
		{Site: "b", Occurrence: 1},
	}))
	if err := r.Reach("a", IO); err != nil {
		t.Fatalf("a#1 should not inject: %v", err)
	}
	if err := r.Reach("b", Socket); err == nil {
		t.Fatal("b#1 should inject")
	}
	// After one injection the runtime stops injecting.
	if err := r.Reach("a", IO); err != nil {
		t.Fatalf("a#2 injected after window consumed: %v", err)
	}
	ev, _ := r.Injected()
	if ev.Site != "b" || ev.Occurrence != 1 {
		t.Fatalf("injected: %+v", ev)
	}
}

func TestFaultErrorsIsMatching(t *testing.T) {
	var err error = &Fault{Kind: IO, Site: "s", Occurrence: 1}
	if !errors.Is(err, KindErr(IO)) {
		t.Fatal("kind match failed")
	}
	if errors.Is(err, KindErr(Timeout)) {
		t.Fatal("kind mismatch matched")
	}
	wrapped := fmt.Errorf("sync failed: %w", err)
	if !errors.Is(wrapped, KindErr(IO)) {
		t.Fatal("wrapped kind match failed")
	}
	f, ok := AsFault(wrapped)
	if !ok || f.Site != "s" {
		t.Fatal("AsFault through wrap failed")
	}
}

func TestTraceRecordsPositions(t *testing.T) {
	pos := 0
	r := NewRuntime(nil)
	r.LogPos = func() int { return pos }
	r.Thread = func() string { return "worker" }
	r.Reach("s", IO)
	pos = 7
	r.Reach("s", IO)
	tr := r.Trace()
	if tr[0].LogPos != 0 || tr[1].LogPos != 7 {
		t.Fatalf("logpos: %d %d", tr[0].LogPos, tr[1].LogPos)
	}
	if tr[0].Thread != "worker" || tr[1].Occurrence != 2 {
		t.Fatalf("trace: %+v", tr)
	}
}

func TestKeepTraceOff(t *testing.T) {
	r := NewRuntime(Exact(Instance{Site: "s", Occurrence: 2}))
	r.KeepTrace = false
	r.Reach("s", IO)
	r.Reach("s", IO)
	if len(r.Trace()) != 0 {
		t.Fatalf("trace kept: %d", len(r.Trace()))
	}
	if ev, ok := r.Injected(); !ok || ev.Occurrence != 2 {
		t.Fatalf("injection not recorded: %+v %v", ev, ok)
	}
}

func TestDecisionsCounted(t *testing.T) {
	r := NewRuntime(Exact(Instance{Site: "s", Occurrence: 100}))
	for i := 0; i < 50; i++ {
		r.Reach("s", IO)
	}
	n, _ := r.Decisions()
	if n != 50 {
		t.Fatalf("decisions=%d, want 50", n)
	}
}

func TestKindRecorded(t *testing.T) {
	r := NewRuntime(nil)
	r.Reach("s", Checksum)
	if k, ok := r.Kind("s"); !ok || k != Checksum {
		t.Fatalf("kind=%v ok=%v", k, ok)
	}
	if _, ok := r.Kind("unknown"); ok {
		t.Fatal("unknown site has kind")
	}
}

// Property: occurrences are dense, 1-based, and per-site independent.
func TestOccurrenceProperty(t *testing.T) {
	f := func(reaches []uint8) bool {
		r := NewRuntime(nil)
		want := map[string]int{}
		for _, b := range reaches {
			site := fmt.Sprintf("site-%d", b%5)
			want[site]++
			r.Reach(site, IO)
		}
		for s, n := range want {
			if r.Counts()[s] != n {
				return false
			}
		}
		// Trace occurrences per site must be 1..n in order.
		seen := map[string]int{}
		for _, ev := range r.Trace() {
			seen[ev.Site]++
			if ev.Occurrence != seen[ev.Site] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: an Exact plan injects iff the instance is reached, and exactly once.
func TestExactPlanProperty(t *testing.T) {
	f := func(occ uint8, total uint8) bool {
		target := int(occ%20) + 1
		n := int(total % 40)
		r := NewRuntime(Exact(Instance{Site: "s", Occurrence: target}))
		injections := 0
		for i := 0; i < n; i++ {
			if r.Reach("s", IO) != nil {
				injections++
			}
		}
		if n >= target {
			return injections == 1
		}
		return injections == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiPlanBudgetAndNilSubplans(t *testing.T) {
	// A nil sub-plan never injects, so it contributes 0 to the budget: the
	// budget is the sum of the parts that can actually fire.
	plan := Multi(nil, Exact(Instance{Site: "a", Occurrence: 1}))
	if b, ok := plan.(Budgeter); !ok || b.Budget() != 1 {
		t.Fatalf("budget: %v", plan)
	}
	r := NewRuntime(plan)
	if r.Reach("a", IO) == nil {
		t.Fatal("a#1 should inject despite the nil subplan")
	}
	// Each subplan fires at most once.
	if r.Reach("a", IO) != nil {
		t.Fatal("a#2 should not inject")
	}
}

func TestFaultIsMatchesSiteAndKind(t *testing.T) {
	var err error = &Fault{Kind: Socket, Site: "net.op", Occurrence: 2}
	if !errors.Is(err, &Fault{}) {
		t.Fatal("empty prototype should match any fault")
	}
	if !errors.Is(err, &Fault{Site: "net.op"}) {
		t.Fatal("site-only prototype should match")
	}
	if errors.Is(err, &Fault{Site: "other"}) {
		t.Fatal("wrong site matched")
	}
	if errors.Is(err, errors.New("plain")) {
		t.Fatal("non-fault target matched")
	}
}

func TestWindowEmptyNeverInjects(t *testing.T) {
	r := NewRuntime(Window(nil))
	for i := 0; i < 10; i++ {
		if r.Reach("s", IO) != nil {
			t.Fatal("empty window injected")
		}
	}
}

// Counts hands back a copy: mutating it must not corrupt the runtime's
// occurrence numbering or subsequent plan decisions.
func TestCountsReturnsCopy(t *testing.T) {
	r := NewRuntime(Exact(Instance{Site: "s", Occurrence: 3}))
	if err := r.Reach("s", IO); err != nil {
		t.Fatalf("occ 1 injected: %v", err)
	}
	c := r.Counts()
	c["s"] = 100
	c["phantom"] = 7
	delete(c, "s")
	if err := r.Reach("s", IO); err != nil {
		t.Fatalf("occ 2 injected after Counts mutation: %v", err)
	}
	if err := r.Reach("s", IO); err == nil {
		t.Fatal("occ 3 should inject; Counts mutation corrupted the numbering")
	}
	fresh := r.Counts()
	if fresh["s"] != 3 {
		t.Fatalf("counts[s]=%d, want 3", fresh["s"])
	}
	if _, ok := fresh["phantom"]; ok {
		t.Fatal("mutation of the returned map leaked into the runtime")
	}
}

func TestMultiPlanNestedBudgetSums(t *testing.T) {
	inner := Multi(
		Exact(Instance{Site: "a", Occurrence: 1}),
		Exact(Instance{Site: "b", Occurrence: 1}),
	)
	outer := Multi(inner, Exact(Instance{Site: "c", Occurrence: 1}))
	if b := outer.(Budgeter).Budget(); b != 3 {
		t.Fatalf("nested budget=%d, want 3 (sum of parts)", b)
	}
	// Every leaf may fire once: the nested Multi is not capped at one.
	r := NewRuntime(outer)
	for _, site := range []string{"a", "b", "c"} {
		if err := r.Reach(site, IO); err == nil {
			t.Fatalf("%s#1 should inject", site)
		}
	}
	if n := len(r.InjectedAll()); n != 3 {
		t.Fatalf("injected %d faults, want 3", n)
	}
}

func TestRuntimeHooksOptional(t *testing.T) {
	// A runtime with no LogPos/Thread/Now hooks must still trace safely.
	r := NewRuntime(Exact(Instance{Site: "s", Occurrence: 1}))
	if err := r.Reach("s", IO); err == nil {
		t.Fatal("should inject")
	}
	ev, ok := r.Injected()
	if !ok || ev.Thread != "" || ev.LogPos != 0 {
		t.Fatalf("event: %+v", ev)
	}
}
