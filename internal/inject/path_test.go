package inject

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genPathAddr builds a random but well-formed PathAddr: dotted edge
// labels and terminal sites drawn from a small alphabet, sequence and
// occurrence numbers in a small positive range, and (one time in four)
// an env pseudo-site terminal, which the grammar addresses edge-less.
func genPathAddr(r *rand.Rand) PathAddr {
	labels := []string{"client.put", "coord.write", "dyn.store.persist", "a", "x.y.z-w"}
	if r.Intn(4) == 0 {
		site := EnvSiteID(EnvCrash, "n1", "")
		if r.Intn(2) == 0 {
			site = EnvSiteID(EnvPartition, "n1", "n2")
		}
		return PathAddr{Site: site, N: r.Intn(9) + 1}
	}
	a := PathAddr{Site: labels[r.Intn(len(labels))], N: r.Intn(9) + 1}
	for i := r.Intn(4); i > 0; i-- {
		a.Edges = append(a.Edges, PathEdge{
			Label: labels[r.Intn(len(labels))],
			Seq:   r.Intn(3) + 1,
		})
	}
	return a
}

// TestPathAddrQuickRoundTrip: the canonical string form and the struct
// form are inverses over the whole grammar, env pseudo-sites included.
func TestPathAddrQuickRoundTrip(t *testing.T) {
	round := func(a PathAddr) bool {
		s := a.String()
		got, ok := ParsePathAddr(s)
		return ok && reflect.DeepEqual(got, a) && got.String() == s
	}
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(genPathAddr(r))
		},
	}
	if err := quick.Check(round, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPathAddrParseRejects(t *testing.T) {
	for _, s := range []string{
		"",                    // no terminal
		"a.b",                 // missing #n
		"a.b#0",               // occurrence must be 1-based
		"a.b#-1",              // negative
		"a.b#x",               // non-numeric
		"#3",                  // empty site
		">a.b#1",              // empty edge label
		"a[0]>b#1",            // sequence must be 1-based
		"a[2>b#1",             // unterminated seq
		"a[x]>b#1",            // non-numeric seq
		"a+b>c#1",             // '+' is reserved for pair member refs
		"a:1>c#1",             // ':' is reserved for member refs
		"env/bogus-class/x#1", // unknown env class
	} {
		if _, ok := ParsePathAddr(s); ok {
			t.Errorf("ParsePathAddr(%q) accepted", s)
		}
	}
}

func TestPathAddrCanonicalSeqOne(t *testing.T) {
	a := PathAddr{Edges: []PathEdge{{Label: "client.put", Seq: 1}, {Label: "coord.write", Seq: 2}},
		Site: "dyn.store.persist", N: 1}
	if got, want := a.String(), "client.put>coord.write[2]>dyn.store.persist#1"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestPairInstanceRoundTrip: pair instances survive the member-ref
// encoding in both addressing modes, including self-pairs.
func TestPairInstanceRoundTrip(t *testing.T) {
	cases := [][2]Instance{
		{{Site: "a.x", Occurrence: 3}, {Site: "b.y", Occurrence: 7}},
		{{Site: "b.y", Occurrence: 7}, {Site: "a.x", Occurrence: 3}},          // order-insensitive
		{{Site: "a.x", Occurrence: 1}, {Site: "a.x", Occurrence: 2}},          // self-pair
		{{Site: "a.x", Path: "r>a.x#2"}, {Site: "b.y", Path: "r[3]>b.y#1"}},   // path-addressed
		{{Site: "env/crash/n1", Occurrence: 4}, {Site: "a.x", Occurrence: 1}}, // site×env
	}
	for _, c := range cases {
		pi := PairInstance(c[0], c[1])
		if !IsPairSite(pi.Site) {
			t.Fatalf("pair site %q not recognized", pi.Site)
		}
		a, b, ok := PairMembers(pi)
		if !ok {
			t.Fatalf("PairMembers(%v) failed", pi)
		}
		// Members come back in canonical order; compare as a set.
		in := map[Instance]bool{c[0]: true, c[1]: true}
		if !in[a] || !in[b] || (a == b && c[0] != c[1]) {
			t.Fatalf("members (%v, %v) != inputs %v", a, b, c)
		}
		// The pseudo-site is order-insensitive.
		if pi2 := PairInstance(c[1], c[0]); pi2.Site != pi.Site || pi2.Path != pi.Path {
			t.Fatalf("PairInstance not symmetric: %v vs %v", pi, pi2)
		}
	}
}

// countingPlan records every Decide consultation; used to pin the
// uniform short-circuit: after the round's budget is spent, no fault
// class consults the plan again.
type countingPlan struct {
	calls  int
	target Instance
}

func (p *countingPlan) Decide(site string, occ int) bool {
	p.calls++
	return site == p.target.Site && occ == p.target.Occurrence
}

// TestUniformDecideShortCircuit: one Decide stream per round, shared by
// error sites and env pseudo-sites. Once the budget is spent on either
// class, reaches of the other class must not consult the plan.
func TestUniformDecideShortCircuit(t *testing.T) {
	envSite := EnvSiteID(EnvCrash, "n1", "")

	t.Run("site injection silences env reaches", func(t *testing.T) {
		p := &countingPlan{target: Instance{Site: "a.x", Occurrence: 1}}
		r := NewRuntime(p)
		r.EnvEnabled = true
		if err := r.Reach("a.x", IO); err == nil {
			t.Fatal("target reach did not inject")
		}
		before := p.calls
		if _, ok := r.ReachEnv(envSite); ok {
			t.Fatal("env reach injected after the budget was spent")
		}
		if err := r.Reach("a.x", IO); err != nil {
			t.Fatal("second site reach injected after the budget was spent")
		}
		if p.calls != before {
			t.Fatalf("plan consulted %d more times after the budget was spent", p.calls-before)
		}
	})

	t.Run("env injection silences site reaches", func(t *testing.T) {
		p := &countingPlan{target: Instance{Site: envSite, Occurrence: 1}}
		r := NewRuntime(p)
		r.EnvEnabled = true
		if _, ok := r.ReachEnv(envSite); !ok {
			t.Fatal("target env reach did not inject")
		}
		before := p.calls
		if err := r.Reach("a.x", IO); err != nil {
			t.Fatal("site reach injected after the budget was spent")
		}
		if _, ok := r.ReachEnv(envSite); ok {
			t.Fatal("second env reach injected after the budget was spent")
		}
		if p.calls != before {
			t.Fatalf("plan consulted %d more times after the budget was spent", p.calls-before)
		}
		if n, _ := r.Decisions(); n != before {
			t.Fatalf("Decisions()=%d, want %d (short-circuited reaches are not requests)", n, before)
		}
	})
}

// TestPairPlanCommitAndReset: the first member reached commits the round
// to one pair, only that pair's other member may then fire, and Reset
// restores the plan for a fresh trial.
func TestPairPlanCommitAndReset(t *testing.T) {
	pairs := [][2]Instance{
		{{Site: "a.x", Occurrence: 1}, {Site: "b.y", Occurrence: 2}},
		{{Site: "c.z", Occurrence: 1}, {Site: "b.y", Occurrence: 1}},
	}
	p := PairWindow(pairs)
	if p.Budget() != 2 {
		t.Fatalf("Budget()=%d, want 2", p.Budget())
	}
	if _, ok := p.Committed(); ok {
		t.Fatal("committed before any member fired")
	}
	// b.y#1 is a member of the second pair only.
	if !p.Decide("b.y", 1) {
		t.Fatal("first member of pair 1 did not fire")
	}
	if idx, ok := p.Committed(); !ok || idx != 1 {
		t.Fatalf("Committed()=(%d,%v), want (1,true)", idx, ok)
	}
	// Members of the uncommitted pair are dead now.
	if p.Decide("a.x", 1) || p.Decide("b.y", 2) {
		t.Fatal("member of an uncommitted pair fired after commit")
	}
	// The committed member does not fire twice.
	if p.Decide("b.y", 1) {
		t.Fatal("same member fired twice")
	}
	if !p.Decide("c.z", 1) {
		t.Fatal("other member of the committed pair did not fire")
	}
	p.Reset()
	if _, ok := p.Committed(); ok {
		t.Fatal("Reset did not uncommit")
	}
	if !p.Decide("a.x", 1) {
		t.Fatal("after Reset the first pair cannot commit")
	}
}
