package inject

// Fuzz targets for the plan invariants the explorer relies on:
//
//   - a plan never fires twice for the same (site, occ) in one run;
//   - a run never injects more faults than the plan's budget;
//   - Multi's budget equals the sum of its parts (nil parts contribute 0);
//   - Decide is idempotent per occurrence for the pure plans (Exact,
//     Window): consulting it repeatedly returns the same answer and does
//     not disturb later decisions.
//
// Each FuzzX function doubles as a property test over its seed corpus
// under plain `go test`; CI additionally runs each with -fuzz for a short
// randomized budget.

import (
	"fmt"
	"testing"
)

// fuzzSite maps a byte onto a small site alphabet so reach sequences
// collide with plan candidates often enough to be interesting.
func fuzzSite(b byte) string { return fmt.Sprintf("s%d", b%6) }

// fuzzOcc maps a byte onto a small 1-based occurrence range.
func fuzzOcc(b byte) int { return int(b%8) + 1 }

func FuzzExactPlan(f *testing.F) {
	f.Add(byte(1), byte(2), []byte{1, 1, 1, 7, 1})
	f.Add(byte(0), byte(0), []byte{})
	f.Add(byte(5), byte(7), []byte{5, 5, 5, 5, 5, 5, 5, 5, 5})
	f.Fuzz(func(t *testing.T, siteSel, occSel byte, reaches []byte) {
		target := Instance{Site: fuzzSite(siteSel), Occurrence: fuzzOcc(occSel)}
		plan := Exact(target)

		// Decide is pure: repeated consultation of any (site, occ) agrees,
		// and matches iff it names the exact instance.
		for _, b := range reaches {
			site, occ := fuzzSite(b), fuzzOcc(b>>3)
			want := site == target.Site && occ == target.Occurrence
			if plan.Decide(site, occ) != want || plan.Decide(site, occ) != want {
				t.Fatalf("Exact.Decide(%s,%d) not idempotent or wrong (want %v)", site, occ, want)
			}
		}

		r := NewRuntime(plan)
		counts := map[string]int{}
		injections := 0
		for _, b := range reaches {
			site := fuzzSite(b)
			counts[site]++
			if err := r.Reach(site, IO); err != nil {
				injections++
				fault, ok := AsFault(err)
				if !ok || fault.Site != target.Site || fault.Occurrence != target.Occurrence {
					t.Fatalf("injected %v, want %v", err, target)
				}
			}
		}
		want := 0
		if counts[target.Site] >= target.Occurrence {
			want = 1
		}
		if injections != want {
			t.Fatalf("injections=%d, want %d (site reached %d times, target occ %d)",
				injections, want, counts[target.Site], target.Occurrence)
		}
	})
}

func FuzzWindowPlan(f *testing.F) {
	f.Add([]byte{1, 9, 17}, []byte{1, 2, 3, 1, 1})
	f.Add([]byte{}, []byte{0, 0, 0})
	f.Add([]byte{42, 42, 7}, []byte{42, 7, 42, 7})
	f.Fuzz(func(t *testing.T, candBytes, reaches []byte) {
		cands := make([]Instance, 0, len(candBytes))
		inWindow := map[Instance]bool{}
		for _, b := range candBytes {
			inst := Instance{Site: fuzzSite(b), Occurrence: fuzzOcc(b >> 3)}
			cands = append(cands, inst)
			inWindow[inst] = true
		}
		plan := Window(cands)

		// Decide is pure and matches exactly the candidate set.
		for _, b := range reaches {
			site, occ := fuzzSite(b), fuzzOcc(b>>3)
			want := inWindow[Instance{Site: site, Occurrence: occ}]
			if plan.Decide(site, occ) != want || plan.Decide(site, occ) != want {
				t.Fatalf("Window.Decide(%s,%d) not idempotent or wrong (want %v)", site, occ, want)
			}
		}

		// Through the runtime: the first reach hitting the window fires,
		// nothing after it (budget 1), never twice for one (site, occ).
		r := NewRuntime(plan)
		counts := map[string]int{}
		var fired []Instance
		expectFired := false
		for _, b := range reaches {
			site := fuzzSite(b)
			counts[site]++
			hit := inWindow[Instance{Site: site, Occurrence: counts[site]}]
			err := r.Reach(site, IO)
			if err != nil {
				fired = append(fired, Instance{Site: site, Occurrence: counts[site]})
				if !hit {
					t.Fatalf("injected at %s#%d which is not in the window", site, counts[site])
				}
				if expectFired {
					t.Fatal("second injection after the budget was spent")
				}
			} else if hit && !expectFired {
				t.Fatalf("first window hit %s#%d did not inject", site, counts[site])
			}
			expectFired = expectFired || hit
		}
		if len(fired) > 1 {
			t.Fatalf("window fired %d times, budget is 1", len(fired))
		}
		if len(r.InjectedAll()) != len(fired) {
			t.Fatalf("runtime recorded %d injections, saw %d faults", len(r.InjectedAll()), len(fired))
		}
	})
}

// fuzzEnvSite maps a byte onto a small env pseudo-site alphabet covering
// every class, always in EnvSiteID's canonical form.
func fuzzEnvSite(b byte) string {
	node := func(x byte) string { return fmt.Sprintf("n%d", x%3) }
	switch b % 4 {
	case 0:
		return EnvSiteID(EnvCrash, node(b>>2), "")
	case 1:
		return EnvSiteID(EnvPartition, node(b>>2), node(b>>4))
	case 2:
		return EnvSiteID(EnvDrop, node(b>>2), node(b>>4))
	default:
		return EnvSiteID(EnvDelay, node(b>>2), node(b>>4))
	}
}

func FuzzEnvPlan(f *testing.F) {
	f.Add([]byte{1, 9, 17, 0}, []byte{1, 2, 3, 1, 1})
	f.Add([]byte{}, []byte{0, 0, 0})
	f.Add([]byte{4, 8, 16, 32, 64}, []byte{4, 4, 8, 8, 16, 16})
	f.Fuzz(func(t *testing.T, candBytes, reaches []byte) {
		if len(candBytes) > 64 || len(reaches) > 512 {
			t.Skip("keep the search space small")
		}
		// Candidates mix env pseudo-sites and dotted error-return sites in
		// one window, like a combined-class search round.
		cands := make([]Instance, 0, len(candBytes))
		inWindow := map[Instance]bool{}
		carriesEnv := false
		for i, b := range candBytes {
			site := fuzzSite(b)
			if i%2 == 0 {
				site = fuzzEnvSite(b)
				carriesEnv = true
			}
			inst := Instance{Site: site, Occurrence: fuzzOcc(b >> 3)}
			cands = append(cands, inst)
			inWindow[inst] = true
		}
		plan := Window(cands)
		if PlanCarriesEnv(plan) != carriesEnv {
			t.Fatalf("PlanCarriesEnv=%v, candidates carry env: %v", PlanCarriesEnv(plan), carriesEnv)
		}

		// Decide is pure across both site shapes.
		for _, b := range reaches {
			for _, site := range []string{fuzzSite(b), fuzzEnvSite(b)} {
				occ := fuzzOcc(b >> 3)
				want := inWindow[Instance{Site: site, Occurrence: occ}]
				if plan.Decide(site, occ) != want || plan.Decide(site, occ) != want {
					t.Fatalf("Decide(%s,%d) not idempotent or wrong (want %v)", site, occ, want)
				}
			}
		}

		// Through the runtime: interleave error-return reaches with env
		// reaches. A plan carrying env instances self-activates ReachEnv;
		// nothing fires twice for one (site, occ) and the budget holds.
		r := NewRuntime(plan)
		counts := map[string]int{}
		seen := map[Instance]bool{}
		fired := 0
		for _, b := range reaches {
			site := fuzzSite(b)
			counts[site]++
			if err := r.Reach(site, IO); err != nil {
				inst := Instance{Site: site, Occurrence: counts[site]}
				if seen[inst] {
					t.Fatalf("site plan fired twice for %s#%d", inst.Site, inst.Occurrence)
				}
				seen[inst] = true
				fired++
			}
			env := fuzzEnvSite(b)
			envFault, ok := r.ReachEnv(env)
			if ok {
				if !carriesEnv {
					t.Fatalf("env injection %s from a plan with no env candidates", env)
				}
				counts[env]++
				inst := Instance{Site: env, Occurrence: counts[env]}
				if !inWindow[inst] {
					t.Fatalf("env injection %s#%d not in the window", env, counts[env])
				}
				if seen[inst] {
					t.Fatalf("env plan fired twice for %s#%d", inst.Site, inst.Occurrence)
				}
				seen[inst] = true
				fired++
				if envFault.Site() != env || envFault.Occurrence != counts[env] {
					t.Fatalf("env fault %+v does not round-trip site %s#%d", envFault, env, counts[env])
				}
				if envFault.Duration != EnvDuration(envFault.Class) {
					t.Fatalf("env fault duration %v, want class default %v", envFault.Duration, EnvDuration(envFault.Class))
				}
			} else if carriesEnv {
				counts[env]++ // ReachEnv counted it; mirror for the oracle below
				if inWindow[Instance{Site: env, Occurrence: counts[env]}] && fired == 0 {
					t.Fatalf("first window hit %s#%d did not inject", env, counts[env])
				}
			}
		}
		if fired > 1 {
			t.Fatalf("window fired %d times, budget is 1", fired)
		}
		if len(r.InjectedAll()) != fired {
			t.Fatalf("runtime recorded %d injections, saw %d", len(r.InjectedAll()), fired)
		}
	})
}

func FuzzMultiPlan(f *testing.F) {
	f.Add([]byte{1, 9, 100}, []byte{1, 2, 3, 1, 4, 5, 1})
	f.Add([]byte{0}, []byte{0, 0, 0, 0})
	f.Add([]byte{3, 3, 3, 80, 81, 82}, []byte{3, 3, 3, 3, 0, 1, 2})
	f.Fuzz(func(t *testing.T, spec, reaches []byte) {
		if len(spec) > 32 || len(reaches) > 512 {
			t.Skip("keep the search space small")
		}
		// Build a plan tree from spec: bytes become Exact leaves, Window
		// leaves, or nil parts; a long spec nests the second half in an
		// inner Multi to exercise recursive budget summing.
		build := func(bytes []byte) ([]Plan, int) {
			plans := make([]Plan, 0, len(bytes))
			budget := 0
			for _, b := range bytes {
				switch b % 3 {
				case 0:
					plans = append(plans, Exact(Instance{Site: fuzzSite(b), Occurrence: fuzzOcc(b >> 3)}))
					budget++
				case 1:
					plans = append(plans, Window([]Instance{
						{Site: fuzzSite(b), Occurrence: fuzzOcc(b >> 3)},
						{Site: fuzzSite(b >> 2), Occurrence: fuzzOcc(b >> 5)},
					}))
					budget++
				default:
					plans = append(plans, nil)
				}
			}
			return plans, budget
		}
		var plan Plan
		var wantBudget int
		if len(spec) > 4 {
			outer, ob := build(spec[:len(spec)/2])
			inner, ib := build(spec[len(spec)/2:])
			plan = Multi(append(outer, Multi(inner...))...)
			wantBudget = ob + ib
		} else {
			plans, b := build(spec)
			plan = Multi(plans...)
			wantBudget = b
		}

		if got := plan.(Budgeter).Budget(); got != wantBudget {
			t.Fatalf("Multi budget=%d, want sum of parts %d", got, wantBudget)
		}

		r := NewRuntime(plan)
		counts := map[string]int{}
		seen := map[Instance]bool{}
		for _, b := range reaches {
			site := fuzzSite(b)
			counts[site]++
			if err := r.Reach(site, IO); err != nil {
				inst := Instance{Site: site, Occurrence: counts[site]}
				if seen[inst] {
					t.Fatalf("plan fired twice for %s#%d", inst.Site, inst.Occurrence)
				}
				seen[inst] = true
			}
		}
		if n := len(r.InjectedAll()); n > wantBudget {
			t.Fatalf("injected %d faults, budget %d", n, wantBudget)
		}
		// Every recorded injection is a distinct (site, occ).
		unique := map[Instance]bool{}
		for _, ev := range r.InjectedAll() {
			inst := Instance{Site: ev.Site, Occurrence: ev.Occurrence}
			if unique[inst] {
				t.Fatalf("runtime recorded %s#%d twice", ev.Site, ev.Occurrence)
			}
			unique[inst] = true
		}
	})
}

// FuzzPathPlan mirrors FuzzEnvPlan for the path-addressing layer: a
// window mixing path- and occurrence-addressed candidates combined with
// a pair plan must never panic, the pure window's DecidePath must be
// idempotent, and a path-enabled runtime must respect the combined
// budget and record parseable root-context paths for every injection.
func FuzzPathPlan(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, []byte{1, 1, 2, 3, 5, 8})
	f.Add([]byte{}, []byte{0})
	f.Add([]byte{7, 7, 7, 7, 7, 7}, []byte{7, 7, 7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, candBytes, reaches []byte) {
		if len(candBytes) > 64 || len(reaches) > 512 {
			t.Skip("keep the search space small")
		}
		// Window candidates alternate occurrence- and path-addressed
		// forms; every fourth gets a non-root context edge, which a run
		// whose reaches all happen at root context can never match.
		cands := make([]Instance, 0, len(candBytes))
		carries := false
		for i, b := range candBytes {
			inst := Instance{Site: fuzzSite(b), Occurrence: fuzzOcc(b >> 3)}
			if i%2 == 0 {
				addr := PathAddr{Site: inst.Site, N: inst.Occurrence}
				if i%4 == 0 {
					addr.Edges = []PathEdge{{Label: fuzzSite(b >> 1), Seq: fuzzOcc(b >> 5)}}
				}
				inst = Instance{Site: inst.Site, Path: addr.String()}
				carries = true
			}
			cands = append(cands, inst)
		}
		window := Window(cands)
		if PlanCarriesPath(window) != carries {
			t.Fatalf("PlanCarriesPath=%v, candidates carry paths: %v", PlanCarriesPath(window), carries)
		}

		// The pure window's path dispatch is idempotent: repeated
		// consultation with identical arguments agrees.
		pd, ok := window.(PathDecider)
		if !ok {
			t.Fatal("window plan does not implement PathDecider")
		}
		probes := map[string]int{}
		for _, b := range reaches {
			site := fuzzSite(b)
			probes[site]++
			occ := probes[site]
			path := fmt.Sprintf("%s#%d", site, occ)
			first := pd.DecidePath(site, occ, path)
			if pd.DecidePath(site, occ, path) != first {
				t.Fatalf("window DecidePath(%s) not idempotent", path)
			}
		}

		// Pair candidates from adjacent byte pairs (skipping degenerate
		// same-instance pairs).
		var pairs [][2]Instance
		for i := 0; i+1 < len(candBytes); i += 2 {
			a := Instance{Site: fuzzSite(candBytes[i]), Occurrence: fuzzOcc(candBytes[i] >> 3)}
			b := Instance{Site: fuzzSite(candBytes[i+1]), Occurrence: fuzzOcc(candBytes[i+1] >> 3)}
			if a == b {
				continue
			}
			pairs = append(pairs, [2]Instance{a, b})
		}
		plan := Multi(window, PairWindow(pairs))
		wantBudget := 1 + 2 // window + pair
		if got := planBudget(plan); got != wantBudget {
			t.Fatalf("combined budget %d, want %d", got, wantBudget)
		}

		// Drive the combined plan through a path-enabled runtime with
		// root-context paths (nil PathID/PathPrefix hooks).
		r := NewRuntime(plan)
		r.PathEnabled = true
		counts := map[string]int{}
		seen := map[string]bool{}
		fired := 0
		for _, b := range reaches {
			site := fuzzSite(b)
			counts[site]++
			if err := r.Reach(site, IO); err != nil {
				key := fmt.Sprintf("%s#%d", site, counts[site])
				if seen[key] {
					t.Fatalf("fired twice at %s", key)
				}
				seen[key] = true
				fired++
			}
		}
		if fired > wantBudget {
			t.Fatalf("fired %d times, budget %d", fired, wantBudget)
		}
		if len(r.InjectedAll()) != fired {
			t.Fatalf("runtime recorded %d injections, saw %d", len(r.InjectedAll()), fired)
		}
		// Every injection's path parses back to a root-context address of
		// its own site and per-context occurrence.
		for _, ev := range r.InjectedAll() {
			addr, ok := ParsePathAddr(ev.Path)
			if !ok || addr.Site != ev.Site || len(addr.Edges) != 0 {
				t.Fatalf("injected path %q does not parse as root context of %s", ev.Path, ev.Site)
			}
		}
	})
}
