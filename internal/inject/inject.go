// Package inject is the fault-injection runtime compiled into the target
// systems — the Go analog of the FIR instrumentation in Figure 3 of the
// paper. A fault site in a target system is an explicit hook:
//
//	if err := env.FI.Reach("dfs.datanode.receiveBlock.write", inject.IO); err != nil {
//		// handle like a real I/O failure
//	}
//
// Reach plays both instrumented roles at once: traceSite (record the
// dynamic occurrence, thread, and logical log position of the site) and
// throwIfEnabled (consult the round's injection plan and return a Fault
// error when the explorer wants one injected here).
//
// Faults are Go errors rather than thrown exceptions; the Kind mirrors the
// exception types of Table 5 (IOException, SocketException, ...).
//
// # Stable site-ID contract
//
// The site ID passed to Reach is a constant string literal and is the
// site's identity everywhere: the static analyzer extracts the same
// literal from the source (the causal graph's fault-site nodes carry it),
// the explorer keys its priority tables, trace events, and injection
// plans by it, and serialized analysis artifacts persist it across
// processes. Site IDs must therefore be unique within a target system and
// stable across runs and recompilations — renaming one invalidates saved
// artifacts, reproduction scripts, and golden traces that mention it. By
// convention an ID is a dotted path "<system>.<component>.<operation>"
// (e.g. "dfs.datanode.receiveBlock.write"), lowercase, never computed at
// runtime.
package inject

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"anduril/internal/des"
)

// Kind is the class of fault an injection produces, mirroring the exception
// types the paper injects.
type Kind string

// Fault kinds observed in the paper's 22-failure dataset.
const (
	IO           Kind = "IOError"
	Timeout      Kind = "TimeoutError"
	Socket       Kind = "SocketError"
	FileNotFound Kind = "FileNotFoundError"
	Interrupted  Kind = "InterruptedError"
	Connection   Kind = "ConnectionError"
	Checksum     Kind = "ChecksumError"
	State        Kind = "IllegalStateError"
)

// Fault is the error value injected at a fault site.
type Fault struct {
	Kind       Kind
	Site       string
	Occurrence int // 1-based dynamic occurrence of the site in this run
}

// Error renders the fault the way the production system's exception would
// appear in a log: the kind and the faulting frame, but nothing about the
// dynamic occurrence (timing never shows up in real logs).
func (f *Fault) Error() string {
	return fmt.Sprintf("%s at %s", f.Kind, f.Site)
}

// Is lets errors.Is match any *Fault against a prototype with the same
// Kind (Site empty in the target matches all sites).
func (f *Fault) Is(target error) bool {
	t, ok := target.(*Fault)
	if !ok {
		return false
	}
	return (t.Kind == "" || t.Kind == f.Kind) && (t.Site == "" || t.Site == f.Site)
}

// KindErr returns a prototype error for errors.Is matching by kind.
func KindErr(k Kind) error { return &Fault{Kind: k} }

// AsFault extracts the *Fault from an error chain, if present.
func AsFault(err error) (*Fault, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}

// TraceEvent records one dynamic reach of a fault site.
type TraceEvent struct {
	Site       string
	Occurrence int      // 1-based per-site occurrence index
	Path       string   // canonical PathAddr string (path addressing only)
	Thread     string   // actor executing when the site was reached
	LogPos     int      // logical time: log records emitted before the reach
	Time       des.Time // virtual time of the reach
	Injected   bool     // whether this reach produced a fault
	Amp        int      // observed amplitude (partial pseudo-sites only)
}

// Instance names a dynamic fault candidate f_{i,j}: site i, occurrence j.
// Under path addressing, Path carries the candidate's canonical PathAddr
// string and takes precedence over the occurrence when matching; for pair
// pseudo-sites it carries the two member references (see pair.go). Path
// is empty in the default occurrence mode, so existing scripts, plans and
// checkpoints are unchanged.
type Instance struct {
	Site       string
	Occurrence int
	Path       string
}

// Plan decides which reaches of fault sites inject a fault during a round.
type Plan interface {
	// Decide is consulted on every reach. Returning true injects a fault at
	// this exact reach. At most one reach per round injects; the Runtime
	// stops consulting after the first injection.
	Decide(site string, occurrence int) bool
}

// exactPlan injects at one precise dynamic instance.
type exactPlan struct{ inst Instance }

func (p exactPlan) Decide(site string, occ int) bool {
	if p.inst.Path != "" {
		return false // path-addressed: needs the DecidePath dispatch
	}
	return site == p.inst.Site && occ == p.inst.Occurrence
}

func (p exactPlan) DecidePath(site string, occ int, path string) bool {
	if p.inst.Path != "" {
		return path == p.inst.Path
	}
	return site == p.inst.Site && occ == p.inst.Occurrence
}

// Exact returns a plan injecting at exactly one dynamic instance — the
// deterministic reproduction script of step 4.a in the workflow. A pair
// instance decomposes into a Multi over its two members, so pair scripts
// replay through the ordinary single-instance machinery.
func Exact(inst Instance) Plan {
	if a, b, ok := PairMembers(inst); ok {
		return Multi(Exact(a), Exact(b))
	}
	return exactPlan{inst}
}

// windowPlan injects at the first reach that matches any candidate — the
// flexible priority window of §5.2.5. Path-addressed candidates are kept
// in a separate index keyed by their canonical path string (a path names
// one dynamic reach uniquely; the global occurrence of that reach may
// legitimately differ between the free run and an injection run).
type windowPlan struct {
	candidates map[Instance]bool
	byPath     map[string]bool
}

func (p windowPlan) Decide(site string, occ int) bool {
	return p.candidates[Instance{Site: site, Occurrence: occ}]
}

func (p windowPlan) DecidePath(site string, occ int, path string) bool {
	if p.byPath[path] {
		return true
	}
	return p.candidates[Instance{Site: site, Occurrence: occ}]
}

// Window returns a plan that injects at whichever candidate instance is
// reached first in the round.
func Window(candidates []Instance) Plan {
	m := make(map[Instance]bool, len(candidates))
	var paths map[string]bool
	for _, c := range candidates {
		if c.Path != "" {
			if paths == nil {
				paths = make(map[string]bool, len(candidates))
			}
			paths[c.Path] = true
			continue
		}
		m[c] = true
	}
	return windowPlan{m, paths}
}

// Budgeter lets a plan request more than one injection per round. The
// paper's ANDURIL performs a single injection per round (§3); the
// iterative multi-fault extension composes plans and raises the budget.
type Budgeter interface {
	Budget() int
}

// Resetter restores a stateful plan (PairPlan's commit, Multi's fired
// counters) to its pre-run state, so the round's retry under the next
// derived seed starts a fresh trial instead of replaying half-spent
// decision state. Stateless plans need not implement it.
type Resetter interface {
	Reset()
}

// multiPlan composes plans: each sub-plan may fire up to its own budget,
// so a round can carry several causally-independent faults.
type multiPlan struct {
	plans   []Plan
	fired   []int
	budgets []int
}

// planBudget is a plan's injection budget: a Budgeter's declared budget,
// 1 for any other non-nil plan, 0 for nil (never injects).
func planBudget(p Plan) int {
	if p == nil {
		return 0
	}
	if b, ok := p.(Budgeter); ok {
		return b.Budget()
	}
	return 1
}

// Multi composes the given plans into one plan whose injection budget is
// the sum of the sub-plans' budgets (1 each for plain plans, recursively
// summed for nested Multi plans). Each sub-plan injects at most its own
// budget.
func Multi(plans ...Plan) Plan {
	p := &multiPlan{
		plans:   plans,
		fired:   make([]int, len(plans)),
		budgets: make([]int, len(plans)),
	}
	for i, sub := range plans {
		p.budgets[i] = planBudget(sub)
	}
	return p
}

func (p *multiPlan) Decide(site string, occ int) bool {
	for i, sub := range p.plans {
		if sub == nil || p.fired[i] >= p.budgets[i] {
			continue
		}
		if sub.Decide(site, occ) {
			p.fired[i]++
			return true
		}
	}
	return false
}

func (p *multiPlan) DecidePath(site string, occ int, path string) bool {
	for i, sub := range p.plans {
		if sub == nil || p.fired[i] >= p.budgets[i] {
			continue
		}
		hit := false
		if pd, ok := sub.(PathDecider); ok {
			hit = pd.DecidePath(site, occ, path)
		} else {
			hit = sub.Decide(site, occ)
		}
		if hit {
			p.fired[i]++
			return true
		}
	}
	return false
}

// Reset implements Resetter: clears the fired counters and resets any
// stateful sub-plans.
func (p *multiPlan) Reset() {
	for i := range p.fired {
		p.fired[i] = 0
	}
	for _, sub := range p.plans {
		if r, ok := sub.(Resetter); ok {
			r.Reset()
		}
	}
}

// Budget implements Budgeter: the sum of the sub-plans' budgets.
func (p *multiPlan) Budget() int {
	total := 0
	for _, b := range p.budgets {
		total += b
	}
	return total
}

// Runtime is the per-run injection state. The harness wires LogPos, Thread
// and Now to the run's logger and simulation before the workload starts.
type Runtime struct {
	LogPos func() int
	Thread func() string
	Now    func() des.Time

	// PathID and PathPrefix supply call-path context under path
	// addressing: PathID returns the dispatcher's current path node and
	// PathPrefix that node's canonical string form (cached by the
	// simulation). Nil hooks mean every reach is at root context.
	PathID     func() int32
	PathPrefix func(int32) string

	plan     Plan
	pathPlan PathDecider // plan's path dispatch, asserted once at creation

	sites      map[string]*siteRec
	pathCounts map[pathSiteKey]int // per-(path context, site) occurrence counters
	trace      []TraceEvent
	injected   []TraceEvent
	budget     int
	decisions  int
	decNanos   int64

	// KeepTrace controls whether every reach is recorded. The free run
	// keeps the full trace (the explorer needs the instance timeline);
	// injection rounds can disable it to keep rounds cheap, as §7 does.
	KeepTrace bool

	// EnvEnabled opts the run into environment pseudo-sites (see env.go):
	// when false — the default — ReachEnv neither counts nor traces, so
	// site-only runs keep byte-identical traces and occurrence counts.
	EnvEnabled bool

	// envAuto force-activates env sites when the plan itself carries env
	// instances, so replaying an env reproduction script needs no flag.
	envAuto bool

	// PartialEnabled opts the run into partial-failure pseudo-sites (see
	// partial.go): when false — the default — ReachPartial neither counts
	// nor traces, so runs without the partial class keep byte-identical
	// traces and occurrence counts.
	PartialEnabled bool

	// partialAuto force-activates partial sites when the plan itself
	// carries partial instances, so replaying a partial reproduction
	// script needs no flag.
	partialAuto bool

	// PathEnabled opts the run into path-sensitive addressing: every
	// reach is assigned a canonical PathAddr string built from the PathID/
	// PathPrefix hooks, and plans implementing PathDecider are dispatched
	// through DecidePath. When false — the default — no per-reach path
	// bookkeeping happens, so occurrence-mode runs stay byte-identical.
	PathEnabled bool

	// pathAuto force-activates path addressing when the plan itself
	// carries path-addressed instances, so replaying a path reproduction
	// script needs no flag.
	pathAuto bool
}

// pathSiteKey keys the per-context occurrence counters of path mode.
type pathSiteKey struct {
	path int32
	site string
}

// NewRuntime creates an injection runtime executing the given plan
// (nil means never inject — the free run of workflow step 1). The
// injection budget is 1 per round, as in the paper, unless the plan is a
// Budgeter.
func NewRuntime(plan Plan) *Runtime {
	budget := 1
	if b, ok := plan.(Budgeter); ok {
		budget = b.Budget()
	}
	pd, _ := plan.(PathDecider)
	return &Runtime{
		plan:      plan,
		pathPlan:  pd,
		budget:    budget,
		sites:     make(map[string]*siteRec),
		KeepTrace:   true,
		envAuto:     PlanCarriesEnv(plan),
		partialAuto: PlanCarriesPartial(plan),
		pathAuto:    PlanCarriesPath(plan),
	}
}

// siteRec is one site's dynamic state: its occurrence counter and the
// fault kind it declared. Reach runs on every instrumented call in every
// simulated run, so the counter and kind share a single map entry probed
// once, instead of separate count and kind maps hashed per field.
type siteRec struct {
	count int
	kind  Kind
}

// site returns the record for a site, creating it on first reach.
func (r *Runtime) site(site string) *siteRec {
	rec := r.sites[site]
	if rec == nil {
		rec = &siteRec{}
		r.sites[site] = rec
	}
	return rec
}

// pathActive reports whether path-sensitive addressing is on this run.
func (r *Runtime) pathActive() bool { return r.PathEnabled || r.pathAuto }

// PathActive exposes pathActive to the harness layers that extend call
// paths on message sends; when false they skip all path bookkeeping.
func (r *Runtime) PathActive() bool { return r.pathActive() }

// pathFor builds the canonical path string of the current reach of a
// site and advances the per-(context, site) occurrence counter.
func (r *Runtime) pathFor(site string) string {
	var pid int32
	if r.PathID != nil {
		pid = r.PathID()
	}
	if r.pathCounts == nil {
		r.pathCounts = make(map[pathSiteKey]int)
	}
	k := pathSiteKey{pid, site}
	r.pathCounts[k]++
	n := r.pathCounts[k]
	prefix := ""
	if r.PathPrefix != nil {
		prefix = r.PathPrefix(pid)
	}
	if prefix == "" {
		return site + "#" + strconv.Itoa(n)
	}
	return prefix + ">" + site + "#" + strconv.Itoa(n)
}

// decide consults the plan for one reach. Every fault class — error
// sites and env pseudo-sites alike — shares this single gate, so once
// the round's injection budget is spent no class consults the plan
// again: one Decide stream per round, short-circuited uniformly.
func (r *Runtime) decide(site string, occ int, path string) bool {
	if r.plan == nil || len(r.injected) >= r.budget {
		return false
	}
	start := time.Now()
	var inject bool
	if r.pathPlan != nil && r.pathActive() {
		inject = r.pathPlan.DecidePath(site, occ, path)
	} else {
		inject = r.plan.Decide(site, occ)
	}
	r.decNanos += time.Since(start).Nanoseconds()
	r.decisions++
	return inject
}

// record stamps and stores the trace event for one reach.
func (r *Runtime) record(site string, occ int, path string, inject bool) {
	r.recordAmp(site, occ, path, inject, 0)
}

// recordAmp is record with an observed amplitude, used by the partial
// pseudo-sites to carry the payload length of the perturbed call into
// the free-run trace (the explorer calibrates candidate enumeration
// from it).
func (r *Runtime) recordAmp(site string, occ int, path string, inject bool, amp int) {
	ev := TraceEvent{Site: site, Occurrence: occ, Path: path, Injected: inject, Amp: amp}
	if r.LogPos != nil {
		ev.LogPos = r.LogPos()
	}
	if r.Thread != nil {
		ev.Thread = r.Thread()
	}
	if r.Now != nil {
		ev.Time = r.Now()
	}
	if r.KeepTrace {
		if r.trace == nil {
			// A kept trace records every reach of the run — hundreds of
			// events. Start sized for a typical free run so the append
			// doubling does not copy the trace several times (lazily, so
			// the many non-keeping round runtimes never pay for it).
			r.trace = make([]TraceEvent, 0, 512)
		}
		r.trace = append(r.trace, ev)
	}
	if inject {
		r.injected = append(r.injected, ev)
	}
}

// Reach is the instrumented hook at a fault site. It records the dynamic
// occurrence and returns a non-nil *Fault if the plan injects here.
func (r *Runtime) Reach(site string, kind Kind) error {
	rec := r.site(site)
	rec.count++
	rec.kind = kind
	occ := rec.count

	path := ""
	if r.pathActive() {
		path = r.pathFor(site)
	}
	inject := r.decide(site, occ, path)

	if r.KeepTrace || inject {
		r.record(site, occ, path, inject)
	}

	if inject {
		return &Fault{Kind: kind, Site: site, Occurrence: occ}
	}
	return nil
}

// Trace returns the recorded reaches (empty if KeepTrace was off).
func (r *Runtime) Trace() []TraceEvent { return r.trace }

// Injected returns the reach at which the round's (first) fault was
// injected, if any.
func (r *Runtime) Injected() (TraceEvent, bool) {
	if len(r.injected) == 0 {
		return TraceEvent{}, false
	}
	return r.injected[0], true
}

// InjectedAll returns every injected reach of the round (more than one
// only under a Multi plan).
func (r *Runtime) InjectedAll() []TraceEvent { return r.injected }

// Counts returns a copy of the per-site dynamic occurrence counts for the
// run. The copy is the caller's to keep: mutating it does not disturb the
// runtime's internal numbering, so subsequent Reach/Decide calls keep
// counting from the true occurrence.
func (r *Runtime) Counts() map[string]int {
	out := make(map[string]int, len(r.sites))
	for site, rec := range r.sites {
		out[site] = rec.count
	}
	return out
}

// Kind reports the fault kind a site declared when reached.
func (r *Runtime) Kind(site string) (Kind, bool) {
	rec, ok := r.sites[site]
	if !ok {
		return "", false
	}
	return rec.kind, true
}

// Decisions returns how many injection requests the plan was consulted for
// and the total decision latency — the "Inject. Req." and latency columns
// of Table 4.
func (r *Runtime) Decisions() (count int, total time.Duration) {
	return r.decisions, time.Duration(r.decNanos)
}
