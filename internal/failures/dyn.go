package failures

// The Dynamo-style anti-entropy scenarios (f26–f29): failures of an
// eventually-consistent quorum store whose client-visible symptom is a
// convergence violation — replicas that never agree again, or a deleted
// key that comes back — rather than an unavailable service. Their oracles
// pair log symptoms with the ConvergedWithin oracle over the target's
// own anti-entropy audit.
//
// f26–f28 are rooted in error-return faults, but they opt into the env
// search space too (the dyn target registers crash/restart controls and
// its workloads survive environment faults), so they carry non-nil
// FaultClasses and stay out of the paper's 22-scenario evaluation
// dataset. f29 is rooted in a network partition and searches env
// pseudo-sites only, like f23–f25.

import (
	"anduril/internal/cluster"
	"anduril/internal/core"
	"anduril/internal/inject"
	"anduril/internal/oracle"
	"anduril/internal/sys/dyn"
)

var dynSrc = []string{"internal/sys/dyn"}

// dynClasses widens the search space of the site-rooted dyn scenarios to
// both classes: the root causes are error returns, but the target is
// env-fault compatible and the wider space exercises the two-pass
// candidate window (site instances rank before env instances).
var dynClasses = []string{core.ClassSite, core.ClassEnv}

func init() {
	register(&Scenario{
		ID:          "f26",
		Issue:       "DY-GOSSIP-STALE",
		System:      "dyn",
		Description: "Dropped gossip pull leaves the coordinator routing writes on a stale ring",
		Kind:        inject.Socket,
		Workload:    dyn.WorkloadMembership,
		Horizon:     dyn.Horizon,
		// The defect marks a failed ring pull as handled, so the node never
		// retries and keeps routing on ring v1. Only the coordinator's own
		// pull matters: a stale ring on a non-coordinator heals through read
		// repair, but the coordinator keeps writing new keys to v1 owners
		// the verify pass (routed by v2 audit ownership) never reconciles.
		Oracle: oracle.And(
			oracle.LogContains("digest marked handled"),
			oracle.LogContains("anti-entropy audit: replicas diverged beyond grace period"),
			oracle.Not(oracle.ConvergedWithin(dyn.MembershipConvergeBound)),
		),
		SrcDirs:      dynSrc,
		RootSite:     "dyn.gossip.pull-ring",
		FaultClasses: dynClasses,
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			// Which pull occurrence belongs to the coordinator depends on
			// gossip timing; trial-inject to find it.
			s, _ := ByID("f26")
			return searchOccurrence(s, free, seed, "dyn.gossip.pull-ring")
		},
	})

	register(&Scenario{
		ID:          "f27",
		Issue:       "DY-REPAIR-RESURRECT",
		System:      "dyn",
		Description: "Delete acked despite failed tombstone persist; read repair resurrects the key",
		Kind:        inject.IO,
		Workload:    dyn.WorkloadTombstones,
		Horizon:     dyn.Horizon,
		// The defect acknowledges a delete whose tombstone was never
		// applied, so one replica keeps the old version. The next quorum
		// read merges the sets, finds the live version concurrent with
		// nothing (the tombstone is missing), and read-repairs the deleted
		// value back onto every owner.
		Oracle: oracle.And(
			oracle.LogContains("acknowledging delete anyway"),
			oracle.LogContains("after delete (resurrected)"),
			oracle.Not(oracle.ConvergedWithin(dyn.TombstoneConvergeBound)),
		),
		SrcDirs:      dynSrc,
		RootSite:     "dyn.store.persist-tombstone",
		FaultClasses: dynClasses,
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			s, _ := ByID("f27")
			return searchOccurrence(s, free, seed, "dyn.store.persist-tombstone")
		},
	})

	register(&Scenario{
		ID:          "f28",
		Issue:       "DY-HINT-TOMBSTONE",
		System:      "dyn",
		Description: "Hint replayed without version metadata dominates a later tombstone",
		Kind:        inject.Socket,
		Workload:    dyn.WorkloadTombstones,
		Horizon:     dyn.Horizon,
		// A socket error mid-replay requeues the hint stripped of its
		// vector clock; the retry fabricates a fresh coordinator version
		// that dominates any tombstone written in between. Only replays
		// racing a delete — hinted before it, retried after it — resurrect
		// the key; every other occurrence stays tombstone-aware, which is
		// what makes the reproducing window narrow.
		Oracle: oracle.And(
			oracle.LogContains("requeued without version metadata"),
			oracle.LogContains("after delete (resurrected)"),
			oracle.Not(oracle.ConvergedWithin(dyn.TombstoneConvergeBound)),
		),
		SrcDirs:      dynSrc,
		RootSite:     "dyn.handoff.replay-hint",
		FaultClasses: dynClasses,
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			s, _ := ByID("f28")
			return searchOccurrence(s, free, seed, "dyn.handoff.replay-hint")
		},
	})

	register(&Scenario{
		ID:          "f29",
		Issue:       "DY-ENV-SPLIT",
		System:      "dyn",
		Description: "Partition mid-rebalance marks an undelivered range as migrated",
		Kind:        inject.PartitionFault,
		Workload:    dyn.WorkloadMembership,
		Horizon:     dyn.Horizon,
		// A partition cutting the transfer channel during the dyn4
		// rebalance makes the range transfer fail; the defect marks the
		// range migrated anyway and releases the source replicas, so the
		// moved keys drop below quorum until a verify read happens to
		// repair them — long after the convergence bound.
		// LogContains compares digit-sanitized messages, so the "dyn1/dyn4"
		// below matches whichever source node the cut isolates.
		Oracle: oracle.And(
			oracle.LogContains("env: partition dyn1/dyn4 cut"),
			oracle.LogContains("marking range migrated"),
			oracle.LogContains("anti-entropy audit: replicas diverged beyond grace period"),
			oracle.Not(oracle.ConvergedWithin(dyn.MembershipConvergeBound)),
		),
		SrcDirs:      dynSrc,
		RootSite:     "env/partition/dyn1~dyn4",
		FaultClasses: envClasses,
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			// The cut must isolate the node that sources a range transfer
			// to dyn4 while the transfer is in flight; which channel that
			// is depends on ring geometry, so search all three.
			s, _ := ByID("f29")
			for _, src := range []string{"dyn1", "dyn2", "dyn3"} {
				site := inject.EnvSiteID(inject.EnvPartition, src, "dyn4")
				if inst, ok := searchOccurrence(s, free, seed, site); ok {
					return inst, true
				}
			}
			return inject.Instance{}, false
		},
	})
}
