// Package failures holds the failure dataset: the 22 site-rooted
// scenarios mirroring the real-world issues of Table 5 (f1–f22), the
// environment-rooted scenarios (f23–f25, f29), the anti-entropy
// scenarios (f26–f28), the combined-fault scenarios (f30–f31), and the
// partial-failure scenarios (f32–f34). Each
// scenario packages the paper's four inputs for one failure: the target
// system (its code is what the analyzer instruments), a driving
// workload, a failure oracle, and a production failure log.
//
// The failure log is produced the way the paper does for tickets without
// one (§8): the ground-truth fault is injected once, under a seed disjoint
// from the explorer's, and the resulting log is rendered to text and parsed
// back — so the explorer only ever sees what a production log file carries.
package failures

import (
	"fmt"
	"sort"
	"sync"

	"anduril/internal/analysis"
	"anduril/internal/cluster"
	"anduril/internal/core"
	"anduril/internal/des"
	"anduril/internal/inject"
	"anduril/internal/logging"
	"anduril/internal/oracle"
)

// Scenario is one dataset entry.
type Scenario struct {
	ID          string // "f1" .. "f22"
	Issue       string // upstream issue id, e.g. "ZK-2247"
	System      string // "zk", "dfs", "tablestore", "mq", "kvstore"
	Description string
	Kind        inject.Kind // fault type of the root cause (Table 5)

	Workload cluster.Workload
	Horizon  des.Time
	Oracle   oracle.Oracle
	SrcDirs  []string // source directories the Instrumenter analyzes

	// FaultClasses names the fault classes the explorer searches for this
	// scenario (core.ClassSite / core.ClassEnv / core.ClassPair /
	// core.ClassPartial). Nil keeps the paper's site-only space — the
	// f1–f22 dataset — while the env-rooted scenarios (f23+) opt into
	// environment enumeration, the combined-fault scenarios (f30–f31)
	// into pair enumeration, and the partial-failure scenarios (f32–f34)
	// into partial enumeration.
	FaultClasses []string

	// RootSite is the ground-truth root-cause fault site.
	RootSite string
	// FindRoot locates the ground-truth dynamic instance in a free run's
	// trace (the right site at the right occurrence). The seed of the free
	// run is passed for scenarios that must trial-inject to confirm it.
	FindRoot func(free *cluster.Result, seed int64) (inject.Instance, bool)

	// NewRootCause, when non-empty, describes the deeper root cause the
	// explorer can expose for this failure (Table 6 analog).
	NewRootCause string
}

// FailureSeed is the seed of the simulated "production" run that generated
// the failure log; the explorer's rounds use unrelated seeds.
const FailureSeed = 9999

// analysisEntry caches one system's static analysis behind a sync.Once,
// so concurrent Analyze calls for different systems proceed in parallel
// while calls for the same system share a single computation.
type analysisEntry struct {
	once sync.Once
	res  *analysis.Result
	err  error
}

var (
	analysisMu    sync.Mutex // guards the cache map only, never the analysis
	analysisCache = map[string]*analysisEntry{}
)

// Analyze returns the (cached) static analysis for the scenario's system.
// It is safe for concurrent use; the returned Result is shared and must be
// treated as read-only (every accessor on analysis.Result already is).
func (s *Scenario) Analyze() (*analysis.Result, error) {
	key := fmt.Sprint(s.SrcDirs)
	analysisMu.Lock()
	e, ok := analysisCache[key]
	if !ok {
		e = &analysisEntry{}
		analysisCache[key] = e
	}
	analysisMu.Unlock()
	e.once.Do(func() {
		e.res, e.err = analysis.AnalyzePackagesCached(s.SrcDirs)
	})
	return e.res, e.err
}

// SearchesEnv reports whether the scenario's fault classes include
// environment faults.
func (s *Scenario) SearchesEnv() bool {
	for _, c := range s.FaultClasses {
		if c == core.ClassEnv {
			return true
		}
	}
	return false
}

// SearchesPair reports whether the scenario's fault classes include
// combined-fault pairs.
func (s *Scenario) SearchesPair() bool {
	for _, c := range s.FaultClasses {
		if c == core.ClassPair {
			return true
		}
	}
	return false
}

// SearchesPartial reports whether the scenario's fault classes include
// partial failures.
func (s *Scenario) SearchesPartial() bool {
	for _, c := range s.FaultClasses {
		if c == core.ClassPartial {
			return true
		}
	}
	return false
}

// execOpts returns the cluster options the scenario's own runs need: env
// and partial enumeration are switched on for scenarios of those classes
// so free runs count the pseudo-sites (FindRoot needs the counts).
func (s *Scenario) execOpts() []cluster.ExecOption {
	var opts []cluster.ExecOption
	if s.SearchesEnv() {
		opts = append(opts, cluster.WithEnvFaults())
	}
	if s.SearchesPartial() {
		opts = append(opts, cluster.WithPartialFaults())
	}
	return opts
}

// GroundTruth finds the root-cause instance under the given seed.
func (s *Scenario) GroundTruth(seed int64) (inject.Instance, error) {
	free := cluster.Execute(seed, nil, true, s.Workload, s.Horizon, s.execOpts()...)
	inst, ok := s.FindRoot(free, seed)
	if !ok {
		return inject.Instance{}, fmt.Errorf("%s: ground-truth instance not found in free run", s.ID)
	}
	return inst, nil
}

// FailureLog produces the production failure log: one run with the
// ground-truth fault injected, rendered to text and parsed back.
func (s *Scenario) FailureLog() ([]logging.Entry, error) {
	inst, err := s.GroundTruth(FailureSeed)
	if err != nil {
		return nil, err
	}
	res := cluster.Execute(FailureSeed, inject.Exact(inst), false, s.Workload, s.Horizon, s.execOpts()...)
	if !s.Oracle.Satisfied(res) {
		return nil, fmt.Errorf("%s: ground-truth injection %v does not satisfy the oracle", s.ID, inst)
	}
	text := res.RenderLog()
	return logging.Parse(text), nil
}

// BuildTarget assembles the explorer's Target for this scenario.
func (s *Scenario) BuildTarget() (*core.Target, error) {
	an, err := s.Analyze()
	if err != nil {
		return nil, err
	}
	flog, err := s.FailureLog()
	if err != nil {
		return nil, err
	}
	return &core.Target{
		ID:           s.ID,
		Issue:        s.Issue,
		System:       s.System,
		Description:  s.Description,
		Workload:     s.Workload,
		Horizon:      s.Horizon,
		Oracle:       s.Oracle,
		FailureLog:   flog,
		Analysis:     an,
		RootSite:     s.RootSite,
		FaultClasses: s.FaultClasses,
	}, nil
}

// registry is populated by package init functions only; after program
// initialization it is read-only, so All/ByID/BySystem are safe to call
// from any number of goroutines (the parallel evaluation harness does).
var registry []*Scenario

func register(s *Scenario) { registry = append(registry, s) }

// All returns every scenario in dataset order (f1..f22), regardless of
// package initialization order.
func All() []*Scenario {
	out := append([]*Scenario(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return scenarioNum(out[i].ID) < scenarioNum(out[j].ID) })
	return out
}

func scenarioNum(id string) int {
	n := 0
	fmt.Sscanf(id, "f%d", &n)
	return n
}

// SiteDataset returns the paper's evaluation dataset: the 22 scenarios
// rooted in error-return faults (nil FaultClasses), in dataset order.
// The env-rooted and pair-rooted scenarios are excluded so evaluation
// tables keep reproducing Table 5 unchanged.
func SiteDataset() []*Scenario {
	var out []*Scenario
	for _, s := range All() {
		if s.FaultClasses == nil {
			out = append(out, s)
		}
	}
	return out
}

// ByID returns the scenario with the given dataset or issue id.
func ByID(id string) (*Scenario, bool) {
	for _, s := range registry {
		if s.ID == id || s.Issue == id {
			return s, true
		}
	}
	return nil, false
}

// BySystem returns the scenarios targeting one system.
func BySystem(system string) []*Scenario {
	var out []*Scenario
	for _, s := range registry {
		if s.System == system {
			out = append(out, s)
		}
	}
	return out
}
