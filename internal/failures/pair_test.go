package failures

import (
	"testing"

	"anduril/internal/cluster"
	"anduril/internal/inject"
)

// TestPairScenariosNeedBothFaults pins the property that makes f30/f31
// combined-fault scenarios rather than redundant restatements of the
// single-fault dataset: no single fault — any occurrence of any site,
// including every environment pseudo-site — satisfies their oracles.
// Only the ground-truth pair does.
func TestPairScenariosNeedBothFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, id := range []string{"f30", "f31"} {
		s, _ := ByID(id)
		t.Run(id, func(t *testing.T) {
			// Enumerate singles with env faults enabled so the sweep also
			// covers every crash/partition/message pseudo-site, even though
			// the scenarios themselves search the pair class only.
			free := cluster.Execute(FailureSeed, nil, true, s.Workload, s.Horizon, cluster.WithEnvFaults())
			singles := 0
			for site, n := range free.Counts {
				for occ := 1; occ <= n; occ++ {
					inst := inject.Instance{Site: site, Occurrence: occ}
					res := cluster.Execute(FailureSeed, inject.Exact(inst), false,
						s.Workload, s.Horizon, cluster.WithEnvFaults())
					singles++
					if s.Oracle.Satisfied(res) {
						t.Fatalf("%s: single fault %s#%d satisfies the pair oracle", id, site, occ)
					}
				}
			}
			if singles == 0 {
				t.Fatalf("%s: no single-fault instances enumerated", id)
			}
		})
	}
}

// TestPairGroundTruthMembers pins the empirically-derived ground truth
// so a drift in the target systems (which would silently move the
// reproducing pair) fails loudly instead.
func TestPairGroundTruthMembers(t *testing.T) {
	wants := map[string][2]inject.Instance{
		"f30": {
			{Site: "dyn.handoff.replay-hint", Occurrence: 18},
			{Site: "dyn.store.persist-record", Occurrence: 30},
		},
	}
	for id, want := range wants {
		s, _ := ByID(id)
		inst, err := s.GroundTruth(FailureSeed)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		a, b, ok := inject.PairMembers(inst)
		if !ok {
			t.Fatalf("%s: ground truth %v is not a pair", id, inst)
		}
		if a != want[0] || b != want[1] {
			t.Errorf("%s: ground-truth members (%v, %v), want (%v, %v)", id, a, b, want[0], want[1])
		}
	}
}

// TestPairSelfPairDistinctMembers checks f31's ground truth is a true
// self-pair: same site, two distinct occurrences.
func TestPairSelfPairDistinctMembers(t *testing.T) {
	s, _ := ByID("f31")
	inst, err := s.GroundTruth(FailureSeed)
	if err != nil {
		t.Fatal(err)
	}
	a, b, ok := inject.PairMembers(inst)
	if !ok {
		t.Fatalf("ground truth %v is not a pair", inst)
	}
	if a.Site != b.Site || a.Site != "dfs.datanode.connect-downstream" {
		t.Fatalf("members (%s, %s), want a connect-downstream self-pair", a.Site, b.Site)
	}
	if a.Occurrence == b.Occurrence {
		t.Fatalf("self-pair members share occurrence %d", a.Occurrence)
	}
}
