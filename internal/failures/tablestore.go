package failures

import (
	"anduril/internal/cluster"
	"anduril/internal/inject"
	"anduril/internal/oracle"
	"anduril/internal/sys/tablestore"
)

var tsSrc = []string{"internal/sys/tablestore"}

func init() {
	register(&Scenario{
		ID:          "f12",
		Issue:       "HB-18137",
		System:      "tablestore",
		Description: "Empty WAL file causes Replication to get stuck",
		Kind:        inject.IO,
		Workload:    tablestore.WorkloadReplication,
		Horizon:     tablestore.Horizon,
		Oracle: oracle.And(
			oracle.LogContains("Failed to write WAL header"),
			oracle.LogContains("Replication stuck on empty WAL file"),
		),
		SrcDirs:  tsSrc,
		RootSite: "ts.wal.write-header",
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			s, _ := ByID("f12")
			return searchOccurrence(s, free, seed, "ts.wal.write-header")
		},
	})

	register(&Scenario{
		ID:          "f13",
		Issue:       "HB-19608",
		System:      "tablestore",
		Description: "Interrupted procedure mistakenly causes a failed state flag",
		Kind:        inject.Interrupted,
		Workload:    tablestore.WorkloadProcedures,
		Horizon:     tablestore.Horizon,
		Oracle: oracle.And(
			oracle.LogContains("marking procedure as failed"),
			oracle.LogContains("rejecting procedure"),
		),
		SrcDirs:  tsSrc,
		RootSite: "ts.proc.step-wait",
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			// Must interrupt a step with procedures still queued behind it.
			return nthOccurrence(free, "ts.proc.step-wait", 2)
		},
	})

	register(&Scenario{
		ID:          "f14",
		Issue:       "HB-19876",
		System:      "tablestore",
		Description: "The exception happening in converting pb mutation messes up the CellScanner",
		Kind:        inject.IO,
		Workload:    tablestore.WorkloadBatch,
		Horizon:     tablestore.Horizon,
		Oracle: oracle.And(
			oracle.LogContains("Failed to convert mutation"),
			oracle.LogContains("Corrupt cell detected"),
		),
		SrcDirs:  tsSrc,
		RootSite: "ts.region.decode-mutation",
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			// Must hit a non-atomic batch before its last mutation.
			return nthOccurrence(free, "ts.region.decode-mutation", 2)
		},
	})

	register(&Scenario{
		ID:          "f15",
		Issue:       "HB-20583",
		System:      "tablestore",
		Description: "The failure during splitting log causes resubmit of another failed splitting task",
		Kind:        inject.IO,
		Workload:    tablestore.WorkloadCrash,
		Horizon:     tablestore.Horizon,
		Oracle: oracle.And(
			oracle.LogContains("resubmitting"),
			oracle.LogContains("still in RECOVERING state"),
			oracle.Not(oracle.LogContainsExact("WAL split for rs2 completed")),
		),
		SrcDirs:  tsSrc,
		RootSite: "ts.split.read-walchunk",
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			return nthOccurrence(free, "ts.split.read-walchunk", 2)
		},
	})

	register(&Scenario{
		ID:          "f16",
		Issue:       "HB-16144",
		System:      "tablestore",
		Description: "Replication queue's lock will live forever if regionserver acquiring the lock has died prematurely",
		Kind:        inject.IO,
		Workload:    tablestore.WorkloadCrash,
		Horizon:     tablestore.Horizon,
		Oracle: oracle.And(
			oracle.LogContains("Aborting region server"),
			oracle.LogContains("Failed to claim replication queue"),
			oracle.Not(oracle.LogContainsExact("Claimed replication queue of rs2")),
		),
		SrcDirs:  tsSrc,
		RootSite: "ts.repl.copy-queue",
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			return nthOccurrence(free, "ts.repl.copy-queue", 1)
		},
	})

	register(&Scenario{
		ID:          "f17",
		Issue:       "HB-25905",
		System:      "tablestore",
		Description: "Transient namenode failure in HDFS causes WAL services in HBase to stop making any progress",
		Kind:        inject.IO,
		Workload:    tablestore.WorkloadWAL,
		Horizon:     tablestore.Horizon,
		Oracle: oracle.And(
			oracle.LogContains("Failed to get sync result"),
			oracle.ThreadStuck("waitForSafePoint"),
		),
		SrcDirs:  tsSrc,
		RootSite: "ts.wal.stream-write",
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			// Only a stream break landing in the narrow window before a
			// roll — with more unacked appends than one sync batch — wedges
			// the consumer (the paper's "only 2 of 1000+ instances").
			s, _ := ByID("f17")
			return searchOccurrence(s, free, seed, "ts.wal.stream-write")
		},
	})
}
