package failures

// The partial-failure scenarios (f32–f34): failures whose root cause is
// not a clean typed exception but a messy errno-level partial failure —
// a rename torn between copy and unlink, a short write leaving half a
// record, a message delivered twice. They exercise the partial
// pseudo-site search space (internal/inject's partial/ sites) end-to-end
// and are kept out of the paper's f1–f22 evaluation dataset by their
// non-nil FaultClasses. Each reproduces ONLY under a partial fault: the
// clean all-or-nothing faults of the site and env classes cannot leave
// the intermediate states these oracles pin (proven by the sweep tests
// in internal/core).

import (
	"strings"

	"anduril/internal/cluster"
	"anduril/internal/core"
	"anduril/internal/inject"
	"anduril/internal/oracle"
	"anduril/internal/sys/dfs"
	"anduril/internal/sys/mq"
	"anduril/internal/sys/zk"
)

// partialClasses is the search space of the partial-rooted scenarios:
// partial pseudo-sites only. The CLI can widen it
// (-fault-classes=partial,site).
var partialClasses = []string{core.ClassPartial}

func init() {
	register(&Scenario{
		ID:          "f32",
		Issue:       "HD-PARTIAL-TORN",
		System:      "dfs",
		Description: "Edit-log roll torn mid-rename leaves double edit logs and latches checkpointing off forever",
		Kind:        inject.TornRename,
		Workload:    dfs.WorkloadCheckpoint,
		Horizon:     dfs.Horizon,
		// The torn rename leaves BOTH nn/edits and nn/edits.rolled on disk
		// — the intermediate state no clean fault can produce: an
		// all-or-nothing rename failure leaves only the source, a success
		// only the destination. The failed roll also returns an error
		// without clearing checkpointBusy (the HD-4233 latch), so every
		// later checkpoint is skipped and the torn state persists to the
		// end of the run.
		Oracle: oracle.And(
			oracle.LogContainsExact("partial: torn rename at dfs.namenode.rename-edits"),
			oracle.LogContains("Failed to roll edit log"),
			oracle.LogContains("Skipping checkpoint: another checkpoint is in progress"),
			oracle.FileExists("nn/edits"),
			oracle.FileExists("nn/edits.rolled"),
		),
		SrcDirs:      dfsSrc,
		RootSite:     inject.PartialSiteID(inject.PartialTornRename, "dfs.namenode.rename-edits", ""),
		FaultClasses: partialClasses,
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			// The torn roll must not be the last checkpoint attempt, or no
			// later cycle observes the latched busy flag.
			s, _ := ByID("f32")
			return searchOccurrence(s, free, seed,
				inject.PartialSiteID(inject.PartialTornRename, "dfs.namenode.rename-edits", ""))
		},
		NewRootCause: "rename torn between copy and unlink: both edit logs exist and checkpointBusy stays latched, so the namenode serves forever without another backup",
	})

	register(&Scenario{
		ID:          "f33",
		Issue:       "ZK-PARTIAL-SHORTWRITE",
		System:      "zk",
		Description: "Short txn-log write leaves a torn record that corrupts recovery after restart",
		Kind:        inject.ShortWrite,
		Workload:    zk.WorkloadSnapshotRestart,
		Horizon:     zk.Horizon,
		// The short write persists half a txn record on zk1 before the
		// error kills its sync processor; a clean write failure (f1's
		// fault) kills the processor too but appends NOTHING, so the log
		// stays whole-record clean. Only the torn tail makes the restarted
		// server's replay hit a record it cannot decode.
		Oracle: oracle.And(
			oracle.LogContainsExact("partial: short write at zk.sync.append-txn"),
			oracle.LogContainsExact("Severe unrecoverable error, exiting SyncRequestProcessor on myid=1"),
			oracle.LogContainsExact("Skipping malformed txn record on myid=1"),
		),
		SrcDirs:      zkSrc,
		RootSite:     inject.PartialSiteID(inject.PartialShortWrite, "zk.sync.append-txn", ""),
		FaultClasses: partialClasses,
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			// The torn append must land on zk1 (the server the workload
			// restarts) and before the restart; occurrences are global
			// across the ensemble, so search for one on the right server.
			s, _ := ByID("f33")
			return searchOccurrence(s, free, seed,
				inject.PartialSiteID(inject.PartialShortWrite, "zk.sync.append-txn", ""))
		},
		NewRootCause: "txn-log replay skips the torn record silently instead of truncating the tail, so the restarted follower rejoins with a hole in its history",
	})

	register(&Scenario{
		ID:          "f34",
		Issue:       "KA-PARTIAL-DUP",
		System:      "mq",
		Description: "Duplicated produce delivery double-applies an order to the broker log",
		Kind:        inject.DupDeliver,
		Workload:    mq.WorkloadGroup,
		Horizon:     mq.Horizon,
		// The duplicated produce request runs the broker's handler twice:
		// the same order record is appended at two offsets (the producer's
		// response comes from the first delivery; the second response is
		// dropped). No clean fault duplicates state — drops, delays and
		// error returns only ever lose or defer records — so a value
		// appearing twice in the on-disk segment log pins the duplicate
		// delivery exactly.
		Oracle: oracle.And(
			oracle.LogContainsExact("partial: message mq-producer-1>broker-a duplicated"),
			oracle.Predicate("an order value appears twice in broker-a's segment log", func(r *cluster.Result) bool {
				seen := map[string]bool{}
				for _, path := range r.Env.Disk.List("broker-a/orders/") {
					data, ok := r.Env.Disk.Peek(path)
					if !ok {
						continue
					}
					for _, line := range strings.Split(string(data), "\n") {
						// line is "offset|key|value"; the duplicate gets a
						// fresh offset, so compare key|value only.
						_, rec, found := strings.Cut(line, "|")
						if !found {
							continue
						}
						if seen[rec] {
							return true
						}
						seen[rec] = true
					}
				}
				return false
			}),
		),
		SrcDirs:      mqSrc,
		RootSite:     inject.PartialSiteID(inject.PartialDupDeliver, "mq-producer-1", "broker-a"),
		FaultClasses: partialClasses,
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			s, _ := ByID("f34")
			return searchOccurrence(s, free, seed,
				inject.PartialSiteID(inject.PartialDupDeliver, "mq-producer-1", "broker-a"))
		},
		NewRootCause: "the broker's produce path is not idempotent: a redelivered request appends a second copy instead of detecting the duplicate sequence number",
	})
}
