package failures

import (
	"anduril/internal/cluster"
	"anduril/internal/inject"
	"anduril/internal/oracle"
	"anduril/internal/sys/kvstore"
	"anduril/internal/sys/mq"
)

var (
	mqSrc = []string{"internal/sys/mq"}
	csSrc = []string{"internal/sys/kvstore"}
)

func init() {
	register(&Scenario{
		ID:          "f18",
		Issue:       "KA-12508",
		System:      "mq",
		Description: "Emit-on-change tables lose updates after error and restart",
		Kind:        inject.IO,
		Workload:    mq.WorkloadStreams,
		Horizon:     mq.Horizon,
		Oracle: oracle.And(
			oracle.LogContains("restarting task"),
			oracle.LogContains("lost update"),
		),
		SrcDirs:  mqSrc,
		RootSite: "mq.streams.checkpoint",
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			return nthOccurrence(free, "mq.streams.checkpoint", 5)
		},
	})

	register(&Scenario{
		ID:          "f19",
		Issue:       "KA-9374",
		System:      "mq",
		Description: "Blocked connectors disable the Workers",
		Kind:        inject.IO,
		Workload:    mq.WorkloadConnect,
		Horizon:     mq.Horizon,
		Oracle: oracle.And(
			oracle.ThreadStuck("connector-stop"),
			oracle.LogContains("worker unresponsive"),
		),
		SrcDirs:  mqSrc,
		RootSite: "mq.connect.stop-connector",
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			return nthOccurrence(free, "mq.connect.stop-connector", 1)
		},
	})

	register(&Scenario{
		ID:          "f20",
		Issue:       "KA-10048",
		System:      "mq",
		Description: "Consumer's failover under MM2 replication configuration causes data gap between 2 clusters",
		Kind:        inject.IO,
		Workload:    mq.WorkloadMirror,
		Horizon:     mq.Horizon,
		Oracle: oracle.And(
			oracle.LogContains("errors.tolerance"),
			oracle.LogContains("Data gap detected"),
		),
		SrcDirs:  mqSrc,
		RootSite: "mq.mm2.convert-record",
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			// The dropped record must be one the consumer had not yet read
			// when it failed over; trial-inject to find such an occurrence.
			s, _ := ByID("f20")
			return searchOccurrence(s, free, seed, "mq.mm2.convert-record")
		},
	})

	register(&Scenario{
		ID:          "f21",
		Issue:       "C*-17663",
		System:      "kvstore",
		Description: "Interrupted FileStreamTask compromise shared channel proxy",
		Kind:        inject.Interrupted,
		Workload:    kvstore.WorkloadRepair,
		Horizon:     kvstore.Horizon,
		Oracle: oracle.And(
			oracle.LogContains("channel proxy in invalid state"),
			oracle.Not(oracle.LogContains("completed successfully")),
		),
		SrcDirs:  csSrc,
		RootSite: "cs.stream.file-task",
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			return nthOccurrence(free, "cs.stream.file-task", 1)
		},
	})

	register(&Scenario{
		ID:          "f22",
		Issue:       "C*-6415",
		System:      "kvstore",
		Description: "Snapshot repair blocks forever if get no response of makeSnapshot",
		Kind:        inject.IO,
		Workload:    kvstore.WorkloadRepair,
		Horizon:     kvstore.Horizon,
		Oracle: oracle.And(
			oracle.ThreadStuck("await-snapshot-responses"),
			oracle.LogContains("Repair session repair-1 started"),
		),
		SrcDirs:  csSrc,
		RootSite: "cs.repair.make-snapshot",
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			return nthOccurrence(free, "cs.repair.make-snapshot", 2)
		},
		NewRootCause: "an earlier disk fault writing the snapshot file (cs.repair.write-snapshot) also leaves the coordinator waiting forever — deeper than the message-loss diagnosis",
	})
}
