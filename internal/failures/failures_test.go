package failures

import (
	"testing"

	"anduril/internal/cluster"
	"anduril/internal/inject"
)

// TestScenarioInvariants checks, for every registered scenario, the three
// properties the paper's problem statement requires: the workload alone
// does not trigger the failure; injecting the ground-truth fault does; and
// the failure log generation round-trips.
func TestScenarioInvariants(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.ID, func(t *testing.T) {
			// 1. No fault, no failure.
			free := cluster.Execute(FailureSeed, nil, true, s.Workload, s.Horizon, s.execOpts()...)
			if s.Oracle.Satisfied(free) {
				t.Fatalf("%s: oracle satisfied without any fault", s.ID)
			}
			// 2. Ground truth reproduces.
			inst, ok := s.FindRoot(free, FailureSeed)
			if !ok {
				t.Fatalf("%s: ground truth not found", s.ID)
			}
			if inst.Site != s.RootSite {
				t.Fatalf("%s: ground truth site %s != declared %s", s.ID, inst.Site, s.RootSite)
			}
			res := cluster.Execute(FailureSeed, inject.Exact(inst), false, s.Workload, s.Horizon)
			if !s.Oracle.Satisfied(res) {
				t.Fatalf("%s: ground truth %v does not reproduce\n%s", s.ID, inst, res.RenderLog())
			}
			// 3. Failure log is non-trivial.
			flog, err := s.FailureLog()
			if err != nil {
				t.Fatal(err)
			}
			if len(flog) < 10 {
				t.Fatalf("%s: failure log has only %d entries", s.ID, len(flog))
			}
		})
	}
}

// TestGroundTruthStableAcrossSeeds verifies the ground truth can be located
// and reproduces under several seeds (the explorer runs rounds under
// different seeds than the failure log).
func TestGroundTruthStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, s := range All() {
		s := s
		t.Run(s.ID, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				free := cluster.Execute(seed, nil, true, s.Workload, s.Horizon, s.execOpts()...)
				inst, ok := s.FindRoot(free, seed)
				if !ok {
					t.Fatalf("seed %d: ground truth not found", seed)
				}
				res := cluster.Execute(seed, inject.Exact(inst), false, s.Workload, s.Horizon)
				if !s.Oracle.Satisfied(res) {
					t.Errorf("seed %d: %v does not reproduce", seed, inst)
				}
			}
		})
	}
}

func TestRegistryLookups(t *testing.T) {
	if len(All()) != 34 {
		t.Fatalf("only %d scenarios registered", len(All()))
	}
	// The paper's evaluation dataset is exactly the 22 site-only
	// scenarios; the env-, pair- and partial-searching ones are marked by
	// their FaultClasses.
	siteOnly, env, pair, partial := 0, 0, 0, 0
	for _, s := range All() {
		switch {
		case s.SearchesEnv():
			env++
		case s.SearchesPair():
			pair++
		case s.SearchesPartial():
			partial++
		default:
			siteOnly++
		}
	}
	if siteOnly != 22 || env != 7 || pair != 2 || partial != 3 {
		t.Fatalf("dataset split: %d site-only, %d env-searching, %d pair-searching, %d partial-searching",
			siteOnly, env, pair, partial)
	}
	if len(SiteDataset()) != 22 {
		t.Fatalf("SiteDataset: %d scenarios", len(SiteDataset()))
	}
	if _, ok := ByID("f1"); !ok {
		t.Fatal("f1 missing")
	}
	if _, ok := ByID("ZK-2247"); !ok {
		t.Fatal("issue lookup failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus lookup succeeded")
	}
	if len(BySystem("zk")) != 6 {
		t.Fatalf("zk scenarios: %d", len(BySystem("zk")))
	}
	if len(BySystem("dfs")) != 10 {
		t.Fatalf("dfs scenarios: %d", len(BySystem("dfs")))
	}
	if len(BySystem("dyn")) != 5 {
		t.Fatalf("dyn scenarios: %d", len(BySystem("dyn")))
	}
}

func TestAnalyzeCached(t *testing.T) {
	s, _ := ByID("f1")
	a1, err := s.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := s.Analyze()
	if a1 != a2 {
		t.Fatal("analysis not cached")
	}
}

// TestExecuteDeterministicPerSeed re-runs the ground-truth injection for
// every scenario and demands byte-identical logs and event counts. Go
// randomizes map iteration order per range statement, so any simulation
// code path that lets map order pick between behaviors (which block a
// monitor repairs first, which lease expires first, snapshot serialization
// order) fails this within a handful of repeats — the bug class behind
// nondeterministic f8 failure logs.
func TestExecuteDeterministicPerSeed(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.ID, func(t *testing.T) {
			t.Parallel() // cross-scenario concurrency must not leak either
			free := cluster.Execute(FailureSeed, nil, true, s.Workload, s.Horizon, s.execOpts()...)
			inst, ok := s.FindRoot(free, FailureSeed)
			if !ok {
				t.Fatalf("ground truth not found")
			}
			base := cluster.Execute(FailureSeed, inject.Exact(inst), false, s.Workload, s.Horizon)
			for rep := 0; rep < 3; rep++ {
				r := cluster.Execute(FailureSeed, inject.Exact(inst), false, s.Workload, s.Horizon)
				if r.Events != base.Events {
					t.Fatalf("repeat %d: %d events vs %d", rep, r.Events, base.Events)
				}
				if len(r.Entries) != len(base.Entries) {
					t.Fatalf("repeat %d: %d log entries vs %d", rep, len(r.Entries), len(base.Entries))
				}
				for j := range r.Entries {
					if r.Entries[j] != base.Entries[j] {
						t.Fatalf("repeat %d: log entry %d differs:\n got %+v\nwant %+v",
							rep, j, r.Entries[j], base.Entries[j])
					}
				}
			}
		})
	}
}
