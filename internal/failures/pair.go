package failures

// The combined-fault scenarios (f30–f31): failures that require two
// faults in one execution before the symptom appears. Each is validated
// the same way the single-fault dataset is — the ground-truth pair is
// confirmed by injection under FailureSeed — plus a stronger negative
// property the proof tests pin: no single site or environment fault
// satisfies the oracle, so the explorer can only reproduce these through
// the pair fault class.
//
// f30 (dyn): the f28 "bare hint" defect needs a second fault to become a
// permanent resurrection. A socket error during the 600ms-tick replay of
// k002's hint requeues the hint stripped of its vector clock — but k002's
// regular apply already reached dyn3, so the bare replay alone is
// harmless. The second fault kills exactly that apply (the persist-record
// reached at the retried replay's position in the record stream), which
// both removes the tombstone-aware copy and delays the bare replay past
// k002's delete at t=780ms; the fabricated coordinator version then
// dominates the tombstone and the delete resurrects for good.
//
// f31 (dfs): the HD-13039 xceiver leak exhausts one datanode's pool per
// leaked connection — a single leak (f8) degrades one node and the
// 2-of-3 pipeline survives. Two leaked connections on distinct datanodes
// exhaust two pools, and with only one healthy node left the client's
// retries cannot build any pipeline: the write fails terminally.

import (
	"strings"

	"anduril/internal/cluster"
	"anduril/internal/core"
	"anduril/internal/inject"
	"anduril/internal/oracle"
	"anduril/internal/sys/dfs"
	"anduril/internal/sys/dyn"
)

// pairClasses restricts the explorer to the combined-fault space: the
// scenarios' negative property (no single fault reproduces) makes the
// site and env classes pure noise for them.
var pairClasses = []string{core.ClassPair}

// trialPair injects both members of a candidate pair in one run and
// reports whether the scenario's oracle is satisfied; on success the
// combined pair instance is returned for replay.
func trialPair(s *Scenario, seed int64, a, b inject.Instance) (inject.Instance, bool) {
	pi := inject.PairInstance(a, b)
	res := cluster.Execute(seed, inject.Exact(pi), false, s.Workload, s.Horizon, s.execOpts()...)
	if s.Oracle.Satisfied(res) {
		return pi, true
	}
	return inject.Instance{}, false
}

func init() {
	register(&Scenario{
		ID:          "f30",
		Issue:       "DY-HINT-APPLY-RACE",
		System:      "dyn",
		Description: "Bare hint replay resurrects a delete only when the regular apply is also lost",
		Kind:        inject.Socket,
		Workload:    dyn.WorkloadTombstones,
		Horizon:     dyn.Horizon,
		// Pinned to k002: the requeued-hint line names the key whose hint
		// lost its version metadata, the resurrect line proves the bare
		// replay's fabricated version beat the tombstone, and Diverged
		// proves the anti-entropy audit never reconciled it. Exact matching
		// matters — the digit-insensitive LogContains cannot tell k002 from
		// the neighboring keys whose hints replay in the same tick.
		// The persist-failure line discriminates this mechanism from the
		// cheaper look-alike where the *tombstone* persist is the second
		// fault: there the delete is simply lost on one node, and the
		// incident log shows "Tombstone persist ... acknowledging delete
		// anyway" instead of a failed record apply on dyn3.
		Oracle: oracle.And(
			oracle.LogContainsExact("Hint replay of k002 to dyn3 failed; requeued without version metadata"),
			oracle.LogContainsExact("Record persist for k002 failed on dyn3"),
			oracle.LogContainsExact("verify: k002 returned v002 after delete (resurrected)"),
			oracle.Diverged(),
		),
		SrcDirs:      dynSrc,
		RootSite:     inject.PairSiteID("dyn.handoff.replay-hint", "dyn.store.persist-record"),
		FaultClasses: pairClasses,
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			s, _ := ByID("f30")
			const rh, pr = "dyn.handoff.replay-hint", "dyn.store.persist-record"
			// The persist member must kill a *retry* apply — the bare
			// replay's own store write, which sits at the tail of the record
			// stream — so scan persist occurrences from the top. The hint
			// member is scanned in attempt order.
			for y := free.Counts[pr]; y >= 1; y-- {
				for x := 1; x <= free.Counts[rh]; x++ {
					a := inject.Instance{Site: rh, Occurrence: x}
					b := inject.Instance{Site: pr, Occurrence: y}
					if pi, ok := trialPair(s, seed, a, b); ok {
						return pi, true
					}
				}
			}
			return inject.Instance{}, false
		},
	})

	register(&Scenario{
		ID:          "f31",
		Issue:       "HD-13039-DOUBLE",
		System:      "dfs",
		Description: "Two leaked xceiver sockets on distinct datanodes make block writes fail terminally",
		Kind:        inject.IO,
		Workload:    dfs.WorkloadWrite,
		Horizon:     dfs.Horizon,
		// A single leak exhausts exactly one pool and the pipeline falls
		// back to the remaining nodes, so the discriminating symptom is two
		// *distinct* datanodes reporting exhaustion plus the client's
		// terminal give-up line. LogContains is digit-insensitive and would
		// count dn1 and dn2 as one message, hence the predicate.
		Oracle: oracle.And(
			oracle.LogContains("Failed to build pipeline"),
			oracle.LogContains("failed to write block"),
			oracle.Predicate("xceiver pools exhausted on >=2 datanodes", multiNodeExhaustion),
		),
		SrcDirs:      dfsSrc,
		RootSite:     inject.PairSiteID("dfs.datanode.connect-downstream", "dfs.datanode.connect-downstream"),
		FaultClasses: pairClasses,
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			s, _ := ByID("f31")
			const cd = "dfs.datanode.connect-downstream"
			// Self-pair: unordered occurrence combinations, x < y. Pipeline
			// heads rotate round-robin, so which combinations land on
			// distinct datanodes depends on block numbering — trial-inject.
			n := free.Counts[cd]
			for x := 1; x <= n; x++ {
				for y := x + 1; y <= n; y++ {
					a := inject.Instance{Site: cd, Occurrence: x}
					b := inject.Instance{Site: cd, Occurrence: y}
					if pi, ok := trialPair(s, seed, a, b); ok {
						return pi, true
					}
				}
			}
			return inject.Instance{}, false
		},
	})
}

// multiNodeExhaustion reports whether at least two distinct datanodes
// logged xceiver-pool exhaustion.
func multiNodeExhaustion(r *cluster.Result) bool {
	const marker = "Xceiver pool exhausted on "
	nodes := map[string]bool{}
	for _, e := range r.Entries {
		i := strings.Index(e.Msg, marker)
		if i < 0 {
			continue
		}
		node, _, _ := strings.Cut(e.Msg[i+len(marker):], ",")
		nodes[node] = true
	}
	return len(nodes) >= 2
}
