package failures

import (
	"testing"

	"anduril/internal/cluster"
	"anduril/internal/inject"
)

// TestPartialScenariosNeedPartialFault pins the property that makes
// f32–f34 partial-failure scenarios rather than restatements of the
// existing dataset: no clean all-or-nothing fault — any occurrence of
// any error-return site or environment pseudo-site — satisfies their
// oracles. Error returns, crashes, partitions and message drops only
// ever lose or defer state; they cannot leave the torn renames, torn
// records and duplicated appends these oracles pin.
func TestPartialScenariosNeedPartialFault(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, id := range []string{"f32", "f33", "f34"} {
		s, _ := ByID(id)
		t.Run(id, func(t *testing.T) {
			// Enumerate singles with env faults enabled — but NOT partial
			// faults — so the sweep covers every clean fault the other
			// classes could inject while excluding the partial space itself.
			free := cluster.Execute(FailureSeed, nil, true, s.Workload, s.Horizon, cluster.WithEnvFaults())
			singles := 0
			for site, n := range free.Counts {
				for occ := 1; occ <= n; occ++ {
					inst := inject.Instance{Site: site, Occurrence: occ}
					res := cluster.Execute(FailureSeed, inject.Exact(inst), false,
						s.Workload, s.Horizon, cluster.WithEnvFaults())
					singles++
					if s.Oracle.Satisfied(res) {
						t.Fatalf("%s: clean fault %s#%d satisfies the partial oracle", id, site, occ)
					}
				}
			}
			if singles == 0 {
				t.Fatalf("%s: no clean-fault instances enumerated", id)
			}
		})
	}
}

// TestPartialGroundTruthOccurrences pins the empirically-derived ground
// truths so a drift in the target systems (which would silently move the
// reproducing instance) fails loudly instead.
func TestPartialGroundTruthOccurrences(t *testing.T) {
	wants := map[string]inject.Instance{
		"f32": {Site: inject.PartialSiteID(inject.PartialTornRename, "dfs.namenode.rename-edits", ""), Occurrence: 1},
		"f33": {Site: inject.PartialSiteID(inject.PartialShortWrite, "zk.sync.append-txn", ""), Occurrence: 3},
		"f34": {Site: inject.PartialSiteID(inject.PartialDupDeliver, "mq-producer-1", "broker-a"), Occurrence: 1},
	}
	for id, want := range wants {
		s, _ := ByID(id)
		inst, err := s.GroundTruth(FailureSeed)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if inst != want {
			t.Errorf("%s: ground truth %v, want %v", id, inst, want)
		}
	}
}
