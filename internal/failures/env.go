package failures

// The environment-fault scenarios (f23–f25): failures whose root cause
// is not an exception-shaped error return but something the deployment
// environment did — a node crash, a network partition, a delayed
// message. They exercise the env pseudo-site search space
// (internal/inject's env/ sites) end-to-end and are kept out of the
// paper's f1–f22 evaluation dataset by their non-nil FaultClasses.

import (
	"fmt"

	"anduril/internal/cluster"
	"anduril/internal/core"
	"anduril/internal/inject"
	"anduril/internal/oracle"
	"anduril/internal/sys/dfs"
	"anduril/internal/sys/mq"
	"anduril/internal/sys/zk"
)

// envClasses is the search space of the env-rooted scenarios: env
// pseudo-sites only. The CLI can widen it (-fault-classes=env,site).
var envClasses = []string{core.ClassEnv}

func init() {
	register(&Scenario{
		ID:          "f23",
		Issue:       "ZK-ENV-CRASH",
		System:      "zk",
		Description: "Leader crash during commit closes the client session unrecoverably",
		Kind:        inject.CrashFault,
		Workload:    zk.WorkloadQuorum,
		Horizon:     zk.Horizon,
		// The crash marker pins the subject node; the session loss and the
		// unfinished workload are the client-visible symptom. A crash
		// outside the commit window lets the ensemble re-elect (or the
		// client retry) in time, so the workload completes and the oracle
		// stays unsatisfied.
		Oracle: oracle.And(
			oracle.LogContainsExact("env: node zk3 crashed"),
			oracle.LogContains("client failed with connection loss"),
			oracle.Not(oracle.LogContains("finished workload")),
		),
		SrcDirs:      zkSrc,
		RootSite:     "env/crash/zk3",
		FaultClasses: envClasses,
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			// The crash must hit the leader while a client write is in
			// flight; trial-inject to find such an occurrence.
			s, _ := ByID("f23")
			return searchOccurrence(s, free, seed, "env/crash/zk3")
		},
	})

	register(&Scenario{
		ID:          "f24",
		Issue:       "KA-ENV-PARTITION",
		System:      "mq",
		Description: "Broker partition expires a live consumer from its group mid-run",
		Kind:        inject.PartitionFault,
		Workload:    mq.WorkloadGroup,
		Horizon:     mq.Horizon,
		// The partition marker pins the cut pair; the expiry of consumer-b
		// (which never crashes in this workload — only consumer-a is
		// stopped by the harness) plus its failing heartbeats are the
		// symptom of a member evicted while alive.
		Oracle: oracle.And(
			oracle.LogContainsExact("env: partition broker-a/consumer-b cut"),
			oracle.LogContains("member consumer-b expired"),
			oracle.LogContains("Consumer consumer-b heartbeat failed"),
		),
		SrcDirs:      mqSrc,
		RootSite:     "env/partition/broker-a~consumer-b",
		FaultClasses: envClasses,
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			// The cut must cover a full session-timeout window while
			// consumer-b is a member.
			s, _ := ByID("f24")
			return searchOccurrence(s, free, seed, "env/partition/broker-a~consumer-b")
		},
	})

	register(&Scenario{
		ID:          "f25",
		Issue:       "HD-ENV-DELAY",
		System:      "dfs",
		Description: "Delayed block-recovery RPC leaves an abandoned lease open forever",
		Kind:        inject.MsgDelayFault,
		Workload:    dfs.WorkloadWrite,
		Horizon:     dfs.Horizon,
		// The delay pushes the recover RPC past the namenode's timeout, so
		// the HD-12070 defect drops the lease from the monitor queue with
		// the file still open — the same terminal state as f7, reached
		// through the environment instead of an error return.
		// LogContains compares digit-sanitized messages, so the "dn1" below
		// matches whichever datanode holds the primary replica.
		Oracle: oracle.And(
			oracle.LogContains("env: message nn>dn1 delayed"),
			oracle.LogContains("Block recovery failed"),
			oracle.Not(oracle.LogContains("Lease recovered, file closed")),
		),
		SrcDirs:      dfsSrc,
		RootSite:     "env/msg-delay/nn>dn3",
		FaultClasses: envClasses,
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			// Which datanode holds the primary replica of the abandoned
			// file's last block depends on the seed's block allocation;
			// search every namenode->datanode delay channel.
			s, _ := ByID("f25")
			for i := 1; i <= 3; i++ {
				site := inject.EnvSiteID(inject.EnvDelay, "nn", fmt.Sprintf("dn%d", i))
				if inst, ok := searchOccurrence(s, free, seed, site); ok {
					return inst, true
				}
			}
			return inject.Instance{}, false
		},
	})
}
