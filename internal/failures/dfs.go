package failures

import (
	"strings"

	"anduril/internal/cluster"
	"anduril/internal/inject"
	"anduril/internal/oracle"
	"anduril/internal/sys/dfs"
)

var dfsSrc = []string{"internal/sys/dfs"}

// searchOccurrence trial-injects occurrences of a site until one satisfies
// the scenario's oracle — used for failures whose reproducing instance
// depends on concurrent timing (e.g. pool exhaustion).
func searchOccurrence(s *Scenario, free *cluster.Result, seed int64, site string) (inject.Instance, bool) {
	for occ := 1; occ <= free.Counts[site]; occ++ {
		inst := inject.Instance{Site: site, Occurrence: occ}
		res := cluster.Execute(seed, inject.Exact(inst), false, s.Workload, s.Horizon)
		if s.Oracle.Satisfied(res) {
			return inst, true
		}
	}
	return inject.Instance{}, false
}

func hasSuffixThread(thread, suffix string) bool { return strings.HasSuffix(thread, suffix) }

func init() {
	register(&Scenario{
		ID:          "f5",
		Issue:       "HD-4233",
		System:      "dfs",
		Description: "Rolling backup fails but the server keeps serving",
		Kind:        inject.FileNotFound,
		Workload:    dfs.WorkloadCheckpoint,
		Horizon:     dfs.Horizon,
		Oracle: oracle.And(
			oracle.LogContains("Failed to roll edit log"),
			oracle.LogContains("Skipping checkpoint: another checkpoint is in progress"),
		),
		SrcDirs:  dfsSrc,
		RootSite: "dfs.namenode.read-edits",
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			// Any roll can fail, but a later checkpoint must still be
			// attempted, so it cannot be the last occurrence.
			return nthOccurrence(free, "dfs.namenode.read-edits", 1)
		},
	})

	register(&Scenario{
		ID:          "f6",
		Issue:       "HD-12248",
		System:      "dfs",
		Description: "Exception when transferring fs image to namenode causes the checkpoint to ignore the image backup",
		Kind:        inject.Interrupted,
		Workload:    dfs.WorkloadCheckpoint,
		Horizon:     dfs.Horizon,
		Oracle: oracle.And(
			oracle.LogContains("Exception during image transfer"),
			oracle.LogContains("Checkpoint finished"),
		),
		SrcDirs:  dfsSrc,
		RootSite: "dfs.secondary.upload-image",
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			return nthOccurrence(free, "dfs.secondary.upload-image", 1)
		},
	})

	register(&Scenario{
		ID:          "f7",
		Issue:       "HD-12070",
		System:      "dfs",
		Description: "Files will remain open indefinitely if block recovery fails",
		Kind:        inject.IO,
		Workload:    dfs.WorkloadWrite,
		Horizon:     dfs.Horizon,
		Oracle: oracle.And(
			oracle.LogContains("Block recovery failed"),
			oracle.Not(oracle.LogContains("Lease recovered, file closed")),
		),
		SrcDirs:  dfsSrc,
		RootSite: "dfs.datanode.recover-finalize",
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			return nthOccurrence(free, "dfs.datanode.recover-finalize", 1)
		},
	})

	register(&Scenario{
		ID:          "f8",
		Issue:       "HD-13039",
		System:      "dfs",
		Description: "Data block creation leaks socket on exception",
		Kind:        inject.IO,
		Workload:    dfs.WorkloadWrite,
		Horizon:     dfs.Horizon,
		Oracle: oracle.And(
			oracle.LogContains("Failed to build pipeline"),
			oracle.LogContains("Xceiver pool exhausted"),
		),
		SrcDirs:  dfsSrc,
		RootSite: "dfs.datanode.connect-downstream",
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			// The leak only matters when later concurrent transfers land on
			// the leaked node; trial-inject to find such an occurrence.
			s, _ := ByID("f8")
			return searchOccurrence(s, free, seed, "dfs.datanode.connect-downstream")
		},
	})

	register(&Scenario{
		ID:          "f9",
		Issue:       "HD-16332",
		System:      "dfs",
		Description: "Missing handling of expired block token causes slow read",
		Kind:        inject.IO,
		Workload:    dfs.WorkloadRead,
		Horizon:     dfs.Horizon,
		Oracle: oracle.And(
			oracle.LogContains("Invalid block token"),
			oracle.LogContains("slow read detected"),
		),
		SrcDirs:  dfsSrc,
		RootSite: "dfs.client.refetch-token",
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			return nthOccurrence(free, "dfs.client.refetch-token", 1)
		},
	})

	register(&Scenario{
		ID:          "f10",
		Issue:       "HD-14333",
		System:      "dfs",
		Description: "Disk error during namenode registration causes datanodes fail to start",
		Kind:        inject.IO,
		Workload:    dfs.WorkloadStartup,
		Horizon:     dfs.Horizon,
		Oracle: oracle.And(
			oracle.LogContains("Failed to add storage directory"),
			oracle.LogContains("failed to start: no valid volumes"),
		),
		SrcDirs:  dfsSrc,
		RootSite: "dfs.datanode.init-storage",
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			// Must hit the startup registration path, i.e. an occurrence on
			// a dnX-main thread, not the periodic volume re-check.
			for _, ev := range free.Trace {
				if ev.Site == "dfs.datanode.init-storage" && hasSuffixThread(ev.Thread, "-main") {
					return inject.Instance{Site: ev.Site, Occurrence: ev.Occurrence}, true
				}
			}
			return inject.Instance{}, false
		},
	})

	register(&Scenario{
		ID:          "f11",
		Issue:       "HD-15032",
		System:      "dfs",
		Description: "Balancer crashes when it fails to contact an unavailable namenode",
		Kind:        inject.Socket,
		Workload:    dfs.WorkloadBalancer,
		Horizon:     dfs.Horizon,
		Oracle: oracle.And(
			oracle.LogContains("Unhandled exception in balancer"),
			oracle.LogContains("Balancer terminated"),
		),
		SrcDirs:  dfsSrc,
		RootSite: "dfs.balancer.get-blocks",
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			return nthOccurrence(free, "dfs.balancer.get-blocks", 2)
		},
	})
}
