package failures

import (
	"strings"

	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/inject"
	"anduril/internal/oracle"
	"anduril/internal/sys/zk"
)

// firstOn returns the first occurrence of site executed by a thread of the
// given node.
func firstOn(free *cluster.Result, site, node string) (inject.Instance, bool) {
	for _, ev := range free.Trace {
		if ev.Site == site && strings.HasPrefix(ev.Thread, node+"-") {
			return inject.Instance{Site: site, Occurrence: ev.Occurrence}, true
		}
	}
	return inject.Instance{}, false
}

// lastOnBefore returns the last occurrence of site executed by a thread of
// the given node before the virtual deadline.
func lastOnBefore(free *cluster.Result, site, node string, deadline des.Time) (inject.Instance, bool) {
	var out inject.Instance
	found := false
	for _, ev := range free.Trace {
		if ev.Site == site && ev.Time < deadline && strings.HasPrefix(ev.Thread, node+"-") {
			out = inject.Instance{Site: site, Occurrence: ev.Occurrence}
			found = true
		}
	}
	return out, found
}

// nthOccurrence returns the nth occurrence of a site.
func nthOccurrence(free *cluster.Result, site string, n int) (inject.Instance, bool) {
	if free.Counts[site] < n {
		return inject.Instance{}, false
	}
	return inject.Instance{Site: site, Occurrence: n}, true
}

var zkSrc = []string{"internal/sys/zk"}

func init() {
	register(&Scenario{
		ID:          "f1",
		Issue:       "ZK-2247",
		System:      "zk",
		Description: "Server unavailable when leader fails to write transaction log",
		Kind:        inject.IO,
		Workload:    zk.WorkloadQuorum,
		Horizon:     zk.Horizon,
		Oracle: oracle.And(
			oracle.LogContains("Severe unrecoverable error, exiting SyncRequestProcessor"),
			oracle.LogContains("timed out; server unavailable"),
		),
		SrcDirs:  zkSrc,
		RootSite: "zk.sync.append-txn",
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			// The fault must hit the LEADER's sync processor; the same
			// static site on a follower is tolerated by the quorum.
			return firstOn(free, "zk.sync.append-txn", "zk3")
		},
	})

	register(&Scenario{
		ID:          "f2",
		Issue:       "ZK-3157",
		System:      "zk",
		Description: "Connection loss causes the client to fail",
		Kind:        inject.Socket,
		Workload:    zk.WorkloadQuorum,
		Horizon:     zk.Horizon,
		Oracle: oracle.And(
			oracle.LogContains("Unexpected exception causing session"),
			oracle.LogContains("client failed with connection loss"),
		),
		SrcDirs:  zkSrc,
		RootSite: "zk.follower.forward-request",
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			// The broken channel must carry a write; forwarded reads are
			// retried. Occurrence 3 is the first set operation.
			return nthOccurrence(free, "zk.follower.forward-request", 3)
		},
	})

	register(&Scenario{
		ID:          "f3",
		Issue:       "ZK-4203",
		System:      "zk",
		Description: "The leader election is stuck forever due to connection error",
		Kind:        inject.IO,
		Workload:    zk.WorkloadElection,
		Horizon:     zk.Horizon,
		Oracle: oracle.And(
			oracle.LogContains("Exception while listening for election connections"),
			oracle.Not(oracle.LogContains("Leader is serving epoch")),
		),
		SrcDirs:  zkSrc,
		RootSite: "zk.election.accept-connection",
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			// The connection manager must die on the would-be leader (the
			// highest id) before it tallies a quorum.
			return firstOn(free, "zk.election.accept-connection", "zk3")
		},
	})

	register(&Scenario{
		ID:          "f4",
		Issue:       "ZK-3006",
		System:      "zk",
		Description: "Invalid disk file content causes null pointer exception",
		Kind:        inject.IO,
		Workload:    zk.WorkloadSnapshotRestart,
		Horizon:     zk.Horizon,
		Oracle: oracle.And(
			oracle.LogContains("NullPointerException"),
			oracle.LogContains("Severe error starting quorum peer"),
		),
		SrcDirs:  zkSrc,
		RootSite: "zk.snap.write-body",
		FindRoot: func(free *cluster.Result, seed int64) (inject.Instance, bool) {
			// The truncated snapshot must be the LAST one zk1 wrote before
			// its restart; earlier ones are superseded.
			return lastOnBefore(free, "zk.snap.write-body", "zk1", 1200*des.Millisecond)
		},
	})
}
