package server

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"anduril/internal/trace"
)

// encodeLine renders an event exactly as the WAL stores it.
func encodeLine(ev trace.Event) []byte {
	return append(trace.AppendEvent(nil, &ev), '\n')
}

func walEvents() []trace.Event {
	return []trace.Event{
		{Type: trace.FreeRun, Target: "f4", Strategy: "full-feedback", Seed: 1},
		{Type: trace.RoundStart, Round: 1, Window: 10},
		{Type: trace.Decision, Round: 1},
		{Type: trace.RoundStart, Round: 2, Window: 10},
		{Type: trace.Decision, Round: 2},
		{Type: trace.RoundStart, Round: 3, Window: 10},
		{Type: trace.Outcome, Reproduced: true, Rounds: 3, Reason: trace.ReasonReproduced},
	}
}

func concatLines(events []trace.Event) []byte {
	var out []byte
	for _, ev := range events {
		out = append(out, encodeLine(ev)...)
	}
	return out
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// Flush(n) commits exactly the rounds the upcoming checkpoint admits;
// events of an uncommitted later round must stay off disk so that an
// interrupt or kill never leaves the file ahead of what the resumed
// search will re-emit.
func TestWALFlushCommitsOnlyCheckpointedRounds(t *testing.T) {
	path := filepath.Join(t.TempDir(), traceFile)
	w, err := openWAL(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	events := walEvents()
	for i := range events[:5] { // free run + rounds 1,2
		w.Emit(&events[i])
	}
	w.Flush(1)
	if got, want := readFile(t, path), concatLines(events[:3]); !bytes.Equal(got, want) {
		t.Fatalf("after Flush(1):\n%s\nwant:\n%s", got, want)
	}
	w.Emit(&events[5]) // round 3 starts
	w.Flush(2)
	if got, want := readFile(t, path), concatLines(events[:5]); !bytes.Equal(got, want) {
		t.Fatalf("after Flush(2):\n%s\nwant:\n%s", got, want)
	}
	w.Emit(&events[6]) // outcome
	if err := w.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if got, want := readFile(t, path), concatLines(events); !bytes.Equal(got, want) {
		t.Fatalf("after FlushAll:\n%s\nwant:\n%s", got, want)
	}
}

// Recovery must trim the journal back to the surviving checkpoint's
// round: later rounds, a stray outcome, and a torn final line are all
// artifacts of dying with the WAL ahead of the checkpoint, and the
// resumed search re-emits their contents byte-identically.
func TestWALRecoveryTrims(t *testing.T) {
	events := walEvents()
	full := concatLines(events)
	cases := []struct {
		name    string
		raw     []byte
		ckRound int
		haveCk  bool
		want    []byte
	}{
		{"no checkpoint starts fresh", full, 0, false, nil},
		{"ahead of checkpoint", full, 2, true, concatLines(events[:5])},
		{"outcome trimmed", full, 3, true, concatLines(events[:6])},
		{"exactly at checkpoint", concatLines(events[:5]), 2, true, concatLines(events[:5])},
		{"torn tail", append(concatLines(events[:3]), []byte(`{"event":"round","rou`)...), 1, true, concatLines(events[:3])},
		{"garbage line", append(concatLines(events[:3]), []byte("not json at all\n")...), 9, true, concatLines(events[:3])},
		{"empty file", nil, 5, true, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), traceFile)
			if err := os.WriteFile(path, c.raw, 0o644); err != nil {
				t.Fatal(err)
			}
			w, err := openWAL(path, c.ckRound, c.haveCk)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			if got := readFile(t, path); !bytes.Equal(got, c.want) {
				t.Fatalf("recovered file:\n%s\nwant:\n%s", got, c.want)
			}
		})
	}
}

// After recovery the resumed search appends its suffix; the file must
// concatenate cleanly.
func TestWALAppendsAfterRecovery(t *testing.T) {
	events := walEvents()
	path := filepath.Join(t.TempDir(), traceFile)
	if err := os.WriteFile(path, concatLines(events), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := openWAL(path, 2, true) // trims rounds 3+ and the outcome
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := range events[5:] { // re-emit round 3 and the outcome
		w.Emit(&events[5+i])
	}
	if err := w.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); !bytes.Equal(got, concatLines(events)) {
		t.Fatalf("resumed file:\n%s\nwant the full trace:\n%s", got, concatLines(events))
	}
}

// A follower sees the snapshot plus every subsequent event, in order,
// with no gap and no duplicate, and its stream ends when the WAL closes.
func TestWALSubscribe(t *testing.T) {
	events := walEvents()
	path := filepath.Join(t.TempDir(), traceFile)
	w, err := openWAL(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range events[:3] {
		w.Emit(&events[i])
	}
	snapshot, lines, cancel, err := w.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if !bytes.Equal(snapshot, concatLines(events[:3])) {
		t.Fatalf("snapshot:\n%s\nwant:\n%s", snapshot, concatLines(events[:3]))
	}
	for i := range events[3:] {
		w.Emit(&events[3+i])
	}
	w.Close()
	got := append([]byte(nil), snapshot...)
	for line := range lines {
		got = append(got, line...)
	}
	if !bytes.Equal(got, concatLines(events)) {
		t.Fatalf("followed stream:\n%s\nwant:\n%s", got, concatLines(events))
	}
}

func TestWALReset(t *testing.T) {
	events := walEvents()
	path := filepath.Join(t.TempDir(), traceFile)
	w, err := openWAL(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := range events[:4] {
		w.Emit(&events[i])
	}
	w.Flush(1)
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); len(got) != 0 {
		t.Fatalf("file not empty after Reset: %s", got)
	}
	w.Emit(&events[0])
	if err := w.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); !bytes.Equal(got, encodeLine(events[0])) {
		t.Fatalf("post-Reset file:\n%s", got)
	}
}
