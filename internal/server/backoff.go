package server

import (
	"context"
	"time"
)

// Retry backoff. The schedule must be deterministic — the daemon's whole
// contract is that re-running the same job set reproduces the same
// journal, so scheduling decisions may not consult the wall clock or a
// process-global RNG. Backoff is a pure function: the delay before retry
// attempt n of a job is derived from the job's own seed stream (seed and
// key fed through splitmix64), giving exponential growth with
// deterministic jitter. Two daemon runs over the same jobs journal
// identical retry schedules in virtual time; only the Clock that
// realizes the delays touches real time, and tests substitute it.

const (
	backoffBase = 100 * time.Millisecond
	backoffCap  = 5 * time.Second
)

// Backoff returns the delay to schedule before retry attempt n (1-based)
// of the job with the given master seed and key. The delay is
// base·2^(n-1) capped at backoffCap, jittered deterministically into
// [base/2, base]: enough spread to de-synchronize a burst of failing
// jobs, with no randomness source beyond the job's identity.
func Backoff(seed int64, key string, attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	base := backoffBase << uint(attempt-1)
	if base <= 0 || base > backoffCap {
		base = backoffCap
	}
	x := splitmix64(uint64(seed) ^ fnv64(key) ^ uint64(attempt)*0x9E3779B97F4A7C15)
	half := base / 2
	return half + time.Duration(x%uint64(half+1))
}

// splitmix64 is the standard 64-bit mixer (Steele et al.): a bijection
// with strong avalanche, so consecutive attempt numbers map to
// uncorrelated jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// fnv64 hashes a job key (FNV-1a) into the jitter derivation, so equal
// seeds on different jobs still jitter apart.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Clock realizes scheduled delays. The daemon uses the real clock; tests
// substitute a virtual one that records the schedule instead of
// sleeping, keeping retry tests instant and the asserted schedules exact.
type Clock interface {
	// Sleep blocks for d or until ctx is cancelled, whichever is first.
	Sleep(ctx context.Context, d time.Duration)
}

// realClock sleeps on the wall clock.
type realClock struct{}

func (realClock) Sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
