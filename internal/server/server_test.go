package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"anduril/internal/core"
	"anduril/internal/failures"
	"anduril/internal/trace"
)

// serialTargets caches built targets across tests; Targets are read-only
// during Reproduce, so sharing them is the documented contract.
var serialTargets = struct {
	mu sync.Mutex
	m  map[string]*core.Target
}{m: map[string]*core.Target{}}

func serialTarget(t *testing.T, id string) *core.Target {
	t.Helper()
	serialTargets.mu.Lock()
	defer serialTargets.mu.Unlock()
	if cached, ok := serialTargets.m[id]; ok {
		return cached
	}
	sc, ok := failures.ByID(id)
	if !ok {
		t.Fatalf("unknown failure %s", id)
	}
	target, err := sc.BuildTarget()
	if err != nil {
		t.Fatal(err)
	}
	serialTargets.m[id] = target
	return target
}

// serialRun executes the spec the way a plain serial caller would — no
// daemon, no checkpoints, no interruptions — and returns the report and
// the exact trace bytes. Every daemon test compares against this: the
// server's whole value proposition is that queueing, dedupe, retries,
// restarts and resumes change NOTHING about the result.
func serialRun(t *testing.T, spec Spec) (*core.Report, []byte) {
	t.Helper()
	sp := spec.Normalize()
	opts := sp.Options()
	mem := &trace.Memory{}
	opts.Trace = mem
	rep := core.Reproduce(serialTarget(t, sp.Failure), opts)
	var buf []byte
	for i := range mem.Events {
		buf = trace.AppendEvent(buf, &mem.Events[i])
		buf = append(buf, '\n')
	}
	return rep, buf
}

func canonical(t *testing.T, rep *core.Report) []byte {
	t.Helper()
	raw, err := core.CanonicalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

func waitIdle(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatalf("server never went idle: %v", err)
	}
}

// assertMatchesSerial checks the daemon's stored artifacts for a done
// job against the serial run: canonical report and trace byte-identical.
func assertMatchesSerial(t *testing.T, s *Server, key string, spec Spec) {
	t.Helper()
	job, ok := s.Job(key)
	if !ok {
		t.Fatalf("job %s missing", key)
	}
	if job.State != StateDone {
		t.Fatalf("job %s is %s (error %q), want done", key, job.State, job.Error)
	}
	wantRep, wantTrace := serialRun(t, spec)
	gotCanon, err := s.CanonicalReportJSON(key)
	if err != nil {
		t.Fatal(err)
	}
	if want := canonical(t, wantRep); !bytes.Equal(gotCanon, want) {
		t.Fatalf("canonical report diverged from serial run:\ndaemon: %s\nserial: %s", gotCanon, want)
	}
	gotTrace, err := s.TraceJSONL(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotTrace, wantTrace) {
		t.Fatalf("trace diverged from serial run (%d vs %d bytes)", len(gotTrace), len(wantTrace))
	}
	if job.Reproduced != wantRep.Reproduced || job.Rounds != wantRep.Rounds {
		t.Fatalf("job summary (%v, %d) disagrees with report (%v, %d)",
			job.Reproduced, job.Rounds, wantRep.Reproduced, wantRep.Rounds)
	}
}

func TestServerRunsJobToCompletion(t *testing.T) {
	s := newServer(t, Config{Workers: 2})
	spec := Spec{Failure: "f4"}
	job, deduped, err := s.Submit(spec)
	if err != nil || deduped {
		t.Fatalf("Submit = (%v, deduped=%v)", err, deduped)
	}
	waitIdle(t, s)
	assertMatchesSerial(t, s, job.Key, spec)
	if s.Executions() != 1 {
		t.Fatalf("executions = %d, want 1", s.Executions())
	}
}

// N racing identical submissions are one job: one execution, one set of
// artifacts, every submitter handed the same key and, eventually, the
// same report.
func TestServerDedupesIdenticalSubmissions(t *testing.T) {
	s := newServer(t, Config{Workers: 4})
	const n = 16
	spec := Spec{Failure: "f4", Seed: 3}
	keys := make([]string, n)
	dedups := make([]bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			job, deduped, err := s.Submit(spec)
			if err != nil {
				t.Errorf("submission %d: %v", i, err)
				return
			}
			keys[i], dedups[i] = job.Key, deduped
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	fresh := 0
	for i := 1; i < n; i++ {
		if keys[i] != keys[0] {
			t.Fatalf("submission %d got key %s, want %s", i, keys[i], keys[0])
		}
	}
	for _, d := range dedups {
		if !d {
			fresh++
		}
	}
	if fresh != 1 {
		t.Fatalf("%d submissions were treated as new, want exactly 1", fresh)
	}
	waitIdle(t, s)
	if s.Executions() != 1 {
		t.Fatalf("executions = %d, want 1 for %d identical submissions", s.Executions(), n)
	}
	job, _ := s.Job(keys[0])
	if job.Submissions != n {
		t.Fatalf("job records %d submissions, want %d", job.Submissions, n)
	}
	// Every submitter reads the same terminal report bytes.
	first, err := s.ReportJSON(keys[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		raw, err := s.ReportJSON(keys[i])
		if err != nil || !bytes.Equal(raw, first) {
			t.Fatalf("submitter %d read a different report (err %v)", i, err)
		}
	}
	assertMatchesSerial(t, s, keys[0], spec)
}

// Admission control: with the queue at capacity a submission is shed
// with a retryable overload error, and every job that WAS accepted still
// completes.
func TestServerShedsLoadWhenQueueFull(t *testing.T) {
	s := newServer(t, Config{Workers: 1, QueueCap: 1})
	release := make(chan struct{})
	s.searchFn = func(sp Spec, opts core.Options, ckPath string, haveCk bool) (*core.Report, error) {
		select {
		case <-release:
			return &core.Report{Target: sp.Failure, Reproduced: true, Rounds: 1}, nil
		case <-opts.Context.Done():
			return &core.Report{Interrupted: true}, nil
		}
	}

	a, _, err := s.Submit(Spec{Failure: "f4", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until A occupies the worker so B below is the queue's sole
	// occupant and C is deterministically one-over.
	deadline := time.Now().Add(30 * time.Second)
	for s.Executions() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job A never started")
		}
		time.Sleep(time.Millisecond)
	}
	b, _, err := s.Submit(Spec{Failure: "f4", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = s.Submit(Spec{Failure: "f4", Seed: 3})
	var overload *OverloadError
	if !errors.As(err, &overload) {
		t.Fatalf("over-capacity submission returned %v, want OverloadError", err)
	}
	if overload.RetryAfter <= 0 {
		t.Fatalf("Retry-After = %s, want positive", overload.RetryAfter)
	}
	// Resubmitting an EXISTING job while at capacity still dedupes — the
	// cap bounds new work, not lookups.
	if _, deduped, err := s.Submit(Spec{Failure: "f4", Seed: 1}); err != nil || !deduped {
		t.Fatalf("dedupe under load = (%v, deduped=%v)", err, deduped)
	}
	close(release)
	waitIdle(t, s)
	for _, key := range []string{a.Key, b.Key} {
		job, _ := s.Job(key)
		if job.State != StateDone {
			t.Fatalf("accepted job %s ended %s, want done", key[:12], job.State)
		}
	}
}

// A transient execution failure retries with the deterministic backoff
// schedule and then succeeds; the attempts and schedule are journaled.
func TestServerRetriesTransientFailures(t *testing.T) {
	vc := &virtualClock{}
	s := newServer(t, Config{Workers: 1, MaxAttempts: 3, Clock: vc})
	var calls int
	s.searchFn = func(sp Spec, opts core.Options, ckPath string, haveCk bool) (*core.Report, error) {
		calls++
		if calls <= 2 {
			panic(fmt.Sprintf("transient fault %d", calls))
		}
		return &core.Report{Target: sp.Failure, Reproduced: true, Rounds: 7}, nil
	}
	spec := Spec{Failure: "f4", Seed: 5}
	job, _, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitIdle(t, s)
	got, _ := s.Job(job.Key)
	if got.State != StateDone || got.Attempts != 2 {
		t.Fatalf("job = %+v, want done after 2 transient attempts", got)
	}
	key := job.Key
	want := []int64{
		Backoff(5, key, 1).Milliseconds(),
		Backoff(5, key, 2).Milliseconds(),
	}
	if !reflect.DeepEqual(got.RetryBackoffsMS, want) {
		t.Fatalf("journaled schedule %v, want %v", got.RetryBackoffsMS, want)
	}
	sleeps := vc.schedule()
	if len(sleeps) != 2 || sleeps[0].Milliseconds() != want[0] || sleeps[1].Milliseconds() != want[1] {
		t.Fatalf("virtual clock saw %v, want schedule %v ms", sleeps, want)
	}
}

// Satellite regression: two daemon runs over the same failing job set
// journal IDENTICAL retry schedules in virtual time. No wall clock, no
// global RNG — the schedule is a function of the jobs alone.
func TestServerRetryScheduleDeterministicAcrossRuns(t *testing.T) {
	run := func() (map[string][]int64, []time.Duration) {
		vc := &virtualClock{}
		s := newServer(t, Config{Workers: 1, MaxAttempts: 3, Clock: vc})
		s.searchFn = func(sp Spec, opts core.Options, ckPath string, haveCk bool) (*core.Report, error) {
			return nil, fmt.Errorf("injected transient failure")
		}
		specs := []Spec{
			{Failure: "f4", Seed: 1},
			{Failure: "f4", Seed: 2},
			{Failure: "f9", Seed: 7},
		}
		schedules := map[string][]int64{}
		for _, sp := range specs {
			job, _, err := s.Submit(sp)
			if err != nil {
				t.Fatal(err)
			}
			schedules[job.Key] = nil
		}
		waitIdle(t, s)
		for key := range schedules {
			job, _ := s.Job(key)
			if job.State != StateFailed || job.Attempts != 3 {
				t.Fatalf("job %s = %+v, want failed after MaxAttempts", key[:12], job)
			}
			if len(job.RetryBackoffsMS) != 2 {
				t.Fatalf("job %s journaled %d backoffs, want 2", key[:12], len(job.RetryBackoffsMS))
			}
			schedules[key] = job.RetryBackoffsMS
		}
		s.Shutdown()
		return schedules, vc.schedule()
	}
	firstSchedules, firstSleeps := run()
	secondSchedules, secondSleeps := run()
	if !reflect.DeepEqual(firstSchedules, secondSchedules) {
		t.Fatalf("journaled retry schedules diverged across daemon runs:\n%v\n%v", firstSchedules, secondSchedules)
	}
	if !reflect.DeepEqual(firstSleeps, secondSleeps) {
		t.Fatalf("virtual-time schedules diverged across daemon runs:\n%v\n%v", firstSleeps, secondSleeps)
	}
}

// A deterministic failure — the report itself says the search cannot
// start — fails fast: no retries, the diagnosis journaled.
func TestServerFailsFastOnDeterministicFailure(t *testing.T) {
	vc := &virtualClock{}
	s := newServer(t, Config{Workers: 1, MaxAttempts: 5, Clock: vc})
	s.searchFn = func(sp Spec, opts core.Options, ckPath string, haveCk bool) (*core.Report, error) {
		return &core.Report{Target: sp.Failure, Error: "free run failed: workload wedged"}, nil
	}
	job, _, err := s.Submit(Spec{Failure: "f4", Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	waitIdle(t, s)
	got, _ := s.Job(job.Key)
	if got.State != StateFailed || got.Attempts != 0 || len(got.RetryBackoffsMS) != 0 {
		t.Fatalf("job = %+v, want immediate terminal failure with no retries", got)
	}
	if got.Error == "" || s.Executions() != 1 || len(vc.schedule()) != 0 {
		t.Fatalf("deterministic failure was retried: executions=%d sleeps=%v", s.Executions(), vc.schedule())
	}
}

// Graceful drain mid-search, then restart: the interrupted job is
// re-admitted, resumes from its forced final checkpoint, and finishes
// with artifacts byte-identical to an uninterrupted serial run.
func TestServerDrainAndRestartResumesByteIdentical(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Failure: "f30"}
	s1, err := Open(Config{DataDir: dir, Workers: 1, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	job, _, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let the search get going, then drain mid-flight.
	deadline := time.Now().Add(60 * time.Second)
	for {
		raw, err := s1.TraceJSONL(job.Key)
		if err == nil && bytes.Count(raw, []byte("\n")) > 20 {
			break
		}
		if j, _ := s1.Job(job.Key); j.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("search never got going")
		}
		time.Sleep(time.Millisecond)
	}
	s1.Shutdown()

	mid, _ := s1.Job(job.Key)
	if !mid.Terminal() && mid.State != StateRunning {
		t.Fatalf("drained job in state %s, want running (re-admittable) or terminal", mid.State)
	}

	s2, err := Open(Config{DataDir: dir, Workers: 1, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown()
	waitIdle(t, s2)
	assertMatchesSerial(t, s2, job.Key, spec)
	if mid.Terminal() {
		t.Log("note: job finished before the drain; resume path not exercised this run")
	}
}

// Kill with work still queued: nothing is lost, nothing runs twice. The
// restarted daemon re-admits the blocked runner AND the queued jobs and
// completes them all with serial-identical results.
func TestServerRestartReAdmitsQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(Config{DataDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s1.searchFn = func(sp Spec, opts core.Options, ckPath string, haveCk bool) (*core.Report, error) {
		<-opts.Context.Done() // wedge every execution until drain
		return &core.Report{Interrupted: true}, nil
	}
	specs := []Spec{
		{Failure: "f9"},
		{Failure: "f4", Seed: 1},
		{Failure: "f4", Seed: 2},
		{Failure: "f1"},
	}
	keys := make([]string, len(specs))
	for i, sp := range specs {
		job, _, err := s1.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = job.Key
	}
	deadline := time.Now().Add(30 * time.Second)
	for s1.Executions() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	s1.Shutdown()

	s2, err := Open(Config{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown()
	if got := len(s2.Jobs()); got != len(specs) {
		t.Fatalf("restarted journal holds %d jobs, want %d", got, len(specs))
	}
	waitIdle(t, s2)
	if s2.Executions() != int64(len(specs)) {
		t.Fatalf("restart executed %d jobs, want %d (no loss, no duplication)", s2.Executions(), len(specs))
	}
	for i, key := range keys {
		assertMatchesSerial(t, s2, key, specs[i])
	}
}

// Draining servers refuse new work but finish answering for old work.
func TestServerRejectsSubmissionsWhileDraining(t *testing.T) {
	s := newServer(t, Config{Workers: 1})
	job, _, err := s.Submit(Spec{Failure: "f4"})
	if err != nil {
		t.Fatal(err)
	}
	waitIdle(t, s)
	s.Shutdown()
	if s.Ready() {
		t.Fatal("server reports ready after Shutdown")
	}
	if _, _, err := s.Submit(Spec{Failure: "f9"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submission during drain returned %v, want ErrDraining", err)
	}
	// Reads still work.
	if _, ok := s.Job(job.Key); !ok {
		t.Fatal("job record unreadable during drain")
	}
	if _, err := s.ReportJSON(job.Key); err != nil {
		t.Fatalf("report unreadable during drain: %v", err)
	}
}
