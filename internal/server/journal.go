package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"anduril/internal/checkpoint"
)

// Journal file names inside <data>/jobs/<key>/.
const (
	jobFile    = "job.json"
	ckFile     = "search.ck.json"
	traceFile  = "trace.jsonl"
	reportFile = "report.json"

	jobKind    = "server-job"
	jobVersion = 1

	reportKind    = "server-report"
	reportVersion = 1
)

// Journal is the daemon's durable job table: one directory per job under
// <data>/jobs/, each holding the job record plus the search's artifacts.
// Every record write goes through an atomic checkpoint envelope and is
// fsynced (file and directories) before Put/Update return, which is what
// makes an HTTP 202 a promise: an accepted job survives kill -9 and
// power loss, and the next daemon start finds and finishes it.
//
// The in-memory map is a cache of what is on disk, never the other way
// around — mutations persist first and only then update the map, so a
// crash between the two merely re-reads the newer truth at next open.
type Journal struct {
	dir string // <data>/jobs

	mu   sync.Mutex
	jobs map[string]*Job
}

// OpenJournal loads (creating if necessary) the job table under dataDir.
// Job directories whose record is missing or unreadable are skipped and
// reported in skipped: the only way to produce one is dying between
// MkdirAll and the first record write, before the submission was ever
// acknowledged, so ignoring it loses nothing a client was promised.
func OpenJournal(dataDir string) (j *Journal, skipped []string, err error) {
	dir := filepath.Join(dataDir, "jobs")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("server: open journal: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("server: open journal: %w", err)
	}
	j = &Journal{dir: dir, jobs: map[string]*Job{}}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		job, err := readJob(filepath.Join(dir, e.Name(), jobFile))
		if err != nil || job.Key != e.Name() {
			skipped = append(skipped, e.Name())
			continue
		}
		j.jobs[job.Key] = job
	}
	return j, skipped, nil
}

// readJob loads one job record envelope.
func readJob(path string) (*Job, error) {
	raw, err := checkpoint.Load(path, jobKind, jobVersion)
	if err != nil {
		return nil, err
	}
	job := &Job{}
	if err := json.Unmarshal(raw, job); err != nil {
		return nil, fmt.Errorf("server: decode %s: %w", path, err)
	}
	return job, nil
}

// Dir returns the job's directory (which holds its artifacts).
func (j *Journal) Dir(key string) string { return filepath.Join(j.dir, key) }

// Get returns a copy of the job record, if present.
func (j *Journal) Get(key string) (Job, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	job, ok := j.jobs[key]
	if !ok {
		return Job{}, false
	}
	return *job, true
}

// Jobs returns copies of every record, sorted by key — the journal's
// single deterministic iteration order, used for restart re-admission
// and listings.
func (j *Journal) Jobs() []Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Job, 0, len(j.jobs))
	for _, job := range j.jobs {
		out = append(out, *job)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out
}

// Put durably creates a job record (its directory included), then
// publishes it to the in-memory table.
func (j *Journal) Put(job Job) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.persistLocked(&job)
}

// Update applies f to the job record under the journal lock, persists
// the result durably, and returns the updated copy. If persisting fails
// the in-memory record keeps its previous value.
func (j *Journal) Update(key string, f func(*Job)) (Job, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	cur, ok := j.jobs[key]
	if !ok {
		return Job{}, fmt.Errorf("server: update unknown job %s", key)
	}
	next := *cur
	f(&next)
	if err := j.persistLocked(&next); err != nil {
		return Job{}, err
	}
	return next, nil
}

// persistLocked writes the record durably and installs it in the table.
// New job directories get the full treatment: MkdirAll, the atomic
// record write (which fsyncs the job directory), then an fsync of jobs/
// itself so the directory entry survives power loss too.
func (j *Journal) persistLocked(job *Job) error {
	dir := filepath.Join(j.dir, job.Key)
	_, existed := j.jobs[job.Key]
	if !existed {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("server: create job dir: %w", err)
		}
	}
	if err := checkpoint.Save(filepath.Join(dir, jobFile), jobKind, jobVersion, job); err != nil {
		return err
	}
	if !existed {
		if err := checkpoint.SyncDir(j.dir); err != nil {
			return err
		}
	}
	cp := *job
	j.jobs[job.Key] = &cp
	return nil
}
