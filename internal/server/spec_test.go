package server

import (
	"reflect"
	"strings"
	"testing"

	"anduril/internal/core"
)

func TestSpecNormalizeDefaults(t *testing.T) {
	sp := Spec{Failure: "f4"}.Normalize()
	want := Spec{
		Failure: "f4", Strategy: string(core.FullFeedback), Seed: 1,
		MaxRounds: 500, Window: 10, Adjust: 1, RunsPerRound: 1,
		Addressing: string(core.AddrOccurrence),
	}
	if !reflect.DeepEqual(sp, want) {
		t.Fatalf("Normalize() = %+v, want %+v", sp, want)
	}
}

// Two specs that ask for the same search must share a key — that is the
// whole dedupe contract — and any field that changes the search must
// change the key.
func TestSpecKey(t *testing.T) {
	base := Spec{Failure: "f4"}
	if got, want := base.Key(), (Spec{
		Failure: "f4", Strategy: "full-feedback", Seed: 1,
		MaxRounds: 500, Window: 10, Adjust: 1, RunsPerRound: 1,
		Addressing: "occurrence",
	}).Key(); got != want {
		t.Fatalf("implicit and explicit defaults hash differently:\n%s\n%s", got, want)
	}
	if got, want := (Spec{Failure: "f23", FaultClasses: []string{"site", "env", "site"}}).Key(),
		(Spec{Failure: "f23", FaultClasses: []string{"env", "site"}}).Key(); got != want {
		t.Fatal("fault-class order/duplicates changed the key")
	}

	distinct := []Spec{
		base,
		{Failure: "f5"},
		{Failure: "f4", Seed: 2},
		{Failure: "f4", Strategy: "random"},
		{Failure: "f4", MaxRounds: 100},
		{Failure: "f4", Window: 4},
		{Failure: "f4", Addressing: "path"},
		{Failure: "f4", FaultClasses: []string{"site", "env"}},
	}
	seen := map[string]int{}
	for i, sp := range distinct {
		k := sp.Key()
		if len(k) != 64 {
			t.Fatalf("key %q is not a hex sha256", k)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("specs %d and %d collide: %+v vs %+v", prev, i, distinct[prev], sp)
		}
		seen[k] = i
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name    string
		spec    Spec
		wantErr string // "" = valid
	}{
		{"minimal", Spec{Failure: "f4"}, ""},
		{"full", Spec{Failure: "f23", Strategy: "random", Seed: 9, FaultClasses: []string{"env", "site"}, Addressing: "path"}, ""},
		{"no failure", Spec{}, "failure id required"},
		{"unknown failure", Spec{Failure: "f999"}, "unknown failure"},
		{"unknown strategy", Spec{Failure: "f4", Strategy: "bogus"}, "unknown strategy"},
		{"bad rounds", Spec{Failure: "f4", MaxRounds: -1}, "max_rounds"},
		{"bad window", Spec{Failure: "f4", Window: -2}, "window"},
		{"bad adjust", Spec{Failure: "f4", Adjust: -1}, "adjust"},
		{"bad runs", Spec{Failure: "f4", RunsPerRound: -1}, "runs_per_round"},
		{"bad class", Spec{Failure: "f4", FaultClasses: []string{"cosmic"}}, "fault class"},
		{"bad addressing", Spec{Failure: "f4", Addressing: "telepathy"}, "addressing"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Normalize().Validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, c.wantErr)
			}
		})
	}
}

// Negative bounds must not normalize into valid defaults — only the
// zero value means "default".
func TestSpecNormalizeKeepsExplicitValues(t *testing.T) {
	sp := Spec{Failure: "f4", Seed: 7, MaxRounds: 42, Window: 3}.Normalize()
	if sp.Seed != 7 || sp.MaxRounds != 42 || sp.Window != 3 {
		t.Fatalf("Normalize clobbered explicit values: %+v", sp)
	}
}
