// Package server turns the explorer into a daemon: reproduction as a
// service. Jobs arrive over HTTP as JSON specs, are journaled durably
// before they are acknowledged, execute on a bounded worker pool with
// per-job panic isolation, and checkpoint their search state so that a
// killed or restarted daemon re-admits every unfinished job and resumes
// it — producing the byte-identical trace and report the uninterrupted
// run would have.
//
// The durability chain, bottom to top:
//
//   - internal/checkpoint writes atomic, fsynced, rename-committed
//     envelopes (temp file + fsync + rename + parent-dir fsync).
//   - Each job's record (job.json), search checkpoint (search.ck.json)
//     and final report (report.json) are such envelopes inside the job's
//     own directory <data>/jobs/<key>/.
//   - The trace is a write-ahead journal (trace.jsonl) flushed strictly
//     BEFORE each checkpoint write via core.Options.CheckpointFlush, so
//     on disk the trace is always at or ahead of the checkpoint; crash
//     recovery trims it back to the round the surviving checkpoint names
//     and the resumed search appends the identical suffix.
//
// Jobs are content-addressed: the key is a hash of the normalized spec,
// so identical submissions — same failure, strategy, seed, fault
// classes, addressing and bounds — share one directory, one execution
// and one result, however many clients ask.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"anduril/internal/core"
	"anduril/internal/failures"
)

// Spec is a reproduction request: which failure to reproduce and how to
// search. The zero value of every field means "the default the anduril
// CLI would use", and Normalize makes those defaults explicit so that
// two specs asking for the same search hash to the same job key.
type Spec struct {
	// Failure is the dataset id of the failure to reproduce ("f4").
	// Required; it determines the target system, workload, failure log
	// and oracle.
	Failure string `json:"failure"`

	Strategy string `json:"strategy,omitempty"` // default full-feedback
	Seed     int64  `json:"seed,omitempty"`     // master seed; default 1

	MaxRounds    int `json:"max_rounds,omitempty"`     // round cap; default 500
	Window       int `json:"window,omitempty"`         // initial flexible window k; default 10
	Adjust       int `json:"adjust,omitempty"`         // priority adjustment s; default 1
	RunsPerRound int `json:"runs_per_round,omitempty"` // extra seeds per round; default 1

	// FaultClasses widens the fault space ("site", "env", "pair",
	// "partial"); empty means the failure's own classes.
	FaultClasses []string `json:"fault_classes,omitempty"`

	// Addressing is the instance-addressing mode: "occurrence" (default)
	// or "path".
	Addressing string `json:"addressing,omitempty"`
}

// specKeyPrefix versions the key derivation. Bump it if Normalize or the
// Spec encoding changes meaning, so old job directories are never
// mistaken for the new scheme's.
const specKeyPrefix = "anduril-job-v1\n"

// Normalize returns the spec in canonical form: defaults made explicit,
// fault classes sorted and deduplicated, seed-stream fields untouched.
// Key and the dedupe machinery only ever see normalized specs.
func (sp Spec) Normalize() Spec {
	if sp.Strategy == "" {
		sp.Strategy = string(core.FullFeedback)
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.MaxRounds == 0 {
		sp.MaxRounds = 500
	}
	if sp.Window == 0 {
		sp.Window = 10
	}
	if sp.Adjust == 0 {
		sp.Adjust = 1
	}
	if sp.RunsPerRound == 0 {
		sp.RunsPerRound = 1
	}
	if sp.Addressing == "" {
		sp.Addressing = string(core.AddrOccurrence)
	}
	if len(sp.FaultClasses) > 0 {
		classes := append([]string(nil), sp.FaultClasses...)
		sort.Strings(classes)
		dedup := classes[:1]
		for _, c := range classes[1:] {
			if c != dedup[len(dedup)-1] {
				dedup = append(dedup, c)
			}
		}
		sp.FaultClasses = dedup
	} else {
		sp.FaultClasses = nil
	}
	return sp
}

// Validate checks a normalized spec against the registries and bounds
// the CLI enforces with usage errors. Invalid specs are rejected at
// admission — they never become jobs.
func (sp Spec) Validate() error {
	if sp.Failure == "" {
		return fmt.Errorf("spec: failure id required")
	}
	if _, ok := failures.ByID(sp.Failure); !ok {
		return fmt.Errorf("spec: unknown failure %q", sp.Failure)
	}
	if !core.StrategyRegistered(core.Strategy(sp.Strategy)) {
		return fmt.Errorf("spec: unknown strategy %q", sp.Strategy)
	}
	if sp.MaxRounds <= 0 {
		return fmt.Errorf("spec: max_rounds must be positive (got %d)", sp.MaxRounds)
	}
	if sp.Window <= 0 {
		return fmt.Errorf("spec: window must be positive (got %d)", sp.Window)
	}
	if sp.Adjust <= 0 {
		return fmt.Errorf("spec: adjust must be positive (got %d)", sp.Adjust)
	}
	if sp.RunsPerRound <= 0 {
		return fmt.Errorf("spec: runs_per_round must be positive (got %d)", sp.RunsPerRound)
	}
	for _, c := range sp.FaultClasses {
		if !core.ValidFaultClass(c) {
			return fmt.Errorf("spec: unknown fault class %q", c)
		}
	}
	if !core.ValidAddressing(sp.Addressing) {
		return fmt.Errorf("spec: unknown addressing mode %q", sp.Addressing)
	}
	return nil
}

// Key is the job's content address: a hex SHA-256 over the normalized
// spec's canonical JSON. Two submissions asking for the same search —
// same target, failure log (implied by the failure id), strategy, seed,
// bounds, fault classes and addressing — produce the same key and
// therefore share one job, one execution, and one set of artifacts.
func (sp Spec) Key() string {
	raw, err := json.Marshal(sp.Normalize())
	if err != nil {
		// A Spec is plain data; Marshal cannot fail. Keep the signature
		// clean and make the impossible loud.
		panic(fmt.Sprintf("server: encode spec: %v", err))
	}
	sum := sha256.Sum256(append([]byte(specKeyPrefix), raw...))
	return hex.EncodeToString(sum[:])
}

// Options translates a normalized spec into the exact explorer options
// the anduril CLI would build for the same flags. The server's executor
// and any serial comparator (andurilctl soak, the CI gates) MUST both go
// through this function: report byte-identity across daemon and serial
// runs depends on the option sets matching exactly.
func (sp Spec) Options() core.Options {
	return core.Options{
		Strategy:     core.Strategy(sp.Strategy),
		Seed:         sp.Seed,
		MaxRounds:    sp.MaxRounds,
		Window:       sp.Window,
		Adjust:       sp.Adjust,
		RunsPerRound: sp.RunsPerRound,
		FaultClasses: sp.FaultClasses,
		Addressing:   core.Addressing(sp.Addressing),
	}
}
