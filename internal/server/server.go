package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"anduril/internal/checkpoint"
	"anduril/internal/core"
	"anduril/internal/failures"
	"anduril/internal/parallel"
)

// Config tunes a Server. The zero value of every field means its
// default.
type Config struct {
	// DataDir is the daemon's state directory; the job journal lives in
	// DataDir/jobs. Required.
	DataDir string

	// Workers bounds concurrent job executions; <= 0 means one per CPU.
	Workers int

	// QueueCap bounds jobs in state queued: one more and submissions are
	// shed with an overload error (HTTP 429 + Retry-After) instead of
	// accepted. Jobs re-admitted at startup do not count against the cap
	// — an accepted job is a promise, so a restart may briefly hold more
	// queued jobs than the cap and sheds new work until it drains.
	// Default 256.
	QueueCap int

	// MaxAttempts bounds executions of a job whose attempts die of
	// transient causes (executor panic, journal I/O error) before the
	// job fails terminally. Default 3.
	MaxAttempts int

	// CheckpointEvery is the round interval between search checkpoint
	// writes. Default 5.
	CheckpointEvery int

	// Clock realizes retry backoff delays; tests substitute a virtual
	// clock. Default: the wall clock.
	Clock Clock

	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 5
	}
	if c.Clock == nil {
		c.Clock = realClock{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Admission errors. The HTTP layer maps them onto status codes; embedded
// users match them directly.
var (
	// ErrBadSpec wraps spec validation failures (HTTP 400).
	ErrBadSpec = errors.New("server: invalid job spec")
	// ErrDraining rejects submissions during shutdown (HTTP 503).
	ErrDraining = errors.New("server: draining, not accepting jobs")
)

// OverloadError sheds a submission because the queue is at capacity
// (HTTP 429). RetryAfter is a deterministic estimate of when capacity
// frees up, derived from queue depth — never from the wall clock.
type OverloadError struct {
	Queued     int
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("server: overloaded (%d jobs queued), retry after %s", e.Queued, e.RetryAfter)
}

// Server is the reproduction daemon: a durable job journal, a bounded
// worker pool executing searches with checkpoint/resume, and the
// admission, dedupe and retry machinery around them. Create one with
// Open; serve its HTTP API via Handler; stop it with Shutdown.
type Server struct {
	cfg     Config
	journal *Journal
	pool    *parallel.Pool
	ctx     context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	queued   int // jobs journaled queued, waiting for a worker
	active   int // jobs executing right now
	draining bool
	wals     map[string]*traceWAL // live trace journals by job key

	executions atomic.Int64

	targets struct {
		mu sync.Mutex
		m  map[string]*targetEntry
	}

	// searchFn runs one search attempt; the default resolves the target
	// and calls core.Resume / core.Reproduce. Tests substitute it to
	// exercise the retry and recovery paths without a real search.
	searchFn func(sp Spec, opts core.Options, ckPath string, haveCk bool) (*core.Report, error)
}

// targetEntry builds a core.Target at most once per failure id. Targets
// are read-only during Reproduce, so every concurrent job against the
// same failure shares one instance — BuildTarget (static analysis
// included) is the expensive part of a job, not the search.
type targetEntry struct {
	once sync.Once
	t    *core.Target
	err  error
}

// Open loads the journal under cfg.DataDir, re-admits every unfinished
// job, and starts the worker pool. Jobs found in state running were
// in flight when the previous daemon died; they are demoted to queued
// (durably) and resume from their last checkpoint. Queued and demoted
// jobs enter the pool in key order, so a restarted daemon's schedule is
// deterministic.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("server: DataDir required")
	}
	journal, skipped, err := OpenJournal(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	for _, key := range skipped {
		cfg.Logf("server: skipping unreadable job dir %s (died before first record write)", key)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{cfg: cfg, journal: journal, ctx: ctx, cancel: cancel, wals: map[string]*traceWAL{}}
	s.targets.m = map[string]*targetEntry{}
	s.searchFn = s.runSearch
	s.pool = parallel.NewPool(cfg.Workers, func(r any) {
		cfg.Logf("server: worker panic escaped job isolation: %v", r)
	})
	for _, job := range journal.Jobs() {
		if job.Terminal() {
			continue
		}
		if job.State == StateRunning {
			if _, err := journal.Update(job.Key, func(j *Job) { j.State = StateQueued }); err != nil {
				s.pool.Shutdown()
				cancel()
				return nil, err
			}
		}
		s.enqueue(job.Key)
		cfg.Logf("server: re-admitted job %s (%s)", job.Key[:12], job.Spec.Failure)
	}
	return s, nil
}

// enqueue registers a queued job with the pool.
func (s *Server) enqueue(key string) {
	s.mu.Lock()
	s.queued++
	s.mu.Unlock()
	s.pool.Submit(func() { s.runJob(key) })
}

// Submit admits one job. Returns the job record, whether the submission
// deduplicated onto an existing job (of any state — resubmitting a
// finished spec returns its cached result), and the admission error if
// the job was rejected: ErrBadSpec, ErrDraining, or *OverloadError.
// On (job, false, nil) the job is journaled durably — it will execute
// even if the daemon is killed right after.
//
// Admission holds the server lock across the dedupe check and the
// journal write: two racing first submissions of one spec must resolve
// into one job and one deduplicated hit, never two executions.
func (s *Server) Submit(spec Spec) (Job, bool, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return Job{}, false, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	key := spec.Key()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return Job{}, false, ErrDraining
	}
	if existing, ok := s.journal.Get(key); ok {
		job, err := s.journal.Update(key, func(j *Job) { j.Submissions++ })
		if err != nil {
			return existing, true, err
		}
		return job, true, nil
	}
	if s.queued >= s.cfg.QueueCap {
		return Job{}, false, &OverloadError{Queued: s.queued, RetryAfter: s.retryAfterLocked()}
	}
	job := Job{Key: key, Spec: spec, State: StateQueued, Submissions: 1}
	if err := s.journal.Put(job); err != nil {
		return Job{}, false, err
	}
	s.queued++
	s.pool.Submit(func() { s.runJob(key) })
	return job, false, nil
}

// retryAfterLocked estimates (deterministically, from queue depth alone)
// how long a shed client should wait before retrying.
func (s *Server) retryAfterLocked() time.Duration {
	workers := parallel.Workers(s.cfg.Workers)
	secs := 1 + s.queued/(workers*4)
	if secs > 30 {
		secs = 30
	}
	return time.Duration(secs) * time.Second
}

// Job returns a copy of a job record.
func (s *Server) Job(key string) (Job, bool) { return s.journal.Get(key) }

// ReportJSON returns a finished job's report as the exact JSON bytes
// core.Reproduce produced (the envelope payload is the raw Marshal of
// the report, so these bytes are comparable verbatim against a serial
// run's json.Marshal output).
func (s *Server) ReportJSON(key string) ([]byte, error) {
	return checkpoint.Load(filepath.Join(s.journal.Dir(key), reportFile), reportKind, reportVersion)
}

// CanonicalReportJSON returns the stored report normalized by
// core.CanonicalReport: wall-clock fields zeroed, everything
// seed-determined kept. This is the byte-comparison currency of the
// soak and crash gates — a daemon run (resumed, retried, restarted or
// not) must produce canonical bytes identical to a serial run's.
func (s *Server) CanonicalReportJSON(key string) ([]byte, error) {
	raw, err := s.ReportJSON(key)
	if err != nil {
		return nil, err
	}
	rep := &core.Report{}
	if err := json.Unmarshal(raw, rep); err != nil {
		return nil, fmt.Errorf("server: decode report %s: %w", key, err)
	}
	return core.CanonicalReport(rep)
}

// TraceJSONL returns the job's trace journal as stored on disk plus any
// buffered lines if the job is live.
func (s *Server) TraceJSONL(key string) ([]byte, error) {
	if wal, ok := s.liveWAL(key); ok {
		if snap, err := wal.Snapshot(); err == nil {
			return snap, nil
		}
		// The WAL closed between lookup and snapshot; fall through to
		// the durable file.
	}
	return os.ReadFile(filepath.Join(s.journal.Dir(key), traceFile))
}

// Jobs returns every job record, sorted by key.
func (s *Server) Jobs() []Job { return s.journal.Jobs() }

// Executions reports how many search executions the server has started —
// the dedupe tests' observable: N identical submissions move it by one.
func (s *Server) Executions() int64 { return s.executions.Load() }

// Ready reports whether the server is accepting submissions.
func (s *Server) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining
}

// WaitIdle blocks until no job is queued or executing, or ctx ends.
func (s *Server) WaitIdle(ctx context.Context) error {
	for {
		s.mu.Lock()
		idle := s.queued == 0 && s.active == 0
		s.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Shutdown drains the daemon: submissions are rejected, every running
// search is interrupted through context cancellation — the engine's
// last act is a forced checkpoint at the exact interrupted round — and
// Shutdown returns once in-flight jobs have persisted their state.
// Queued jobs stay journaled; the next Open re-admits them alongside
// the interrupted ones.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	s.mu.Unlock()
	s.cancel()
	s.pool.Shutdown()
}

// runJob executes one job to a terminal state, a graceful interrupt, or
// retry exhaustion. It is the only writer of the job's state while the
// job runs.
func (s *Server) runJob(key string) {
	s.mu.Lock()
	s.queued--
	s.active++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.active--
		s.mu.Unlock()
	}()

	job, ok := s.journal.Get(key)
	if !ok {
		s.cfg.Logf("server: job %s vanished from journal", key)
		return
	}
	if _, err := s.journal.Update(key, func(j *Job) { j.State = StateRunning }); err != nil {
		s.cfg.Logf("server: job %s: %v", key, err)
		return
	}

	for {
		rep, execErr := s.executeOnce(key, job.Spec)
		switch {
		case execErr == nil && rep.Interrupted:
			// Graceful drain: the engine just forced a checkpoint at the
			// interrupted round. State stays running in the journal; the
			// next Open demotes it to queued and resumes.
			return

		case execErr == nil && rep.Error != "":
			// Deterministic failure: the free run itself fails, so the
			// identical re-execution would too. Fail fast with the
			// diagnosis; no retries.
			s.finish(key, func(j *Job) { j.State = StateFailed; j.Error = rep.Error })
			return

		case execErr == nil:
			s.finish(key, func(j *Job) {
				j.State = StateDone
				j.Error = ""
				j.Reproduced, j.Rounds = rep.Reproduced, rep.Rounds
			})
			return
		}

		// Transient failure: executor panic or journal I/O error.
		// Deterministic seeded backoff, then another attempt — which
		// resumes from whatever checkpoint the dead attempt left.
		var attempt int
		updated, err := s.journal.Update(key, func(j *Job) {
			j.Attempts++
			attempt = j.Attempts
			j.Error = execErr.Error()
			if attempt < s.cfg.MaxAttempts {
				d := Backoff(j.Spec.Seed, key, attempt)
				j.RetryBackoffsMS = append(j.RetryBackoffsMS, d.Milliseconds())
			}
		})
		if err != nil {
			s.cfg.Logf("server: job %s: %v", key, err)
			return
		}
		if attempt >= s.cfg.MaxAttempts {
			s.finish(key, func(j *Job) { j.State = StateFailed })
			return
		}
		s.cfg.Logf("server: job %s attempt %d failed (%v), retrying", key[:12], attempt, execErr)
		s.cfg.Clock.Sleep(s.ctx, Backoff(updated.Spec.Seed, key, attempt))
		if s.ctx.Err() != nil {
			return // draining; state stays running for re-admission
		}
	}
}

// finish journals a terminal transition.
func (s *Server) finish(key string, f func(*Job)) {
	if _, err := s.journal.Update(key, f); err != nil {
		s.cfg.Logf("server: job %s: %v", key, err)
	}
}

// executeOnce runs one search attempt inside the job's panic isolation
// boundary: recover the trace journal against the surviving checkpoint,
// resume (or start) the search, and on completion commit trace then
// report. Any panic surfaces as an error — one poisoned job cannot take
// down the daemon.
func (s *Server) executeOnce(key string, spec Spec) (rep *core.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, fmt.Errorf("server: job panic: %v", r)
		}
	}()

	dir := s.journal.Dir(key)
	ckPath := filepath.Join(dir, ckFile)
	ckRound, haveCk := core.CheckpointRound(ckPath)
	wal, err := openWAL(filepath.Join(dir, traceFile), ckRound, haveCk)
	if err != nil {
		return nil, err
	}
	s.setWAL(key, wal)
	defer func() {
		s.setWAL(key, nil)
		wal.Close()
	}()

	s.executions.Add(1)
	opts := spec.Options()
	opts.Context = s.ctx
	opts.Checkpoint = ckPath
	opts.CheckpointEvery = s.cfg.CheckpointEvery
	opts.Trace = wal
	opts.CheckpointFlush = wal.Flush

	rep, err = s.searchFn(spec, opts, ckPath, haveCk)
	if err != nil && haveCk {
		// The checkpoint exists but Resume rejected it (version skew, a
		// changed dataset...). It cannot be resumed by anyone; start the
		// search over from nothing.
		s.cfg.Logf("server: job %s: discarding unusable checkpoint: %v", key[:12], err)
		if rmErr := os.Remove(ckPath); rmErr != nil {
			return nil, rmErr
		}
		if rsErr := wal.Reset(); rsErr != nil {
			return nil, rsErr
		}
		rep, err = s.searchFn(spec, opts, ckPath, false)
	}
	if err != nil {
		return nil, err
	}
	if rep.Interrupted || rep.Error != "" {
		return rep, nil
	}
	// Commit order matters: trace (with its outcome line) first, then the
	// report. A kill between the two re-runs nothing — the next attempt's
	// recovery trims the outcome off and the resumed search replays only
	// the final rounds after the last checkpoint.
	if err := wal.FlushAll(); err != nil {
		return nil, err
	}
	if err := checkpoint.Save(filepath.Join(dir, reportFile), reportKind, reportVersion, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// runSearch is the production searchFn: resolve the (cached) target and
// run or resume the explorer.
func (s *Server) runSearch(sp Spec, opts core.Options, ckPath string, haveCk bool) (*core.Report, error) {
	t, err := s.target(sp.Failure)
	if err != nil {
		return nil, err
	}
	if haveCk {
		return core.Resume(t, opts, ckPath)
	}
	return core.Reproduce(t, opts), nil
}

// target builds (at most once) and returns the shared read-only Target
// for a failure id.
func (s *Server) target(id string) (*core.Target, error) {
	s.targets.mu.Lock()
	e, ok := s.targets.m[id]
	if !ok {
		e = &targetEntry{}
		s.targets.m[id] = e
	}
	s.targets.mu.Unlock()
	e.once.Do(func() {
		sc, ok := failures.ByID(id)
		if !ok {
			e.err = fmt.Errorf("server: unknown failure %q", id)
			return
		}
		e.t, e.err = sc.BuildTarget()
	})
	return e.t, e.err
}

// setWAL publishes (wal != nil) or retires the live trace journal for a
// job, for the trace-streaming endpoint.
func (s *Server) setWAL(key string, wal *traceWAL) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if wal == nil {
		delete(s.wals, key)
	} else {
		s.wals[key] = wal
	}
}

// liveWAL returns the job's live trace journal, if it is executing.
func (s *Server) liveWAL(key string) (*traceWAL, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wal, ok := s.wals[key]
	return wal, ok
}
