package server

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestBackoffIsPure(t *testing.T) {
	for attempt := 1; attempt <= 8; attempt++ {
		a := Backoff(42, "jobkey", attempt)
		b := Backoff(42, "jobkey", attempt)
		if a != b {
			t.Fatalf("Backoff(42, jobkey, %d) differed across calls: %s vs %s", attempt, a, b)
		}
	}
}

func TestBackoffBoundsAndGrowth(t *testing.T) {
	prevBase := time.Duration(0)
	for attempt := 1; attempt <= 12; attempt++ {
		d := Backoff(7, "k", attempt)
		base := backoffBase << uint(attempt-1)
		if base <= 0 || base > backoffCap {
			base = backoffCap
		}
		if d < base/2 || d > base {
			t.Fatalf("attempt %d: delay %s outside [%s, %s]", attempt, d, base/2, base)
		}
		if base < prevBase {
			t.Fatalf("attempt %d: base shrank", attempt)
		}
		prevBase = base
	}
	if d := Backoff(7, "k", 100); d > backoffCap {
		t.Fatalf("attempt 100: delay %s above cap %s", d, backoffCap)
	}
}

// Different jobs (key or seed) must jitter apart even on the same
// attempt number — synchronized retry herds are what the jitter is for.
func TestBackoffJittersAcrossJobs(t *testing.T) {
	seen := map[time.Duration]bool{}
	for _, key := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		seen[Backoff(1, key, 3)] = true
	}
	if len(seen) < 4 {
		t.Fatalf("8 distinct keys produced only %d distinct delays", len(seen))
	}
	if Backoff(1, "same", 2) == Backoff(2, "same", 2) && Backoff(1, "same", 3) == Backoff(2, "same", 3) {
		t.Fatal("seed does not influence the jitter stream")
	}
}

// virtualClock records the schedule instead of sleeping: retry tests run
// instantly and assert the exact sequence of delays.
type virtualClock struct {
	mu     sync.Mutex
	sleeps []time.Duration
}

func (c *virtualClock) Sleep(ctx context.Context, d time.Duration) {
	c.mu.Lock()
	c.sleeps = append(c.sleeps, d)
	c.mu.Unlock()
}

func (c *virtualClock) schedule() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}
