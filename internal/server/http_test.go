package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"anduril/internal/core"
	"anduril/internal/trace"
)

func postSpec(t *testing.T, url string, spec Spec) (*http.Response, submitResponse) {
	t.Helper()
	raw, _ := json.Marshal(spec)
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, sr
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func TestHTTPSubmitRunReport(t *testing.T) {
	s := newServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := Spec{Failure: "f4", Seed: 11}
	resp, sr := postSpec(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted || sr.Deduped {
		t.Fatalf("first POST = %d (deduped=%v), want 202", resp.StatusCode, sr.Deduped)
	}
	key := sr.Job.Key
	if key != spec.Key() {
		t.Fatalf("server derived key %s, client derives %s", key, spec.Key())
	}
	resp, sr = postSpec(t, ts.URL, spec)
	if resp.StatusCode != http.StatusOK || !sr.Deduped {
		t.Fatalf("repeat POST = %d (deduped=%v), want 200 deduped", resp.StatusCode, sr.Deduped)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		code, raw := getBody(t, ts.URL+"/jobs/"+key)
		if code != http.StatusOK {
			t.Fatalf("GET job = %d: %s", code, raw)
		}
		var job Job
		if err := json.Unmarshal(raw, &job); err != nil {
			t.Fatal(err)
		}
		if job.State == StateDone {
			break
		}
		if job.State == StateFailed || time.Now().After(deadline) {
			t.Fatalf("job never completed: %+v", job)
		}
		time.Sleep(2 * time.Millisecond)
	}

	wantRep, wantTrace := serialRun(t, spec)
	code, gotCanon := getBody(t, ts.URL+"/jobs/"+key+"/report?canonical=1")
	if code != http.StatusOK || !bytes.Equal(gotCanon, canonical(t, wantRep)) {
		t.Fatalf("canonical report over HTTP (%d) diverged from serial run", code)
	}
	code, gotFull := getBody(t, ts.URL+"/jobs/"+key+"/report")
	if code != http.StatusOK {
		t.Fatalf("GET report = %d", code)
	}
	rep := &core.Report{}
	if err := json.Unmarshal(gotFull, rep); err != nil || rep.Rounds != wantRep.Rounds {
		t.Fatalf("full report failed to decode (err %v) or disagrees on rounds", err)
	}
	code, gotTrace := getBody(t, ts.URL+"/jobs/"+key+"/trace")
	if code != http.StatusOK || !bytes.Equal(gotTrace, wantTrace) {
		t.Fatalf("trace over HTTP (%d) diverged from serial run", code)
	}
	// follow on a finished job degrades to the stored bytes.
	code, gotTrace = getBody(t, ts.URL+"/jobs/"+key+"/trace?follow=1")
	if code != http.StatusOK || !bytes.Equal(gotTrace, wantTrace) {
		t.Fatalf("followed trace of finished job (%d) diverged", code)
	}

	code, raw := getBody(t, ts.URL+"/jobs")
	var jobs []Job
	if code != http.StatusOK || json.Unmarshal(raw, &jobs) != nil || len(jobs) != 1 {
		t.Fatalf("GET /jobs = %d %s", code, raw)
	}
}

func TestHTTPErrorStatuses(t *testing.T) {
	s := newServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, _ := postSpec(t, ts.URL, Spec{Failure: "f999"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown failure POST = %d, want 400", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"failure":"f4","bogus_field":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-field POST = %d, want 400", resp.StatusCode)
	}
	if code, _ := getBody(t, ts.URL+"/jobs/nope"); code != http.StatusNotFound {
		t.Fatalf("GET unknown job = %d, want 404", code)
	}
	if code, _ := getBody(t, ts.URL+"/jobs/nope/report"); code != http.StatusNotFound {
		t.Fatalf("GET unknown report = %d, want 404", code)
	}
	if code, _ := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", code)
	}
	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", code)
	}
	s.Shutdown()
	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", code)
	}
	if resp, _ := postSpec(t, ts.URL, Spec{Failure: "f4"}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining = %d, want 503", resp.StatusCode)
	}
}

// Overload surfaces as 429 with a Retry-After the client can obey.
func TestHTTPOverloadRetryAfter(t *testing.T) {
	s := newServer(t, Config{Workers: 1, QueueCap: 1})
	release := make(chan struct{})
	s.searchFn = func(sp Spec, opts core.Options, ckPath string, haveCk bool) (*core.Report, error) {
		select {
		case <-release:
		case <-opts.Context.Done():
		}
		return &core.Report{Interrupted: true}, nil
	}
	defer close(release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postSpec(t, ts.URL, Spec{Failure: "f4", Seed: 1})
	deadline := time.Now().Add(30 * time.Second)
	for s.Executions() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	postSpec(t, ts.URL, Spec{Failure: "f4", Seed: 2})
	resp, _ := postSpec(t, ts.URL, Spec{Failure: "f4", Seed: 3})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity POST = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" || resp.Header.Get("Retry-After") == "0" {
		t.Fatalf("429 without usable Retry-After header (%q)", resp.Header.Get("Retry-After"))
	}
}

// A live follower streams the snapshot plus each event as the search
// emits it — no gaps, no duplicates — and the stream ends when the job
// finishes.
func TestHTTPTraceFollowStreamsLive(t *testing.T) {
	s := newServer(t, Config{Workers: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	ev1 := trace.Event{Type: trace.FreeRun, Target: "f4", Strategy: "full-feedback", Seed: 1}
	ev2 := trace.Event{Type: trace.RoundStart, Round: 1, Window: 10}
	ev3 := trace.Event{Type: trace.Outcome, Reproduced: true, Rounds: 1, Reason: trace.ReasonReproduced}
	s.searchFn = func(sp Spec, opts core.Options, ckPath string, haveCk bool) (*core.Report, error) {
		opts.Trace.Emit(&ev1)
		close(started)
		<-release
		opts.Trace.Emit(&ev2)
		opts.Trace.Emit(&ev3)
		return &core.Report{Target: sp.Failure, Reproduced: true, Rounds: 1}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, sr := postSpec(t, ts.URL, Spec{Failure: "f4"})
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("job never started")
	}
	resp, err := http.Get(ts.URL + "/jobs/" + sr.Job.Key + "/trace?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	reader := bufio.NewReader(resp.Body)
	readLine := func() string {
		type result struct {
			line string
			err  error
		}
		ch := make(chan result, 1)
		go func() {
			line, err := reader.ReadString('\n')
			ch <- result{line, err}
		}()
		select {
		case r := <-ch:
			if r.err != nil && r.line == "" {
				return fmt.Sprintf("<err: %v>", r.err)
			}
			return r.line
		case <-time.After(30 * time.Second):
			t.Fatal("follow stream stalled")
			return ""
		}
	}
	if got, want := readLine(), string(encodeLine(ev1)); got != want {
		t.Fatalf("snapshot line = %q, want %q", got, want)
	}
	close(release)
	if got, want := readLine(), string(encodeLine(ev2)); got != want {
		t.Fatalf("live line = %q, want %q", got, want)
	}
	if got, want := readLine(), string(encodeLine(ev3)); got != want {
		t.Fatalf("outcome line = %q, want %q", got, want)
	}
	// Job finished; the WAL closes and so must the stream.
	if rest, err := io.ReadAll(reader); err != nil || len(rest) != 0 {
		t.Fatalf("stream did not end cleanly after the outcome: %q, %v", rest, err)
	}
}
