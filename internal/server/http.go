package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// HTTP API. Everything is JSON (traces are JSONL); keys are the
// content-addressed job keys Submit derives.
//
//	POST /jobs              submit a spec → 202 (accepted) or 200 (deduped)
//	                        429 + Retry-After when the queue is full,
//	                        400 invalid spec, 503 draining
//	GET  /jobs              all job records, sorted by key
//	GET  /jobs/{key}        one job record
//	GET  /jobs/{key}/report final report; ?canonical=1 for the
//	                        wall-clock-normalized comparison form
//	GET  /jobs/{key}/trace  trace JSONL; ?follow=1 streams live events
//	                        until the job finishes
//	GET  /healthz           liveness: 200 once the journal is open
//	GET  /readyz            readiness: 200 accepting, 503 draining
type submitResponse struct {
	Job     Job  `json:"job"`
	Deduped bool `json:"deduped"`
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{key}", s.handleJob)
	mux.HandleFunc("GET /jobs/{key}/report", s.handleReport)
	mux.HandleFunc("GET /jobs/{key}/trace", s.handleTrace)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode spec: %w", err))
		return
	}
	job, deduped, err := s.Submit(spec)
	var overload *OverloadError
	switch {
	case errors.As(err, &overload):
		w.Header().Set("Retry-After", strconv.Itoa(int(overload.RetryAfter.Seconds())))
		httpError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrBadSpec):
		httpError(w, http.StatusBadRequest, err)
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		httpError(w, http.StatusInternalServerError, err)
	case deduped:
		writeJSON(w, http.StatusOK, submitResponse{Job: job, Deduped: true})
	default:
		writeJSON(w, http.StatusAccepted, submitResponse{Job: job})
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("key"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job"))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	job, ok := s.Job(key)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job"))
		return
	}
	if job.State != StateDone {
		httpError(w, http.StatusConflict, fmt.Errorf("job is %s; a report exists only for done jobs", job.State))
		return
	}
	var raw []byte
	var err error
	if r.URL.Query().Get("canonical") != "" {
		raw, err = s.CanonicalReportJSON(key)
	} else {
		raw, err = s.ReportJSON(key)
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(raw)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	job, ok := s.Job(key)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job"))
		return
	}
	follow := r.URL.Query().Get("follow") != ""
	w.Header().Set("Content-Type", "application/x-ndjson")

	if follow && !job.Terminal() {
		if wal, live := s.liveWAL(key); live {
			if s.followTrace(w, r, wal) {
				return
			}
			// Subscription failed (the job just finished); fall back to
			// the stored trace.
		}
	}
	raw, err := s.TraceJSONL(key)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Write(raw)
}

// followTrace streams a live job's trace: the snapshot so far, then
// every event as it is emitted, until the job finishes or the client
// leaves. Reports whether the subscription was established.
func (s *Server) followTrace(w http.ResponseWriter, r *http.Request, wal *traceWAL) bool {
	snapshot, lines, cancel, err := wal.Subscribe()
	if err != nil {
		return false
	}
	defer cancel()
	w.WriteHeader(http.StatusOK)
	w.Write(snapshot)
	flush(w)
	for {
		select {
		case <-r.Context().Done():
			return true
		case line, ok := <-lines:
			if !ok {
				return true // job finished (or this follower stalled out)
			}
			w.Write(line)
			flush(w)
		}
	}
}

func flush(w http.ResponseWriter) {
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
