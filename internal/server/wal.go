package server

import (
	"bytes"
	"fmt"
	"os"
	"sync"

	"anduril/internal/trace"
)

// traceWAL is the job's trace as a write-ahead journal. It is the
// server's implementation of trace.Sink, and it solves the one ordering
// problem crash-safe resume leaves open: the engine's trace events and
// its checkpoint are two separate artifacts, and a kill between their
// writes must never leave the checkpoint AHEAD of the trace (the resumed
// search would then skip rounds the file never recorded, leaving a hole
// no recovery can fill).
//
// The discipline, in lockstep with the engine:
//
//   - Emit buffers encoded lines in memory, tagged with their round.
//     Nothing is written to disk between checkpoints.
//   - Flush(n) — wired as core.Options.CheckpointFlush, which fires
//     strictly BEFORE each checkpoint write — appends and fsyncs exactly
//     the buffered lines of rounds ≤ n. Events of a later, uncommitted
//     round stay in memory; if the process dies or the search is
//     interrupted they are simply lost, and the resumed run re-emits
//     them identically.
//   - After a kill, the file is therefore always at or ahead of the
//     surviving checkpoint. openWAL trims it back: whole well-formed
//     lines up to the checkpoint's round are kept, everything after —
//     later rounds, an outcome, a torn tail from a mid-append kill — is
//     truncated. The resumed search appends the byte-identical suffix,
//     so at ANY kill point trace.jsonl concatenates to the
//     uninterrupted run's trace.
//   - FlushAll, called only when the search completes, commits the
//     remainder including the outcome line.
//
// The WAL is also the live feed: subscribers get a point-in-time
// snapshot (durable + buffered bytes) plus a channel of every subsequent
// line, under one lock, so a follower sees each event exactly once and
// in order. A follower's view is the engine's, not the disk's — it may
// include buffered events of an uncommitted round that a crash would
// discard.
type traceWAL struct {
	path string

	mu      sync.Mutex
	f       *os.File
	buf     []walEntry
	bufSize int
	subs    map[int]chan []byte
	nextSub int
	closed  bool
}

// walEntry is one buffered line and the round it belongs to (0 for
// pre-search events like free_run, flushed with the first commit).
type walEntry struct {
	round int
	line  []byte
}

// subBuffer is the per-subscriber channel depth. A follower that stalls
// past it is dropped (its channel closed) rather than allowed to block
// the search's hot path.
const subBuffer = 4096

// openWAL opens (creating if needed) the trace journal at path and
// recovers it to match the search checkpoint: with no usable checkpoint
// the search will start fresh, so the file is truncated to empty;
// otherwise every complete, well-formed, non-outcome line of rounds ≤
// ckRound is kept and the rest cut.
func openWAL(path string, ckRound int, haveCk bool) (*traceWAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: open trace journal: %w", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("server: read trace journal: %w", err)
	}
	keep := 0
	if haveCk {
		keep = recoverPrefix(raw, ckRound)
	}
	if keep != len(raw) {
		if err := f.Truncate(int64(keep)); err != nil {
			f.Close()
			return nil, fmt.Errorf("server: trim trace journal: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("server: trim trace journal: %w", err)
		}
	}
	if _, err := f.Seek(int64(keep), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("server: seek trace journal: %w", err)
	}
	return &traceWAL{path: path, f: f, subs: map[int]chan []byte{}}, nil
}

// recoverPrefix returns the byte length of the journal prefix that is
// consistent with a checkpoint at ckRound: complete lines only, rounds
// ≤ ckRound, no outcome (an outcome means the trace ran to completion
// but the job record didn't — replay re-derives it).
func recoverPrefix(raw []byte, ckRound int) int {
	keep := 0
	for off := 0; off < len(raw); {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			break // torn tail from a mid-append kill
		}
		line := raw[off : off+nl]
		typ, round, ok := trace.LineMeta(line)
		if !ok || typ == trace.Outcome || round > ckRound {
			break
		}
		off += nl + 1
		keep = off
	}
	return keep
}

// Emit implements trace.Sink: encode, buffer, fan out to followers.
func (w *traceWAL) Emit(ev *trace.Event) {
	line := append(trace.AppendEvent(nil, ev), '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = append(w.buf, walEntry{round: ev.Round, line: line})
	w.bufSize += len(line)
	for id, ch := range w.subs {
		select {
		case ch <- line:
		default: // stalled follower: drop it, never block the search
			close(ch)
			delete(w.subs, id)
		}
	}
}

// Flush commits buffered lines of rounds ≤ round to disk (append +
// fsync). It is the core.Options.CheckpointFlush hook; an error is
// deliberately not surfaced to the engine — the next Flush retries the
// same prefix, and executeOnce checks the final FlushAll.
func (w *traceWAL) Flush(round int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for n < len(w.buf) && w.buf[n].round <= round {
		n++
	}
	w.commitLocked(n)
}

// FlushAll commits every buffered line — the search is complete and the
// outcome must reach disk before the report is published.
func (w *traceWAL) FlushAll() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.commitLocked(len(w.buf))
}

// commitLocked writes the first n buffered entries and drops them from
// the buffer on success.
func (w *traceWAL) commitLocked(n int) error {
	if n == 0 {
		return nil
	}
	out := make([]byte, 0, 1<<12)
	for _, e := range w.buf[:n] {
		out = append(out, e.line...)
	}
	if _, err := w.f.Write(out); err != nil {
		return fmt.Errorf("server: append trace journal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("server: sync trace journal: %w", err)
	}
	w.buf = append([]walEntry{}, w.buf[n:]...)
	w.bufSize = 0
	for _, e := range w.buf {
		w.bufSize += len(e.line)
	}
	return nil
}

// Reset discards the journal entirely — buffered and durable — for a
// fresh search after a rejected resume.
func (w *traceWAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf, w.bufSize = nil, 0
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("server: reset trace journal: %w", err)
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return fmt.Errorf("server: reset trace journal: %w", err)
	}
	return w.f.Sync()
}

// Snapshot returns the full trace so far: durable bytes plus the
// in-memory buffer.
func (w *traceWAL) Snapshot() ([]byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.snapshotLocked()
}

func (w *traceWAL) snapshotLocked() ([]byte, error) {
	durable, err := os.ReadFile(w.path)
	if err != nil {
		return nil, fmt.Errorf("server: read trace journal: %w", err)
	}
	out := make([]byte, len(durable), len(durable)+w.bufSize)
	copy(out, durable)
	for _, e := range w.buf {
		out = append(out, e.line...)
	}
	return out, nil
}

// Subscribe returns a point-in-time snapshot and a channel carrying
// every line emitted after it, in order with no gap or overlap. cancel
// detaches the follower; the channel is closed when the WAL closes (job
// finished) or the follower stalls past subBuffer lines.
func (w *traceWAL) Subscribe() (snapshot []byte, lines <-chan []byte, cancel func(), err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, nil, nil, fmt.Errorf("server: trace journal closed")
	}
	snapshot, err = w.snapshotLocked()
	if err != nil {
		return nil, nil, nil, err
	}
	ch := make(chan []byte, subBuffer)
	id := w.nextSub
	w.nextSub++
	w.subs[id] = ch
	cancel = func() {
		w.mu.Lock()
		defer w.mu.Unlock()
		if live, ok := w.subs[id]; ok {
			close(live)
			delete(w.subs, id)
		}
	}
	return snapshot, ch, cancel, nil
}

// Close releases the file and ends every follower's stream. Buffered
// lines of an uncommitted round are deliberately dropped — on an
// interrupt they belong to a round the checkpoint never admitted, and
// the resumed run re-emits them.
func (w *traceWAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	for id, ch := range w.subs {
		close(ch)
		delete(w.subs, id)
	}
	return w.f.Close()
}
