package server

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, skipped, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("fresh journal skipped %v", skipped)
	}

	spec := Spec{Failure: "f4"}.Normalize()
	job := Job{Key: spec.Key(), Spec: spec, State: StateQueued, Submissions: 1}
	if err := j.Put(job); err != nil {
		t.Fatal(err)
	}
	updated, err := j.Update(job.Key, func(jb *Job) { jb.State = StateRunning; jb.Attempts = 2 })
	if err != nil {
		t.Fatal(err)
	}
	if updated.State != StateRunning || updated.Attempts != 2 {
		t.Fatalf("Update returned %+v", updated)
	}

	// A reopened journal sees exactly the persisted state.
	j2, skipped, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("reopen skipped %v", skipped)
	}
	got, ok := j2.Get(job.Key)
	if !ok {
		t.Fatal("job lost across reopen")
	}
	if got.State != StateRunning || got.Attempts != 2 || !reflect.DeepEqual(got.Spec, spec) {
		t.Fatalf("reopened job = %+v", got)
	}
}

// A directory without a readable record is the footprint of a death
// between MkdirAll and the first record write — before the submission
// was acknowledged. Reopen must skip it, not fail the whole journal.
func TestJournalSkipsRecordlessDirs(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Failure: "f1"}.Normalize()
	if err := j.Put(Job{Key: spec.Key(), Spec: spec, State: StateQueued, Submissions: 1}); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn submission next to the good one.
	if err := os.MkdirAll(filepath.Join(dir, "jobs", "deadbeef"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "jobs", "deadbeef", jobFile), []byte(`{"kind":"serv`), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, skipped, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 || skipped[0] != "deadbeef" {
		t.Fatalf("skipped = %v, want [deadbeef]", skipped)
	}
	if got := j2.Jobs(); len(got) != 1 || got[0].Key != spec.Key() {
		t.Fatalf("journal holds %+v, want the one good job", got)
	}
}

func TestJournalUpdateUnknownJob(t *testing.T) {
	j, _, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Update("nope", func(*Job) {}); err == nil {
		t.Fatal("Update of unknown job succeeded")
	}
}
