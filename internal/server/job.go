package server

// Job lifecycle. A job moves through a small state machine, and every
// transition is journaled durably (job.json is an atomic checkpoint
// envelope) BEFORE it takes effect in memory, so a kill at any instant
// leaves a record the next daemon start can act on:
//
//	queued  ──start──▶ running ──success──▶ done
//	  ▲                  │ │
//	  │   restart        │ └─deterministic failure───▶ failed
//	  └──(re-admit)──────┘ └─transient failure ×N──▶ failed
//
//   - queued: journaled and waiting for a worker. Restart re-admits it.
//   - running: a worker is executing the search (or was, when the
//     daemon died — restart demotes running back to queued and the
//     search resumes from its last checkpoint).
//   - done: the search finished; report.json holds the final report,
//     trace.jsonl the complete trace. Terminal.
//   - failed: the search could not produce a report — a deterministic
//     failure (the free run itself fails, so retrying cannot help) or
//     a transient one (executor panic, journal I/O error) that survived
//     MaxAttempts retries. Terminal; Error says why.
//
// A graceful drain interrupts running jobs; they keep state "running"
// in the journal (their final checkpoint was just forced by the engine)
// and the next start re-admits and resumes them.

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Job is the journaled record of one reproduction job. The artifacts —
// search checkpoint, trace, report — live next to it in the job
// directory; the record itself carries only identity, lifecycle and
// result summary.
type Job struct {
	// Key is the content address of Spec; it names the job directory.
	Key string `json:"key"`

	// Spec is the normalized reproduction request.
	Spec Spec `json:"spec"`

	State string `json:"state"`

	// Submissions counts how many times this spec was submitted; all
	// submissions past the first deduplicated onto the existing job.
	Submissions int `json:"submissions"`

	// Attempts counts execution attempts that ended in a transient
	// failure. RetryBackoffsMS records the deterministic virtual-time
	// delay (milliseconds) scheduled before each retry — a pure function
	// of (seed, key, attempt), so two daemon runs over the same job set
	// journal identical schedules.
	Attempts        int     `json:"attempts,omitempty"`
	RetryBackoffsMS []int64 `json:"retry_backoffs_ms,omitempty"`

	// Error describes the latest failure (transient or terminal).
	Error string `json:"error,omitempty"`

	// Result summary, set when State is done. The full report is in
	// report.json.
	Reproduced bool `json:"reproduced,omitempty"`
	Rounds     int  `json:"rounds,omitempty"`
}

// Terminal reports whether the job has reached a final state.
func (j *Job) Terminal() bool {
	return j.State == StateDone || j.State == StateFailed
}
