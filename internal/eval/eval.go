// Package eval regenerates every table and figure of the paper's
// evaluation (§8 and the appendix) against the Go reproduction. Each
// TableN/FigureN function runs the corresponding experiment and returns a
// formatted table; cmd/tables and the repository-level benchmarks are thin
// wrappers around these.
package eval

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"anduril/internal/core"
	"anduril/internal/failures"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Options tune the evaluation runs.
type Options struct {
	Seed      int64
	MaxRounds int // cap standing in for the paper's 24-hour limit
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 500
	}
	return o
}

// systems lists the five target systems in Table 1 order.
var systems = []string{"zk", "dfs", "tablestore", "mq", "kvstore"}

// systemLabel maps internal names to the analog of the paper's systems.
var systemLabel = map[string]string{
	"zk":         "zk (ZooKeeper analog)",
	"dfs":        "dfs (HDFS analog)",
	"tablestore": "tablestore (HBase analog)",
	"mq":         "mq (Kafka analog)",
	"kvstore":    "kvstore (Cassandra analog)",
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	case d >= time.Microsecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}

var (
	targetMu    sync.Mutex
	targetCache map[string]*core.Target
)

// buildTargets assembles explorer targets for every scenario, caching them
// across tables (failure logs and analyses are deterministic).
func buildTargets() (map[string]*core.Target, error) {
	targetMu.Lock()
	defer targetMu.Unlock()
	if targetCache != nil {
		return targetCache, nil
	}
	out := make(map[string]*core.Target)
	for _, s := range failures.All() {
		tgt, err := s.BuildTarget()
		if err != nil {
			return nil, fmt.Errorf("build target %s: %w", s.ID, err)
		}
		out[s.ID] = tgt
	}
	targetCache = out
	return out, nil
}

func medianInt(vals []int) int {
	if len(vals) == 0 {
		return 0
	}
	sortInts(vals)
	return vals[len(vals)/2]
}

func medianDur(vals []time.Duration) time.Duration {
	if len(vals) == 0 {
		return 0
	}
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	return vals[len(vals)/2]
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
