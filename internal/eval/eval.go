// Package eval regenerates every table and figure of the paper's
// evaluation (§8 and the appendix) against the Go reproduction. Each
// TableN/FigureN function runs the corresponding experiment and returns a
// formatted table; cmd/tables and the repository-level benchmarks are thin
// wrappers around these.
package eval

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"anduril/internal/checkpoint"
	"anduril/internal/core"
	"anduril/internal/failures"
	"anduril/internal/parallel"
	"anduril/internal/trace"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Options tune the evaluation runs.
type Options struct {
	Seed      int64
	MaxRounds int // cap standing in for the paper's 24-hour limit

	// Workers fans independent experiment cells (failure × strategy or
	// parameter) across a worker pool: 0 = one worker per CPU
	// (GOMAXPROCS), 1 = fully serial, N = exactly N workers. Results are
	// assembled in input order, so every table's deterministic content is
	// byte-identical across worker counts for a fixed seed.
	Workers int

	// NoTiming renders every wall-clock duration cell as "*". Durations
	// are measurements, not functions of the seed — they differ between
	// any two runs, serial or not — so masking them is what makes full
	// table output byte-stable (used by the -j equivalence tests and the
	// cmd/tables -no-time flag). Round counts, the paper's efficiency
	// metric, are unaffected.
	NoTiming bool

	// TraceDir, when non-empty, writes one JSONL explorer trace per
	// experiment cell into this directory (created if absent), named
	// <table>-<failure>[-<strategy>].trace.jsonl. Each cell owns its file,
	// so capture works under any worker count; trace events carry only
	// seed-determined data, so the files are byte-identical across -j
	// settings for a fixed seed (the CI determinism job diffs them).
	TraceDir string

	// ResumeDir, when non-empty, persists each completed experiment cell's
	// report as <cell>.report.json in this directory (created if absent)
	// and loads it back instead of re-running the cell. After a crash or
	// timeout, re-running the same table with the same ResumeDir skips
	// every cell that finished. Reports are deterministic apart from
	// timing, so a resumed table matches a fresh one under NoTiming.
	// Interrupted or unreadable cell files are ignored and the cell
	// re-runs. Note a cached cell skips entirely — including its TraceDir
	// capture.
	ResumeDir string

	// Context, when non-nil, cancels in-flight experiment cells: each
	// explorer run polls it between (and during) trials, and cells not yet
	// started fail fast. Cancelled table runs return the context error;
	// pair with ResumeDir to keep the finished cells.
	Context context.Context
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 500
	}
	return o
}

// dur renders a duration cell, honoring NoTiming.
func (o Options) dur(d time.Duration) string {
	if o.NoTiming {
		return "*"
	}
	return fmtDur(d)
}

// systems lists the five target systems in Table 1 order. The dyn target
// (Dynamo analog, f26–f29) is intentionally absent: its scenarios carry
// non-nil FaultClasses, so SiteDataset excludes them and the paper's
// tables keep reporting over exactly the 22 site-rooted failures.
var systems = []string{"zk", "dfs", "tablestore", "mq", "kvstore"}

// systemLabel maps internal names to the analog of the paper's systems.
var systemLabel = map[string]string{
	"zk":         "zk (ZooKeeper analog)",
	"dfs":        "dfs (HDFS analog)",
	"tablestore": "tablestore (HBase analog)",
	"mq":         "mq (Kafka analog)",
	"kvstore":    "kvstore (Cassandra analog)",
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	case d >= time.Microsecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}

var (
	targetMu    sync.Mutex
	targetCache map[string]*core.Target
)

// buildTargets assembles explorer targets for every scenario, caching them
// across tables (failure logs and analyses are deterministic). Target
// construction itself — one static analysis per system plus two cluster
// runs per scenario — fans across the worker pool on the first call.
//
// The returned map is a fresh copy per call, so callers may range, add or
// delete freely without corrupting the cache or racing with each other.
// The *core.Target values are shared: they are read-only by contract
// (core.Reproduce and Verify never mutate their Target), which is what
// lets every worker of every table share one target set.
// siteBySystem returns one system's scenarios restricted to the paper's
// site-only evaluation dataset — the per-system tables (1 and 4) report
// means and medians over the 22 failures, so the env-rooted scenarios
// must not dilute them.
func siteBySystem(sys string) []*failures.Scenario {
	var out []*failures.Scenario
	for _, s := range failures.BySystem(sys) {
		if s.FaultClasses == nil { // the Table 5 dataset: site-rooted only
			out = append(out, s)
		}
	}
	return out
}

func buildTargets(workers int) (map[string]*core.Target, error) {
	targetMu.Lock()
	defer targetMu.Unlock()
	if targetCache == nil {
		scens := failures.SiteDataset()
		targets, err := parallel.Map(workers, scens, func(_ int, s *failures.Scenario) (*core.Target, error) {
			tgt, err := s.BuildTarget()
			if err != nil {
				return nil, fmt.Errorf("build target %s: %w", s.ID, err)
			}
			return tgt, nil
		})
		if err != nil {
			return nil, err
		}
		cache := make(map[string]*core.Target, len(scens))
		for i, s := range scens {
			cache[s.ID] = targets[i]
		}
		targetCache = cache
	}
	out := make(map[string]*core.Target, len(targetCache))
	for id, tgt := range targetCache {
		out[id] = tgt
	}
	return out, nil
}

// cellTrace attaches a JSONL trace sink to one experiment cell's explorer
// options when TraceDir is set. The returned close func flushes the file
// and surfaces any write error; with TraceDir unset it is a no-op and the
// options stay untouched (tracing disabled, zero overhead).
func (o Options) cellTrace(opts *core.Options, cell string) (func() error, error) {
	if o.TraceDir == "" {
		return func() error { return nil }, nil
	}
	if err := os.MkdirAll(o.TraceDir, 0o755); err != nil {
		return nil, fmt.Errorf("trace dir: %w", err)
	}
	f, err := os.Create(filepath.Join(o.TraceDir, cell+".trace.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("trace file: %w", err)
	}
	sink := trace.NewWriter(f)
	opts.Trace = sink
	return func() error {
		if err := sink.Err(); err != nil {
			f.Close()
			return fmt.Errorf("trace %s: %w", cell, err)
		}
		return f.Close()
	}, nil
}

// ctxErr reports whether the evaluation context (if any) is cancelled.
func (o Options) ctxErr() error {
	if o.Context != nil {
		return o.Context.Err()
	}
	return nil
}

// Cell report files share the checkpoint envelope so stale or foreign
// files are rejected instead of silently mis-parsed.
const (
	reportKind    = "eval-report"
	reportVersion = 1
)

// cellReport memoizes one experiment cell's report under ResumeDir. A
// readable cached report short-circuits run entirely; otherwise run
// executes and — unless it errored or was interrupted mid-search — its
// report is persisted atomically for the next attempt. An interrupted
// cell is surfaced as an error so the table run fails fast instead of
// rendering a partial cell.
func (o Options) cellReport(cell string, run func() (*core.Report, error)) (*core.Report, error) {
	path := ""
	if o.ResumeDir != "" {
		path = filepath.Join(o.ResumeDir, cell+".report.json")
		if raw, err := checkpoint.Load(path, reportKind, reportVersion); err == nil {
			rep := &core.Report{}
			if err := json.Unmarshal(raw, rep); err == nil && !rep.Interrupted {
				return rep, nil
			}
		}
	}
	rep, err := run()
	if err != nil || rep == nil {
		return rep, err
	}
	if rep.Interrupted {
		err := o.ctxErr()
		if err == nil {
			err = context.Canceled
		}
		return rep, fmt.Errorf("cell %s interrupted: %w", cell, err)
	}
	if path != "" {
		if err := os.MkdirAll(o.ResumeDir, 0o755); err != nil {
			return rep, fmt.Errorf("resume dir: %w", err)
		}
		if err := checkpoint.Save(path, reportKind, reportVersion, rep); err != nil {
			return rep, fmt.Errorf("cell %s: %w", cell, err)
		}
	}
	return rep, nil
}

// medianInt returns the median without touching the caller's slice: cells
// computed under the worker pool reuse their round/duration slices, so
// sorting in place would silently reorder an aliased caller slice.
func medianInt(vals []int) int {
	if len(vals) == 0 {
		return 0
	}
	s := make([]int, len(vals))
	copy(s, vals)
	sort.Ints(s)
	return s[len(s)/2]
}

// medianDur is medianInt for durations; same copy-first contract.
func medianDur(vals []time.Duration) time.Duration {
	if len(vals) == 0 {
		return 0
	}
	s := make([]time.Duration, len(vals))
	copy(s, vals)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}
