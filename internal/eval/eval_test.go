package eval

import (
	"strings"
	"testing"

	"anduril/internal/core"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"x", "1"}, {"yyyy", "22"}},
		Notes:  []string{"n1"},
	}
	out := tbl.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "long-header") || !strings.Contains(out, "note: n1") {
		t.Fatalf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("lines=%d:\n%s", len(lines), out)
	}
}

func TestTable1(t *testing.T) {
	tbl, err := Table1FaultSites(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows=%d", len(tbl.Rows))
	}
	t.Logf("\n%s", tbl.Render())
}

func TestTable2FullFeedbackOnly(t *testing.T) {
	tbl, err := Table2Efficacy(Options{MaxRounds: 100}, []core.Strategy{core.FullFeedback})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 22 {
		t.Fatalf("rows=%d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[1] == "-" {
			t.Errorf("%s not reproduced by full feedback", row[0])
		}
	}
}

func TestTable4And8(t *testing.T) {
	t4, err := Table4Performance(Options{MaxRounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != 5 {
		t.Fatalf("t4 rows=%d", len(t4.Rows))
	}
	t8, err := Table8Runtime(Options{MaxRounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(t8.Rows) != 22 {
		t.Fatalf("t8 rows=%d", len(t8.Rows))
	}
}

func TestTable7(t *testing.T) {
	tbl, err := Table7StaticAnalysis(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows=%d", len(tbl.Rows))
	}
	t.Logf("\n%s", tbl.Render())
}

func TestFigure6(t *testing.T) {
	tbl, err := Figure6RankTrajectory(Options{MaxRounds: 300}, "f17")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no trajectory rows")
	}
	t.Logf("\n%s", tbl.Render())
}

func TestVerifyAllInvariant(t *testing.T) {
	if err := verifyAll(Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestTable5And6AndAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	opt := Options{MaxRounds: 80}
	t5, err := Table5Failures(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != 22 {
		t.Fatalf("t5 rows=%d", len(t5.Rows))
	}
	// The stacktrace baseline must reproduce a strict subset.
	st := 0
	for _, row := range t5.Rows {
		if row[2] != "-" {
			st++
		}
	}
	if st == 0 || st == 22 {
		t.Fatalf("stacktrace reproduced %d — expected a strict subset", st)
	}

	t6, err := Table6NewRootCauses(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(t6.Rows) == 0 {
		t.Fatal("no new root causes surfaced")
	}
	for _, row := range t6.Rows {
		if row[3] != "true" {
			t.Errorf("unverified new root cause: %v", row)
		}
	}

	ab, err := AblationTable(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ab.Rows) != 5 {
		t.Fatalf("ablation rows=%d", len(ab.Rows))
	}
	if ab.Rows[0][1] != "22/22" {
		t.Fatalf("baseline ablation: %v", ab.Rows[0])
	}
}

func TestTable3Lite(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tbl, err := Table3Sensitivity(Options{MaxRounds: 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows=%d", len(tbl.Rows))
	}
	// The default setting (k=10, s=+1) must reproduce everything.
	for i, cell := range tbl.Rows[2][1:] {
		if cell == "-" {
			t.Errorf("k=10 failed on %s", tbl.Header[i+1])
		}
	}
}
