package eval

// Tests for the parallel evaluation harness: worker-count equivalence
// (the determinism guarantee) and concurrent use of shared targets (run
// them under -race to exercise the read-only Target contract).

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"anduril/internal/core"
)

// Parallel and serial runs must render byte-identical output for a fixed
// seed. NoTiming masks the wall-clock cells — those are measurements, not
// functions of the seed, and differ between ANY two runs, serial or not;
// everything else (rounds, reproduction verdicts, counts) must match
// byte for byte.
func TestParallelSerialEquivalenceTable2(t *testing.T) {
	strategies := []core.Strategy{core.FullFeedback, core.StackTrace, core.CrashTuner}
	serial := Options{MaxRounds: 60, Workers: 1, NoTiming: true}
	par := Options{MaxRounds: 60, Workers: 8, NoTiming: true}

	a, err := Table2Efficacy(serial, strategies)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table2Efficacy(par, strategies)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("table 2 differs between -j 1 and -j 8:\n--- serial ---\n%s\n--- parallel ---\n%s", a.Render(), b.Render())
	}
}

func TestParallelSerialEquivalenceTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	serial := Options{MaxRounds: 120, Workers: 1}
	par := Options{MaxRounds: 120, Workers: 8}

	a, err := Table3Sensitivity(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table3Sensitivity(par)
	if err != nil {
		t.Fatal(err)
	}
	// Table 3 renders rounds only — no timing cells — so the full output
	// must already be byte-identical without masking.
	if a.Render() != b.Render() {
		t.Fatalf("table 3 differs between -j 1 and -j 8:\n--- serial ---\n%s\n--- parallel ---\n%s", a.Render(), b.Render())
	}
}

// Per-cell traces carry only seed-determined data, so a serial and a
// parallel run of the same grid must produce byte-identical trace files —
// the in-repo version of the CI trace-determinism diff job.
func TestTraceCaptureEquivalenceAcrossWorkers(t *testing.T) {
	strategies := []core.Strategy{core.FullFeedback, core.CrashTuner}
	serialDir := t.TempDir()
	parDir := t.TempDir()
	serial := Options{MaxRounds: 60, Workers: 1, NoTiming: true, TraceDir: serialDir}
	par := Options{MaxRounds: 60, Workers: 8, NoTiming: true, TraceDir: parDir}

	if _, err := Table2Efficacy(serial, strategies); err != nil {
		t.Fatal(err)
	}
	if _, err := Table2Efficacy(par, strategies); err != nil {
		t.Fatal(err)
	}

	serialFiles, err := filepath.Glob(filepath.Join(serialDir, "*.trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(serialFiles) != 22*len(strategies) {
		t.Fatalf("serial run wrote %d trace files, want %d", len(serialFiles), 22*len(strategies))
	}
	for _, sf := range serialFiles {
		name := filepath.Base(sf)
		want, err := os.ReadFile(sf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(parDir, name))
		if err != nil {
			t.Fatalf("parallel run missing trace %s: %v", name, err)
		}
		if string(got) != string(want) {
			t.Errorf("trace %s differs between -j 1 and -j 8", name)
		}
		if len(want) == 0 {
			t.Errorf("trace %s is empty", name)
		}
	}
}

// Concurrent Reproduce calls on SHARED targets must be independent: same
// reports as serial runs, no cross-talk (run with -race to check the
// read-only Target contract is honored).
func TestConcurrentReproduceSharedTargets(t *testing.T) {
	targets, err := buildTargets(0)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"f1", "f4", "f17"}
	type job struct {
		id   string
		seed int64
	}
	var jobs []job
	for _, id := range ids {
		for seed := int64(1); seed <= 3; seed++ {
			jobs = append(jobs, job{id, seed})
		}
	}
	// Serial reference first.
	want := make(map[job]*core.Report)
	for _, j := range jobs {
		want[j] = core.Reproduce(targets[j.id], core.Options{
			Strategy: core.FullFeedback, Seed: j.seed, MaxRounds: 60,
		})
	}
	// Now all jobs at once, several goroutines per target.
	var wg sync.WaitGroup
	got := make([]*core.Report, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			got[i] = core.Reproduce(targets[j.id], core.Options{
				Strategy: core.FullFeedback, Seed: j.seed, MaxRounds: 60,
			})
		}(i, j)
	}
	wg.Wait()
	for i, j := range jobs {
		w, g := want[j], got[i]
		if g.Reproduced != w.Reproduced || g.Rounds != w.Rounds {
			t.Errorf("%s seed %d: concurrent (reproduced=%v rounds=%d) != serial (reproduced=%v rounds=%d)",
				j.id, j.seed, g.Reproduced, g.Rounds, w.Reproduced, w.Rounds)
		}
		if w.Script != nil && (g.Script == nil || *g.Script != *w.Script) {
			t.Errorf("%s seed %d: script differs: %v vs %v", j.id, j.seed, g.Script, w.Script)
		}
	}
}

// buildTargets hands every caller an independent map copy; mutating it
// must not corrupt the cache other callers (and other tables) read.
func TestBuildTargetsReturnsCopy(t *testing.T) {
	a, err := buildTargets(0)
	if err != nil {
		t.Fatal(err)
	}
	delete(a, "f1")
	a["bogus"] = nil
	b, err := buildTargets(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b["f1"]; !ok {
		t.Fatal("deleting from a returned map corrupted the cache")
	}
	if _, ok := b["bogus"]; ok {
		t.Fatal("inserting into a returned map corrupted the cache")
	}
	if len(b) != 22 {
		t.Fatalf("cache has %d targets, want 22", len(b))
	}
}

// The median helpers must not reorder the caller's slice — cells under
// the worker pool reuse their slices, so in-place sorting was a real bug.
func TestMediansDoNotMutate(t *testing.T) {
	ints := []int{5, 1, 4, 2, 3}
	if m := medianInt(ints); m != 3 {
		t.Fatalf("medianInt=%d", m)
	}
	if ints[0] != 5 || ints[4] != 3 {
		t.Fatalf("medianInt reordered its input: %v", ints)
	}
	durs := []int64{50, 10, 40, 20, 30}
	orig := append([]int64(nil), durs...)
	ds := make([]time.Duration, len(durs))
	for i, d := range durs {
		ds[i] = time.Duration(d)
	}
	if m := medianDur(ds); m != 30 {
		t.Fatalf("medianDur=%v", m)
	}
	for i := range durs {
		if int64(ds[i]) != orig[i] {
			t.Fatalf("medianDur reordered its input: %v", ds)
		}
	}
}
