package eval

import (
	"fmt"

	"anduril/internal/core"
	"anduril/internal/failures"
)

// ablationSetting is one design-choice toggle from §5.1–§5.2.5.
type ablationSetting struct {
	name   string
	mutate func(*core.Options)
}

var ablationSettings = []ablationSetting{
	{"baseline (paper's choices)", func(o *core.Options) {}},
	{"sum aggregation (vs min)", func(o *core.Options) { o.AggregateSum = true }},
	{"temporal by order (vs log distance)", func(o *core.Options) { o.TemporalByOrder = true }},
	{"fixed window (vs doubling)", func(o *core.Options) { o.FixedWindow = true }},
	{"global diff (vs per-thread)", func(o *core.Options) { o.GlobalDiff = true }},
}

// AblationTable evaluates the design-choice toggles over the whole dataset
// with the full-feedback algorithm: reproduced count, total rounds, and
// which failures each setting loses.
func AblationTable(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	targets, err := buildTargets()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablations: design choices of §5.1-§5.2.5 (full feedback, whole dataset)",
		Header: []string{"Setting", "Reproduced", "Total rounds", "Lost failures"},
	}
	for _, setting := range ablationSettings {
		reproduced, totalRounds := 0, 0
		lost := ""
		for _, s := range failures.All() {
			opts := core.Options{Strategy: core.FullFeedback, Seed: opt.Seed, MaxRounds: opt.MaxRounds}
			setting.mutate(&opts)
			rep := core.Reproduce(targets[s.ID], opts)
			if rep.Reproduced {
				reproduced++
				totalRounds += rep.Rounds
				continue
			}
			totalRounds += opt.MaxRounds
			if lost != "" {
				lost += " "
			}
			lost += s.ID
		}
		if lost == "" {
			lost = "-"
		}
		t.Rows = append(t.Rows, []string{
			setting.name,
			fmt.Sprintf("%d/22", reproduced),
			fmt.Sprint(totalRounds),
			lost,
		})
	}
	return t, nil
}
