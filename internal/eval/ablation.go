package eval

import (
	"fmt"
	"strings"

	"anduril/internal/core"
	"anduril/internal/failures"
	"anduril/internal/parallel"
)

// ablationSetting is one design-choice toggle from §5.1–§5.2.5.
type ablationSetting struct {
	name   string
	mutate func(*core.Options)
}

var ablationSettings = []ablationSetting{
	{"baseline (paper's choices)", func(o *core.Options) {}},
	{"sum aggregation (vs min)", func(o *core.Options) { o.AggregateSum = true }},
	{"temporal by order (vs log distance)", func(o *core.Options) { o.TemporalByOrder = true }},
	{"fixed window (vs doubling)", func(o *core.Options) { o.FixedWindow = true }},
	{"global diff (vs per-thread)", func(o *core.Options) { o.GlobalDiff = true }},
}

// AblationTable evaluates the design-choice toggles over the whole dataset
// with the full-feedback algorithm: reproduced count, total rounds, and
// which failures each setting loses. The setting × failure grid fans
// across the worker pool.
func AblationTable(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	targets, err := buildTargets(opt.Workers)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablations: design choices of §5.1-§5.2.5 (full feedback, whole dataset)",
		Header: []string{"Setting", "Reproduced", "Total rounds", "Lost failures"},
	}
	scens := failures.SiteDataset()
	type cell struct{ si, fi int }
	cells := make([]cell, 0, len(ablationSettings)*len(scens))
	for si := range ablationSettings {
		for fi := range scens {
			cells = append(cells, cell{si, fi})
		}
	}
	reps, err := parallel.Map(opt.Workers, cells, func(_ int, c cell) (*core.Report, error) {
		if err := opt.ctxErr(); err != nil {
			return nil, err
		}
		name := fmt.Sprintf("ablation-s%d-%s", c.si, scens[c.fi].ID)
		return opt.cellReport(name, func() (*core.Report, error) {
			opts := core.Options{
				Strategy: core.FullFeedback, Seed: opt.Seed, MaxRounds: opt.MaxRounds,
				Context: opt.Context,
			}
			ablationSettings[c.si].mutate(&opts)
			return core.Reproduce(targets[scens[c.fi].ID], opts), nil
		})
	})
	if err != nil {
		return nil, err
	}
	for si, setting := range ablationSettings {
		reproduced, totalRounds := 0, 0
		var lost []string
		for fi, s := range scens {
			rep := reps[si*len(scens)+fi]
			if rep.Reproduced {
				reproduced++
				totalRounds += rep.Rounds
				continue
			}
			totalRounds += opt.MaxRounds
			lost = append(lost, s.ID)
		}
		lostCell := "-"
		if len(lost) > 0 {
			lostCell = strings.Join(lost, " ")
		}
		t.Rows = append(t.Rows, []string{
			setting.name,
			fmt.Sprintf("%d/22", reproduced),
			fmt.Sprint(totalRounds),
			lostCell,
		})
	}
	return t, nil
}
