package eval

// Tests for the per-cell report persistence (Options.ResumeDir) and the
// evaluation context: a resumed table must render the same bytes as a
// fresh one, corrupted cell files must be re-run rather than trusted, and
// a cancelled context must fail the grid fast without persisting partial
// cells.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anduril/internal/core"
)

func TestCellReportMemoizes(t *testing.T) {
	opt := Options{ResumeDir: t.TempDir()}
	calls := 0
	run := func() (*core.Report, error) {
		calls++
		return &core.Report{Target: "f1", Reproduced: true, Rounds: 7}, nil
	}
	rep, err := opt.cellReport("cell-x", run)
	if err != nil || !rep.Reproduced || rep.Rounds != 7 {
		t.Fatalf("first call: rep=%+v err=%v", rep, err)
	}
	rep, err = opt.cellReport("cell-x", func() (*core.Report, error) {
		t.Fatal("cached cell re-ran")
		return nil, nil
	})
	if err != nil || rep.Rounds != 7 || rep.Target != "f1" {
		t.Fatalf("cached call: rep=%+v err=%v", rep, err)
	}
	if calls != 1 {
		t.Fatalf("run called %d times, want 1", calls)
	}

	// Without ResumeDir every call runs.
	bare := Options{}
	if _, err := bare.cellReport("cell-x", run); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("run called %d times without ResumeDir, want 2", calls)
	}
}

func TestCellReportDoesNotPersistInterrupted(t *testing.T) {
	opt := Options{ResumeDir: t.TempDir()}
	_, err := opt.cellReport("cell-i", func() (*core.Report, error) {
		return &core.Report{Interrupted: true, Rounds: 3}, nil
	})
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("interrupted cell: err=%v, want interruption error", err)
	}
	if _, serr := os.Stat(filepath.Join(opt.ResumeDir, "cell-i.report.json")); !os.IsNotExist(serr) {
		t.Fatalf("interrupted cell was persisted (stat err=%v)", serr)
	}
	// The next attempt re-runs and persists the completed report.
	rep, err := opt.cellReport("cell-i", func() (*core.Report, error) {
		return &core.Report{Reproduced: true, Rounds: 9}, nil
	})
	if err != nil || rep.Rounds != 9 {
		t.Fatalf("retry: rep=%+v err=%v", rep, err)
	}
	if _, serr := os.Stat(filepath.Join(opt.ResumeDir, "cell-i.report.json")); serr != nil {
		t.Fatalf("completed retry not persisted: %v", serr)
	}
}

// A table rendered from a resume dir — first while populating it, then
// entirely from cache, then after one cell file is corrupted — must match
// the fresh run byte for byte (NoTiming masks the measured cells; cached
// reports carry stale durations by design).
func TestResumeDirTableEquivalence(t *testing.T) {
	strategies := []core.Strategy{core.FullFeedback}
	fresh := Options{MaxRounds: 60, NoTiming: true}
	dir := t.TempDir()
	resumed := Options{MaxRounds: 60, NoTiming: true, ResumeDir: dir}

	want, err := Table2Efficacy(fresh, strategies)
	if err != nil {
		t.Fatal(err)
	}
	populate, err := Table2Efficacy(resumed, strategies)
	if err != nil {
		t.Fatal(err)
	}
	if populate.Render() != want.Render() {
		t.Fatalf("populating run differs from fresh run:\n--- fresh ---\n%s\n--- populating ---\n%s",
			want.Render(), populate.Render())
	}
	files, err := filepath.Glob(filepath.Join(dir, "table2-*.report.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 22 {
		t.Fatalf("resume dir holds %d cell reports, want 22", len(files))
	}

	cached, err := Table2Efficacy(resumed, strategies)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Render() != want.Render() {
		t.Fatalf("cached run differs from fresh run:\n--- fresh ---\n%s\n--- cached ---\n%s",
			want.Render(), cached.Render())
	}

	// A corrupted cell file is ignored and its cell re-runs.
	if err := os.WriteFile(files[0], []byte(`{"kind":"eval-report","ver`), 0o644); err != nil {
		t.Fatal(err)
	}
	healed, err := Table2Efficacy(resumed, strategies)
	if err != nil {
		t.Fatal(err)
	}
	if healed.Render() != want.Render() {
		t.Fatalf("run after corrupting %s differs from fresh run", filepath.Base(files[0]))
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"kind":"eval-report"`) {
		t.Fatalf("corrupted cell file was not rewritten: %q", raw)
	}
}

func TestCancelledContextFailsTableFast(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := Options{MaxRounds: 60, Context: ctx, ResumeDir: t.TempDir()}
	_, err := Table2Efficacy(opt, []core.Strategy{core.FullFeedback})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled table: err=%v, want context.Canceled", err)
	}
	files, _ := filepath.Glob(filepath.Join(opt.ResumeDir, "*.report.json"))
	if len(files) != 0 {
		t.Fatalf("cancelled run persisted %d cell reports, want 0", len(files))
	}
}
