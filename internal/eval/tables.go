package eval

import (
	"fmt"
	"time"

	"anduril/internal/cluster"
	"anduril/internal/core"
	"anduril/internal/failures"
	"anduril/internal/parallel"
)

// reproduceCells runs one core.Reproduce per (scenario, options) cell on
// the worker pool. Each cell is a hermetic, seeded run against a shared
// read-only Target, and parallel.Map returns results in input order, so
// the assembled tables do not depend on the worker count. label names the
// calling experiment in per-cell trace files (Options.TraceDir) and
// per-cell report files (Options.ResumeDir).
func reproduceCells(opt Options, label string, targets map[string]*core.Target,
	scens []*failures.Scenario, optFor func(i int, s *failures.Scenario) core.Options) ([]*core.Report, error) {
	return parallel.Map(opt.Workers, scens, func(i int, s *failures.Scenario) (*core.Report, error) {
		if err := opt.ctxErr(); err != nil {
			return nil, err
		}
		cell := fmt.Sprintf("%s-%s", label, s.ID)
		return opt.cellReport(cell, func() (*core.Report, error) {
			opts := optFor(i, s)
			opts.Context = opt.Context
			done, err := opt.cellTrace(&opts, cell)
			if err != nil {
				return nil, err
			}
			rep := core.Reproduce(targets[s.ID], opts)
			return rep, done()
		})
	})
}

// Table1FaultSites reproduces Table 1: per-system code size and fault-site
// counts — total static sites, sites inferred by the causal graph for the
// system's failures (mean), and dynamic occurrences of the inferred sites
// (mean).
func Table1FaultSites(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	targets, err := buildTargets(opt.Workers)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table 1: target systems and fault sites",
		Header: []string{"System", "LOC", "Total", "Inferred", "Dynamic"},
		Notes: []string{
			"Total: static fault sites in the system; Inferred: mean causal-graph sites per failure;",
			"Dynamic: mean dynamic occurrences of the inferred sites under the failure's workload.",
		},
	}
	for _, sys := range systems {
		scens := siteBySystem(sys)
		if len(scens) == 0 {
			continue
		}
		an, err := scens[0].Analyze()
		if err != nil {
			return nil, err
		}
		reps, err := reproduceCells(opt, "table1", targets, scens, func(int, *failures.Scenario) core.Options {
			return core.Options{Strategy: core.FullFeedback, Seed: opt.Seed, MaxRounds: 1}
		})
		if err != nil {
			return nil, err
		}
		sumInferred, sumDynamic := 0, 0
		for _, rep := range reps {
			sumInferred += rep.CandidateSites
			sumDynamic += rep.CandidateInstances
		}
		t.Rows = append(t.Rows, []string{
			systemLabel[sys],
			fmt.Sprint(an.LOC),
			fmt.Sprint(len(an.Sites)),
			fmt.Sprint(sumInferred / len(scens)),
			fmt.Sprint(sumDynamic / len(scens)),
		})
	}
	return t, nil
}

// Table2Strategies is the strategy column order of Table 2: the registry's
// registration order (built-ins register in Table 2 column order, and any
// externally registered strategy appends as an extra column).
func Table2Strategies() []core.Strategy { return core.Strategies() }

// Table2Efficacy reproduces Table 2: rounds and wall time per failure for
// ANDURIL, its ablation variants, and the comparison systems. "-" means the
// strategy did not reproduce within the round cap (the paper's 24-hour
// analog). The failure × strategy grid fans across the worker pool.
func Table2Efficacy(opt Options, strategies []core.Strategy) (*Table, error) {
	opt = opt.withDefaults()
	if strategies == nil {
		strategies = Table2Strategies()
	}
	targets, err := buildTargets(opt.Workers)
	if err != nil {
		return nil, err
	}
	header := []string{"Failure"}
	for _, s := range strategies {
		header = append(header, string(s)+" rnd", "time")
	}
	t := &Table{
		Title:  "Table 2: efficacy of failure reproduction (rounds / wall time)",
		Header: header,
		Notes: []string{
			fmt.Sprintf("'-' = not reproduced within %d rounds (the paper's 24-hour analog).", opt.MaxRounds),
		},
	}
	scens := failures.SiteDataset()
	type cell struct{ fi, si int }
	cells := make([]cell, 0, len(scens)*len(strategies))
	for fi := range scens {
		for si := range strategies {
			cells = append(cells, cell{fi, si})
		}
	}
	reps, err := parallel.Map(opt.Workers, cells, func(_ int, c cell) (*core.Report, error) {
		if err := opt.ctxErr(); err != nil {
			return nil, err
		}
		name := fmt.Sprintf("table2-%s-%s", scens[c.fi].ID, strategies[c.si])
		return opt.cellReport(name, func() (*core.Report, error) {
			opts := core.Options{
				Strategy: strategies[c.si], Seed: opt.Seed, MaxRounds: opt.MaxRounds,
				Context: opt.Context,
			}
			done, err := opt.cellTrace(&opts, name)
			if err != nil {
				return nil, err
			}
			rep := core.Reproduce(targets[scens[c.fi].ID], opts)
			return rep, done()
		})
	})
	if err != nil {
		return nil, err
	}
	for fi, s := range scens {
		row := []string{fmt.Sprintf("%s (%s)", s.Issue, s.ID)}
		for si := range strategies {
			rep := reps[fi*len(strategies)+si]
			if rep.Reproduced {
				row = append(row, fmt.Sprint(rep.Rounds), opt.dur(rep.Elapsed))
			} else {
				row = append(row, "-", "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table3Sensitivity reproduces Table 3: rounds for the initial window size
// k in {1,3,10} and the feedback adjustment s in {+1,+2,+10}. The
// parameter × failure grid fans across the worker pool.
func Table3Sensitivity(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	targets, err := buildTargets(opt.Workers)
	if err != nil {
		return nil, err
	}
	scens := failures.SiteDataset()
	header := []string{"Param"}
	for _, s := range scens {
		header = append(header, s.ID)
	}
	t := &Table{
		Title:  "Table 3: sensitivity of the window size k and adjustment s (rounds)",
		Header: header,
	}
	type param struct {
		label          string
		window, adjust int
	}
	params := []param{
		{"k=1", 1, 1}, {"k=3", 3, 1}, {"k=10", 10, 1},
		{"s=+1", 10, 1}, {"s=+2", 10, 2}, {"s=+10", 10, 10},
	}
	type cell struct{ pi, fi int }
	cells := make([]cell, 0, len(params)*len(scens))
	for pi := range params {
		for fi := range scens {
			cells = append(cells, cell{pi, fi})
		}
	}
	reps, err := parallel.Map(opt.Workers, cells, func(_ int, c cell) (*core.Report, error) {
		if err := opt.ctxErr(); err != nil {
			return nil, err
		}
		p := params[c.pi]
		name := fmt.Sprintf("table3-p%d-%s", c.pi, scens[c.fi].ID)
		return opt.cellReport(name, func() (*core.Report, error) {
			return core.Reproduce(targets[scens[c.fi].ID], core.Options{
				Strategy: core.FullFeedback, Seed: opt.Seed,
				MaxRounds: opt.MaxRounds, Window: p.window, Adjust: p.adjust,
				Context: opt.Context,
			}), nil
		})
	})
	if err != nil {
		return nil, err
	}
	for pi, p := range params {
		row := []string{p.label}
		for fi := range scens {
			rep := reps[pi*len(scens)+fi]
			if rep.Reproduced {
				row = append(row, fmt.Sprint(rep.Rounds))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table4Performance reproduces Table 4: per-system medians of injection
// requests per round, decision latency, round initialization time and
// workload time.
func Table4Performance(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	targets, err := buildTargets(opt.Workers)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table 4: explorer performance per system (medians)",
		Header: []string{"System", "Inject.Req", "Latency", "Round Init", "Workload"},
	}
	for _, sys := range systems {
		reps, err := reproduceCells(opt, "table4", targets, siteBySystem(sys), func(int, *failures.Scenario) core.Options {
			return core.Options{Strategy: core.FullFeedback, Seed: opt.Seed, MaxRounds: opt.MaxRounds}
		})
		if err != nil {
			return nil, err
		}
		var reqs []int
		var lat, init, work []time.Duration
		for _, rep := range reps {
			reqs = append(reqs, rep.MedianInjectReqs())
			lat = append(lat, rep.MeanDecisionLatency())
			init = append(init, rep.MedianInitTime())
			work = append(work, rep.MedianRunTime())
		}
		t.Rows = append(t.Rows, []string{
			systemLabel[sys],
			fmt.Sprint(medianInt(reqs)),
			opt.dur(medianDur(lat)),
			opt.dur(medianDur(init)),
			opt.dur(medianDur(work)),
		})
	}
	return t, nil
}

// Table5Failures reproduces appendix Table 5: the failure descriptions,
// the injected fault kinds, and the stacktrace-injector results.
func Table5Failures(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	targets, err := buildTargets(opt.Workers)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table 5: the 22-failure dataset and the stacktrace-injector baseline",
		Header: []string{"Failure", "Injected Fault", "ST rnd", "ST time", "Description"},
	}
	scens := failures.SiteDataset()
	reps, err := reproduceCells(opt, "table5", targets, scens, func(int, *failures.Scenario) core.Options {
		return core.Options{Strategy: core.StackTrace, Seed: opt.Seed, MaxRounds: opt.MaxRounds}
	})
	if err != nil {
		return nil, err
	}
	for i, s := range scens {
		rep := reps[i]
		rnd, tm := "-", "-"
		if rep.Reproduced {
			rnd, tm = fmt.Sprint(rep.Rounds), opt.dur(rep.Elapsed)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s (%s)", s.Issue, s.ID),
			string(s.Kind), rnd, tm, s.Description,
		})
	}
	return t, nil
}

// Table6NewRootCauses reproduces appendix Table 6: failures where the
// explorer's reproduction identifies a fault different from (or deeper
// than) the developers' documented root cause, while still satisfying the
// oracle. Each cell reproduces and, when a new cause surfaces, verifies
// the script — all inside the parallel stage; row order stays the dataset
// order.
func Table6NewRootCauses(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	targets, err := buildTargets(opt.Workers)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table 6: new root causes exposed while reproducing",
		Header: []string{"Failure", "Documented root cause", "Discovered root cause", "Verified"},
		Notes:  []string{"Rows appear when the oracle-satisfying fault differs from the ground-truth site."},
	}
	rows, err := parallel.Map(opt.Workers, failures.SiteDataset(), func(_ int, s *failures.Scenario) ([]string, error) {
		if err := opt.ctxErr(); err != nil {
			return nil, err
		}
		rep, err := opt.cellReport("table6-"+s.ID, func() (*core.Report, error) {
			return core.Reproduce(targets[s.ID], core.Options{
				Strategy: core.FullFeedback, Seed: opt.Seed, MaxRounds: opt.MaxRounds,
				Context: opt.Context,
			}), nil
		})
		if err != nil {
			return nil, err
		}
		if !rep.Reproduced || rep.Script == nil {
			return nil, nil
		}
		if rep.Script.Site == s.RootSite && s.NewRootCause == "" {
			return nil, nil
		}
		discovered := rep.Script.Site
		if rep.Script.Site == s.RootSite {
			discovered = s.NewRootCause
		}
		verified := core.Verify(targets[s.ID], *rep.Script, rep.ScriptSeed)
		return []string{
			fmt.Sprintf("%s (%s)", s.Issue, s.ID),
			s.RootSite,
			discovered,
			fmt.Sprint(verified),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if row != nil {
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Table7StaticAnalysis reproduces appendix Table 7: per-system static
// analysis cost, broken down into exception analysis, slicing and chaining.
func Table7StaticAnalysis(opt Options) (*Table, error) {
	t := &Table{
		Title:  "Table 7: static analysis performance",
		Header: []string{"System", "LOC", "Exception", "Slicing", "Chaining", "Total", "Graph V", "Graph E"},
	}
	for _, sys := range systems {
		scens := siteBySystem(sys)
		if len(scens) == 0 {
			continue
		}
		an, err := scens[0].Analyze()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			systemLabel[sys],
			fmt.Sprint(an.LOC),
			opt.dur(an.Timing.Exception),
			opt.dur(an.Timing.Slicing),
			opt.dur(an.Timing.Chaining),
			opt.dur(an.Timing.Total),
			fmt.Sprint(an.Graph.NumNodes()),
			fmt.Sprint(an.Graph.NumEdges()),
		})
	}
	return t, nil
}

// Table8Runtime reproduces appendix Table 8: per-failure runtime details.
func Table8Runtime(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	targets, err := buildTargets(opt.Workers)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table 8: per-failure explorer runtime details",
		Header: []string{"Failure", "Inject.Req", "Latency", "Round Init", "Workload", "FreeRun Lines"},
	}
	scens := failures.SiteDataset()
	reps, err := reproduceCells(opt, "table8", targets, scens, func(int, *failures.Scenario) core.Options {
		return core.Options{Strategy: core.FullFeedback, Seed: opt.Seed, MaxRounds: opt.MaxRounds}
	})
	if err != nil {
		return nil, err
	}
	for i, s := range scens {
		rep := reps[i]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s (%s)", s.Issue, s.ID),
			fmt.Sprint(rep.MedianInjectReqs()),
			opt.dur(rep.MeanDecisionLatency()),
			opt.dur(rep.MedianInitTime()),
			opt.dur(rep.MedianRunTime()),
			fmt.Sprint(rep.FreeRunLogLines),
		})
	}
	return t, nil
}

// Figure6RankTrajectory reproduces Figure 6: the rank of the root-cause
// fault site across trials. A window of 1 forces one candidate per round
// so the trajectory is visible (with the default window the failure often
// reproduces before the feedback has anything to correct).
func Figure6RankTrajectory(opt Options, failureID string) (*Table, error) {
	opt = opt.withDefaults()
	s, ok := failures.ByID(failureID)
	if !ok {
		return nil, fmt.Errorf("eval: no failure %s", failureID)
	}
	tgt, err := s.BuildTarget()
	if err != nil {
		return nil, err
	}
	rep := core.Reproduce(tgt, core.Options{
		Strategy: core.FullFeedback, Seed: opt.Seed,
		MaxRounds: opt.MaxRounds, Window: 1, TrackRank: true,
		Context: opt.Context,
	})
	t := &Table{
		Title:  fmt.Sprintf("Figure 6: rank of the root-cause fault site across trials (%s)", s.Issue),
		Header: []string{"Trial", "Root-site rank", "Injected", "Reproduced"},
	}
	for _, rd := range rep.RoundLog {
		injected := "-"
		if rd.Injected != nil {
			injected = fmt.Sprintf("%s#%d", rd.Injected.Site, rd.Injected.Occurrence)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(rd.N), fmt.Sprint(rd.RootRank), injected, fmt.Sprint(rd.Satisfied),
		})
	}
	if rep.Reproduced {
		t.Notes = append(t.Notes, fmt.Sprintf("reproduced in %d trials via %s#%d",
			rep.Rounds, rep.Script.Site, rep.Script.Occurrence))
	}
	return t, nil
}

// verifyAll is a helper ensuring the workload/oracle invariants hold — the
// free run never satisfies an oracle (used by tests).
func verifyAll(opt Options) error {
	opt = opt.withDefaults()
	for _, s := range failures.SiteDataset() {
		free := cluster.Execute(opt.Seed, nil, false, s.Workload, s.Horizon)
		if s.Oracle.Satisfied(free) {
			return fmt.Errorf("%s: oracle satisfied without fault", s.ID)
		}
	}
	return nil
}
