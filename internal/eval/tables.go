package eval

import (
	"fmt"
	"time"

	"anduril/internal/cluster"
	"anduril/internal/core"
	"anduril/internal/failures"
)

// Table1FaultSites reproduces Table 1: per-system code size and fault-site
// counts — total static sites, sites inferred by the causal graph for the
// system's failures (mean), and dynamic occurrences of the inferred sites
// (mean).
func Table1FaultSites(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		Title:  "Table 1: target systems and fault sites",
		Header: []string{"System", "LOC", "Total", "Inferred", "Dynamic"},
		Notes: []string{
			"Total: static fault sites in the system; Inferred: mean causal-graph sites per failure;",
			"Dynamic: mean dynamic occurrences of the inferred sites under the failure's workload.",
		},
	}
	for _, sys := range systems {
		scens := failures.BySystem(sys)
		if len(scens) == 0 {
			continue
		}
		an, err := scens[0].Analyze()
		if err != nil {
			return nil, err
		}
		sumInferred, sumDynamic := 0, 0
		for _, s := range scens {
			tgt, err := s.BuildTarget()
			if err != nil {
				return nil, err
			}
			rep := core.Reproduce(tgt, core.Options{Strategy: core.FullFeedback, Seed: opt.Seed, MaxRounds: 1})
			sumInferred += rep.CandidateSites
			sumDynamic += rep.CandidateInstances
		}
		t.Rows = append(t.Rows, []string{
			systemLabel[sys],
			fmt.Sprint(an.LOC),
			fmt.Sprint(len(an.Sites)),
			fmt.Sprint(sumInferred / len(scens)),
			fmt.Sprint(sumDynamic / len(scens)),
		})
	}
	return t, nil
}

// Table2Strategies is the strategy column order of Table 2.
var Table2Strategies = []core.Strategy{
	core.FullFeedback, core.Exhaustive, core.SiteDistance, core.SiteDistanceLimit,
	core.SiteFeedback, core.MultiplyFeedback, core.FATE, core.CrashTuner,
	core.StackTrace, core.Random,
}

// Table2Efficacy reproduces Table 2: rounds and wall time per failure for
// ANDURIL, its ablation variants, and the comparison systems. "-" means the
// strategy did not reproduce within the round cap (the paper's 24-hour
// analog).
func Table2Efficacy(opt Options, strategies []core.Strategy) (*Table, error) {
	opt = opt.withDefaults()
	if strategies == nil {
		strategies = Table2Strategies
	}
	targets, err := buildTargets()
	if err != nil {
		return nil, err
	}
	header := []string{"Failure"}
	for _, s := range strategies {
		header = append(header, string(s)+" rnd", "time")
	}
	t := &Table{
		Title:  "Table 2: efficacy of failure reproduction (rounds / wall time)",
		Header: header,
		Notes: []string{
			fmt.Sprintf("'-' = not reproduced within %d rounds (the paper's 24-hour analog).", opt.MaxRounds),
		},
	}
	for _, s := range failures.All() {
		row := []string{fmt.Sprintf("%s (%s)", s.Issue, s.ID)}
		for _, strat := range strategies {
			rep := core.Reproduce(targets[s.ID], core.Options{
				Strategy: strat, Seed: opt.Seed, MaxRounds: opt.MaxRounds,
			})
			if rep.Reproduced {
				row = append(row, fmt.Sprint(rep.Rounds), fmtDur(rep.Elapsed))
			} else {
				row = append(row, "-", "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table3Sensitivity reproduces Table 3: rounds for the initial window size
// k in {1,3,10} and the feedback adjustment s in {+1,+2,+10}.
func Table3Sensitivity(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	targets, err := buildTargets()
	if err != nil {
		return nil, err
	}
	header := []string{"Param"}
	for _, s := range failures.All() {
		header = append(header, s.ID)
	}
	t := &Table{
		Title:  "Table 3: sensitivity of the window size k and adjustment s (rounds)",
		Header: header,
	}
	addRow := func(label string, window, adjust int) {
		row := []string{label}
		for _, s := range failures.All() {
			rep := core.Reproduce(targets[s.ID], core.Options{
				Strategy: core.FullFeedback, Seed: opt.Seed,
				MaxRounds: opt.MaxRounds, Window: window, Adjust: adjust,
			})
			if rep.Reproduced {
				row = append(row, fmt.Sprint(rep.Rounds))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	for _, k := range []int{1, 3, 10} {
		addRow(fmt.Sprintf("k=%d", k), k, 1)
	}
	for _, s := range []int{1, 2, 10} {
		addRow(fmt.Sprintf("s=+%d", s), 10, s)
	}
	return t, nil
}

// Table4Performance reproduces Table 4: per-system medians of injection
// requests per round, decision latency, round initialization time and
// workload time.
func Table4Performance(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	targets, err := buildTargets()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table 4: explorer performance per system (medians)",
		Header: []string{"System", "Inject.Req", "Latency", "Round Init", "Workload"},
	}
	for _, sys := range systems {
		var reqs []int
		var lat, init, work []time.Duration
		for _, s := range failures.BySystem(sys) {
			rep := core.Reproduce(targets[s.ID], core.Options{
				Strategy: core.FullFeedback, Seed: opt.Seed, MaxRounds: opt.MaxRounds,
			})
			reqs = append(reqs, rep.MedianInjectReqs())
			lat = append(lat, rep.MeanDecisionLatency())
			init = append(init, rep.MedianInitTime())
			work = append(work, rep.MedianRunTime())
		}
		t.Rows = append(t.Rows, []string{
			systemLabel[sys],
			fmt.Sprint(medianInt(reqs)),
			fmtDur(medianDur(lat)),
			fmtDur(medianDur(init)),
			fmtDur(medianDur(work)),
		})
	}
	return t, nil
}

// Table5Failures reproduces appendix Table 5: the failure descriptions,
// the injected fault kinds, and the stacktrace-injector results.
func Table5Failures(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	targets, err := buildTargets()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table 5: the 22-failure dataset and the stacktrace-injector baseline",
		Header: []string{"Failure", "Injected Fault", "ST rnd", "ST time", "Description"},
	}
	for _, s := range failures.All() {
		rep := core.Reproduce(targets[s.ID], core.Options{
			Strategy: core.StackTrace, Seed: opt.Seed, MaxRounds: opt.MaxRounds,
		})
		rnd, tm := "-", "-"
		if rep.Reproduced {
			rnd, tm = fmt.Sprint(rep.Rounds), fmtDur(rep.Elapsed)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s (%s)", s.Issue, s.ID),
			string(s.Kind), rnd, tm, s.Description,
		})
	}
	return t, nil
}

// Table6NewRootCauses reproduces appendix Table 6: failures where the
// explorer's reproduction identifies a fault different from (or deeper
// than) the developers' documented root cause, while still satisfying the
// oracle.
func Table6NewRootCauses(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	targets, err := buildTargets()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table 6: new root causes exposed while reproducing",
		Header: []string{"Failure", "Documented root cause", "Discovered root cause", "Verified"},
		Notes:  []string{"Rows appear when the oracle-satisfying fault differs from the ground-truth site."},
	}
	for _, s := range failures.All() {
		rep := core.Reproduce(targets[s.ID], core.Options{
			Strategy: core.FullFeedback, Seed: opt.Seed, MaxRounds: opt.MaxRounds,
		})
		if !rep.Reproduced || rep.Script == nil {
			continue
		}
		if rep.Script.Site == s.RootSite && s.NewRootCause == "" {
			continue
		}
		discovered := rep.Script.Site
		if rep.Script.Site == s.RootSite {
			discovered = s.NewRootCause
		}
		verified := core.Verify(targets[s.ID], *rep.Script, rep.ScriptSeed)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s (%s)", s.Issue, s.ID),
			s.RootSite,
			discovered,
			fmt.Sprint(verified),
		})
	}
	return t, nil
}

// Table7StaticAnalysis reproduces appendix Table 7: per-system static
// analysis cost, broken down into exception analysis, slicing and chaining.
func Table7StaticAnalysis(opt Options) (*Table, error) {
	t := &Table{
		Title:  "Table 7: static analysis performance",
		Header: []string{"System", "LOC", "Exception", "Slicing", "Chaining", "Total", "Graph V", "Graph E"},
	}
	for _, sys := range systems {
		scens := failures.BySystem(sys)
		if len(scens) == 0 {
			continue
		}
		an, err := scens[0].Analyze()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			systemLabel[sys],
			fmt.Sprint(an.LOC),
			fmtDur(an.Timing.Exception),
			fmtDur(an.Timing.Slicing),
			fmtDur(an.Timing.Chaining),
			fmtDur(an.Timing.Total),
			fmt.Sprint(an.Graph.NumNodes()),
			fmt.Sprint(an.Graph.NumEdges()),
		})
	}
	return t, nil
}

// Table8Runtime reproduces appendix Table 8: per-failure runtime details.
func Table8Runtime(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	targets, err := buildTargets()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table 8: per-failure explorer runtime details",
		Header: []string{"Failure", "Inject.Req", "Latency", "Round Init", "Workload", "FreeRun Lines"},
	}
	for _, s := range failures.All() {
		rep := core.Reproduce(targets[s.ID], core.Options{
			Strategy: core.FullFeedback, Seed: opt.Seed, MaxRounds: opt.MaxRounds,
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s (%s)", s.Issue, s.ID),
			fmt.Sprint(rep.MedianInjectReqs()),
			fmtDur(rep.MeanDecisionLatency()),
			fmtDur(rep.MedianInitTime()),
			fmtDur(rep.MedianRunTime()),
			fmt.Sprint(rep.FreeRunLogLines),
		})
	}
	return t, nil
}

// Figure6RankTrajectory reproduces Figure 6: the rank of the root-cause
// fault site across trials. A window of 1 forces one candidate per round
// so the trajectory is visible (with the default window the failure often
// reproduces before the feedback has anything to correct).
func Figure6RankTrajectory(opt Options, failureID string) (*Table, error) {
	opt = opt.withDefaults()
	s, ok := failures.ByID(failureID)
	if !ok {
		return nil, fmt.Errorf("eval: no failure %s", failureID)
	}
	tgt, err := s.BuildTarget()
	if err != nil {
		return nil, err
	}
	rep := core.Reproduce(tgt, core.Options{
		Strategy: core.FullFeedback, Seed: opt.Seed,
		MaxRounds: opt.MaxRounds, Window: 1, TrackRank: true,
	})
	t := &Table{
		Title:  fmt.Sprintf("Figure 6: rank of the root-cause fault site across trials (%s)", s.Issue),
		Header: []string{"Trial", "Root-site rank", "Injected", "Reproduced"},
	}
	for _, rd := range rep.RoundLog {
		injected := "-"
		if rd.Injected != nil {
			injected = fmt.Sprintf("%s#%d", rd.Injected.Site, rd.Injected.Occurrence)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(rd.N), fmt.Sprint(rd.RootRank), injected, fmt.Sprint(rd.Satisfied),
		})
	}
	if rep.Reproduced {
		t.Notes = append(t.Notes, fmt.Sprintf("reproduced in %d trials via %s#%d",
			rep.Rounds, rep.Script.Site, rep.Script.Occurrence))
	}
	return t, nil
}

// verifyAll is a helper ensuring the workload/oracle invariants hold — the
// free run never satisfies an oracle (used by tests).
func verifyAll(opt Options) error {
	opt = opt.withDefaults()
	for _, s := range failures.All() {
		free := cluster.Execute(opt.Seed, nil, false, s.Workload, s.Horizon)
		if s.Oracle.Satisfied(free) {
			return fmt.Errorf("%s: oracle satisfied without fault", s.ID)
		}
	}
	return nil
}
