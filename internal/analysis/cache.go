package analysis

// Disk-backed artifact cache. Off by default; setting the
// ANDURIL_CACHE_DIR environment variable to a directory makes
// AnalyzePackagesCached reuse saved artifacts across processes: a fresh
// artifact for the same source set loads in place of re-analysis, and
// misses (no artifact, stale hash, old schema) analyze and repopulate.

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
)

// CacheEnvVar names the environment variable holding the cache directory.
const CacheEnvVar = "ANDURIL_CACHE_DIR"

var cacheHits, cacheMisses atomic.Int64

// CacheCounters reports disk-cache hits and misses since process start.
// Both stay zero while the cache is disabled.
func CacheCounters() (hits, misses int64) {
	return cacheHits.Load(), cacheMisses.Load()
}

// AnalyzePackagesCached is AnalyzePackages behind the optional disk cache.
// With ANDURIL_CACHE_DIR unset (the default) it analyzes directly; set, it
// loads a fresh artifact for dirs from the cache directory, falling back
// to analysis and saving the artifact on any miss. Cache write failures
// are non-fatal: the analysis result is returned regardless.
func AnalyzePackagesCached(dirs []string) (*Result, error) {
	cacheDir := os.Getenv(CacheEnvVar)
	if cacheDir == "" {
		return AnalyzePackages(dirs)
	}
	path := filepath.Join(cacheDir, cacheFileName(dirs))
	if res, err := LoadFor(path, dirs); err == nil {
		cacheHits.Add(1)
		return res, nil
	}
	cacheMisses.Add(1)
	res, err := AnalyzePackages(dirs)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cacheDir, 0o755); err == nil {
		_ = res.Save(path)
	}
	return res, nil
}

// cacheFileName keys the artifact file by the analyzed directory set; the
// SourceHash inside the artifact handles content staleness.
func cacheFileName(dirs []string) string {
	h := sha256.Sum256([]byte(strings.Join(dirs, "\x00")))
	return "analysis-" + hex.EncodeToString(h[:8]) + ".json"
}
