package analysis

import "testing"

// analyzeDir is a test helper with per-directory caching.
var cache = map[string]*Result{}

func analyzeDir(t *testing.T, dir string) *Result {
	t.Helper()
	if res, ok := cache[dir]; ok {
		return res
	}
	res, err := AnalyzePackages([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	cache[dir] = res
	return res
}

// chainCase asserts a causal path exists from a root-cause fault site to a
// symptom log template.
type chainCase struct {
	site     string
	template string
}

func checkChains(t *testing.T, res *Result, cases []chainCase) {
	t.Helper()
	for _, c := range cases {
		if !pathExists(t, res.Graph, c.site, c.template) {
			t.Errorf("no causal path from %s to %q", c.site, c.template)
		}
	}
}

// TestDFSCausalChains covers the seven HDFS-analog failures' root chains.
func TestDFSCausalChains(t *testing.T) {
	res := analyzeDir(t, "internal/sys/dfs")
	checkChains(t, res, []chainCase{
		// f5: failed edit roll. (The second symptom — the latched
		// "Skipping checkpoint" — is absence causality: checkpointBusy is
		// never CLEARED on the error path. Static analysis cannot see
		// absent statements (§6), so only the first message anchors the
		// site; the dynamic feedback covers the rest.)
		{"dfs.namenode.read-edits", "Failed to roll edit log"},
		// f6: interrupted transfer -> finalize-anyway warning.
		{"dfs.secondary.upload-image", "Exception during image transfer to namenode"},
		// f7: recovery fault -> lease monitor's failure log (cross-actor).
		{"dfs.datanode.recover-finalize", "Block recovery failed for %s: %s"},
		// f8: connect fault -> pipeline failure log.
		{"dfs.datanode.connect-downstream", "Failed to build pipeline for blk_%d at %s"},
		// f9: refetch fault -> stale-token retry log.
		{"dfs.client.refetch-token", "Failed to refetch block token for blk_%d, retrying with stale token"},
		// f10: volume fault -> datanode startup abort.
		{"dfs.datanode.init-storage", "DataNode %s failed to start: no valid volumes"},
		// f11: getblocks fault -> balancer crash.
		{"dfs.balancer.get-blocks", "Unhandled exception in balancer: %s"},
	})
}

// TestTablestoreCausalChains covers the six HBase-analog failures.
func TestTablestoreCausalChains(t *testing.T) {
	res := analyzeDir(t, "internal/sys/tablestore")
	checkChains(t, res, []chainCase{
		// f12: header fault -> empty-WAL replication stall.
		{"ts.wal.write-header", "Failed to write WAL header of %s: %s"},
		// f13: interrupted step -> failed flag -> later rejection (jump).
		{"ts.proc.step-wait", "Procedure %s was interrupted, marking procedure as failed"},
		{"ts.proc.step-wait", "Procedure executor in failed state, rejecting procedure %s"},
		// f14: decode fault -> conversion warning.
		{"ts.region.decode-mutation", "Failed to convert mutation %d in batch for %s"},
		// f15: chunk-read fault -> resubmit log (cross-actor via split-failed).
		{"ts.split.read-walchunk", "Error reading WAL chunk %s on %s"},
		// f16: copy fault -> opaque abort.
		{"ts.repl.copy-queue", "Aborting region server %s: unexpected exception"},
		// f17: stream fault -> broken-stream log and (via flags) flush timeout.
		{"ts.wal.stream-write", "WAL stream broken on %s, %d unacked appends pending"},
	})
}

// TestMQCausalChains covers the three Kafka-analog failures.
func TestMQCausalChains(t *testing.T) {
	res := analyzeDir(t, "internal/sys/mq")
	checkChains(t, res, []chainCase{
		// f18: checkpoint fault -> crash/restart log.
		{"mq.streams.checkpoint", "Stream task crashed while checkpointing: %s; restarting task"},
		// f19: stop fault -> blocked herder log.
		{"mq.connect.stop-connector", "Connector %s failed to stop: %s; herder waiting for clean shutdown"},
		// f20: conversion fault -> tolerated-drop log.
		{"mq.mm2.convert-record", "Mirror dropped record at offset %d (errors.tolerance=all)"},
	})
}

// TestKVStoreCausalChains covers the two Cassandra-analog failures.
func TestKVStoreCausalChains(t *testing.T) {
	res := analyzeDir(t, "internal/sys/kvstore")
	checkChains(t, res, []chainCase{
		// f21: stream task fault -> proxy corruption logs.
		{"cs.stream.file-task", "File stream task %s failed for %s; channel proxy left in invalid state"},
		{"cs.stream.file-task", "Stream session %s failed: channel proxy in invalid state"},
		// f22: snapshot fault -> swallowed failure log.
		{"cs.repair.make-snapshot", "Snapshot for %s failed on %s"},
	})
}

// TestToyCausalChains covers the two-fault demo service.
func TestToyCausalChains(t *testing.T) {
	res := analyzeDir(t, "internal/sys/toy")
	checkChains(t, res, []chainCase{
		{"toy.scrub-store", "store scrub failed, running degraded"},
		// ping fault reaches the fatal log; scrub fault reaches it too via
		// the degraded-condition jump.
		{"toy.ping-peer", "service entered unrecoverable state: degraded store with unreachable peer"},
		{"toy.scrub-store", "service entered unrecoverable state: degraded store with unreachable peer"},
	})
}

// TestAllSystemsHaveReasonableGraphs sanity-checks graph sizes.
func TestAllSystemsHaveReasonableGraphs(t *testing.T) {
	for dir, minSites := range map[string]int{
		"internal/sys/zk":         15,
		"internal/sys/dfs":        25,
		"internal/sys/tablestore": 18,
		"internal/sys/mq":         18,
		"internal/sys/kvstore":    9,
	} {
		res := analyzeDir(t, dir)
		if len(res.Sites) < minSites {
			t.Errorf("%s: only %d sites", dir, len(res.Sites))
		}
		if res.Graph.NumEdges() < res.Graph.NumNodes()/2 {
			t.Errorf("%s: sparse graph %d nodes %d edges", dir, res.Graph.NumNodes(), res.Graph.NumEdges())
		}
		if len(res.Graph.FaultSites()) != len(res.Sites) {
			t.Errorf("%s: graph sites %d != discovered %d", dir, len(res.Graph.FaultSites()), len(res.Sites))
		}
	}
}
