// Package analysis is ANDURIL's Instrumenter retargeted to Go (§4).
//
// The original builds a static causal graph from JVM bytecode with Soot.
// Here the target systems are Go packages, so the analyzer parses their
// source with go/parser and reasons about the Go idioms that play the role
// of the JVM constructs:
//
//   - fault sites are calls into the simulated environment (Disk/Net
//     methods, FI.Reach) carrying a constant site-ID string — the analog of
//     library calls that may throw (external-exception nodes);
//   - `if err != nil { ... }` blocks are the catch blocks (handler nodes),
//     and the calls whose error was assigned to err are the throw sites;
//   - error-returning functions propagate faults to their callers
//     (internal-exception nodes), computed as a fixpoint over the call
//     graph — the interprocedural exception analysis of §4.1;
//   - cross-actor propagation flows through the simnet RPC idiom: a fault
//     escaping a message handler reaches the sender's continuation via
//     respond(err), matched by the constant message-type string — the
//     analog of the paper's Callable/Future analysis;
//   - other if-conditions become condition nodes whose causally-prior
//     statements are found by Pensieve-style jumping: any assignment in the
//     package set to a variable or field with the same name.
//
// The product is the causal graph of §4.1: source nodes are injectable
// fault sites, sink nodes are log statements.
package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"anduril/internal/graph"
	"anduril/internal/inject"
)

// SiteInfo describes one static fault site found in the source.
type SiteInfo struct {
	ID   string
	Kind inject.Kind
	File string
	Line int
	Func string
}

// LogInfo describes one log statement found in the source.
type LogInfo struct {
	Template string
	File     string
	Line     int
	Func     string
}

// Timing breaks down where analysis time went — the columns of Table 7.
type Timing struct {
	Exception time.Duration // interprocedural error-flow fixpoint
	Slicing   time.Duration // condition slicing (jump-strategy indexing)
	Chaining  time.Duration // causal-chain/graph assembly
	Total     time.Duration
}

// Result is the full output of analyzing one target system.
type Result struct {
	Graph  *graph.Graph
	Sites  []SiteInfo
	Logs   []LogInfo
	LOC    int
	Timing Timing

	// SourceHash is a content hash over the analyzed source files; saved
	// artifacts carry it so a load can detect stale analyses (see
	// artifact.go).
	SourceHash string

	siteKinds map[string]inject.Kind

	// cache holds derived artifacts computed on first use and shared by
	// every reproduction over this Result. It sits behind a pointer so
	// Result values stay copyable (copies share the cache — they describe
	// the same analysis). Both artifacts are pure functions of the
	// analysis, so caching changes nothing observable — it only stops
	// each Reproduce call from recomputing a BFS table and recompiling
	// template regexps.
	cache *derivedCache
}

// derivedCache memoizes per-Result derived artifacts. Guarded by a mutex
// because parallel evaluation shares Targets (and thus Results) across
// goroutines.
type derivedCache struct {
	mu      sync.Mutex
	dist    map[string]map[string]int
	matcher *Matcher
}

// SiteKind returns the fault kind of a static site.
func (r *Result) SiteKind(id string) (inject.Kind, bool) {
	k, ok := r.siteKinds[id]
	return k, ok
}

// SiteDistances returns the L_{i,k} site→template distance table of the
// causal graph, computed once per Result. The returned map is shared:
// callers must treat it as read-only.
func (r *Result) SiteDistances() map[string]map[string]int {
	c := r.cache
	if c == nil {
		// Zero-value Result (hand-built in tests): compute uncached.
		return r.Graph.SiteDistances()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dist == nil {
		c.dist = r.Graph.SiteDistances()
	}
	return c.dist
}

// Matcher returns the template matcher over this result's log templates,
// compiled once per Result and safe for concurrent use (Match does not
// mutate the matcher).
func (r *Result) Matcher() *Matcher {
	c := r.cache
	if c == nil {
		return r.newMatcher()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.matcher == nil {
		c.matcher = r.newMatcher()
	}
	return c.matcher
}

func (r *Result) newMatcher() *Matcher {
	templates := make([]string, len(r.Logs))
	for i, l := range r.Logs {
		templates[i] = l.Template
	}
	return NewMatcher(templates)
}

// RepoRoot locates the module root so callers can hand source directories
// to AnalyzePackages from tests and binaries alike.
func RepoRoot() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "."
	}
	// file = <root>/internal/analysis/analysis.go
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// eachSourceFile visits every non-test Go file in the given directories
// (relative to the repo root or absolute), in deterministic order: dirs as
// given, files sorted by name within each. key is the dir argument joined
// with the file name, so it is stable across machines for relative dirs.
func eachSourceFile(dirs []string, fn func(key, path string, src []byte) error) error {
	for _, dir := range dirs {
		abs := dir
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(RepoRoot(), dir)
		}
		entries, err := os.ReadDir(abs)
		if err != nil {
			return fmt.Errorf("analysis: %w", err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || filepath.Ext(name) != ".go" || isTestFile(name) {
				continue
			}
			path := filepath.Join(abs, name)
			src, err := os.ReadFile(path)
			if err != nil {
				return fmt.Errorf("analysis: %w", err)
			}
			if err := fn(filepath.ToSlash(filepath.Join(dir, name)), path, src); err != nil {
				return err
			}
		}
	}
	return nil
}

// SourceHash returns the content hash over every source file the analyzer
// would parse in dirs — the staleness key for saved artifacts.
func SourceHash(dirs []string) (string, error) {
	h := sha256.New()
	err := eachSourceFile(dirs, func(key, _ string, src []byte) error {
		fmt.Fprintf(h, "%s\n%d\n", key, len(src))
		h.Write(src)
		return nil
	})
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// AnalyzePackages parses every non-test Go file in the given directories
// (relative to the repo root or absolute) and builds the causal graph.
func AnalyzePackages(dirs []string) (*Result, error) {
	start := time.Now()
	fset := token.NewFileSet()
	var files []*ast.File
	loc := 0
	hasher := sha256.New()
	err := eachSourceFile(dirs, func(key, path string, src []byte) error {
		fmt.Fprintf(hasher, "%s\n%d\n", key, len(src))
		hasher.Write(src)
		f, err := parser.ParseFile(fset, path, src, 0)
		if err != nil {
			return fmt.Errorf("analysis: parse %s: %w", path, err)
		}
		files = append(files, f)
		loc += fset.File(f.Pos()).LineCount()
		return nil
	})
	if err != nil {
		return nil, err
	}

	a := newAnalyzer(fset)
	for _, f := range files {
		a.collect(f)
	}

	// Slicing index: assignments by name (the jump-strategy table).
	sliceStart := time.Now()
	a.indexAssignments()
	slicing := time.Since(sliceStart)

	// Exception analysis: escape fixpoint.
	excStart := time.Now()
	a.computeEscapes()
	exception := time.Since(excStart)

	// Chaining: emit the causal graph.
	chainStart := time.Now()
	g := a.buildGraph()
	chaining := time.Since(chainStart)

	res := &Result{
		Graph:      g,
		Sites:      a.siteList(),
		Logs:       a.logList(),
		LOC:        loc,
		SourceHash: hex.EncodeToString(hasher.Sum(nil)),
		siteKinds:  a.siteKinds,
		cache:      &derivedCache{},
	}
	res.Timing = Timing{
		Exception: exception,
		Slicing:   slicing,
		Chaining:  chaining,
		Total:     time.Since(start),
	}
	sort.Slice(res.Sites, func(i, j int) bool { return res.Sites[i].ID < res.Sites[j].ID })
	sort.Slice(res.Logs, func(i, j int) bool {
		if res.Logs[i].File != res.Logs[j].File {
			return res.Logs[i].File < res.Logs[j].File
		}
		return res.Logs[i].Line < res.Logs[j].Line
	})
	return res, nil
}

func isTestFile(name string) bool {
	return len(name) > len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}
