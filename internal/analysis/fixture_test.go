package analysis

import (
	"os"
	"path/filepath"
	"testing"

	"anduril/internal/graph"
	"anduril/internal/inject"
)

// analyzeFixture writes a synthetic source file and analyzes it.
func analyzeFixture(t *testing.T, src string) *Result {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzePackages([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

const fixtureHeader = "package fixture\n" + fixtureBody

const fixtureBody = `
type env struct {
	FI   *fiStub
	Disk *diskStub
	Net  *netStub
	Log  *logStub
}
type fiStub struct{}
func (*fiStub) Reach(site string, kind int) error { return nil }
type diskStub struct{}
func (*diskStub) Append(site, path string, b []byte) error { return nil }
func (*diskStub) Read(site, path string) ([]byte, error)   { return nil, nil }
type netStub struct{}
func (*netStub) Call(site string, msg interface{}, t int, f func(interface{}, error)) {}
func (*netStub) Send(site string, msg interface{}) error                              { return nil }
func (*netStub) Handle(node, typ, actor string, h interface{})                        {}
type logStub struct{}
func (*logStub) Infof(f string, a ...interface{})  {}
func (*logStub) Warnf(f string, a ...interface{})  {}
func (*logStub) Errorf(f string, a ...interface{}) {}
var IO, Socket int
`

func TestFixtureLocalHandler(t *testing.T) {
	res := analyzeFixture(t, fixtureHeader+`
func work(e *env) {
	if err := e.Disk.Append("fx.store.append", "f", nil); err != nil {
		e.Log.Errorf("append failed: %s", err)
	}
}
`)
	if len(res.Sites) != 1 || res.Sites[0].ID != "fx.store.append" {
		t.Fatalf("sites: %+v", res.Sites)
	}
	if k, _ := res.SiteKind("fx.store.append"); k != inject.IO {
		t.Fatalf("kind: %v", k)
	}
	if !pathExists(t, res.Graph, "fx.store.append", "append failed: %s") {
		t.Fatal("no site->handler->log path")
	}
}

func TestFixtureInterproceduralEscape(t *testing.T) {
	res := analyzeFixture(t, fixtureHeader+`
func inner(e *env) error {
	if err := e.Disk.Append("fx.deep.write", "f", nil); err != nil {
		return err
	}
	return nil
}
func middle(e *env) error { return inner(e) }
func outer(e *env) {
	if err := middle(e); err != nil {
		e.Log.Errorf("operation failed at top level")
	}
}
`)
	// The fault must flow inner -> middle -> outer's handler -> log.
	if !pathExists(t, res.Graph, "fx.deep.write", "operation failed at top level") {
		t.Fatal("no interprocedural error-flow path")
	}
}

func TestFixtureConditionJumping(t *testing.T) {
	res := analyzeFixture(t, fixtureHeader+`
type srv struct {
	pipelineDead bool
	e            *env
}
func (s *srv) process() {
	if err := s.e.Disk.Append("fx.log.append", "f", nil); err != nil {
		s.e.Log.Errorf("append broke the pipeline")
		s.pipelineDead = true
	}
}
func (s *srv) serve() {
	if s.pipelineDead {
		s.e.Log.Warnf("dropping request: pipeline unavailable")
	}
}
`)
	// The jump strategy must connect the handler's flag write to the
	// condition guarding the drop message in ANOTHER function.
	if !pathExists(t, res.Graph, "fx.log.append", "dropping request: pipeline unavailable") {
		t.Fatal("no jump-strategy path through the flag")
	}
}

func TestFixtureRPCContinuation(t *testing.T) {
	res := analyzeFixture(t, fixtureHeader+`
type peer struct{ e *env }
func (p *peer) onRequest(msg interface{}, respond func(interface{}, error)) {
	if err := p.e.Disk.Read("fx.remote.read", "f"); err != nil {
		respond(nil, err)
		return
	}
	respond("ok", nil)
}
func (p *peer) register() {
	p.e.Net.Handle("peer", "fx.request", "peer-rpc", p.onRequest)
}
func (p *peer) call() {
	p.e.Net.Call("fx.client.call", "fx.request", 100, func(payload interface{}, err error) {
		if err != nil {
			p.e.Log.Errorf("request to peer failed remotely")
		}
	})
}
`)
	// Cross-actor: the remote read fault must reach the caller's
	// continuation handler via respond().
	if !pathExists(t, res.Graph, "fx.remote.read", "request to peer failed remotely") {
		t.Fatal("no cross-actor path through respond()")
	}
	// And the caller's own socket site reaches it too.
	if !pathExists(t, res.Graph, "fx.client.call", "request to peer failed remotely") {
		t.Fatal("no direct call-site path")
	}
}

func TestFixtureReachKinds(t *testing.T) {
	res := analyzeFixture(t, fixtureHeader+`
func work(e *env) {
	if err := e.FI.Reach("fx.sock.op", Socket); err != nil {
		e.Log.Warnf("socket op failed")
	}
}
`)
	// Reach with a non-inject selector defaults to IO kind but is still a
	// site; pattern fidelity is checked by the zk tests against real code.
	if len(res.Sites) != 1 {
		t.Fatalf("sites: %+v", res.Sites)
	}
}

func TestFixtureNonSiteStringsIgnored(t *testing.T) {
	res := analyzeFixture(t, fixtureHeader+`
func work(e *env) {
	_ = e.Disk.Append("not a site id!", "f", nil)
	_ = e.Disk.Append("nodots", "f", nil)
	if err := e.Disk.Append("fx.real.site", "f", nil); err != nil {
		e.Log.Warnf("x")
	}
}
`)
	if len(res.Sites) != 1 || res.Sites[0].ID != "fx.real.site" {
		t.Fatalf("sites: %+v", res.Sites)
	}
}

func TestFixtureWrappedErrorPropagation(t *testing.T) {
	res := analyzeFixture(t, "package fixture\n\nimport \"fmt\"\n"+fixtureBody+`
func save(e *env) error {
	if err := e.Disk.Append("fx.wrap.write", "f", nil); err != nil {
		return fmt.Errorf("save failed: %w", err)
	}
	return nil
}
func run(e *env) {
	if err := save(e); err != nil {
		e.Log.Errorf("run aborted: %s", err)
	}
}
`)
	if !pathExists(t, res.Graph, "fx.wrap.write", "run aborted: %s") {
		t.Fatal("wrapped error did not propagate")
	}
	// fmt.Errorf creates a new-exception node.
	hasNew := false
	for _, n := range res.Graph.Nodes() {
		if n.Kind == graph.NewException && n.Site == "" {
			hasNew = true
		}
	}
	if !hasNew {
		t.Fatal("no new-exception node for fmt.Errorf")
	}
}

func TestFixtureIsSiteID(t *testing.T) {
	cases := map[string]bool{
		"zk.sync.append-txn": true,
		"a.b":                true,
		"nodots":             false,
		"Has.Caps":           false,
		"with space.x":       false,
		"x.y_z-w.9":          true,
		"..":                 false, // dots but empty segments — still accepted shape-wise? has len>2? ".." len 2 -> false
	}
	for s, want := range cases {
		if got := isSiteID(s); got != want {
			t.Errorf("isSiteID(%q)=%v, want %v", s, got, want)
		}
	}
}
