package analysis

import (
	"testing"

	"anduril/internal/graph"
	"anduril/internal/inject"
	"anduril/internal/logdiff"
)

func analyzeZK(t *testing.T) *Result {
	t.Helper()
	res, err := AnalyzePackages([]string{"internal/sys/zk"})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestZKSitesDiscovered(t *testing.T) {
	res := analyzeZK(t)
	want := map[string]inject.Kind{
		"zk.sync.append-txn":            inject.IO,
		"zk.sync.fsync-txnlog":          inject.IO,
		"zk.snap.create":                inject.IO,
		"zk.snap.write-body":            inject.IO,
		"zk.snap.read":                  inject.FileNotFound,
		"zk.election.send-vote":         inject.Socket,
		"zk.election.accept-connection": inject.IO,
		"zk.leader.accept-follower":     inject.Socket,
		"zk.follower.forward-request":   inject.Socket,
		"zk.client.request":             inject.Socket,
	}
	got := map[string]inject.Kind{}
	for _, s := range res.Sites {
		got[s.ID] = s.Kind
	}
	for id, kind := range want {
		if got[id] != kind {
			t.Errorf("site %s: kind=%v, want %v", id, got[id], kind)
		}
	}
	if len(res.Sites) < 15 {
		t.Errorf("only %d sites found", len(res.Sites))
	}
}

func TestZKLogsDiscovered(t *testing.T) {
	res := analyzeZK(t)
	templates := map[string]bool{}
	for _, l := range res.Logs {
		templates[l.Template] = true
	}
	for _, tmpl := range []string{
		"Severe unrecoverable error, exiting SyncRequestProcessor on myid=%d: %s",
		"Leader is serving epoch %d with %d synced followers",
		"Unexpected null datatree node restoring snapshot %s: NullPointerException",
		"Client %s request %s timed out; server unavailable",
	} {
		if !templates[tmpl] {
			t.Errorf("template not found: %q", tmpl)
		}
	}
	if len(res.Logs) < 30 {
		t.Errorf("only %d log statements found", len(res.Logs))
	}
}

// pathExists checks site -> ... -> any log node with the given template.
func pathExists(t *testing.T, g *graph.Graph, site, template string) bool {
	t.Helper()
	for _, sink := range g.LogStatements() {
		if sink.Template != template {
			continue
		}
		d := g.DistancesTo(sink.ID)
		if _, ok := d["site:"+site]; ok {
			return true
		}
	}
	return false
}

func TestF1CausalChain(t *testing.T) {
	res := analyzeZK(t)
	// The txn-log append fault must reach the pipeline-death symptom...
	if !pathExists(t, res.Graph, "zk.sync.append-txn",
		"Severe unrecoverable error, exiting SyncRequestProcessor on myid=%d: %s") {
		t.Error("no path from append-txn to pipeline death log")
	}
	// ...and, through the pipelineDead flag (jump strategy), the
	// dropped-request log behind the condition.
	if !pathExists(t, res.Graph, "zk.sync.append-txn",
		"Dropping request %s: request processor unavailable") {
		t.Error("no path from append-txn through pipelineDead condition")
	}
}

func TestF2CrossActorChain(t *testing.T) {
	res := analyzeZK(t)
	// The forward-request fault flows through the continuation handler to
	// the session-close warning...
	if !pathExists(t, res.Graph, "zk.follower.forward-request",
		"Unexpected exception causing session 0x%x close: %s") {
		t.Error("no path from forward-request to session close")
	}
	// ...and across the RPC respond() to the client's failure log.
	if !pathExists(t, res.Graph, "zk.follower.forward-request",
		"Client %s session expired; client failed with connection loss: %s") {
		t.Error("no cross-actor path from forward-request to client failure")
	}
}

func TestF3ElectionChain(t *testing.T) {
	res := analyzeZK(t)
	if !pathExists(t, res.Graph, "zk.election.accept-connection",
		"Exception while listening for election connections on myid=%d: %s; connection manager exiting") {
		t.Error("no path from election accept to listener death")
	}
}

func TestF4SnapshotChain(t *testing.T) {
	res := analyzeZK(t)
	if !pathExists(t, res.Graph, "zk.snap.write-body",
		"Error while taking snapshot on myid=%d: %s") {
		t.Error("no path from snapshot body write to snapshot error")
	}
}

func TestGraphHasAllNodeKinds(t *testing.T) {
	res := analyzeZK(t)
	kinds := map[graph.Kind]int{}
	for _, n := range res.Graph.Nodes() {
		kinds[n.Kind]++
	}
	for _, k := range []graph.Kind{
		graph.Location, graph.Condition, graph.Invocation, graph.Handler,
		graph.InternalException, graph.ExternalException,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %v nodes in graph", k)
		}
	}
	if res.Graph.NumEdges() < 100 {
		t.Errorf("suspiciously small graph: %d edges", res.Graph.NumEdges())
	}
}

func TestTimingPopulated(t *testing.T) {
	res := analyzeZK(t)
	if res.Timing.Total <= 0 {
		t.Error("total timing not recorded")
	}
	if res.LOC < 300 {
		t.Errorf("LOC=%d too small", res.LOC)
	}
}

func TestInferredSitesSubset(t *testing.T) {
	res := analyzeZK(t)
	// Inferred sites for the f1 symptom must include the root cause but
	// not every site in the system.
	templates := map[string]bool{
		"Severe unrecoverable error, exiting SyncRequestProcessor on myid=%d: %s": true,
	}
	inferred := res.Graph.ReachableSites(templates)
	found := false
	for _, s := range inferred {
		if s == "zk.sync.append-txn" {
			found = true
		}
	}
	if !found {
		t.Error("root-cause site not in inferred set")
	}
}

func TestMatcher(t *testing.T) {
	m := NewMatcher([]string{
		"Committing zxid=0x%x",
		"Leader is serving epoch %d with %d synced followers",
		"plain message",
	})
	cases := []struct {
		msg  string
		want string
	}{
		{"Committing zxid=0x4", "Committing zxid=0x%x"},
		{"Leader is serving epoch 1 with 2 synced followers", "Leader is serving epoch %d with %d synced followers"},
		{"plain message", "plain message"},
	}
	for _, c := range cases {
		got := m.Match(logdiff.Sanitize(c.msg))
		if len(got) != 1 || got[0] != c.want {
			t.Errorf("Match(%q)=%v, want [%s]", c.msg, got, c.want)
		}
	}
	if got := m.Match(logdiff.Sanitize("unrelated text")); len(got) != 0 {
		t.Errorf("unrelated matched: %v", got)
	}
}

func TestMatcherAmbiguity(t *testing.T) {
	m := NewMatcher([]string{"op %s failed", "op write failed"})
	got := m.Match(logdiff.Sanitize("op write failed"))
	if len(got) != 2 {
		t.Errorf("expected both templates to match, got %v", got)
	}
}
