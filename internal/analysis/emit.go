package analysis

import (
	"fmt"
	"go/ast"
	"path/filepath"

	"anduril/internal/graph"
)

// emitExpr walks an expression, emitting causal-graph nodes and edges for
// the calls it contains, and returns the error sources the expression can
// produce (used when the expression is assigned to an error variable).
func (b *builder) emitExpr(expr ast.Expr, ctx *buildCtx) []gsource {
	if expr == nil {
		return nil
	}
	switch e := expr.(type) {
	case *ast.CallExpr:
		return b.emitCall(e, ctx)
	case *ast.FuncLit:
		inner := *ctx
		inner.errSources = make(map[string][]gsource)
		b.walkBlock(e.Body, &inner)
		return nil
	case *ast.BinaryExpr:
		srcs := b.emitExpr(e.X, ctx)
		return append(srcs, b.emitExpr(e.Y, ctx)...)
	case *ast.UnaryExpr:
		return b.emitExpr(e.X, ctx)
	case *ast.ParenExpr:
		return b.emitExpr(e.X, ctx)
	case *ast.Ident:
		// An error identifier used as a value passes its sources along.
		if isErrName(e.Name) {
			return b.sourcesOf(e.Name, ctx)
		}
		return nil
	case *ast.CompositeLit:
		var srcs []gsource
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				srcs = append(srcs, b.emitExpr(kv.Value, ctx)...)
			} else {
				srcs = append(srcs, b.emitExpr(elt, ctx)...)
			}
		}
		return srcs
	case *ast.SelectorExpr, *ast.BasicLit, *ast.IndexExpr, *ast.SliceExpr, *ast.TypeAssertExpr, *ast.StarExpr, *ast.KeyValueExpr:
		return nil
	}
	return nil
}

// emitCall classifies one call expression and emits the matching nodes.
func (b *builder) emitCall(call *ast.CallExpr, ctx *buildCtx) []gsource {
	name, _ := calleeName(call)
	pos := b.a.pos(call)
	posStr := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)

	// Log statement: a sink location node.
	if isLogCall(call, name) && len(call.Args) > 0 {
		if tmpl, ok := constString(call.Args[0]); ok {
			id := b.ensure(graph.Node{ID: nodeLogID(pos), Kind: graph.Location,
				Template: tmpl, Pos: posStr, Func: ctx.fn.id})
			b.edge(nodeInvID(ctx.fn.id), id)
			if ctx.handler != "" {
				b.edge(ctx.handler, id)
			}
			for _, c := range ctx.conds {
				b.edge(c, id)
			}
			// Arguments may mention error values; they do not add edges.
			return nil
		}
	}

	// Environment fault site.
	if siteID, _, ok := classifySite(call); ok {
		sid := nodeSiteID(siteID)
		if ctx.fn.returnsError {
			b.edge(sid, nodeIexcID(ctx.fn.id))
		}
		srcs := []gsource{{node: sid}}

		// RPC with continuation: wire cross-actor error flow.
		if name == "Call" {
			b.emitRPC(call, ctx, sid, posStr)
			return srcs
		}
		// One-way send: delivery causality to the registered handlers.
		if name == "Send" {
			cl := b.ensure(graph.Node{ID: nodeCallID(pos), Kind: graph.Location, Pos: posStr, Func: ctx.fn.id})
			b.edge(nodeInvID(ctx.fn.id), cl)
			if ctx.handler != "" {
				b.edge(ctx.handler, cl)
			}
			for _, c := range ctx.conds {
				b.edge(c, cl)
			}
			for _, hf := range b.matchedHandlers(call) {
				b.edge(cl, nodeInvID(hf))
			}
		}
		// Remaining args may contain nested calls (payload builders).
		for _, arg := range call.Args[1:] {
			b.emitExpr(arg, ctx)
		}
		return srcs
	}

	// Error constructors: new-exception nodes.
	if (name == "Errorf" || name == "New") && (receiverIdent(call) == "fmt" || receiverIdent(call) == "errors") {
		id := b.ensure(graph.Node{ID: nodeNewID(pos), Kind: graph.NewException, Pos: posStr, Func: ctx.fn.id})
		srcs := []gsource{{node: id}}
		// fmt.Errorf("...: %w", err) propagates the wrapped error's sources.
		for _, arg := range call.Args {
			srcs = append(srcs, b.emitExpr(arg, ctx)...)
		}
		return srcs
	}

	// respond(payload, err)-style throw through an RPC reply.
	if (name == "respond" || name == "cont" || name == "finish") && len(call.Args) >= 2 {
		if !isNilExpr(call.Args[1]) {
			for _, src := range b.emitExpr(call.Args[1], ctx) {
				b.edge(src.node, nodeIexcID(ctx.fn.id))
			}
		}
		b.emitExpr(call.Args[0], ctx)
		return nil
	}

	// Internal call candidate.
	if ids, ok := b.internalTargets(name); ok {
		cl := b.ensure(graph.Node{ID: nodeCallID(pos), Kind: graph.Location, Pos: posStr, Func: ctx.fn.id})
		b.edge(nodeInvID(ctx.fn.id), cl)
		if ctx.handler != "" {
			b.edge(ctx.handler, cl)
		}
		for _, c := range ctx.conds {
			b.edge(c, cl)
		}
		var srcs []gsource
		for _, id := range ids {
			b.edge(cl, nodeInvID(id))
			// Error propagation: callee faults surface here and can flow
			// onward through this function (return or respond).
			b.edge(nodeIexcID(id), nodeIexcID(ctx.fn.id))
			srcs = append(srcs, gsource{node: nodeIexcID(id)})
		}
		for _, arg := range call.Args {
			b.emitExpr(arg, ctx)
		}
		return srcs
	}

	// Unknown callee (library call, closure variable, ...): still walk args.
	var srcs []gsource
	for _, arg := range call.Args {
		srcs = append(srcs, b.emitExpr(arg, ctx)...)
	}
	return srcs
}

// emitRPC handles Net.Call(site, msg, timeout, continuation): the
// continuation's error parameter is fed by the call's own fault site and by
// faults escaping the remote handlers for the message type — the paper's
// cross-thread exception propagation (§4.1).
func (b *builder) emitRPC(call *ast.CallExpr, ctx *buildCtx, siteNode, posStr string) {
	contSrcs := []gsource{{node: siteNode}}
	for _, hf := range b.matchedHandlers(call) {
		contSrcs = append(contSrcs, gsource{node: nodeIexcID(hf)})
	}
	// Delivery causality for the request itself.
	pos := b.a.pos(call)
	cl := b.ensure(graph.Node{ID: nodeCallID(pos), Kind: graph.Location, Pos: posStr, Func: ctx.fn.id})
	b.edge(nodeInvID(ctx.fn.id), cl)
	if ctx.handler != "" {
		b.edge(ctx.handler, cl)
	}
	for _, c := range ctx.conds {
		b.edge(c, cl)
	}
	for _, hf := range b.matchedHandlers(call) {
		b.edge(cl, nodeInvID(hf))
	}

	for _, arg := range call.Args[1:] {
		if fl, ok := arg.(*ast.FuncLit); ok {
			inner := *ctx
			inner.errSources = make(map[string][]gsource)
			inner.contSrcs = contSrcs
			inner.contParam = errParamName(fl)
			b.walkBlock(fl.Body, &inner)
			continue
		}
		b.emitExpr(arg, ctx)
	}
}

// matchedHandlers finds the handler functions registered for any constant
// message-type string mentioned in the call's arguments.
func (b *builder) matchedHandlers(call *ast.CallExpr) []string {
	var out []string
	seen := map[string]bool{}
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			lit, ok := n.(*ast.BasicLit)
			if !ok {
				return true
			}
			s, ok := constString(lit)
			if !ok {
				return true
			}
			for _, hname := range b.a.handlers[s] {
				for _, id := range b.a.funcsByName[hname] {
					if !seen[id] {
						seen[id] = true
						out = append(out, id)
					}
				}
			}
			return true
		})
	}
	return out
}

// internalTargets resolves a bare callee name against the analyzed
// functions.
func (b *builder) internalTargets(name string) ([]string, bool) {
	ids := b.a.funcsByName[name]
	return ids, len(ids) > 0
}

// errParamName returns the name of the error-typed parameter of a func
// literal (the RPC continuation signature is (payload interface{}, err
// error)).
func errParamName(fl *ast.FuncLit) string {
	if fl.Type.Params == nil {
		return ""
	}
	for _, p := range fl.Type.Params.List {
		if id, ok := p.Type.(*ast.Ident); ok && id.Name == "error" {
			if len(p.Names) > 0 {
				return p.Names[0].Name
			}
		}
	}
	return ""
}

func isNilExpr(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
