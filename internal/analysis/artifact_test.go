package analysis

// Round-trip and staleness tests for serialized analysis artifacts, plus
// the disk-backed cache.

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestArtifactRoundTrip saves a real analysis and reloads it: the loaded
// Result must be deep-equal in every serialized dimension, and the rebuilt
// graph must reproduce the same distance table the explorer consumes.
func TestArtifactRoundTrip(t *testing.T) {
	res, err := AnalyzePackages([]string{"internal/sys/zk"})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "zk.json")
	if err := res.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	if got.SourceHash != res.SourceHash || got.LOC != res.LOC {
		t.Fatalf("scalars diverge: hash %q/%q loc %d/%d", got.SourceHash, res.SourceHash, got.LOC, res.LOC)
	}
	if !reflect.DeepEqual(got.Sites, res.Sites) {
		t.Fatal("sites diverge after round trip")
	}
	if !reflect.DeepEqual(got.Logs, res.Logs) {
		t.Fatal("logs diverge after round trip")
	}
	if got.Timing != res.Timing {
		t.Fatalf("timing diverges: %+v vs %+v", got.Timing, res.Timing)
	}
	if !reflect.DeepEqual(got.siteKinds, res.siteKinds) {
		t.Fatal("site kinds diverge after round trip")
	}
	if got.Graph.NumNodes() != res.Graph.NumNodes() || got.Graph.NumEdges() != res.Graph.NumEdges() {
		t.Fatalf("graph size diverges: %d/%d nodes, %d/%d edges",
			got.Graph.NumNodes(), res.Graph.NumNodes(), got.Graph.NumEdges(), res.Graph.NumEdges())
	}
	if !reflect.DeepEqual(got.Graph.Nodes(), res.Graph.Nodes()) {
		t.Fatal("graph nodes diverge after round trip")
	}
	if !reflect.DeepEqual(got.Graph.Edges(), res.Graph.Edges()) {
		t.Fatal("graph edges diverge after round trip")
	}
	// The consumer-facing contract: identical L_{i,k} distance tables.
	if !reflect.DeepEqual(got.Graph.SiteDistances(), res.Graph.SiteDistances()) {
		t.Fatal("site distances diverge after round trip")
	}
}

// A stale artifact (source hash mismatch) must be rejected by LoadFor with
// ErrArtifactStale, and a wrong schema version by Load with
// ErrArtifactVersion.
func TestArtifactStaleAndVersion(t *testing.T) {
	dirs := []string{"internal/sys/toy"}
	res, err := AnalyzePackages(dirs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "toy.json")

	stale := *res
	stale.SourceHash = "0000deadbeef"
	if err := stale.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFor(path, dirs); !errors.Is(err, ErrArtifactStale) {
		t.Fatalf("stale artifact: got %v, want ErrArtifactStale", err)
	}

	if err := res.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFor(path, dirs); err != nil {
		t.Fatalf("fresh artifact rejected: %v", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := []byte(`{"version": 999}`)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrArtifactVersion) {
		t.Fatalf("version mismatch: got %v, want ErrArtifactVersion", err)
	}
	_ = data
}

// SourceHash must change when any analyzed file's content changes.
func TestSourceHashTracksContent(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "x.go")
	if err := os.WriteFile(file, []byte("package x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	h1, err := SourceHash([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(file, []byte("package x // changed\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	h2, err := SourceHash([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Fatal("hash unchanged after source edit")
	}
	// Test files are invisible to the analyzer and so to the hash.
	if err := os.WriteFile(filepath.Join(dir, "x_test.go"), []byte("package x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	h3, err := SourceHash([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h3 {
		t.Fatal("hash changed after adding a test file")
	}
}

// TestAnalyzePackagesCached exercises the disk cache end to end: first
// call misses and populates, second call hits and returns an equivalent
// result, and a source edit invalidates the artifact.
func TestAnalyzePackagesCached(t *testing.T) {
	srcDir := t.TempDir()
	writeSrc := func(body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(srcDir, "m.go"), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeSrc("package m\n\nfunc F() {}\n")
	dirs := []string{srcDir}

	t.Setenv(CacheEnvVar, t.TempDir())
	h0, m0 := CacheCounters()

	first, err := AnalyzePackagesCached(dirs)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := CacheCounters(); h != h0 || m != m0+1 {
		t.Fatalf("after cold call: hits %d misses %d (want %d, %d)", h, m, h0, m0+1)
	}

	second, err := AnalyzePackagesCached(dirs)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := CacheCounters(); h != h0+1 || m != m0+1 {
		t.Fatalf("after warm call: hits %d misses %d (want %d, %d)", h, m, h0+1, m0+1)
	}
	if second.SourceHash != first.SourceHash || second.LOC != first.LOC ||
		!reflect.DeepEqual(second.Sites, first.Sites) {
		t.Fatal("cached result diverges from fresh analysis")
	}

	// Editing the source must invalidate the artifact: a new miss.
	writeSrc("package m\n\nfunc F() {}\n\nfunc G() {}\n")
	if _, err := AnalyzePackagesCached(dirs); err != nil {
		t.Fatal(err)
	}
	if h, m := CacheCounters(); h != h0+1 || m != m0+2 {
		t.Fatalf("after stale call: hits %d misses %d (want %d, %d)", h, m, h0+1, m0+2)
	}
}

// With the env var unset the cache is bypassed entirely.
func TestAnalyzeCacheDisabledByDefault(t *testing.T) {
	t.Setenv(CacheEnvVar, "")
	h0, m0 := CacheCounters()
	if _, err := AnalyzePackagesCached([]string{"internal/sys/toy"}); err != nil {
		t.Fatal(err)
	}
	if h, m := CacheCounters(); h != h0 || m != m0 {
		t.Fatal("cache counters moved while the cache was disabled")
	}
}
