package analysis

// Serializable analysis artifacts: a Result saved as versioned JSON, keyed
// by a content hash of the analyzed sources. Static analysis is by far the
// most expensive part of target construction (Table 7), and its output is
// a pure function of the source files — so an artifact saved once can
// stand in for re-analysis in every later run, and the embedded SourceHash
// makes staleness detection exact rather than timestamp-guesswork.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"anduril/internal/graph"
	"anduril/internal/inject"
)

// ArtifactVersion is the artifact schema version. Load rejects artifacts
// written with a different version — bump it whenever Result's serialized
// shape changes.
const ArtifactVersion = 1

// Artifact load failure modes, distinguishable with errors.Is.
var (
	ErrArtifactVersion = errors.New("analysis: artifact schema version mismatch")
	ErrArtifactStale   = errors.New("analysis: artifact stale (source hash mismatch)")
)

// artifact is the JSON form of a Result. The graph flattens to sorted node
// and edge lists; siteKinds is not stored because it is derivable from
// Sites (the analyzer populates both from the same site records).
type artifact struct {
	Version    int          `json:"version"`
	SourceHash string       `json:"source_hash"`
	Nodes      []graph.Node `json:"nodes"`
	Edges      [][2]string  `json:"edges"`
	Sites      []SiteInfo   `json:"sites"`
	Logs       []LogInfo    `json:"logs"`
	LOC        int          `json:"loc"`
	Timing     Timing       `json:"timing"`
}

// Save writes the Result as a versioned JSON artifact. The write is
// atomic: a temp file in the destination directory renamed into place, so
// concurrent readers never observe a torn artifact.
func (r *Result) Save(path string) error {
	art := artifact{
		Version:    ArtifactVersion,
		SourceHash: r.SourceHash,
		Edges:      r.Graph.Edges(),
		Sites:      r.Sites,
		Logs:       r.Logs,
		LOC:        r.LOC,
		Timing:     r.Timing,
	}
	for _, n := range r.Graph.Nodes() {
		art.Nodes = append(art.Nodes, *n)
	}
	data, err := json.MarshalIndent(&art, "", "\t")
	if err != nil {
		return fmt.Errorf("analysis: marshal artifact: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".artifact-*")
	if err != nil {
		return fmt.Errorf("analysis: save artifact: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("analysis: save artifact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("analysis: save artifact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("analysis: save artifact: %w", err)
	}
	return nil
}

// Load reads a saved artifact and rebuilds the full Result, including the
// causal graph and the site-kind index. It fails with ErrArtifactVersion
// when the artifact was written under a different schema version.
func Load(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: load artifact: %w", err)
	}
	var art artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("analysis: load artifact %s: %w", path, err)
	}
	if art.Version != ArtifactVersion {
		return nil, fmt.Errorf("%w: artifact %s has version %d, want %d",
			ErrArtifactVersion, path, art.Version, ArtifactVersion)
	}
	g := graph.New()
	for _, n := range art.Nodes {
		g.AddNode(n)
	}
	for _, e := range art.Edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("analysis: load artifact %s: %w", path, err)
		}
	}
	res := &Result{
		Graph:      g,
		Sites:      art.Sites,
		Logs:       art.Logs,
		LOC:        art.LOC,
		Timing:     art.Timing,
		SourceHash: art.SourceHash,
		siteKinds:  make(map[string]inject.Kind, len(art.Sites)),
		cache:      &derivedCache{},
	}
	for _, s := range art.Sites {
		res.siteKinds[s.ID] = s.Kind
	}
	return res, nil
}

// LoadFor loads an artifact and validates it against the current sources
// in dirs: a SourceHash mismatch returns ErrArtifactStale, so callers fall
// back to a fresh AnalyzePackages instead of trusting an outdated graph.
func LoadFor(path string, dirs []string) (*Result, error) {
	res, err := Load(path)
	if err != nil {
		return nil, err
	}
	current, err := SourceHash(dirs)
	if err != nil {
		return nil, err
	}
	if res.SourceHash != current {
		return nil, fmt.Errorf("%w: artifact %s", ErrArtifactStale, path)
	}
	return res, nil
}
