package analysis

import (
	"regexp"
	"strings"

	"anduril/internal/logdiff"
)

// Matcher maps rendered (and sanitized) log messages back to the static
// log templates they came from. The explorer needs this to tie observables
// from a production log file — where only rendered text is available — to
// sink nodes in the causal graph.
type Matcher struct {
	templates []templatePattern
}

type templatePattern struct {
	template string
	prefix   string   // sanitized literal before the first verb
	parts    []string // sanitized literal segments between verbs
	exact    bool     // no format verbs at all
}

var verbRe = regexp.MustCompile(`%[#+\-0-9.\[\]]*[a-zA-Z]`)

// NewMatcher compiles the given templates.
func NewMatcher(templates []string) *Matcher {
	m := &Matcher{}
	seen := map[string]bool{}
	for _, t := range templates {
		if seen[t] {
			continue
		}
		seen[t] = true
		m.templates = append(m.templates, compileTemplate(t))
	}
	return m
}

func compileTemplate(t string) templatePattern {
	locs := verbRe.FindAllStringIndex(t, -1)
	if len(locs) == 0 {
		return templatePattern{template: t, prefix: logdiff.Sanitize(t), exact: true}
	}
	var parts []string
	prev := 0
	for _, loc := range locs {
		parts = append(parts, logdiff.Sanitize(t[prev:loc[0]]))
		prev = loc[1]
	}
	parts = append(parts, logdiff.Sanitize(t[prev:]))
	return templatePattern{template: t, prefix: parts[0], parts: parts[1:]}
}

// Match returns the templates the sanitized message could have been
// rendered from.
func (m *Matcher) Match(sanitizedMsg string) []string {
	var out []string
	for _, p := range m.templates {
		if p.matches(sanitizedMsg) {
			out = append(out, p.template)
		}
	}
	return out
}

func (p templatePattern) matches(msg string) bool {
	if p.exact {
		return msg == p.prefix
	}
	if !strings.HasPrefix(msg, p.prefix) {
		return false
	}
	rest := msg[len(p.prefix):]
	for i, part := range p.parts {
		last := i == len(p.parts)-1
		if part == "" {
			if last {
				return true // trailing verb swallows the rest
			}
			continue
		}
		if last {
			return strings.HasSuffix(rest, part)
		}
		idx := strings.Index(rest, part)
		if idx < 0 {
			return false
		}
		rest = rest[idx+len(part):]
	}
	return true
}
