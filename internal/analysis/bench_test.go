package analysis

import (
	"os"
	"testing"
)

// BenchmarkAnalyzeSystem measures the Instrumenter end to end on each
// target system (the Table 7 totals, as a Go benchmark).
func BenchmarkAnalyzeSystem(b *testing.B) {
	for _, dir := range []string{
		"internal/sys/zk", "internal/sys/dfs", "internal/sys/tablestore",
		"internal/sys/mq", "internal/sys/kvstore",
	} {
		b.Run(dir[len("internal/sys/"):], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := AnalyzePackages([]string{dir}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyzeCached compares a cold analysis (cache populated on the
// first iteration, then forcibly invalidated every round by analyzing
// uncached) against warm artifact loads from the disk cache.
func BenchmarkAnalyzeCached(b *testing.B) {
	dirs := []string{"internal/sys/zk"}
	b.Run("cold", func(b *testing.B) {
		os.Unsetenv(CacheEnvVar)
		for i := 0; i < b.N; i++ {
			if _, err := AnalyzePackagesCached(dirs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		os.Setenv(CacheEnvVar, dir)
		defer os.Unsetenv(CacheEnvVar)
		if _, err := AnalyzePackagesCached(dirs); err != nil { // populate
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := AnalyzePackagesCached(dirs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSiteDistances measures the L_{i,k} table computation over the
// largest graph.
func BenchmarkSiteDistances(b *testing.B) {
	res, err := AnalyzePackages([]string{"internal/sys/dfs"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Graph.SiteDistances()
	}
}

// BenchmarkMatcher measures observable-to-template matching.
func BenchmarkMatcher(b *testing.B) {
	res, err := AnalyzePackages([]string{"internal/sys/tablestore"})
	if err != nil {
		b.Fatal(err)
	}
	var templates []string
	for _, l := range res.Logs {
		templates = append(templates, l.Template)
	}
	m := NewMatcher(templates)
	msg := "WAL stream broken on rs#, # unacked appends pending"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(msg)
	}
}
