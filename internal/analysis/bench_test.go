package analysis

import "testing"

// BenchmarkAnalyzeSystem measures the Instrumenter end to end on each
// target system (the Table 7 totals, as a Go benchmark).
func BenchmarkAnalyzeSystem(b *testing.B) {
	for _, dir := range []string{
		"internal/sys/zk", "internal/sys/dfs", "internal/sys/tablestore",
		"internal/sys/mq", "internal/sys/kvstore",
	} {
		b.Run(dir[len("internal/sys/"):], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := AnalyzePackages([]string{dir}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSiteDistances measures the L_{i,k} table computation over the
// largest graph.
func BenchmarkSiteDistances(b *testing.B) {
	res, err := AnalyzePackages([]string{"internal/sys/dfs"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Graph.SiteDistances()
	}
}

// BenchmarkMatcher measures observable-to-template matching.
func BenchmarkMatcher(b *testing.B) {
	res, err := AnalyzePackages([]string{"internal/sys/tablestore"})
	if err != nil {
		b.Fatal(err)
	}
	var templates []string
	for _, l := range res.Logs {
		templates = append(templates, l.Template)
	}
	m := NewMatcher(templates)
	msg := "WAL stream broken on rs#, # unacked appends pending"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(msg)
	}
}
