package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"

	"anduril/internal/graph"
)

// Node ID constructors. IDs are deterministic (file:line based) so the two
// analysis passes agree on identities.
func nodeHandlerID(pos token.Position) string {
	return fmt.Sprintf("handler:%s:%d", filepath.Base(pos.Filename), pos.Line)
}

func nodeCondID(pos token.Position) string {
	return fmt.Sprintf("cond:%s:%d", filepath.Base(pos.Filename), pos.Line)
}

func nodeLogID(pos token.Position) string {
	return fmt.Sprintf("log:%s:%d", filepath.Base(pos.Filename), pos.Line)
}

func nodeCallID(pos token.Position) string {
	return fmt.Sprintf("call:%s:%d", filepath.Base(pos.Filename), pos.Line)
}

func nodeAssignID(pos token.Position) string {
	return fmt.Sprintf("assign:%s:%d", filepath.Base(pos.Filename), pos.Line)
}

func nodeNewID(pos token.Position) string {
	return fmt.Sprintf("new:%s:%d", filepath.Base(pos.Filename), pos.Line)
}

func nodeSiteID(site string) string { return "site:" + site }
func nodeInvID(fn string) string    { return "inv:" + fn }
func nodeIexcID(fn string) string   { return "iexc:" + fn }

// gsource is one possible origin of an error value.
type gsource struct {
	node string // causal-graph node ID (site, iexc or new node)
}

// buildCtx is the walking context inside one function.
type buildCtx struct {
	fn         *funcInfo
	handler    string   // innermost handler node ID
	conds      []string // enclosing condition node IDs
	errSources map[string][]gsource
	contParam  string    // name of the error parameter in an RPC continuation
	contSrcs   []gsource // its sources
}

type builder struct {
	a *analyzer
	g *graph.Graph
}

// ensure adds a node if missing and returns its ID.
func (b *builder) ensure(n graph.Node) string {
	b.g.AddNode(n)
	return n.ID
}

func (b *builder) edge(cause, effect string) {
	if cause == "" || effect == "" || cause == effect {
		return
	}
	// Both endpoints are ensured by callers; ignore ordering slips.
	_ = b.g.AddEdge(cause, effect)
}

// buildGraph runs the second pass: emit every causal-graph node and edge.
func (a *analyzer) buildGraph() *graph.Graph {
	b := &builder{a: a, g: graph.New()}

	// Function-level nodes.
	for id, info := range a.funcs {
		b.ensure(graph.Node{ID: nodeInvID(id), Kind: graph.Invocation,
			Pos: fmt.Sprintf("%s:%d", filepath.Base(info.file), info.line), Func: id})
		b.ensure(graph.Node{ID: nodeIexcID(id), Kind: graph.InternalException,
			Pos: fmt.Sprintf("%s:%d", filepath.Base(info.file), info.line), Func: id})
	}

	// Fault-site source nodes.
	for id, si := range a.sites {
		kind := graph.ExternalException
		if si.Func != "" && si.File != "" && si.Kind != "" && isReachSite(si) {
			kind = graph.NewException
		}
		b.ensure(graph.Node{ID: nodeSiteID(id), Kind: kind, Site: id,
			Pos: fmt.Sprintf("%s:%d", filepath.Base(si.File), si.Line), Func: si.Func})
	}

	// Assignment nodes with their handler/condition context edges.
	for _, f := range a.assigns {
		id := b.ensure(graph.Node{ID: nodeAssignID(f.pos), Kind: graph.Location,
			Pos: fmt.Sprintf("%s:%d", filepath.Base(f.pos.Filename), f.pos.Line), Func: f.funcID})
		b.edge(nodeInvID(f.funcID), id)
		if f.handler != "" {
			b.ensure(graph.Node{ID: f.handler, Kind: graph.Handler, Func: f.funcID})
			b.edge(f.handler, id)
		}
		for _, c := range f.conds {
			b.ensure(graph.Node{ID: c, Kind: graph.Condition, Func: f.funcID})
			b.edge(c, id)
		}
	}

	// Per-function walk.
	for _, info := range a.funcs {
		ctx := &buildCtx{fn: info, errSources: make(map[string][]gsource)}
		b.walkBlock(info.decl.Body, ctx)
	}
	return b.g
}

// isReachSite distinguishes FI.Reach sites (faults born inside system code,
// new-exception nodes) from environment-boundary sites (external-exception
// nodes). Reach sites were recorded from a Reach call, which parse.go only
// classifies when the kind selector came from the inject package; we tell
// them apart by checking whether any env method could have produced the
// kind at that site. Environment sites dominate, so default to external.
func isReachSite(si SiteInfo) bool {
	for _, k := range envMethodKinds {
		if si.Kind == k {
			// Ambiguous: both Reach and env methods use IO/Socket kinds.
			// Treat dotted IDs with a ".reach-" hint as new-exception.
			return false
		}
	}
	return true
}

func (b *builder) walkBlock(blk *ast.BlockStmt, ctx *buildCtx) {
	if blk == nil {
		return
	}
	for _, s := range blk.List {
		b.walkStmt(s, ctx)
	}
}

func (b *builder) walkStmt(s ast.Stmt, ctx *buildCtx) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		b.walkAssign(st, ctx)
	case *ast.ExprStmt:
		b.emitExpr(st.X, ctx)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			b.emitExpr(r, ctx)
		}
	case *ast.IfStmt:
		b.walkIf(st, ctx)
	case *ast.ForStmt:
		b.walkBlock(st.Body, ctx)
	case *ast.RangeStmt:
		b.walkBlock(st.Body, ctx)
	case *ast.SwitchStmt:
		if st.Tag != nil {
			b.emitExpr(st.Tag, ctx)
		}
		for _, cc := range st.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				for _, cs := range c.Body {
					b.walkStmt(cs, ctx)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range st.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				for _, cs := range c.Body {
					b.walkStmt(cs, ctx)
				}
			}
		}
	case *ast.BlockStmt:
		b.walkBlock(st, ctx)
	case *ast.LabeledStmt:
		b.walkStmt(st.Stmt, ctx)
	case *ast.DeferStmt:
		b.emitExpr(st.Call, ctx)
	case *ast.GoStmt:
		b.emitExpr(st.Call, ctx)
	case *ast.DeclStmt:
		// var err error = ... declarations; rare in our systems.
	}
}

// walkAssign tracks error-variable sources and emits nested calls.
func (b *builder) walkAssign(st *ast.AssignStmt, ctx *buildCtx) {
	// Identify error-typed LHS names.
	var errNames []string
	for _, lhs := range st.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && isErrName(id.Name) {
			errNames = append(errNames, id.Name)
		}
	}
	var srcs []gsource
	for _, rhs := range st.Rhs {
		srcs = append(srcs, b.emitExpr(rhs, ctx)...)
	}
	for _, n := range errNames {
		ctx.errSources[n] = srcs
	}
}

// walkIf handles both catch blocks (err != nil) and ordinary conditions.
func (b *builder) walkIf(st *ast.IfStmt, ctx *buildCtx) {
	if st.Init != nil {
		b.walkStmt(st.Init, ctx)
	}
	pos := b.a.pos(st)
	if isErrCheck(st.Cond) {
		errName := st.Cond.(*ast.BinaryExpr).X.(*ast.Ident).Name
		h := b.ensure(graph.Node{ID: nodeHandlerID(pos), Kind: graph.Handler, Func: ctx.fn.id,
			Pos: fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)})
		b.edge(nodeInvID(ctx.fn.id), h)
		for _, src := range b.sourcesOf(errName, ctx) {
			b.edge(src.node, h)
		}
		inner := *ctx
		inner.handler = h
		b.walkBlock(st.Body, &inner)
	} else {
		c := b.ensure(graph.Node{ID: nodeCondID(pos), Kind: graph.Condition, Func: ctx.fn.id,
			Pos: fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)})
		b.edge(nodeInvID(ctx.fn.id), c)
		// Jump strategy: any assignment to a name this condition reads is
		// causally prior to it.
		for _, name := range condNames(st.Cond) {
			for _, idx := range b.a.assignByName[name] {
				b.edge(nodeAssignID(b.a.assigns[idx].pos), c)
			}
		}
		b.emitExpr(st.Cond, ctx)
		inner := *ctx
		inner.conds = append(append([]string(nil), ctx.conds...), c)
		b.walkBlock(st.Body, &inner)
	}
	if st.Else != nil {
		b.walkStmt(st.Else, ctx)
	}
}

// condNames extracts the variable and field names a condition reads.
func condNames(expr ast.Expr) []string {
	seen := map[string]bool{}
	var out []string
	add := func(n string) {
		if n == "" || n == "nil" || n == "true" || n == "false" || n == "err" || n == "ok" || len(n) <= 2 {
			return
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			add(e.Sel.Name)
			return true
		case *ast.Ident:
			add(e.Name)
		case *ast.CallExpr:
			// Names inside call args still count; the callee name does not.
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
				for _, arg := range e.Args {
					ast.Inspect(arg, func(n2 ast.Node) bool {
						if id, ok := n2.(*ast.Ident); ok {
							add(id.Name)
						}
						return true
					})
				}
				_ = sel
				return false
			}
		}
		return true
	})
	return out
}

// sourcesOf resolves the current origins of an error variable, falling back
// to the RPC continuation's sources when the name is its parameter.
func (b *builder) sourcesOf(errName string, ctx *buildCtx) []gsource {
	if srcs, ok := ctx.errSources[errName]; ok && len(srcs) > 0 {
		return srcs
	}
	if errName == ctx.contParam {
		return ctx.contSrcs
	}
	return nil
}
