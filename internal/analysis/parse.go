package analysis

import (
	"go/ast"
	"go/token"
	"strconv"

	"anduril/internal/inject"
)

// envMethodKinds maps simulated-environment method names to the fault kind
// their Reach hook declares. A call only counts as a fault site when its
// first argument is a constant, dotted site-ID string.
var envMethodKinds = map[string]inject.Kind{
	"Create": inject.IO,
	"Append": inject.IO,
	"Write":  inject.IO,
	"Sync":   inject.IO,
	"Rename": inject.IO,
	"Delete": inject.IO,
	"Read":   inject.FileNotFound,
	"Send":   inject.Socket,
	"Call":   inject.Socket,
}

// reachKinds maps inject.Kind selector names used at FI.Reach call sites.
var reachKinds = map[string]inject.Kind{
	"IO":           inject.IO,
	"Timeout":      inject.Timeout,
	"Socket":       inject.Socket,
	"FileNotFound": inject.FileNotFound,
	"Interrupted":  inject.Interrupted,
	"Connection":   inject.Connection,
	"Checksum":     inject.Checksum,
	"State":        inject.State,
}

var logMethods = map[string]bool{
	"Debugf": true, "Infof": true, "Warnf": true, "Errorf": true,
}

// funcInfo is what the analyzer knows about one function declaration.
type funcInfo struct {
	id           string
	name         string
	file         string
	line         int
	decl         *ast.FuncDecl
	returnsError bool

	// depth-0 facts used by the escape fixpoint.
	envSites      []string // site IDs of environment calls
	internalCalls []string // bare names of calls that may resolve internally

	escapes map[string]bool // site IDs whose fault can escape via return
}

// assignFact records one assignment to a named variable or field, with the
// error-handling context it occurred in (for handler → assignment edges).
type assignFact struct {
	name    string
	pos     token.Position
	funcID  string
	handler string   // enclosing handler node ID, if any
	conds   []string // enclosing condition node IDs
}

type analyzer struct {
	fset *token.FileSet

	funcs        map[string]*funcInfo
	funcsByName  map[string][]string
	handlers     map[string][]string // message type -> handler function names
	assigns      []assignFact
	assignByName map[string][]int // name -> indices into assigns

	sites     map[string]SiteInfo
	siteKinds map[string]inject.Kind
	logs      []LogInfo
}

func newAnalyzer(fset *token.FileSet) *analyzer {
	return &analyzer{
		fset:         fset,
		funcs:        make(map[string]*funcInfo),
		funcsByName:  make(map[string][]string),
		handlers:     make(map[string][]string),
		assignByName: make(map[string][]int),
		sites:        make(map[string]SiteInfo),
		siteKinds:    make(map[string]inject.Kind),
	}
}

func (a *analyzer) pos(n ast.Node) token.Position { return a.fset.Position(n.Pos()) }

// constString returns the value of a constant string expression, if expr is
// one.
func constString(expr ast.Expr) (string, bool) {
	lit, ok := expr.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// calleeName extracts the bare callee name of a call expression.
func calleeName(call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	case *ast.Ident:
		return fun.Name, true
	}
	return "", false
}

// receiverIdent returns the receiver identifier of a selector call
// ("fmt" in fmt.Errorf, "e" in e.Log.Errorf returns "" since the X is a
// nested selector).
func receiverIdent(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// isLogCall reports whether the call is a logging statement (and not
// fmt.Errorf/fmt.Sprintf, which share method names with the logger).
func isLogCall(call *ast.CallExpr, name string) bool {
	if !logMethods[name] {
		return false
	}
	recv := receiverIdent(call)
	return recv != "fmt" && recv != "errors"
}

// classifySite reports whether the call is an environment fault site and
// returns its site ID and kind.
func classifySite(call *ast.CallExpr) (string, inject.Kind, bool) {
	name, ok := calleeName(call)
	if !ok || len(call.Args) == 0 {
		return "", "", false
	}
	if name == "Reach" {
		id, ok := constString(call.Args[0])
		if !ok || !isSiteID(id) || len(call.Args) < 2 {
			return "", "", false
		}
		kind := inject.IO
		if sel, ok := call.Args[1].(*ast.SelectorExpr); ok {
			if k, ok := reachKinds[sel.Sel.Name]; ok {
				kind = k
			}
		}
		return id, kind, true
	}
	kind, ok := envMethodKinds[name]
	if !ok {
		return "", "", false
	}
	id, ok := constString(call.Args[0])
	if !ok || !isSiteID(id) {
		return "", "", false
	}
	return id, kind, true
}

// isSiteID requires dotted, lower-case-ish identifiers ("zk.snap.create")
// so arbitrary string arguments are not mistaken for fault sites.
func isSiteID(s string) bool {
	dots := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '.':
			dots++
		case c == '-' || c == '_':
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
		default:
			return false
		}
	}
	return dots >= 1 && len(s) > 2
}

// funcID composes the analyzer-wide identity of a function declaration.
func funcID(decl *ast.FuncDecl) string {
	if decl.Recv != nil && len(decl.Recv.List) > 0 {
		t := decl.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + decl.Name.Name
		}
	}
	return decl.Name.Name
}

func returnsError(decl *ast.FuncDecl) bool {
	if decl.Type.Results == nil {
		return false
	}
	for _, r := range decl.Type.Results.List {
		if id, ok := r.Type.(*ast.Ident); ok && id.Name == "error" {
			return true
		}
	}
	return false
}

// collect performs the first pass over a file: function facts, Handle
// registrations, fault sites, log statements.
func (a *analyzer) collect(f *ast.File) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		id := funcID(fn)
		pos := a.pos(fn)
		info := &funcInfo{
			id:           id,
			name:         fn.Name.Name,
			file:         pos.Filename,
			line:         pos.Line,
			decl:         fn,
			returnsError: returnsError(fn),
			escapes:      make(map[string]bool),
		}
		a.funcs[id] = info
		a.funcsByName[fn.Name.Name] = append(a.funcsByName[fn.Name.Name], id)
		a.collectFacts(info)
	}
}

// collectFacts walks a function body once, gathering depth-0 env sites and
// internal calls (for the escape fixpoint), Handle registrations, all fault
// sites and all log statements.
func (a *analyzer) collectFacts(info *funcInfo) {
	depth := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			depth++
			ast.Inspect(node.Body, walk)
			depth--
			return false
		case *ast.CallExpr:
			a.collectCall(info, node, depth)
		}
		return true
	}
	ast.Inspect(info.decl.Body, walk)
}

func (a *analyzer) collectCall(info *funcInfo, call *ast.CallExpr, depth int) {
	name, ok := calleeName(call)
	if !ok {
		return
	}
	pos := a.pos(call)

	// Handle registration: Net.Handle(node, "type", actor, handlerFunc).
	if name == "Handle" && len(call.Args) >= 4 {
		if typ, ok := constString(call.Args[1]); ok {
			if hname, ok := handlerFuncName(call.Args[3]); ok {
				a.handlers[typ] = append(a.handlers[typ], hname)
			}
		}
		return
	}

	if isLogCall(call, name) && len(call.Args) > 0 {
		if tmpl, ok := constString(call.Args[0]); ok {
			a.logs = append(a.logs, LogInfo{Template: tmpl, File: pos.Filename, Line: pos.Line, Func: info.id})
			return
		}
	}

	if id, kind, ok := classifySite(call); ok {
		if _, seen := a.sites[id]; !seen {
			a.sites[id] = SiteInfo{ID: id, Kind: kind, File: pos.Filename, Line: pos.Line, Func: info.id}
			a.siteKinds[id] = kind
		}
		if depth == 0 {
			info.envSites = append(info.envSites, id)
		}
		return
	}

	// Internal call candidate (resolved by name in a later pass).
	if depth == 0 {
		info.internalCalls = append(info.internalCalls, name)
	}
}

// handlerFuncName extracts the method name from a handler argument like
// s.onVote or onVote.
func handlerFuncName(expr ast.Expr) (string, bool) {
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		return e.Sel.Name, true
	case *ast.Ident:
		return e.Name, true
	}
	return "", false
}

// indexAssignments builds the jump-strategy table: every assignment to a
// named variable or field, with its error-handling context.
func (a *analyzer) indexAssignments() {
	for _, info := range a.funcs {
		a.indexAssignsIn(info)
	}
	for i, f := range a.assigns {
		a.assignByName[f.name] = append(a.assignByName[f.name], i)
	}
}

// indexAssignsIn records assignments inside one function, tracking the
// handler/condition context with a lightweight recursive walk.
func (a *analyzer) indexAssignsIn(info *funcInfo) {
	var walkStmt func(s ast.Stmt, handler string, conds []string)
	record := func(lhs ast.Expr, pos token.Position, handler string, conds []string) {
		var name string
		switch e := lhs.(type) {
		case *ast.Ident:
			name = e.Name
		case *ast.SelectorExpr:
			name = e.Sel.Name
		default:
			return
		}
		if name == "_" || name == "err" {
			return
		}
		a.assigns = append(a.assigns, assignFact{
			name: name, pos: pos, funcID: info.id,
			handler: handler, conds: append([]string(nil), conds...),
		})
	}
	walkBlock := func(b *ast.BlockStmt, handler string, conds []string) {
		if b == nil {
			return
		}
		for _, s := range b.List {
			walkStmt(s, handler, conds)
		}
	}
	walkStmt = func(s ast.Stmt, handler string, conds []string) {
		switch st := s.(type) {
		case *ast.AssignStmt:
			pos := a.pos(st)
			for _, lhs := range st.Lhs {
				record(lhs, pos, handler, conds)
			}
		case *ast.IncDecStmt:
			record(st.X, a.pos(st), handler, conds)
		case *ast.BlockStmt:
			walkBlock(st, handler, conds)
		case *ast.IfStmt:
			if st.Init != nil {
				walkStmt(st.Init, handler, conds)
			}
			pos := a.pos(st)
			if isErrCheck(st.Cond) {
				h := nodeHandlerID(pos)
				walkBlock(st.Body, h, conds)
			} else {
				c := nodeCondID(pos)
				walkBlock(st.Body, handler, append(conds, c))
			}
			if st.Else != nil {
				walkStmt(st.Else, handler, conds)
			}
		case *ast.ForStmt:
			walkBlock(st.Body, handler, conds)
		case *ast.RangeStmt:
			walkBlock(st.Body, handler, conds)
		case *ast.SwitchStmt:
			for _, cc := range st.Body.List {
				if c, ok := cc.(*ast.CaseClause); ok {
					for _, cs := range c.Body {
						walkStmt(cs, handler, conds)
					}
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cc := range st.Body.List {
				if c, ok := cc.(*ast.CaseClause); ok {
					for _, cs := range c.Body {
						walkStmt(cs, handler, conds)
					}
				}
			}
		case *ast.LabeledStmt:
			walkStmt(st.Stmt, handler, conds)
		case *ast.ExprStmt:
			// Function literals in arguments (continuations) also assign.
			ast.Inspect(st.X, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					walkBlock(fl.Body, handler, conds)
					return false
				}
				return true
			})
		}
	}
	walkBlock(info.decl.Body, "", nil)
}

// isErrCheck recognizes `err != nil` style conditions (the catch blocks).
func isErrCheck(cond ast.Expr) bool {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return false
	}
	id, ok := bin.X.(*ast.Ident)
	if !ok {
		return false
	}
	if nilIdent, ok := bin.Y.(*ast.Ident); !ok || nilIdent.Name != "nil" {
		return false
	}
	return isErrName(id.Name)
}

func isErrName(name string) bool {
	if name == "err" {
		return true
	}
	if len(name) <= 3 {
		return false
	}
	suffix := name[len(name)-3:]
	return suffix == "Err" || suffix == "err"
}

// computeEscapes runs the interprocedural error-flow fixpoint: the set of
// fault sites whose error can escape each function via its error result.
func (a *analyzer) computeEscapes() {
	changed := true
	for changed {
		changed = false
		for _, info := range a.funcs {
			if !info.returnsError {
				continue
			}
			for _, site := range info.envSites {
				if !info.escapes[site] {
					info.escapes[site] = true
					changed = true
				}
			}
			for _, callee := range info.internalCalls {
				for _, calleeID := range a.funcsByName[callee] {
					for site := range a.funcs[calleeID].escapes {
						if !info.escapes[site] {
							info.escapes[site] = true
							changed = true
						}
					}
				}
			}
		}
	}
}

func (a *analyzer) siteList() []SiteInfo {
	out := make([]SiteInfo, 0, len(a.sites))
	for _, s := range a.sites {
		out = append(out, s)
	}
	return out
}

func (a *analyzer) logList() []LogInfo { return a.logs }
