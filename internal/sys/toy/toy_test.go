package toy

import (
	"testing"

	"anduril/internal/cluster"
	"anduril/internal/inject"
)

func TestHealthyRun(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		r := cluster.Execute(seed, nil, true, Workload, Horizon)
		if r.LogContains("unrecoverable state") {
			t.Fatalf("seed %d: failure without faults", seed)
		}
		if r.Counts["toy.scrub-store"] == 0 || r.Counts["toy.ping-peer"] == 0 {
			t.Fatalf("seed %d: sites not exercised: %v", seed, r.Counts)
		}
	}
}

func TestSingleFaultsAreTolerated(t *testing.T) {
	scrub := cluster.Execute(1, inject.Exact(inject.Instance{Site: "toy.scrub-store", Occurrence: 2}), false, Workload, Horizon)
	if scrub.LogContains("unrecoverable state") {
		t.Fatal("scrub fault alone should be tolerated")
	}
	if !scrub.LogContains("store repaired, degradation cleared") {
		t.Fatalf("degradation not repaired:\n%s", scrub.RenderLog())
	}
	ping := cluster.Execute(1, inject.Exact(inject.Instance{Site: "toy.ping-peer", Occurrence: 2}), false, Workload, Horizon)
	if ping.LogContains("unrecoverable state") {
		t.Fatal("ping fault alone should be tolerated")
	}
	if !ping.LogContains("peer ping flaked, tolerated") {
		t.Fatalf("flake not tolerated:\n%s", ping.RenderLog())
	}
}

func TestTwoFaultsInWindowKillService(t *testing.T) {
	plan := inject.Multi(
		inject.Exact(inject.Instance{Site: "toy.scrub-store", Occurrence: 2}),
		inject.Exact(inject.Instance{Site: "toy.ping-peer", Occurrence: 2}),
	)
	r := cluster.Execute(1, plan, false, Workload, Horizon)
	if !r.LogContains("unrecoverable state") {
		t.Fatalf("two faults in the window should kill the service:\n%s", r.RenderLog())
	}
}

func TestTwoFaultsOutsideWindowTolerated(t *testing.T) {
	// The ping fault lands after the repair pass cleared the degradation.
	plan := inject.Multi(
		inject.Exact(inject.Instance{Site: "toy.scrub-store", Occurrence: 2}),
		inject.Exact(inject.Instance{Site: "toy.ping-peer", Occurrence: 6}),
	)
	r := cluster.Execute(1, plan, false, Workload, Horizon)
	if r.LogContains("unrecoverable state") {
		t.Fatalf("faults outside the window should be tolerated:\n%s", r.RenderLog())
	}
}
