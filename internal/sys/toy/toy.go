// Package toy is a deliberately small service used to demonstrate the
// iterative multi-fault extension (the paper's §6 limitation 2 / future
// work): its failure needs TWO causally-independent faults — a degraded
// disk subsystem AND a network flake while degraded — before the symptom
// appears. Single-fault search cannot reproduce it; the iterative mode
// bakes in the best partial fault and finds the second.
package toy

import (
	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/inject"
)

// Horizon is the virtual time the toy workload needs.
const Horizon = des.Second

// service runs a periodic disk scrub and a periodic peer ping; the
// unrecoverable state needs a scrub failure followed by a ping failure.
type service struct {
	env      *cluster.Env
	degraded bool
	dead     bool
}

// Workload boots the service and drives it to quiescence.
func Workload(env *cluster.Env) {
	s := &service{env: env}
	env.Sim.Every("toy-scrubber", 100*des.Millisecond, func() {
		if s.dead {
			return
		}
		s.scrub()
	})
	env.Sim.Every("toy-pinger", 130*des.Millisecond, func() {
		if s.dead {
			return
		}
		s.ping()
	})
	// The repair pass clears degradation, so a degraded window lasts up to
	// one repair period.
	env.Sim.Every("toy-repair", 300*des.Millisecond, func() {
		if s.dead || !s.degraded {
			return
		}
		env.Log.Infof("store repaired, degradation cleared")
		s.degraded = false
	})
}

// scrub checks the local store; a failure leaves the service degraded
// until the repair pass clears it.
func (s *service) scrub() {
	env := s.env
	if err := env.FI.Reach("toy.scrub-store", inject.IO); err != nil {
		env.Log.Warnf("store scrub failed, running degraded")
		s.degraded = true
		return
	}
	env.Log.Debugf("store scrub clean")
}

// ping checks the peer; a flake is tolerated unless the store is degraded
// at that exact moment, in which case the failover logic wedges for good.
func (s *service) ping() {
	env := s.env
	if err := env.FI.Reach("toy.ping-peer", inject.Socket); err != nil {
		if s.degraded {
			env.Log.Errorf("service entered unrecoverable state: degraded store with unreachable peer")
			s.dead = true
			return
		}
		env.Log.Warnf("peer ping flaked, tolerated")
		return
	}
	env.Log.Debugf("peer ping ok")
}
