package kvstore

import (
	"testing"

	"anduril/internal/cluster"
	"anduril/internal/inject"
)

func runFree(t *testing.T, seed int64) *cluster.Result {
	t.Helper()
	return cluster.Execute(seed, nil, true, WorkloadRepair, Horizon)
}

func runWith(t *testing.T, seed int64, inst inject.Instance) *cluster.Result {
	t.Helper()
	return cluster.Execute(seed, inject.Exact(inst), true, WorkloadRepair, Horizon)
}

func TestRepairWorkloadHealthy(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r := runFree(t, seed)
		if !r.LogContains("Repair session repair-1 completed successfully") {
			t.Fatalf("seed %d: repair did not complete\n%s", seed, r.RenderLog())
		}
		if !r.LogContains("finished 30 quorum writes") {
			t.Fatalf("seed %d: writes did not finish", seed)
		}
		if len(r.Blocked) != 0 {
			t.Fatalf("seed %d: stuck threads: %v", seed, r.Blocked)
		}
	}
}

// f21 — C*-17663: an interrupted file-stream task corrupts the shared
// channel proxy; streaming never succeeds again.
func TestF21CorruptProxy(t *testing.T) {
	r := runWith(t, 1, inject.Instance{Site: "cs.stream.file-task", Occurrence: 2})
	if !r.LogContains("channel proxy left in invalid state") {
		t.Fatalf("proxy not corrupted:\n%s", r.RenderLog())
	}
	if !r.LogContains("channel proxy in invalid state") {
		t.Fatalf("later streams should trip the proxy:\n%s", r.RenderLog())
	}
	if r.LogContains("completed successfully") {
		t.Fatal("repair should never complete")
	}
}

// f22 — C*-6415: a swallowed snapshot failure leaves the coordinator
// waiting forever (the request has no timeout).
func TestF22SnapshotBlocksForever(t *testing.T) {
	r := runWith(t, 1, inject.Instance{Site: "cs.repair.make-snapshot", Occurrence: 2})
	if !r.LogContains("Snapshot for repair-1 failed") {
		t.Fatalf("snapshot did not fail:\n%s", r.RenderLog())
	}
	if !r.BlockedOn("await-snapshot-responses") {
		t.Fatalf("coordinator not blocked: %v", r.Blocked)
	}
	if r.LogContains("computing merkle differences") {
		t.Fatal("repair should never pass the snapshot phase")
	}
}

// f22 control: a snapshot FILE write failure also wedges (same symptom,
// deeper site) — kept as the "new root cause" counterpart (Table 6).
func TestF22SnapshotWriteAlsoWedges(t *testing.T) {
	r := runWith(t, 1, inject.Instance{Site: "cs.repair.write-snapshot", Occurrence: 1})
	if !r.BlockedOn("await-snapshot-responses") {
		t.Fatalf("coordinator not blocked: %v", r.Blocked)
	}
}

func TestFaultSitesExercised(t *testing.T) {
	r := runFree(t, 1)
	for _, site := range []string{
		"cs.gossip.send", "cs.node.append-commitlog", "cs.compaction.write-sstable",
		"cs.repair.make-snapshot", "cs.repair.write-snapshot", "cs.repair.snapshot-rpc",
		"cs.stream.file-task", "cs.stream.send-file", "cs.client.write-rpc",
	} {
		if r.Counts[site] == 0 {
			t.Errorf("fault site %s never exercised", site)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runFree(t, 3)
	b := runFree(t, 3)
	if len(a.Entries) != len(b.Entries) {
		t.Fatalf("nondeterministic: %d vs %d", len(a.Entries), len(b.Entries))
	}
}

func TestHintedHandoff(t *testing.T) {
	r := runFree(t, 1)
	if !r.LogContains("Node cs3 became unreachable") {
		t.Fatalf("down window missing:\n%s", r.RenderLog())
	}
	if !r.LogContains("Stored hint for cs3") {
		t.Fatalf("no hints stored:\n%s", r.RenderLog())
	}
	if !r.LogContains("Replayed hint to cs3") {
		t.Fatalf("hints never replayed:\n%s", r.RenderLog())
	}
	// Repair still completes despite the blip.
	if !r.LogContains("Repair session repair-1 completed successfully") {
		t.Fatalf("repair broken by the blip:\n%s", r.RenderLog())
	}
}
