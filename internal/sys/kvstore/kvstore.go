// Package kvstore is a miniature Cassandra-like replicated key-value store
// built on the simulated cluster substrate: a small ring with gossip,
// quorum writes, memtable flushes/compactions, anti-entropy repair with a
// snapshot phase, and file streaming over a shared channel proxy.
//
// The package contains the bug patterns of the two Cassandra failures in
// the paper's dataset (Table 5): C*-17663 (f21) and C*-6415 (f22).
package kvstore

import (
	"fmt"

	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/inject"
	"anduril/internal/simnet"
)

// Horizon is how much virtual time the kvstore workloads need.
const Horizon = 3 * des.Second

// Ring is one simulated deployment.
type Ring struct {
	env   *cluster.Env
	Nodes []*Node

	// proxy is the shared channel proxy used by every file-stream task.
	// C*-17663 (f21): an interrupted task leaves it in an invalid state
	// that every later streaming attempt trips over.
	proxyCorrupt bool
}

// Node is one ring member.
type Node struct {
	r    *Ring
	id   int
	name string

	data     map[string]string
	memtable int
}

// NewRing creates (but does not start) an n-node ring.
func NewRing(env *cluster.Env, n int) *Ring {
	r := &Ring{env: env}
	for i := 1; i <= n; i++ {
		r.Nodes = append(r.Nodes, &Node{r: r, id: i, name: fmt.Sprintf("cs%d", i), data: make(map[string]string)})
	}
	return r
}

// Start boots every node: handlers, gossip and compaction loops.
func (r *Ring) Start() {
	env := r.env
	for _, n := range r.Nodes {
		node := n
		net := env.Net
		net.Handle(node.name, "cs.write", node.name+"-mutation", node.onWrite)
		net.Handle(node.name, "cs.read", node.name+"-read", node.onRead)
		net.Handle(node.name, "cs.gossip", node.name+"-gossip", node.onGossip)
		net.Handle(node.name, "cs.make-snapshot", node.name+"-repair", node.onMakeSnapshot)
		net.Handle(node.name, "cs.stream-file", node.name+"-stream", node.onStreamFile)

		env.Sim.Go(node.name+"-main", func() {
			env.Log.Infof("Node %s joining ring with %d peers", node.name, len(r.Nodes)-1)
		})

		env.Sim.Every(node.name+"-gossip", 100*des.Millisecond, func() {
			peer := r.Nodes[(node.id+int(env.Sim.Now()/des.Millisecond))%len(r.Nodes)]
			if peer.name == node.name {
				peer = r.Nodes[node.id%len(r.Nodes)]
			}
			err := env.Net.Send("cs.gossip.send", simnet.Message{
				From: node.name, To: peer.name, Type: "cs.gossip", Payload: node.id,
			})
			if err != nil {
				env.Log.Warnf("Gossip from %s to %s failed: %s", node.name, peer.name, err)
			}
		})

		env.Sim.Every(node.name+"-compaction", 350*des.Millisecond, func() {
			if node.memtable == 0 {
				return
			}
			path := fmt.Sprintf("%s/sstable-%d", node.name, int(env.Sim.Now()/des.Millisecond))
			if err := env.Disk.Write("cs.compaction.write-sstable", path, []byte(fmt.Sprintf("%d rows\n", node.memtable))); err != nil {
				env.Log.Warnf("Compaction on %s failed, will retry: %s", node.name, err)
				return
			}
			env.Log.Debugf("Flushed memtable of %d rows to %s", node.memtable, path)
			node.memtable = 0
		})
	}
}

func (n *Node) env() *cluster.Env { return n.r.env }

func (n *Node) onWrite(m simnet.Message, respond func(interface{}, error)) {
	env := n.env()
	kv, ok := m.Payload.([2]string)
	if !ok {
		respond(nil, fmt.Errorf("cs: malformed write"))
		return
	}
	if err := env.Disk.Append("cs.node.append-commitlog", n.name+"/commitlog", []byte(kv[0]+"="+kv[1]+"\n")); err != nil {
		env.Log.Errorf("Commit log append failed on %s: %s", n.name, err)
		respond(nil, err)
		return
	}
	n.data[kv[0]] = kv[1]
	n.memtable++
	respond("ok", nil)
}

func (n *Node) onRead(m simnet.Message, respond func(interface{}, error)) {
	key, _ := m.Payload.(string)
	val, ok := n.data[key]
	if !ok {
		respond(nil, fmt.Errorf("cs: no such key %s", key))
		return
	}
	respond(val, nil)
}

func (n *Node) onGossip(m simnet.Message, _ func(interface{}, error)) {
	// Membership heartbeat; realistic background noise.
}

// onMakeSnapshot serves the repair coordinator's snapshot request.
// C*-6415 (f22): a failure while taking the snapshot is swallowed — the
// replica never responds, and the coordinator waits without any timeout.
func (n *Node) onMakeSnapshot(m simnet.Message, respond func(interface{}, error)) {
	env := n.env()
	session, _ := m.Payload.(string)
	if err := env.FI.Reach("cs.repair.make-snapshot", inject.IO); err != nil {
		env.Log.Errorf("Snapshot for %s failed on %s", session, n.name)
		return // defect: no reply, and the coordinator has no timeout
	}
	path := fmt.Sprintf("%s/snapshots/%s", n.name, session)
	if err := env.Disk.Write("cs.repair.write-snapshot", path, []byte("snapshot\n")); err != nil {
		env.Log.Errorf("Snapshot file write for %s failed on %s: %s", session, n.name, err)
		return
	}
	env.Log.Infof("Snapshot for %s taken on %s", session, n.name)
	respond("ok", nil)
}

// onStreamFile receives one streamed file during repair.
func (n *Node) onStreamFile(m simnet.Message, respond func(interface{}, error)) {
	env := n.env()
	name, _ := m.Payload.(string)
	if err := env.Disk.Write("cs.stream.write-received", n.name+"/streamed/"+name, []byte("data\n")); err != nil {
		env.Log.Errorf("Receiving streamed file %s failed on %s: %s", name, n.name, err)
		respond(nil, err)
		return
	}
	env.Log.Debugf("Node %s received streamed file %s", n.name, name)
	respond("ok", nil)
}

// hint is a write destined for a replica that was unreachable; it is
// stored durably and replayed when the replica returns (hinted handoff).
type hint struct {
	node string
	key  string
	val  string
}

// Client performs quorum writes through a coordinator node, with hinted
// handoff for unreachable replicas.
type Client struct {
	r     *Ring
	name  string
	hints []hint
}

// NewClient creates a named client and starts its hint-replay loop.
func (r *Ring) NewClient(name string) *Client {
	cl := &Client{r: r, name: name}
	r.env.Sim.Every(name+"-hints", 250*des.Millisecond, func() {
		cl.replayHints()
	})
	return cl
}

// storeHint persists a missed write for later delivery.
func (cl *Client) storeHint(node, key, val string) {
	env := cl.r.env
	rec := node + "|" + key + "=" + val + "\n"
	if err := env.Disk.Append("cs.client.store-hint", cl.name+"/hints", []byte(rec)); err != nil {
		env.Log.Warnf("Could not store hint for %s: %s", node, err)
		return
	}
	cl.hints = append(cl.hints, hint{node: node, key: key, val: val})
	env.Log.Infof("Stored hint for %s: %s", node, key)
}

// replayHints redelivers pending hints to replicas that have recovered.
func (cl *Client) replayHints() {
	env := cl.r.env
	if len(cl.hints) == 0 {
		return
	}
	h := cl.hints[0]
	env.Net.Call("cs.client.replay-hint", simnet.Message{
		From: cl.name, To: h.node, Type: "cs.write", Payload: [2]string{h.key, h.val},
	}, 200*des.Millisecond, func(_ interface{}, err error) {
		if err != nil {
			env.Log.Debugf("Hint replay to %s still failing: %s", h.node, err)
			return
		}
		cl.hints = cl.hints[1:]
		env.Log.Infof("Replayed hint to %s: %s (%d pending)", h.node, h.key, len(cl.hints))
	})
}

// WriteLoop issues count quorum writes at the given interval, then runs a
// read-repair verification pass over a sample of keys.
func (cl *Client) WriteLoop(interval des.Time, count int) {
	env := cl.r.env
	i := 0
	var step func()
	step = func() {
		if i >= count {
			env.Log.Infof("Client %s finished %d quorum writes", cl.name, count)
			cl.readRepair(0, count)
			return
		}
		key := fmt.Sprintf("k%03d", i)
		val := fmt.Sprintf("v%03d", i)
		i++
		acks := 0
		responded := false
		for _, node := range cl.r.Nodes {
			target := node
			env.Net.Call("cs.client.write-rpc", simnet.Message{
				From: cl.name, To: target.name, Type: "cs.write", Payload: [2]string{key, val},
			}, 250*des.Millisecond, func(_ interface{}, err error) {
				if err != nil {
					env.Log.Warnf("Write of %s to %s failed: %s", key, target.name, err)
					cl.storeHint(target.name, key, val)
					return
				}
				acks++
				if acks >= 2 && !responded {
					responded = true
					env.Log.Debugf("Quorum write of %s achieved", key)
				}
			})
		}
		env.Sim.Schedule(cl.name, interval, step)
	}
	env.Sim.Go(cl.name, step)
}

// readRepair reads every fourth key from two replicas and repairs any
// divergence — the digest-mismatch path of a real coordinator.
func (cl *Client) readRepair(i, count int) {
	env := cl.r.env
	if i >= count {
		env.Log.Infof("Client %s read-repair pass complete", cl.name)
		return
	}
	key := fmt.Sprintf("k%03d", i)
	a := cl.r.Nodes[i%len(cl.r.Nodes)]
	b := cl.r.Nodes[(i+1)%len(cl.r.Nodes)]
	env.Net.Call("cs.client.read-digest", simnet.Message{
		From: cl.name, To: a.name, Type: "cs.read", Payload: key,
	}, 250*des.Millisecond, func(va interface{}, errA error) {
		env.Net.Call("cs.client.read-repair", simnet.Message{
			From: cl.name, To: b.name, Type: "cs.read", Payload: key,
		}, 250*des.Millisecond, func(vb interface{}, errB error) {
			if errA == nil && errB == nil && va != vb {
				env.Log.Warnf("Digest mismatch for %s between %s and %s, repairing", key, a.name, b.name)
			}
			env.Sim.Schedule(cl.name, 15*des.Millisecond, func() { cl.readRepair(i+4, count) })
		})
	})
}

// Repair runs one anti-entropy repair session from the given coordinator:
// snapshot phase on every replica (no timeout — f22), then merkle diff,
// then file streaming through the shared channel proxy (f21).
func (r *Ring) Repair(session string, coordinatorID int, delay des.Time) {
	env := r.env
	coord := r.Nodes[coordinatorID-1]
	actor := coord.name + "-repair"
	env.Sim.Schedule(actor, delay, func() {
		env.Log.Infof("Repair session %s started on keyspace ks1 by %s", session, coord.name)
		pending := len(r.Nodes)
		await := des.NewCond(env.Sim, "await-snapshot-responses")
		for _, node := range r.Nodes {
			target := node
			env.Net.Call("cs.repair.snapshot-rpc", simnet.Message{
				From: coord.name, To: target.name, Type: "cs.make-snapshot", Payload: session,
			}, 0 /* no timeout: the defect */, func(_ interface{}, err error) {
				if err != nil {
					env.Log.Errorf("Snapshot request to %s failed for %s: %s", target.name, session, err)
					return
				}
				pending--
				if pending == 0 {
					await.Broadcast()
				}
			})
		}
		await.Wait(actor, func() {
			env.Log.Infof("All snapshots for %s complete, computing merkle differences", session)
			r.streamDifferences(session, coord, 0)
		})
	})
}

// streamDifferences streams the mismatched files between replicas, one
// task at a time, through the shared channel proxy.
func (r *Ring) streamDifferences(session string, coord *Node, idx int) {
	env := r.env
	files := []string{"diff-0.db", "diff-1.db", "diff-2.db"}
	if idx >= len(files) {
		env.Log.Infof("Repair session %s completed successfully", session)
		return
	}
	actor := coord.name + "-stream"
	env.Sim.Schedule(actor, 20*des.Millisecond, func() {
		if r.proxyCorrupt {
			// Defect (C*-17663): the shared proxy was never repaired after
			// an earlier failed task; every further stream attempt dies.
			env.Log.Errorf("Stream session %s failed: channel proxy in invalid state", session)
			return
		}
		if err := env.FI.Reach("cs.stream.file-task", inject.Interrupted); err != nil {
			env.Log.Errorf("File stream task %s failed for %s; channel proxy left in invalid state",
				files[idx], session)
			r.proxyCorrupt = true
			// Retry the session's streaming — which now trips the proxy.
			r.streamDifferences(session, coord, idx)
			return
		}
		target := r.Nodes[(coord.id+idx)%len(r.Nodes)]
		env.Net.Call("cs.stream.send-file", simnet.Message{
			From: coord.name, To: target.name, Type: "cs.stream-file", Payload: files[idx],
		}, 250*des.Millisecond, func(_ interface{}, err error) {
			if err != nil {
				env.Log.Warnf("Streaming %s to %s failed, retrying: %s", files[idx], target.name, err)
				r.streamDifferences(session, coord, idx)
				return
			}
			env.Log.Infof("Streamed %s to %s for %s", files[idx], target.name, session)
			r.streamDifferences(session, coord, idx+1)
		})
	})
}

// WorkloadRepair is the driving workload for f21 (C*-17663) and f22
// (C*-6415): background quorum writes plus a repair session.
func WorkloadRepair(env *cluster.Env) {
	r := NewRing(env, 3)
	r.Start()
	cl := r.NewClient("cs-client-1")
	env.Sim.Schedule("cs-client-1", 150*des.Millisecond, func() {
		cl.WriteLoop(30*des.Millisecond, 30)
	})
	// A transient blip takes cs3 offline mid-writes (an environmental
	// fault, like a GC pause): writes to it fail, hints accumulate and are
	// replayed once it returns. This is the kind of tolerated noise a
	// production failure log is full of.
	env.Sim.Schedule("harness", 350*des.Millisecond, func() {
		env.Log.Warnf("Node cs3 became unreachable")
		env.Net.SetDown("cs3", true)
	})
	env.Sim.Schedule("harness", 560*des.Millisecond, func() {
		env.Net.SetDown("cs3", false)
		env.Log.Infof("Node cs3 is reachable again")
	})
	r.Repair("repair-1", 1, 800*des.Millisecond)
}
