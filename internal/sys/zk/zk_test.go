package zk

import (
	"strings"
	"testing"

	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/inject"
)

func runFree(t *testing.T, w cluster.Workload, seed int64) *cluster.Result {
	t.Helper()
	return cluster.Execute(seed, nil, true, w, Horizon)
}

func runWith(t *testing.T, w cluster.Workload, seed int64, inst inject.Instance) *cluster.Result {
	t.Helper()
	return cluster.Execute(seed, inject.Exact(inst), true, w, Horizon)
}

func logHas(r *cluster.Result, frag string) bool { return r.LogContains(frag) }

func TestQuorumWorkloadHealthy(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r := runFree(t, WorkloadQuorum, seed)
		if !logHas(r, "Leader is serving epoch") {
			t.Fatalf("seed %d: leader never served\n%s", seed, r.RenderLog())
		}
		if !logHas(r, "Client zk-client-1 finished workload") {
			t.Fatalf("seed %d: client did not finish\n%s", seed, r.RenderLog())
		}
		if logHas(r, "Severe unrecoverable error") {
			t.Fatalf("seed %d: spurious pipeline death", seed)
		}
	}
}

func TestElectionPicksHighestID(t *testing.T) {
	r := runFree(t, WorkloadQuorum, 3)
	if !logHas(r, "LEADING on myid=3") {
		t.Fatalf("zk3 did not lead:\n%s", r.RenderLog())
	}
	if !logHas(r, "FOLLOWING zk3 on myid=1") || !logHas(r, "FOLLOWING zk3 on myid=2") {
		t.Fatal("followers did not follow zk3")
	}
}

func TestTxnLogPersisted(t *testing.T) {
	r := runFree(t, WorkloadQuorum, 2)
	for _, node := range []string{"zk1", "zk2", "zk3"} {
		if r.Env.Disk.Size(node+"/txnlog") == 0 {
			t.Fatalf("%s has empty txn log", node)
		}
	}
}

func TestSnapshotsTaken(t *testing.T) {
	r := runFree(t, WorkloadQuorum, 2)
	if len(r.Env.Disk.List("zk1/snapshot.")) == 0 {
		t.Fatal("no snapshots on zk1")
	}
}

func TestFaultSitesExercised(t *testing.T) {
	r := runFree(t, WorkloadQuorum, 1)
	for _, site := range []string{
		"zk.election.send-vote",
		"zk.election.accept-connection",
		"zk.leader.announce",
		"zk.follower.connect-leader",
		"zk.leader.accept-follower",
		"zk.sync.append-txn",
		"zk.sync.fsync-txnlog",
		"zk.follower.forward-request",
		"zk.leader.send-proposal",
		"zk.leader.send-commit",
		"zk.snap.write-body",
		"zk.leader.ping-follower",
	} {
		if r.Counts[site] == 0 {
			t.Errorf("fault site %s never exercised", site)
		}
	}
}

// f1 — ZK-2247: leader txn-log write failure kills the pipeline; ensemble
// becomes unavailable.
func TestF1LeaderLogWriteFailure(t *testing.T) {
	// Occurrence 1 of the append site belongs to the leader (the leader's
	// sync processor runs before the proposals reach the followers).
	r := runWith(t, WorkloadQuorum, 1, inject.Instance{Site: "zk.sync.append-txn", Occurrence: 1})
	if !logHas(r, "Severe unrecoverable error, exiting SyncRequestProcessor on myid=3") {
		t.Fatalf("pipeline did not die on leader:\n%s", r.RenderLog())
	}
	if !logHas(r, "timed out; server unavailable") {
		t.Fatalf("client did not observe unavailability:\n%s", r.RenderLog())
	}
}

// f1 control: the same fault on a follower is tolerated.
func TestF1FollowerLogWriteFailureTolerated(t *testing.T) {
	// Occurrence 2 lands on one of the followers.
	r := runWith(t, WorkloadQuorum, 1, inject.Instance{Site: "zk.sync.append-txn", Occurrence: 2})
	if !logHas(r, "Severe unrecoverable error") {
		t.Fatalf("follower pipeline should still die:\n%s", r.RenderLog())
	}
	if logHas(r, "timed out; server unavailable") {
		t.Fatal("cluster should stay available with one dead follower pipeline")
	}
	if !logHas(r, "Client zk-client-1 finished workload") {
		t.Fatalf("client should finish:\n%s", r.RenderLog())
	}
}

// f2 — ZK-3157: a forwarding failure for a write closes the session.
func TestF2WriteForwardFailure(t *testing.T) {
	r := runWith(t, WorkloadQuorum, 1, inject.Instance{Site: "zk.follower.forward-request", Occurrence: 3})
	if !logHas(r, "Unexpected exception causing session") {
		t.Fatalf("session not closed:\n%s", r.RenderLog())
	}
	if !logHas(r, "client failed with connection loss") {
		t.Fatalf("client did not fail:\n%s", r.RenderLog())
	}
}

// f2 control: a forwarding failure for a read is retried.
func TestF2ReadForwardRetried(t *testing.T) {
	r := runWith(t, WorkloadQuorum, 1, inject.Instance{Site: "zk.follower.forward-request", Occurrence: 2})
	if !logHas(r, "Request forward to leader failed") {
		t.Fatalf("read retry path not hit:\n%s", r.RenderLog())
	}
	if logHas(r, "client failed with connection loss") {
		t.Fatal("read failure should not close the session")
	}
	if !logHas(r, "Client zk-client-1 finished workload") {
		t.Fatalf("client should finish after retry:\n%s", r.RenderLog())
	}
}

// electionReach returns the nth occurrence of the election accept site on
// the given server in the free run's trace.
func electionReach(t *testing.T, free *cluster.Result, node string) int {
	t.Helper()
	occ := 0
	for _, ev := range free.Trace {
		if ev.Site == "zk.election.accept-connection" {
			occ++
			if strings.HasPrefix(ev.Thread, node+"-") {
				return occ
			}
		}
	}
	t.Fatalf("%s never received an election connection", node)
	return 0
}

// f3 — ZK-4203: the would-be leader's election connection manager dies
// while accepting a vote; every election round stalls on it forever.
func TestF3ElectionListenerDeath(t *testing.T) {
	free := runFree(t, WorkloadElection, 1)
	occ := electionReach(t, free, "zk3")
	r := runWith(t, WorkloadElection, 1, inject.Instance{Site: "zk.election.accept-connection", Occurrence: occ})
	if !logHas(r, "Exception while listening for election connections on myid=3") {
		t.Fatalf("connection manager did not die:\n%s", r.RenderLog())
	}
	if logHas(r, "Leader is serving epoch") {
		t.Fatalf("no leader should ever serve:\n%s", r.RenderLog())
	}
	if !logHas(r, "Election round timed out") {
		t.Fatal("election rounds should keep timing out")
	}
}

// f3 control: the same fault on a non-candidate server is tolerated — the
// remaining two servers still form a quorum around zk3.
func TestF3ElectionListenerDeathOnFollowerTolerated(t *testing.T) {
	free := runFree(t, WorkloadElection, 1)
	occ := electionReach(t, free, "zk1")
	r := runWith(t, WorkloadElection, 1, inject.Instance{Site: "zk.election.accept-connection", Occurrence: occ})
	if !logHas(r, "Exception while listening for election connections on myid=1") {
		t.Fatalf("zk1 connection manager should die:\n%s", r.RenderLog())
	}
	if !logHas(r, "Leader is serving epoch") {
		t.Fatalf("zk3 should still serve with zk2:\n%s", r.RenderLog())
	}
}

// f4 — ZK-3006: truncated snapshot crashes the restarted server.
func TestF4TruncatedSnapshotNPE(t *testing.T) {
	free := runFree(t, WorkloadSnapshotRestart, 1)
	// Find zk1's last snapshot body write before the restart.
	occ := 0
	last := 0
	for _, ev := range free.Trace {
		if ev.Site == "zk.snap.write-body" {
			occ++
			if strings.HasPrefix(ev.Thread, "zk1-") && ev.Time < 1200*des.Millisecond {
				last = occ
			}
		}
	}
	if last == 0 {
		t.Fatal("zk1 never snapshotted")
	}
	r := runWith(t, WorkloadSnapshotRestart, 1, inject.Instance{Site: "zk.snap.write-body", Occurrence: last})
	if !logHas(r, "Error while taking snapshot") {
		t.Fatalf("snapshot error not logged:\n%s", r.RenderLog())
	}
	if !logHas(r, "NullPointerException") {
		t.Fatalf("restore did not hit the NPE:\n%s", r.RenderLog())
	}
	if !logHas(r, "Severe error starting quorum peer") {
		t.Fatalf("server should fail to start:\n%s", r.RenderLog())
	}
}

// f4 control: a truncated snapshot on a server that is NOT restarted is
// harmless within the run.
func TestF4OtherServerTolerated(t *testing.T) {
	free := runFree(t, WorkloadSnapshotRestart, 1)
	occ := 0
	target := 0
	for _, ev := range free.Trace {
		if ev.Site == "zk.snap.write-body" {
			occ++
			if strings.HasPrefix(ev.Thread, "zk3-") && target == 0 {
				target = occ
			}
		}
	}
	if target == 0 {
		t.Skip("zk3 never snapshotted under this seed")
	}
	r := runWith(t, WorkloadSnapshotRestart, 1, inject.Instance{Site: "zk.snap.write-body", Occurrence: target})
	if logHas(r, "NullPointerException") {
		t.Fatalf("NPE without restarting the corrupted server:\n%s", r.RenderLog())
	}
}

// Restart without any fault must restore state cleanly.
func TestRestartRestoresState(t *testing.T) {
	r := runFree(t, WorkloadSnapshotRestart, 4)
	if logHas(r, "Unable to load database") {
		t.Fatalf("clean restart failed:\n%s", r.RenderLog())
	}
	if !logHas(r, "Reading snapshot") {
		t.Fatalf("restart did not read a snapshot:\n%s", r.RenderLog())
	}
}

func TestTxnCodecRoundTrip(t *testing.T) {
	txn := Txn{Zxid: 42, Op: "create", Path: "/a/b", Value: "hello world"}
	got, ok := decodeTxn(strings.TrimSuffix(string(appendTxnRecord(nil, txn)), "\n"))
	if !ok || got != txn {
		t.Fatalf("round trip: %+v ok=%v", got, ok)
	}
	if _, ok := decodeTxn("garbage"); ok {
		t.Fatal("garbage decoded")
	}
	if _, ok := decodeTxn("x|y|z|w"); ok {
		t.Fatal("non-numeric zxid decoded")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runFree(t, WorkloadQuorum, 7)
	b := runFree(t, WorkloadQuorum, 7)
	if len(a.Entries) != len(b.Entries) {
		t.Fatalf("nondeterministic log length: %d vs %d", len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}
