package zk

import (
	"anduril/internal/cluster"
	"anduril/internal/des"
)

// Horizon is how much virtual time the zk workloads need to quiesce.
const Horizon = 3 * des.Second

// defaultOps is a small mixed read/write script, the shape of the
// "existing test" workloads the paper reuses.
func defaultOps() []Op {
	return []Op{
		{Kind: "create", Path: "/app", Value: "v0"},
		{Kind: "get", Path: "/app"},
		{Kind: "set", Path: "/app", Value: "v1"},
		{Kind: "get", Path: "/app"},
		{Kind: "create", Path: "/app/members", Value: "m0"},
		{Kind: "get", Path: "/app/members"},
		{Kind: "set", Path: "/app/members", Value: "m1"},
		{Kind: "get", Path: "/app/members"},
	}
}

// WorkloadQuorum boots a 3-server ensemble and drives a client session
// through a follower. It exercises election, forwarding, the proposal
// pipeline, txn logging and snapshots: the driving workload for f1
// (ZK-2247) and f2 (ZK-3157).
func WorkloadQuorum(env *cluster.Env) {
	c := NewCluster(env, 3)
	c.Start()
	cl := c.NewClient("zk-client-1", 1, defaultOps())
	cl.Run(250 * des.Millisecond)
}

// WorkloadElection boots the ensemble and issues a single write once the
// quorum should be up — the driving workload for f3 (ZK-4203), where the
// interesting part is whether the election ever completes.
func WorkloadElection(env *cluster.Env) {
	c := NewCluster(env, 3)
	c.Start()
	cl := c.NewClient("zk-client-1", 1, []Op{
		{Kind: "create", Path: "/lock", Value: "holder"},
		{Kind: "get", Path: "/lock"},
	})
	cl.Run(400 * des.Millisecond)
}

// WorkloadSnapshotRestart drives writes, lets periodic snapshots run, then
// restarts follower zk1 so it restores from its latest snapshot — the
// driving workload for f4 (ZK-3006).
func WorkloadSnapshotRestart(env *cluster.Env) {
	c := NewCluster(env, 3)
	c.Start()
	cl := c.NewClient("zk-client-1", 1, defaultOps())
	cl.Run(250 * des.Millisecond)
	env.Sim.Post("harness", 1200*des.Millisecond, func() {
		c.Restart(1)
	})
}
