// Package zk is a miniature ZooKeeper-like replicated coordination service
// built on the simulated cluster substrate. It implements leader election,
// quorum-committed writes with a synchronous transaction log, periodic
// snapshots, and client sessions.
//
// The package deliberately contains the bug patterns of the four ZooKeeper
// failures in the paper's dataset (Table 5): ZK-2247 (f1), ZK-3157 (f2),
// ZK-4203 (f3) and ZK-3006 (f4). Each bug lies dormant until the right
// fault is injected at the right dynamic occurrence, exactly like the
// production incidents.
package zk

import (
	"fmt"
	"strconv"
	"strings"

	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/inject"
	"anduril/internal/simnet"
)

// Roles a server can be in.
const (
	roleLooking   = "LOOKING"
	roleLeading   = "LEADING"
	roleFollowing = "FOLLOWING"
)

// Txn is one replicated state-machine operation.
type Txn struct {
	Zxid  int64
	Op    string // "create" | "set" | "delete"
	Path  string
	Value string
}

// appendTxnRecord encodes one txn record ("zxid|op|path|value\n") into b,
// byte-identical to the old fmt.Sprintf form but without per-record
// allocations — the log is appended on every replicated write.
func appendTxnRecord(b []byte, t Txn) []byte {
	b = strconv.AppendInt(b, t.Zxid, 10)
	b = append(b, '|')
	b = append(b, t.Op...)
	b = append(b, '|')
	b = append(b, t.Path...)
	b = append(b, '|')
	b = append(b, t.Value...)
	return append(b, '\n')
}

func decodeTxn(line string) (Txn, bool) {
	parts := strings.SplitN(line, "|", 4)
	if len(parts) != 4 {
		return Txn{}, false
	}
	var zxid int64
	if _, err := fmt.Sscanf(parts[0], "%d", &zxid); err != nil {
		return Txn{}, false
	}
	return Txn{Zxid: zxid, Op: parts[1], Path: parts[2], Value: parts[3]}, true
}

// Cluster is a set of zk servers sharing one simulated environment.
type Cluster struct {
	env     *cluster.Env
	Servers []*Server
	n       int
}

// NewCluster creates (but does not start) an n-server ensemble. Every
// server is registered for crash/restart environment faults: a crash
// kills the current incarnation's loops without graceful shutdown, and
// the restart boots a fresh incarnation from the surviving on-disk state.
func NewCluster(env *cluster.Env, n int) *Cluster {
	c := &Cluster{env: env, n: n}
	for i := 1; i <= n; i++ {
		c.Servers = append(c.Servers, newServer(c, i))
	}
	for i := 1; i <= n; i++ {
		id := i
		env.RegisterNode(fmt.Sprintf("zk%d", id), cluster.NodeControl{
			Crash:   func() { c.Servers[id-1].crash() },
			Restart: func() { c.reincarnate(id) },
		})
	}
	return c
}

// Quorum returns the majority size.
func (c *Cluster) Quorum() int { return c.n/2 + 1 }

// Start boots every server.
func (c *Cluster) Start() {
	for _, s := range c.Servers {
		s.start()
	}
}

// Leader returns the current leader server, if one is established.
func (c *Cluster) Leader() (*Server, bool) {
	for _, s := range c.Servers {
		if s.role == roleLeading && s.serving {
			return s, true
		}
	}
	return nil, false
}

// Restart stops server id and boots a fresh incarnation reading the same
// on-disk state (the same node name, so logs stay thread-stable).
func (c *Cluster) Restart(id int) {
	old := c.Servers[id-1]
	old.stop()
	c.reincarnate(id)
}

// reincarnate boots a fresh incarnation of server id from its on-disk
// state without gracefully stopping the old one — the restart half of a
// crash environment fault, where the dead incarnation has nothing left
// to say.
func (c *Cluster) reincarnate(id int) {
	fresh := newServer(c, id)
	c.Servers[id-1] = fresh
	fresh.start()
}

// Server is one zk ensemble member.
type Server struct {
	c    *Cluster
	id   int
	name string // node & base actor name, e.g. "zk1"

	stopped bool
	role    string
	epoch   int64
	zxid    int64

	// Election state.
	voteFor          int
	votes            map[int]int // voter -> candidate
	leaderID         int
	acceptDead       bool // latent defect: the follower-acceptor thread has died
	electionDead     bool // ZK-4203: the election connection manager has died
	synced           map[int]bool
	serving          bool
	syncedWithLeader bool

	// Replication state.
	data         map[string]string
	pending      map[int64]Txn
	pipelineDead bool // ZK-2247: the sync/request pipeline has died
	acks         map[int64]map[int]bool
	pendingResp  map[int64]func(interface{}, error)
	lastSnapZxid int64

	connectTries int

	// Persistence hot-path scratch: the txn-log path is fixed per server,
	// and scratch is the reusable encode buffer for txn records and
	// snapshot bodies (simdisk copies on Append, so reuse is safe).
	txnLog  string
	scratch []byte

	// snapPath memoizes the last rendered snapshot path: the replication
	// path re-renders the same zxid's path on every commit check.
	snapPath     string
	snapPathZxid int64

	// actors caches "name-thread" actor strings; the handful of thread
	// names recur on every timer tick and message send.
	actors map[string]string
}

func newServer(c *Cluster, id int) *Server {
	name := fmt.Sprintf("zk%d", id)
	s := &Server{
		c:           c,
		id:          id,
		name:        name,
		txnLog:      name + "/txnlog",
		role:        roleLooking,
		data:        make(map[string]string),
		votes:       make(map[int]int),
		synced:      make(map[int]bool),
		acks:        make(map[int64]map[int]bool),
		pendingResp: make(map[int64]func(interface{}, error)),
		actors:      make(map[string]string, 8),
	}
	return s
}

func (s *Server) env() *cluster.Env { return s.c.env }

// actor returns a thread name of this server, e.g. "zk1-sync". Names are
// cached per server: the same few threads recur on every tick and send.
func (s *Server) actor(thread string) string {
	a, ok := s.actors[thread]
	if !ok {
		a = s.name + "-" + thread
		s.actors[thread] = a
	}
	return a
}

func (s *Server) start() {
	env := s.env()
	s.registerHandlers()
	env.Sim.Go(s.actor("main"), func() {
		env.Log.Infof("Starting quorum peer myid=%d", s.id)
		if err := s.loadDatabase(); err != nil {
			env.Log.Errorf("Unable to load database on disk: %s", err)
			env.Log.Errorf("Severe error starting quorum peer, shutting down myid=%d", s.id)
			s.stopped = true
			return
		}
		s.startElection()
	})
	// Periodic snapshots once serving.
	env.Sim.Every(s.actor("snapshot"), 150*des.Millisecond, func() {
		if s.stopped || !s.serving && s.role != roleFollowing {
			return
		}
		if err := s.takeSnapshot(); err != nil {
			env.Log.Errorf("Error while taking snapshot on myid=%d: %s", s.id, err)
			// ZK-3006 defect: the truncated snapshot file is left on disk.
		}
	})
	// Leader pings followers to detect liveness.
	env.Sim.Every(s.actor("ping"), 50*des.Millisecond, func() {
		if s.stopped || s.role != roleLeading {
			return
		}
		for _, p := range s.c.Servers {
			if p.id == s.id {
				continue
			}
			err := env.Net.Send("zk.leader.ping-follower", s.msg(p.name, "zk.ping", s.epoch))
			if err != nil {
				env.Log.Warnf("Failed to ping follower zk%d: %s", p.id, err)
			}
		}
	})

	// Snapshot purger: keep only the newest few snapshots on disk, like
	// ZooKeeper's autopurge.
	env.Sim.Every(s.actor("purge"), 600*des.Millisecond, func() {
		if s.stopped {
			return
		}
		snaps := env.Disk.List(s.name + "/snapshot.")
		for len(snaps) > 3 {
			victim := snaps[0]
			snaps = snaps[1:]
			if err := env.Disk.Delete("zk.snap.purge-old", victim); err != nil {
				env.Log.Warnf("Could not purge old snapshot %s: %s", victim, err)
				return
			}
			env.Log.Debugf("Purged old snapshot %s", victim)
		}
	})
}

func (s *Server) stop() {
	s.stopped = true
	s.env().Log.Infof("Shutting down quorum peer myid=%d", s.id)
}

// crash models a process kill: the incarnation's loops stop, and unlike
// stop there is no graceful-shutdown logging — a killed process says
// nothing on the way down.
func (s *Server) crash() { s.stopped = true }

func (s *Server) msg(to, typ string, payload interface{}) simnet.Message {
	return simnet.Message{From: s.name, To: to, Type: typ, Payload: payload}
}

// isConnectionFault reports whether err is a broken-channel class fault
// (as opposed to a timeout or an application-level error).
func isConnectionFault(err error) bool {
	f, ok := inject.AsFault(err)
	return ok && (f.Kind == inject.Socket || f.Kind == inject.Connection)
}
