package zk

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Disk layout per server: "zk<id>/txnlog" is the transaction log and
// "zk<id>/snapshot.<zxid>" are fuzzy snapshots.

func (s *Server) txnLogPath() string { return s.txnLog }

const zeroPad16 = "0000000000000000"

// snapshotPath renders "<name>/snapshot.<zxid %016d>" without fmt — this
// sits on the replication hot path (every commit checks snapshot state).
func (s *Server) snapshotPath(zxid int64) string {
	if s.snapPath != "" && s.snapPathZxid == zxid {
		return s.snapPath
	}
	digits := strconv.FormatInt(zxid, 10)
	p := s.name + "/snapshot." + digits
	if len(digits) < 16 {
		p = s.name + "/snapshot." + zeroPad16[:16-len(digits)] + digits
	}
	s.snapPath, s.snapPathZxid = p, zxid
	return p
}

// appendTxn writes one transaction record to the log and fsyncs it. This
// is the fault boundary of ZK-2247 (f1). The record is encoded into the
// server's reusable scratch buffer; simdisk copies on Append.
func (s *Server) appendTxn(txn Txn) error {
	env := s.env()
	s.scratch = appendTxnRecord(s.scratch[:0], txn)
	if err := env.Disk.Append("zk.sync.append-txn", s.txnLog, s.scratch); err != nil {
		return fmt.Errorf("failed to write transaction log: %w", err)
	}
	if err := env.Disk.Sync("zk.sync.fsync-txnlog", s.txnLog); err != nil {
		return fmt.Errorf("failed to fsync transaction log: %w", err)
	}
	return nil
}

// takeSnapshot serializes the data tree to a new snapshot file. The write
// is multi-step (header, body, footer); a fault in the middle leaves a
// truncated snapshot on disk, the precondition of ZK-3006 (f4). The real
// incident's defect is the same: the partially-written snapshot is not
// removed after the error.
func (s *Server) takeSnapshot() error {
	env := s.env()
	path := s.snapshotPath(s.zxid)
	if s.zxid == s.lastSnapZxid && env.Disk.Exists(path) {
		return nil // nothing new to snapshot
	}
	env.Log.Debugf("Taking snapshot at zxid=0x%x on myid=%d", s.zxid, s.id)
	if err := env.Disk.Create("zk.snap.create", path); err != nil {
		return fmt.Errorf("cannot create snapshot file: %w", err)
	}
	// Defect (ZK-3006): the snapshot is considered taken from this point
	// on, even if a later write step fails and leaves the file truncated.
	s.lastSnapZxid = s.zxid
	header := s.scratch[:0]
	header = append(header, "SNAP|"...)
	header = strconv.AppendInt(header, s.epoch, 10)
	header = append(header, '|')
	header = strconv.AppendInt(header, s.zxid, 10)
	header = append(header, '\n')
	s.scratch = header
	if err := env.Disk.Append("zk.snap.write-header", path, header); err != nil {
		return fmt.Errorf("cannot write snapshot header: %w", err)
	}
	// Serialize in sorted path order so snapshot bytes are a pure function
	// of the datatree, not of map iteration order.
	paths := make([]string, 0, len(s.data))
	for p := range s.data {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	body := s.scratch[:0]
	for _, p := range paths {
		body = append(body, "N|"...)
		body = append(body, p...)
		body = append(body, '|')
		body = append(body, s.data[p]...)
		body = append(body, '\n')
	}
	s.scratch = body
	if err := env.Disk.Append("zk.snap.write-body", path, body); err != nil {
		return fmt.Errorf("cannot serialize datatree: %w", err)
	}
	if err := env.Disk.Append("zk.snap.write-footer", path, []byte("END\n")); err != nil {
		return fmt.Errorf("cannot finalize snapshot: %w", err)
	}
	return nil
}

// loadDatabase restores the data tree from the newest snapshot and replays
// the transaction log. Parsing a truncated snapshot dereferences a missing
// node — the NullPointerException of ZK-3006 (f4).
func (s *Server) loadDatabase() error {
	env := s.env()
	snaps := env.Disk.List(s.name + "/snapshot.")
	if len(snaps) > 0 {
		latest := snaps[len(snaps)-1]
		env.Log.Infof("Reading snapshot %s on myid=%d", latest, s.id)
		content, err := env.Disk.Read("zk.snap.read", latest)
		if err != nil {
			return fmt.Errorf("cannot read snapshot %s: %w", latest, err)
		}
		if err := s.deserializeSnapshot(latest, string(content)); err != nil {
			return err
		}
	}
	if env.Disk.Exists(s.txnLogPath()) {
		content, err := env.Disk.Read("zk.txnlog.read", s.txnLogPath())
		if err != nil {
			return fmt.Errorf("cannot read transaction log: %w", err)
		}
		for _, line := range strings.Split(string(content), "\n") {
			if line == "" {
				continue
			}
			txn, ok := decodeTxn(line)
			if !ok {
				env.Log.Warnf("Skipping malformed txn record on myid=%d", s.id)
				continue
			}
			if txn.Zxid > s.zxid {
				s.applyTxn(txn)
			}
		}
	}
	return nil
}

// deserializeSnapshot parses a snapshot file. The footer check is the
// defective part: a file with a valid header but missing END marker makes
// the restore path touch a nil node, mirroring the NPE in ZK-3006.
func (s *Server) deserializeSnapshot(path, content string) error {
	env := s.env()
	lines := strings.Split(content, "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "SNAP|") {
		return fmt.Errorf("snapshot %s has no header", path)
	}
	complete := false
	for _, line := range lines[1:] {
		if line == "END" {
			complete = true
			break
		}
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "|", 3)
		if len(parts) == 3 && parts[0] == "N" {
			s.data[parts[1]] = parts[2]
		}
	}
	var header [3]string
	copy(header[:], strings.SplitN(lines[0], "|", 3))
	fmt.Sscanf(header[2], "%d", &s.zxid)
	fmt.Sscanf(header[1], "%d", &s.epoch)
	if !complete {
		// The datatree's session node was never restored; dereferencing it
		// blows up, as the real server did.
		env.Log.Errorf("Unexpected null datatree node restoring snapshot %s: NullPointerException", path)
		return fmt.Errorf("null datatree node in %s", path)
	}
	return nil
}
