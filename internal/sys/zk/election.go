package zk

import (
	"anduril/internal/des"
	"anduril/internal/inject"
	"anduril/internal/simnet"
)

// vote is a fast-leader-election notification. State carries the sender's
// role so peers can distinguish fresh ballots from authoritative reminders.
type vote struct {
	Epoch     int64
	Zxid      int64
	Candidate int
	Voter     int
	State     string
}

// registerHandlers wires the server's message handlers onto the network.
// Re-registering after a restart overwrites the previous incarnation's
// handlers, so a restarted node keeps its thread names.
func (s *Server) registerHandlers() {
	env := s.env()
	env.Net.Handle(s.name, "zk.vote", s.actor("quorum"), s.onVote)
	env.Net.Handle(s.name, "zk.follower-info", s.actor("quorum"), s.onFollowerInfo)
	env.Net.Handle(s.name, "zk.proposal", s.actor("quorum"), s.onProposal)
	env.Net.Handle(s.name, "zk.ack", s.actor("quorum"), s.onAck)
	env.Net.Handle(s.name, "zk.commit", s.actor("quorum"), s.onCommit)
	env.Net.Handle(s.name, "zk.request", s.actor("cnxn"), s.onForwardedRequest)
	env.Net.Handle(s.name, "zk.client-req", s.actor("cnxn"), s.onClientRequest)
	env.Net.Handle(s.name, "zk.ping", s.actor("quorum"), s.onPing)
}

// startElection begins a new leader-election round.
func (s *Server) startElection() {
	if s.stopped {
		return
	}
	env := s.env()
	s.role = roleLooking
	s.serving = false
	s.syncedWithLeader = false
	s.leaderID = 0
	s.epoch++
	s.voteFor = s.id
	s.votes = map[int]int{s.id: s.id}
	env.Log.Infof("New election round on myid=%d, proposed zxid=0x%x epoch=%d", s.id, s.zxid, s.epoch)
	s.broadcastVote()
	// If the round stalls (lost votes, a deaf connection manager on the
	// would-be leader, ...), start over; production ZooKeeper does too.
	env.Sim.Post(s.actor("quorum"), 500*des.Millisecond, func() {
		if !s.stopped && s.role == roleLooking {
			env.Log.Warnf("Election round timed out on myid=%d, starting new round", s.id)
			s.startElection()
		}
	})
}

func (s *Server) broadcastVote() {
	env := s.env()
	for _, p := range s.c.Servers {
		if p.id == s.id {
			continue
		}
		v := vote{Epoch: s.epoch, Zxid: s.zxid, Candidate: s.voteFor, Voter: s.id, State: s.role}
		err := env.Net.Send("zk.election.send-vote", s.msg(p.name, "zk.vote", v))
		if err != nil {
			env.Log.Warnf("Failed to send election notification to zk%d: %s", p.id, err)
		}
	}
}

// onVote is the election connection manager's receive loop — the fault
// boundary of ZK-4203 (f3). An I/O fault while accepting an election
// connection kills the whole connection manager on this server (the
// defective design in the real incident): the server can still send votes
// but never hears another one, so an election waiting on it stalls forever.
func (s *Server) onVote(m simnet.Message, _ func(interface{}, error)) {
	if s.stopped || s.electionDead {
		return
	}
	env := s.env()
	if err := env.FI.Reach("zk.election.accept-connection", inject.IO); err != nil {
		env.Log.Errorf("Exception while listening for election connections on myid=%d: %s; connection manager exiting", s.id, err)
		s.electionDead = true
		return
	}
	v, ok := m.Payload.(vote)
	if !ok {
		return
	}

	// Authoritative claim from an established leader.
	if v.State == roleLeading && v.Candidate != s.id {
		if s.role == roleLeading && s.id > v.Candidate {
			return // I outrank the claimant; ignore the stale claim
		}
		if s.role == roleFollowing && s.leaderID == v.Candidate && s.syncedWithLeader {
			return // already settled on this leader
		}
		s.becomeFollower(v.Candidate)
		return
	}

	if s.role != roleLooking {
		// Remind the LOOKING sender who leads.
		reply := vote{Epoch: s.epoch, Zxid: s.zxid, Candidate: s.leaderID, Voter: s.id, State: s.role}
		if s.role == roleLeading {
			reply.Candidate = s.id
		}
		if reply.Candidate == 0 {
			return
		}
		if err := env.Net.Send("zk.election.send-vote", s.msg(m.From, "zk.vote", reply)); err != nil {
			env.Log.Warnf("Failed to send election notification to %s: %s", m.From, err)
		}
		return
	}

	// LOOKING: fresh ballots can change my vote; reminders only add to the
	// tally. A server only claims leadership for itself; it never follows a
	// peer until that peer announces LEADING.
	if v.State == roleLooking && v.Candidate > s.voteFor {
		s.voteFor = v.Candidate
		s.votes[s.id] = s.voteFor
		env.Log.Debugf("Adopting vote for zk%d on myid=%d", v.Candidate, s.id)
		s.broadcastVote()
	}
	s.votes[v.Voter] = v.Candidate
	tally := 0
	for _, cand := range s.votes {
		if cand == s.id {
			tally++
		}
	}
	if tally >= s.c.Quorum() {
		s.becomeLeader()
	}
}

func (s *Server) becomeLeader() {
	env := s.env()
	s.role = roleLeading
	s.leaderID = s.id
	s.acceptDead = false
	s.synced = make(map[int]bool)
	env.Log.Infof("LEADING on myid=%d epoch=%d", s.id, s.epoch)
	// Announce leadership so LOOKING peers follow.
	for _, p := range s.c.Servers {
		if p.id == s.id {
			continue
		}
		v := vote{Epoch: s.epoch, Zxid: s.zxid, Candidate: s.id, Voter: s.id, State: roleLeading}
		if err := env.Net.Send("zk.leader.announce", s.msg(p.name, "zk.vote", v)); err != nil {
			env.Log.Warnf("Failed to announce leadership to zk%d: %s", p.id, err)
		}
	}
}

func (s *Server) becomeFollower(leader int) {
	env := s.env()
	s.role = roleFollowing
	s.leaderID = leader
	s.syncedWithLeader = false
	s.connectTries = 0
	env.Log.Infof("FOLLOWING zk%d on myid=%d epoch=%d", leader, s.id, s.epoch)
	s.connectToLeader()
}

// connectToLeader registers this follower with the leader's follower
// acceptor. After repeated failures the follower re-enters LOOKING, as
// quorum peers do.
func (s *Server) connectToLeader() {
	if s.stopped || s.role != roleFollowing {
		return
	}
	env := s.env()
	leader := s.c.Servers[s.leaderID-1]
	env.Net.Call("zk.follower.connect-leader", s.msg(leader.name, "zk.follower-info", s.id),
		150*des.Millisecond, func(payload interface{}, err error) {
			if err != nil {
				s.connectTries++
				env.Log.Warnf("Cannot open channel to leader at zk%d (try %d): %s", s.leaderID, s.connectTries, err)
				if s.connectTries >= 2 {
					env.Log.Warnf("Exception when following the leader zk%d, re-entering LOOKING on myid=%d", s.leaderID, s.id)
					s.startElection()
					return
				}
				env.Sim.Post(s.actor("quorum"), 200*des.Millisecond, s.connectToLeader)
				return
			}
			s.connectTries = 0
			s.syncedWithLeader = true
			env.Log.Infof("Synced with leader zk%d on myid=%d", s.leaderID, s.id)
		})
}

// onFollowerInfo is the leader-side follower acceptor. A fault here kills
// the acceptor thread — a second latent defect of the same family as f3,
// with its own distinct symptom message.
func (s *Server) onFollowerInfo(m simnet.Message, respond func(interface{}, error)) {
	if s.stopped || s.acceptDead || s.role != roleLeading {
		return // dead listener: the follower's call times out
	}
	env := s.env()
	if err := env.FI.Reach("zk.leader.accept-follower", inject.Socket); err != nil {
		env.Log.Errorf("Exception while accepting follower connection: %s; follower acceptor exiting", err)
		s.acceptDead = true
		return
	}
	fid, _ := m.Payload.(int)
	s.synced[fid] = true
	respond(s.epoch, nil)
	if len(s.synced)+1 >= s.c.Quorum() && !s.serving {
		s.serving = true
		env.Log.Infof("Leader is serving epoch %d with %d synced followers", s.epoch, len(s.synced))
	}
}

func (s *Server) onPing(m simnet.Message, _ func(interface{}, error)) {
	// Heartbeat; nothing to do, but it keeps the network as noisy as a
	// real ensemble.
}
