package zk

import (
	"fmt"

	"anduril/internal/des"
	"anduril/internal/simnet"
)

// request is a client operation as shipped between servers.
type request struct {
	Op      string
	Path    string
	Value   string
	Session int64
}

func (r request) isWrite() bool { return r.Op == "create" || r.Op == "set" || r.Op == "delete" }

// onClientRequest serves a client session call. Followers forward both
// writes and sync reads to the leader, which is where the ZK-3157 (f2)
// defect lives: a forwarding failure for a write tears down the whole
// client session instead of retrying.
func (s *Server) onClientRequest(m simnet.Message, respond func(interface{}, error)) {
	if s.stopped {
		return
	}
	env := s.env()
	req, ok := m.Payload.(request)
	if !ok {
		respond(nil, fmt.Errorf("zk: malformed client request"))
		return
	}
	if req.Op == "connect" {
		sid := int64(s.id)*0x100000 + req.Session
		env.Log.Infof("Established session 0x%x with client %s on myid=%d", sid, m.From, s.id)
		respond(sid, nil)
		return
	}
	if req.Op == "ping" {
		respond("pong", nil)
		return
	}
	if s.role == roleLeading {
		s.processRequest(req, respond)
		return
	}
	if s.leaderID == 0 {
		respond(nil, fmt.Errorf("zk: no leader elected"))
		return
	}
	s.forwardToLeader(req, respond, 1)
}

// forwardToLeader relays a request over the follower's leader channel.
func (s *Server) forwardToLeader(req request, respond func(interface{}, error), attempt int) {
	env := s.env()
	if s.leaderID == 0 || s.leaderID == s.id {
		// Mid-election; try again shortly.
		if attempt < 6 {
			env.Sim.Post(s.actor("cnxn"), 250*des.Millisecond, func() {
				s.forwardToLeader(req, respond, attempt+1)
			})
			return
		}
		respond(nil, fmt.Errorf("zk: no leader elected"))
		return
	}
	leader := s.c.Servers[s.leaderID-1]
	env.Net.Call("zk.follower.forward-request", s.msg(leader.name, "zk.request", req),
		250*des.Millisecond, func(payload interface{}, err error) {
			if err != nil {
				if req.isWrite() && isConnectionFault(err) {
					// ZK-3157 defect: a broken leader channel during a write
					// closes the client session outright; the pending write's
					// outcome is unknown, and the session is not recoverable.
					env.Log.Warnf("Unexpected exception causing session 0x%x close: %s", req.Session, err)
					respond(nil, fmt.Errorf("session closed due to connection loss: %w", err))
					return
				}
				if attempt < 6 {
					env.Log.Warnf("Request forward to leader failed on myid=%d (attempt %d), retrying: %s", s.id, attempt, err)
					env.Sim.Post(s.actor("cnxn"), 250*des.Millisecond, func() {
						s.forwardToLeader(req, respond, attempt+1)
					})
					return
				}
				respond(nil, err)
				return
			}
			respond(payload, nil)
		})
}

// onForwardedRequest handles a request relayed by a follower to the leader.
func (s *Server) onForwardedRequest(m simnet.Message, respond func(interface{}, error)) {
	if s.stopped {
		return
	}
	req, ok := m.Payload.(request)
	if !ok {
		respond(nil, fmt.Errorf("zk: malformed forwarded request"))
		return
	}
	if s.role != roleLeading {
		respond(nil, fmt.Errorf("zk: not the leader"))
		return
	}
	s.processRequest(req, respond)
}

// processRequest runs on the leader: reads answer immediately; writes go
// through the quorum proposal pipeline.
func (s *Server) processRequest(req request, respond func(interface{}, error)) {
	env := s.env()
	if !req.isWrite() {
		val, ok := s.data[req.Path]
		if !ok {
			respond(nil, fmt.Errorf("zk: no node %s", req.Path))
			return
		}
		respond(val, nil)
		return
	}
	if s.pipelineDead {
		// ZK-2247: the request pipeline thread has died; requests are
		// accepted but never processed, so callers time out.
		env.Log.Debugf("Dropping request %s: request processor unavailable", req.Path)
		return
	}
	if !s.serving {
		// A leader without a synced quorum cannot commit anything yet.
		env.Log.Debugf("Leader not serving yet, dropping request %s", req.Path)
		return
	}
	s.zxid++
	txn := Txn{Zxid: s.zxid, Op: req.Op, Path: req.Path, Value: req.Value}
	s.pendingResp[txn.Zxid] = respond
	s.acks[txn.Zxid] = make(map[int]bool)
	s.pendingTxn(txn)
	env.Log.Debugf("Proposing zxid=0x%x %s %s", txn.Zxid, txn.Op, txn.Path)
	for _, p := range s.c.Servers {
		if p.id == s.id {
			self := p
			env.Sim.Go(s.actor("sync"), func() { self.processProposal(txn) })
			continue
		}
		err := env.Net.Send("zk.leader.send-proposal", s.msg(p.name, "zk.proposal", txn))
		if err != nil {
			env.Log.Warnf("Failed to send proposal zxid=0x%x to zk%d: %s", txn.Zxid, p.id, err)
		}
	}
}

// onProposal is the follower-side proposal handler: hand the txn to the
// sync processor thread.
func (s *Server) onProposal(m simnet.Message, _ func(interface{}, error)) {
	if s.stopped {
		return
	}
	txn, ok := m.Payload.(Txn)
	if !ok {
		return
	}
	env := s.env()
	env.Sim.Go(s.actor("sync"), func() { s.processProposal(txn) })
}

// processProposal is the SyncRequestProcessor: write the txn to the
// transaction log, then ack the leader. This hosts the ZK-2247 (f1)
// defect: a transaction-log write error kills the processor thread but
// leaves the process up; on the leader, the dead pipeline also stops the
// commit processor, making the whole ensemble unavailable.
func (s *Server) processProposal(txn Txn) {
	if s.stopped || s.pipelineDead {
		return
	}
	if s.role != roleLeading && (s.role != roleFollowing || !s.syncedWithLeader || s.leaderID == 0) {
		return // not yet part of the leader's quorum
	}
	env := s.env()
	if err := s.appendTxn(txn); err != nil {
		env.Log.Errorf("Severe unrecoverable error, exiting SyncRequestProcessor on myid=%d: %s", s.id, err)
		s.pipelineDead = true
		return
	}
	if s.role == roleLeading {
		s.recordAck(txn.Zxid, s.id)
		return
	}
	err := env.Net.Send("zk.sync.send-ack", s.msg(s.c.Servers[s.leaderID-1].name, "zk.ack", ackMsg{Zxid: txn.Zxid, From: s.id}))
	if err != nil {
		env.Log.Warnf("Failed to send ack zxid=0x%x from myid=%d: %s", txn.Zxid, s.id, err)
	}
	s.pendingTxn(txn)
}

type ackMsg struct {
	Zxid int64
	From int
}

// pendingTxn caches a proposed txn until its commit arrives.
func (s *Server) pendingTxn(txn Txn) {
	if s.pending == nil {
		s.pending = make(map[int64]Txn)
	}
	s.pending[txn.Zxid] = txn
}

func (s *Server) onAck(m simnet.Message, _ func(interface{}, error)) {
	if s.stopped {
		return
	}
	a, ok := m.Payload.(ackMsg)
	if !ok {
		return
	}
	s.recordAck(a.Zxid, a.From)
}

// recordAck runs on the leader; a quorum of acks commits the txn.
func (s *Server) recordAck(zxid int64, from int) {
	if s.role != roleLeading {
		return
	}
	env := s.env()
	if s.pipelineDead {
		// ZK-2247: the commit processor shares the dead pipeline thread.
		env.Log.Debugf("Dropping ack zxid=0x%x: commit processor unavailable", zxid)
		return
	}
	set := s.acks[zxid]
	if set == nil {
		return // already committed
	}
	set[from] = true
	if len(set) < s.c.Quorum() {
		return
	}
	delete(s.acks, zxid)
	env.Log.Infof("Committing zxid=0x%x", zxid)
	txn := s.pending[zxid]
	delete(s.pending, zxid)
	s.applyTxn(txn)
	for _, p := range s.c.Servers {
		if p.id == s.id {
			continue
		}
		err := env.Net.Send("zk.leader.send-commit", s.msg(p.name, "zk.commit", zxid))
		if err != nil {
			env.Log.Warnf("Failed to send commit zxid=0x%x to zk%d: %s", zxid, p.id, err)
		}
	}
	if respond := s.pendingResp[zxid]; respond != nil {
		delete(s.pendingResp, zxid)
		respond("ok", nil)
	}
}

func (s *Server) onCommit(m simnet.Message, _ func(interface{}, error)) {
	if s.stopped {
		return
	}
	zxid, ok := m.Payload.(int64)
	if !ok {
		return
	}
	txn, ok := s.pending[zxid]
	if !ok {
		return
	}
	delete(s.pending, zxid)
	s.applyTxn(txn)
}

func (s *Server) applyTxn(txn Txn) {
	env := s.env()
	switch txn.Op {
	case "create", "set":
		s.data[txn.Path] = txn.Value
	case "delete":
		delete(s.data, txn.Path)
	}
	if txn.Zxid > s.zxid {
		s.zxid = txn.Zxid
	}
	env.Log.Debugf("Applied zxid=0x%x %s %s on myid=%d", txn.Zxid, txn.Op, txn.Path, s.id)
}
