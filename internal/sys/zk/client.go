package zk

import (
	"errors"

	"anduril/internal/des"
	"anduril/internal/inject"
	"anduril/internal/simnet"
)

// Op is one scripted client operation.
type Op struct {
	Kind  string // "create" | "set" | "get" | "delete"
	Path  string
	Value string
}

// Client is a scripted session against one ensemble member.
type Client struct {
	c         *Cluster
	name      string
	server    *Server
	session   int64
	ops       []Op
	idx       int
	stopPings func()
}

// NewClient creates a client that talks to server id.
func (c *Cluster) NewClient(name string, serverID int, ops []Op) *Client {
	return &Client{c: c, name: name, server: c.Servers[serverID-1], ops: ops}
}

// Run connects the session and then executes the scripted operations
// sequentially, retrying each once on timeout before declaring the server
// unavailable — the client-visible symptom of ZK-2247 (f1).
func (cl *Client) Run(startDelay des.Time) {
	env := cl.c.env
	env.Sim.Post(cl.name, startDelay, cl.connect)
}

func (cl *Client) connect() {
	env := cl.c.env
	env.Net.Call("zk.client.connect", simnet.Message{
		From: cl.name, To: cl.server.name, Type: "zk.client-req",
		Payload: request{Op: "connect", Session: 1},
	}, 300*des.Millisecond, func(payload interface{}, err error) {
		if err != nil {
			env.Log.Warnf("Client %s could not establish session, retrying: %s", cl.name, err)
			env.Sim.Post(cl.name, 200*des.Millisecond, cl.connect)
			return
		}
		cl.session = payload.(int64)
		env.Log.Infof("Client %s session established: 0x%x", cl.name, cl.session)
		cl.startPings()
		cl.nextOp(0)
	})
}

// startPings keeps the session alive; repeated ping failures expire it and
// trigger a reconnect, as the real client library does.
func (cl *Client) startPings() {
	env := cl.c.env
	if cl.stopPings != nil {
		cl.stopPings() // a reconnect replaces the previous ping loop
	}
	misses := 0
	cl.stopPings = env.Sim.Every(cl.name+"-ping", 120*des.Millisecond, func() {
		if cl.idx >= len(cl.ops) {
			return // workload done; session idles out naturally
		}
		env.Net.Call("zk.client.ping", simnet.Message{
			From: cl.name, To: cl.server.name, Type: "zk.client-req",
			Payload: request{Op: "ping", Session: cl.session},
		}, 200*des.Millisecond, func(_ interface{}, err error) {
			if err != nil {
				misses++
				env.Log.Warnf("Client %s session ping missed (%d in a row)", cl.name, misses)
				if misses >= 3 {
					env.Log.Warnf("Client %s session 0x%x expired, reconnecting", cl.name, cl.session)
					misses = 0
					cl.connect()
				}
				return
			}
			misses = 0
		})
	})
}

func (cl *Client) nextOp(attempt int) {
	env := cl.c.env
	if cl.idx >= len(cl.ops) {
		env.Log.Infof("Client %s finished workload (%d ops)", cl.name, len(cl.ops))
		return
	}
	op := cl.ops[cl.idx]
	env.Net.Call("zk.client.request", simnet.Message{
		From: cl.name, To: cl.server.name, Type: "zk.client-req",
		Payload: request{Op: op.Kind, Path: op.Path, Value: op.Value, Session: cl.session},
	}, 400*des.Millisecond, func(payload interface{}, err error) {
		if err != nil {
			if isTimeout(err) && attempt < 1 {
				env.Log.Warnf("Client %s operation %s %s timed out, retrying", cl.name, op.Kind, op.Path)
				env.Sim.Post(cl.name, 100*des.Millisecond, func() { cl.nextOp(attempt + 1) })
				return
			}
			if isTimeout(err) {
				env.Log.Errorf("Client %s request %s timed out; server unavailable", cl.name, op.Path)
			} else {
				env.Log.Errorf("Client %s session expired; client failed with connection loss: %s", cl.name, err)
			}
			return // client gives up: the workload's failure endpoint
		}
		env.Log.Debugf("Client %s completed %s %s", cl.name, op.Kind, op.Path)
		cl.idx++
		env.Sim.Post(cl.name, 30*des.Millisecond, func() { cl.nextOp(0) })
	})
}

func isTimeout(err error) bool {
	return errors.Is(err, inject.KindErr(inject.Timeout))
}
