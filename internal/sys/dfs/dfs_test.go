package dfs

import (
	"strings"
	"testing"

	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/inject"
)

func runFree(t *testing.T, w cluster.Workload, seed int64) *cluster.Result {
	t.Helper()
	return cluster.Execute(seed, nil, true, w, Horizon)
}

func runWith(t *testing.T, w cluster.Workload, seed int64, inst inject.Instance) *cluster.Result {
	t.Helper()
	return cluster.Execute(seed, inject.Exact(inst), true, w, Horizon)
}

func TestWriteWorkloadHealthy(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r := runFree(t, WorkloadWrite, seed)
		for _, path := range []string{"/user/app/part-0", "/user/app/part-1", "/user/app/part-2", "/user/app/part-3"} {
			if !r.LogContains("closed " + path) {
				t.Fatalf("seed %d: %s not closed\n%s", seed, path, r.RenderLog())
			}
		}
		if !r.LogContains("Lease recovered, file closed: /user/tmp/staging") {
			t.Fatalf("seed %d: abandoned file not recovered\n%s", seed, r.RenderLog())
		}
		if r.LogContains("Failed to build pipeline") {
			t.Fatalf("seed %d: spurious pipeline failure", seed)
		}
	}
}

func TestCheckpointWorkloadHealthy(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		r := runFree(t, WorkloadCheckpoint, seed)
		if !r.LogContains("Checkpoint finished") {
			t.Fatalf("seed %d: no checkpoint finished\n%s", seed, r.RenderLog())
		}
		if !r.LogContains("Installed new fsimage from checkpoint") {
			t.Fatalf("seed %d: no image installed\n%s", seed, r.RenderLog())
		}
		if r.LogContains("Skipping checkpoint") {
			t.Fatalf("seed %d: spurious checkpoint skip", seed)
		}
	}
}

func TestReadWorkloadHealthy(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		r := runFree(t, WorkloadRead, seed)
		if !r.LogContains("finished reading /user/data/events") {
			t.Fatalf("seed %d: read did not finish\n%s", seed, r.RenderLog())
		}
		if r.LogContains("slow read detected") {
			t.Fatalf("seed %d: spurious slow read", seed)
		}
		// The expired token path must be exercised (renewal happens).
		if !r.LogContains("Invalid block token") {
			t.Fatalf("seed %d: token expiry path never exercised\n%s", seed, r.RenderLog())
		}
	}
}

func TestStartupAndBalancerHealthy(t *testing.T) {
	r := runFree(t, WorkloadStartup, 1)
	for _, dn := range []string{"dn1", "dn2", "dn3"} {
		if !r.LogContains("DataNode " + dn + " started") {
			t.Fatalf("%s did not start\n%s", dn, r.RenderLog())
		}
	}
	rb := runFree(t, WorkloadBalancer, 1)
	if rb.LogContains("Balancer terminated") {
		t.Fatal("balancer crashed without fault")
	}
	if !rb.LogContains("Serving block distribution") && !rb.LogContains("cluster balanced") && !rb.LogContains("moved a block") {
		t.Fatalf("balancer never iterated\n%s", rb.RenderLog())
	}
}

// f5 — HD-4233: failed edit-log roll latches checkpointBusy forever.
func TestF5RollEditsFailure(t *testing.T) {
	r := runWith(t, WorkloadCheckpoint, 1, inject.Instance{Site: "dfs.namenode.read-edits", Occurrence: 1})
	if !r.LogContains("Failed to roll edit log") {
		t.Fatalf("roll did not fail:\n%s", r.RenderLog())
	}
	if !r.LogContains("Skipping checkpoint: another checkpoint is in progress") {
		t.Fatalf("subsequent checkpoints not blocked:\n%s", r.RenderLog())
	}
	// The namenode must keep serving (that is the insidious part).
	if !r.LogContains("closed with") {
		t.Fatalf("namenode stopped serving:\n%s", r.RenderLog())
	}
}

// f6 — HD-12248: failed image transfer is ignored; checkpoint finalizes
// without a new image and discards the rolled edits.
func TestF6ImageTransferFailure(t *testing.T) {
	r := runWith(t, WorkloadCheckpoint, 1, inject.Instance{Site: "dfs.secondary.upload-image", Occurrence: 1})
	if !r.LogContains("Exception during image transfer") {
		t.Fatalf("transfer did not fail:\n%s", r.RenderLog())
	}
	if !r.LogContains("Checkpoint finished") {
		t.Fatalf("checkpoint should still finalize (the bug):\n%s", r.RenderLog())
	}
}

// f7 — HD-12070: failed block recovery leaves the file open forever.
func TestF7BlockRecoveryFailure(t *testing.T) {
	r := runWith(t, WorkloadWrite, 1, inject.Instance{Site: "dfs.datanode.recover-finalize", Occurrence: 1})
	if !r.LogContains("Block recovery failed for /user/tmp/staging") {
		t.Fatalf("recovery did not fail:\n%s", r.RenderLog())
	}
	if r.LogContains("Lease recovered, file closed") {
		t.Fatal("file should never be closed (the bug)")
	}
}

// f8 — HD-13039: a pipeline-connect failure leaks an xceiver; later
// concurrent transfers exhaust the pool.
func TestF8XceiverLeak(t *testing.T) {
	free := runFree(t, WorkloadWrite, 1)
	if free.Counts["dfs.datanode.connect-downstream"] == 0 {
		t.Fatal("connect-downstream never exercised")
	}
	reproduced := false
	for occ := 1; occ <= free.Counts["dfs.datanode.connect-downstream"]; occ++ {
		r := runWith(t, WorkloadWrite, 1, inject.Instance{Site: "dfs.datanode.connect-downstream", Occurrence: occ})
		if r.LogContains("Failed to build pipeline") && r.LogContains("Xceiver pool exhausted") {
			reproduced = true
			t.Logf("occurrence %d exhausts the pool", occ)
			break
		}
	}
	if !reproduced {
		t.Fatal("no occurrence of the leak exhausted the xceiver pool")
	}
}

// f9 — HD-16332: one failed token refetch locks the client into stale
// retries; the read completes but pathologically slowly.
func TestF9SlowRead(t *testing.T) {
	r := runWith(t, WorkloadRead, 1, inject.Instance{Site: "dfs.client.refetch-token", Occurrence: 1})
	if !r.LogContains("retrying with stale token") {
		t.Fatalf("refetch did not fail:\n%s", r.RenderLog())
	}
	if !r.LogContains("slow read detected") {
		t.Fatalf("read was not slow:\n%s", r.RenderLog())
	}
	if !r.LogContains("finished reading /user/data/events") {
		t.Fatalf("read should eventually finish:\n%s", r.RenderLog())
	}
}

// f10 — HD-14333: a storage-directory error during startup registration
// kills the datanode; the same error during periodic refresh is tolerated.
func TestF10StartupVolumeFailure(t *testing.T) {
	r := runWith(t, WorkloadStartup, 1, inject.Instance{Site: "dfs.datanode.init-storage", Occurrence: 1})
	if !r.LogContains("Failed to add storage directory") {
		t.Fatalf("volume init did not fail:\n%s", r.RenderLog())
	}
	if !r.LogContains("failed to start: no valid volumes") {
		t.Fatalf("datanode did not abort:\n%s", r.RenderLog())
	}
}

func TestF10RefreshTolerated(t *testing.T) {
	free := runFree(t, WorkloadStartup, 1)
	// Find an occurrence executed by a volume-check thread (post-startup).
	occ := 0
	target := 0
	for _, ev := range free.Trace {
		if ev.Site == "dfs.datanode.init-storage" {
			occ++
			if strings.Contains(ev.Thread, "volume-check") && target == 0 {
				target = occ
			}
		}
	}
	if target == 0 {
		t.Fatal("no volume-check occurrence found")
	}
	r := runWith(t, WorkloadStartup, 1, inject.Instance{Site: "dfs.datanode.init-storage", Occurrence: target})
	if !r.LogContains("Volume refresh failed") {
		t.Fatalf("refresh path not hit:\n%s", r.RenderLog())
	}
	if r.LogContains("failed to start: no valid volumes") {
		t.Fatal("refresh failure should not kill the datanode")
	}
}

// f11 — HD-15032: a socket error fetching the block distribution crashes
// the balancer.
func TestF11BalancerCrash(t *testing.T) {
	r := runWith(t, WorkloadBalancer, 1, inject.Instance{Site: "dfs.balancer.get-blocks", Occurrence: 2})
	if !r.LogContains("Unhandled exception in balancer") {
		t.Fatalf("balancer did not crash:\n%s", r.RenderLog())
	}
	if !r.LogContains("Balancer terminated") {
		t.Fatalf("balancer did not terminate:\n%s", r.RenderLog())
	}
}

// f11 control: a block-move failure is retried, not fatal.
func TestF11MoveTolerated(t *testing.T) {
	free := runFree(t, WorkloadBalancer, 1)
	if free.Counts["dfs.balancer.move-rpc"] == 0 {
		t.Skip("no block moves under this seed")
	}
	r := runWith(t, WorkloadBalancer, 1, inject.Instance{Site: "dfs.balancer.move-rpc", Occurrence: 1})
	if r.LogContains("Balancer terminated") {
		t.Fatal("move failure should not terminate the balancer")
	}
}

func TestFaultSitesExercised(t *testing.T) {
	sites := map[string]bool{}
	for _, w := range []cluster.Workload{WorkloadWrite, WorkloadCheckpoint, WorkloadRead, WorkloadStartup, WorkloadBalancer} {
		r := runFree(t, w, 1)
		for s, n := range r.Counts {
			if n > 0 {
				sites[s] = true
			}
		}
	}
	for _, site := range []string{
		"dfs.namenode.append-edits", "dfs.namenode.read-edits",
		"dfs.datanode.init-storage", "dfs.datanode.connect-downstream",
		"dfs.datanode.write-replica", "dfs.datanode.recover-finalize",
		"dfs.secondary.upload-image", "dfs.balancer.get-blocks",
		"dfs.client.refetch-token", "dfs.client.writeblock-rpc",
	} {
		if !sites[site] {
			t.Errorf("fault site %s never exercised", site)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runFree(t, WorkloadWrite, 7)
	b := runFree(t, WorkloadWrite, 7)
	if len(a.Entries) != len(b.Entries) {
		t.Fatalf("nondeterministic: %d vs %d entries", len(a.Entries), len(b.Entries))
	}
	_ = des.Second
}
