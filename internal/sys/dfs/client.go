package dfs

import (
	"fmt"
	"strings"

	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/inject"
)

// Client is a scripted DFS client session.
type Client struct {
	c    *Cluster
	name string

	// tokenRenewalBroken models the HD-16332 defect: after a single failed
	// token refetch, the client stops trying to renew and spins on the
	// stale token instead.
	tokenRenewalBroken bool

	// located caches open replies (block locations + token), as DFSClient
	// does; a later read through the cache can hold an expired token.
	located map[string]openReply
}

// NewClient creates a named client.
func (c *Cluster) NewClient(name string) *Client {
	return &Client{c: c, name: name, located: make(map[string]openReply)}
}

func (cl *Client) env() *cluster.Env { return cl.c.env }

// WriteFile creates path, writes the given number of blocks through
// pipelines, and closes the file. done runs after the close (or abandon).
func (cl *Client) WriteFile(path string, blocks int, abandon bool, done func()) {
	env := cl.env()
	env.Net.Call("dfs.client.create-rpc", cl.c.msg(cl.name, "nn", "dfs.create", path),
		rpcTimeout, func(_ interface{}, err error) {
			if err != nil {
				env.Log.Errorf("Client %s could not create %s: %s", cl.name, path, err)
				if done != nil {
					done()
				}
				return
			}
			env.Log.Infof("Client %s created %s", cl.name, path)
			cl.writeNextBlock(path, blocks, 0, abandon, done, 0)
		})
}

func (cl *Client) writeNextBlock(path string, total, written int, abandon bool, done func(), retries int) {
	env := cl.env()
	if written >= total {
		cl.closeFile(path, done)
		return
	}
	if abandon && written == total-1 {
		// The writer dies before its last block completes: the lease is
		// left dangling for the namenode's monitor to recover (HD-12070).
		env.Log.Warnf("Client %s abandoned %s before completing block %d", cl.name, path, written+1)
		if done != nil {
			done()
		}
		return
	}
	env.Net.Call("dfs.client.addblock-rpc", cl.c.msg(cl.name, "nn", "dfs.addblock", path),
		rpcTimeout, func(payload interface{}, err error) {
			if err != nil {
				env.Log.Errorf("Client %s could not allocate block for %s: %s", cl.name, path, err)
				if done != nil {
					done()
				}
				return
			}
			alloc := payload.(addBlockReply)
			if len(alloc.Pipeline) == 0 {
				env.Log.Errorf("Client %s got empty pipeline for %s", cl.name, path)
				if done != nil {
					done()
				}
				return
			}
			data := fmt.Sprintf("data-%s-%d", path, written)
			req := writeReq{Block: alloc.Block, Data: data, Pipeline: alloc.Pipeline}
			env.Net.Call("dfs.client.writeblock-rpc",
				cl.c.msg(cl.name, alloc.Pipeline[0], "dfs.writeblock", req),
				2*pipeTimeout, func(_ interface{}, err error) {
					if err != nil {
						if retries < 2 {
							env.Log.Warnf("Client %s retrying block write for %s: %s", cl.name, path, err)
							env.Sim.Schedule(cl.name, 60*des.Millisecond, func() {
								cl.writeNextBlock(path, total, written, abandon, done, retries+1)
							})
							return
						}
						env.Log.Errorf("Client %s failed to write block for %s: %s", cl.name, path, err)
						if done != nil {
							done()
						}
						return
					}
					env.Sim.Schedule(cl.name, 20*des.Millisecond, func() {
						cl.writeNextBlock(path, total, written+1, abandon, done, 0)
					})
				})
		})
}

func (cl *Client) closeFile(path string, done func()) {
	env := cl.env()
	env.Net.Call("dfs.client.complete-rpc", cl.c.msg(cl.name, "nn", "dfs.complete", path),
		rpcTimeout, func(_ interface{}, err error) {
			if err != nil {
				env.Log.Errorf("Client %s could not close %s: %s", cl.name, path, err)
			} else {
				env.Log.Infof("Client %s closed %s", cl.name, path)
			}
			if done != nil {
				done()
			}
		})
}

// ReadFile opens path and reads every block, exercising the block-token
// path. done runs when the whole file has been read (or given up on).
func (cl *Client) ReadFile(path string, done func()) {
	env := cl.env()
	started := env.Sim.Now()
	if info, ok := cl.located[path]; ok {
		// Cached block locations: the token may have expired by now.
		env.Log.Debugf("Client %s reading %s from cached locations", cl.name, path)
		cl.readBlocks(path, info, 0, started, done)
		return
	}
	env.Net.Call("dfs.client.open-rpc", cl.c.msg(cl.name, "nn", "dfs.open", path),
		rpcTimeout, func(payload interface{}, err error) {
			if err != nil {
				env.Log.Errorf("Client %s could not open %s: %s", cl.name, path, err)
				if done != nil {
					done()
				}
				return
			}
			info := payload.(openReply)
			cl.located[path] = info
			cl.readBlocks(path, info, 0, started, done)
		})
}

func (cl *Client) readBlocks(path string, info openReply, idx int, started des.Time, done func()) {
	env := cl.env()
	if idx >= len(info.Blocks) {
		elapsed := (env.Sim.Now() - started) / des.Millisecond
		if elapsed > 400 {
			env.Log.Warnf("Read of %s took %dms; slow read detected", path, elapsed)
		}
		env.Log.Infof("Client %s finished reading %s (%d blocks)", cl.name, path, len(info.Blocks))
		if done != nil {
			done()
		}
		return
	}
	blk := info.Blocks[idx]
	locs := info.Locations[blk]
	if len(locs) == 0 {
		env.Log.Errorf("Client %s found no replicas for blk_%d", cl.name, blk)
		if done != nil {
			done()
		}
		return
	}
	cl.readOneBlock(path, info, idx, blk, locs[int(blk)%len(locs)], started, done, 0)
}

// readOneBlock reads a single block, handling token expiry. HD-16332 (f9):
// after one failed token refetch the client blindly retries the stale
// token with backoff instead of renewing, making the read pathologically
// slow.
func (cl *Client) readOneBlock(path string, info openReply, idx int, blk int64, dn string, started des.Time, done func(), attempt int) {
	env := cl.env()
	req := readReq{Block: blk, Token: info.Token}
	env.Net.Call("dfs.client.readblock-rpc", cl.c.msg(cl.name, dn, "dfs.read-block", req),
		rpcTimeout, func(_ interface{}, err error) {
			if err == nil {
				env.Sim.Schedule(cl.name, 10*des.Millisecond, func() {
					cl.readBlocks(path, info, idx+1, started, done)
				})
				return
			}
			if !strings.Contains(err.Error(), "invalid block token") {
				env.Log.Errorf("Client %s failed to read blk_%d from %s: %s", cl.name, blk, dn, err)
				if done != nil {
					done()
				}
				return
			}
			// Expired token: renew it, unless renewal is (believed) broken.
			if !cl.tokenRenewalBroken {
				if rerr := env.FI.Reach("dfs.client.refetch-token", inject.IO); rerr != nil {
					env.Log.Warnf("Failed to refetch block token for blk_%d, retrying with stale token", blk)
					cl.tokenRenewalBroken = true
				} else {
					env.Net.Call("dfs.client.renew-rpc", cl.c.msg(cl.name, "nn", "dfs.renew-token", nil),
						rpcTimeout, func(payload interface{}, err error) {
							if err != nil {
								env.Log.Warnf("Token renewal RPC failed for blk_%d: %s", blk, err)
								cl.retryStale(path, info, idx, blk, dn, started, done, attempt)
								return
							}
							info.Token = payload.(blockToken)
							env.Log.Debugf("Client %s renewed block token for blk_%d", cl.name, blk)
							cl.readOneBlock(path, info, idx, blk, dn, started, done, attempt+1)
						})
					return
				}
			}
			cl.retryStale(path, info, idx, blk, dn, started, done, attempt)
		})
}

// retryStale is the defective backoff loop: retry the same expired token,
// then fall back to a full reopen after many attempts.
func (cl *Client) retryStale(path string, info openReply, idx int, blk int64, dn string, started des.Time, done func(), attempt int) {
	env := cl.env()
	if attempt >= 10 {
		env.Log.Warnf("Client %s giving up on stale token for blk_%d, reopening %s", cl.name, blk, path)
		cl.tokenRenewalBroken = false
		env.Net.Call("dfs.client.reopen-rpc", cl.c.msg(cl.name, "nn", "dfs.open", path),
			rpcTimeout, func(payload interface{}, err error) {
				if err != nil {
					env.Log.Errorf("Client %s reopen of %s failed: %s", cl.name, path, err)
					if done != nil {
						done()
					}
					return
				}
				fresh := payload.(openReply)
				cl.located[path] = fresh
				cl.readBlocks(path, fresh, idx, started, done)
			})
		return
	}
	env.Sim.Schedule(cl.name, 80*des.Millisecond, func() {
		cl.readOneBlock(path, info, idx, blk, dn, started, done, attempt+1)
	})
}
