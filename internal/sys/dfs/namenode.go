package dfs

import (
	"fmt"
	"sort"

	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/simnet"
)

// fileMeta is one namespace entry.
type fileMeta struct {
	path        string
	blocks      []int64
	open        bool
	leaseHolder string
	leaseSince  des.Time
}

// blockToken authorizes reads of one block for a limited time.
type blockToken struct {
	Block  int64
	Expiry des.Time
}

// tokenLifetime is deliberately short so read workloads exercise the token
// renewal path of HD-16332.
const tokenLifetime = 200 * des.Millisecond

// NameNode holds the namespace and block map.
type NameNode struct {
	c    *Cluster
	name string

	files      map[string]*fileMeta
	blockLocs  map[int64][]string
	nextBlock  int64
	registered map[string]bool
	safeMode   bool

	editCount int

	// checkpointBusy latches while a checkpoint runs. HD-4233 (f5): a
	// failed edit-log roll never clears it, so checkpointing stops forever
	// while the namenode keeps serving.
	checkpointBusy bool

	// recovering tracks files currently under lease recovery.
	recovering map[string]bool
}

func newNameNode(c *Cluster) *NameNode {
	return &NameNode{
		c: c, name: "nn",
		files:      make(map[string]*fileMeta),
		blockLocs:  make(map[int64][]string),
		registered: make(map[string]bool),
		recovering: make(map[string]bool),
	}
}

func (n *NameNode) env() *cluster.Env { return n.c.env }

func (n *NameNode) start() {
	env := n.env()
	net := env.Net
	net.Handle(n.name, "dfs.register", "nn-rpc", n.onRegister)
	net.Handle(n.name, "dfs.heartbeat", "nn-rpc", n.onHeartbeat)
	net.Handle(n.name, "dfs.create", "nn-rpc", n.onCreate)
	net.Handle(n.name, "dfs.addblock", "nn-rpc", n.onAddBlock)
	net.Handle(n.name, "dfs.complete", "nn-rpc", n.onComplete)
	net.Handle(n.name, "dfs.open", "nn-rpc", n.onOpen)
	net.Handle(n.name, "dfs.renew-token", "nn-rpc", n.onRenewToken)
	net.Handle(n.name, "dfs.roll-edits", "nn-ckpt", n.onRollEdits)
	net.Handle(n.name, "dfs.get-image", "nn-ckpt", n.onGetImage)
	net.Handle(n.name, "dfs.finalize-ckpt", "nn-ckpt", n.onFinalizeCheckpoint)
	net.Handle(n.name, "dfs.getblocks", "nn-rpc", n.onGetBlocks)

	n.safeMode = true
	env.Sim.Go("nn-main", func() {
		env.Log.Infof("NameNode starting in safe mode, formatting namespace")
		if err := env.Disk.Create("dfs.namenode.create-editlog", "nn/edits"); err != nil {
			env.Log.Errorf("Failed to initialize edit log: %s", err)
			return
		}
		if err := env.Disk.Write("dfs.namenode.write-fsimage", "nn/fsimage", []byte("IMG|0\n")); err != nil {
			env.Log.Errorf("Failed to write initial fsimage: %s", err)
			return
		}
		env.Log.Infof("NameNode started, waiting for datanode reports")
	})

	net.Handle(n.name, "dfs.blockreport", "nn-rpc", n.onBlockReport)

	// Lease monitor: expired writer leases trigger block recovery.
	env.Sim.Every("nn-lease-monitor", 250*des.Millisecond, func() {
		n.checkLeases()
	})

	// Replication monitor: re-replicate under-replicated blocks.
	env.Sim.Every("nn-replication-monitor", 300*des.Millisecond, func() {
		n.checkReplication()
	})
}

// onBlockReport receives a datanode's periodic replica inventory.
func (n *NameNode) onBlockReport(m simnet.Message, _ func(interface{}, error)) {
	env := n.env()
	count, _ := m.Payload.(int)
	env.Log.Debugf("Processed block report from %s with %d replicas", m.From, count)
}

// checkReplication asks a replica holder to transfer under-replicated
// blocks to a node that lacks them — background repair traffic that keeps
// the cluster (and the fault space) busy, like the real namenode's
// redundancy monitor.
func (n *NameNode) checkReplication() {
	env := n.env()
	// Iterate blocks in sorted order: ranging over the map directly would
	// let Go's randomized iteration pick which under-replicated block the
	// sweep repairs, breaking run-to-run determinism for a fixed seed.
	blocks := make([]int64, 0, len(n.blockLocs))
	for b := range n.blockLocs {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	for _, block := range blocks {
		locs := n.blockLocs[block]
		if len(locs) == 0 || len(locs) >= 3 {
			continue
		}
		var target string
		for _, dn := range n.c.DNs {
			if !dn.started || dn.failed {
				continue
			}
			holds := false
			for _, l := range locs {
				if l == dn.name {
					holds = true
					break
				}
			}
			if !holds {
				target = dn.name
				break
			}
		}
		if target == "" {
			continue
		}
		blk := block
		src := locs[0]
		env.Log.Debugf("Scheduling re-replication of blk_%d from %s to %s", blk, src, target)
		env.Net.Call("dfs.namenode.replicate-rpc",
			n.c.msg(n.name, src, "dfs.transfer-block", transferReq{Block: blk, Target: target}),
			rpcTimeout, func(_ interface{}, err error) {
				if err != nil {
					env.Log.Warnf("Re-replication of blk_%d failed, will retry: %s", blk, err)
					return
				}
				env.Log.Infof("Re-replicated blk_%d to %s", blk, target)
			})
		return // one transfer per sweep
	}
}

// logEdit appends one operation to the edit log; namespace mutations are
// durable before they are acknowledged.
func (n *NameNode) logEdit(op string) error {
	env := n.env()
	rec := fmt.Sprintf("%d|%s\n", n.editCount, op)
	if err := env.Disk.Append("dfs.namenode.append-edits", "nn/edits", []byte(rec)); err != nil {
		return fmt.Errorf("edit log append failed: %w", err)
	}
	n.editCount++
	return nil
}

func (n *NameNode) onRegister(m simnet.Message, respond func(interface{}, error)) {
	env := n.env()
	n.registered[m.From] = true
	env.Log.Infof("Registered datanode %s", m.From)
	// Leave safe mode once a majority of datanodes has reported.
	if n.safeMode && len(n.registered) >= len(n.c.DNs)/2+1 {
		n.safeMode = false
		env.Log.Infof("Safe mode is OFF after %d datanode reports", len(n.registered))
	}
	respond("ok", nil)
}

func (n *NameNode) onHeartbeat(m simnet.Message, _ func(interface{}, error)) {
	env := n.env()
	if !n.registered[m.From] {
		env.Log.Warnf("Heartbeat from unregistered datanode %s", m.From)
	}
}

func (n *NameNode) onCreate(m simnet.Message, respond func(interface{}, error)) {
	env := n.env()
	path, _ := m.Payload.(string)
	if n.safeMode {
		env.Log.Warnf("Cannot create %s: name node is in safe mode", path)
		respond(nil, fmt.Errorf("dfs: name node is in safe mode"))
		return
	}
	if f, ok := n.files[path]; ok && f.open {
		respond(nil, fmt.Errorf("dfs: %s already open by %s", path, f.leaseHolder))
		return
	}
	if err := n.logEdit("OPEN " + path); err != nil {
		env.Log.Errorf("Cannot journal create of %s: %s", path, err)
		respond(nil, err)
		return
	}
	n.files[path] = &fileMeta{path: path, open: true, leaseHolder: m.From, leaseSince: env.Sim.Now()}
	env.Log.Infof("Allocated file %s with lease for %s", path, m.From)
	respond("ok", nil)
}

// addBlockReply carries a new block allocation to the writer.
type addBlockReply struct {
	Block    int64
	Pipeline []string
}

func (n *NameNode) onAddBlock(m simnet.Message, respond func(interface{}, error)) {
	env := n.env()
	path, _ := m.Payload.(string)
	f, ok := n.files[path]
	if !ok || !f.open {
		respond(nil, fmt.Errorf("dfs: no open file %s", path))
		return
	}
	f.leaseSince = env.Sim.Now()
	n.nextBlock++
	blk := n.nextBlock
	if err := n.logEdit(fmt.Sprintf("ADDBLOCK %s blk_%d", path, blk)); err != nil {
		env.Log.Errorf("Cannot journal block allocation for %s: %s", path, err)
		respond(nil, err)
		return
	}
	f.blocks = append(f.blocks, blk)
	pipe := n.c.pipeline(blk, 3)
	env.Log.Debugf("Allocated blk_%d for %s with pipeline %v", blk, path, pipe)
	respond(addBlockReply{Block: blk, Pipeline: pipe}, nil)
}

func (n *NameNode) onComplete(m simnet.Message, respond func(interface{}, error)) {
	env := n.env()
	path, _ := m.Payload.(string)
	f, ok := n.files[path]
	if !ok {
		respond(nil, fmt.Errorf("dfs: no file %s", path))
		return
	}
	if err := n.logEdit("CLOSE " + path); err != nil {
		env.Log.Errorf("Cannot journal close of %s: %s", path, err)
		respond(nil, err)
		return
	}
	f.open = false
	f.leaseHolder = ""
	env.Log.Infof("File %s closed with %d blocks", path, len(f.blocks))
	respond("ok", nil)
}

// openReply carries block locations and a read token.
type openReply struct {
	Blocks    []int64
	Locations map[int64][]string
	Token     blockToken
}

func (n *NameNode) onOpen(m simnet.Message, respond func(interface{}, error)) {
	env := n.env()
	path, _ := m.Payload.(string)
	f, ok := n.files[path]
	if !ok {
		respond(nil, fmt.Errorf("dfs: no file %s", path))
		return
	}
	locs := make(map[int64][]string, len(f.blocks))
	for _, b := range f.blocks {
		locs[b] = n.blockLocs[b]
	}
	tok := blockToken{Expiry: env.Sim.Now() + tokenLifetime}
	env.Log.Debugf("Opened %s for read by %s (%d blocks)", path, m.From, len(f.blocks))
	respond(openReply{Blocks: f.blocks, Locations: locs, Token: tok}, nil)
}

func (n *NameNode) onRenewToken(m simnet.Message, respond func(interface{}, error)) {
	env := n.env()
	tok := blockToken{Expiry: env.Sim.Now() + tokenLifetime}
	env.Log.Debugf("Issued fresh block token to %s", m.From)
	respond(tok, nil)
}

// reportReplica records that a datanode holds a finalized replica.
func (n *NameNode) reportReplica(block int64, dn string) {
	for _, d := range n.blockLocs[block] {
		if d == dn {
			return
		}
	}
	n.blockLocs[block] = append(n.blockLocs[block], dn)
}

// checkLeases runs the lease monitor: leases idle past the hard limit are
// recovered by asking the primary replica holder to finalize the last
// block. HD-12070 (f7): a failed recovery RPC removes the lease from the
// monitor's queue without closing the file, so the file stays open forever
// and is never recovered again.
func (n *NameNode) checkLeases() {
	env := n.env()
	// Sorted paths, not map order: the order leases are recovered in
	// schedules RPCs and therefore must be deterministic per seed.
	paths := make([]string, 0, len(n.files))
	for p := range n.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		f := n.files[p]
		if !f.open || f.leaseHolder == "" || n.recovering[f.path] {
			continue
		}
		if env.Sim.Now()-f.leaseSince < 500*des.Millisecond {
			continue
		}
		if len(f.blocks) == 0 {
			f.open = false
			continue
		}
		lastBlock := f.blocks[len(f.blocks)-1]
		locs := n.blockLocs[lastBlock]
		primary := dnName(int(lastBlock)%len(n.c.DNs) + 1)
		if len(locs) > 0 {
			primary = locs[0]
		}
		n.recovering[f.path] = true
		file := f
		env.Log.Warnf("Lease expired for %s held by %s, starting block recovery of blk_%d on %s",
			file.path, file.leaseHolder, lastBlock, primary)
		env.Net.Call("dfs.namenode.recover-rpc", n.c.msg(n.name, primary, "dfs.recover", lastBlock),
			rpcTimeout, func(_ interface{}, err error) {
				if err != nil {
					env.Log.Errorf("Block recovery failed for %s: %s", file.path, err)
					// Defect (HD-12070): the lease is dropped from the
					// monitor queue but the file is never closed, leaving
					// it open indefinitely.
					file.leaseHolder = ""
					return
				}
				n.recovering[file.path] = false
				file.open = false
				file.leaseHolder = ""
				env.Log.Infof("Lease recovered, file closed: %s", file.path)
			})
	}
}

// onRollEdits serves the secondary's request to roll the edit log before a
// checkpoint. HD-4233 (f5): a failed roll leaves checkpointBusy latched.
func (n *NameNode) onRollEdits(m simnet.Message, respond func(interface{}, error)) {
	env := n.env()
	if n.checkpointBusy {
		env.Log.Warnf("Skipping checkpoint: another checkpoint is in progress")
		respond(nil, fmt.Errorf("dfs: checkpoint already in progress"))
		return
	}
	n.checkpointBusy = true
	edits, err := env.Disk.Read("dfs.namenode.read-edits", "nn/edits")
	if err != nil {
		env.Log.Errorf("Failed to roll edit log")
		// Defect (HD-4233): checkpointBusy is never cleared on this path,
		// yet the namenode keeps serving without any backup.
		respond(nil, err)
		return
	}
	if err := env.Disk.Rename("dfs.namenode.rename-edits", "nn/edits", "nn/edits.rolled"); err != nil {
		env.Log.Errorf("Failed to roll edit log: %s", err)
		respond(nil, err)
		return
	}
	if err := env.Disk.Create("dfs.namenode.create-editlog", "nn/edits"); err != nil {
		env.Log.Errorf("Failed to reopen edit log after roll: %s", err)
		respond(nil, err)
		return
	}
	env.Log.Infof("Rolled edit log with %d entries for checkpoint", n.editCount)
	respond(string(edits), nil)
}

func (n *NameNode) onGetImage(m simnet.Message, respond func(interface{}, error)) {
	env := n.env()
	img, err := env.Disk.Read("dfs.namenode.read-fsimage", "nn/fsimage")
	if err != nil {
		env.Log.Errorf("Failed to serve fsimage: %s", err)
		respond(nil, err)
		return
	}
	respond(string(img), nil)
}

// checkpointDone carries the merged image (empty when the transfer failed
// upstream — the HD-12248 defect accepts it anyway).
type checkpointDone struct {
	Image string
}

func (n *NameNode) onFinalizeCheckpoint(m simnet.Message, respond func(interface{}, error)) {
	env := n.env()
	done, _ := m.Payload.(checkpointDone)
	if done.Image != "" {
		if err := env.Disk.Write("dfs.namenode.write-fsimage", "nn/fsimage", []byte(done.Image)); err != nil {
			env.Log.Errorf("Failed to install checkpointed fsimage: %s", err)
			respond(nil, err)
			return
		}
		env.Log.Infof("Installed new fsimage from checkpoint")
	}
	// Defect (HD-12248): the rolled edits are discarded even when no new
	// image was installed, so the backup silently loses the operations.
	if env.Disk.Exists("nn/edits.rolled") {
		if err := env.Disk.Delete("dfs.namenode.delete-rolled-edits", "nn/edits.rolled"); err != nil {
			env.Log.Warnf("Could not remove rolled edits: %s", err)
		}
	}
	n.checkpointBusy = false
	env.Log.Infof("Checkpoint finished")
	respond("ok", nil)
}

// onGetBlocks serves the balancer's block-distribution query.
func (n *NameNode) onGetBlocks(m simnet.Message, respond func(interface{}, error)) {
	env := n.env()
	dist := make(map[string]int)
	for _, locs := range n.blockLocs {
		for _, dn := range locs {
			dist[dn]++
		}
	}
	env.Log.Debugf("Serving block distribution to %s", m.From)
	respond(dist, nil)
}
