// Package dfs is a miniature HDFS-like distributed file system built on
// the simulated cluster substrate: a namenode with namespace, block map,
// lease management, edit log and checkpointing; datanodes with write
// pipelines, an xceiver pool, block reports and block recovery; a
// secondary namenode; a balancer; and a DFS client with block tokens.
//
// The package contains the bug patterns of the seven HDFS failures in the
// paper's dataset (Table 5): HD-4233 (f5), HD-12248 (f6), HD-12070 (f7),
// HD-13039 (f8), HD-16332 (f9), HD-14333 (f10) and HD-15032 (f11).
package dfs

import (
	"fmt"

	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/simnet"
)

// Cluster is one simulated DFS deployment.
type Cluster struct {
	env *cluster.Env
	NN  *NameNode
	DNs []*DataNode
	Sec *Secondary
	Bal *Balancer
}

// Options select which auxiliary services run.
type Options struct {
	DataNodes     int
	WithSecondary bool
	WithBalancer  bool
	// XceiverLimit caps concurrent block writers per datanode; HD-13039's
	// leak matters because this budget is finite.
	XceiverLimit int
}

// NewCluster creates (but does not start) a DFS deployment.
func NewCluster(env *cluster.Env, opts Options) *Cluster {
	if opts.DataNodes <= 0 {
		opts.DataNodes = 3
	}
	if opts.XceiverLimit <= 0 {
		opts.XceiverLimit = 2
	}
	c := &Cluster{env: env}
	c.NN = newNameNode(c)
	for i := 1; i <= opts.DataNodes; i++ {
		c.DNs = append(c.DNs, newDataNode(c, i, opts.XceiverLimit))
	}
	if opts.WithSecondary {
		c.Sec = newSecondary(c)
	}
	if opts.WithBalancer {
		c.Bal = newBalancer(c)
	}
	return c
}

// Start boots the namenode, datanodes and optional services.
func (c *Cluster) Start() {
	c.NN.start()
	for _, dn := range c.DNs {
		dn.start()
	}
	if c.Sec != nil {
		c.Sec.start()
	}
	if c.Bal != nil {
		c.Bal.start()
	}
}

func (c *Cluster) msg(from, to, typ string, payload interface{}) simnet.Message {
	return simnet.Message{From: from, To: to, Type: typ, Payload: payload}
}

// dnName formats a datanode node name.
func dnName(id int) string { return fmt.Sprintf("dn%d", id) }

// pipeline picks replica targets for a new block, round-robin over live
// datanodes.
func (c *Cluster) pipeline(blockID int64, width int) []string {
	var live []*DataNode
	for _, dn := range c.DNs {
		if dn.started && !dn.failed {
			live = append(live, dn)
		}
	}
	if len(live) == 0 {
		return nil
	}
	if width > len(live) {
		width = len(live)
	}
	out := make([]string, 0, width)
	for i := 0; i < width; i++ {
		out = append(out, live[(int(blockID)+i)%len(live)].name)
	}
	return out
}

// RPC timeouts used across the package.
const (
	rpcTimeout  = 300 * des.Millisecond
	pipeTimeout = 200 * des.Millisecond
)
