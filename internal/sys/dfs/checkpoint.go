package dfs

import (
	"fmt"

	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/inject"
)

// Secondary is the checkpointing secondary namenode.
type Secondary struct {
	c    *Cluster
	name string

	checkpoints int
}

func newSecondary(c *Cluster) *Secondary {
	return &Secondary{c: c, name: "2nn"}
}

func (s *Secondary) env() *cluster.Env { return s.c.env }

func (s *Secondary) start() {
	env := s.env()
	env.Sim.Every("2nn-checkpoint", 400*des.Millisecond, func() {
		s.doCheckpoint()
	})
}

// doCheckpoint runs one checkpoint cycle: roll the namenode's edit log,
// download image and edits, merge, upload the new image, finalize.
//
// HD-12248 (f6) lives in the upload step: an InterruptedException during
// the image transfer is logged but the checkpoint is finalized anyway with
// no image — the namenode discards the rolled edits and the backup
// silently ignores the newest operations.
func (s *Secondary) doCheckpoint() {
	env := s.env()
	env.Log.Debugf("Secondary starting checkpoint %d", s.checkpoints+1)
	env.Net.Call("dfs.secondary.roll-rpc", s.c.msg(s.name, "nn", "dfs.roll-edits", nil),
		rpcTimeout, func(editsPayload interface{}, err error) {
			if err != nil {
				env.Log.Warnf("Checkpoint aborted: could not roll edits")
				return
			}
			edits, _ := editsPayload.(string)
			env.Net.Call("dfs.secondary.get-image-rpc", s.c.msg(s.name, "nn", "dfs.get-image", nil),
				rpcTimeout, func(imgPayload interface{}, err error) {
					if err != nil {
						env.Log.Warnf("Checkpoint aborted: could not download fsimage: %s", err)
						s.finalize("")
						return
					}
					img, _ := imgPayload.(string)
					s.mergeAndUpload(img, edits)
				})
		})
}

// mergeAndUpload merges the downloaded image with the rolled edits and
// transfers the result back to the namenode.
func (s *Secondary) mergeAndUpload(img, edits string) {
	env := s.env()
	merged := fmt.Sprintf("IMG|%d\n%s", s.checkpoints+1, edits)
	if err := env.Disk.Write("dfs.secondary.write-merged", s.name+"/fsimage.ckpt", []byte(merged)); err != nil {
		env.Log.Errorf("Failed to write merged image locally: %s", err)
		s.finalize("")
		return
	}
	// The image transfer back to the namenode; interruptible.
	if err := env.FI.Reach("dfs.secondary.upload-image", inject.Interrupted); err != nil {
		env.Log.Warnf("Exception during image transfer to namenode")
		// Defect (HD-12248): the checkpoint is finalized with no image.
		s.finalize("")
		return
	}
	s.finalize(merged)
	_ = img
}

// finalize completes the checkpoint on the namenode.
func (s *Secondary) finalize(image string) {
	env := s.env()
	env.Net.Call("dfs.secondary.finalize-rpc",
		s.c.msg(s.name, "nn", "dfs.finalize-ckpt", checkpointDone{Image: image}),
		rpcTimeout, func(_ interface{}, err error) {
			if err != nil {
				env.Log.Warnf("Checkpoint finalization failed: %s", err)
				return
			}
			s.checkpoints++
			env.Log.Debugf("Secondary finished checkpoint %d", s.checkpoints)
		})
}

// Balancer redistributes blocks between datanodes. HD-15032 (f11): a
// socket error while fetching the block distribution from the namenode is
// unhandled and crashes the whole balancer.
type Balancer struct {
	c    *Cluster
	name string

	iterations int
	crashed    bool
}

func newBalancer(c *Cluster) *Balancer {
	return &Balancer{c: c, name: "balancer"}
}

func (b *Balancer) env() *cluster.Env { return b.c.env }

func (b *Balancer) start() {
	env := b.env()
	env.Sim.Every("balancer", 350*des.Millisecond, func() {
		if b.crashed {
			return
		}
		b.iterate()
	})
}

func (b *Balancer) iterate() {
	env := b.env()
	env.Net.Call("dfs.balancer.get-blocks", b.c.msg(b.name, "nn", "dfs.getblocks", nil),
		rpcTimeout, func(payload interface{}, err error) {
			if err != nil {
				if isSocketFault(err) {
					// Defect (HD-15032): the socket error propagates out of
					// the dispatcher and kills the balancer process.
					env.Log.Errorf("Unhandled exception in balancer: %s", err)
					env.Log.Errorf("Balancer terminated")
					b.crashed = true
					return
				}
				env.Log.Warnf("Balancer iteration failed, will retry: %s", err)
				return
			}
			dist, _ := payload.(map[string]int)
			b.moveIfNeeded(dist)
		})
}

// moveIfNeeded issues one block move from the fullest to the emptiest node.
func (b *Balancer) moveIfNeeded(dist map[string]int) {
	env := b.env()
	b.iterations++
	var maxDN, minDN string
	maxN, minN := -1, 1<<30
	for _, dn := range b.c.DNs {
		n := dist[dn.name]
		if n > maxN {
			maxN = n
			maxDN = dn.name
		}
		if n < minN {
			minN = n
			minDN = dn.name
		}
	}
	if maxDN == "" || minDN == "" || maxN-minN < 2 {
		env.Log.Debugf("Balancer iteration %d: cluster balanced", b.iterations)
		return
	}
	env.Net.Call("dfs.balancer.move-rpc", b.c.msg(b.name, minDN, "dfs.move-block", int64(1)),
		rpcTimeout, func(_ interface{}, err error) {
			if err != nil {
				env.Log.Warnf("Balancer block move to %s failed, will retry: %s", minDN, err)
				return
			}
			env.Log.Infof("Balancer iteration %d moved a block from %s to %s", b.iterations, maxDN, minDN)
		})
}

func isSocketFault(err error) bool {
	f, ok := inject.AsFault(err)
	return ok && (f.Kind == inject.Socket || f.Kind == inject.Connection)
}
