package dfs

import (
	"fmt"

	"anduril/internal/cluster"
	"anduril/internal/des"
)

// Horizon is how much virtual time the dfs workloads need to quiesce.
const Horizon = 3 * des.Second

// WorkloadWrite drives two concurrent writer clients plus one abandoned
// write, exercising pipelines, the xceiver pool and lease recovery — the
// driving workload for f7 (HD-12070) and f8 (HD-13039).
func WorkloadWrite(env *cluster.Env) {
	c := NewCluster(env, Options{DataNodes: 3, XceiverLimit: 2})
	c.Start()
	cl1 := c.NewClient("dfs-client-1")
	cl2 := c.NewClient("dfs-client-2")
	env.Sim.Schedule("dfs-client-1", 200*des.Millisecond, func() {
		cl1.WriteFile("/user/app/part-0", 2, false, func() {
			cl1.WriteFile("/user/app/part-1", 2, false, nil)
		})
	})
	env.Sim.Schedule("dfs-client-2", 210*des.Millisecond, func() {
		cl2.WriteFile("/user/app/part-2", 2, false, func() {
			cl2.WriteFile("/user/app/part-3", 2, false, nil)
		})
	})
	// The abandoned writer: its lease must be recovered by the namenode.
	env.Sim.Schedule("dfs-client-1", 500*des.Millisecond, func() {
		cl1.WriteFile("/user/tmp/staging", 2, true, nil)
	})
}

// WorkloadCheckpoint drives writes while the secondary namenode
// checkpoints — the driving workload for f5 (HD-4233) and f6 (HD-12248).
func WorkloadCheckpoint(env *cluster.Env) {
	c := NewCluster(env, Options{DataNodes: 3, WithSecondary: true})
	c.Start()
	cl := c.NewClient("dfs-client-1")
	for i := 0; i < 3; i++ {
		i := i
		env.Sim.Schedule("dfs-client-1", des.Time(200+400*i)*des.Millisecond, func() {
			cl.WriteFile(fmt.Sprintf("/user/journal/edit-%d", i), 1, false, nil)
		})
	}
}

// WorkloadRead writes a file, waits past the token lifetime, then reads it
// back twice — the driving workload for f9 (HD-16332).
func WorkloadRead(env *cluster.Env) {
	c := NewCluster(env, Options{DataNodes: 3})
	c.Start()
	cl := c.NewClient("dfs-client-1")
	env.Sim.Schedule("dfs-client-1", 200*des.Millisecond, func() {
		cl.WriteFile("/user/data/events", 2, false, func() {
			env.Sim.Schedule("dfs-client-1", 300*des.Millisecond, func() {
				cl.ReadFile("/user/data/events", func() {
					env.Sim.Schedule("dfs-client-1", 250*des.Millisecond, func() {
						cl.ReadFile("/user/data/events", nil)
					})
				})
			})
		})
	})
}

// WorkloadStartup boots the cluster cold and runs a small write once it is
// up — the driving workload for f10 (HD-14333), where the interesting
// window is datanode registration.
func WorkloadStartup(env *cluster.Env) {
	c := NewCluster(env, Options{DataNodes: 3})
	c.Start()
	cl := c.NewClient("dfs-client-1")
	env.Sim.Schedule("dfs-client-1", 600*des.Millisecond, func() {
		cl.WriteFile("/user/boot/healthcheck", 1, false, nil)
	})
}

// WorkloadBalancer creates an imbalanced block distribution and runs the
// balancer — the driving workload for f11 (HD-15032).
func WorkloadBalancer(env *cluster.Env) {
	c := NewCluster(env, Options{DataNodes: 3, WithBalancer: true})
	c.Start()
	cl := c.NewClient("dfs-client-1")
	env.Sim.Schedule("dfs-client-1", 200*des.Millisecond, func() {
		cl.WriteFile("/user/warehouse/big-0", 2, false, func() {
			cl.WriteFile("/user/warehouse/big-1", 2, false, nil)
		})
	})
}
