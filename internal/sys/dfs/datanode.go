package dfs

import (
	"fmt"

	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/inject"
	"anduril/internal/simnet"
)

// DataNode stores block replicas and participates in write pipelines.
type DataNode struct {
	c    *Cluster
	id   int
	name string

	started bool
	failed  bool

	xceiverLimit int
	xceiversBusy int
	leaked       int
}

func newDataNode(c *Cluster, id, xceiverLimit int) *DataNode {
	return &DataNode{c: c, id: id, name: dnName(id), xceiverLimit: xceiverLimit}
}

func (d *DataNode) env() *cluster.Env { return d.c.env }

func (d *DataNode) actor(thread string) string { return d.name + "-" + thread }

func (d *DataNode) start() {
	env := d.env()
	net := env.Net
	net.Handle(d.name, "dfs.writeblock", d.actor("xceiver"), d.onWriteBlock)
	net.Handle(d.name, "dfs.mirror", d.actor("xceiver"), d.onMirror)
	net.Handle(d.name, "dfs.read-block", d.actor("xceiver"), d.onReadBlock)
	net.Handle(d.name, "dfs.recover", d.actor("recovery"), d.onRecover)
	net.Handle(d.name, "dfs.move-block", d.actor("xceiver"), d.onMoveBlock)
	net.Handle(d.name, "dfs.transfer-block", d.actor("xceiver"), d.onTransferBlock)

	env.Sim.Go(d.actor("main"), func() {
		d.bootstrap()
	})

	env.Sim.Every(d.actor("heartbeat"), 150*des.Millisecond, func() {
		if !d.started || d.failed {
			return
		}
		err := env.Net.Send("dfs.datanode.send-heartbeat", d.c.msg(d.name, "nn", "dfs.heartbeat", d.id))
		if err != nil {
			env.Log.Warnf("Heartbeat from %s failed: %s", d.name, err)
		}
	})

	// Periodic volume re-check; unlike the startup path, failures here are
	// tolerated (the contrast that makes HD-14333 timing-sensitive).
	env.Sim.Every(d.actor("volume-check"), 500*des.Millisecond, func() {
		if !d.started || d.failed {
			return
		}
		d.refreshVolumes()
	})

	// Periodic block report to the namenode.
	env.Sim.Every(d.actor("blockreport"), 400*des.Millisecond, func() {
		if !d.started || d.failed {
			return
		}
		n := len(env.Disk.List(d.name + "/blk_"))
		err := env.Net.Send("dfs.datanode.send-blockreport", d.c.msg(d.name, "nn", "dfs.blockreport", n))
		if err != nil {
			env.Log.Warnf("Block report from %s failed: %s", d.name, err)
		}
	})
}

// bootstrap registers with the namenode and then initializes the storage
// volumes. HD-14333 (f10): a disk error while adding a storage directory
// during startup registration aborts the whole datanode instead of
// tolerating the single bad volume.
func (d *DataNode) bootstrap() {
	env := d.env()
	env.Log.Infof("DataNode %s starting registration", d.name)
	env.Net.Call("dfs.datanode.register-rpc", d.c.msg(d.name, "nn", "dfs.register", d.id),
		rpcTimeout, func(_ interface{}, err error) {
			if err != nil {
				env.Log.Warnf("DataNode %s registration failed, retrying: %s", d.name, err)
				env.Sim.Schedule(d.actor("main"), 200*des.Millisecond, d.bootstrap)
				return
			}
			if err := d.initVolumes(); err != nil {
				env.Log.Errorf("Failed to add storage directory on %s", d.name)
				// Defect (HD-14333): one bad volume during registration
				// kills the datanode outright.
				env.Log.Errorf("DataNode %s failed to start: no valid volumes", d.name)
				d.failed = true
				return
			}
			d.started = true
			env.Log.Infof("DataNode %s started with %d volumes", d.name, 2)
		})
}

// initVolumes prepares the storage directories.
func (d *DataNode) initVolumes() error {
	env := d.env()
	for v := 1; v <= 2; v++ {
		dir := fmt.Sprintf("%s/vol%d/VERSION", d.name, v)
		if err := env.Disk.Write("dfs.datanode.init-storage", dir, []byte("ok\n")); err != nil {
			return err
		}
	}
	return nil
}

// refreshVolumes re-checks storage directories periodically; unlike the
// startup path, errors here are tolerated with a warning.
func (d *DataNode) refreshVolumes() {
	env := d.env()
	if err := d.initVolumes(); err != nil {
		env.Log.Warnf("Volume refresh failed on %s, will retry: %s", d.name, err)
	}
}

// acquireXceiver reserves a transfer thread; the pool is finite.
func (d *DataNode) acquireXceiver() error {
	if d.xceiversBusy+d.leaked >= d.xceiverLimit {
		return fmt.Errorf("dfs: xceiver pool exhausted on %s", d.name)
	}
	d.xceiversBusy++
	return nil
}

func (d *DataNode) releaseXceiver() {
	if d.xceiversBusy > 0 {
		d.xceiversBusy--
	}
}

// writeReq is a pipelined block write.
type writeReq struct {
	Block    int64
	Data     string
	Pipeline []string // remaining downstream targets, self first
}

// onWriteBlock is the pipeline head: store locally, then mirror downstream.
// HD-13039 (f8): when connecting to the downstream node fails, the error
// path returns without releasing the xceiver — the socket/thread leak.
func (d *DataNode) onWriteBlock(m simnet.Message, respond func(interface{}, error)) {
	env := d.env()
	if !d.started || d.failed {
		return
	}
	req, ok := m.Payload.(writeReq)
	if !ok {
		respond(nil, fmt.Errorf("dfs: malformed write"))
		return
	}
	if err := d.acquireXceiver(); err != nil {
		env.Log.Errorf("Xceiver pool exhausted on %s, rejecting blk_%d", d.name, req.Block)
		respond(nil, err)
		return
	}
	if err := d.storeReplica(req.Block, req.Data); err != nil {
		env.Log.Errorf("Failed to write replica blk_%d on %s: %s", req.Block, d.name, err)
		d.releaseXceiver()
		respond(nil, err)
		return
	}
	downstream := req.Pipeline[1:]
	if len(downstream) == 0 {
		d.releaseXceiver()
		d.reportFinalized(req.Block)
		respond("ack", nil)
		return
	}
	// Connect to the next node in the pipeline.
	if err := env.FI.Reach("dfs.datanode.connect-downstream", inject.IO); err != nil {
		env.Log.Errorf("Failed to build pipeline for blk_%d at %s", req.Block, d.name)
		d.leaked++ // Defect (HD-13039): early return leaks the xceiver.
		respond(nil, fmt.Errorf("dfs: pipeline setup failed for blk_%d", req.Block))
		return
	}
	next := downstream[0]
	env.Net.Call("dfs.datanode.mirror-rpc",
		d.c.msg(d.name, next, "dfs.mirror", writeReq{Block: req.Block, Data: req.Data, Pipeline: downstream}),
		pipeTimeout, func(_ interface{}, err error) {
			d.releaseXceiver()
			if err != nil {
				env.Log.Errorf("Pipeline ack for blk_%d failed at %s: %s", req.Block, d.name, err)
				respond(nil, err)
				return
			}
			d.reportFinalized(req.Block)
			respond("ack", nil)
		})
}

// onMirror is a downstream pipeline stage.
func (d *DataNode) onMirror(m simnet.Message, respond func(interface{}, error)) {
	env := d.env()
	if !d.started || d.failed {
		return
	}
	req, ok := m.Payload.(writeReq)
	if !ok {
		respond(nil, fmt.Errorf("dfs: malformed mirror"))
		return
	}
	if err := d.acquireXceiver(); err != nil {
		env.Log.Errorf("Xceiver pool exhausted on %s, rejecting blk_%d", d.name, req.Block)
		respond(nil, err)
		return
	}
	if err := d.storeReplica(req.Block, req.Data); err != nil {
		env.Log.Errorf("Failed to write replica blk_%d on %s: %s", req.Block, d.name, err)
		d.releaseXceiver()
		respond(nil, err)
		return
	}
	downstream := req.Pipeline[1:]
	if len(downstream) == 0 {
		d.releaseXceiver()
		d.reportFinalized(req.Block)
		respond("ack", nil)
		return
	}
	next := downstream[0]
	env.Net.Call("dfs.datanode.mirror-rpc",
		d.c.msg(d.name, next, "dfs.mirror", writeReq{Block: req.Block, Data: req.Data, Pipeline: downstream}),
		pipeTimeout, func(_ interface{}, err error) {
			d.releaseXceiver()
			if err != nil {
				env.Log.Errorf("Pipeline ack for blk_%d failed at %s: %s", req.Block, d.name, err)
				respond(nil, err)
				return
			}
			d.reportFinalized(req.Block)
			respond("ack", nil)
		})
}

func (d *DataNode) storeReplica(block int64, data string) error {
	env := d.env()
	path := fmt.Sprintf("%s/blk_%d", d.name, block)
	if err := env.Disk.Write("dfs.datanode.write-replica", path, []byte(data)); err != nil {
		return err
	}
	if err := env.Disk.Sync("dfs.datanode.sync-replica", path); err != nil {
		return err
	}
	return nil
}

// reportFinalized tells the namenode this replica is complete.
func (d *DataNode) reportFinalized(block int64) {
	env := d.env()
	d.c.NN.reportReplica(block, d.name)
	env.Log.Debugf("Finalized replica blk_%d on %s", block, d.name)
}

// readReq is a token-authorized block read.
type readReq struct {
	Block int64
	Token blockToken
}

// onReadBlock validates the token and serves the replica.
func (d *DataNode) onReadBlock(m simnet.Message, respond func(interface{}, error)) {
	env := d.env()
	if !d.started || d.failed {
		return
	}
	req, ok := m.Payload.(readReq)
	if !ok {
		respond(nil, fmt.Errorf("dfs: malformed read"))
		return
	}
	if env.Sim.Now() > req.Token.Expiry {
		env.Log.Warnf("Invalid block token for blk_%d from %s: token expired", req.Block, m.From)
		respond(nil, fmt.Errorf("dfs: invalid block token for blk_%d", req.Block))
		return
	}
	data, err := env.Disk.Read("dfs.datanode.read-replica", fmt.Sprintf("%s/blk_%d", d.name, req.Block))
	if err != nil {
		env.Log.Errorf("Failed to read replica blk_%d on %s: %s", req.Block, d.name, err)
		respond(nil, err)
		return
	}
	respond(string(data), nil)
}

// onRecover finalizes the last block of an abandoned file. The disk sync is
// the recovery's fault boundary (HD-12070, f7).
func (d *DataNode) onRecover(m simnet.Message, respond func(interface{}, error)) {
	env := d.env()
	if !d.started || d.failed {
		return
	}
	block, _ := m.Payload.(int64)
	env.Log.Infof("Recovering blk_%d on %s", block, d.name)
	path := fmt.Sprintf("%s/blk_%d", d.name, block)
	if err := env.Disk.Sync("dfs.datanode.recover-finalize", path); err != nil {
		env.Log.Errorf("Replica recovery of blk_%d failed on %s: %s", block, d.name, err)
		respond(nil, err)
		return
	}
	d.reportFinalized(block)
	respond("ok", nil)
}

// transferReq asks a replica holder to copy a block to another datanode.
type transferReq struct {
	Block  int64
	Target string
}

// onTransferBlock serves the replication monitor: read the local replica
// and mirror it to the under-replicated target.
func (d *DataNode) onTransferBlock(m simnet.Message, respond func(interface{}, error)) {
	env := d.env()
	if !d.started || d.failed {
		return
	}
	req, ok := m.Payload.(transferReq)
	if !ok {
		respond(nil, fmt.Errorf("dfs: malformed transfer"))
		return
	}
	data, err := env.Disk.Read("dfs.datanode.transfer-read", fmt.Sprintf("%s/blk_%d", d.name, req.Block))
	if err != nil {
		env.Log.Warnf("Cannot read blk_%d for transfer on %s: %s", req.Block, d.name, err)
		respond(nil, err)
		return
	}
	env.Net.Call("dfs.datanode.transfer-rpc",
		d.c.msg(d.name, req.Target, "dfs.mirror", writeReq{Block: req.Block, Data: string(data), Pipeline: []string{req.Target}}),
		pipeTimeout, func(_ interface{}, err error) {
			if err != nil {
				env.Log.Warnf("Transfer of blk_%d to %s failed: %s", req.Block, req.Target, err)
				respond(nil, err)
				return
			}
			respond("ok", nil)
		})
}

// onMoveBlock serves balancer move requests.
func (d *DataNode) onMoveBlock(m simnet.Message, respond func(interface{}, error)) {
	env := d.env()
	if !d.started || d.failed {
		return
	}
	block, _ := m.Payload.(int64)
	env.Log.Debugf("Balancer moved blk_%d to %s", block, d.name)
	respond("ok", nil)
}
