package mq

import (
	"anduril/internal/cluster"
	"anduril/internal/des"
)

// Horizon is how much virtual time the mq workloads need to quiesce.
const Horizon = 3 * des.Second

// WorkloadStreams drives an emit-on-change table: a producer of distinct
// updates, the streams task, and a final emission verification — the
// driving workload for f18 (KA-12508).
func WorkloadStreams(env *cluster.Env) {
	b := NewBroker(env, "broker-a")
	p := NewProducer(env, "mq-producer-1", "broker-a")
	task := NewStreamsTask(env, "broker-a", "events", "changes")
	task.Start()
	env.Sim.Schedule("mq-producer-1", 150*des.Millisecond, func() {
		p.ProduceLoop("events", "user-1", 45*des.Millisecond, 25)
	})
	env.Sim.Schedule("verifier", 2500*des.Millisecond, func() {
		VerifyEmissions(env, b, "events", "changes")
	})
}

// WorkloadConnect drives a connect worker with two connectors and a stream
// of administrative requests — the driving workload for f19 (KA-9374).
func WorkloadConnect(env *cluster.Env) {
	NewBroker(env, "broker-a")
	w := NewConnectWorker(env, []string{"connector-1", "connector-2"})
	w.Start()
	admin := NewConnectClient(env, "mq-admin-1")
	env.Sim.Schedule("mq-admin-1", 300*des.Millisecond, func() { admin.Request("status", "connector-1") })
	env.Sim.Schedule("mq-admin-1", 500*des.Millisecond, func() { admin.Request("reconfigure", "connector-1") })
	env.Sim.Schedule("mq-admin-1", 800*des.Millisecond, func() { admin.Request("status", "connector-2") })
	env.Sim.Schedule("mq-admin-1", 1100*des.Millisecond, func() { admin.Request("pause", "connector-2") })
	env.Sim.Schedule("mq-admin-1", 1400*des.Millisecond, func() { admin.Request("reconfigure", "connector-2") })
	env.Sim.Schedule("mq-admin-1", 1700*des.Millisecond, func() { admin.Request("resume", "connector-2") })
}

// WorkloadMirror drives cross-cluster replication with a consumer that
// fails over mid-run — the driving workload for f20 (KA-10048).
func WorkloadMirror(env *cluster.Env) {
	NewBroker(env, "broker-a")
	NewBroker(env, "broker-b")
	p := NewProducer(env, "mq-producer-1", "broker-a")
	m := NewMirror(env, "broker-a", "broker-b", "orders", "order-processors")
	m.Start()
	consumer := NewGroupConsumer(env, "mq-consumer-1", "broker-a", "orders", "order-processors")
	consumer.Start()
	env.Sim.Schedule("mq-producer-1", 150*des.Millisecond, func() {
		p.ProduceLoop("orders", "order", 25*des.Millisecond, 70)
	})
	env.Sim.Schedule("harness", 1500*des.Millisecond, func() {
		consumer.Failover("broker-b")
	})
}
