package mq

import (
	"testing"

	"anduril/internal/cluster"
	"anduril/internal/inject"
)

func TestGroupWorkloadFailover(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		r := cluster.Execute(seed, nil, true, WorkloadGroup, Horizon)
		if !r.LogContains("Consumer consumer-a joined group order-processors") {
			t.Fatalf("seed %d: consumer-a never joined\n%s", seed, r.RenderLog())
		}
		if !r.LogContains("Consumer consumer-a process exited") {
			t.Fatalf("seed %d: crash did not happen", seed)
		}
		if !r.LogContains("member consumer-a expired") {
			t.Fatalf("seed %d: coordinator did not expire the dead member\n%s", seed, r.RenderLog())
		}
		// The survivor must end up owning the partition and processing.
		if !r.LogContainsExact("partition of orders owned by consumer-b") {
			t.Fatalf("seed %d: partition did not fail over\n%s", seed, r.RenderLog())
		}
	}
}

func TestGroupRebalanceGenerations(t *testing.T) {
	r := cluster.Execute(1, nil, true, WorkloadGroup, Horizon)
	// At least: gen 1 (first join), gen 2 (second join), gen 3 (expiry).
	if !r.LogContains("rebalanced to generation 3") {
		t.Fatalf("fewer than 3 generations:\n%s", r.RenderLog())
	}
}

func TestGroupHeartbeatFaultTriggersRejoin(t *testing.T) {
	free := cluster.Execute(1, nil, true, WorkloadGroup, Horizon)
	if free.Counts["mq.consumer.send-group-heartbeat"] < 10 {
		t.Fatalf("heartbeats: %d", free.Counts["mq.consumer.send-group-heartbeat"])
	}
	r := cluster.Execute(1, inject.Exact(inject.Instance{Site: "mq.consumer.send-group-heartbeat", Occurrence: 5}),
		false, WorkloadGroup, Horizon)
	if !r.LogContains("heartbeat failed, rejoining group") {
		t.Fatalf("heartbeat fault not handled:\n%s", r.RenderLog())
	}
	// The protocol recovers: the group keeps a live owner.
	if !r.LogContains("partition of orders owned by") {
		t.Fatal("group never rebalanced")
	}
}
