package mq

import (
	"fmt"
	"sort"

	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/simnet"
)

// GroupCoordinator implements the consumer-group protocol on a broker:
// members join, the coordinator bumps the generation and assigns the
// topic's partition to exactly one member, and missed heartbeats evict a
// member and trigger a rebalance — the machinery behind Kafka failover.
type GroupCoordinator struct {
	env    *cluster.Env
	broker string
	group  string
	topic  string

	generation int
	members    map[string]des.Time // member -> last heartbeat
	leader     string
}

// NewGroupCoordinator attaches a coordinator for one group to a broker.
func NewGroupCoordinator(env *cluster.Env, broker, group, topic string) *GroupCoordinator {
	g := &GroupCoordinator{env: env, broker: broker, group: group, topic: topic,
		members: make(map[string]des.Time)}
	env.Net.Handle(broker, "mq.join-group", broker+"-coordinator", g.onJoin)
	env.Net.Handle(broker, "mq.group-heartbeat", broker+"-coordinator", g.onHeartbeat)
	env.Net.Handle(broker, "mq.leave-group", broker+"-coordinator", g.onLeave)

	env.Sim.Every(broker+"-coordinator", 150*des.Millisecond, func() {
		g.expireMembers()
	})
	return g
}

// assignment is what a joining member learns.
type assignment struct {
	Generation int
	Leader     bool
}

func (g *GroupCoordinator) onJoin(m simnet.Message, respond func(interface{}, error)) {
	env := g.env
	g.members[m.From] = env.Sim.Now()
	g.rebalance("member " + m.From + " joined")
	respond(assignment{Generation: g.generation, Leader: g.leader == m.From}, nil)
}

func (g *GroupCoordinator) onLeave(m simnet.Message, _ func(interface{}, error)) {
	if _, ok := g.members[m.From]; !ok {
		return
	}
	delete(g.members, m.From)
	g.rebalance("member " + m.From + " left")
}

// onHeartbeat refreshes the member's deadline; the response tells the
// member whether its generation is stale and it must rejoin.
func (g *GroupCoordinator) onHeartbeat(m simnet.Message, respond func(interface{}, error)) {
	env := g.env
	beat, ok := m.Payload.(int)
	if _, member := g.members[m.From]; !member {
		respond(nil, fmt.Errorf("mq: unknown member %s", m.From))
		return
	}
	g.members[m.From] = env.Sim.Now()
	if ok && beat != g.generation {
		respond("rejoin", nil)
		return
	}
	respond("ok", nil)
}

func (g *GroupCoordinator) expireMembers() {
	env := g.env
	now := env.Sim.Now()
	// Evict in sorted member order: when several members expire in one
	// sweep, the eviction (and rebalance) order must not depend on map
	// iteration order.
	var expired []string
	for member, last := range g.members {
		if now-last > 400*des.Millisecond {
			expired = append(expired, member)
		}
	}
	sort.Strings(expired)
	for _, member := range expired {
		last := g.members[member]
		delete(g.members, member)
		env.Log.Warnf("Group %s member %s expired after %dms without heartbeat",
			g.group, member, (now-last)/des.Millisecond)
		g.rebalance("member " + member + " expired")
	}
}

// rebalance bumps the generation and re-elects the partition owner
// (deterministically: the lexicographically-smallest member).
func (g *GroupCoordinator) rebalance(reason string) {
	env := g.env
	g.generation++
	g.leader = ""
	for member := range g.members {
		if g.leader == "" || member < g.leader {
			g.leader = member
		}
	}
	env.Log.Infof("Group %s rebalanced to generation %d (%s), partition of %s owned by %s",
		g.group, g.generation, reason, g.topic, g.leader)
}

// GroupMember is a consumer participating in the group protocol; only the
// assigned member polls, and an expired peer's partition fails over.
type GroupMember struct {
	env    *cluster.Env
	name   string
	broker string
	group  string
	topic  string

	generation int
	owner      bool
	offset     int64
	stopped    bool
}

// NewGroupMember creates (but does not start) a member.
func NewGroupMember(env *cluster.Env, name, broker, group, topic string) *GroupMember {
	return &GroupMember{env: env, name: name, broker: broker, group: group, topic: topic}
}

// Start joins the group and begins heartbeating and polling.
func (c *GroupMember) Start() {
	env := c.env
	env.Sim.Go(c.name, c.join)
	env.Sim.Every(c.name, 100*des.Millisecond, func() {
		if c.stopped {
			return
		}
		c.heartbeat()
	})
	env.Sim.Every(c.name+"-poller", 80*des.Millisecond, func() {
		if c.stopped || !c.owner {
			return
		}
		c.pollOnce()
	})
}

// Stop makes the member vanish without leaving the group cleanly (a
// consumer crash); the coordinator expires it and fails the partition over.
func (c *GroupMember) Stop() {
	c.stopped = true
	c.env.Log.Warnf("Consumer %s process exited", c.name)
}

func (c *GroupMember) join() {
	env := c.env
	env.Net.Call("mq.consumer.join-group", simnet.Message{
		From: c.name, To: c.broker, Type: "mq.join-group", Payload: nil,
	}, 250*des.Millisecond, func(payload interface{}, err error) {
		if err != nil {
			env.Log.Warnf("Consumer %s join failed, retrying: %s", c.name, err)
			env.Sim.Schedule(c.name, 150*des.Millisecond, c.join)
			return
		}
		a := payload.(assignment)
		c.generation = a.Generation
		c.owner = a.Leader
		env.Log.Infof("Consumer %s joined group %s generation %d (owner=%v)",
			c.name, c.group, a.Generation, a.Leader)
	})
}

func (c *GroupMember) heartbeat() {
	env := c.env
	env.Net.Call("mq.consumer.send-group-heartbeat", simnet.Message{
		From: c.name, To: c.broker, Type: "mq.group-heartbeat", Payload: c.generation,
	}, 250*des.Millisecond, func(payload interface{}, err error) {
		if c.stopped {
			return
		}
		if err != nil {
			env.Log.Warnf("Consumer %s heartbeat failed, rejoining group: %s", c.name, err)
			c.owner = false
			c.join()
			return
		}
		if status, _ := payload.(string); status == "rejoin" {
			env.Log.Infof("Consumer %s told to rejoin group %s", c.name, c.group)
			c.owner = false
			c.join()
		}
	})
}

func (c *GroupMember) pollOnce() {
	env := c.env
	env.Net.Call("mq.consumer.group-poll", simnet.Message{
		From: c.name, To: c.broker, Type: "mq.fetch",
		Payload: fetchReq{Topic: c.topic, Offset: c.offset, Max: 5},
	}, 250*des.Millisecond, func(payload interface{}, err error) {
		if err != nil || c.stopped {
			return
		}
		recs := payload.([]record)
		for _, rec := range recs {
			c.offset = rec.Offset + 1
		}
		if len(recs) > 0 {
			env.Log.Debugf("Consumer %s processed %d records up to offset %d", c.name, len(recs), c.offset)
			env.Net.Call("mq.consumer.group-commit", simnet.Message{
				From: c.name, To: c.broker, Type: "mq.commit",
				Payload: commitReq{Group: c.group, Topic: c.topic, Offset: c.offset},
			}, 250*des.Millisecond, func(_ interface{}, err error) {
				if err != nil {
					env.Log.Warnf("Consumer %s group commit failed: %s", c.name, err)
				}
			})
		}
	})
}

// WorkloadGroup drives the consumer-group protocol: two members, a crash,
// and the failover of the partition to the survivor.
func WorkloadGroup(env *cluster.Env) {
	NewBroker(env, "broker-a")
	NewGroupCoordinator(env, "broker-a", "order-processors", "orders")
	p := NewProducer(env, "mq-producer-1", "broker-a")
	c1 := NewGroupMember(env, "consumer-a", "broker-a", "order-processors", "orders")
	c2 := NewGroupMember(env, "consumer-b", "broker-a", "order-processors", "orders")
	c1.Start()
	c2.Start()
	env.Sim.Schedule("mq-producer-1", 200*des.Millisecond, func() {
		p.ProduceLoop("orders", "order", 30*des.Millisecond, 60)
	})
	env.Sim.Schedule("harness", 1200*des.Millisecond, func() {
		c1.Stop()
	})
}
