package mq

import (
	"testing"

	"anduril/internal/cluster"
	"anduril/internal/inject"
)

func runFree(t *testing.T, w cluster.Workload, seed int64) *cluster.Result {
	t.Helper()
	return cluster.Execute(seed, nil, true, w, Horizon)
}

func runWith(t *testing.T, w cluster.Workload, seed int64, inst inject.Instance) *cluster.Result {
	t.Helper()
	return cluster.Execute(seed, inject.Exact(inst), true, w, Horizon)
}

func TestStreamsWorkloadHealthy(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		r := runFree(t, WorkloadStreams, seed)
		if !r.LogContains("verification passed") {
			t.Fatalf("seed %d: emissions not verified\n%s", seed, r.RenderLog())
		}
		if r.LogContains("lost update") {
			t.Fatalf("seed %d: spurious update loss", seed)
		}
	}
}

func TestConnectWorkloadHealthy(t *testing.T) {
	r := runFree(t, WorkloadConnect, 1)
	if !r.LogContains("restarted with new configuration") {
		t.Fatalf("reconfigure never ran:\n%s", r.RenderLog())
	}
	if r.LogContains("worker unresponsive") || len(r.Blocked) != 0 {
		t.Fatalf("worker wedged without fault: %v", r.Blocked)
	}
}

func TestMirrorWorkloadHealthy(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		r := runFree(t, WorkloadMirror, seed)
		if !r.LogContains("resumed on") {
			t.Fatalf("seed %d: failover did not complete\n%s", seed, r.RenderLog())
		}
		if r.LogContains("Data gap detected") {
			t.Fatalf("seed %d: spurious data gap", seed)
		}
	}
}

// f18 — KA-12508: checkpoint failure between store write and emit loses
// the update across the restart.
func TestF18LostUpdate(t *testing.T) {
	r := runWith(t, WorkloadStreams, 1, inject.Instance{Site: "mq.streams.checkpoint", Occurrence: 5})
	if !r.LogContains("restarting task") {
		t.Fatalf("task did not restart:\n%s", r.RenderLog())
	}
	if !r.LogContains("lost update") {
		t.Fatalf("update not lost:\n%s", r.RenderLog())
	}
	if !r.LogContains("no change for key") {
		t.Fatalf("emit-on-change skip not hit:\n%s", r.RenderLog())
	}
}

// f18 control: a store-write failure before persistence is safe — the
// restart reprocesses the record and emits normally.
func TestF18StoreWriteTolerated(t *testing.T) {
	r := runWith(t, WorkloadStreams, 1, inject.Instance{Site: "mq.streams.write-store", Occurrence: 5})
	if !r.LogContains("Restarting streams task") {
		t.Fatalf("task should restart:\n%s", r.RenderLog())
	}
	if r.LogContains("lost update") {
		t.Fatal("store-write failure must not lose updates")
	}
}

// f19 — KA-9374: a connector that cannot stop blocks the herder and
// disables the whole worker.
func TestF19BlockedHerder(t *testing.T) {
	r := runWith(t, WorkloadConnect, 1, inject.Instance{Site: "mq.connect.stop-connector", Occurrence: 1})
	if !r.BlockedOn("connector-stop") {
		t.Fatalf("herder not blocked: %v\n%s", r.Blocked, r.RenderLog())
	}
	if !r.LogContains("worker unresponsive") {
		t.Fatalf("other requests should time out:\n%s", r.RenderLog())
	}
}

// f19 control: task-poll failures are retried and harmless.
func TestF19TaskPollTolerated(t *testing.T) {
	r := runWith(t, WorkloadConnect, 1, inject.Instance{Site: "mq.connect.task-poll", Occurrence: 3})
	if r.LogContains("worker unresponsive") {
		t.Fatal("poll failure must not wedge the worker")
	}
	if !r.LogContains("task poll failed") {
		t.Fatalf("poll retry path not hit:\n%s", r.RenderLog())
	}
}

// f20 — KA-10048: a tolerated conversion drop desynchronizes the offset
// mapping; the failed-over consumer skips records.
func TestF20DataGap(t *testing.T) {
	free := runFree(t, WorkloadMirror, 1)
	n := free.Counts["mq.mm2.convert-record"]
	if n < 30 {
		t.Fatalf("convert occurrences: %d", n)
	}
	hit := 0
	for occ := 1; occ <= n; occ++ {
		r := cluster.Execute(1, inject.Exact(inject.Instance{Site: "mq.mm2.convert-record", Occurrence: occ}), false, WorkloadMirror, Horizon)
		if r.LogContains("errors.tolerance") && r.LogContains("Data gap detected") {
			hit = occ
			break
		}
	}
	if hit == 0 {
		t.Fatal("no drop occurrence produced a failover gap")
	}
	t.Logf("occurrence %d of %d produces the gap", hit, n)
}

func TestFaultSitesExercised(t *testing.T) {
	sites := map[string]bool{}
	for _, w := range []cluster.Workload{WorkloadStreams, WorkloadConnect, WorkloadMirror} {
		r := runFree(t, w, 1)
		for s, n := range r.Counts {
			if n > 0 {
				sites[s] = true
			}
		}
	}
	for _, site := range []string{
		"mq.broker.append-log", "mq.streams.checkpoint", "mq.streams.write-store",
		"mq.streams.poll", "mq.connect.stop-connector", "mq.connect.task-poll",
		"mq.mm2.convert-record", "mq.mm2.write-offset-sync", "mq.mm2.poll-source",
		"mq.producer.send",
	} {
		if !sites[site] {
			t.Errorf("fault site %s never exercised", site)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runFree(t, WorkloadMirror, 5)
	b := runFree(t, WorkloadMirror, 5)
	if len(a.Entries) != len(b.Entries) {
		t.Fatalf("nondeterministic: %d vs %d", len(a.Entries), len(b.Entries))
	}
}
