package mq

import (
	"fmt"

	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/inject"
	"anduril/internal/simnet"
)

// Mirror replicates a topic from a source to a target cluster and
// maintains the offset-sync mapping that translates consumer offsets for
// failover (the MirrorMaker2 model of KA-10048, f20).
//
// The defect: when writing an offset-sync record fails, the in-memory
// mapping keeps the already-advanced target offset without the sync being
// durable or consistent — the next checkpoint translates consumer offsets
// too far ahead, and a failed-over consumer skips records.
type Mirror struct {
	env    *cluster.Env
	name   string
	source string
	target string
	topic  string
	group  string

	srcOffset int64
	dstOffset int64

	// syncSrc/syncDst are the latest offset-sync pair, used to translate
	// checkpoints. syncDst drifts when a sync write fails (the bug).
	syncSrc int64
	syncDst int64

	sinceSync int
}

// NewMirror creates the replicator between two brokers.
func NewMirror(env *cluster.Env, source, target, topic, group string) *Mirror {
	return &Mirror{env: env, name: "mm2", source: source, target: target, topic: topic, group: group}
}

// Start begins the replication and checkpoint loops.
func (m *Mirror) Start() {
	env := m.env
	env.Sim.Go(m.name, func() {
		env.Log.Infof("Mirror %s replicating %s from %s to %s", m.name, m.topic, m.source, m.target)
	})
	env.Sim.Every(m.name, 50*des.Millisecond, func() { m.replicateBatch() })
	env.Sim.Every(m.name+"-checkpoint", 200*des.Millisecond, func() { m.checkpoint() })
}

// replicateBatch copies the next records and refreshes the offset sync
// every few records.
func (m *Mirror) replicateBatch() {
	env := m.env
	env.Net.Call("mq.mm2.poll-source", simnet.Message{
		From: m.name, To: m.source, Type: "mq.fetch",
		Payload: fetchReq{Topic: m.topic, Offset: m.srcOffset, Max: 3},
	}, 250*des.Millisecond, func(payload interface{}, err error) {
		if err != nil {
			env.Log.Warnf("Mirror poll of %s failed, will retry: %s", m.source, err)
			return
		}
		recs := payload.([]record)
		if len(recs) == 0 {
			return
		}
		m.shipRecords(recs, 0)
	})
}

func (m *Mirror) shipRecords(recs []record, i int) {
	env := m.env
	if i >= len(recs) {
		return
	}
	rec := recs[i]
	// Convert the record for the target cluster. Defect (KA-10048): with
	// errors.tolerance=all, a conversion failure silently drops the record
	// while the mirror's offsets — and therefore the offset-sync mapping —
	// advance as if it had been replicated.
	if err := env.FI.Reach("mq.mm2.convert-record", inject.IO); err != nil {
		env.Log.Warnf("Mirror dropped record at offset %d (errors.tolerance=all)", rec.Offset)
		m.srcOffset = rec.Offset + 1
		m.dstOffset++
		m.sinceSync++
		m.shipRecords(recs, i+1)
		return
	}
	env.Net.Call("mq.mm2.replicate-record", simnet.Message{
		From: m.name, To: m.target, Type: "mq.produce",
		Payload: produceReq{Topic: m.topic, Rec: rec},
	}, 250*des.Millisecond, func(payload interface{}, err error) {
		if err != nil {
			env.Log.Warnf("Mirror replication of offset %d failed, will retry: %s", rec.Offset, err)
			return
		}
		// MM2 tracks the target position with its own counter rather than
		// the broker's returned offset; after a tolerated drop the counter
		// overstates the target position — the heart of the f20 gap.
		m.srcOffset = rec.Offset + 1
		m.dstOffset++
		m.sinceSync++
		if m.sinceSync >= 4 {
			m.writeOffsetSync()
		}
		m.shipRecords(recs, i+1)
	})
}

// writeOffsetSync persists the (source offset -> target offset) mapping.
func (m *Mirror) writeOffsetSync() {
	env := m.env
	m.sinceSync = 0
	m.syncSrc = m.srcOffset
	m.syncDst = m.dstOffset
	if err := env.FI.Reach("mq.mm2.write-offset-sync", inject.IO); err != nil {
		env.Log.Warnf("Offset sync write failed at source offset %d, will retry next batch: %s", m.srcOffset, err)
		return
	}
	sync := fmt.Sprintf("%d|%d\n", m.syncSrc, m.syncDst)
	if err := env.Disk.Append("mq.mm2.append-sync-log", "mm2/offset-syncs", []byte(sync)); err != nil {
		env.Log.Warnf("Offset sync log append failed: %s", err)
		return
	}
	env.Log.Debugf("Offset sync recorded: %d -> %d", m.syncSrc, m.syncDst)
}

// checkpoint translates the consumer group's committed source offset into
// a target-cluster checkpoint.
func (m *Mirror) checkpoint() {
	env := m.env
	env.Net.Call("mq.mm2.fetch-group-offset", simnet.Message{
		From: m.name, To: m.source, Type: "mq.fetch-committed",
		Payload: commitReq{Group: m.group, Topic: m.topic},
	}, 250*des.Millisecond, func(payload interface{}, err error) {
		if err != nil {
			env.Log.Warnf("Mirror checkpoint fetch failed: %s", err)
			return
		}
		committed := payload.(int64)
		if committed == 0 {
			return
		}
		translated := committed - m.syncSrc + m.syncDst
		if translated < 0 {
			translated = 0
		}
		env.Net.Call("mq.mm2.write-checkpoint", simnet.Message{
			From: m.name, To: m.target, Type: "mq.commit",
			Payload: commitReq{Group: m.group, Topic: m.topic, Offset: translated},
		}, 250*des.Millisecond, func(_ interface{}, err error) {
			if err != nil {
				env.Log.Warnf("Mirror checkpoint write failed: %s", err)
				return
			}
			env.Log.Debugf("Checkpointed group %s at translated offset %d", m.group, translated)
		})
	})
}

// GroupConsumer consumes the topic on the source cluster, committing
// offsets, and fails over to the target cluster when asked.
type GroupConsumer struct {
	env     *cluster.Env
	name    string
	broker  string
	topic   string
	group   string
	offset  int64
	lastSeq int64
	failed  bool
}

// NewGroupConsumer creates the consumer on the given cluster.
func NewGroupConsumer(env *cluster.Env, name, broker, topic, group string) *GroupConsumer {
	return &GroupConsumer{env: env, name: name, broker: broker, topic: topic, group: group}
}

// Start begins the poll/commit loop.
func (g *GroupConsumer) Start() {
	env := g.env
	env.Sim.Every(g.name, 60*des.Millisecond, func() {
		if g.failed {
			return
		}
		g.pollOnce()
	})
}

func (g *GroupConsumer) pollOnce() {
	env := g.env
	env.Net.Call("mq.consumer.poll", simnet.Message{
		From: g.name, To: g.broker, Type: "mq.fetch",
		Payload: fetchReq{Topic: g.topic, Offset: g.offset, Max: 5},
	}, 250*des.Millisecond, func(payload interface{}, err error) {
		if err != nil {
			env.Log.Warnf("Consumer %s poll failed: %s", g.name, err)
			return
		}
		recs := payload.([]record)
		for _, rec := range recs {
			if g.lastSeq > 0 && rec.Seq > g.lastSeq+1 {
				env.Log.Errorf("Data gap detected after failover: expected seq %d got %d on %s",
					g.lastSeq+1, rec.Seq, g.broker)
			}
			if rec.Seq > g.lastSeq {
				g.lastSeq = rec.Seq
			}
			g.offset = rec.Offset + 1
		}
		if len(recs) > 0 {
			env.Net.Call("mq.consumer.commit", simnet.Message{
				From: g.name, To: g.broker, Type: "mq.commit",
				Payload: commitReq{Group: g.group, Topic: g.topic, Offset: g.offset},
			}, 250*des.Millisecond, func(_ interface{}, err error) {
				if err != nil {
					env.Log.Warnf("Consumer %s commit failed: %s", g.name, err)
				}
			})
		}
	})
}

// Failover switches the consumer to the target cluster, resuming from the
// mirrored checkpoint.
func (g *GroupConsumer) Failover(target string) {
	env := g.env
	g.failed = true
	env.Log.Warnf("Consumer %s failing over from %s to %s", g.name, g.broker, target)
	env.Net.Call("mq.consumer.fetch-checkpoint", simnet.Message{
		From: g.name, To: target, Type: "mq.fetch-committed",
		Payload: commitReq{Group: g.group, Topic: g.topic},
	}, 250*des.Millisecond, func(payload interface{}, err error) {
		if err != nil {
			env.Log.Errorf("Consumer %s failover checkpoint fetch failed: %s", g.name, err)
			return
		}
		g.broker = target
		g.offset = payload.(int64)
		g.failed = false
		env.Log.Infof("Consumer %s resumed on %s at offset %d", g.name, target, g.offset)
	})
}
