// Package mq is a miniature Kafka-like log broker ecosystem built on the
// simulated cluster substrate: brokers with partitioned, offset-addressed
// topic logs; producers and offset-committing consumers; a streams
// processor with an emit-on-change table; a connect worker with a herder
// thread; and a cross-cluster mirror replicator with offset syncs and
// consumer checkpoints.
//
// The package contains the bug patterns of the three Kafka failures in the
// paper's dataset (Table 5): KA-12508 (f18), KA-9374 (f19) and
// KA-10048 (f20).
package mq

import (
	"fmt"

	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/simnet"
)

// record is one message in a topic log.
type record struct {
	Offset int64
	Key    string
	Value  string
	Seq    int64 // producer sequence number, used by gap detectors
}

// Broker hosts topic logs and consumer-group offsets.
type Broker struct {
	env  *cluster.Env
	name string

	topics  map[string][]record
	offsets map[string]int64 // group|topic -> committed offset
}

// NewBroker creates and registers a broker node.
func NewBroker(env *cluster.Env, name string) *Broker {
	b := &Broker{env: env, name: name, topics: make(map[string][]record), offsets: make(map[string]int64)}
	net := env.Net
	net.Handle(name, "mq.produce", name+"-request", b.onProduce)
	net.Handle(name, "mq.fetch", name+"-request", b.onFetch)
	net.Handle(name, "mq.commit", name+"-request", b.onCommit)
	net.Handle(name, "mq.fetch-committed", name+"-request", b.onFetchCommitted)
	env.Sim.Go(name+"-main", func() {
		env.Log.Infof("Broker %s started", name)
	})
	return b
}

type produceReq struct {
	Topic string
	Rec   record
}

// segmentSize is how many records one on-disk segment holds before the
// broker rolls to a fresh one.
const segmentSize = 20

func (b *Broker) onProduce(m simnet.Message, respond func(interface{}, error)) {
	req, ok := m.Payload.(produceReq)
	if !ok {
		respond(nil, fmt.Errorf("mq: malformed produce"))
		return
	}
	rec := req.Rec
	rec.Offset = int64(len(b.topics[req.Topic]))
	segment := rec.Offset / segmentSize * segmentSize
	path := fmt.Sprintf("%s/%s/%020d.segment", b.name, req.Topic, segment)
	if rec.Offset%segmentSize == 0 {
		if err := b.env.Disk.Create("mq.broker.roll-segment", path); err != nil {
			b.env.Log.Errorf("Broker %s failed to roll segment for %s: %s", b.name, req.Topic, err)
			respond(nil, err)
			return
		}
		b.env.Log.Infof("Broker %s rolled %s to segment starting at offset %d", b.name, req.Topic, segment)
	}
	if err := b.env.Disk.Append("mq.broker.append-log", path, []byte(fmt.Sprintf("%d|%s|%s\n", rec.Offset, rec.Key, rec.Value))); err != nil {
		b.env.Log.Errorf("Broker %s failed to append to %s: %s", b.name, req.Topic, err)
		respond(nil, err)
		return
	}
	b.topics[req.Topic] = append(b.topics[req.Topic], rec)
	b.env.Log.Debugf("Broker %s appended %s@%d to %s", b.name, rec.Key, rec.Offset, req.Topic)
	respond(rec.Offset, nil)
}

type fetchReq struct {
	Topic  string
	Offset int64
	Max    int
}

func (b *Broker) onFetch(m simnet.Message, respond func(interface{}, error)) {
	req, ok := m.Payload.(fetchReq)
	if !ok {
		respond(nil, fmt.Errorf("mq: malformed fetch"))
		return
	}
	log := b.topics[req.Topic]
	if req.Offset >= int64(len(log)) {
		respond([]record{}, nil)
		return
	}
	end := req.Offset + int64(req.Max)
	if end > int64(len(log)) {
		end = int64(len(log))
	}
	out := make([]record, end-req.Offset)
	copy(out, log[req.Offset:end])
	respond(out, nil)
}

type commitReq struct {
	Group  string
	Topic  string
	Offset int64
}

func (b *Broker) onCommit(m simnet.Message, respond func(interface{}, error)) {
	req, ok := m.Payload.(commitReq)
	if !ok {
		respond(nil, fmt.Errorf("mq: malformed commit"))
		return
	}
	b.offsets[req.Group+"|"+req.Topic] = req.Offset
	b.env.Log.Debugf("Broker %s committed offset %d for %s on %s", b.name, req.Offset, req.Group, req.Topic)
	respond("ok", nil)
}

func (b *Broker) onFetchCommitted(m simnet.Message, respond func(interface{}, error)) {
	req, ok := m.Payload.(commitReq)
	if !ok {
		respond(nil, fmt.Errorf("mq: malformed offset fetch"))
		return
	}
	respond(b.offsets[req.Group+"|"+req.Topic], nil)
}

// Topic returns a copy of the topic log (verification helper).
func (b *Broker) Topic(name string) []record {
	return append([]record(nil), b.topics[name]...)
}

// Producer publishes sequenced records.
type Producer struct {
	env    *cluster.Env
	name   string
	broker string
	seq    int64
}

// NewProducer creates a producer against one broker.
func NewProducer(env *cluster.Env, name, broker string) *Producer {
	return &Producer{env: env, name: name, broker: broker}
}

// ProduceLoop publishes count records for key at the given interval.
func (p *Producer) ProduceLoop(topic, key string, interval des.Time, count int) {
	env := p.env
	i := 0
	var step func()
	step = func() {
		if i >= count {
			env.Log.Infof("Producer %s finished %d records to %s", p.name, count, topic)
			return
		}
		p.seq++
		rec := record{Key: key, Value: fmt.Sprintf("v%04d", i), Seq: p.seq}
		i++
		env.Net.Call("mq.producer.send", simnet.Message{
			From: p.name, To: p.broker, Type: "mq.produce",
			Payload: produceReq{Topic: topic, Rec: rec},
		}, 250*des.Millisecond, func(_ interface{}, err error) {
			if err != nil {
				env.Log.Warnf("Producer %s send to %s failed, retrying: %s", p.name, topic, err)
			}
			env.Sim.Schedule(p.name, interval, step)
		})
	}
	env.Sim.Go(p.name, step)
}
