package mq

import (
	"fmt"

	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/inject"
	"anduril/internal/simnet"
)

// ConnectWorker runs connectors under a single herder thread that
// processes all administrative requests sequentially.
//
// KA-9374 (f19): stopping a connector whose external resource fails blocks
// the herder forever (there is no timeout on the stop), which disables the
// whole worker — every other connector's requests pile up and time out.
type ConnectWorker struct {
	env  *cluster.Env
	name string

	connectors []string
	queue      []connectOp
	herderBusy bool
	stopCond   *des.Cond
}

type connectOp struct {
	Kind      string // "reconfigure" | "status" | "pause" | "resume"
	Connector string
	From      string
	respond   func(interface{}, error)
}

// NewConnectWorker creates a worker hosting the given connectors.
func NewConnectWorker(env *cluster.Env, connectors []string) *ConnectWorker {
	w := &ConnectWorker{env: env, name: "connect-worker-1", connectors: connectors}
	w.stopCond = des.NewCond(env.Sim, "connector-stop")
	env.Net.Handle(w.name, "mq.connect-op", w.name+"-rpc", w.onOp)
	return w
}

// Start boots the worker and its connectors.
func (w *ConnectWorker) Start() {
	env := w.env
	env.Sim.Go(w.name+"-herder", func() {
		env.Log.Infof("Connect worker %s started with connectors %v", w.name, w.connectors)
	})
	// Connector tasks poll their sources periodically (background noise
	// and realistic fault sites).
	for _, c := range w.connectors {
		conn := c
		env.Sim.Every(w.name+"-task-"+conn, 120*des.Millisecond, func() {
			if err := env.FI.Reach("mq.connect.task-poll", inject.IO); err != nil {
				env.Log.Warnf("Connector %s task poll failed, will retry: %s", conn, err)
				return
			}
			env.Log.Debugf("Connector %s polled source", conn)
		})
	}
}

// onOp enqueues an administrative request for the herder.
func (w *ConnectWorker) onOp(m simnet.Message, respond func(interface{}, error)) {
	op, ok := m.Payload.(connectOp)
	if !ok {
		respond(nil, fmt.Errorf("mq: malformed connect op"))
		return
	}
	op.From = m.From
	op.respond = respond
	w.queue = append(w.queue, op)
	w.runHerder()
}

// runHerder drains the request queue on the single herder thread.
func (w *ConnectWorker) runHerder() {
	env := w.env
	if w.herderBusy || len(w.queue) == 0 {
		return
	}
	w.herderBusy = true
	op := w.queue[0]
	w.queue = w.queue[1:]
	env.Sim.Go(w.name+"-herder", func() {
		w.execute(op)
	})
}

func (w *ConnectWorker) execute(op connectOp) {
	env := w.env
	switch op.Kind {
	case "reconfigure":
		env.Log.Infof("Herder reconfiguring connector %s", op.Connector)
		// Stop the connector first; the stop has NO timeout (the defect).
		if err := env.FI.Reach("mq.connect.stop-connector", inject.IO); err != nil {
			env.Log.Errorf("Connector %s failed to stop: %s; herder waiting for clean shutdown", op.Connector, err)
			// Defect (KA-9374): the herder blocks forever waiting for a
			// stop acknowledgement that will never come.
			w.stopCond.Wait(w.name+"-herder", func() {
				w.finish(op, "ok", nil)
			})
			return
		}
		env.Log.Infof("Connector %s restarted with new configuration", op.Connector)
		w.finish(op, "ok", nil)
	case "status":
		env.Log.Debugf("Herder serving status of connector %s", op.Connector)
		w.finish(op, "RUNNING", nil)
	case "pause", "resume":
		env.Log.Infof("Herder %sd connector %s", op.Kind, op.Connector)
		w.finish(op, "ok", nil)
	default:
		w.finish(op, nil, fmt.Errorf("mq: unknown op %s", op.Kind))
	}
}

func (w *ConnectWorker) finish(op connectOp, payload interface{}, err error) {
	if op.respond != nil {
		op.respond(payload, err)
	}
	w.herderBusy = false
	w.runHerder()
}

// ConnectClient issues administrative requests against the worker.
type ConnectClient struct {
	env  *cluster.Env
	name string
}

// NewConnectClient creates a named admin client.
func NewConnectClient(env *cluster.Env, name string) *ConnectClient {
	return &ConnectClient{env: env, name: name}
}

// Request sends one op and logs a worker-unresponsive error on timeout.
func (c *ConnectClient) Request(kind, connector string) {
	env := c.env
	env.Net.Call("mq.connect.admin-request", simnet.Message{
		From: c.name, To: "connect-worker-1", Type: "mq.connect-op",
		Payload: connectOp{Kind: kind, Connector: connector},
	}, 400*des.Millisecond, func(_ interface{}, err error) {
		if err != nil {
			env.Log.Errorf("Connect request %s for %s timed out; worker unresponsive: %s", kind, connector, err)
			return
		}
		env.Log.Debugf("Connect request %s for %s completed", kind, connector)
	})
}
