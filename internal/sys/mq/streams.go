package mq

import (
	"strings"

	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/inject"
	"anduril/internal/simnet"
)

// StreamsTask is an emit-on-change table processor: it consumes an input
// topic, maintains a persistent state store, and emits a record to the
// output topic only when a key's value actually changed.
//
// KA-12508 (f18): the store is persisted BEFORE the change is emitted. If
// the checkpoint between the two fails, the task restarts, reloads the
// store — which already holds the new value — and reprocesses the input
// record as "no change": the downstream update is lost forever.
type StreamsTask struct {
	env    *cluster.Env
	name   string
	broker string

	inTopic  string
	outTopic string
	group    string

	table    map[string]string
	offset   int64
	restarts int
	busy     bool
}

// NewStreamsTask creates the processor.
func NewStreamsTask(env *cluster.Env, broker, inTopic, outTopic string) *StreamsTask {
	return &StreamsTask{
		env: env, name: "streams-task-1", broker: broker,
		inTopic: inTopic, outTopic: outTopic, group: "streams-app",
		table: make(map[string]string),
	}
}

// Start begins the poll loop.
func (s *StreamsTask) Start() {
	env := s.env
	env.Sim.Go(s.name, func() {
		env.Log.Infof("Streams task %s starting on %s -> %s", s.name, s.inTopic, s.outTopic)
		s.restore()
	})
	env.Sim.Every(s.name, 40*des.Millisecond, func() {
		if s.busy {
			return
		}
		s.poll()
	})
}

func (s *StreamsTask) storePath(key string) string { return "streams/store/" + key }

// restore reloads the state store and committed offset after a (re)start.
func (s *StreamsTask) restore() {
	env := s.env
	for _, path := range env.Disk.List("streams/store/") {
		data, err := env.Disk.Read("mq.streams.read-store", path)
		if err != nil {
			env.Log.Warnf("Streams task could not restore %s: %s", path, err)
			continue
		}
		key := strings.TrimPrefix(path, "streams/store/")
		s.table[key] = string(data)
	}
	env.Net.Call("mq.streams.fetch-offset", simnet.Message{
		From: s.name, To: s.broker, Type: "mq.fetch-committed",
		Payload: commitReq{Group: s.group, Topic: s.inTopic},
	}, 250*des.Millisecond, func(payload interface{}, err error) {
		if err != nil {
			env.Log.Warnf("Streams task could not fetch committed offset: %s", err)
			return
		}
		s.offset = payload.(int64)
		env.Log.Infof("Streams task restored %d keys, resuming at offset %d", len(s.table), s.offset)
	})
}

// poll fetches and processes the next input records.
func (s *StreamsTask) poll() {
	env := s.env
	s.busy = true
	env.Net.Call("mq.streams.poll", simnet.Message{
		From: s.name, To: s.broker, Type: "mq.fetch",
		Payload: fetchReq{Topic: s.inTopic, Offset: s.offset, Max: 1},
	}, 250*des.Millisecond, func(payload interface{}, err error) {
		if err != nil {
			s.busy = false
			env.Log.Warnf("Streams poll failed, will retry: %s", err)
			return
		}
		recs := payload.([]record)
		if len(recs) == 0 {
			s.busy = false
			return
		}
		s.process(recs[0])
	})
}

// process runs one record through the emit-on-change pipeline.
func (s *StreamsTask) process(rec record) {
	env := s.env
	prev, had := s.table[rec.Key]
	if had && prev == rec.Value {
		env.Log.Debugf("Emit-on-change: no change for key %s at offset %d, skipping", rec.Key, rec.Offset)
		s.commit(rec.Offset + 1)
		return
	}
	// 1. Update the persistent store (before the emit — the defect).
	s.table[rec.Key] = rec.Value
	if err := env.Disk.Write("mq.streams.write-store", s.storePath(rec.Key), []byte(rec.Value)); err != nil {
		env.Log.Errorf("Streams store write failed for %s: %s", rec.Key, err)
		s.crashAndRestart()
		return
	}
	// 2. Checkpoint the store.
	if err := env.FI.Reach("mq.streams.checkpoint", inject.IO); err != nil {
		env.Log.Errorf("Stream task crashed while checkpointing: %s; restarting task", err)
		s.crashAndRestart()
		return
	}
	// 3. Emit the change downstream.
	env.Net.Call("mq.streams.emit-change", simnet.Message{
		From: s.name, To: s.broker, Type: "mq.produce",
		Payload: produceReq{Topic: s.outTopic, Rec: record{Key: rec.Key, Value: rec.Value, Seq: rec.Seq}},
	}, 250*des.Millisecond, func(_ interface{}, err error) {
		if err != nil {
			env.Log.Errorf("Streams emit failed for %s: %s", rec.Key, err)
			s.crashAndRestart()
			return
		}
		env.Log.Debugf("Emitted change %s=%s downstream", rec.Key, rec.Value)
		// 4. Commit the input offset.
		s.commit(rec.Offset + 1)
	})
}

func (s *StreamsTask) commit(next int64) {
	env := s.env
	env.Net.Call("mq.streams.commit-offset", simnet.Message{
		From: s.name, To: s.broker, Type: "mq.commit",
		Payload: commitReq{Group: s.group, Topic: s.inTopic, Offset: next},
	}, 250*des.Millisecond, func(_ interface{}, err error) {
		if err != nil {
			env.Log.Warnf("Streams offset commit failed: %s", err)
		} else {
			s.offset = next
		}
		s.busy = false
	})
}

// crashAndRestart models the task dying and being reassigned: fresh
// in-memory state, store and offsets restored from durable state.
func (s *StreamsTask) crashAndRestart() {
	env := s.env
	s.restarts++
	s.table = make(map[string]string)
	env.Sim.Schedule(s.name, 120*des.Millisecond, func() {
		env.Log.Warnf("Restarting streams task %s (restart %d)", s.name, s.restarts)
		s.restore()
		env.Sim.Schedule(s.name, 30*des.Millisecond, func() { s.busy = false })
	})
}

// VerifyEmissions compares the output topic against the input topic: every
// input change must have been emitted exactly once. Run at the end of the
// workload.
func VerifyEmissions(env *cluster.Env, b *Broker, inTopic, outTopic string) {
	in := b.Topic(inTopic)
	out := b.Topic(outTopic)
	emitted := map[int64]bool{}
	for _, r := range out {
		emitted[r.Seq] = true
	}
	// Expected: each input record whose value differs from the previous
	// value of its key.
	last := map[string]string{}
	lost := 0
	for _, r := range in {
		if last[r.Key] != r.Value {
			if !emitted[r.Seq] {
				env.Log.Errorf("Emit-on-change table lost update for key %s: seq %d (%s) never emitted", r.Key, r.Seq, r.Value)
				lost++
			}
			last[r.Key] = r.Value
		}
	}
	if lost == 0 {
		env.Log.Infof("Emit-on-change verification passed: %d inputs, %d emissions", len(in), len(out))
	}
}
