package tablestore

import (
	"anduril/internal/cluster"
	"anduril/internal/des"
)

// Horizon is how much virtual time the tablestore workloads need.
const Horizon = 3 * des.Second

// WorkloadWAL drives a steady put stream against one region server with
// flushes and log rolls running — the TestReplicationSmallTests analog the
// paper uses for HB-25905 (f17).
func WorkloadWAL(env *cluster.Env) {
	c := NewCluster(env, Options{RegionServers: 1})
	c.Start()
	cl := c.NewClient("ts-client-1")
	env.Sim.Schedule("ts-client-1", 150*des.Millisecond, func() {
		cl.PutLoop("rs1", 15*des.Millisecond, 120)
	})
}

// WorkloadReplication runs two region servers replicating to a peer — the
// driving workload for f12 (HB-18137).
func WorkloadReplication(env *cluster.Env) {
	c := NewCluster(env, Options{RegionServers: 2, WithReplication: true})
	c.Start()
	cl := c.NewClient("ts-client-1")
	env.Sim.Schedule("ts-client-1", 150*des.Millisecond, func() {
		cl.PutLoop("rs1", 25*des.Millisecond, 60)
	})
}

// WorkloadCrash kills rs2 mid-run so the master must split its WAL and
// survivors must claim its replication queue — the driving workload for
// f15 (HB-20583) and f16 (HB-16144).
func WorkloadCrash(env *cluster.Env) {
	c := NewCluster(env, Options{RegionServers: 3, WithReplication: true})
	c.Start()
	cl := c.NewClient("ts-client-1")
	env.Sim.Schedule("ts-client-1", 150*des.Millisecond, func() {
		cl.PutLoop("rs1", 30*des.Millisecond, 40)
	})
	env.Sim.Schedule("harness", 600*des.Millisecond, func() {
		c.RS(2).Kill()
	})
}

// WorkloadProcedures runs the master's administrative procedures — the
// driving workload for f13 (HB-19608).
func WorkloadProcedures(env *cluster.Env) {
	c := NewCluster(env, Options{RegionServers: 2, WithProcedures: true})
	c.Start()
	cl := c.NewClient("ts-client-1")
	env.Sim.Schedule("ts-client-1", 200*des.Millisecond, func() {
		cl.PutLoop("rs1", 40*des.Millisecond, 20)
	})
}

// WorkloadBatch issues multi-mutation batches (atomic and not) and
// verifies the written cells — the driving workload for f14 (HB-19876).
func WorkloadBatch(env *cluster.Env) {
	c := NewCluster(env, Options{RegionServers: 2})
	c.Start()
	cl := c.NewClient("ts-client-1")
	batch1 := []mutation{
		{Row: "alpha", Value: "a1"}, {Row: "beta", Value: "b1"},
		{Row: "gamma", Value: "c1"}, {Row: "delta", Value: "d1"},
	}
	batch2 := []mutation{
		{Row: "epsilon", Value: "e1"}, {Row: "zeta", Value: "z1"},
		{Row: "eta", Value: "h1"},
	}
	env.Sim.Schedule("ts-client-1", 200*des.Millisecond, func() {
		cl.PutBatch("rs1", "region-rs1", batch1, false, 1, func() {
			cl.PutBatch("rs1", "region-rs1", batch2, true, 2, func() {
				cl.PutBatch("rs2", "region-rs2", batch1, false, 1, nil)
			})
		})
	})
}
