// Package tablestore is a miniature HBase-like table store built on the
// simulated cluster substrate: a master with a procedure executor, log
// splitting and replication-queue coordination; region servers with
// memstores, batch mutation, periodic flushes, an asynchronous WAL with
// roll/safe-point semantics, and replication sources shipping WAL files to
// a peer cluster.
//
// The package contains the bug patterns of the six HBase failures in the
// paper's dataset (Table 5): HB-18137 (f12), HB-19608 (f13), HB-19876
// (f14), HB-20583 (f15), HB-16144 (f16) and HB-25905 (f17) — the paper's
// motivating example, reproduced here with the same asynchronous-WAL
// mechanics (unacked appends, batch-limited sync, waitForSafePoint).
package tablestore

import (
	"fmt"

	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/simnet"
)

// Cluster is one simulated table-store deployment.
type Cluster struct {
	env    *cluster.Env
	Master *Master
	RSs    []*RegionServer
	peer   *PeerSink
}

// Options configure the deployment.
type Options struct {
	RegionServers   int
	WithReplication bool
	WithProcedures  bool
}

// NewCluster creates (but does not start) a deployment.
func NewCluster(env *cluster.Env, opts Options) *Cluster {
	if opts.RegionServers <= 0 {
		opts.RegionServers = 2
	}
	c := &Cluster{env: env}
	c.Master = newMaster(c, opts.WithProcedures)
	for i := 1; i <= opts.RegionServers; i++ {
		c.RSs = append(c.RSs, newRegionServer(c, i, opts.WithReplication))
	}
	if opts.WithReplication {
		c.peer = newPeerSink(c)
	}
	return c
}

// Start boots the master and region servers.
func (c *Cluster) Start() {
	c.Master.start()
	for _, rs := range c.RSs {
		rs.start()
	}
	if c.peer != nil {
		c.peer.start()
	}
}

// RS returns the region server with the given id.
func (c *Cluster) RS(id int) *RegionServer { return c.RSs[id-1] }

func (c *Cluster) msg(from, to, typ string, payload interface{}) simnet.Message {
	return simnet.Message{From: from, To: to, Type: typ, Payload: payload}
}

func rsName(id int) string { return fmt.Sprintf("rs%d", id) }

const rpcTimeout = 300 * des.Millisecond

// Master coordinates region assignment, WAL splitting, replication-queue
// locks and procedures.
type Master struct {
	c    *Cluster
	name string

	withProcedures bool

	lastBeat map[string]des.Time
	dead     map[string]bool

	// locks is the coordination lock table (the ZooKeeper analog HBase
	// uses for replication queues); claimed records queues already copied.
	locks   map[string]string
	claimed map[string]bool

	// Split state (HB-20583).
	splitTasks     []*splitTask
	splitCompleted int
	lastFailedTask int

	// Procedure executor state (HB-19608).
	procFailedFlag bool
	procQueue      []*procedure
}

func newMaster(c *Cluster, withProcedures bool) *Master {
	return &Master{
		c: c, name: "hmaster",
		lastBeat:       make(map[string]des.Time),
		dead:           make(map[string]bool),
		locks:          make(map[string]string),
		claimed:        make(map[string]bool),
		withProcedures: withProcedures,
		lastFailedTask: -1,
	}
}

func (m *Master) env() *cluster.Env { return m.c.env }

func (m *Master) start() {
	env := m.env()
	net := env.Net
	net.Handle(m.name, "ts.heartbeat", "hmaster-rpc", m.onHeartbeat)
	net.Handle(m.name, "ts.acquire-lock", "hmaster-rpc", m.onAcquireLock)
	net.Handle(m.name, "ts.release-lock", "hmaster-rpc", m.onReleaseLock)
	net.Handle(m.name, "ts.split-done", "hmaster-split", m.onSplitDone)
	net.Handle(m.name, "ts.split-failed", "hmaster-split", m.onSplitFailed)
	net.Handle(m.name, "ts.mark-claimed", "hmaster-rpc", m.onMarkClaimed)

	env.Sim.Go("hmaster-main", func() {
		env.Log.Infof("Master starting, monitoring %d region servers", len(m.c.RSs))
		// Assign one region per server at startup.
		for _, rs := range m.c.RSs {
			target := rs
			err := env.Net.Send("ts.master.assign-region",
				m.c.msg(m.name, target.name, "ts.open-region", "region-"+target.name))
			if err != nil {
				env.Log.Warnf("Failed to assign region to %s: %s", target.name, err)
			}
		}
	})

	// Failure detector: a region server missing heartbeats is declared
	// dead, which triggers WAL splitting and replication-queue claims.
	env.Sim.Every("hmaster-monitor", 200*des.Millisecond, func() {
		now := env.Sim.Now()
		for _, rs := range m.c.RSs {
			if m.dead[rs.name] {
				continue
			}
			last, seen := m.lastBeat[rs.name]
			if !seen {
				continue // not yet reported
			}
			if now-last > 450*des.Millisecond {
				m.dead[rs.name] = true
				env.Log.Warnf("Region server %s expired, no heartbeat for %dms", rs.name, (now-last)/des.Millisecond)
				m.handleServerDeath(rs.name)
			}
		}
	})

	if m.withProcedures {
		env.Sim.Schedule("hmaster-proc", 300*des.Millisecond, func() {
			m.submitInitialProcedures()
		})
	}
}

func (m *Master) onHeartbeat(msg simnet.Message, _ func(interface{}, error)) {
	m.lastBeat[msg.From] = m.env().Sim.Now()
}

// handleServerDeath kicks off WAL splitting and tells survivors to claim
// the dead server's replication queue.
func (m *Master) handleServerDeath(dead string) {
	env := m.env()
	env.Log.Infof("Starting recovery of dead region server %s", dead)
	m.startSplit(dead)
	for _, rs := range m.c.RSs {
		if rs.name == dead || rs.aborted {
			continue
		}
		target := rs
		env.Sim.Go("hmaster-main", func() {
			err := env.Net.Send("ts.master.notify-claim", m.c.msg(m.name, target.name, "ts.claim-queue", dead))
			if err != nil {
				env.Log.Warnf("Failed to notify %s to claim queue of %s: %s", target.name, dead, err)
			}
		})
	}
}

// onAcquireLock serves the coordination lock table. HB-16144 (f16): locks
// have no owner liveness check, so a lock held by an aborted server lives
// forever.
func (m *Master) onAcquireLock(msg simnet.Message, respond func(interface{}, error)) {
	env := m.env()
	lock, _ := msg.Payload.(string)
	if m.claimed[lock] {
		respond("already-claimed", nil)
		return
	}
	if holder, held := m.locks[lock]; held && holder != msg.From {
		env.Log.Warnf("Lock %s requested by %s is held by %s", lock, msg.From, holder)
		respond(nil, fmt.Errorf("ts: lock %s held by %s", lock, holder))
		return
	}
	m.locks[lock] = msg.From
	env.Log.Debugf("Lock %s granted to %s", lock, msg.From)
	respond("ok", nil)
}

func (m *Master) onMarkClaimed(msg simnet.Message, _ func(interface{}, error)) {
	lock, _ := msg.Payload.(string)
	m.claimed[lock] = true
}

func (m *Master) onReleaseLock(msg simnet.Message, respond func(interface{}, error)) {
	env := m.env()
	lock, _ := msg.Payload.(string)
	if m.locks[lock] == msg.From {
		delete(m.locks, lock)
		env.Log.Debugf("Lock %s released by %s", lock, msg.From)
	}
	if respond != nil {
		respond("ok", nil)
	}
}
