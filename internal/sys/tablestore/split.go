package tablestore

import (
	"fmt"

	"anduril/internal/des"
	"anduril/internal/inject"
	"anduril/internal/simnet"
)

// splitTask is one WAL chunk of a dead server to be replayed.
type splitTask struct {
	Name     string
	Dead     string
	Index    int
	Assigned string
	Done     bool
}

// startSplit distributes the dead server's WAL chunks across survivors.
func (m *Master) startSplit(dead string) {
	env := m.env()
	var survivors []*RegionServer
	for _, rs := range m.c.RSs {
		if rs.name != dead && !rs.aborted {
			survivors = append(survivors, rs)
		}
	}
	if len(survivors) == 0 {
		env.Log.Errorf("No survivors to split WAL of %s", dead)
		return
	}
	m.splitTasks = nil
	m.splitCompleted = 0
	for i := 0; i < 3; i++ {
		task := &splitTask{Name: fmt.Sprintf("walchunk-%d", i), Dead: dead, Index: i}
		m.splitTasks = append(m.splitTasks, task)
		m.assignSplit(task, survivors[i%len(survivors)].name)
	}
	// Progress watchdog: the recovery symptom when splitting wedges.
	env.Sim.Every("hmaster-split", 500*des.Millisecond, func() {
		if m.splitCompleted >= len(m.splitTasks) || len(m.splitTasks) == 0 {
			return
		}
		env.Log.Warnf("Waiting for %d outstanding split tasks of %s; regions still in RECOVERING state",
			len(m.splitTasks)-m.splitCompleted, dead)
	})
}

func (m *Master) assignSplit(task *splitTask, worker string) {
	env := m.env()
	task.Assigned = worker
	env.Log.Infof("Assigning split task %s of %s to %s", task.Name, task.Dead, worker)
	err := env.Net.Send("ts.master.assign-split", m.c.msg(m.name, worker, "ts.split-task", *task))
	if err != nil {
		env.Log.Warnf("Failed to assign split task %s to %s: %s", task.Name, worker, err)
	}
}

func (m *Master) onSplitDone(msg simnet.Message, _ func(interface{}, error)) {
	env := m.env()
	name, _ := msg.Payload.(string)
	for _, t := range m.splitTasks {
		if t.Name == name && !t.Done {
			t.Done = true
			m.splitCompleted++
		}
	}
	if m.splitCompleted >= len(m.splitTasks) && len(m.splitTasks) > 0 {
		env.Log.Infof("WAL split for %s completed, regions back online", m.splitTasks[0].Dead)
	}
}

// onSplitFailed resubmits after a worker failure. HB-20583 (f15): the
// resubmission uses a stale task cursor and requeues the task AFTER the
// failed one; the actually-failed task is never redone, so the split never
// completes and its region stays in RECOVERING.
func (m *Master) onSplitFailed(msg simnet.Message, _ func(interface{}, error)) {
	env := m.env()
	name, _ := msg.Payload.(string)
	failedIdx := -1
	for i, t := range m.splitTasks {
		if t.Name == name {
			failedIdx = i
		}
	}
	if failedIdx < 0 {
		return
	}
	resubmitIdx := (failedIdx + 1) % len(m.splitTasks) // stale cursor
	task := m.splitTasks[resubmitIdx]
	env.Log.Warnf("Split task %s failed on %s, resubmitting %s", name, msg.From, task.Name)
	if task.Done {
		task.Done = false
		m.splitCompleted--
	}
	var worker string
	for _, rs := range m.c.RSs {
		if rs.name != task.Dead && !rs.aborted {
			worker = rs.name
			break
		}
	}
	if worker == "" {
		return
	}
	m.assignSplit(task, worker)
}

// onSplitTask executes one split task on a region server: read the WAL
// chunk, write the recovered edits, report back.
func (rs *RegionServer) onSplitTask(m simnet.Message, _ func(interface{}, error)) {
	env := rs.env()
	if rs.aborted {
		return
	}
	task, ok := m.Payload.(splitTask)
	if !ok {
		return
	}
	env.Log.Infof("Worker %s splitting %s of %s", rs.name, task.Name, task.Dead)
	env.Sim.Schedule(rs.actor("split"), 30*des.Millisecond, func() {
		if rs.aborted {
			return
		}
		if err := env.FI.Reach("ts.split.read-walchunk", inject.IO); err != nil {
			env.Log.Errorf("Error reading WAL chunk %s on %s", task.Name, rs.name)
			env.Net.Send("ts.split.report-failed", rs.c.msg(rs.name, "hmaster", "ts.split-failed", task.Name))
			return
		}
		edits := fmt.Sprintf("%s/recovered.edits/%s", task.Dead, task.Name)
		if err := env.Disk.Write("ts.split.write-edits", edits, []byte("edits\n")); err != nil {
			env.Log.Errorf("Error writing recovered edits for %s on %s: %s", task.Name, rs.name, err)
			env.Net.Send("ts.split.report-failed", rs.c.msg(rs.name, "hmaster", "ts.split-failed", task.Name))
			return
		}
		env.Log.Infof("Worker %s finished split task %s", rs.name, task.Name)
		env.Net.Send("ts.split.report-done", rs.c.msg(rs.name, "hmaster", "ts.split-done", task.Name))
	})
}
