package tablestore

import (
	"testing"

	"anduril/internal/cluster"
	"anduril/internal/inject"
)

func runFree(t *testing.T, w cluster.Workload, seed int64) *cluster.Result {
	t.Helper()
	return cluster.Execute(seed, nil, true, w, Horizon)
}

func runWith(t *testing.T, w cluster.Workload, seed int64, inst inject.Instance) *cluster.Result {
	t.Helper()
	return cluster.Execute(seed, inject.Exact(inst), true, w, Horizon)
}

func TestWALWorkloadHealthy(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r := runFree(t, WorkloadWAL, seed)
		if !r.LogContains("finished put loop") {
			t.Fatalf("seed %d: puts did not finish", seed)
		}
		if r.LogContains("Failed to get sync result") {
			t.Fatalf("seed %d: spurious flush timeout", seed)
		}
		if len(r.Blocked) != 0 {
			t.Fatalf("seed %d: stuck threads: %v", seed, r.Blocked)
		}
		if !r.LogContains("Rolled WAL on rs1") {
			t.Fatalf("seed %d: no WAL roll happened", seed)
		}
	}
}

func TestReplicationWorkloadHealthy(t *testing.T) {
	r := runFree(t, WorkloadReplication, 1)
	if !r.LogContains("Replicated WAL file") {
		t.Fatalf("nothing replicated:\n%s", r.RenderLog())
	}
	if r.LogContains("Replication stuck") {
		t.Fatal("spurious replication stall")
	}
}

func TestCrashWorkloadHealthy(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		r := runFree(t, WorkloadCrash, seed)
		if !r.LogContains("Region server rs2 process exited") {
			t.Fatalf("seed %d: rs2 did not die", seed)
		}
		if !r.LogContains("WAL split for rs2 completed") {
			t.Fatalf("seed %d: split did not complete\n%s", seed, r.RenderLog())
		}
		if !r.LogContainsExact("Claimed replication queue of rs2") {
			t.Fatalf("seed %d: queue not claimed", seed)
		}
	}
}

func TestProceduresAndBatchHealthy(t *testing.T) {
	r := runFree(t, WorkloadProcedures, 1)
	if !r.LogContains("all procedures finished") {
		t.Fatalf("procedures did not finish:\n%s", r.RenderLog())
	}
	rb := runFree(t, WorkloadBatch, 1)
	if rb.LogContains("Corrupt cell detected") {
		t.Fatal("spurious corruption")
	}
	if !rb.LogContains("verified") {
		t.Fatalf("verification did not run:\n%s", rb.RenderLog())
	}
}

// f17 — HB-25905: find a stream-write occurrence just before a roll; the
// roller hangs at waitForSafePoint and flushes time out.
func TestF17StuckWAL(t *testing.T) {
	free := runFree(t, WorkloadWAL, 1)
	n := free.Counts["ts.wal.stream-write"]
	if n < 50 {
		t.Fatalf("stream-write occurrences: %d", n)
	}
	var hit int
	for occ := 1; occ <= n; occ++ {
		r := cluster.Execute(1, inject.Exact(inject.Instance{Site: "ts.wal.stream-write", Occurrence: occ}), false, WorkloadWAL, Horizon)
		if r.LogContains("Failed to get sync result") && r.BlockedOn("waitForSafePoint") {
			hit = occ
			break
		}
	}
	if hit == 0 {
		t.Fatal("no occurrence wedges the WAL")
	}
	t.Logf("occurrence %d of %d wedges the WAL", hit, n)
	// Control: occurrence 1 (far from any roll) recovers cleanly.
	r := runWith(t, WorkloadWAL, 1, inject.Instance{Site: "ts.wal.stream-write", Occurrence: 1})
	if r.BlockedOn("waitForSafePoint") {
		t.Fatal("occurrence 1 should recover via writer roll")
	}
	if !r.LogContains("WAL stream broken") || !r.LogContains("Rolled WAL writer") {
		t.Fatalf("recovery path not exercised:\n%s", r.RenderLog())
	}
}

// f12 — HB-18137: a failed header write leaves an empty WAL that wedges
// replication.
func TestF12EmptyWAL(t *testing.T) {
	r := runWith(t, WorkloadReplication, 1, inject.Instance{Site: "ts.wal.write-header", Occurrence: 3})
	if !r.LogContains("Failed to write WAL header") {
		t.Fatalf("header write did not fail:\n%s", r.RenderLog())
	}
	if !r.LogContains("Replication stuck on empty WAL file") {
		t.Fatalf("replication did not wedge:\n%s", r.RenderLog())
	}
}

// f13 — HB-19608: an interrupted step latches the executor failed flag and
// later procedures are rejected.
func TestF13InterruptedProcedure(t *testing.T) {
	r := runWith(t, WorkloadProcedures, 1, inject.Instance{Site: "ts.proc.step-wait", Occurrence: 2})
	if !r.LogContains("marking procedure as failed") {
		t.Fatalf("interrupt not hit:\n%s", r.RenderLog())
	}
	if !r.LogContains("rejecting procedure") {
		t.Fatalf("later procedures not rejected:\n%s", r.RenderLog())
	}
}

// f13 control: interrupting the very last step leaves nothing to reject.
func TestF13LastStepTolerated(t *testing.T) {
	free := runFree(t, WorkloadProcedures, 1)
	last := free.Counts["ts.proc.step-wait"]
	r := runWith(t, WorkloadProcedures, 1, inject.Instance{Site: "ts.proc.step-wait", Occurrence: last})
	if r.LogContains("rejecting procedure") {
		t.Fatal("no procedure should be rejected after the last step")
	}
}

// f14 — HB-19876: a decode failure mid-batch (non-atomic) corrupts the
// cells of the following mutations.
func TestF14CellScannerCorruption(t *testing.T) {
	r := runWith(t, WorkloadBatch, 1, inject.Instance{Site: "ts.region.decode-mutation", Occurrence: 2})
	if !r.LogContains("Failed to convert mutation") {
		t.Fatalf("decode did not fail:\n%s", r.RenderLog())
	}
	if !r.LogContains("Corrupt cell detected") {
		t.Fatalf("no corruption detected:\n%s", r.RenderLog())
	}
}

// f14 control: the same fault in an ATOMIC batch rejects cleanly.
func TestF14AtomicBatchTolerated(t *testing.T) {
	r := runWith(t, WorkloadBatch, 1, inject.Instance{Site: "ts.region.decode-mutation", Occurrence: 5})
	if !r.LogContains("Atomic batch") {
		t.Fatalf("atomic rejection not hit:\n%s", r.RenderLog())
	}
	if r.LogContains("Corrupt cell detected") {
		t.Fatal("atomic batch must not corrupt")
	}
}

// f15 — HB-20583: a split-task failure resubmits the wrong task; the split
// never completes.
func TestF15WrongResubmit(t *testing.T) {
	r := runWith(t, WorkloadCrash, 1, inject.Instance{Site: "ts.split.read-walchunk", Occurrence: 2})
	if !r.LogContains("failed on") {
		t.Fatalf("split task did not fail:\n%s", r.RenderLog())
	}
	if r.LogContains("WAL split for rs2 completed") {
		t.Fatal("split should never complete (the bug)")
	}
	if !r.LogContains("still in RECOVERING state") {
		t.Fatalf("recovery symptom missing:\n%s", r.RenderLog())
	}
}

// f16 — HB-16144: the claimer aborts holding the lock; no one can claim.
func TestF16OrphanedLock(t *testing.T) {
	r := runWith(t, WorkloadCrash, 1, inject.Instance{Site: "ts.repl.copy-queue", Occurrence: 1})
	if !r.LogContains("Aborting region server") {
		t.Fatalf("claimer did not abort:\n%s", r.RenderLog())
	}
	if r.LogContainsExact("Claimed replication queue of rs2") {
		t.Fatal("rs2's queue must never be claimed (the bug)")
	}
	if !r.LogContains("Failed to claim replication queue") {
		t.Fatalf("other servers should keep failing:\n%s", r.RenderLog())
	}
}

func TestFaultSitesExercised(t *testing.T) {
	sites := map[string]bool{}
	for _, w := range []cluster.Workload{WorkloadWAL, WorkloadReplication, WorkloadCrash, WorkloadProcedures, WorkloadBatch} {
		r := runFree(t, w, 1)
		for s, n := range r.Counts {
			if n > 0 {
				sites[s] = true
			}
		}
	}
	for _, site := range []string{
		"ts.wal.stream-write", "ts.wal.create-writer", "ts.wal.write-header",
		"ts.wal.append-entry", "ts.region.decode-mutation", "ts.proc.step-wait",
		"ts.split.read-walchunk", "ts.split.write-edits", "ts.repl.copy-queue",
		"ts.repl.read-wal", "ts.repl.ship-entries", "ts.rs.send-heartbeat",
	} {
		if !sites[site] {
			t.Errorf("fault site %s never exercised", site)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runFree(t, WorkloadWAL, 9)
	b := runFree(t, WorkloadWAL, 9)
	if len(a.Entries) != len(b.Entries) {
		t.Fatalf("nondeterministic: %d vs %d", len(a.Entries), len(b.Entries))
	}
}
