package tablestore

import (
	"anduril/internal/des"
	"anduril/internal/inject"
)

// procedure is a multi-step master operation (create table, assign
// region, ...). The executor runs procedures sequentially; each step may
// wait on cluster state and can be interrupted.
type procedure struct {
	Name  string
	Steps int
	step  int
}

// submitInitialProcedures queues the workload's administrative operations.
func (m *Master) submitInitialProcedures() {
	m.procQueue = []*procedure{
		{Name: "create-table-events", Steps: 3},
		{Name: "assign-regions-events", Steps: 3},
		{Name: "enable-table-events", Steps: 2},
	}
	m.runNextProcedure()
}

// runNextProcedure pops and executes the next queued procedure.
// HB-19608 (f13): once an interrupted step has latched the executor's
// failed flag, every later procedure is rejected outright.
func (m *Master) runNextProcedure() {
	env := m.env()
	if len(m.procQueue) == 0 {
		env.Log.Infof("Procedure executor drained, all procedures finished")
		return
	}
	p := m.procQueue[0]
	m.procQueue = m.procQueue[1:]
	if m.procFailedFlag {
		env.Log.Errorf("Procedure executor in failed state, rejecting procedure %s", p.Name)
		m.runNextProcedure()
		return
	}
	env.Log.Infof("Executing procedure %s with %d steps", p.Name, p.Steps)
	m.runProcStep(p)
}

func (m *Master) runProcStep(p *procedure) {
	env := m.env()
	if p.step >= p.Steps {
		env.Log.Infof("Procedure %s finished", p.Name)
		env.Sim.Schedule("hmaster-proc", 50*des.Millisecond, m.runNextProcedure)
		return
	}
	env.Sim.Schedule("hmaster-proc", 60*des.Millisecond, func() {
		// Each step waits on cluster state; the wait is interruptible.
		if err := env.FI.Reach("ts.proc.step-wait", inject.Interrupted); err != nil {
			// Defect (HB-19608): an interrupt during the wait marks the
			// whole executor failed instead of retrying the step.
			env.Log.Errorf("Procedure %s was interrupted, marking procedure as failed", p.Name)
			m.procFailedFlag = true
			env.Sim.Schedule("hmaster-proc", 50*des.Millisecond, m.runNextProcedure)
			return
		}
		p.step++
		env.Log.Debugf("Procedure %s completed step %d/%d", p.Name, p.step, p.Steps)
		m.runProcStep(p)
	})
}
