package tablestore

import (
	"fmt"

	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/inject"
)

// walEntry is one append to the write-ahead log.
type walEntry struct {
	seq   int64
	row   string
	value string
	flush bool // flush marker entries complete region flushes
}

// WAL is the asynchronous write-ahead log of one region server, modelled
// on HBase's AsyncFSWAL (Figure 1 of the paper):
//
//   - appends enter the unacked queue and a consumer event syncs them to
//     the underlying store stream in batches of at most batchSize;
//   - a broken stream rolls the writer and retries the unacked appends
//     with the fresh writer;
//   - log rolling calls waitForSafePoint, which blocks the roller until
//     the consumer reports readyForRolling.
//
// The HB-25905 (f17) defect: when a roll is requested while a freshly
// rolled writer still has more unacked appends than one sync batch can
// carry, the consumer returns without syncing or signalling, and nothing
// ever schedules it again — the roller hangs at waitForSafePoint forever
// and region flushes time out waiting for sync.
type WAL struct {
	rs *RegionServer

	epoch     int // current writer generation
	nextSeq   int64
	ackedSeq  int64
	unacked   []walEntry
	batchSize int

	streamBroken bool
	writerFresh  bool // new writer, nothing synced on it yet
	rolling      bool // rollWriter in progress
	consumerBusy bool

	rollRequested   bool
	readyForRolling bool
	safePoint       *des.Cond

	// files lists closed WAL file names (the replication queue feedstock).
	files []string
}

func newWAL(rs *RegionServer) *WAL {
	w := &WAL{rs: rs, batchSize: 3}
	w.safePoint = des.NewCond(rs.c.env.Sim, "waitForSafePoint")
	return w
}

func (w *WAL) env() *cluster.Env { return w.rs.c.env }

func (w *WAL) currentFile() string {
	return fmt.Sprintf("%s/wal/log.%d", w.rs.name, w.epoch)
}

// open creates the initial writer.
func (w *WAL) open() error {
	env := w.env()
	if err := env.Disk.Create("ts.wal.create-writer", w.currentFile()); err != nil {
		return fmt.Errorf("cannot create WAL writer: %w", err)
	}
	if err := env.Disk.Append("ts.wal.write-header", w.currentFile(), []byte("WALHDR\n")); err != nil {
		// Defect (HB-18137): the empty, header-less WAL file is left in
		// place and the writer moves on to a fresh one.
		env.Log.Errorf("Failed to write WAL header of %s: %s", w.currentFile(), err)
		w.files = append(w.files, w.currentFile())
		w.epoch++
		return w.open()
	}
	return nil
}

// append queues one entry and wakes the consumer.
func (w *WAL) append(row, value string, flush bool) int64 {
	w.nextSeq++
	e := walEntry{seq: w.nextSeq, row: row, value: value, flush: flush}
	w.unacked = append(w.unacked, e)
	w.scheduleConsume(0)
	return e.seq
}

func (w *WAL) scheduleConsume(delay des.Time) {
	if w.consumerBusy {
		return
	}
	w.consumerBusy = true
	w.env().Sim.Schedule(w.rs.actor("wal-consumer"), delay, w.consume)
}

// consume is the WAL consumer event (Figure 1's consume()).
func (w *WAL) consume() {
	env := w.env()
	w.consumerBusy = false
	if w.rs.aborted {
		return
	}
	if w.streamBroken {
		w.rollWriter()
		return
	}
	if len(w.unacked) == 0 {
		if w.rollRequested && !w.readyForRolling {
			w.reachSafePoint()
		}
		return
	}
	if w.rollRequested && w.writerFresh && len(w.unacked) > w.batchSize {
		// Defect (HB-25905): stale state — the consumer neither syncs nor
		// signals, and no future event reschedules it.
		env.Log.Debugf("WAL consumer deferring sync on %s: %d unacked appends", w.rs.name, len(w.unacked))
		return
	}
	w.syncBatch()
}

// syncBatch ships up to batchSize unacked entries through the store
// stream. The per-entry stream write is the root-cause fault boundary of
// f17 (the channelRead0 analog).
func (w *WAL) syncBatch() {
	env := w.env()
	n := len(w.unacked)
	if n > w.batchSize {
		n = w.batchSize
	}
	for i := 0; i < n; i++ {
		if err := env.FI.Reach("ts.wal.stream-write", inject.IO); err != nil {
			// The recoverable stream broke: notify the upper layer to roll
			// the writer and retry the unacked appends.
			env.Log.Errorf("WAL stream broken on %s, %d unacked appends pending", w.rs.name, len(w.unacked))
			w.streamBroken = true
			w.scheduleConsume(0)
			return
		}
		entry := w.unacked[i]
		if err := env.Disk.Append("ts.wal.append-entry", w.currentFile(), []byte(encodeWALEntry(entry))); err != nil {
			env.Log.Errorf("WAL append of seq %d failed on %s: %s", entry.seq, w.rs.name, err)
			w.streamBroken = true
			w.scheduleConsume(0)
			return
		}
	}
	acked := w.unacked[:n]
	w.unacked = append([]walEntry(nil), w.unacked[n:]...)
	w.writerFresh = false
	for _, e := range acked {
		if e.seq > w.ackedSeq {
			w.ackedSeq = e.seq
		}
	}
	env.Log.Debugf("WAL synced %d entries on %s up to seq %d", n, w.rs.name, w.ackedSeq)
	w.rs.onWALAcked(w.ackedSeq)
	if len(w.unacked) > 0 {
		w.scheduleConsume(5 * des.Millisecond)
		return
	}
	if w.rollRequested && !w.readyForRolling {
		w.reachSafePoint()
	}
}

// rollWriter replaces a broken writer with a fresh one; creating the file
// on the underlying store takes a while, during which appends accumulate.
func (w *WAL) rollWriter() {
	env := w.env()
	if w.rolling {
		return
	}
	w.rolling = true
	env.Sim.Schedule(w.rs.actor("wal-consumer"), 80*des.Millisecond, func() {
		w.rolling = false
		if w.rs.aborted {
			return
		}
		w.files = append(w.files, w.currentFile())
		w.epoch++
		if err := w.open(); err != nil {
			env.Log.Errorf("Failed to roll WAL writer on %s: %s", w.rs.name, err)
			w.rs.abort(err)
			return
		}
		w.streamBroken = false
		w.writerFresh = true
		env.Log.Infof("Rolled WAL writer on %s to %s, retrying %d unacked appends", w.rs.name, w.currentFile(), len(w.unacked))
		w.rs.onWALRoll()
		w.scheduleConsume(0)
	})
}

func (w *WAL) reachSafePoint() {
	env := w.env()
	w.readyForRolling = true
	env.Log.Debugf("WAL on %s reached safe point for rolling", w.rs.name)
	w.safePoint.Broadcast()
}

// waitForSafePoint is called by the log roller before swapping WAL files.
// The roller blocks until the consumer signals readiness — or forever,
// when the f17 defect bites.
func (w *WAL) waitForSafePoint(onReady func()) {
	w.rollRequested = true
	w.readyForRolling = false
	w.scheduleConsume(0)
	w.safePoint.Wait(w.rs.actor("log-roller"), func() {
		w.rollRequested = false
		onReady()
	})
}

// completeRoll finishes a scheduled (non-broken) roll: the current file is
// closed and handed to replication, and a new writer opens.
func (w *WAL) completeRoll() error {
	env := w.env()
	w.files = append(w.files, w.currentFile())
	w.epoch++
	if err := w.open(); err != nil {
		return err
	}
	w.writerFresh = true
	env.Log.Infof("Rolled WAL on %s, now writing %s", w.rs.name, w.currentFile())
	w.rs.onWALRoll()
	return nil
}

func encodeWALEntry(e walEntry) string {
	kind := "put"
	if e.flush {
		kind = "flush"
	}
	return fmt.Sprintf("%d|%s|%s|%s\n", e.seq, kind, e.row, e.value)
}
