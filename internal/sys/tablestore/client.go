package tablestore

import (
	"fmt"

	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/simnet"
)

// Client is a scripted table client.
type Client struct {
	c    *Cluster
	name string
}

// NewClient creates a named client.
func (c *Cluster) NewClient(name string) *Client {
	return &Client{c: c, name: name}
}

func (cl *Client) env() *cluster.Env { return cl.c.env }

// PutLoop issues single-row puts to rs at a fixed interval, count times —
// the steady write stream that keeps the WAL busy.
func (cl *Client) PutLoop(rs string, interval des.Time, count int) {
	env := cl.env()
	i := 0
	var step func()
	step = func() {
		if i >= count {
			env.Log.Infof("Client %s finished put loop of %d rows", cl.name, count)
			return
		}
		row := fmt.Sprintf("row-%04d", i)
		val := fmt.Sprintf("val-%04d", i)
		i++
		env.Net.Call("ts.client.put-rpc",
			simnet.Message{From: cl.name, To: rs, Type: "ts.batch", Payload: batchReq{
				Region: "region-" + rs, Mutations: []mutation{{Row: row, Value: val}},
			}},
			rpcTimeout, func(_ interface{}, err error) {
				if err != nil {
					env.Log.Warnf("Client %s put of %s failed: %s", cl.name, row, err)
				}
				env.Sim.Schedule(cl.name, interval, step)
			})
	}
	env.Sim.Go(cl.name, step)
}

// PutBatch issues one multi-mutation batch and then verifies each row by
// reading it back — the verification that surfaces HB-19876's corruption.
func (cl *Client) PutBatch(rs string, region string, muts []mutation, atomic bool, retries int, done func()) {
	env := cl.env()
	env.Net.Call("ts.client.batch-rpc",
		simnet.Message{From: cl.name, To: rs, Type: "ts.batch", Payload: batchReq{
			Region: region, Mutations: muts, Atomic: atomic,
		}},
		rpcTimeout, func(_ interface{}, err error) {
			if err != nil {
				if retries > 0 {
					env.Log.Warnf("Client %s batch for %s failed, retrying: %s", cl.name, region, err)
					env.Sim.Schedule(cl.name, 80*des.Millisecond, func() {
						cl.PutBatch(rs, region, muts, atomic, retries-1, done)
					})
					return
				}
				env.Log.Errorf("Client %s batch for %s failed permanently: %s", cl.name, region, err)
				if done != nil {
					done()
				}
				return
			}
			cl.verifyRows(rs, muts, 0, done)
		})
}

// verifyRows reads back every row of a batch and checks the values.
func (cl *Client) verifyRows(rs string, muts []mutation, idx int, done func()) {
	env := cl.env()
	if idx >= len(muts) {
		env.Log.Infof("Client %s verified %d rows on %s", cl.name, len(muts), rs)
		if done != nil {
			done()
		}
		return
	}
	want := muts[idx]
	env.Net.Call("ts.client.get-rpc",
		simnet.Message{From: cl.name, To: rs, Type: "ts.get", Payload: want.Row},
		rpcTimeout, func(payload interface{}, err error) {
			if err != nil {
				env.Log.Warnf("Client %s could not read back %s: %s", cl.name, want.Row, err)
			} else if got, _ := payload.(string); got != want.Value {
				env.Log.Errorf("Corrupt cell detected for row %s: got %q want %q", want.Row, got, want.Value)
			}
			env.Sim.Schedule(cl.name, 10*des.Millisecond, func() {
				cl.verifyRows(rs, muts, idx+1, done)
			})
		})
}
