package tablestore

import (
	"fmt"

	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/inject"
	"anduril/internal/simnet"
)

// mutation is one cell write.
type mutation struct {
	Row   string
	Value string
}

// batchReq is a multi-mutation request; Atomic batches reject wholesale on
// any decode error, non-atomic ones degrade per-mutation (Figure 4).
type batchReq struct {
	Region    string
	Mutations []mutation
	Atomic    bool
}

// RegionServer hosts regions, their memstores and the WAL.
type RegionServer struct {
	c    *Cluster
	id   int
	name string

	aborted bool
	wal     *WAL
	store   map[string]string

	flushWaiters []flushWaiter
	rollerBusy   bool

	repl *ReplicationSource
}

type flushWaiter struct {
	seq    int64
	region string
	done   *bool
}

func newRegionServer(c *Cluster, id int, withRepl bool) *RegionServer {
	rs := &RegionServer{c: c, id: id, name: rsName(id), store: make(map[string]string)}
	rs.wal = newWAL(rs)
	if withRepl {
		rs.repl = newReplicationSource(rs)
	}
	return rs
}

func (rs *RegionServer) env() *cluster.Env { return rs.c.env }

func (rs *RegionServer) actor(thread string) string { return rs.name + "-" + thread }

func (rs *RegionServer) start() {
	env := rs.env()
	net := env.Net
	net.Handle(rs.name, "ts.batch", rs.actor("rpc"), rs.onBatch)
	net.Handle(rs.name, "ts.get", rs.actor("rpc"), rs.onGet)
	net.Handle(rs.name, "ts.claim-queue", rs.actor("repl"), rs.onClaimQueue)
	net.Handle(rs.name, "ts.split-task", rs.actor("split"), rs.onSplitTask)
	net.Handle(rs.name, "ts.open-region", rs.actor("rpc"), rs.onOpenRegion)

	env.Sim.Go(rs.actor("main"), func() {
		env.Log.Infof("Region server %s starting", rs.name)
		if err := rs.wal.open(); err != nil {
			env.Log.Errorf("Cannot open WAL on %s: %s", rs.name, err)
			rs.abort(err)
			return
		}
		env.Log.Infof("Region server %s online", rs.name)
	})

	env.Sim.Every(rs.actor("heartbeat"), 150*des.Millisecond, func() {
		if rs.aborted {
			return
		}
		err := env.Net.Send("ts.rs.send-heartbeat", rs.c.msg(rs.name, "hmaster", "ts.heartbeat", rs.id))
		if err != nil {
			env.Log.Warnf("Heartbeat from %s failed: %s", rs.name, err)
		}
	})

	// Periodic memstore flush: append a flush marker and wait for the WAL
	// sync. A timeout here is the user-visible symptom of HB-25905.
	env.Sim.Every(rs.actor("flusher"), 300*des.Millisecond, func() {
		if rs.aborted {
			return
		}
		rs.flushRegion("region-" + rs.name)
	})

	// Periodic compaction: fold the memstore into an on-disk store file
	// once it is large enough.
	env.Sim.Every(rs.actor("compaction"), 500*des.Millisecond, func() {
		if rs.aborted || len(rs.store) < 4 {
			return
		}
		path := fmt.Sprintf("%s/store/compacted-%d", rs.name, int(env.Sim.Now()/des.Millisecond))
		if err := env.Disk.Write("ts.region.compact-write", path, []byte(fmt.Sprintf("%d cells\n", len(rs.store)))); err != nil {
			env.Log.Warnf("Compaction failed on %s, will retry: %s", rs.name, err)
			return
		}
		env.Log.Debugf("Compacted %d cells into %s", len(rs.store), path)
	})

	// Periodic log roller: the thread that hangs at waitForSafePoint.
	env.Sim.Every(rs.actor("log-roller"), 400*des.Millisecond, func() {
		if rs.aborted || rs.rollerBusy {
			return
		}
		rs.rollerBusy = true
		env.Log.Debugf("Log roller requesting roll on %s", rs.name)
		rs.wal.waitForSafePoint(func() {
			rs.rollerBusy = false
			if err := rs.wal.completeRoll(); err != nil {
				env.Log.Errorf("WAL roll failed on %s: %s", rs.name, err)
				rs.abort(err)
			}
		})
	})

	if rs.repl != nil {
		rs.repl.start()
	}
}

// abort is the region server's generic failure policy: like HBase, any
// unexpected exception aborts the whole process.
func (rs *RegionServer) abort(err error) {
	if rs.aborted {
		return
	}
	rs.aborted = true
	// Like the production incident, the abort message does not say why —
	// the cause is "an unknown transient failure" (the paper's hardest
	// case, f16, hinges on exactly this opacity).
	rs.env().Log.Errorf("Aborting region server %s: unexpected exception", rs.name)
	_ = err
}

// Kill simulates an abrupt process death (used by crash workloads).
func (rs *RegionServer) Kill() {
	if rs.aborted {
		return
	}
	rs.aborted = true
	rs.env().Log.Warnf("Region server %s process exited", rs.name)
}

// onBatch applies a batch of mutations. HB-19876 (f14): a decode failure
// in a non-atomic batch is tolerated per-mutation, but the shared cell
// scanner is not advanced past the bad cell, so every later mutation in
// the batch reads the previous mutation's value.
func (rs *RegionServer) onBatch(m simnet.Message, respond func(interface{}, error)) {
	env := rs.env()
	if rs.aborted {
		return
	}
	req, ok := m.Payload.(batchReq)
	if !ok {
		respond(nil, fmt.Errorf("ts: malformed batch"))
		return
	}
	scannerSkew := 0
	applied := 0
	for i, mut := range req.Mutations {
		if err := env.FI.Reach("ts.region.decode-mutation", inject.IO); err != nil {
			if req.Atomic {
				env.Log.Warnf("Atomic batch for %s rejected: cannot convert mutation %d: %s", req.Region, i, err)
				respond(nil, fmt.Errorf("ts: batch decode failed: %w", err))
				return
			}
			env.Log.Warnf("Failed to convert mutation %d in batch for %s", i, req.Region)
			// Defect (HB-19876): the cell scanner is left pointing at the
			// failed cell.
			scannerSkew++
			continue
		}
		value := mut.Value
		if scannerSkew > 0 && i-scannerSkew >= 0 {
			value = req.Mutations[i-scannerSkew].Value // corrupted read
		}
		rs.store[mut.Row] = value
		rs.wal.append(mut.Row, value, false)
		applied++
	}
	env.Log.Debugf("Applied batch of %d mutations to %s on %s", applied, req.Region, rs.name)
	respond(applied, nil)
}

// onOpenRegion handles the master's region assignment.
func (rs *RegionServer) onOpenRegion(m simnet.Message, _ func(interface{}, error)) {
	env := rs.env()
	if rs.aborted {
		return
	}
	region, _ := m.Payload.(string)
	env.Log.Infof("Opened %s on %s", region, rs.name)
}

func (rs *RegionServer) onGet(m simnet.Message, respond func(interface{}, error)) {
	if rs.aborted {
		return
	}
	row, _ := m.Payload.(string)
	val, ok := rs.store[row]
	if !ok {
		respond(nil, fmt.Errorf("ts: no row %s", row))
		return
	}
	respond(val, nil)
}

// flushRegion appends a flush marker and waits (with timeout) for the WAL
// consumer to sync it.
func (rs *RegionServer) flushRegion(region string) {
	env := rs.env()
	seq := rs.wal.append(region, "", true)
	done := new(bool)
	rs.flushWaiters = append(rs.flushWaiters, flushWaiter{seq: seq, region: region, done: done})
	env.Sim.Schedule(rs.actor("flusher"), 250*des.Millisecond, func() {
		if *done || rs.aborted {
			return
		}
		env.Log.Errorf("TimeoutIOException: Failed to get sync result after 250ms for flush of %s", region)
	})
}

// onWALAcked resolves flush waiters once their marker is durable.
func (rs *RegionServer) onWALAcked(acked int64) {
	env := rs.env()
	remaining := rs.flushWaiters[:0]
	for _, fw := range rs.flushWaiters {
		if fw.seq <= acked {
			*fw.done = true
			env.Log.Debugf("Flush of %s completed at seq %d", fw.region, fw.seq)
			continue
		}
		remaining = append(remaining, fw)
	}
	rs.flushWaiters = remaining
}

// onWALRoll hands newly closed WAL files to the replication source.
func (rs *RegionServer) onWALRoll() {
	if rs.repl != nil {
		rs.repl.refreshQueue()
	}
}
