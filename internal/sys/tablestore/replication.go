package tablestore

import (
	"strings"

	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/inject"
	"anduril/internal/simnet"
)

// PeerSink models the remote peer cluster replication ships to.
type PeerSink struct {
	c        *Cluster
	name     string
	received int
}

func newPeerSink(c *Cluster) *PeerSink {
	return &PeerSink{c: c, name: "peer"}
}

func (p *PeerSink) start() {
	env := p.c.env
	env.Net.Handle(p.name, "ts.replicate", "peer-sink", func(m simnet.Message, respond func(interface{}, error)) {
		n, _ := m.Payload.(int)
		p.received += n
		env.Log.Debugf("Peer received %d entries from %s (total %d)", n, m.From, p.received)
		respond("ok", nil)
	})
}

// ReplicationSource ships closed WAL files of one region server to the
// peer cluster, in order. HB-18137 (f12): an empty WAL file (no header)
// cannot be skipped — the reader wedges on it and the whole queue stalls.
type ReplicationSource struct {
	rs *RegionServer

	queue   []string // closed WAL files awaiting shipment
	shipped map[string]bool
	stuck   bool
}

func newReplicationSource(rs *RegionServer) *ReplicationSource {
	return &ReplicationSource{rs: rs, shipped: make(map[string]bool)}
}

func (r *ReplicationSource) env() *cluster.Env { return r.rs.c.env }

func (r *ReplicationSource) start() {
	env := r.env()
	env.Sim.Every(r.rs.actor("repl-source"), 200*des.Millisecond, func() {
		if r.rs.aborted || r.stuck {
			return
		}
		r.shipNext()
	})
}

// refreshQueue picks up newly closed WAL files.
func (r *ReplicationSource) refreshQueue() {
	for _, f := range r.rs.wal.files {
		if !r.shipped[f] && !contains(r.queue, f) {
			r.queue = append(r.queue, f)
		}
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// shipNext reads the oldest queued WAL file and ships its entries.
func (r *ReplicationSource) shipNext() {
	env := r.env()
	if len(r.queue) == 0 {
		return
	}
	file := r.queue[0]
	data, err := env.Disk.Read("ts.repl.read-wal", file)
	if err != nil {
		env.Log.Warnf("Replication source on %s cannot read %s, will retry: %s", r.rs.name, file, err)
		return
	}
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || lines[0] != "WALHDR" {
		// Defect (HB-18137): the reader cannot advance past a WAL file
		// with no header; replication for this server stalls forever.
		env.Log.Errorf("Replication stuck on empty WAL file %s on %s", file, r.rs.name)
		r.stuck = true
		return
	}
	entries := 0
	for _, line := range lines[1:] {
		if line != "" {
			entries++
		}
	}
	env.Net.Call("ts.repl.ship-entries", r.rs.c.msg(r.rs.name, "peer", "ts.replicate", entries),
		rpcTimeout, func(_ interface{}, err error) {
			if err != nil {
				env.Log.Warnf("Replication shipment of %s failed on %s, will retry: %s", file, r.rs.name, err)
				return
			}
			r.shipped[file] = true
			r.queue = r.queue[1:]
			env.Log.Infof("Replicated WAL file %s (%d entries) from %s to peer", file, entries, r.rs.name)
		})
}

// onClaimQueue handles the master's instruction to claim a dead server's
// replication queue. HB-16144 (f16): the claimer takes the coordination
// lock first; if it aborts while copying the queue, the lock is orphaned
// and no other server can ever claim.
func (rs *RegionServer) onClaimQueue(m simnet.Message, _ func(interface{}, error)) {
	dead, _ := m.Payload.(string)
	rs.tryClaimQueue(dead)
}

func (rs *RegionServer) tryClaimQueue(dead string) {
	env := rs.env()
	if rs.aborted {
		return
	}
	lock := "replication-queue-" + dead
	env.Net.Call("ts.repl.acquire-lock-rpc", rs.c.msg(rs.name, "hmaster", "ts.acquire-lock", lock),
		rpcTimeout, func(payload interface{}, err error) {
			if err != nil {
				env.Log.Warnf("Failed to claim replication queue of %s on %s: %s", dead, rs.name, err)
				env.Sim.Schedule(rs.actor("repl"), 300*des.Millisecond, func() { rs.tryClaimQueue(dead) })
				return
			}
			if status, _ := payload.(string); status == "already-claimed" {
				env.Log.Infof("Replication queue of %s already claimed; %s standing down", dead, rs.name)
				return
			}
			// Copy the dead server's queue under the lock.
			if err := env.FI.Reach("ts.repl.copy-queue", inject.IO); err != nil {
				// Defect (HB-16144): the abort leaves the lock held forever.
				rs.abort(err)
				return
			}
			env.Log.Infof("Claimed replication queue of %s on %s", dead, rs.name)
			env.Net.Send("ts.repl.mark-claimed", rs.c.msg(rs.name, "hmaster", "ts.mark-claimed", lock))
			env.Net.Send("ts.repl.release-lock-rpc", rs.c.msg(rs.name, "hmaster", "ts.release-lock", lock))
		})
}
