package dyn

// FuzzDynOps drives random put/get/delete traffic through one pinned
// coordinator while partitions among the storage nodes open and close,
// then heals everything and checks the eventual-consistency contract:
// the run never panics, a deleted key never comes back after
// convergence, and with R+W>N an acknowledged write is never read stale
// or missing.
//
// Expectations are recorded when an operation is issued, not when it is
// acknowledged: every issued write is either applied or hinted to each
// owner, all traffic shares one coordinator (so later writes dominate
// earlier ones), and all partitions heal — so the replicas must converge
// on the last issued state per key even for writes whose ack was lost.

import (
	"testing"

	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/simnet"
)

var fuzzPairs = [][2]string{
	{"dyn1", "dyn2"}, {"dyn1", "dyn3"}, {"dyn1", "dyn4"},
	{"dyn2", "dyn3"}, {"dyn2", "dyn4"}, {"dyn3", "dyn4"},
}

func FuzzDynOps(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 2, 1, 0, 3}, int64(1))
	f.Add([]byte{4, 0, 0, 1, 2, 1, 4, 0, 0, 2}, int64(7))
	f.Add([]byte{0, 0, 4, 3, 2, 0, 4, 3, 0, 5, 3, 5, 2, 5}, int64(42))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		if len(data) > 80 {
			data = data[:80]
		}
		workload := func(env *cluster.Env) {
			c := New(env, Config{
				Nodes:   []string{"dyn1", "dyn2", "dyn3", "dyn4"},
				Members: []string{"dyn1", "dyn2", "dyn3", "dyn4"},
				N:       3, R: 2, W: 2,
				VNodes: 32,
				// Grace longer than the horizon: tombstones are never
				// purged, so any resurrection is a versioning defect.
				GCGrace: 10 * des.Second,
			})
			cl := c.NewClient("dyn-client-a", "dyn2")
			issue := func(op, key, val string) {
				env.Net.Call("dyn.client.op-rpc", simnet.Message{
					From: cl.name, To: cl.coord, Type: "dyn.op",
					Payload: opReq{Op: op, Key: key, Val: val},
				}, 300*des.Millisecond, func(_ interface{}, err error) {
					if err != nil {
						env.Log.Debugf("fuzz: %s of %s not acknowledged", op, key)
					}
				})
			}
			cut := map[int]bool{}
			at := 150 * des.Millisecond
			for i := 0; i+1 < len(data); i += 2 {
				op, arg := data[i], int(data[i+1])
				key := keyName(arg % 6)
				at += 30 * des.Millisecond
				when := at
				switch op % 5 {
				case 0, 1:
					val := valName(arg % 16)
					env.Sim.Schedule(cl.name, when, func() {
						c.expectPut(key, val)
						issue("put", key, val)
					})
				case 2:
					env.Sim.Schedule(cl.name, when, func() {
						c.expectDelete(key)
						issue("del", key, "")
					})
				case 3:
					env.Sim.Schedule(cl.name, when, func() { issue("get", key, "") })
				case 4:
					pair := fuzzPairs[arg%len(fuzzPairs)]
					idx := arg % len(fuzzPairs)
					env.Sim.Schedule("fuzz-harness", when, func() {
						cut[idx] = !cut[idx]
						env.Net.Partition(pair[0], pair[1], cut[idx])
					})
				}
			}
			env.Sim.Schedule("fuzz-harness", 1700*des.Millisecond, func() {
				for _, pair := range fuzzPairs {
					env.Net.Partition(pair[0], pair[1], false)
				}
			})
			cl.VerifyRange(2200*des.Millisecond, 25*des.Millisecond, 0, 5)
		}
		res := cluster.Execute(seed, nil, false, workload, Horizon)
		for _, symptom := range []string{
			"after delete (resurrected)",
			"missing after quorum write",
			"stale after quorum write",
		} {
			if res.LogContains(symptom) {
				t.Fatalf("consistency violation %q:\n%s", symptom, res.RenderLog())
			}
		}
		c := res.Convergence
		if c.Tracked && !c.Converged {
			t.Fatalf("replicas did not converge after heal:\n%s", res.RenderLog())
		}
	})
}
