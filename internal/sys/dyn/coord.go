package dyn

import (
	"fmt"

	"anduril/internal/des"
	"anduril/internal/simnet"
)

// Wire payloads. Clocks and version sets are deep-copied on both sides of
// every message, so no state is shared across actors.
type opReq struct {
	Op  string // "put", "del", "get"
	Key string
	Val string
}

type opResp struct {
	Found bool
	Val   string
}

type storeReq struct {
	Key string
	Ver Version
}

type readReq struct{ Key string }

type readResp struct{ Vers []Version }

// nextVC advances the coordinator's causal context for a key and returns
// the clock for a new version. Successive operations through the same
// coordinator therefore dominate each other — the property tombstone-
// aware handoff replay depends on.
func (n *Node) nextVC(key string) VClock {
	vc := n.context[key].Copy()
	vc[n.name]++
	n.context[key] = vc.Copy()
	return vc
}

// coordPut coordinates a sloppy-quorum write (or delete, when tomb is
// set): ship the new version to every owner in the key's preference list,
// acknowledge the client at W acks, and store a hint for every owner that
// could not be reached.
func (n *Node) coordPut(key, val string, tomb bool, respond func(interface{}, error)) {
	env := n.c.env
	ver := Version{Val: val, Tomb: tomb, VC: n.nextVC(key)}
	owners := n.ring.PreferenceList(key, n.c.cfg.N)
	total := len(owners)
	acks, fails := 0, 0
	responded := false
	finish := func() {
		if responded {
			return
		}
		if acks >= n.c.cfg.W {
			responded = true
			respond(opResp{}, nil)
			return
		}
		if acks+fails == total {
			responded = true
			respond(nil, fmt.Errorf("dyn: write quorum not met for %s", key))
		}
	}
	for _, owner := range owners {
		if owner == n.name {
			if err := n.applyVersion(key, ver); err != nil {
				fails++
			} else {
				acks++
			}
			finish()
			continue
		}
		o := owner
		env.Net.Call("dyn.coord.store-rpc", simnet.Message{
			From: n.name, To: o, Type: "dyn.store",
			Payload: storeReq{Key: key, Ver: ver.clone()},
		}, 150*des.Millisecond, func(_ interface{}, err error) {
			if err != nil {
				fails++
				n.storeHint(o, key, ver)
				finish()
				return
			}
			acks++
			finish()
		})
	}
}

// coordGet coordinates a quorum read: fetch every owner's sibling set,
// require R responses, resolve the winner, and read-repair the owners
// whose sets have fallen behind.
func (n *Node) coordGet(key string, respond func(interface{}, error)) {
	env := n.c.env
	owners := n.ring.PreferenceList(key, n.c.cfg.N)
	total := len(owners)
	type ownerState struct {
		ok   bool
		vers []Version
	}
	states := make([]ownerState, total)
	resps, oks := 0, 0
	finish := func() {
		if resps != total {
			return
		}
		if oks < n.c.cfg.R {
			respond(nil, fmt.Errorf("dyn: read quorum not met for %s", key))
			return
		}
		var collected []Version
		for _, st := range states {
			collected = append(collected, st.vers...)
		}
		set := siblings(collected)
		winner, found := resolve(set)
		if len(set) > 0 {
			merged := VClock{}
			for _, v := range set {
				merged = merged.Merge(v.VC)
			}
			n.context[key] = n.context[key].Merge(merged)
			repair := Version{Val: winner.Val, Tomb: winner.Tomb, VC: merged}
			for i, owner := range owners {
				if !states[i].ok || equalVersionSets(states[i].vers, set) {
					continue
				}
				if owner == n.name {
					_ = n.applyVersion(key, repair)
					continue
				}
				o := owner
				env.Net.Call("dyn.repair.push", simnet.Message{
					From: n.name, To: o, Type: "dyn.store",
					Payload: storeReq{Key: key, Ver: repair.clone()},
				}, 150*des.Millisecond, func(_ interface{}, err error) {
					if err != nil {
						env.Log.Debugf("Read repair of %s to %s failed", key, o)
						return
					}
					env.Log.Infof("Read repair of %s pushed to %s", key, o)
				})
			}
		}
		if !found {
			respond(opResp{Found: false}, nil)
			return
		}
		respond(opResp{Found: true, Val: winner.Val}, nil)
	}
	for i, owner := range owners {
		if owner == n.name {
			states[i] = ownerState{ok: true, vers: cloneVersions(n.store[key])}
			resps++
			oks++
			finish()
			continue
		}
		i, o := i, owner
		env.Net.Call("dyn.coord.fetch-rpc", simnet.Message{
			From: n.name, To: o, Type: "dyn.read",
			Payload: readReq{Key: key},
		}, 150*des.Millisecond, func(payload interface{}, err error) {
			resps++
			if err == nil {
				states[i] = ownerState{ok: true, vers: payload.(readResp).Vers}
				oks++
			}
			finish()
		})
	}
}
