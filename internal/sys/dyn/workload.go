package dyn

import (
	"fmt"

	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/simnet"
)

// Horizon is how long the dyn workloads run; the convergence bounds are
// the virtual times by which a fault-free run has demonstrably converged
// (with margin). The failure oracles assert the run either never
// converged or converged only after the bound.
const (
	Horizon = 3 * des.Second

	MembershipConvergeBound = 1800 * des.Millisecond
	TombstoneConvergeBound  = 1500 * des.Millisecond
)

// Client issues scripted operations through one pinned coordinator, the
// way a Dynamo client sticks to a coordinator for causal context.
type Client struct {
	c     *Cluster
	name  string
	coord string
}

// NewClient creates a client actor pinned to the given coordinator node.
func (c *Cluster) NewClient(name, coord string) *Client {
	return &Client{c: c, name: name, coord: coord}
}

func keyName(i int) string { return fmt.Sprintf("k%03d", i) }
func valName(i int) string { return fmt.Sprintf("v%03d", i) }

// PutRange schedules puts of k<first>..k<last>, one every interval
// starting at start.
func (cl *Client) PutRange(start, interval des.Time, first, last int) {
	env := cl.c.env
	for i := first; i <= last; i++ {
		i := i
		env.Sim.Schedule(cl.name, start+des.Time(i-first)*interval, func() {
			cl.put(keyName(i), valName(i))
		})
	}
}

// DeleteRange schedules deletes of k<first>..k<last>.
func (cl *Client) DeleteRange(start, interval des.Time, first, last int) {
	env := cl.c.env
	for i := first; i <= last; i++ {
		i := i
		env.Sim.Schedule(cl.name, start+des.Time(i-first)*interval, func() {
			cl.del(keyName(i))
		})
	}
}

// VerifyRange schedules reads of k<first>..k<last> that check each result
// against the acknowledged client state and log any violation.
func (cl *Client) VerifyRange(start, interval des.Time, first, last int) {
	env := cl.c.env
	for i := first; i <= last; i++ {
		i := i
		env.Sim.Schedule(cl.name, start+des.Time(i-first)*interval, func() {
			cl.verify(keyName(i))
		})
	}
	env.Sim.Schedule(cl.name, start+des.Time(last-first+1)*interval, func() {
		env.Log.Infof("verify: pass complete on %d keys", last-first+1)
	})
}

func (cl *Client) put(key, val string) {
	env := cl.c.env
	env.Net.Call("dyn.client.op-rpc", simnet.Message{
		From: cl.name, To: cl.coord, Type: "dyn.op",
		Payload: opReq{Op: "put", Key: key, Val: val},
	}, 300*des.Millisecond, func(_ interface{}, err error) {
		if err != nil {
			env.Log.Warnf("Client %s: put %s not acknowledged", cl.name, key)
			return
		}
		cl.c.expectPut(key, val)
		env.Log.Debugf("Client %s: put %s acknowledged", cl.name, key)
	})
}

func (cl *Client) del(key string) {
	env := cl.c.env
	env.Net.Call("dyn.client.op-rpc", simnet.Message{
		From: cl.name, To: cl.coord, Type: "dyn.op",
		Payload: opReq{Op: "del", Key: key},
	}, 300*des.Millisecond, func(_ interface{}, err error) {
		if err != nil {
			env.Log.Warnf("Client %s: delete %s not acknowledged", cl.name, key)
			return
		}
		cl.c.expectDelete(key)
		env.Log.Debugf("Client %s: delete %s acknowledged", cl.name, key)
	})
}

func (cl *Client) verify(key string) {
	env := cl.c.env
	env.Net.Call("dyn.client.op-rpc", simnet.Message{
		From: cl.name, To: cl.coord, Type: "dyn.op",
		Payload: opReq{Op: "get", Key: key},
	}, 300*des.Millisecond, func(payload interface{}, err error) {
		if err != nil {
			env.Log.Warnf("verify: read of %s failed", key)
			return
		}
		resp := payload.(opResp)
		want, ok := cl.c.expected[key]
		if !ok {
			return
		}
		if want == tombSentinel {
			if resp.Found {
				env.Log.Warnf("verify: %s returned %s after delete (resurrected)", key, resp.Val)
			} else {
				env.Log.Debugf("verify: %s confirmed deleted", key)
			}
			return
		}
		switch {
		case !resp.Found:
			env.Log.Warnf("verify: %s missing after quorum write", key)
		case resp.Val != want:
			env.Log.Warnf("verify: %s stale after quorum write", key)
		default:
			env.Log.Debugf("verify: %s intact", key)
		}
	})
}

// WorkloadMembership drives the membership/rebalance scenarios (f26,
// f29): a three-node ring takes a first batch of writes, an operator
// adds dyn4 (ring v2 spreads by gossip and triggers range transfers), a
// second batch lands mid/post-rebalance, and a verify pass re-reads
// everything.
func WorkloadMembership(env *cluster.Env) {
	c := New(env, Config{
		Nodes:   []string{"dyn1", "dyn2", "dyn3", "dyn4"},
		Members: []string{"dyn1", "dyn2", "dyn3"},
		N:       2, R: 2, W: 2,
		VNodes:  64,
		GCGrace: 400 * des.Millisecond,
	})
	cl := c.NewClient("dyn-client-a", "dyn2")
	cl.PutRange(150*des.Millisecond, 30*des.Millisecond, 0, 11)
	env.Sim.Schedule("dyn-operator", 900*des.Millisecond, func() {
		env.Log.Infof("Operator adding dyn4 to the ring")
		c.byName["dyn1"].adoptRing(2, []string{"dyn1", "dyn2", "dyn3", "dyn4"})
	})
	cl.PutRange(1400*des.Millisecond, 30*des.Millisecond, 12, 23)
	cl.VerifyRange(2000*des.Millisecond, 25*des.Millisecond, 0, 23)
}

// WorkloadTombstones drives the delete/anti-entropy scenarios (f27,
// f28): a full four-node ring takes writes while dyn3 is briefly
// unreachable (so hints accumulate), the first keys are deleted, the
// tombstones age past the GC grace period and are purged, and a verify
// pass re-reads everything.
func WorkloadTombstones(env *cluster.Env) {
	c := New(env, Config{
		Nodes:   []string{"dyn1", "dyn2", "dyn3", "dyn4"},
		Members: []string{"dyn1", "dyn2", "dyn3", "dyn4"},
		N:       3, R: 2, W: 2,
		VNodes:  64,
		GCGrace: 400 * des.Millisecond,
	})
	cl := c.NewClient("dyn-client-a", "dyn2")
	env.Sim.Schedule("harness", 140*des.Millisecond, func() {
		env.Net.SetDown("dyn3", true)
		env.Log.Warnf("Node dyn3 became unreachable")
	})
	env.Sim.Schedule("harness", 580*des.Millisecond, func() {
		env.Net.SetDown("dyn3", false)
		env.Log.Infof("Node dyn3 became reachable")
	})
	cl.PutRange(150*des.Millisecond, 30*des.Millisecond, 0, 9)
	cl.DeleteRange(700*des.Millisecond, 40*des.Millisecond, 0, 4)
	cl.VerifyRange(1600*des.Millisecond, 25*des.Millisecond, 0, 9)
}
