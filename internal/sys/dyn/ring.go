package dyn

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is an immutable consistent-hash ring: each member contributes a
// fixed number of virtual-node points, and a key's preference list is the
// first N distinct members walking clockwise from the key's hash. Rings
// are versioned; membership changes build a new ring with a higher
// version and gossip carries it through the cluster.
type Ring struct {
	Version int
	Members []string // sorted

	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint32
	node string
}

// NewRing builds a ring for the given members (order-insensitive) with
// vnodes virtual points per member. Hashing is seed-independent — the
// same membership always yields the same ring — so routing geometry is
// identical across runs and seeds.
func NewRing(version int, members []string, vnodes int) *Ring {
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	r := &Ring{Version: version, Members: sorted}
	for _, m := range sorted {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash32(fmt.Sprintf("%s#%d", m, i)), node: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

func hash32(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

// PreferenceList returns the first n distinct members clockwise from the
// key's hash — the key's owners under this ring. Fewer than n members
// yields the full membership.
func (r *Ring) PreferenceList(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.Members) {
		n = len(r.Members)
	}
	kh := hash32(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	owners := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			owners = append(owners, p.node)
		}
	}
	return owners
}

// Contains reports whether node is a member of the ring.
func (r *Ring) Contains(node string) bool {
	i := sort.SearchStrings(r.Members, node)
	return i < len(r.Members) && r.Members[i] == node
}
