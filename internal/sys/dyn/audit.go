package dyn

import (
	"sort"

	"anduril/internal/cluster"
	"anduril/internal/des"
)

// auditPeriod is how often the anti-entropy audit compares replica state
// against the acknowledged client state; auditGrace is how long continuous
// divergence may last before the audit escalates. Transient divergence —
// a write still replicating, hints pending for a briefly-unreachable
// node, a rebalance in flight — stays under the grace period in a
// fault-free run; anti-entropy defects do not.
const (
	auditPeriod = 50 * des.Millisecond
	auditGrace  = 600 * des.Millisecond
)

// expectPut / expectDelete record what clients have had acknowledged —
// the state the replicas must eventually converge on.
func (c *Cluster) expectPut(key, val string) { c.expected[key] = val }
func (c *Cluster) expectDelete(key string)   { c.expected[key] = tombSentinel }

const tombSentinel = "\x00deleted"

// startAudit runs the convergence audit: under the latest ring every
// owner of every acknowledged key must hold exactly the acknowledged
// state (a deleted key may be absent or hold a lone tombstone). The audit
// is harness-side observation — it reads replica state directly and never
// mutates it.
func (c *Cluster) startAudit() {
	env := c.env
	env.Sim.Every("dyn-audit", auditPeriod, func() {
		ring := c.latestRing()
		divergent := 0
		keys := make([]string, 0, len(c.expected))
		for key := range c.expected {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			want := c.expected[key]
			for _, owner := range ring.PreferenceList(key, c.cfg.N) {
				set := c.byName[owner].store[key]
				if want == tombSentinel {
					if len(set) == 0 || (len(set) == 1 && set[0].Tomb) {
						continue
					}
				} else if len(set) == 1 && !set[0].Tomb && set[0].Val == want {
					continue
				}
				divergent++
				break
			}
		}
		now := env.Sim.Now()
		if divergent > 0 {
			if !c.divergent {
				c.divergent = true
				c.divergentSince = now
				c.graceLogged = false
			}
			env.Log.Warnf("anti-entropy audit: %d keys divergent", divergent)
			if !c.graceLogged && now-c.divergentSince >= auditGrace {
				c.graceLogged = true
				env.Log.Warnf("anti-entropy audit: replicas diverged beyond grace period")
			}
			return
		}
		if c.divergent || !c.everAgreed {
			c.divergent = false
			c.everAgreed = true
			c.agreeSince = now
			env.Log.Infof("anti-entropy audit: replicas converged")
		}
	})
}

// latestRing is the most advanced ring any node holds — the membership
// the audit judges ownership by.
func (c *Cluster) latestRing() *Ring {
	best := c.byName[c.names[0]].ring
	for _, name := range c.names[1:] {
		if r := c.byName[name].ring; r.Version > best.Version {
			best = r
		}
	}
	return best
}

// convergence is the probe handed to cluster.Env.RegisterConvergence.
func (c *Cluster) convergence() cluster.Convergence {
	return cluster.Convergence{
		Tracked:   true,
		Converged: c.everAgreed && !c.divergent,
		Since:     c.agreeSince,
	}
}
