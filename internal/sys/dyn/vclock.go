// Package dyn is a Dynamo-style eventually-consistent key/value store on
// the simulation kernel: gossip membership with per-round digests, a
// consistent-hash ring with virtual nodes, vector-clock versioning with
// sibling resolution, sloppy-quorum reads and writes (N/R/W configurable
// per workload), read repair, and hinted handoff with tombstone-aware
// replay. Unlike the other target systems, its failures are judged by an
// eventual-consistency oracle — the replicas must converge on the
// acknowledged client state within a bounded amount of virtual time — so
// a defect can stay silent through every individual request and only
// surface as divergence that anti-entropy never heals.
package dyn

import (
	"fmt"
	"sort"
	"strings"
)

// VClock is a vector clock: per-coordinator event counters. The zero value
// (nil map) is a valid empty clock.
type VClock map[string]int

// Copy returns an independent clock with the same counters. Clocks cross
// actor boundaries inside messages, so every send and every apply copies.
func (v VClock) Copy() VClock {
	out := make(VClock, len(v)+1)
	for node, n := range v {
		out[node] = n
	}
	return out
}

// Merge returns the element-wise maximum of the two clocks.
func (v VClock) Merge(o VClock) VClock {
	out := v.Copy()
	for node, n := range o {
		if n > out[node] {
			out[node] = n
		}
	}
	return out
}

// Descends reports whether v ≥ o: v has seen every event o has. Equal
// clocks descend each other; use Concurrent for strict incomparability.
func (v VClock) Descends(o VClock) bool {
	for node, n := range o {
		if v[node] < n {
			return false
		}
	}
	return true
}

// Concurrent reports whether neither clock descends the other — the
// sibling case a read must surface to resolution.
func (v VClock) Concurrent(o VClock) bool {
	return !v.Descends(o) && !o.Descends(v)
}

// Equal reports whether the clocks carry identical counters (ignoring
// explicit zeros).
func (v VClock) Equal(o VClock) bool { return v.Descends(o) && o.Descends(v) }

// String renders the clock deterministically: entries sorted by node.
func (v VClock) String() string {
	nodes := make([]string, 0, len(v))
	for node, n := range v {
		if n != 0 {
			nodes = append(nodes, node)
		}
	}
	sort.Strings(nodes)
	parts := make([]string, len(nodes))
	for i, node := range nodes {
		parts[i] = fmt.Sprintf("%s:%d", node, v[node])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Version is one versioned value of a key: the payload, the clock that
// wrote it, and whether it is a tombstone (a delete that must dominate
// earlier writes until garbage collection).
type Version struct {
	Val  string
	VC   VClock
	Tomb bool
}

func (ver Version) clone() Version {
	ver.VC = ver.VC.Copy()
	return ver
}

// addVersion folds one incoming version into a sibling set: versions the
// newcomer descends are dropped, a newcomer descended by (or equal to) an
// existing version is dropped, and true concurrency keeps both as
// siblings. The set stays sorted deterministically.
func addVersion(set []Version, in Version) []Version {
	kept := set[:0]
	for _, s := range set {
		if s.VC.Descends(in.VC) {
			// Existing version already covers the newcomer (includes the
			// duplicate-delivery case of equal clocks).
			return set
		}
		if !in.VC.Descends(s.VC) {
			kept = append(kept, s)
		}
	}
	kept = append(kept, in)
	sortVersions(kept)
	return kept
}

// sortVersions orders a sibling set deterministically: tombstones last,
// then by value, then by rendered clock.
func sortVersions(set []Version) {
	sort.Slice(set, func(i, j int) bool {
		a, b := set[i], set[j]
		if a.Tomb != b.Tomb {
			return !a.Tomb
		}
		if a.Val != b.Val {
			return a.Val < b.Val
		}
		return a.VC.String() < b.VC.String()
	})
}

// siblings folds a pile of versions collected from several replicas into
// the minimal sibling set.
func siblings(collected []Version) []Version {
	var set []Version
	for _, v := range collected {
		set = addVersion(set, v)
	}
	return set
}

// resolve picks the client-visible winner from a sibling set: the largest
// non-tombstone value if any survives, otherwise the deletion. found is
// false when the set is empty or resolves to a tombstone.
func resolve(set []Version) (winner Version, found bool) {
	if len(set) == 0 {
		return Version{}, false
	}
	// sortVersions puts non-tombstones first ordered by value; the last
	// non-tombstone is the deterministic application-level winner.
	last := -1
	for i, v := range set {
		if !v.Tomb {
			last = i
		}
	}
	if last < 0 {
		return set[len(set)-1], false
	}
	return set[last], true
}

// equalVersionSets reports whether two sibling sets hold the same versions.
func equalVersionSets(a, b []Version) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Tomb != b[i].Tomb || a[i].Val != b[i].Val || !a[i].VC.Equal(b[i].VC) {
			return false
		}
	}
	return true
}
