package dyn

import (
	"anduril/internal/des"
	"anduril/internal/simnet"
)

type digestMsg struct {
	From    string
	Version int
}

type ringMsg struct {
	Version int
	Members []string
}

type transferRec struct {
	Key  string
	Vers []Version
}

type transferMsg struct{ Recs []transferRec }

type releaseMsg struct{ Keys []string }

// startGossip runs the membership digest loop: every round the node tells
// one peer (alternating between its successor and second successor in
// name order, so a single lost link cannot stall propagation) which ring
// version it holds. A peer that is behind pulls the full ring. The
// per-node timers are phase-staggered so rounds of different nodes never
// share a tick — synchronized rounds would let network jitter reorder
// near-simultaneous ring pulls between runs.
func (n *Node) startGossip() {
	env := n.c.env
	peers := n.c.names
	idx := 0
	for i, p := range peers {
		if p == n.name {
			idx = i
		}
	}
	phase := des.Time(idx) * 10 * des.Millisecond
	env.Sim.Post(n.name+"-gossip", phase, func() {
		env.Sim.Every(n.name+"-gossip", 100*des.Millisecond, func() {
			if !n.alive {
				return
			}
			n.gossipRound++
			step := 1 + n.gossipRound%2
			peer := peers[(idx+step)%len(peers)]
			if peer == n.name {
				return
			}
			if err := env.Net.Send("dyn.gossip.send-digest", simnet.Message{
				From: n.name, To: peer, Type: "dyn.digest",
				Payload: digestMsg{From: n.name, Version: n.ring.Version},
			}); err != nil {
				env.Log.Debugf("Gossip digest from %s to %s lost", n.name, peer)
			}
		})
	})
}

// onDigest reacts to a peer's ring version: nothing when we are current,
// a pull of the full ring when the digest advertises a newer one. Each
// ring version is pulled at most once.
func (n *Node) onDigest(m simnet.Message, _ func(interface{}, error)) {
	if !n.alive {
		return
	}
	d := m.Payload.(digestMsg)
	if d.Version <= n.ring.Version || n.pulled[d.Version] || n.pulling[d.Version] {
		return
	}
	env := n.c.env
	n.pulling[d.Version] = true
	env.Net.Call("dyn.gossip.pull-ring", simnet.Message{
		From: n.name, To: d.From, Type: "dyn.pullring",
		Payload: readReq{},
	}, 150*des.Millisecond, func(payload interface{}, err error) {
		delete(n.pulling, d.Version)
		if err != nil {
			// Defect (f26 root): the failed pull is recorded as handled, so
			// every later digest for this ring version is ignored and the
			// node keeps routing reads and writes on the stale ring — it
			// never migrates its primaries to the new member either.
			n.pulled[d.Version] = true
			env.Log.Warnf("Gossip pull of ring v%d from %s failed on %s; digest marked handled", d.Version, d.From, n.name)
			return
		}
		rm := payload.(ringMsg)
		n.pulled[rm.Version] = true
		n.adoptRing(rm.Version, rm.Members)
	})
}

// onPullRing serves the node's current ring to a peer that is behind.
func (n *Node) onPullRing(_ simnet.Message, respond func(interface{}, error)) {
	if !n.alive {
		respond(nil, errNodeDown)
		return
	}
	respond(ringMsg{Version: n.ring.Version, Members: append([]string(nil), n.ring.Members...)}, nil)
}

// adoptRing switches the node to a newer ring and rebalances: the keys
// this node was primary for that gained owners are transferred to the
// newcomers, and the displaced replicas release their copies once the
// transfer settles.
func (n *Node) adoptRing(version int, members []string) {
	if version <= n.ring.Version {
		return
	}
	env := n.c.env
	old := n.ring
	n.ring = NewRing(version, members, n.c.cfg.VNodes)
	n.pulled[version] = true
	env.Log.Infof("Node %s adopted ring v%d with %d members", n.name, version, len(members))
	n.migrate(old, n.ring)
}

// migrate pushes the moved key ranges to their new owners, one batched
// transfer per destination.
func (n *Node) migrate(old, cur *Ring) {
	env := n.c.env
	batches := make(map[string][]string)
	for _, key := range sortedVerKeys(n.store) {
		oldPref := old.PreferenceList(key, n.c.cfg.N)
		if len(oldPref) == 0 || oldPref[0] != n.name {
			continue
		}
		for _, owner := range cur.PreferenceList(key, n.c.cfg.N) {
			if !containsStr(oldPref, owner) {
				batches[owner] = append(batches[owner], key)
			}
		}
	}
	for _, dst := range sortedBatchKeys(batches) {
		keys := batches[dst]
		recs := make([]transferRec, len(keys))
		for i, key := range keys {
			recs[i] = transferRec{Key: key, Vers: cloneVersions(n.store[key])}
		}
		dst := dst
		env.Net.Call("dyn.migrate.transfer-range", simnet.Message{
			From: n.name, To: dst, Type: "dyn.transfer",
			Payload: transferMsg{Recs: recs},
		}, 200*des.Millisecond, func(_ interface{}, err error) {
			if err != nil {
				// Defect (f29): the failed transfer is logged and then the
				// range is treated as migrated anyway — the release below
				// still tells the displaced replicas to drop their copies,
				// so the quorum overlap the new ring promises is gone.
				env.Log.Errorf("Range transfer of %d keys to %s failed on %s; marking range migrated", len(keys), dst, n.name)
			} else {
				env.Log.Infof("Transferred %d keys to %s for ring v%d", len(keys), dst, cur.Version)
			}
			n.releaseMoved(old, cur, keys)
		})
	}
}

// releaseMoved tells every replica displaced by the rebalance to drop its
// copies of the moved keys.
func (n *Node) releaseMoved(old, cur *Ring, keys []string) {
	env := n.c.env
	drops := make(map[string][]string)
	for _, key := range keys {
		newPref := cur.PreferenceList(key, n.c.cfg.N)
		for _, member := range old.PreferenceList(key, n.c.cfg.N) {
			if !containsStr(newPref, member) {
				drops[member] = append(drops[member], key)
			}
		}
	}
	for _, member := range sortedBatchKeys(drops) {
		if member == n.name {
			n.dropKeys(drops[member])
			continue
		}
		if err := env.Net.Send("dyn.migrate.drop-source", simnet.Message{
			From: n.name, To: member, Type: "dyn.release",
			Payload: releaseMsg{Keys: drops[member]},
		}); err != nil {
			env.Log.Debugf("Release notice from %s to %s lost", n.name, member)
		}
	}
}

// onTransfer receives a batched range transfer and folds it into the
// local store.
func (n *Node) onTransfer(m simnet.Message, respond func(interface{}, error)) {
	if !n.alive {
		respond(nil, errNodeDown)
		return
	}
	env := n.c.env
	tm := m.Payload.(transferMsg)
	data := []byte("range\n")
	if err := env.Disk.Append("dyn.migrate.persist-range", n.name+"/ranges.log", data); err != nil {
		env.Log.Warnf("Range persist failed on %s", n.name)
		respond(nil, err)
		return
	}
	for _, rec := range tm.Recs {
		for _, v := range rec.Vers {
			n.store[rec.Key] = addVersion(n.store[rec.Key], v.clone())
			if v.Tomb {
				n.tombAt[rec.Key] = env.Sim.Now()
			}
		}
	}
	env.Log.Infof("Received range of %d keys on %s", len(tm.Recs), n.name)
	respond("ok", nil)
}

// onRelease drops the copies a rebalance displaced from this node.
func (n *Node) onRelease(m simnet.Message, _ func(interface{}, error)) {
	if !n.alive {
		return
	}
	rm := m.Payload.(releaseMsg)
	n.dropKeys(rm.Keys)
}

func (n *Node) dropKeys(keys []string) {
	dropped := 0
	for _, key := range keys {
		if _, ok := n.store[key]; ok {
			delete(n.store, key)
			delete(n.tombAt, key)
			dropped++
		}
	}
	if dropped > 0 {
		n.c.env.Log.Debugf("Dropped %d migrated keys on %s", dropped, n.name)
	}
}
