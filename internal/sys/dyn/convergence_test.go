package dyn

// Fault-free runs of both dyn workloads must converge within the bounds
// the failure oracles assert against, under every seed — and each run
// must be byte-identical when repeated, because the explorer's feedback
// loop diffs logs across rounds and any nondeterminism poisons the diff.

import (
	"testing"

	"anduril/internal/cluster"
	"anduril/internal/des"
)

func TestFaultFreeConvergence(t *testing.T) {
	cases := []struct {
		name     string
		workload cluster.Workload
		bound    des.Time
	}{
		{"membership", WorkloadMembership, MembershipConvergeBound},
		{"tombstones", WorkloadTombstones, TombstoneConvergeBound},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []int64{1, 7, 42, 99, 777} {
				res := cluster.Execute(seed, nil, false, tc.workload, Horizon)
				c := res.Convergence
				if !c.Tracked {
					t.Fatalf("seed %d: convergence not tracked", seed)
				}
				if !c.Converged {
					t.Errorf("seed %d: replicas did not converge\n%s", seed, res.RenderLog())
					continue
				}
				if c.Since > tc.bound {
					t.Errorf("seed %d: converged at %v, bound %v", seed, c.Since, tc.bound)
				}
				if res.LogContains("anti-entropy audit: replicas diverged beyond grace period") {
					t.Errorf("seed %d: fault-free run escalated past the audit grace period", seed)
				}
				again := cluster.Execute(seed, nil, false, tc.workload, Horizon)
				if res.RenderLog() != again.RenderLog() {
					t.Errorf("seed %d: two fault-free runs rendered different logs", seed)
				}
			}
		})
	}
}
