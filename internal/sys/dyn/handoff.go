package dyn

import (
	"errors"
	"fmt"

	"anduril/internal/des"
	"anduril/internal/inject"
	"anduril/internal/simnet"
)

// hint is one write a coordinator could not deliver to an owner: the
// destination, the version, and whether the queued entry still carries
// its version metadata (see the f28 defect below).
type hint struct {
	node     string
	key      string
	ver      Version
	bare     bool
	inflight bool
}

// storeHint persists and queues a hint for an unreachable owner.
func (n *Node) storeHint(node, key string, ver Version) {
	env := n.c.env
	rec := []byte(fmt.Sprintf("%s %s %s\n", node, key, ver.VC))
	if err := env.Disk.Append("dyn.handoff.store-hint", n.name+"/hints.log", rec); err != nil {
		env.Log.Warnf("Hint of %s for %s lost on %s", key, node, n.name)
		return
	}
	n.hints = append(n.hints, &hint{node: node, key: key, ver: ver.clone()})
	env.Log.Debugf("Stored hint of %s for %s on %s (%d pending)", key, node, n.name, len(n.hints))
}

// startHandoff replays pending hints. The replay is tombstone-aware
// because a replayed version keeps its original clock: a delete issued
// after the hinted write was coordinated by the same node, so its
// tombstone dominates the replayed version and the replica keeps the
// delete.
func (n *Node) startHandoff() {
	env := n.c.env
	env.Sim.Every(n.name+"-handoff", 150*des.Millisecond, func() {
		if !n.alive || len(n.hints) == 0 {
			return
		}
		for _, h := range n.hints {
			if h.inflight {
				continue
			}
			h.inflight = true
			h := h
			ver := h.ver
			if h.bare {
				// Defect (f28): this hint was requeued without its version
				// metadata, so the replay fabricates a fresh coordinator
				// version — which dominates any tombstone written between
				// the hinted write and now, resurrecting the deleted key.
				ver = Version{Val: h.ver.Val, VC: n.nextVC(h.key)}
			}
			env.Net.Call("dyn.handoff.replay-hint", simnet.Message{
				From: n.name, To: h.node, Type: "dyn.store",
				Payload: storeReq{Key: h.key, Ver: ver.clone()},
			}, 120*des.Millisecond, func(_ interface{}, err error) {
				h.inflight = false
				if err != nil {
					if errors.Is(err, inject.KindErr(inject.Socket)) {
						// Defect (f28 root): a socket error mid-replay makes
						// the loop requeue the hint stripped of its clock.
						h.bare = true
						env.Log.Warnf("Hint replay of %s to %s failed; requeued without version metadata", h.key, h.node)
						return
					}
					env.Log.Debugf("Hint replay of %s to %s still failing", h.key, h.node)
					return
				}
				n.dropHint(h)
				env.Log.Infof("Replayed hint of %s to %s (%d pending on %s)", h.key, h.node, len(n.hints), n.name)
			})
		}
	})
}

func (n *Node) dropHint(target *hint) {
	kept := n.hints[:0]
	for _, h := range n.hints {
		if h != target {
			kept = append(kept, h)
		}
	}
	n.hints = kept
}
