package dyn

import (
	"errors"
	"fmt"
	"sort"

	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/simnet"
)

// Config shapes one dyn cluster: which nodes run, which of them are in
// the initial ring, the replication/quorum parameters, the virtual-node
// count per member, and the tombstone garbage-collection grace period.
type Config struct {
	Nodes   []string // every running node (may exceed the ring)
	Members []string // initial ring v1 membership
	N       int      // replicas per key
	R       int      // read quorum
	W       int      // write quorum
	VNodes  int      // virtual nodes per member
	GCGrace des.Time // tombstones older than this are purged
}

// Cluster is one running dyn deployment plus the harness-side bookkeeping
// the convergence audit needs: the acknowledged client state and the
// divergence timeline.
type Cluster struct {
	env    *cluster.Env
	cfg    Config
	names  []string // sorted node names
	byName map[string]*Node

	// Convergence audit state (see audit.go).
	expected       map[string]string
	everAgreed     bool
	divergent      bool
	divergentSince des.Time
	agreeSince     des.Time
	graceLogged    bool
}

// Node is one dyn storage node: its view of the ring, its versioned
// store, its causal contexts as a coordinator, and its hinted-handoff
// queue.
type Node struct {
	c     *Cluster
	name  string
	alive bool

	ring    *Ring
	store   map[string][]Version // sibling sets, kept sorted
	tombAt  map[string]des.Time  // when each key's tombstone was applied
	context map[string]VClock    // per-key causal context (coordinator role)

	gossipRound int
	pulled      map[int]bool // ring versions already pulled (or marked handled)
	pulling     map[int]bool // ring versions with a pull in flight

	hints []*hint
}

var errNodeDown = errors.New("dyn: node is down")

// New builds and starts a dyn cluster inside env: nodes, handlers,
// gossip/GC/handoff loops, the convergence audit, and crash/restart
// controls for environment faults.
func New(env *cluster.Env, cfg Config) *Cluster {
	c := &Cluster{
		env:      env,
		cfg:      cfg,
		byName:   make(map[string]*Node, len(cfg.Nodes)),
		expected: make(map[string]string),
	}
	c.names = append(c.names, cfg.Nodes...)
	sort.Strings(c.names)
	for _, name := range c.names {
		n := &Node{
			c:       c,
			name:    name,
			alive:   true,
			ring:    NewRing(1, cfg.Members, cfg.VNodes),
			store:   make(map[string][]Version),
			tombAt:  make(map[string]des.Time),
			context: make(map[string]VClock),
			pulled:  map[int]bool{1: true},
			pulling: make(map[int]bool),
		}
		c.byName[name] = n
		net := env.Net
		net.Handle(n.name, "dyn.op", n.name+"-op", n.onOp)
		net.Handle(n.name, "dyn.store", n.name+"-store", n.onStore)
		net.Handle(n.name, "dyn.read", n.name+"-read", n.onRead)
		net.Handle(n.name, "dyn.digest", n.name+"-gossip", n.onDigest)
		net.Handle(n.name, "dyn.pullring", n.name+"-gossip", n.onPullRing)
		net.Handle(n.name, "dyn.transfer", n.name+"-migrate", n.onTransfer)
		net.Handle(n.name, "dyn.release", n.name+"-migrate", n.onRelease)
		node := n
		env.RegisterNode(n.name, cluster.NodeControl{
			Crash:   func() { node.alive = false },
			Restart: func() { node.alive = true },
		})
		n.startGossip()
		n.startHandoff()
		n.startGC()
	}
	c.startAudit()
	env.RegisterConvergence(c.convergence)
	return c
}

// startGC purges tombstones older than the grace period. A key whose only
// version is an old tombstone disappears entirely — which is exactly why
// a replica that missed the delete can later resurrect it.
func (n *Node) startGC() {
	env := n.c.env
	env.Sim.Every(n.name+"-gc", 250*des.Millisecond, func() {
		if !n.alive {
			return
		}
		now := env.Sim.Now()
		for _, key := range sortedTimeKeys(n.tombAt) {
			if now-n.tombAt[key] < n.c.cfg.GCGrace {
				continue
			}
			set := n.store[key]
			switch {
			case len(set) == 0:
				delete(n.tombAt, key)
			case len(set) == 1 && set[0].Tomb:
				delete(n.store, key)
				delete(n.tombAt, key)
				env.Log.Debugf("Purged tombstone of %s on %s", key, n.name)
			}
		}
	})
}

// applyVersion folds an incoming version into the node's store, persisting
// it first. Tombstones and records persist to separate logs.
func (n *Node) applyVersion(key string, incoming Version) error {
	env := n.c.env
	in := incoming.clone()
	if in.Tomb {
		rec := []byte(fmt.Sprintf("%s tombstone %s\n", key, in.VC))
		if err := env.Disk.Append("dyn.store.persist-tombstone", n.name+"/tombstones.log", rec); err != nil {
			// Defect (f27 root): the failed tombstone persist is swallowed
			// and the delete acknowledged anyway, so this replica never
			// applies the tombstone and keeps serving the live value —
			// which read repair will later push back to the replicas that
			// did delete it.
			env.Log.Errorf("Tombstone persist for %s failed on %s; acknowledging delete anyway", key, n.name)
			return nil
		}
	} else {
		rec := []byte(fmt.Sprintf("%s %s %s\n", key, in.Val, in.VC))
		if err := env.Disk.Append("dyn.store.persist-record", n.name+"/commit.log", rec); err != nil {
			env.Log.Warnf("Record persist for %s failed on %s", key, n.name)
			return err
		}
	}
	n.store[key] = addVersion(n.store[key], in)
	if in.Tomb {
		n.tombAt[key] = env.Sim.Now()
	}
	return nil
}

// onStore applies a replicated version (quorum write, read repair, or
// hinted-handoff replay — they share the wire format).
func (n *Node) onStore(m simnet.Message, respond func(interface{}, error)) {
	if !n.alive {
		respond(nil, errNodeDown)
		return
	}
	req := m.Payload.(storeReq)
	if err := n.applyVersion(req.Key, req.Ver); err != nil {
		respond(nil, err)
		return
	}
	respond("ok", nil)
}

// onRead returns the node's sibling set for a key.
func (n *Node) onRead(m simnet.Message, respond func(interface{}, error)) {
	if !n.alive {
		respond(nil, errNodeDown)
		return
	}
	req := m.Payload.(readReq)
	respond(readResp{Vers: cloneVersions(n.store[req.Key])}, nil)
}

// onOp dispatches a client operation to the coordinator logic.
func (n *Node) onOp(m simnet.Message, respond func(interface{}, error)) {
	if !n.alive {
		respond(nil, errNodeDown)
		return
	}
	req := m.Payload.(opReq)
	switch req.Op {
	case "put":
		n.coordPut(req.Key, req.Val, false, respond)
	case "del":
		n.coordPut(req.Key, "", true, respond)
	default:
		n.coordGet(req.Key, respond)
	}
}

func cloneVersions(set []Version) []Version {
	if len(set) == 0 {
		return nil
	}
	out := make([]Version, len(set))
	for i, v := range set {
		out[i] = v.clone()
	}
	return out
}

func sortedTimeKeys(m map[string]des.Time) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedVerKeys(m map[string][]Version) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedBatchKeys(m map[string][]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func containsStr(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
