package dyn

// Property tests for the two algebraic cores of the package: vector-clock
// dominance (what keeps concurrent writes as siblings and lets tombstones
// win) and consistent-hash preference lists (what makes quorum overlap
// hold across membership changes).

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// qvc is a quick generator for small vector clocks over the four-node
// universe the workloads use. Small counters make equal and comparable
// clocks common enough that the implication properties are exercised on
// their non-vacuous side.
type qvc VClock

func (qvc) Generate(r *rand.Rand, _ int) reflect.Value {
	vc := VClock{}
	for _, node := range []string{"dyn1", "dyn2", "dyn3", "dyn4"} {
		if n := r.Intn(4); n > 0 {
			vc[node] = n
		}
	}
	return reflect.ValueOf(qvc(vc))
}

func TestVClockMergeCommutative(t *testing.T) {
	prop := func(a, b qvc) bool {
		ab := VClock(a).Merge(VClock(b))
		ba := VClock(b).Merge(VClock(a))
		return ab.Equal(ba)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVClockMergeDominatesBoth(t *testing.T) {
	prop := func(a, b qvc) bool {
		m := VClock(a).Merge(VClock(b))
		return m.Descends(VClock(a)) && m.Descends(VClock(b))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVClockDominanceAntisymmetric(t *testing.T) {
	prop := func(a, b qvc) bool {
		va, vb := VClock(a), VClock(b)
		if va.Descends(vb) && vb.Descends(va) {
			return va.Equal(vb)
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestVClockConcurrentKeepsSiblings: folding two concurrent versions into
// a set keeps both; folding a dominated version drops it.
func TestVClockConcurrentKeepsSiblings(t *testing.T) {
	prop := func(a, b qvc) bool {
		va, vb := VClock(a), VClock(b)
		set := addVersion(nil, Version{Val: "x", VC: va.Copy()})
		set = addVersion(set, Version{Val: "y", VC: vb.Copy()})
		switch {
		case va.Concurrent(vb):
			return len(set) == 2
		case va.Equal(vb):
			return len(set) == 1 && set[0].Val == "x"
		case vb.Descends(va):
			return len(set) == 1 && set[0].Val == "y"
		default: // va strictly dominates vb
			return len(set) == 1 && set[0].Val == "x"
		}
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// ringPool is the member universe the ring properties draw from.
var ringPool = []string{"m1", "m2", "m3", "m4", "m5", "m6", "m7", "m8"}

// qring is a quick generator for a random membership subset (size ≥ 3)
// and a random key.
type qring struct {
	members []string
	key     string
}

func (qring) Generate(r *rand.Rand, _ int) reflect.Value {
	size := 3 + r.Intn(len(ringPool)-2)
	perm := r.Perm(len(ringPool))
	members := make([]string, size)
	for i := 0; i < size; i++ {
		members[i] = ringPool[perm[i]]
	}
	return reflect.ValueOf(qring{members: members, key: fmt.Sprintf("key-%d", r.Intn(1000))})
}

// TestRingPreferenceListDistinctOwners: every key is owned by exactly
// min(n, |members|) distinct members.
func TestRingPreferenceListDistinctOwners(t *testing.T) {
	prop := func(q qring, nRaw uint8) bool {
		n := 1 + int(nRaw)%4
		ring := NewRing(1, q.members, 16)
		pref := ring.PreferenceList(q.key, n)
		want := n
		if want > len(q.members) {
			want = len(q.members)
		}
		if len(pref) != want {
			return false
		}
		seen := map[string]bool{}
		for _, owner := range pref {
			if seen[owner] || !ring.Contains(owner) {
				return false
			}
			seen[owner] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRingStableUnderUnrelatedRemove: removing a member outside a key's
// preference list leaves the preference list unchanged — the consistent-
// hashing locality guarantee that keeps rebalances proportional to the
// moved ranges.
func TestRingStableUnderUnrelatedRemove(t *testing.T) {
	prop := func(q qring) bool {
		const n = 2
		ring := NewRing(1, q.members, 16)
		pref := ring.PreferenceList(q.key, n)
		inPref := map[string]bool{}
		for _, owner := range pref {
			inPref[owner] = true
		}
		for _, victim := range q.members {
			if inPref[victim] {
				continue
			}
			var rest []string
			for _, m := range q.members {
				if m != victim {
					rest = append(rest, m)
				}
			}
			got := NewRing(2, rest, 16).PreferenceList(q.key, n)
			if !reflect.DeepEqual(got, pref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRingStableUnderAdd: adding a member changes a key's preference list
// by at most inserting the newcomer — every other owner was an owner
// before, and at most one old owner is displaced. This is the overlap
// property the f29 scenario's quorum reasoning rests on.
func TestRingStableUnderAdd(t *testing.T) {
	prop := func(q qring) bool {
		const n = 2
		newcomer := "m9"
		ring := NewRing(1, q.members, 16)
		pref := ring.PreferenceList(q.key, n)
		inPref := map[string]bool{}
		for _, owner := range pref {
			inPref[owner] = true
		}
		grown := NewRing(2, append(append([]string(nil), q.members...), newcomer), 16)
		got := grown.PreferenceList(q.key, n)
		overlap := 0
		for _, owner := range got {
			switch {
			case owner == newcomer:
			case inPref[owner]:
				overlap++
			default:
				return false // an old non-owner appeared from nowhere
			}
		}
		return overlap >= n-1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
