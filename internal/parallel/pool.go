package parallel

import (
	"fmt"
	"sync"
)

// Pool is the long-running counterpart to Map: a fixed set of workers
// draining an unbounded task queue. Map fits the evaluation grid — a known
// slice, results by index, then done — while the reproduction server needs
// workers that outlive any one batch: jobs arrive over HTTP for the life
// of the daemon, and shutdown must stop cleanly between tasks.
//
// The queue is deliberately unbounded. Admission control belongs to the
// caller (the server bounds QUEUED jobs and sheds load with 429 before
// ever submitting here), and an accepted task must never be silently
// dropped by the execution layer — a bounded channel would have to choose
// between blocking the submitter and losing the task.
//
// A panic inside a task is recovered and handed to the pool's onPanic
// hook, so one poisoned job cannot take down the daemon's whole fleet —
// the same isolation contract Map gives grid cells.
type Pool struct {
	onPanic func(recovered any)

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func()
	closed bool
	wg     sync.WaitGroup
}

// NewPool starts workers goroutines draining the pool's queue. workers <= 0
// means Workers(0) (one per CPU). onPanic receives the recovered value of
// any task that panicked; nil ignores panics after containing them.
func NewPool(workers int, onPanic func(recovered any)) *Pool {
	p := &Pool{onPanic: onPanic}
	p.cond = sync.NewCond(&p.mu)
	for w := 0; w < Workers(workers); w++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Submit enqueues a task for the next free worker and reports whether the
// pool accepted it (false after Shutdown).
func (p *Pool) Submit(task func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.queue = append(p.queue, task)
	p.cond.Signal()
	return true
}

// Queued returns the number of tasks waiting for a worker.
func (p *Pool) Queued() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// Shutdown stops the pool: no new tasks are accepted, tasks not yet
// started are discarded, and Shutdown returns once every in-flight task
// has finished. Discarding is safe by construction for the server — every
// queued task is journaled state that the next daemon start re-admits —
// and callers that need drain-to-empty semantics can simply wait for their
// own completion signals before calling Shutdown.
func (p *Pool) Shutdown() {
	p.mu.Lock()
	p.closed = true
	p.queue = nil
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// worker drains the queue until the pool closes.
func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		task := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()
		p.runIsolated(task)
	}
}

// runIsolated executes one task, containing any panic.
func (p *Pool) runIsolated(task func()) {
	defer func() {
		if r := recover(); r != nil && p.onPanic != nil {
			p.onPanic(fmt.Sprint(r))
		}
	}()
	task()
}
