package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEveryTask(t *testing.T) {
	p := NewPool(4, nil)
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if !p.Submit(func() { n.Add(1); wg.Done() }) {
			t.Fatal("open pool rejected a task")
		}
	}
	wg.Wait()
	p.Shutdown()
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers, nil)
	defer p.Shutdown()
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		p.Submit(func() {
			defer wg.Done()
			c := cur.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		})
	}
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent tasks, pool has %d workers", got, workers)
	}
}

func TestPoolIsolatesPanics(t *testing.T) {
	var panics atomic.Int64
	p := NewPool(2, func(any) { panics.Add(1) })
	var wg sync.WaitGroup
	var ok atomic.Int64
	for i := 0; i < 20; i++ {
		i := i
		wg.Add(1)
		p.Submit(func() {
			defer wg.Done()
			if i%4 == 0 {
				panic("poisoned job")
			}
			ok.Add(1)
		})
	}
	wg.Wait()
	p.Shutdown()
	if panics.Load() != 5 {
		t.Fatalf("panic hook fired %d times, want 5", panics.Load())
	}
	if ok.Load() != 15 {
		t.Fatalf("%d healthy tasks ran, want 15 — a panic killed a worker", ok.Load())
	}
}

func TestPoolShutdownDiscardsQueueWaitsForInflight(t *testing.T) {
	p := NewPool(1, nil)
	started := make(chan struct{})
	release := make(chan struct{})
	var finished atomic.Bool
	p.Submit(func() {
		close(started)
		<-release
		finished.Store(true)
	})
	<-started
	var ran atomic.Int64
	for i := 0; i < 10; i++ {
		p.Submit(func() { ran.Add(1) })
	}
	done := make(chan struct{})
	go func() { p.Shutdown(); close(done) }()
	select {
	case <-done:
		t.Fatal("Shutdown returned while a task was in flight")
	case <-time.After(10 * time.Millisecond):
	}
	close(release)
	<-done
	if !finished.Load() {
		t.Fatal("in-flight task did not finish before Shutdown returned")
	}
	if ran.Load() != 0 {
		t.Fatalf("%d queued tasks ran after Shutdown, want 0 (discarded)", ran.Load())
	}
	if p.Submit(func() {}) {
		t.Fatal("closed pool accepted a task")
	}
}
