// Package parallel is the deterministic worker pool behind the evaluation
// harness. Every experiment cell (failure × strategy/parameter) is a
// hermetic, seeded run, so the full evaluation grid is embarrassingly
// parallel; what must NOT vary with concurrency is the output. Map
// therefore assigns results by input index, not completion order, so a
// parallel run renders byte-identical tables to a serial one for a fixed
// seed (wall-clock measurements aside — those are never deterministic,
// even serially).
package parallel

import (
	"fmt"
	"runtime"
	"sync"
)

// Workers resolves a worker-count request: n > 0 is taken verbatim;
// anything else means one worker per available CPU (GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map applies f to every item on up to workers goroutines and returns the
// results in input order. workers <= 0 means Workers(0); workers == 1 runs
// serially on the calling goroutine and stops at the first error, exactly
// like the loop it replaces. In parallel mode every item is attempted and,
// if any fail, the error of the lowest-indexed failing item is returned
// (again: deterministic, independent of scheduling).
//
// f must be safe to call concurrently with itself; it receives the item's
// index so callers can derive per-cell seeds or labels without shared
// state.
//
// A panic inside f is recovered and reported as that item's error ("item i
// panicked: v"), subject to the same lowest-index rule, so one misbehaving
// cell cannot take down the whole grid; the other items' results are still
// computed and returned.
func Map[T, R any](workers int, items []T, f func(i int, item T) (R, error)) ([]R, error) {
	results := make([]R, len(items))
	if len(items) == 0 {
		return results, nil
	}
	workers = Workers(workers)
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i, item := range items {
			r, err := safeApply(f, i, item)
			if err != nil {
				return results, err
			}
			results[i] = r
		}
		return results, nil
	}

	errs := make([]error, len(items))
	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				r, err := safeApply(f, i, items[i])
				if err != nil {
					errs[i] = err
					continue
				}
				results[i] = r
			}
		}()
	}
	for i := range items {
		indices <- i
	}
	close(indices)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// safeApply calls f(i, item), converting a panic into an error.
func safeApply[T, R any](f func(i int, item T) (R, error), i int, item T) (r R, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("parallel: item %d panicked: %v", i, p)
		}
	}()
	return f(i, item)
}
