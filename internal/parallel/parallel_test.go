package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4)=%d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Fatalf("Workers(0)=%d want %d", got, want)
	}
	if got := Workers(-3); got != want {
		t.Fatalf("Workers(-3)=%d want %d", got, want)
	}
}

// Results must land at their input index regardless of completion order.
func TestMapStableOrdering(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 8, 100} {
		out, err := Map(workers, items, func(i, item int) (string, error) {
			if item%7 == 0 {
				time.Sleep(time.Millisecond) // scramble completion order
			}
			return fmt.Sprintf("%d:%d", i, item*2), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range items {
			if want := fmt.Sprintf("%d:%d", i, i*2); out[i] != want {
				t.Fatalf("workers=%d out[%d]=%q want %q", workers, i, out[i], want)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(8, nil, func(i, item int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty: out=%v err=%v", out, err)
	}
}

// In parallel mode the reported error must be the lowest-indexed one, so
// failures are deterministic under concurrency too.
func TestMapLowestIndexError(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for trial := 0; trial < 10; trial++ {
		_, err := Map(4, items, func(i, item int) (int, error) {
			if i >= 3 {
				return 0, fmt.Errorf("fail-%d", i)
			}
			return item, nil
		})
		if err == nil || err.Error() != "fail-3" {
			t.Fatalf("trial %d: err=%v want fail-3", trial, err)
		}
	}
}

// Serial mode reproduces the plain loop: it stops at the first error.
func TestMapSerialStopsEarly(t *testing.T) {
	var calls atomic.Int32
	boom := errors.New("boom")
	_, err := Map(1, []int{0, 1, 2, 3}, func(i, item int) (int, error) {
		calls.Add(1)
		if i == 1 {
			return 0, boom
		}
		return item, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("serial mode made %d calls, want 2", got)
	}
}

// All items are processed exactly once even with more workers than items.
func TestMapEachItemOnce(t *testing.T) {
	counts := make([]atomic.Int32, 10)
	_, err := Map(32, make([]struct{}, len(counts)), func(i int, _ struct{}) (int, error) {
		counts[i].Add(1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("item %d processed %d times", i, got)
		}
	}
}

// A panicking worker must not crash the process: the panic becomes the
// item's error (lowest failing index wins) and every other item's result
// survives.
func TestMapPanicIsolated(t *testing.T) {
	items := []int{10, 20, 30, 40, 50}
	results, err := Map(4, items, func(i, item int) (int, error) {
		if i == 2 {
			panic("worker bug")
		}
		return item * 2, nil
	})
	if err == nil || !strings.Contains(err.Error(), "item 2 panicked: worker bug") {
		t.Fatalf("err=%v, want item 2 panic error", err)
	}
	for _, i := range []int{0, 1, 3, 4} {
		if results[i] != items[i]*2 {
			t.Fatalf("item %d result lost: %d", i, results[i])
		}
	}
}

// With several panicking items the reported error is deterministic: the
// lowest failing index, same rule as plain errors.
func TestMapPanicLowestIndexWins(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		_, err := Map(8, make([]struct{}, 16), func(i int, _ struct{}) (struct{}, error) {
			if i == 3 || i == 11 {
				panic(i)
			}
			return struct{}{}, nil
		})
		if err == nil || !strings.Contains(err.Error(), "item 3 panicked") {
			t.Fatalf("trial %d: err=%v, want item 3", trial, err)
		}
	}
}

// Serial mode converts a panic to an error too, stopping at that item.
func TestMapSerialPanic(t *testing.T) {
	var calls atomic.Int32
	_, err := Map(1, []int{0, 1, 2}, func(i, item int) (int, error) {
		calls.Add(1)
		if i == 1 {
			panic("boom")
		}
		return item, nil
	})
	if err == nil || !strings.Contains(err.Error(), "item 1 panicked") {
		t.Fatalf("err=%v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("serial mode made %d calls, want 2", got)
	}
}
