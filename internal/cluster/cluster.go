// Package cluster wires one simulated run together: the DES kernel, run
// logger, fault-injection runtime, network and disk. Every explorer round
// (workflow steps 1 and 3) is one Execute call with a fresh Env, so rounds
// are hermetic and replayable.
package cluster

import (
	"context"
	"fmt"
	"strings"

	"anduril/internal/des"
	"anduril/internal/inject"
	"anduril/internal/logdiff"
	"anduril/internal/logging"
	"anduril/internal/simdisk"
	"anduril/internal/simnet"
)

// Env is the environment a target system runs in for one round.
type Env struct {
	Sim  *des.Sim
	Log  *logging.Log
	FI   *inject.Runtime
	Net  *simnet.Net
	Disk *simdisk.Disk

	nodes       map[string]NodeControl
	convergence func() Convergence
}

// Convergence is an eventually-consistent target's self-report of replica
// agreement: whether every replica currently agrees with the acknowledged
// client state, and the virtual time at which the current agreement began.
// Oracles judge it with oracle.ConvergedWithin — "the replicas converged,
// and did so before the bound" — instead of an immediate invariant check.
type Convergence struct {
	Tracked   bool     // a probe was registered for this run
	Converged bool     // replicas agree with the expected state at the end
	Since     des.Time // virtual time the current agreement began
}

// RegisterConvergence installs the run's convergence probe. Eventually-
// consistent targets call it during workload construction; the probe is
// read once when the round is snapshotted, so it must be cheap and must
// not mutate system state.
func (e *Env) RegisterConvergence(probe func() Convergence) { e.convergence = probe }

// NodeControl is how a target system exposes a node to crash/restart
// environment faults: Crash tears the node's runtime state down (stop
// its loops, drop in-memory state), Restart brings it back with
// whatever state survives a real process crash. The network down-state
// around the outage is managed by the environment; the controls only
// handle the system-level teardown and recovery.
type NodeControl struct {
	Crash   func()
	Restart func()
}

// RegisterNode registers the crash/restart controls for a named node.
// Workloads call it during construction; nodes without controls still
// crash (the environment toggles their network down-state) but keep
// their runtime loops, which models a network-isolated rather than a
// killed process.
func (e *Env) RegisterNode(name string, ctl NodeControl) { e.nodes[name] = ctl }

// crashNode executes a crash environment fault at the cluster level:
// network down + system teardown now, restart + network up after the
// outage. It runs restart even without a registered control so the
// node's peers see it return.
func (e *Env) crashNode(node string, restartAfter des.Time) {
	ctl := e.nodes[node]
	e.Net.SetDown(node, true)
	if ctl.Crash != nil {
		ctl.Crash()
	}
	e.Sim.Post("env-restart", restartAfter, func() {
		e.Net.SetDown(node, false)
		if ctl.Restart != nil {
			ctl.Restart()
		}
		e.Log.Infof("env: node %s restarted", node)
	})
}

// NewEnv builds a fully-wired environment. seed drives all nondeterminism
// in the round; plan is the round's injection plan (nil = free run).
func NewEnv(seed int64, plan inject.Plan) *Env {
	sim := des.New(seed)
	lg := logging.New(sim)
	fi := inject.NewRuntime(plan)
	fi.LogPos = lg.Pos
	fi.Thread = func() string {
		if c := sim.Current(); c != "" {
			return c
		}
		return "main"
	}
	fi.Now = sim.Now
	fi.PathID = sim.CurPath
	fi.PathPrefix = sim.PathString
	if inject.PlanCarriesPath(plan) {
		// Replaying a path-addressed script needs no flag, mirroring the
		// env auto-enable: the plan itself proves paths are required.
		sim.EnablePathTracking()
	}
	net := simnet.New(sim, fi, lg, des.Millisecond, 4*des.Millisecond)
	disk := simdisk.New(fi, lg)
	env := &Env{Sim: sim, Log: lg, FI: fi, Net: net, Disk: disk, nodes: make(map[string]NodeControl)}
	net.OnCrash = env.crashNode
	return env
}

// ExecOption configures an Execute/TryExecute round beyond the core
// parameters.
type ExecOption func(*Env)

// WithEnvFaults opts the round into environment pseudo-sites: the
// network counts (and can inject at) crash/partition/drop/delay
// instances. Off by default so site-only rounds keep byte-identical
// traces; plans that already carry env instances enable counting on
// their own (see inject.PlanCarriesEnv), so this option matters for
// free runs and mixed windows.
func WithEnvFaults() ExecOption {
	return func(e *Env) { e.FI.EnvEnabled = true }
}

// WithPartialFaults opts the round into partial-failure pseudo-sites:
// the disk and network count (and can inject at) short-write,
// enospc-after, torn-rename, eintr and dup-deliver instances. Off by
// default so rounds without the partial class keep byte-identical
// traces; plans that already carry partial instances enable counting on
// their own (see inject.PlanCarriesPartial), so this option matters for
// free runs and mixed windows.
func WithPartialFaults() ExecOption {
	return func(e *Env) { e.FI.PartialEnabled = true }
}

// WithPathAddressing opts the round into path-sensitive injection
// addressing: the kernel tracks the distributed call tree, and every
// reach is assigned a canonical PathAddr string (inject.TraceEvent.Path).
// Off by default so occurrence-mode rounds do no path bookkeeping; plans
// that already carry path-addressed instances enable it on their own
// (see inject.PlanCarriesPath).
func WithPathAddressing() ExecOption {
	return func(e *Env) {
		e.Sim.EnablePathTracking()
		e.FI.PathEnabled = true
	}
}

// Result snapshots what a round produced: the observables the explorer
// feeds on and the state the oracle judges.
type Result struct {
	Env         *Env
	Entries     []logging.Entry   // the round's log
	Blocked     []string          // actors stuck on conditions at the end
	Injected    inject.TraceEvent // the injected reach, if any
	DidInject   bool
	Trace       []inject.TraceEvent // full reach trace (free runs only)
	Counts      map[string]int      // per-site dynamic occurrence counts
	Events      int                 // DES events executed
	Convergence Convergence         // replica-agreement probe (eventual-consistency targets)
}

// Workload builds a system inside env and schedules its driver; Execute
// then runs the simulation.
type Workload func(env *Env)

// Execute performs one round: construct env, run the workload to the
// horizon (or quiescence), snapshot the result.
func Execute(seed int64, plan inject.Plan, keepTrace bool, w Workload, horizon des.Time, opts ...ExecOption) *Result {
	env := NewEnv(seed, plan)
	env.FI.KeepTrace = keepTrace
	for _, opt := range opts {
		opt(env)
	}
	w(env)
	n := env.Sim.Run(horizon)
	return snapshot(env, n, keepTrace)
}

// Failure classes a TrialError carries, in the order the harness checks
// them: a panic out of the target system, a simulation that exhausted its
// event budget (livelock watchdog), an oracle that panicked judging the
// result, and an externally-cancelled run.
const (
	ClassPanic       = "panic"
	ClassEventBudget = "event-budget"
	ClassOracle      = "oracle"
	ClassInterrupted = "interrupted"
)

// TrialError describes why a trial could not produce a judgeable result.
// Class is one of the Class* constants; Detail is human-readable context
// (the panic value, the budget size, ...). Seed and Actor identify the
// subject: which trial seed produced the failure and — for panics —
// which actor (node thread) was executing when it fired, so the record
// pinpoints the node to blame.
type TrialError struct {
	Class  string
	Detail string
	Seed   int64
	Actor  string
}

func (e *TrialError) Error() string {
	msg := e.Class + ": " + e.Detail
	if e.Actor != "" {
		msg += " (actor " + e.Actor + ")"
	}
	if e.Seed != 0 {
		msg += fmt.Sprintf(" [seed %d]", e.Seed)
	}
	return msg
}

// TryExecute is Execute hardened for untrusted target systems: a panic in
// the workload or simulation is recovered into a *TrialError (class
// "panic") instead of killing the process, eventBudget > 0 bounds the
// number of DES events (class "event-budget" on exhaustion, so a
// livelocked workload cannot hang a round), and a cancelled ctx interrupts
// the simulation (class "interrupted"). On error the returned Result holds
// whatever the environment had produced so far — enough for diagnostics,
// not a judgeable round.
func TryExecute(ctx context.Context, seed int64, plan inject.Plan, keepTrace bool, w Workload, horizon des.Time, eventBudget int, opts ...ExecOption) (res *Result, err error) {
	env := NewEnv(seed, plan)
	env.FI.KeepTrace = keepTrace
	env.Sim.EventBudget = eventBudget
	for _, opt := range opts {
		opt(env)
	}
	if ctx != nil {
		env.Sim.Watch(ctx)
	}
	defer func() {
		if p := recover(); p != nil {
			res = snapshot(env, 0, keepTrace)
			// A panic unwinds past the kernel's current-actor reset, so
			// Current() still names the actor whose event panicked.
			err = &TrialError{Class: ClassPanic, Detail: fmt.Sprint(p), Seed: seed, Actor: env.Sim.Current()}
		}
	}()
	w(env)
	n := env.Sim.Run(horizon)
	res = snapshot(env, n, keepTrace)
	switch {
	case env.Sim.Interrupted():
		err = &TrialError{Class: ClassInterrupted, Detail: "run cancelled", Seed: seed}
	case env.Sim.BudgetExhausted():
		err = &TrialError{Class: ClassEventBudget, Detail: fmt.Sprintf("exceeded %d events", eventBudget), Seed: seed}
	}
	return res, err
}

// snapshot captures what a finished (or aborted) round produced.
func snapshot(env *Env, n int, keepTrace bool) *Result {
	res := &Result{
		Env:     env,
		Entries: env.Log.Entries(),
		Blocked: env.Sim.Blocked(),
		Counts:  env.FI.Counts(),
		Events:  n,
	}
	if keepTrace {
		res.Trace = env.FI.Trace()
	}
	if env.convergence != nil {
		res.Convergence = env.convergence()
	}
	if ev, ok := env.FI.Injected(); ok {
		res.Injected = ev
		res.DidInject = true
	}
	return res
}

// RenderLog renders the round's log as production-style text.
func (r *Result) RenderLog() string { return r.Env.Log.Render() }

// LogContains reports whether any log message (sanitized) contains the
// sanitized needle — the basic symptom check oracles use.
func (r *Result) LogContains(needle string) bool {
	sn := logdiff.Sanitize(needle)
	for _, e := range r.Entries {
		if strings.Contains(logdiff.Sanitize(e.Msg), sn) {
			return true
		}
	}
	return false
}

// LogContainsExact reports whether any log message contains the needle
// verbatim (digit-sensitive, unlike LogContains).
func (r *Result) LogContainsExact(needle string) bool {
	for _, e := range r.Entries {
		if strings.Contains(e.Msg, needle) {
			return true
		}
	}
	return false
}

// BlockedOn reports whether some actor is stuck on the given condition
// label — the "stack trace shows thread stuck at X" symptom.
func (r *Result) BlockedOn(label string) bool { return r.Env.Sim.BlockedOn(label) }
