package cluster

import (
	"context"
	"errors"
	"testing"

	"anduril/internal/des"
	"anduril/internal/inject"
)

// toyWorkload logs a few messages, reaches a fault site thrice and blocks
// a thread when the second reach is injected.
func toyWorkload(env *Env) {
	cond := des.NewCond(env.Sim, "toy-wait")
	env.Sim.Go("worker-1", func() {
		env.Log.Infof("worker starting")
		for i := 0; i < 3; i++ {
			if err := env.FI.Reach("toy.step", inject.IO); err != nil {
				env.Log.Errorf("step %d failed: %s", i, err)
				cond.Wait("worker-1", func() {})
				return
			}
			env.Log.Infof("step %d ok", i)
		}
		if err := env.Disk.Write("toy.save", "out/result", []byte("done")); err != nil {
			env.Log.Errorf("save failed: %s", err)
			return
		}
		env.Log.Infof("worker finished 42 steps")
	})
}

func TestExecuteFreeRun(t *testing.T) {
	r := Execute(1, nil, true, toyWorkload, des.Second)
	if r.DidInject {
		t.Fatal("free run injected")
	}
	if r.Counts["toy.step"] != 3 || r.Counts["toy.save"] != 1 {
		t.Fatalf("counts: %v", r.Counts)
	}
	if len(r.Trace) != 4 {
		t.Fatalf("trace: %d", len(r.Trace))
	}
	if len(r.Blocked) != 0 {
		t.Fatalf("blocked: %v", r.Blocked)
	}
	if !r.Env.Disk.Exists("out/result") {
		t.Fatal("disk state not visible")
	}
	if r.Events == 0 {
		t.Fatal("no events recorded")
	}
}

func TestExecuteWithInjection(t *testing.T) {
	r := Execute(1, inject.Exact(inject.Instance{Site: "toy.step", Occurrence: 2}), false, toyWorkload, des.Second)
	if !r.DidInject || r.Injected.Occurrence != 2 {
		t.Fatalf("injection: %+v", r.Injected)
	}
	if !r.BlockedOn("toy-wait") {
		t.Fatalf("worker should be blocked: %v", r.Blocked)
	}
	if r.Env.Disk.Exists("out/result") {
		t.Fatal("result written despite fault")
	}
	if len(r.Trace) != 0 {
		t.Fatal("trace kept with keepTrace=false")
	}
}

func TestLogContainsSanitized(t *testing.T) {
	r := Execute(1, nil, false, toyWorkload, des.Second)
	if !r.LogContains("worker finished 7 steps") {
		t.Fatal("digit-insensitive match failed")
	}
	if !r.LogContainsExact("worker finished 42 steps") {
		t.Fatal("exact match failed")
	}
	if r.LogContainsExact("worker finished 7 steps") {
		t.Fatal("exact match should be digit-sensitive")
	}
	if r.LogContains("no such message") {
		t.Fatal("bogus match")
	}
}

func TestRenderLogShape(t *testing.T) {
	r := Execute(1, nil, false, toyWorkload, des.Second)
	text := r.RenderLog()
	if len(text) == 0 {
		t.Fatal("empty render")
	}
	// Must parse back to the same number of entries.
	if got := len(r.Entries); got == 0 {
		t.Fatal("no entries")
	}
}

func TestEnvWiring(t *testing.T) {
	env := NewEnv(9, nil)
	if env.FI.Thread() != "main" {
		t.Fatalf("thread outside events: %q", env.FI.Thread())
	}
	var thread string
	env.Sim.Go("abc", func() { thread = env.FI.Thread() })
	env.Sim.Run(des.Second)
	if thread != "abc" {
		t.Fatalf("thread inside event: %q", thread)
	}
	if env.FI.LogPos() != 0 {
		t.Fatal("log pos should start at 0")
	}
	env.Log.Infof("x")
	if env.FI.LogPos() != 1 {
		t.Fatal("log pos not wired")
	}
}

// panicWorkload logs, then panics from inside a simulated event.
func panicWorkload(env *Env) {
	env.Sim.Go("worker-1", func() {
		env.Log.Infof("about to fail")
		panic("toy implementation bug")
	})
}

func TestTryExecuteRecoversPanic(t *testing.T) {
	res, err := TryExecute(context.Background(), 1, nil, true, panicWorkload, des.Second, 0)
	if err == nil {
		t.Fatal("panic not surfaced as error")
	}
	var te *TrialError
	if !errors.As(err, &te) || te.Class != ClassPanic {
		t.Fatalf("err=%v, want TrialError class %q", err, ClassPanic)
	}
	if res == nil {
		t.Fatal("no partial result returned")
	}
	if !res.LogContains("about to fail") {
		t.Fatal("partial result lost the pre-panic log")
	}
}

func TestTryExecuteEventBudget(t *testing.T) {
	livelock := func(env *Env) {
		var spin func()
		spin = func() { env.Sim.Go("spinner", spin) }
		env.Sim.Go("spinner", spin)
	}
	res, err := TryExecute(context.Background(), 1, nil, false, livelock, des.Second, 2000)
	var te *TrialError
	if !errors.As(err, &te) || te.Class != ClassEventBudget {
		t.Fatalf("err=%v, want TrialError class %q", err, ClassEventBudget)
	}
	if res.Events != 2000 {
		t.Fatalf("executed %d events, want the budget (2000)", res.Events)
	}
}

func TestTryExecuteCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	livelock := func(env *Env) {
		var spin func()
		spin = func() { env.Sim.Go("spinner", spin) }
		env.Sim.Go("spinner", spin)
	}
	_, err := TryExecute(ctx, 1, nil, false, livelock, des.Second, 0)
	var te *TrialError
	if !errors.As(err, &te) || te.Class != ClassInterrupted {
		t.Fatalf("err=%v, want TrialError class %q", err, ClassInterrupted)
	}
}

// TryExecute on a healthy workload matches Execute exactly.
func TestTryExecuteMatchesExecute(t *testing.T) {
	plan := inject.Exact(inject.Instance{Site: "toy.step", Occurrence: 2})
	want := Execute(7, plan, true, toyWorkload, des.Second)
	got, err := TryExecute(context.Background(), 7, plan, true, toyWorkload, des.Second, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got.RenderLog() != want.RenderLog() {
		t.Fatal("TryExecute log differs from Execute")
	}
	if got.DidInject != want.DidInject || got.Injected != want.Injected {
		t.Fatalf("injection differs: %+v vs %+v", got.Injected, want.Injected)
	}
	if got.Events != want.Events {
		t.Fatalf("events %d vs %d", got.Events, want.Events)
	}
}
