package des

// Cond is a condition variable for event-driven "blocking" code.
//
// Simulated threads cannot literally block (they are events), so waiting is
// expressed as a continuation: Wait(actor, label, fn) parks the actor until
// Signal or Broadcast schedules fn. While parked, the actor is registered
// with the Sim as blocked under the label, which the stuck-thread oracles
// inspect. This mirrors how the paper's HBase example hangs forever at
// waitForSafePoint: the condition is simply never signalled again.
type Cond struct {
	sim     *Sim
	label   string
	waiters []*waiter
}

type waiter struct {
	actor   string
	fn      func()
	timeout Timer // cancels the pending timeout event; zero is a no-op
	fired   bool
}

// NewCond creates a condition variable. The label names what waiters are
// blocked on (e.g. "waitForSafePoint") and is what oracles match against.
func NewCond(sim *Sim, label string) *Cond {
	return &Cond{sim: sim, label: label}
}

// Label returns the condition's label.
func (c *Cond) Label() string { return c.label }

// Waiters returns the number of parked actors.
func (c *Cond) Waiters() int { return len(c.waiters) }

// Wait parks the current step of actor until a Signal/Broadcast. fn runs on
// the actor when woken.
func (c *Cond) Wait(actor string, fn func()) {
	w := &waiter{actor: actor, fn: fn}
	c.waiters = append(c.waiters, w)
	c.sim.markBlocked(actor, c.label)
}

// WaitTimeout parks actor like Wait, but if the condition is not signalled
// within d, onTimeout runs instead (exactly one of fn/onTimeout runs).
func (c *Cond) WaitTimeout(actor string, d Time, fn, onTimeout func()) {
	w := &waiter{actor: actor, fn: fn}
	c.waiters = append(c.waiters, w)
	c.sim.markBlocked(actor, c.label)
	w.timeout = c.sim.ScheduleTimer(actor, d, func() {
		if w.fired {
			return
		}
		w.fired = true
		c.remove(w)
		c.sim.unmarkBlocked(actor)
		onTimeout()
	})
}

func (c *Cond) remove(w *waiter) {
	for i, x := range c.waiters {
		if x == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

func (c *Cond) wake(w *waiter) {
	if w.fired {
		return
	}
	w.fired = true
	w.timeout.Cancel()
	c.sim.unmarkBlocked(w.actor)
	c.sim.Go(w.actor, w.fn)
}

// Signal wakes the oldest waiter, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.wake(w)
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		c.wake(w)
	}
}
