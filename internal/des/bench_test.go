package des

import "testing"

// BenchmarkEventThroughput measures raw kernel event dispatch.
func BenchmarkEventThroughput(b *testing.B) {
	s := New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			s.Schedule("a", 10, tick)
		}
	}
	s.Schedule("a", 10, tick)
	b.ResetTimer()
	s.Run(Time(1) << 60)
	if n < b.N {
		b.Fatalf("ran %d of %d", n, b.N)
	}
}

// BenchmarkScheduleCancel measures timer churn (the retry/timeout pattern
// every simulated system leans on).
func BenchmarkScheduleCancel(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		cancel := s.Schedule("a", Time(i%1000), func() {})
		cancel()
	}
}

// BenchmarkCondSignal measures condition-variable wake-ups.
func BenchmarkCondSignal(b *testing.B) {
	s := New(1)
	c := NewCond(s, "bench")
	for i := 0; i < b.N; i++ {
		c.Wait("w", func() {})
		c.Signal()
		s.Run(Time(1) << 60)
	}
}
