// Package des implements a deterministic discrete-event simulation kernel.
//
// All five target distributed systems in this repository run on top of this
// kernel. A Sim owns a virtual clock and an event queue; "threads" of the
// simulated systems are named actors whose work is broken into events.
// Determinism: given the same seed and the same sequence of Schedule calls,
// a Sim executes events in exactly the same order, which makes every fault
// injection round replayable.
//
// The kernel is intentionally small: events, timers, condition variables
// (Cond) for blocking-style code, and per-actor bookkeeping used to detect
// stuck threads (a primary failure symptom in the paper's dataset).
package des

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Time is virtual time in nanoseconds since the start of the simulation.
type Time int64

// Millisecond and friends convert familiar durations into virtual time.
const (
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Duration converts a time.Duration into virtual Time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Event is a unit of work executed at a virtual instant on behalf of a
// named actor (the simulated thread).
type event struct {
	at     Time
	seq    uint64 // tie-breaker: FIFO among events at the same instant
	actor  string
	fn     func()
	cancel *bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Sim is a single deterministic simulation run.
type Sim struct {
	now     Time
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	current string // actor whose event is executing

	executed int
	stopped  bool

	// blocked tracks actors waiting on a Cond, keyed by actor name, with a
	// human-readable label of what they are waiting for. It backs the
	// "thread stuck at X" oracles.
	blocked map[string]string

	// crashed actors refuse further events; used to model process aborts.
	crashed map[string]bool

	// OnIdle, if non-nil, is invoked when the event queue drains before the
	// time horizon; it may schedule more work (e.g. a workload driver).
	OnIdle func()

	// EventBudget, when positive, caps how many events a single Run call may
	// execute. A zero-delay self-scheduling loop never advances virtual time,
	// so the horizon alone cannot stop it; the budget is the watchdog that
	// bounds such livelocks. Zero means unlimited.
	EventBudget int
	budgetHit   bool

	// watch, when non-nil, is polled during Run so a cancelled context can
	// interrupt a long simulation from outside virtual time.
	watch    context.Context
	watchHit bool
}

// New creates a simulation with a deterministic RNG seed.
func New(seed int64) *Sim {
	s := &Sim{
		rng:     rand.New(rand.NewSource(seed)),
		blocked: make(map[string]string),
		crashed: make(map[string]bool),
	}
	heap.Init(&s.queue)
	return s
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Current returns the name of the actor whose event is executing, or ""
// outside event dispatch.
func (s *Sim) Current() string { return s.current }

// Executed reports how many events have run so far.
func (s *Sim) Executed() int { return s.executed }

// Schedule runs fn on behalf of actor after delay. It returns a cancel
// function; cancelling an already-executed event is a no-op.
func (s *Sim) Schedule(actor string, delay Time, fn func()) (cancel func()) {
	if delay < 0 {
		delay = 0
	}
	flag := new(bool)
	s.seq++
	heap.Push(&s.queue, &event{at: s.now + delay, seq: s.seq, actor: actor, fn: fn, cancel: flag})
	return func() { *flag = true }
}

// Go is Schedule with zero delay: the actor's next runnable step.
func (s *Sim) Go(actor string, fn func()) { s.Schedule(actor, 0, fn) }

// Every schedules fn on actor repeatedly with the given period until the
// returned cancel function is called or the simulation ends.
func (s *Sim) Every(actor string, period Time, fn func()) (cancel func()) {
	stopped := new(bool)
	var tick func()
	tick = func() {
		if *stopped || s.crashed[actor] {
			return
		}
		fn()
		if !*stopped {
			s.Schedule(actor, period, tick)
		}
	}
	s.Schedule(actor, period, tick)
	return func() { *stopped = true }
}

// Jitter returns a random virtual duration in [0, max), for modelling
// scheduling and network variance deterministically.
func (s *Sim) Jitter(max Time) Time {
	if max <= 0 {
		return 0
	}
	return Time(s.rng.Int63n(int64(max)))
}

// Crash marks an actor as crashed: its pending and future events are
// silently discarded, modelling a process abort.
func (s *Sim) Crash(actor string) { s.crashed[actor] = true }

// Crashed reports whether the actor has been crashed.
func (s *Sim) Crashed(actor string) bool { return s.crashed[actor] }

// Stop ends the simulation after the current event.
func (s *Sim) Stop() { s.stopped = true }

// Watch installs a context polled during Run; once ctx is cancelled the
// current Run call returns after the in-flight event. Pass nil to clear.
func (s *Sim) Watch(ctx context.Context) { s.watch = ctx }

// BudgetExhausted reports whether a Run call stopped because it hit
// EventBudget rather than draining, reaching the horizon, or Stop.
func (s *Sim) BudgetExhausted() bool { return s.budgetHit }

// Interrupted reports whether a Run call stopped because the watched
// context was cancelled.
func (s *Sim) Interrupted() bool { return s.watchHit }

// Run executes events until the queue drains, the horizon passes, or Stop
// is called. It returns the number of events executed.
//
// Two watchdogs bound a Run call that would otherwise never end: when
// EventBudget is positive, Run stops after executing that many events
// (BudgetExhausted then reports true); when a Watch context is installed
// and cancelled, Run stops at the next poll (Interrupted reports true).
func (s *Sim) Run(horizon Time) int {
	start := s.executed
	for !s.stopped {
		if s.EventBudget > 0 && s.executed-start >= s.EventBudget {
			s.budgetHit = true
			break
		}
		// Poll the watch context cheaply: every 1024 events, not every event.
		if s.watch != nil && (s.executed-start)&1023 == 0 && s.watch.Err() != nil {
			s.watchHit = true
			break
		}
		if len(s.queue) == 0 {
			if s.OnIdle != nil {
				idle := s.OnIdle
				s.OnIdle = nil
				idle()
				if len(s.queue) > 0 {
					continue
				}
			}
			break
		}
		e := heap.Pop(&s.queue).(*event)
		if e.at > horizon {
			// Put it back; simulation paused at the horizon.
			heap.Push(&s.queue, e)
			break
		}
		if *e.cancel || s.crashed[e.actor] {
			continue
		}
		s.now = e.at
		s.current = e.actor
		e.fn()
		s.current = ""
		s.executed++
	}
	return s.executed - start
}

// markBlocked and unmark are used by Cond.
func (s *Sim) markBlocked(actor, label string) { s.blocked[actor] = label }
func (s *Sim) unmarkBlocked(actor string)      { delete(s.blocked, actor) }

// Blocked returns a sorted list of "actor: label" strings for actors that
// are currently waiting on a condition. A non-empty result after a run has
// quiesced is the kernel-level signal behind "thread stuck" symptoms.
func (s *Sim) Blocked() []string {
	out := make([]string, 0, len(s.blocked))
	for a, l := range s.blocked {
		out = append(out, fmt.Sprintf("%s: %s", a, l))
	}
	sort.Strings(out)
	return out
}

// BlockedOn reports whether any actor is blocked with the given label.
func (s *Sim) BlockedOn(label string) bool {
	for _, l := range s.blocked {
		if l == label {
			return true
		}
	}
	return false
}

// BlockedActor returns the label the given actor is blocked on, if any.
func (s *Sim) BlockedActor(actor string) (string, bool) {
	l, ok := s.blocked[actor]
	return l, ok
}
