// Package des implements a deterministic discrete-event simulation kernel.
//
// All five target distributed systems in this repository run on top of this
// kernel. A Sim owns a virtual clock and an event queue; "threads" of the
// simulated systems are named actors whose work is broken into events.
// Determinism: given the same seed and the same sequence of Schedule calls,
// a Sim executes events in exactly the same order, which makes every fault
// injection round replayable.
//
// The kernel is intentionally small: events, timers, condition variables
// (Cond) for blocking-style code, and per-actor bookkeeping used to detect
// stuck threads (a primary failure symptom in the paper's dataset).
package des

import (
	"context"
	"math/rand"
	"sort"
	"time"
)

// Time is virtual time in nanoseconds since the start of the simulation.
type Time int64

// Millisecond and friends convert familiar durations into virtual time.
const (
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Duration converts a time.Duration into virtual Time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Event is a unit of work executed at a virtual instant on behalf of a
// named actor (the simulated thread).
//
// Events are pooled: once executed (or skipped as cancelled/crashed) an
// event returns to the Sim's freelist and is reused by a later Schedule,
// so steady-state scheduling allocates nothing. gen guards stale cancel
// handles across reuse: each recycling bumps it, and a cancel closure
// captured under an older generation becomes a no-op.
type event struct {
	at       Time
	seq      uint64 // tie-breaker: FIFO among events at the same instant
	gen      uint64 // reuse generation, see above
	path     int32  // path-tree node of the event's call context (see path.go)
	actor    string
	fn       func()
	argFn    func(interface{}) // set instead of fn by PostArg/ScheduleArg
	arg      interface{}
	canceled bool
}

// eventQueue is a binary min-heap ordered by (at, seq). It is hand-rolled
// rather than container/heap because the dispatch loop pushes and pops an
// event per simulated step: the concrete sift functions avoid the
// interface-method calls the stdlib heap makes for every comparison and
// swap. (at, seq) is a strict total order — seq is unique — so the pop
// sequence is the fully sorted event order no matter how the heap was
// shaped, exactly as before.
type eventQueue []*event

// eventBefore is the dispatch order: time, then scheduling sequence.
func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(e *event) {
	h := append(*q, e)
	*q = h
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventBefore(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() *event {
	h := *q
	n := len(h) - 1
	top := h[0]
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	*q = h
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && eventBefore(h[r], h[l]) {
			m = r
		}
		if !eventBefore(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// Sim is a single deterministic simulation run.
type Sim struct {
	now     Time
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	current string // actor whose event is executing

	executed int
	stopped  bool

	// free is the event freelist: executed and cancelled events are
	// recycled here instead of being left to the garbage collector. The
	// pool is per-Sim, so runs stay hermetic and deterministic.
	free []*event

	// blocked tracks actors waiting on a Cond, keyed by actor name, with a
	// human-readable label of what they are waiting for. It backs the
	// "thread stuck at X" oracles.
	blocked map[string]string

	// blockedRender interns the rendered "actor: label" strings Blocked
	// returns, so oracle polls do not re-format them on every call.
	blockedRender map[string]map[string]string

	// crashed actors refuse further events; used to model process aborts.
	crashed map[string]bool

	// OnIdle, if non-nil, is invoked when the event queue drains before the
	// time horizon; it may schedule more work (e.g. a workload driver).
	OnIdle func()

	// EventBudget, when positive, caps how many events a single Run call may
	// execute. A zero-delay self-scheduling loop never advances virtual time,
	// so the horizon alone cannot stop it; the budget is the watchdog that
	// bounds such livelocks. Zero means unlimited.
	EventBudget int
	budgetHit   bool

	// watch, when non-nil, is polled during Run so a cancelled context can
	// interrupt a long simulation from outside virtual time.
	watch    context.Context
	watchHit bool

	// Path tracking (see path.go): off by default, so occurrence-mode
	// runs carry zero per-event path cost beyond copying one int32.
	pathTracking bool
	curPath      int32 // path node of the executing event, 0 outside dispatch
	pathNodes    []pathNode
	pathSeq      map[pathEdgeKey]int
}

// New creates a simulation with a deterministic RNG seed.
func New(seed int64) *Sim {
	s := &Sim{
		rng:           rand.New(rand.NewSource(seed)),
		blocked:       make(map[string]string),
		blockedRender: make(map[string]map[string]string),
		crashed:       make(map[string]bool),
	}
	return s
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Current returns the name of the actor whose event is executing, or ""
// outside event dispatch.
func (s *Sim) Current() string { return s.current }

// Executed reports how many events have run so far.
func (s *Sim) Executed() int { return s.executed }

// alloc takes an event from the freelist; when it is empty a whole chunk
// of events is carved from one backing array, so a run's event population
// costs a handful of allocations rather than one per event.
func (s *Sim) alloc() *event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	chunk := make([]event, 64)
	for i := range chunk[1:] {
		s.free = append(s.free, &chunk[1+i])
	}
	return &chunk[0]
}

// release recycles a finished event: the closure reference is dropped so
// the pool never pins captured state, and the generation bump turns any
// outstanding cancel handle for this event into a no-op.
func (s *Sim) release(e *event) {
	e.fn = nil
	e.argFn = nil
	e.arg = nil
	e.canceled = false
	e.gen++
	s.free = append(s.free, e)
}

// post enqueues one event, drawing from the freelist.
func (s *Sim) post(actor string, delay Time, fn func()) *event {
	if delay < 0 {
		delay = 0
	}
	e := s.alloc()
	e.at = s.now + delay
	s.seq++
	e.seq = s.seq
	e.path = s.curPath // inherit the poster's call context
	e.actor = actor
	e.fn = fn
	s.queue.push(e)
	return e
}

// Schedule runs fn on behalf of actor after delay. It returns a cancel
// function; cancelling an already-executed event is a no-op.
func (s *Sim) Schedule(actor string, delay Time, fn func()) (cancel func()) {
	t := s.ScheduleTimer(actor, delay, fn)
	return t.Cancel
}

// Timer is a cancellable handle to one scheduled event. It is a plain
// value — returning it allocates nothing, unlike Schedule's cancel
// closure — and the generation check makes Cancel on an executed (and
// possibly recycled) event a no-op. The zero Timer is a valid no-op.
type Timer struct {
	e   *event
	gen uint64
}

// Cancel marks the timer's event as cancelled if it has not executed yet.
func (t Timer) Cancel() {
	if t.e != nil && t.e.gen == t.gen {
		t.e.canceled = true
	}
}

// ScheduleTimer is Schedule returning a value-type handle instead of a
// cancel closure; hot paths that may cancel use it to avoid the per-call
// closure allocation.
func (s *Sim) ScheduleTimer(actor string, delay Time, fn func()) Timer {
	e := s.post(actor, delay, fn)
	return Timer{e: e, gen: e.gen}
}

// Post is Schedule without the cancel handle. Callers that never cancel
// (periodic ticks, message deliveries) use it so the scheduling hot path
// builds no cancel closure at all.
func (s *Sim) Post(actor string, delay Time, fn func()) { s.post(actor, delay, fn) }

// postArg enqueues an event that calls fn(arg) — the argument travels in
// the pooled event itself, so callers with per-event state (e.g. message
// deliveries) can pass a struct to a shared top-level function instead of
// building a fresh closure per event.
func (s *Sim) postArg(actor string, delay Time, fn func(interface{}), arg interface{}) *event {
	e := s.post(actor, delay, nil)
	e.argFn = fn
	e.arg = arg
	return e
}

// PostArg is Post for an argument-carrying event.
func (s *Sim) PostArg(actor string, delay Time, fn func(interface{}), arg interface{}) {
	s.postArg(actor, delay, fn, arg)
}

// ScheduleArg is ScheduleTimer for an argument-carrying event.
func (s *Sim) ScheduleArg(actor string, delay Time, fn func(interface{}), arg interface{}) Timer {
	e := s.postArg(actor, delay, fn, arg)
	return Timer{e: e, gen: e.gen}
}

// Go is Schedule with zero delay: the actor's next runnable step.
func (s *Sim) Go(actor string, fn func()) { s.post(actor, 0, fn) }

// Every schedules fn on actor repeatedly with the given period until the
// returned cancel function is called or the simulation ends.
func (s *Sim) Every(actor string, period Time, fn func()) (cancel func()) {
	ev := &everyState{s: s, actor: actor, period: period, fn: fn}
	s.postArg(actor, period, runEvery, ev)
	return ev.stop
}

// everyState carries a recurring timer through its argFn events: one
// allocation per Every call instead of a closure chain.
type everyState struct {
	s       *Sim
	actor   string
	period  Time
	fn      func()
	stopped bool
}

func (ev *everyState) stop() { ev.stopped = true }

func runEvery(x interface{}) {
	ev := x.(*everyState)
	if ev.stopped || ev.s.crashed[ev.actor] {
		return
	}
	ev.fn()
	if !ev.stopped {
		ev.s.postArg(ev.actor, ev.period, runEvery, ev)
	}
}

// Jitter returns a random virtual duration in [0, max), for modelling
// scheduling and network variance deterministically.
func (s *Sim) Jitter(max Time) Time {
	if max <= 0 {
		return 0
	}
	return Time(s.rng.Int63n(int64(max)))
}

// Crash marks an actor as crashed: its pending and future events are
// silently discarded, modelling a process abort.
func (s *Sim) Crash(actor string) { s.crashed[actor] = true }

// Crashed reports whether the actor has been crashed.
func (s *Sim) Crashed(actor string) bool { return s.crashed[actor] }

// Stop ends the simulation after the current event.
func (s *Sim) Stop() { s.stopped = true }

// Watch installs a context polled during Run; once ctx is cancelled the
// current Run call returns after the in-flight event. Pass nil to clear.
func (s *Sim) Watch(ctx context.Context) { s.watch = ctx }

// BudgetExhausted reports whether a Run call stopped because it hit
// EventBudget rather than draining, reaching the horizon, or Stop.
func (s *Sim) BudgetExhausted() bool { return s.budgetHit }

// Interrupted reports whether a Run call stopped because the watched
// context was cancelled.
func (s *Sim) Interrupted() bool { return s.watchHit }

// Run executes events until the queue drains, the horizon passes, or Stop
// is called. It returns the number of events executed.
//
// Two watchdogs bound a Run call that would otherwise never end: when
// EventBudget is positive, Run stops after executing that many events
// (BudgetExhausted then reports true); when a Watch context is installed
// and cancelled, Run stops at the next poll (Interrupted reports true).
// Both flags describe the current Run call only: each call clears them on
// entry, so a sim re-entered after a budget-exhausted or interrupted run
// (e.g. a crash/restart re-entry) reports fresh verdicts.
func (s *Sim) Run(horizon Time) int {
	s.budgetHit = false
	s.watchHit = false
	start := s.executed
	for !s.stopped {
		if s.EventBudget > 0 && s.executed-start >= s.EventBudget {
			s.budgetHit = true
			break
		}
		// Poll the watch context cheaply: every 1024 events, not every event.
		if s.watch != nil && (s.executed-start)&1023 == 0 && s.watch.Err() != nil {
			s.watchHit = true
			break
		}
		if len(s.queue) == 0 {
			if s.OnIdle != nil {
				idle := s.OnIdle
				s.OnIdle = nil
				idle()
				if len(s.queue) > 0 {
					continue
				}
			}
			break
		}
		e := s.queue.pop()
		if e.at > horizon {
			// Put it back; simulation paused at the horizon.
			s.queue.push(e)
			break
		}
		if e.canceled || s.crashed[e.actor] {
			s.release(e)
			continue
		}
		s.now = e.at
		s.current = e.actor
		s.curPath = e.path
		fn, argFn, arg := e.fn, e.argFn, e.arg
		s.release(e) // recycle before dispatch; the work was captured above
		if argFn != nil {
			argFn(arg)
		} else {
			fn()
		}
		s.current = ""
		s.curPath = 0
		s.executed++
	}
	return s.executed - start
}

// markBlocked and unmark are used by Cond.
func (s *Sim) markBlocked(actor, label string) { s.blocked[actor] = label }
func (s *Sim) unmarkBlocked(actor string)      { delete(s.blocked, actor) }

// renderBlocked interns the "actor: label" rendering of one blocked pair.
// Actors and labels come from small fixed sets, so after warmup every
// Blocked call serves cached strings instead of formatting fresh ones.
func (s *Sim) renderBlocked(actor, label string) string {
	byLabel := s.blockedRender[actor]
	if byLabel == nil {
		byLabel = make(map[string]string, 2)
		s.blockedRender[actor] = byLabel
	}
	r, ok := byLabel[label]
	if !ok {
		r = actor + ": " + label
		byLabel[label] = r
	}
	return r
}

// Blocked returns a sorted list of "actor: label" strings for actors that
// are currently waiting on a condition. A non-empty result after a run has
// quiesced is the kernel-level signal behind "thread stuck" symptoms.
//
// The returned slice is a fresh copy and is the caller's to keep; the
// strings themselves are interned and shared across calls, so callers
// must treat them as immutable (which Go strings are).
func (s *Sim) Blocked() []string {
	out := make([]string, 0, len(s.blocked))
	for a, l := range s.blocked {
		out = append(out, s.renderBlocked(a, l))
	}
	sort.Strings(out)
	return out
}

// BlockedOn reports whether any actor is blocked with the given label.
func (s *Sim) BlockedOn(label string) bool {
	for _, l := range s.blocked {
		if l == label {
			return true
		}
	}
	return false
}

// BlockedActor returns the label the given actor is blocked on, if any.
func (s *Sim) BlockedActor(actor string) (string, bool) {
	l, ok := s.blocked[actor]
	return l, ok
}
