// Distributed call-path tracking for path-sensitive injection
// addressing. When enabled, every event carries the id of a *path node*
// — its position in the distributed call tree. Posting an event inherits
// the poster's node (timer chains and local steps do not deepen the
// path); a message-send edge extends the tree with PathExtend, labelling
// the child with the sending operation's fault-site ID and a per-edge
// sequence number. The network layer restores a caller's node on RPC
// replies, so path depth reflects RPC nesting, not run length.
//
// Node ids are assigned in creation order, which is deterministic for a
// seeded run; only the canonical *strings* (stable across interleavings
// by construction) leave the simulation.
package des

import (
	"strconv"
	"strings"
)

// pathNode is one interior node of the call tree. str caches the
// canonical rendering of the full prefix up to this node, built lazily
// so runs only pay for the paths the injection runtime actually reads.
type pathNode struct {
	parent int32
	label  string
	seq    int
	str    string
}

// pathEdgeKey keys the per-(parent, label) sequence counters.
type pathEdgeKey struct {
	parent int32
	label  string
}

// EnablePathTracking switches path bookkeeping on for this run. It must
// be called before the workload starts; node 0 is the workload root.
func (s *Sim) EnablePathTracking() {
	if s.pathTracking {
		return
	}
	s.pathTracking = true
	s.pathNodes = []pathNode{{}}
	s.pathSeq = make(map[pathEdgeKey]int)
}

// PathTracking reports whether path bookkeeping is on.
func (s *Sim) PathTracking() bool { return s.pathTracking }

// CurPath returns the path node of the executing event (0 at the root or
// when tracking is off).
func (s *Sim) CurPath() int32 { return s.curPath }

// PathExtend creates a child node of the current context for one
// message-send edge and returns its id. Each call is a distinct edge
// instance: the sequence number counts sends of this label from this
// context. Returns 0 (root) when tracking is off.
func (s *Sim) PathExtend(label string) int32 {
	if !s.pathTracking {
		return 0
	}
	k := pathEdgeKey{s.curPath, label}
	s.pathSeq[k]++
	s.pathNodes = append(s.pathNodes, pathNode{parent: s.curPath, label: label, seq: s.pathSeq[k]})
	return int32(len(s.pathNodes) - 1)
}

// PathString renders the canonical prefix of a path node: the '>'-joined
// edge chain from the root, each edge "label" or "label[seq]" (seq
// omitted when 1). The root renders as "".
func (s *Sim) PathString(id int32) string {
	if id <= 0 || int(id) >= len(s.pathNodes) {
		return ""
	}
	n := &s.pathNodes[id]
	if n.str == "" {
		var b strings.Builder
		if p := s.PathString(n.parent); p != "" {
			b.WriteString(p)
			b.WriteByte('>')
		}
		b.WriteString(n.label)
		if n.seq != 1 {
			b.WriteByte('[')
			b.WriteString(strconv.Itoa(n.seq))
			b.WriteByte(']')
		}
		n.str = b.String()
	}
	return n.str
}

// PostArgPath is PostArg with an explicit path context for the new event
// instead of inheriting the dispatcher's current one. The network layer
// uses it to hand a message delivery the send edge's child node, and to
// restore the caller's node on an RPC reply.
func (s *Sim) PostArgPath(actor string, delay Time, fn func(interface{}), arg interface{}, path int32) {
	e := s.postArg(actor, delay, fn, arg)
	e.path = path
}
