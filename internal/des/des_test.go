package des

import (
	"context"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule("a", 30, func() { got = append(got, 3) })
	s.Schedule("a", 10, func() { got = append(got, 1) })
	s.Schedule("a", 20, func() { got = append(got, 2) })
	s.Run(Second)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if s.Now() != 30 {
		t.Fatalf("clock = %d, want 30", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule("a", 5, func() { got = append(got, i) })
	}
	s.Run(Second)
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated at %d: %v", i, got)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	ran := false
	cancel := s.Schedule("a", 10, func() { ran = true })
	cancel()
	s.Run(Second)
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestHorizonPausesAndResumes(t *testing.T) {
	s := New(1)
	ran := 0
	s.Schedule("a", 10, func() { ran++ })
	s.Schedule("a", 100, func() { ran++ })
	s.Run(50)
	if ran != 1 {
		t.Fatalf("ran=%d before horizon, want 1", ran)
	}
	s.Run(200)
	if ran != 2 {
		t.Fatalf("ran=%d after resume, want 2", ran)
	}
}

func TestEveryAndCancel(t *testing.T) {
	s := New(1)
	n := 0
	cancel := s.Every("ticker", 10, func() {
		n++
		if n == 5 {
			s.Stop()
		}
	})
	s.Run(Second)
	cancel()
	if n != 5 {
		t.Fatalf("ticks=%d, want 5", n)
	}
}

func TestCrashDiscardsEvents(t *testing.T) {
	s := New(1)
	ran := false
	s.Schedule("victim", 10, func() { ran = true })
	s.Schedule("killer", 5, func() { s.Crash("victim") })
	s.Run(Second)
	if ran {
		t.Fatal("crashed actor's event ran")
	}
	if !s.Crashed("victim") {
		t.Fatal("victim not marked crashed")
	}
}

func TestCurrentActor(t *testing.T) {
	s := New(1)
	var inside string
	s.Schedule("worker-1", 1, func() { inside = s.Current() })
	s.Run(Second)
	if inside != "worker-1" {
		t.Fatalf("Current()=%q inside event, want worker-1", inside)
	}
	if s.Current() != "" {
		t.Fatalf("Current()=%q outside event, want empty", s.Current())
	}
}

func TestCondSignalWakesFIFO(t *testing.T) {
	s := New(1)
	c := NewCond(s, "queue-ready")
	var woke []string
	s.Go("w1", func() { c.Wait("w1", func() { woke = append(woke, "w1") }) })
	s.Go("w2", func() { c.Wait("w2", func() { woke = append(woke, "w2") }) })
	s.Schedule("sig", 10, func() { c.Signal() })
	s.Schedule("sig", 20, func() { c.Signal() })
	s.Run(Second)
	if len(woke) != 2 || woke[0] != "w1" || woke[1] != "w2" {
		t.Fatalf("wake order: %v", woke)
	}
	if c.Waiters() != 0 {
		t.Fatalf("waiters left: %d", c.Waiters())
	}
}

func TestCondBlockedTracking(t *testing.T) {
	s := New(1)
	c := NewCond(s, "safe-point")
	s.Go("roller", func() { c.Wait("roller", func() {}) })
	s.Run(Second)
	if !s.BlockedOn("safe-point") {
		t.Fatal("expected roller blocked on safe-point")
	}
	if lbl, ok := s.BlockedActor("roller"); !ok || lbl != "safe-point" {
		t.Fatalf("BlockedActor=%q,%v", lbl, ok)
	}
	c.Broadcast()
	s.Run(Second)
	if s.BlockedOn("safe-point") {
		t.Fatal("still blocked after broadcast")
	}
}

func TestCondWaitTimeout(t *testing.T) {
	s := New(1)
	c := NewCond(s, "ack")
	var outcome string
	s.Go("client", func() {
		c.WaitTimeout("client", 100, func() { outcome = "signalled" }, func() { outcome = "timeout" })
	})
	s.Run(Second)
	if outcome != "timeout" {
		t.Fatalf("outcome=%q, want timeout", outcome)
	}

	s2 := New(1)
	c2 := NewCond(s2, "ack")
	outcome = ""
	fired := 0
	s2.Go("client", func() {
		c2.WaitTimeout("client", 100, func() { outcome = "signalled"; fired++ }, func() { outcome = "timeout"; fired++ })
	})
	s2.Schedule("server", 50, func() { c2.Signal() })
	s2.Run(Second)
	if outcome != "signalled" || fired != 1 {
		t.Fatalf("outcome=%q fired=%d, want signalled once", outcome, fired)
	}
}

func TestOnIdleDriver(t *testing.T) {
	s := New(1)
	ran := false
	s.OnIdle = func() { s.Go("driver", func() { ran = true }) }
	s.Run(Second)
	if !ran {
		t.Fatal("OnIdle work did not run")
	}
}

// Property: a Sim with the same seed and same schedule executes identically.
func TestDeterminismProperty(t *testing.T) {
	run := func(seed int64) []int64 {
		s := New(seed)
		var trace []int64
		for i := 0; i < 20; i++ {
			d := Time(s.Rand().Int63n(1000))
			s.Schedule("a", d, func() { trace = append(trace, int64(s.Now())) })
		}
		s.Run(Second)
		return trace
	}
	f := func(seed int64) bool {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: jitter is always within bounds.
func TestJitterBounds(t *testing.T) {
	s := New(42)
	f := func(max int16) bool {
		m := Time(max)
		j := s.Jitter(m)
		if m <= 0 {
			return j == 0
		}
		return j >= 0 && j < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// A zero-delay self-scheduling loop never advances virtual time, so the
// horizon cannot stop it — only the event budget can.
func TestEventBudgetBoundsLivelock(t *testing.T) {
	s := New(1)
	s.EventBudget = 500
	var spin func()
	spin = func() { s.Go("spinner", spin) }
	s.Go("spinner", spin)
	n := s.Run(Second)
	if n != 500 {
		t.Fatalf("executed %d events, want exactly the budget (500)", n)
	}
	if !s.BudgetExhausted() {
		t.Fatal("BudgetExhausted not reported")
	}
	if s.Now() != 0 {
		t.Fatalf("virtual clock advanced to %d during a zero-delay livelock", s.Now())
	}
}

// The budget is per-Run: a sim that finishes under budget never reports
// exhaustion, and the zero value means unlimited.
func TestEventBudgetUnderAndUnlimited(t *testing.T) {
	s := New(1)
	s.EventBudget = 100
	for i := 0; i < 10; i++ {
		s.Schedule("a", Time(i), func() {})
	}
	s.Run(Second)
	if s.BudgetExhausted() {
		t.Fatal("exhausted after 10 events with budget 100")
	}

	s2 := New(1)
	done := 0
	var spin func()
	spin = func() {
		done++
		if done < 5000 {
			s2.Go("spinner", spin)
		}
	}
	s2.Go("spinner", spin)
	s2.Run(Second)
	if s2.BudgetExhausted() {
		t.Fatal("zero budget must mean unlimited")
	}
	if done != 5000 {
		t.Fatalf("ran %d iterations, want 5000", done)
	}
}

// A cancelled watch context interrupts a run that would otherwise spin
// past any horizon.
func TestWatchContextInterrupts(t *testing.T) {
	s := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	s.Watch(ctx)
	n := 0
	var spin func()
	spin = func() {
		n++
		if n == 3000 {
			cancel()
		}
		s.Go("spinner", spin)
	}
	s.Go("spinner", spin)
	s.Run(Second)
	if !s.Interrupted() {
		t.Fatal("Interrupted not reported after cancel")
	}
	// The poll runs every 1024 events, so the run stops within one poll
	// interval of the cancellation.
	if n < 3000 || n > 3000+1024 {
		t.Fatalf("stopped after %d events, want within a poll interval of 3000", n)
	}
}

func TestWatchContextUncancelledIsHarmless(t *testing.T) {
	s := New(1)
	s.Watch(context.Background())
	ran := false
	s.Schedule("a", 10, func() { ran = true })
	s.Run(Second)
	if !ran || s.Interrupted() {
		t.Fatalf("ran=%v interrupted=%v, want true/false", ran, s.Interrupted())
	}
}

// A budget-exhausted or interrupted Run must not poison later Run calls on
// the same sim: crash/restart re-entry runs the sim again, and a stale
// BudgetExhausted/Interrupted verdict would falsely degrade the round.
func TestRunClearsWatchdogVerdicts(t *testing.T) {
	s := New(1)
	s.EventBudget = 100
	var spin func()
	spin = func() { s.Go("spinner", spin) }
	s.Go("spinner", spin)
	s.Run(Second)
	if !s.BudgetExhausted() {
		t.Fatal("first run: BudgetExhausted not reported")
	}
	// Second run: the queue holds only the livelock's next tick; crash the
	// spinner so the run drains immediately, well under budget.
	s.Crash("spinner")
	s.Schedule("a", 1, func() {})
	s.Run(Second)
	if s.BudgetExhausted() {
		t.Fatal("second run under budget still reports BudgetExhausted")
	}

	s2 := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	s2.Watch(ctx)
	cancel()
	s2.Schedule("a", 1, func() {})
	s2.Run(Second)
	if !s2.Interrupted() {
		t.Fatal("cancelled watch: Interrupted not reported")
	}
	s2.Watch(context.Background())
	s2.Schedule("a", 1, func() {})
	s2.Run(Second)
	if s2.Interrupted() {
		t.Fatal("second run with live watch still reports Interrupted")
	}
}

// The event freelist must preserve cancel semantics across reuse: a stale
// cancel handle from an executed event must not cancel the event struct's
// next occupant.
func TestStaleCancelAfterReuseIsNoOp(t *testing.T) {
	s := New(1)
	ran1, ran2 := false, false
	cancel1 := s.Schedule("a", 1, func() { ran1 = true })
	s.Run(Second)
	if !ran1 {
		t.Fatal("first event did not run")
	}
	// The event struct is recycled; this schedule reuses it.
	s.Schedule("a", 1, func() { ran2 = true })
	cancel1() // stale: must not touch the new occupant
	s.Run(Second)
	if !ran2 {
		t.Fatal("stale cancel handle cancelled a recycled event")
	}
}

// Steady-state scheduling must not allocate: after warmup every Post
// draws its event from the freelist.
func TestPostSteadyStateAllocs(t *testing.T) {
	s := New(1)
	fn := func() {}
	// Warm the pool.
	for i := 0; i < 64; i++ {
		s.Post("a", 1, fn)
	}
	s.Run(Second)
	allocs := testing.AllocsPerRun(100, func() {
		s.Post("a", 1, fn)
		s.Run(s.Now() + Second)
	})
	if allocs > 0 {
		t.Fatalf("steady-state Post+Run allocates %.1f objects per event, want 0", allocs)
	}
}
