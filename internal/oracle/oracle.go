// Package oracle implements user-defined failure oracles (§2, input 4).
//
// An oracle encapsulates the key failure symptoms: a specific log message,
// a thread stuck at a particular point (the stack-trace symptom), or an
// external state such as a missing or corrupted file. The explorer declares
// a failure reproduced exactly when the oracle is satisfied by a round's
// result.
package oracle

import (
	"fmt"
	"strings"

	"anduril/internal/cluster"
	"anduril/internal/des"
)

// Oracle judges whether a round reproduced the target failure.
type Oracle struct {
	Name  string
	Check func(*cluster.Result) bool
}

// Satisfied evaluates the oracle against a round result.
func (o Oracle) Satisfied(r *cluster.Result) bool { return o.Check(r) }

// LogContains is satisfied when the round's log contains the given message
// fragment (digit-insensitive, like the explorer's sanitizer).
func LogContains(fragment string) Oracle {
	return Oracle{
		Name:  fmt.Sprintf("log contains %q", fragment),
		Check: func(r *cluster.Result) bool { return r.LogContains(fragment) },
	}
}

// LogContainsExact is satisfied when the round's log contains the fragment
// verbatim (digit-sensitive; use when ids like "rs2" matter).
func LogContainsExact(fragment string) Oracle {
	return Oracle{
		Name:  fmt.Sprintf("log contains exactly %q", fragment),
		Check: func(r *cluster.Result) bool { return r.LogContainsExact(fragment) },
	}
}

// ThreadStuck is satisfied when some actor is blocked on the given
// condition label at the end of the run — the analog of "the stack trace
// shows the log roller stuck at waitForSafePoint".
func ThreadStuck(label string) Oracle {
	return Oracle{
		Name:  fmt.Sprintf("thread stuck at %q", label),
		Check: func(r *cluster.Result) bool { return r.BlockedOn(label) },
	}
}

// ActorStuck is satisfied when a specific actor is blocked on the label.
func ActorStuck(actor, label string) Oracle {
	return Oracle{
		Name: fmt.Sprintf("%s stuck at %q", actor, label),
		Check: func(r *cluster.Result) bool {
			l, ok := r.Env.Sim.BlockedActor(actor)
			return ok && l == label
		},
	}
}

// FileMissing is satisfied when the given path does not exist on the
// simulated disk — an external-state symptom (e.g. a lost checkpoint).
func FileMissing(path string) Oracle {
	return Oracle{
		Name:  fmt.Sprintf("file %q missing", path),
		Check: func(r *cluster.Result) bool { return !r.Env.Disk.Exists(path) },
	}
}

// FileExists is satisfied when the given path exists on the simulated disk
// (e.g. a corruption marker written by a verifier).
func FileExists(path string) Oracle {
	return Oracle{
		Name:  fmt.Sprintf("file %q exists", path),
		Check: func(r *cluster.Result) bool { return r.Env.Disk.Exists(path) },
	}
}

// ConvergedWithin is the eventual-consistency oracle: satisfied when the
// round's convergence probe reports that every replica agrees with the
// acknowledged client state and the agreement held from virtual time d or
// earlier. Eventually-consistent targets (internal/sys/dyn) register the
// probe via cluster.Env.RegisterConvergence; anti-entropy failures are
// expressed as Not(ConvergedWithin(bound)) — the system either never
// converged or only converged after the bound — rather than as an
// immediate invariant violation.
func ConvergedWithin(d des.Time) Oracle {
	return Oracle{
		Name: fmt.Sprintf("replicas converged within %v", d),
		Check: func(r *cluster.Result) bool {
			c := r.Convergence
			return c.Tracked && c.Converged && c.Since <= d
		},
	}
}

// Diverged is the complementary anti-entropy oracle: satisfied when the
// target registered a convergence probe and the replicas never agreed
// with the acknowledged client state by the end of the run. Unlike
// Not(ConvergedWithin(d)) it is indifferent to *when* agreement happened
// — only that it never did — which pins permanent divergence symptoms
// such as a resurrected delete.
func Diverged() Oracle {
	return Oracle{
		Name: "replicas diverged",
		Check: func(r *cluster.Result) bool {
			c := r.Convergence
			return c.Tracked && !c.Converged
		},
	}
}

// Predicate wraps an arbitrary check.
func Predicate(name string, check func(*cluster.Result) bool) Oracle {
	return Oracle{Name: name, Check: check}
}

// And is satisfied when all sub-oracles are.
func And(os ...Oracle) Oracle {
	names := make([]string, len(os))
	for i, o := range os {
		names[i] = o.Name
	}
	return Oracle{
		Name: strings.Join(names, " AND "),
		Check: func(r *cluster.Result) bool {
			for _, o := range os {
				if !o.Check(r) {
					return false
				}
			}
			return true
		},
	}
}

// Or is satisfied when any sub-oracle is.
func Or(os ...Oracle) Oracle {
	names := make([]string, len(os))
	for i, o := range os {
		names[i] = o.Name
	}
	return Oracle{
		Name: strings.Join(names, " OR "),
		Check: func(r *cluster.Result) bool {
			for _, o := range os {
				if o.Check(r) {
					return true
				}
			}
			return false
		},
	}
}

// Not inverts an oracle.
func Not(o Oracle) Oracle {
	return Oracle{
		Name:  "NOT " + o.Name,
		Check: func(r *cluster.Result) bool { return !o.Check(r) },
	}
}
