package oracle

import (
	"testing"

	"anduril/internal/cluster"
	"anduril/internal/des"
)

// result builds a cluster.Result with the given log lines, a blocked
// thread, and a disk file.
func result(t *testing.T) *cluster.Result {
	t.Helper()
	w := func(env *cluster.Env) {
		cond := des.NewCond(env.Sim, "wait-ack")
		env.Sim.Go("writer-1", func() {
			env.Log.Infof("wrote 120 bytes to segment")
			env.Log.Errorf("sync timed out after 30s")
			env.Disk.Write("t.save", "state/checkpoint", []byte("x"))
			cond.Wait("writer-1", func() {})
		})
	}
	return cluster.Execute(1, nil, false, w, des.Second)
}

func TestLogContainsOracle(t *testing.T) {
	r := result(t)
	if !LogContains("sync timed out after 99s").Satisfied(r) {
		t.Fatal("sanitized match failed")
	}
	if LogContains("never logged").Satisfied(r) {
		t.Fatal("bogus match")
	}
	if !LogContainsExact("sync timed out after 30s").Satisfied(r) {
		t.Fatal("exact match failed")
	}
	if LogContainsExact("sync timed out after 99s").Satisfied(r) {
		t.Fatal("exact should be digit-sensitive")
	}
}

func TestThreadStuckOracles(t *testing.T) {
	r := result(t)
	if !ThreadStuck("wait-ack").Satisfied(r) {
		t.Fatal("ThreadStuck failed")
	}
	if ThreadStuck("other-label").Satisfied(r) {
		t.Fatal("wrong label matched")
	}
	if !ActorStuck("writer-1", "wait-ack").Satisfied(r) {
		t.Fatal("ActorStuck failed")
	}
	if ActorStuck("writer-2", "wait-ack").Satisfied(r) {
		t.Fatal("wrong actor matched")
	}
}

func TestFileOracles(t *testing.T) {
	r := result(t)
	if !FileExists("state/checkpoint").Satisfied(r) {
		t.Fatal("FileExists failed")
	}
	if !FileMissing("state/other").Satisfied(r) {
		t.Fatal("FileMissing failed")
	}
	if FileMissing("state/checkpoint").Satisfied(r) {
		t.Fatal("FileMissing matched existing file")
	}
}

func TestCombinators(t *testing.T) {
	r := result(t)
	yes := LogContains("sync timed out")
	no := LogContains("never logged")
	if !And(yes, ThreadStuck("wait-ack")).Satisfied(r) {
		t.Fatal("And failed")
	}
	if And(yes, no).Satisfied(r) {
		t.Fatal("And with false branch matched")
	}
	if !Or(no, yes).Satisfied(r) {
		t.Fatal("Or failed")
	}
	if Or(no, no).Satisfied(r) {
		t.Fatal("Or all-false matched")
	}
	if !Not(no).Satisfied(r) {
		t.Fatal("Not failed")
	}
	if Not(yes).Satisfied(r) {
		t.Fatal("Not inverted wrong")
	}
	name := And(yes, no).Name
	if name == "" {
		t.Fatal("And name empty")
	}
}

func TestPredicate(t *testing.T) {
	r := result(t)
	p := Predicate("custom", func(res *cluster.Result) bool {
		return res.Env.Disk.Size("state/checkpoint") == 1
	})
	if !p.Satisfied(r) {
		t.Fatal("predicate failed")
	}
	if p.Name != "custom" {
		t.Fatalf("name: %q", p.Name)
	}
}
