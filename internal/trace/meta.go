package trace

import (
	"bytes"
	"encoding/json"
)

// LineMeta decodes the minimal identity of one JSONL trace line — its
// event type and round — without materializing the full Event. The
// server's crash recovery uses it to trim a journaled trace back to the
// round its surviving checkpoint names: the trace WAL flushes strictly
// before each checkpoint write, so after a kill the file may run AHEAD of
// the checkpoint (never behind), and the excess whole lines plus any torn
// final line are cut before the search resumes.
//
// ok is false for anything that is not a complete, well-formed event line:
// a torn tail from a mid-append kill, a blank line, or JSON without an
// event field.
func LineMeta(line []byte) (typ EventType, round int, ok bool) {
	line = bytes.TrimSpace(line)
	if len(line) == 0 {
		return "", 0, false
	}
	var m struct {
		Event EventType `json:"event"`
		Round int       `json:"round"`
	}
	if err := json.Unmarshal(line, &m); err != nil || m.Event == "" {
		return "", 0, false
	}
	return m.Event, m.Round, true
}
