package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// encoderCorpus covers every Event field, every omitempty boundary, the
// Float special forms, and the string-escaping corners (quotes, control
// bytes, HTML metacharacters, U+2028/U+2029, invalid UTF-8).
func encoderCorpus() []Event {
	return []Event{
		{},
		{Type: FreeRun, Target: "zk/f4", Strategy: "full-feedback", Seed: 1,
			LogLines: 71,
			Observables: []string{
				"Unexpected null datatree node restoring snapshot zk#/snapshot.#: NullPointerException",
				"",
			},
			Sites: []SiteCount{{Site: "zk.snap.write-body", Instances: 9}, {Site: "zk.snap.read", Instances: 0}}},
		{Type: RoundStart, Round: 3, Window: 4, RootRank: 2, Top: []SiteRank{
			{Site: "zk.snap.write-header", F: Float(math.Inf(1)), BestObs: "obs-a", Tried: 2},
			{Site: "zk.snap.write-body", F: 0, Tried: 0},
			{Site: "zk.sync.fsync-txnlog", F: -3.75, BestObs: "", Tried: 1},
		}},
		{Type: Decision, Round: 1, Candidates: []Candidate{
			{Site: "a.b", Occ: 1}, {Site: "a.b", Occ: 2}},
			CandidateCount: 54, Budget: 1},
		{Type: Injected, Round: 2, Site: "zk.snap.write-body", Occ: 3, Satisfied: true},
		{Type: EnvInjected, Round: 2, Site: "env.node.crash", Occ: 1,
			Class: "crash-restart", Subject: "zk1", Peer: "zk2", Dur: 250},
		{Type: WindowGrow, Round: 4, From: 4, To: 8, Clamped: true},
		{Type: WindowGrow, Round: 5, From: 8, To: 16, Clamped: false},
		{Type: Feedback, Round: 2, Missing: 2,
			Bumped: []ObsPriority{{Obs: "obs-a", Priority: 3}, {Obs: "", Priority: 0}},
			Deltas: []SiteDelta{
				{Site: "s1", Before: Float(math.Inf(-1)), After: 2.5},
				{Site: "s2", Before: 1e21, After: -0.0},
			}},
		{Type: Inconclusive, Round: 6, Class: "panic",
			Detail: `runtime error: index out of range [-1]`, Actor: "zk3-sync"},
		{Type: Outcome, Reproduced: true, Rounds: 7, Reason: ReasonReproduced, ScriptSeed: -42},
		{Type: Outcome, Reproduced: false, Reason: ReasonRoundCap},
		// String-escaping corners.
		{Type: "esc", Site: "quote\" backslash\\ tab\t newline\n cr\r"},
		{Type: "esc", Site: "\b\f\x00\x01\x1f\x7f"},
		{Type: "esc", Site: "<script>&amp;</script>"},
		{Type: "esc", Site: "line\u2028sep\u2029end"},
		{Type: "esc", Site: "bad utf8 \xff\xfe mid\x80dle", Detail: strings.Repeat("é", 3)},
		{Type: "esc", Site: "ünïcödé 日本語 🦆"},
	}
}

// TestAppendEventMatchesJSON is the byte-identity contract of the
// hand-rolled encoder: for every corpus event, AppendEvent must produce
// exactly the bytes of encoding/json.Marshal.
func TestAppendEventMatchesJSON(t *testing.T) {
	for i, ev := range encoderCorpus() {
		want, err := json.Marshal(&ev)
		if err != nil {
			t.Fatalf("event %d: json.Marshal: %v", i, err)
		}
		got := AppendEvent(nil, &ev)
		if !bytes.Equal(got, want) {
			t.Errorf("event %d: encoding mismatch\n got: %s\nwant: %s", i, got, want)
		}
	}
}

// TestAppendEventMatchesJSONProperty fuzzes the equivalence over random
// events: any event encoding/json accepts must encode identically.
func TestAppendEventMatchesJSONProperty(t *testing.T) {
	f := func(ev Event) bool {
		want, err := json.Marshal(&ev)
		if err != nil {
			return true // e.g. NaN priorities — out of contract
		}
		got := AppendEvent(nil, &ev)
		if !bytes.Equal(got, want) {
			t.Logf(" got: %s", got)
			t.Logf("want: %s", want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestWriterMatchesJSONEncoder pins the whole Writer stream — including
// line framing — against a json.Encoder writing the same events.
func TestWriterMatchesJSONEncoder(t *testing.T) {
	events := encoderCorpus()
	var got, want bytes.Buffer
	w := NewWriter(&got)
	enc := json.NewEncoder(&want)
	for i := range events {
		w.Emit(&events[i])
		if err := enc.Encode(&events[i]); err != nil {
			t.Fatalf("event %d: json.Encoder: %v", i, err)
		}
	}
	if err := w.Err(); err != nil {
		t.Fatalf("Writer error: %v", err)
	}
	if got.String() != want.String() {
		t.Errorf("stream mismatch\n got: %q\nwant: %q", got.String(), want.String())
	}
}

// TestWriterEmitAllocs verifies the buffer actually gets reused: after the
// first emission grows the buffer, a steady-state Emit allocates nothing.
func TestWriterEmitAllocs(t *testing.T) {
	events := encoderCorpus()
	w := NewWriter(io.Discard)
	for i := range events {
		w.Emit(&events[i]) // warm the buffer up to the largest event
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := range events {
			w.Emit(&events[i])
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Emit allocated %.1f times per corpus pass, want 0", allocs)
	}
}
