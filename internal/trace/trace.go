// Package trace is a structured, deterministic event stream for one
// explorer search (core.Reproduce / core.ReproduceIterative call).
//
// The explorer's search state — observable priorities I_k, site priorities
// F_i, flexible-window growth, per-round injection decisions and feedback
// deltas — is otherwise invisible outside the final Report. A trace makes
// every decision explainable ("why did this run take N rounds?") and
// regression-testable: events carry only seed-determined data (no wall
// clock), so the stream for a fixed (Target, Options) is byte-identical
// run to run and across any worker count of the evaluation harness.
//
// Events are emitted through a Sink threaded via core.Options.Trace. The
// default is nil: the engine checks the sink before building an event, so
// a disabled trace costs nothing on the decision hot path. Writer emits
// JSONL; Memory accumulates events plus aggregate counters/histograms.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// EventType discriminates the events of one search.
type EventType string

// Event types, in the order they can appear in a stream.
const (
	// FreeRun reports workflow steps 1-2: the free run's log size, the
	// relevant observables diffed out of the failure log, and the candidate
	// fault sites with their dynamic instance counts.
	FreeRun EventType = "free_run"
	// RoundStart snapshots the ranked sites at the top of a round: the
	// top-K sites with their priorities F_i, best observable and tried
	// counts.
	RoundStart EventType = "round"
	// Decision records the injection decision of a round: the candidate
	// window handed to the runtime, its size and the injection budget.
	Decision EventType = "decision"
	// Injected records the reach at which the round's fault fired.
	Injected EventType = "injected"
	// EnvInjected records an environment-fault injection (node crash,
	// pairwise partition, message drop/delay) in place of Injected: the
	// same site/occ/satisfied fields plus the decoded class, subject
	// node(s) and virtual-time duration of the fault's stateful phase.
	EnvInjected EventType = "env_injected"
	// PartialInjected records a partial-failure injection (short write,
	// mid-append ENOSPC, torn rename, duplicated delivery, eintr) in
	// place of Injected: the same site/occ/satisfied fields plus the
	// decoded partial class, subject and — for duplicated deliveries —
	// the peer node.
	PartialInjected EventType = "partial_injected"
	// PairInjected records a combined-fault injection in place of
	// Injected: the pair pseudo-site and its occurrence, plus the two
	// decoded member instances in Members.
	PairInjected EventType = "pair_injected"
	// WindowGrow records an empty round: no candidate occurred, so the
	// flexible window doubled (clamped to the candidate-instance count).
	WindowGrow EventType = "window_grow"
	// Feedback records Algorithm 2 after an unsuccessful round: which
	// observable priorities I_k were adjusted and the resulting site
	// priority deltas.
	Feedback EventType = "feedback"
	// Inconclusive records a round whose trial could not be judged: the
	// target panicked, the event-budget watchdog fired, or the oracle
	// errored — twice, since the engine retries once under the next derived
	// seed before degrading. The round feeds nothing back; the search
	// continues.
	Inconclusive EventType = "inconclusive"
	// Outcome terminates the stream: reproduced or not, rounds used, and
	// which guard ended the search. An interrupted (killed or cancelled)
	// search emits NO outcome, so its trace is a resumable prefix of the
	// uninterrupted stream.
	Outcome EventType = "outcome"
)

// Outcome reasons.
const (
	ReasonReproduced = "reproduced"
	ReasonExhausted  = "fault-space-exhausted"
	ReasonRoundCap   = "round-cap"
	ReasonError      = "trial-error"
)

// Float is a JSON-safe float64: infinities (an unreachable site's F_i)
// marshal as the strings "+inf"/"-inf" instead of breaking encoding/json.
type Float float64

// MarshalJSON renders finite values with strconv's shortest form.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-inf"`), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// UnmarshalJSON accepts both the numeric and the "+inf"/"-inf" forms.
func (f *Float) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"+inf"`:
		*f = Float(math.Inf(1))
		return nil
	case `"-inf"`:
		*f = Float(math.Inf(-1))
		return nil
	}
	v, err := strconv.ParseFloat(string(data), 64)
	if err != nil {
		return err
	}
	*f = Float(v)
	return nil
}

// SiteCount pairs a fault site with its dynamic instance count (FreeRun).
type SiteCount struct {
	Site      string `json:"site"`
	Instances int    `json:"instances"`
}

// SiteRank is one row of a RoundStart top-K snapshot.
type SiteRank struct {
	Site    string `json:"site"`
	F       Float  `json:"f"`
	BestObs string `json:"best_obs,omitempty"`
	Tried   int    `json:"tried"`
}

// Candidate names one dynamic instance in a Decision window or a
// PairInjected member list: the (site, occurrence) pair plus — under
// path addressing — the canonical call-path string.
type Candidate struct {
	Site string `json:"site"`
	Occ  int    `json:"occ"`
	Path string `json:"path,omitempty"`
}

// ObsPriority reports one observable's feedback priority I_k after an
// adjustment.
type ObsPriority struct {
	Obs      string `json:"obs"`
	Priority int    `json:"priority"`
}

// SiteDelta reports one site's priority F_i before and after a feedback
// update.
type SiteDelta struct {
	Site   string `json:"site"`
	Before Float  `json:"before"`
	After  Float  `json:"after"`
}

// Event is one trace record. Exactly the fields of its Type are set; the
// rest stay zero and are omitted from the JSONL encoding. Field order is
// fixed by this declaration, which is what makes the encoding
// deterministic. Events never carry wall-clock measurements — everything
// here is a function of (Target, Options.Seed) only.
type Event struct {
	Type  EventType `json:"event"`
	Round int       `json:"round,omitempty"`

	// FreeRun.
	Target      string      `json:"target,omitempty"`
	Strategy    string      `json:"strategy,omitempty"`
	Seed        int64       `json:"seed,omitempty"`
	LogLines    int         `json:"log_lines,omitempty"`
	Observables []string    `json:"observables,omitempty"`
	Sites       []SiteCount `json:"sites,omitempty"`

	// RoundStart.
	Window   int        `json:"window,omitempty"`
	RootRank int        `json:"root_rank,omitempty"`
	Top      []SiteRank `json:"top,omitempty"`

	// Decision: the first Candidates entries of the window (capped at
	// MaxCandidates), plus the full count and the injection budget.
	Candidates     []Candidate `json:"candidates,omitempty"`
	CandidateCount int         `json:"candidate_count,omitempty"`
	Budget         int         `json:"budget,omitempty"`

	// Injected. Path carries the canonical call-path address under path
	// addressing; Members the decoded member instances of a PairInjected.
	Site      string      `json:"site,omitempty"`
	Occ       int         `json:"occ,omitempty"`
	Path      string      `json:"path,omitempty"`
	Satisfied bool        `json:"satisfied,omitempty"`
	Members   []Candidate `json:"members,omitempty"`

	// WindowGrow.
	From    int  `json:"from,omitempty"`
	To      int  `json:"to,omitempty"`
	Clamped bool `json:"clamped,omitempty"`

	// Feedback.
	Missing int           `json:"missing,omitempty"`
	Bumped  []ObsPriority `json:"bumped,omitempty"`
	Deltas  []SiteDelta   `json:"deltas,omitempty"`

	// Inconclusive: the failure class (cluster.Class*) and detail, plus
	// the subject identifiers of the failed trial — the seed it ran
	// under and, for panics, the actor (node thread) that was executing.
	// Class is shared with EnvInjected and PartialInjected, where it
	// carries the env or partial class.
	Class  string `json:"class,omitempty"`
	Detail string `json:"detail,omitempty"`
	Actor  string `json:"actor,omitempty"`

	// EnvInjected: subject node(s) and virtual-time duration. Subject and
	// Peer are shared with PartialInjected (subject site or channel
	// endpoints; no duration — partial faults have no stateful phase).
	Subject string `json:"subject,omitempty"`
	Peer    string `json:"peer,omitempty"`
	Dur     int64  `json:"dur,omitempty"`

	// Outcome.
	Reproduced bool   `json:"reproduced,omitempty"`
	Rounds     int    `json:"rounds,omitempty"`
	Reason     string `json:"reason,omitempty"`
	ScriptSeed int64  `json:"script_seed,omitempty"`
}

// MaxCandidates caps the Candidates listing of a Decision event. The
// window can grow to the whole fault space; listing every member would
// bloat traces without aiding explanation. CandidateCount always carries
// the full size.
const MaxCandidates = 10

// TopK is how many ranked sites a RoundStart snapshot carries.
const TopK = 8

// Sink receives the events of one search in emission order. Emit must not
// retain ev past the call (the engine may reuse it). Implementations need
// not be goroutine-safe: one search emits from one goroutine, and the
// evaluation harness gives every cell its own sink.
type Sink interface {
	Emit(ev *Event)
}

// Writer is a Sink encoding events as JSON Lines. Write errors are sticky
// and reported by Err, so the search itself never fails on a bad trace
// destination. Events are rendered by AppendEvent into a buffer the Writer
// reuses across emissions — a steady-state Emit allocates nothing.
type Writer struct {
	w   io.Writer
	buf []byte
	err error
}

// NewWriter returns a Writer sink emitting JSONL to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// Emit implements Sink.
func (s *Writer) Emit(ev *Event) {
	if s.err != nil {
		return
	}
	s.buf = AppendEvent(s.buf[:0], ev)
	s.buf = append(s.buf, '\n')
	_, s.err = s.w.Write(s.buf)
}

// Err returns the first encoding error, if any.
func (s *Writer) Err() error { return s.err }

// Memory is a Sink that retains every event and aggregates counters. The
// zero value is ready to use.
type Memory struct {
	Events []Event
}

// Emit implements Sink.
func (m *Memory) Emit(ev *Event) { m.Events = append(m.Events, *ev) }

// Stats are aggregate counters over one or more traces.
type Stats struct {
	Events       map[EventType]int // events per type
	Rounds       int               // RoundStart events
	Injections   int               // Injected events
	EmptyRound   int               // WindowGrow events (no candidate occurred)
	Inconclusive int               // Inconclusive events (unjudgeable trials)
	Reproduced   bool              // any Outcome with Reproduced

	WindowSizes map[int]int    // RoundStart window size -> rounds
	DecisionSz  map[int]int    // Decision candidate count -> rounds
	SiteTrials  map[string]int // injected site -> trials
}

// Stats aggregates the recorded events.
func (m *Memory) Stats() Stats { return AggregateStats(m.Events) }

// AggregateStats computes Stats over an event slice.
func AggregateStats(events []Event) Stats {
	s := Stats{
		Events:      map[EventType]int{},
		WindowSizes: map[int]int{},
		DecisionSz:  map[int]int{},
		SiteTrials:  map[string]int{},
	}
	for i := range events {
		ev := &events[i]
		s.Events[ev.Type]++
		switch ev.Type {
		case RoundStart:
			s.Rounds++
			s.WindowSizes[ev.Window]++
		case Decision:
			s.DecisionSz[ev.CandidateCount]++
		case Injected, EnvInjected, PartialInjected, PairInjected:
			s.Injections++
			s.SiteTrials[ev.Site]++
		case WindowGrow:
			s.EmptyRound++
		case Inconclusive:
			s.Inconclusive++
		case Outcome:
			if ev.Reproduced {
				s.Reproduced = true
			}
		}
	}
	return s
}

// ReadAll decodes a JSONL trace stream.
func ReadAll(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}

// Line renders an event's canonical JSONL form (no trailing newline).
func Line(ev *Event) string {
	return string(AppendEvent(nil, ev))
}

// Diff compares two event streams and describes the first maxDiffs
// divergences ("-" = only in a, "+" = only in b). An empty result means
// the streams are identical.
func Diff(a, b []Event, maxDiffs int) []string {
	if maxDiffs <= 0 {
		maxDiffs = 10
	}
	var out []string
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := 0; i < n && len(out) < maxDiffs; i++ {
		switch {
		case i >= len(a):
			out = append(out, fmt.Sprintf("event %d: + %s", i+1, Line(&b[i])))
		case i >= len(b):
			out = append(out, fmt.Sprintf("event %d: - %s", i+1, Line(&a[i])))
		default:
			la, lb := Line(&a[i]), Line(&b[i])
			if la != lb {
				out = append(out, fmt.Sprintf("event %d:\n- %s\n+ %s", i+1, la, lb))
			}
		}
	}
	return out
}
