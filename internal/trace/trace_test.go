package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{Type: FreeRun, Target: "f3", Strategy: "full-feedback", Seed: 1, LogLines: 120,
			Observables: []string{"elec: connection manager died"},
			Sites:       []SiteCount{{Site: "zk.elect.send", Instances: 12}}},
		{Type: RoundStart, Round: 1, Window: 10, RootRank: 2,
			Top: []SiteRank{{Site: "zk.elect.send", F: 3, BestObs: "elec: x", Tried: 0}}},
		{Type: Decision, Round: 1, Window: 10, CandidateCount: 4, Budget: 1,
			Candidates: []Candidate{{Site: "zk.elect.send", Occ: 2}}},
		{Type: Injected, Round: 1, Site: "zk.elect.send", Occ: 2, Satisfied: false},
		{Type: Feedback, Round: 1, Missing: 1,
			Bumped: []ObsPriority{{Obs: "elec: x", Priority: 1}},
			Deltas: []SiteDelta{{Site: "zk.elect.send", Before: 3, After: 4}}},
		{Type: RoundStart, Round: 2, Window: 10},
		{Type: Decision, Round: 2, Window: 10, CandidateCount: 3, Budget: 1},
		{Type: WindowGrow, Round: 2, From: 10, To: 12, Clamped: true},
		{Type: Outcome, Reproduced: true, Rounds: 2, Reason: ReasonReproduced,
			Site: "zk.elect.send", Occ: 5, ScriptSeed: 3},
	}
}

// A written stream must read back identically: the JSONL encoding is the
// interchange format of the golden tests and cmd/trace.
func TestWriterReadAllRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range events {
		w.Emit(&events[i])
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != len(events) {
		t.Fatalf("wrote %d lines, want %d", n, len(events))
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if Line(&got[i]) != Line(&events[i]) {
			t.Fatalf("event %d round-trip mismatch:\n got %s\nwant %s", i, Line(&got[i]), Line(&events[i]))
		}
	}
}

// Infinite priorities (an unreachable site's F_i) must survive the JSON
// encoding instead of failing it.
func TestFloatInfinityRoundTrip(t *testing.T) {
	ev := Event{Type: RoundStart, Round: 1, Window: 1, Top: []SiteRank{
		{Site: "a", F: Float(math.Inf(1))},
		{Site: "b", F: 2.5},
	}}
	line := Line(&ev)
	if !strings.Contains(line, `"+inf"`) {
		t.Fatalf("infinity not encoded: %s", line)
	}
	got, err := ReadAll(strings.NewReader(line + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(float64(got[0].Top[0].F), 1) {
		t.Fatalf("infinity not decoded: %v", got[0].Top[0].F)
	}
	if got[0].Top[1].F != 2.5 {
		t.Fatalf("finite value mangled: %v", got[0].Top[1].F)
	}
}

func TestMemoryStats(t *testing.T) {
	m := &Memory{}
	events := sampleEvents()
	for i := range events {
		m.Emit(&events[i])
	}
	s := m.Stats()
	if s.Rounds != 2 || s.Injections != 1 || s.EmptyRound != 1 || !s.Reproduced {
		t.Fatalf("stats: %+v", s)
	}
	if s.WindowSizes[10] != 2 {
		t.Fatalf("window histogram: %v", s.WindowSizes)
	}
	if s.DecisionSz[4] != 1 || s.DecisionSz[3] != 1 {
		t.Fatalf("decision histogram: %v", s.DecisionSz)
	}
	if s.SiteTrials["zk.elect.send"] != 1 {
		t.Fatalf("site trials: %v", s.SiteTrials)
	}
	if s.Events[Outcome] != 1 || s.Events[RoundStart] != 2 {
		t.Fatalf("event counts: %v", s.Events)
	}
}

func TestDiff(t *testing.T) {
	a := sampleEvents()
	b := sampleEvents()
	if d := Diff(a, b, 0); len(d) != 0 {
		t.Fatalf("identical streams diff: %v", d)
	}
	b[3].Occ = 99
	d := Diff(a, b, 0)
	if len(d) != 1 || !strings.Contains(d[0], "event 4") {
		t.Fatalf("diff: %v", d)
	}
	// Length mismatch surfaces as added/removed events.
	d = Diff(a, b[:2], 0)
	if len(d) == 0 || !strings.Contains(d[len(d)-1], "- ") {
		t.Fatalf("truncated diff: %v", d)
	}
	// maxDiffs caps the report.
	b2 := sampleEvents()
	for i := range b2 {
		b2[i].Round += 100
	}
	if d := Diff(a, b2, 3); len(d) != 3 {
		t.Fatalf("maxDiffs not honored: %d", len(d))
	}
}

func TestReadAllSkipsBlankAndRejectsGarbage(t *testing.T) {
	got, err := ReadAll(strings.NewReader("\n" + Line(&Event{Type: Outcome}) + "\n\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("blank lines: got %d events, err %v", len(got), err)
	}
	if _, err := ReadAll(strings.NewReader("{not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}
