package trace

import "testing"

func TestLineMeta(t *testing.T) {
	cases := []struct {
		name      string
		line      string
		wantType  EventType
		wantRound int
		wantOK    bool
	}{
		{"free run", `{"event":"free_run","target":"f4","seed":1}`, FreeRun, 0, true},
		{"round event", `{"event":"decision","round":17,"window":4}`, Decision, 17, true},
		{"outcome", `{"event":"outcome","reproduced":true,"rounds":9}`, Outcome, 0, true},
		{"trailing space", `{"event":"round","round":3}` + "\n", RoundStart, 3, true},
		{"torn tail", `{"event":"decision","rou`, "", 0, false},
		{"blank", "", "", 0, false},
		{"whitespace", "   \n", "", 0, false},
		{"json, no event", `{"round":4}`, "", 0, false},
		{"not json", "round 4", "", 0, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			typ, round, ok := LineMeta([]byte(c.line))
			if typ != c.wantType || round != c.wantRound || ok != c.wantOK {
				t.Fatalf("LineMeta(%q) = (%q, %d, %v), want (%q, %d, %v)",
					c.line, typ, round, ok, c.wantType, c.wantRound, c.wantOK)
			}
		})
	}
}

// Every event the encoder can emit must round-trip through LineMeta: the
// recovery trim walks real journal files line by line.
func TestLineMetaReadsAppendEventOutput(t *testing.T) {
	events := []Event{
		{Type: FreeRun, Target: "f9", Strategy: "full-feedback", Seed: 1},
		{Type: RoundStart, Round: 12, Window: 4},
		{Type: Inconclusive, Round: 30, Class: "panic"},
		{Type: Outcome, Reproduced: true, Rounds: 12, Reason: ReasonReproduced},
	}
	for _, ev := range events {
		line := AppendEvent(nil, &ev)
		typ, round, ok := LineMeta(line)
		if !ok {
			t.Fatalf("LineMeta rejected encoder output %s", line)
		}
		if typ != ev.Type || round != ev.Round {
			t.Fatalf("LineMeta(%s) = (%q, %d), want (%q, %d)", line, typ, round, ev.Type, ev.Round)
		}
	}
}
