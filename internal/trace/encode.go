package trace

import (
	"math"
	"strconv"
	"unicode/utf8"
)

// This file is a hand-rolled encoder for Event producing bytes identical to
// encoding/json.Marshal (with its default HTML escaping). Traces are emitted
// on every explorer round; reflection-driven Marshal allocates the output
// buffer, the reflect walk states, and the MarshalJSON shims on each event,
// while AppendEvent appends into a caller-owned buffer and allocates nothing.
//
// Byte identity is the contract, not an aspiration: golden traces, the
// resume-equivalence tests, and trace.Diff all compare JSONL lines verbatim,
// so TestAppendEventMatchesJSON locks the two encoders together. The field
// list below must mirror the Event struct declaration order exactly —
// adding a field to Event means adding it here in the same position.

// AppendEvent appends ev's canonical JSON object (no trailing newline) to
// dst and returns the extended buffer. The encoding is byte-identical to
// encoding/json.Marshal(ev), including field order, omitempty handling,
// Float's "+inf"/"-inf" forms, and HTML-escaped strings.
func AppendEvent(dst []byte, ev *Event) []byte {
	dst = append(dst, `{"event":`...)
	dst = appendJSONString(dst, string(ev.Type))
	if ev.Round != 0 {
		dst = appendIntField(dst, `,"round":`, int64(ev.Round))
	}

	// FreeRun.
	if ev.Target != "" {
		dst = appendStrField(dst, `,"target":`, ev.Target)
	}
	if ev.Strategy != "" {
		dst = appendStrField(dst, `,"strategy":`, ev.Strategy)
	}
	if ev.Seed != 0 {
		dst = appendIntField(dst, `,"seed":`, ev.Seed)
	}
	if ev.LogLines != 0 {
		dst = appendIntField(dst, `,"log_lines":`, int64(ev.LogLines))
	}
	if len(ev.Observables) > 0 {
		dst = append(dst, `,"observables":[`...)
		for i, obs := range ev.Observables {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, obs)
		}
		dst = append(dst, ']')
	}
	if len(ev.Sites) > 0 {
		dst = append(dst, `,"sites":[`...)
		for i := range ev.Sites {
			if i > 0 {
				dst = append(dst, ',')
			}
			sc := &ev.Sites[i]
			dst = appendStrField(dst, `{"site":`, sc.Site)
			dst = appendIntField(dst, `,"instances":`, int64(sc.Instances))
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}

	// RoundStart.
	if ev.Window != 0 {
		dst = appendIntField(dst, `,"window":`, int64(ev.Window))
	}
	if ev.RootRank != 0 {
		dst = appendIntField(dst, `,"root_rank":`, int64(ev.RootRank))
	}
	if len(ev.Top) > 0 {
		dst = append(dst, `,"top":[`...)
		for i := range ev.Top {
			if i > 0 {
				dst = append(dst, ',')
			}
			sr := &ev.Top[i]
			dst = appendStrField(dst, `{"site":`, sr.Site)
			dst = append(dst, `,"f":`...)
			dst = appendFloat(dst, sr.F)
			if sr.BestObs != "" {
				dst = appendStrField(dst, `,"best_obs":`, sr.BestObs)
			}
			dst = appendIntField(dst, `,"tried":`, int64(sr.Tried))
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}

	// Decision.
	if len(ev.Candidates) > 0 {
		dst = append(dst, `,"candidates":[`...)
		for i := range ev.Candidates {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendCandidate(dst, &ev.Candidates[i])
		}
		dst = append(dst, ']')
	}
	if ev.CandidateCount != 0 {
		dst = appendIntField(dst, `,"candidate_count":`, int64(ev.CandidateCount))
	}
	if ev.Budget != 0 {
		dst = appendIntField(dst, `,"budget":`, int64(ev.Budget))
	}

	// Injected.
	if ev.Site != "" {
		dst = appendStrField(dst, `,"site":`, ev.Site)
	}
	if ev.Occ != 0 {
		dst = appendIntField(dst, `,"occ":`, int64(ev.Occ))
	}
	if ev.Path != "" {
		dst = appendStrField(dst, `,"path":`, ev.Path)
	}
	if ev.Satisfied {
		dst = append(dst, `,"satisfied":true`...)
	}
	if len(ev.Members) > 0 {
		dst = append(dst, `,"members":[`...)
		for i := range ev.Members {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendCandidate(dst, &ev.Members[i])
		}
		dst = append(dst, ']')
	}

	// WindowGrow.
	if ev.From != 0 {
		dst = appendIntField(dst, `,"from":`, int64(ev.From))
	}
	if ev.To != 0 {
		dst = appendIntField(dst, `,"to":`, int64(ev.To))
	}
	if ev.Clamped {
		dst = append(dst, `,"clamped":true`...)
	}

	// Feedback.
	if ev.Missing != 0 {
		dst = appendIntField(dst, `,"missing":`, int64(ev.Missing))
	}
	if len(ev.Bumped) > 0 {
		dst = append(dst, `,"bumped":[`...)
		for i := range ev.Bumped {
			if i > 0 {
				dst = append(dst, ',')
			}
			op := &ev.Bumped[i]
			dst = appendStrField(dst, `{"obs":`, op.Obs)
			dst = appendIntField(dst, `,"priority":`, int64(op.Priority))
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	if len(ev.Deltas) > 0 {
		dst = append(dst, `,"deltas":[`...)
		for i := range ev.Deltas {
			if i > 0 {
				dst = append(dst, ',')
			}
			sd := &ev.Deltas[i]
			dst = appendStrField(dst, `{"site":`, sd.Site)
			dst = append(dst, `,"before":`...)
			dst = appendFloat(dst, sd.Before)
			dst = append(dst, `,"after":`...)
			dst = appendFloat(dst, sd.After)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}

	// Inconclusive / EnvInjected class.
	if ev.Class != "" {
		dst = appendStrField(dst, `,"class":`, ev.Class)
	}
	if ev.Detail != "" {
		dst = appendStrField(dst, `,"detail":`, ev.Detail)
	}
	if ev.Actor != "" {
		dst = appendStrField(dst, `,"actor":`, ev.Actor)
	}

	// EnvInjected.
	if ev.Subject != "" {
		dst = appendStrField(dst, `,"subject":`, ev.Subject)
	}
	if ev.Peer != "" {
		dst = appendStrField(dst, `,"peer":`, ev.Peer)
	}
	if ev.Dur != 0 {
		dst = appendIntField(dst, `,"dur":`, ev.Dur)
	}

	// Outcome.
	if ev.Reproduced {
		dst = append(dst, `,"reproduced":true`...)
	}
	if ev.Rounds != 0 {
		dst = appendIntField(dst, `,"rounds":`, int64(ev.Rounds))
	}
	if ev.Reason != "" {
		dst = appendStrField(dst, `,"reason":`, ev.Reason)
	}
	if ev.ScriptSeed != 0 {
		dst = appendIntField(dst, `,"script_seed":`, ev.ScriptSeed)
	}
	return append(dst, '}')
}

// appendCandidate encodes one Candidate object, shared by the Decision
// candidates array and the PairInjected members array.
func appendCandidate(dst []byte, c *Candidate) []byte {
	dst = appendStrField(dst, `{"site":`, c.Site)
	dst = appendIntField(dst, `,"occ":`, int64(c.Occ))
	if c.Path != "" {
		dst = appendStrField(dst, `,"path":`, c.Path)
	}
	return append(dst, '}')
}

func appendStrField(dst []byte, prefix, v string) []byte {
	dst = append(dst, prefix...)
	return appendJSONString(dst, v)
}

func appendIntField(dst []byte, prefix string, v int64) []byte {
	dst = append(dst, prefix...)
	return strconv.AppendInt(dst, v, 10)
}

// appendFloat renders a Float exactly as its MarshalJSON does (which
// encoding/json then passes through unchanged): "+inf"/"-inf" strings for
// infinities, strconv's shortest 'g' form otherwise — but appending in
// place rather than through the allocating MarshalJSON shim. NaN never
// occurs in priorities and is not supported (encoding/json rejects it too).
func appendFloat(dst []byte, f Float) []byte {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return append(dst, `"+inf"`...)
	case math.IsInf(v, -1):
		return append(dst, `"-inf"`...)
	}
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, byte-identical to
// encoding/json's default encoder: backslash escapes for \" \\ \b \f \n \r
// \t, \u00XX for other control bytes, HTML-safe escapes for < > &, the
// line separators U+2028/U+2029 escaped, and invalid UTF-8 bytes
// rendered as \ufffd.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
