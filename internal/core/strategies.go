package core

// The strategy registry. Every exploration algorithm — complete ANDURIL,
// the §8.3 ablation variants, and the §8.4 comparison systems — is an
// Explorer registered under its Strategy name; the engine dispatches
// through the registry and never switches on the strategy itself. External
// packages may register additional strategies with RegisterStrategy.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"anduril/internal/inject"
)

// Explorer is one exploration strategy. Explore drives the prepared search
// to completion: it is handed the Search after the free run and setup, and
// returns when the failure is reproduced, the fault space is exhausted, or
// the round cap is hit.
type Explorer interface {
	Explore(s *Search)
}

// QueueFunc adapts an enumerative strategy — one that fixes its whole
// injection queue up front — into an Explorer driven by the shared
// single-injection round loop.
type QueueFunc func(s *Search) []inject.Instance

// Explore builds the queue and enumerates it.
func (f QueueFunc) Explore(s *Search) { s.Enumerate(f(s)) }

var (
	registryMu    sync.RWMutex
	registry      = map[Strategy]Explorer{}
	registryOrder []Strategy
)

// RegisterStrategy registers an Explorer under a strategy name. It panics
// on a duplicate or empty name — registration happens at init time, where
// a bad registration is a programming error. Strategies() reports names in
// registration order.
func RegisterStrategy(name Strategy, impl Explorer) {
	if name == "" {
		panic("core: RegisterStrategy with empty strategy name")
	}
	if impl == nil {
		panic("core: RegisterStrategy with nil Explorer")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("core: strategy %q registered twice", name))
	}
	registry[name] = impl
	registryOrder = append(registryOrder, name)
}

// Strategies lists every registered strategy in registration order. The
// built-ins register in Table 2 column order: FullFeedback first, then the
// §8.3 ablations, then the §8.4 baselines.
func Strategies() []Strategy {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Strategy, len(registryOrder))
	copy(out, registryOrder)
	return out
}

// StrategyRegistered reports whether a strategy name is registered.
func StrategyRegistered(name Strategy) bool {
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, ok := registry[name]
	return ok
}

func lookupStrategy(name Strategy) (Explorer, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	impl, ok := registry[name]
	return impl, ok
}

// feedbackExplorer runs the Algorithm 2 loop at one feedbackSpec design
// point. The five feedback-family strategies are five specs.
type feedbackExplorer struct {
	spec feedbackSpec
}

func (f feedbackExplorer) Explore(s *Search) { s.e.feedbackLoop(f.spec) }

func init() {
	// Table 2 column order.
	RegisterStrategy(FullFeedback, feedbackExplorer{feedbackSpec{useFeedback: true, useTemporal: true}})
	RegisterStrategy(Exhaustive, QueueFunc(exhaustiveQueue))
	RegisterStrategy(SiteDistance, feedbackExplorer{feedbackSpec{}})
	RegisterStrategy(SiteDistanceLimit, feedbackExplorer{feedbackSpec{limited: true}})
	RegisterStrategy(SiteFeedback, feedbackExplorer{feedbackSpec{useFeedback: true, limited: true}})
	RegisterStrategy(MultiplyFeedback, feedbackExplorer{feedbackSpec{useFeedback: true, useTemporal: true, multiply: true}})
	RegisterStrategy(FATE, QueueFunc(fateQueue))
	RegisterStrategy(CrashTuner, QueueFunc(crashTunerQueue))
	RegisterStrategy(StackTrace, QueueFunc(stackTraceQueue))
	RegisterStrategy(Random, QueueFunc(randomQueue))
}

// enumerativeLoop drives the non-feedback strategies of §8.3/§8.4: each
// round injects the next candidate from a strategy-specific queue. The
// queue is a deterministic function of the free run, so a resumed loop
// rebuilds the identical queue and continues at the checkpointed round.
func (e *engine) enumerativeLoop(queue []inject.Instance) {
	for round := e.startRound + 1; round <= e.o.MaxRounds && round <= len(queue); round++ {
		if e.interrupted(round) {
			e.forceCheckpoint(round-1, 1)
			return
		}
		cand := queue[round-1]
		e.traceDecision(round, 1, []inject.Instance{cand})
		a := e.attemptRound(round, inject.Exact(cand), 0, 1, 0)
		if isInterrupted(a.err) {
			e.report.Interrupted = true
			e.forceCheckpoint(round-1, 1)
			return
		}
		rd := a.rd
		if a.err != nil {
			e.recordInconclusive(a, 1)
			continue
		}
		if rd.Injected != nil {
			e.traceInjected(round, *rd.Injected, a.sat)
			if a.sat {
				rd.Satisfied = true
				e.report.RoundLog = append(e.report.RoundLog, *rd)
				e.report.Rounds = round
				e.report.Reproduced = true
				e.report.Script = rd.Injected
				e.report.ScriptSeed = a.seed
				return
			}
		}
		e.report.RoundLog = append(e.report.RoundLog, *rd)
		e.report.Rounds = round
		e.maybeCheckpoint(round, 1)
	}
}

// exhaustiveQueue enumerates every instance of every causal-graph site in
// deterministic order — the §8.3 "exhaustive fault instance" variant. It
// still benefits from the causal graph (site pruning) but has no dynamic
// prioritization.
func exhaustiveQueue(s *Search) []inject.Instance {
	return s.Candidates()
}

// fateQueue models FATE's failure-ID exploration: it has no causal graph,
// so it covers every site exercised by the workload; failure IDs collapse
// repeated occurrences, so it explores breadth-first across sites (first
// occurrence of every site, then second of every site, ...).
func fateQueue(s *Search) []inject.Instance {
	counts := s.FreeCounts()
	siteIDs := make([]string, 0, len(counts))
	maxOcc := 0
	for site, c := range counts {
		siteIDs = append(siteIDs, site)
		if c > maxOcc {
			maxOcc = c
		}
	}
	sort.Strings(siteIDs)
	var out []inject.Instance
	for occ := 1; occ <= maxOcc; occ++ {
		for _, site := range siteIDs {
			if counts[site] >= occ {
				out = append(out, inject.Instance{Site: site, Occurrence: occ})
			}
		}
	}
	return out
}

// metaInfoTokens approximate CrashTuner's meta-info variables: sites in
// code regions that read or write node/task membership state.
var metaInfoTokens = []string{
	"election", "accept", "connect", "register", "announce", "join",
	"startup", "start", "recover", "lease", "assign", "claim", "rebalance",
}

// crashTunerQueue models CrashTuner: inject around meta-info access points
// only — the first and last occurrences of each matching site (crash-
// recovery windows), ordered by site.
func crashTunerQueue(s *Search) []inject.Instance {
	counts := s.FreeCounts()
	siteIDs := make([]string, 0, len(counts))
	for site := range counts {
		for _, tok := range metaInfoTokens {
			if strings.Contains(site, tok) {
				siteIDs = append(siteIDs, site)
				break
			}
		}
	}
	sort.Strings(siteIDs)
	var out []inject.Instance
	for _, site := range siteIDs {
		out = append(out, inject.Instance{Site: site, Occurrence: 1})
	}
	for _, site := range siteIDs {
		if c := counts[site]; c > 1 {
			out = append(out, inject.Instance{Site: site, Occurrence: c})
		}
	}
	for _, site := range siteIDs {
		if c := counts[site]; c > 2 {
			out = append(out, inject.Instance{Site: site, Occurrence: 2})
		}
	}
	return out
}

// stackTraceQueue models the stacktrace-injector of §8.4: it extracts the
// fault sites named in the failure log's error messages (our fault errors
// render as "Kind at site (occurrence n)", the analog of a logged stack
// trace) and injects only at those, every occurrence in order.
func stackTraceQueue(s *Search) []inject.Instance {
	counts := s.FreeCounts()
	mentioned := map[string]bool{}
	for _, entry := range s.FailureLog() {
		for site := range counts {
			if strings.Contains(entry.Msg, site) {
				mentioned[site] = true
			}
		}
	}
	siteIDs := make([]string, 0, len(mentioned))
	for site := range mentioned {
		siteIDs = append(siteIDs, site)
	}
	sort.Strings(siteIDs)
	var out []inject.Instance
	// Interleave occurrences across the mentioned sites so one very hot
	// site does not starve the others.
	maxOcc := 0
	for _, site := range siteIDs {
		if counts[site] > maxOcc {
			maxOcc = counts[site]
		}
	}
	for occ := 1; occ <= maxOcc; occ++ {
		for _, site := range siteIDs {
			if counts[site] >= occ {
				out = append(out, inject.Instance{Site: site, Occurrence: occ})
			}
		}
	}
	return out
}

// randomQueue models chaos-style random injection over the whole dynamic
// fault space, without replacement.
func randomQueue(s *Search) []inject.Instance {
	counts := s.FreeCounts()
	var all []inject.Instance
	siteIDs := make([]string, 0, len(counts))
	for site := range counts {
		siteIDs = append(siteIDs, site)
	}
	sort.Strings(siteIDs)
	for _, site := range siteIDs {
		for occ := 1; occ <= counts[site]; occ++ {
			all = append(all, inject.Instance{Site: site, Occurrence: occ})
		}
	}
	rng := rand.New(rand.NewSource(s.Options().Seed ^ 0x5eed))
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all
}
