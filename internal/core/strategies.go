package core

import (
	"math/rand"
	"sort"
	"strings"

	"anduril/internal/cluster"
	"anduril/internal/inject"
)

// enumerativeLoop drives the non-feedback strategies of §8.3/§8.4: each
// round injects the next candidate from a strategy-specific enumeration.
func (e *engine) enumerativeLoop(free *cluster.Result) {
	var queue []inject.Instance
	switch e.o.Strategy {
	case Exhaustive:
		queue = e.exhaustiveQueue()
	case FATE:
		queue = e.fateQueue(free)
	case CrashTuner:
		queue = e.crashTunerQueue(free)
	case StackTrace:
		queue = e.stackTraceQueue(free)
	case Random:
		queue = e.randomQueue(free)
	}

	for round := 1; round <= e.o.MaxRounds && round <= len(queue); round++ {
		cand := queue[round-1]
		e.traceDecision(round, 1, []inject.Instance{cand})
		res, rd := e.executeRound(round, inject.Exact(cand), 0, 1, 0)
		if rd.Injected != nil {
			satisfied := e.t.Oracle.Satisfied(res)
			e.traceInjected(round, *rd.Injected, satisfied)
			if satisfied {
				rd.Satisfied = true
				e.report.RoundLog = append(e.report.RoundLog, *rd)
				e.report.Rounds = round
				e.report.Reproduced = true
				e.report.Script = rd.Injected
				e.report.ScriptSeed = e.o.Seed + int64(round)
				return
			}
		}
		e.report.RoundLog = append(e.report.RoundLog, *rd)
		e.report.Rounds = round
	}
}

// exhaustiveQueue enumerates every instance of every causal-graph site in
// deterministic order — the §8.3 "exhaustive fault instance" variant. It
// still benefits from the causal graph (site pruning) but has no dynamic
// prioritization.
func (e *engine) exhaustiveQueue() []inject.Instance {
	var out []inject.Instance
	for _, s := range e.sites {
		for _, inst := range s.instances {
			out = append(out, inject.Instance{Site: s.id, Occurrence: inst.occ})
		}
	}
	return out
}

// fateQueue models FATE's failure-ID exploration: it has no causal graph,
// so it covers every site exercised by the workload; failure IDs collapse
// repeated occurrences, so it explores breadth-first across sites (first
// occurrence of every site, then second of every site, ...).
func (e *engine) fateQueue(free *cluster.Result) []inject.Instance {
	counts := free.Counts
	siteIDs := make([]string, 0, len(counts))
	maxOcc := 0
	for s, c := range counts {
		siteIDs = append(siteIDs, s)
		if c > maxOcc {
			maxOcc = c
		}
	}
	sort.Strings(siteIDs)
	var out []inject.Instance
	for occ := 1; occ <= maxOcc; occ++ {
		for _, s := range siteIDs {
			if counts[s] >= occ {
				out = append(out, inject.Instance{Site: s, Occurrence: occ})
			}
		}
	}
	return out
}

// metaInfoTokens approximate CrashTuner's meta-info variables: sites in
// code regions that read or write node/task membership state.
var metaInfoTokens = []string{
	"election", "accept", "connect", "register", "announce", "join",
	"startup", "start", "recover", "lease", "assign", "claim", "rebalance",
}

// crashTunerQueue models CrashTuner: inject around meta-info access points
// only — the first and last occurrences of each matching site (crash-
// recovery windows), ordered by site.
func (e *engine) crashTunerQueue(free *cluster.Result) []inject.Instance {
	counts := free.Counts
	siteIDs := make([]string, 0, len(counts))
	for s := range counts {
		for _, tok := range metaInfoTokens {
			if strings.Contains(s, tok) {
				siteIDs = append(siteIDs, s)
				break
			}
		}
	}
	sort.Strings(siteIDs)
	var out []inject.Instance
	for _, s := range siteIDs {
		out = append(out, inject.Instance{Site: s, Occurrence: 1})
	}
	for _, s := range siteIDs {
		if c := counts[s]; c > 1 {
			out = append(out, inject.Instance{Site: s, Occurrence: c})
		}
	}
	for _, s := range siteIDs {
		if c := counts[s]; c > 2 {
			out = append(out, inject.Instance{Site: s, Occurrence: 2})
		}
	}
	return out
}

// stackTraceQueue models the stacktrace-injector of §8.4: it extracts the
// fault sites named in the failure log's error messages (our fault errors
// render as "Kind at site (occurrence n)", the analog of a logged stack
// trace) and injects only at those, every occurrence in order.
func (e *engine) stackTraceQueue(free *cluster.Result) []inject.Instance {
	counts := free.Counts
	mentioned := map[string]bool{}
	for _, entry := range e.t.FailureLog {
		for site := range counts {
			if strings.Contains(entry.Msg, site) {
				mentioned[site] = true
			}
		}
	}
	siteIDs := make([]string, 0, len(mentioned))
	for s := range mentioned {
		siteIDs = append(siteIDs, s)
	}
	sort.Strings(siteIDs)
	var out []inject.Instance
	// Interleave occurrences across the mentioned sites so one very hot
	// site does not starve the others.
	maxOcc := 0
	for _, s := range siteIDs {
		if counts[s] > maxOcc {
			maxOcc = counts[s]
		}
	}
	for occ := 1; occ <= maxOcc; occ++ {
		for _, s := range siteIDs {
			if counts[s] >= occ {
				out = append(out, inject.Instance{Site: s, Occurrence: occ})
			}
		}
	}
	return out
}

// randomQueue models chaos-style random injection over the whole dynamic
// fault space, without replacement.
func (e *engine) randomQueue(free *cluster.Result) []inject.Instance {
	var all []inject.Instance
	siteIDs := make([]string, 0, len(free.Counts))
	for s := range free.Counts {
		siteIDs = append(siteIDs, s)
	}
	sort.Strings(siteIDs)
	for _, s := range siteIDs {
		for occ := 1; occ <= free.Counts[s]; occ++ {
			all = append(all, inject.Instance{Site: s, Occurrence: occ})
		}
	}
	rng := rand.New(rand.NewSource(e.o.Seed ^ 0x5eed))
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all
}
