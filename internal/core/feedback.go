package core

// The priority-driven exploration loop shared by ANDURIL and its ablation
// variants (§5.2, Algorithm 2): rank sites, inject the flexible window's
// best candidate, and feed unsuccessful rounds back into the observable
// priorities.

import (
	"time"

	"anduril/internal/cluster"
	"anduril/internal/inject"
	"anduril/internal/logdiff"
	"anduril/internal/trace"
)

// feedbackSpec fixes the design-point of one feedback-family strategy.
// The registered strategies differ only in these toggles; the ablation
// knobs in Options (TemporalByOrder etc.) still apply on top.
type feedbackSpec struct {
	useFeedback bool // apply Algorithm 2 priority adjustments
	useTemporal bool // rank instances by temporal distance T_{i,j,k}
	multiply    bool // §8.3 multiply-feedback pair ranking
	limited     bool // cap instances per site at Options.InstanceLimit
}

// feedbackLoop is the priority-driven exploration shared by ANDURIL and its
// ablation variants.
func (e *engine) feedbackLoop(spec feedbackSpec) {
	useFeedback := spec.useFeedback
	useTemporal := spec.useTemporal && !e.o.TemporalByOrder
	limit := 0
	if spec.limited {
		limit = e.o.InstanceLimit
	}
	rk := e.newRanker(useFeedback)

	window := e.o.Window
	if e.resume != nil {
		window = e.resumeWindow
	}
	for round := e.startRound + 1; round <= e.o.MaxRounds; round++ {
		if e.interrupted(round) {
			e.forceCheckpoint(round-1, window)
			return
		}
		initStart := time.Now()
		ranked := rk.ranked()
		rootRank := 0
		if e.o.TrackRank {
			rootRank = e.rootRank(ranked)
		}

		if e.tracing() {
			rank := rootRank
			if !e.o.TrackRank {
				rank = e.rootRank(ranked)
			}
			top := ranked
			if len(top) > trace.TopK {
				top = top[:trace.TopK]
			}
			snap := make([]trace.SiteRank, len(top))
			for i, s := range top {
				sr := trace.SiteRank{Site: s.id, F: trace.Float(s.f), Tried: s.tried.Len()}
				if s.bestObs >= 0 {
					sr.BestObs = obsLabel(e.obs[s.bestObs])
				}
				snap[i] = sr
			}
			e.emit(&trace.Event{
				Type: trace.RoundStart, Round: round, Window: window,
				RootRank: rank, Top: snap,
			})
		}

		var candidates []inject.Instance
		if spec.multiply {
			candidates = e.multiplyCandidates(ranked, window)
		} else {
			candidates = e.fillWindow(ranked, window, useTemporal, limit)
		}
		if len(candidates) == 0 {
			return // fault space exhausted: cannot reproduce (step 5)
		}
		initTime := time.Since(initStart)
		e.traceDecision(round, window, candidates)

		a := e.attemptRound(round, e.roundPlan(candidates), initTime, window, rootRank)
		if isInterrupted(a.err) {
			// Cancelled mid-trial: the round is not recorded. The forced
			// checkpoint persists the state through round-1, so resume
			// re-executes only this round.
			e.report.Interrupted = true
			e.forceCheckpoint(round-1, window)
			return
		}
		res, rd := a.res, a.rd
		if a.err != nil {
			e.recordInconclusive(a, window)
			continue
		}
		if rd.Injected == nil {
			// Nothing in the window occurred this round: widen it (§5.2.5).
			grown := e.growWindow(window)
			if e.tracing() {
				e.emit(&trace.Event{
					Type: trace.WindowGrow, Round: round, From: window, To: grown,
					Clamped: !e.o.FixedWindow && grown < window*2,
				})
			}
			window = grown
			e.report.RoundLog = append(e.report.RoundLog, *rd)
			e.report.Rounds = round
			e.maybeCheckpoint(round, window)
			continue
		}
		e.markTried(*rd.Injected)

		if a.sat {
			e.traceInjected(round, *rd.Injected, true)
			rd.Satisfied = true
			e.report.RoundLog = append(e.report.RoundLog, *rd)
			e.report.Rounds = round
			e.report.Reproduced = true
			e.report.Script = rd.Injected
			e.report.ScriptSeed = a.seed
			return
		}

		// Combined-log mitigation (§6): re-run the same injection under
		// extra seeds; crucial observables missing only probabilistically
		// then show up in at least one of the runs. A failed extra run is
		// simply dropped from the combined logs — the round's primary run
		// already succeeded, so the round stays judgeable.
		results := []*cluster.Result{res}
		for extra := 1; extra < e.o.RunsPerRound; extra++ {
			seed := e.o.Seed + int64(e.o.MaxRounds) + int64(round*e.o.RunsPerRound+extra)
			res2, err2 := e.trial(seed, e.bakedPlan(inject.Exact(*rd.Injected)), false)
			if err2 != nil {
				if isInterrupted(err2) {
					e.report.Interrupted = true
					return
				}
				continue
			}
			sat2, serr := e.safeSatisfied(res2)
			if serr != nil {
				continue
			}
			if sat2 {
				e.traceInjected(round, *rd.Injected, true)
				rd.Satisfied = true
				e.report.RoundLog = append(e.report.RoundLog, *rd)
				e.report.Rounds = round
				e.report.Reproduced = true
				e.report.Script = rd.Injected
				e.report.ScriptSeed = seed
				return
			}
			results = append(results, res2)
		}
		e.traceInjected(round, *rd.Injected, false)

		missing := e.missingIn(results)
		missingCount := 0
		var bumped []trace.ObsPriority
		for i, still := range missing {
			if still {
				missingCount++
			} else if useFeedback {
				e.obs[i].priority += e.o.Adjust
				rk.observableBumped(i)
				if e.tracing() {
					bumped = append(bumped, trace.ObsPriority{
						Obs: obsLabel(e.obs[i]), Priority: e.obs[i].priority,
					})
				}
			}
		}
		rd.MissingObs = missingCount
		e.traceFeedback(rk, round, missingCount, bumped, useFeedback)
		if e.report.BestPartial == nil || missingCount < e.report.BestPartialMissing {
			e.report.BestPartial = rd.Injected
			e.report.BestPartialMissing = missingCount
		}
		e.report.RoundLog = append(e.report.RoundLog, *rd)
		e.report.Rounds = round
		e.maybeCheckpoint(round, window)
	}
}

// roundPlan builds the round's injection plan from the selected window.
// A pair window (homogeneous by fillWindow construction) arms a PairPlan
// in rank order and publishes the window so tryOnce can map the plan's
// commit index back to the canonical pair Instance; every other window
// is the ordinary first-reach-wins plan.
func (e *engine) roundPlan(candidates []inject.Instance) inject.Plan {
	if len(candidates) == 0 || !inject.IsPairSite(candidates[0].Site) {
		return inject.Window(candidates)
	}
	pairs := make([][2]inject.Instance, len(candidates))
	for i, c := range candidates {
		a, b, _ := inject.PairMembers(c)
		pairs[i] = [2]inject.Instance{a, b}
	}
	e.pairWindow = append(e.pairWindow[:0], candidates...)
	return inject.PairWindow(pairs)
}

// traceFeedback records an Algorithm 2 update: the observables whose I_k
// was adjusted and the resulting F_i deltas. The deltas need next round's
// priorities; forcing the ranker to apply its pending re-scores here is
// idempotent (the next round's ranked() returns the same values) and only
// happens when a sink is attached.
func (e *engine) traceFeedback(rk ranker, round, missing int, bumped []trace.ObsPriority, useFeedback bool) {
	if !e.tracing() {
		return
	}
	ev := &trace.Event{Type: trace.Feedback, Round: round, Missing: missing, Bumped: bumped}
	if useFeedback && len(bumped) > 0 {
		before := make(map[string]float64, len(e.sites))
		for _, s := range e.sites {
			before[s.id] = s.f
		}
		rk.ranked()
		for _, s := range e.sites {
			if s.f != before[s.id] {
				ev.Deltas = append(ev.Deltas, trace.SiteDelta{
					Site: s.id, Before: trace.Float(before[s.id]), After: trace.Float(s.f),
				})
			}
		}
	}
	e.emit(ev)
}

// missingIn reports, per relevant observable, whether it is missing from
// ALL of the given run logs (Algorithm 2's COMPARE over combined logs).
func (e *engine) missingIn(results []*cluster.Result) []bool {
	if cap(e.missBuf) < len(e.obs) {
		e.missBuf = make([]bool, len(e.obs))
	}
	miss := e.missBuf[:len(e.obs)]
	for i := range miss {
		miss[i] = true
	}
	for _, res := range results {
		m := logdiff.Compare(e.flatten(res.Entries), e.flatten(e.t.FailureLog)).Missing
		for i, o := range e.obs {
			if _, still := m[o.key]; !still {
				miss[i] = false
			}
		}
	}
	return miss
}
