package core_test

// Equivalence of the incremental priority index and the naive
// recompute-everything ranking: across the whole failure dataset, a
// FullFeedback search under each ranker must emit byte-identical traces
// and identical root-rank trajectories. The traces include per-round
// ranked-site snapshots and feedback deltas, so any divergence in scoring,
// ordering, or update timing shows up as a diff.

import (
	"bytes"
	"testing"

	"anduril/internal/core"
	"anduril/internal/failures"
	"anduril/internal/trace"
)

// rankerRun reproduces one target with tracing and rank tracking under the
// chosen ranker. Window 1 maximizes the number of ranking decisions that
// reach the trace.
func rankerRun(t *testing.T, tgt *core.Target, naive bool) ([]byte, *core.Report) {
	t.Helper()
	var buf bytes.Buffer
	sink := trace.NewWriter(&buf)
	rep := core.Reproduce(tgt, core.Options{
		Seed: 1, MaxRounds: 60, Window: 1,
		TrackRank: true, NaiveRanking: naive, Trace: sink,
	})
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rep
}

func TestIncrementalRankingEquivalence(t *testing.T) {
	for _, sc := range failures.All() {
		sc := sc
		t.Run(sc.ID, func(t *testing.T) {
			t.Parallel()
			tgt, err := sc.BuildTarget()
			if err != nil {
				t.Fatal(err)
			}
			naiveTrace, naiveRep := rankerRun(t, tgt, true)
			indexTrace, indexRep := rankerRun(t, tgt, false)

			if !bytes.Equal(naiveTrace, indexTrace) {
				nev, _ := trace.ReadAll(bytes.NewReader(naiveTrace))
				iev, _ := trace.ReadAll(bytes.NewReader(indexTrace))
				for _, d := range trace.Diff(nev, iev, 10) {
					t.Error(d)
				}
				t.Fatalf("traces differ between naive and indexed ranking (%d vs %d events)",
					len(nev), len(iev))
			}
			if naiveRep.Reproduced != indexRep.Reproduced || naiveRep.Rounds != indexRep.Rounds {
				t.Fatalf("reports diverge: naive(reproduced=%v rounds=%d) indexed(reproduced=%v rounds=%d)",
					naiveRep.Reproduced, naiveRep.Rounds, indexRep.Reproduced, indexRep.Rounds)
			}
			if len(naiveRep.RoundLog) != len(indexRep.RoundLog) {
				t.Fatalf("round logs diverge: %d vs %d rounds", len(naiveRep.RoundLog), len(indexRep.RoundLog))
			}
			for i := range naiveRep.RoundLog {
				if naiveRep.RoundLog[i].RootRank != indexRep.RoundLog[i].RootRank {
					t.Fatalf("round %d: root rank %d (naive) vs %d (indexed)",
						i+1, naiveRep.RoundLog[i].RootRank, indexRep.RoundLog[i].RootRank)
				}
			}
		})
	}
}
