package core

// Table-driven tests for Options.withDefaults and the Report aggregate
// helpers — the empty-rounds and single-round edges the evaluation tables
// lean on.

import (
	"reflect"
	"testing"
	"time"
)

func TestOptionsWithDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   Options
		want Options
	}{
		{
			name: "zero value gets every default",
			in:   Options{},
			want: Options{Strategy: FullFeedback, Window: 10, Adjust: 1,
				MaxRounds: 2000, InstanceLimit: 3, RunsPerRound: 1, Addressing: AddrOccurrence,
				CheckpointEvery: 10, EventBudget: DefaultEventBudget},
		},
		{
			name: "negative knobs are treated as unset",
			in:   Options{Window: -5, Adjust: -1, MaxRounds: -10, InstanceLimit: -3, RunsPerRound: -2, CheckpointEvery: -4},
			want: Options{Strategy: FullFeedback, Window: 10, Adjust: 1,
				MaxRounds: 2000, InstanceLimit: 3, RunsPerRound: 1, Addressing: AddrOccurrence,
				CheckpointEvery: 10, EventBudget: DefaultEventBudget},
		},
		{
			name: "explicit values survive",
			in: Options{Strategy: Random, Window: 3, Adjust: 2, MaxRounds: 7,
				InstanceLimit: 9, RunsPerRound: 4, Seed: 42,
				Checkpoint: "/tmp/ck.json", CheckpointEvery: 2, EventBudget: 5000, StopAfterRound: 6},
			want: Options{Strategy: Random, Window: 3, Adjust: 2, MaxRounds: 7,
				InstanceLimit: 9, RunsPerRound: 4, Seed: 42, Addressing: AddrOccurrence,
				Checkpoint: "/tmp/ck.json", CheckpointEvery: 2, EventBudget: 5000, StopAfterRound: 6},
		},
		{
			name: "seed zero stays zero (a valid master seed)",
			in:   Options{Seed: 0, Window: 1},
			want: Options{Strategy: FullFeedback, Window: 1, Adjust: 1,
				MaxRounds: 2000, InstanceLimit: 3, RunsPerRound: 1, Addressing: AddrOccurrence,
				CheckpointEvery: 10, EventBudget: DefaultEventBudget},
		},
		{
			name: "explicit path addressing survives",
			in:   Options{Addressing: AddrPath},
			want: Options{Strategy: FullFeedback, Window: 10, Adjust: 1,
				MaxRounds: 2000, InstanceLimit: 3, RunsPerRound: 1, Addressing: AddrPath,
				CheckpointEvery: 10, EventBudget: DefaultEventBudget},
		},
		{
			name: "negative event budget means unlimited and survives",
			in:   Options{EventBudget: -1},
			want: Options{Strategy: FullFeedback, Window: 10, Adjust: 1,
				MaxRounds: 2000, InstanceLimit: 3, RunsPerRound: 1, Addressing: AddrOccurrence,
				CheckpointEvery: 10, EventBudget: -1},
		},
		{
			name: "ablation flags pass through untouched",
			in:   Options{AggregateSum: true, TemporalByOrder: true, FixedWindow: true, GlobalDiff: true},
			want: Options{Strategy: FullFeedback, Window: 10, Adjust: 1,
				MaxRounds: 2000, InstanceLimit: 3, RunsPerRound: 1, Addressing: AddrOccurrence,
				CheckpointEvery: 10, EventBudget: DefaultEventBudget,
				AggregateSum: true, TemporalByOrder: true, FixedWindow: true, GlobalDiff: true},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.in.withDefaults(); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("withDefaults()\n got %+v\nwant %+v", got, tc.want)
			}
		})
	}
}

func TestReportMediansEdgeCases(t *testing.T) {
	mkRounds := func(inits ...time.Duration) []Round {
		out := make([]Round, len(inits))
		for i, d := range inits {
			out[i] = Round{N: i + 1, InitTime: d, RunTime: 10 * d, InjectReqs: int(d / time.Millisecond)}
		}
		return out
	}
	cases := []struct {
		name     string
		rounds   []Round
		wantInit time.Duration
		wantRun  time.Duration
		wantReqs int
	}{
		{name: "empty round log", rounds: nil, wantInit: 0, wantRun: 0, wantReqs: 0},
		{name: "single round is its own median",
			rounds:   mkRounds(5 * time.Millisecond),
			wantInit: 5 * time.Millisecond, wantRun: 50 * time.Millisecond, wantReqs: 5},
		{name: "even count takes the upper median",
			rounds:   mkRounds(1*time.Millisecond, 4*time.Millisecond),
			wantInit: 4 * time.Millisecond, wantRun: 40 * time.Millisecond, wantReqs: 4},
		{name: "unsorted input is sorted before picking",
			rounds:   mkRounds(9*time.Millisecond, 1*time.Millisecond, 5*time.Millisecond),
			wantInit: 5 * time.Millisecond, wantRun: 50 * time.Millisecond, wantReqs: 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := &Report{RoundLog: tc.rounds}
			if got := r.MedianInitTime(); got != tc.wantInit {
				t.Errorf("MedianInitTime=%v, want %v", got, tc.wantInit)
			}
			if got := r.MedianRunTime(); got != tc.wantRun {
				t.Errorf("MedianRunTime=%v, want %v", got, tc.wantRun)
			}
			if got := r.MedianInjectReqs(); got != tc.wantReqs {
				t.Errorf("MedianInjectReqs=%d, want %d", got, tc.wantReqs)
			}
		})
	}
}

func TestMeanDecisionLatency(t *testing.T) {
	cases := []struct {
		name   string
		rounds []Round
		want   time.Duration
	}{
		{name: "empty round log", rounds: nil, want: 0},
		{name: "zero requests avoids dividing by zero",
			rounds: []Round{{DecideTime: time.Second, InjectReqs: 0}}, want: 0},
		{name: "single round divides by its requests",
			rounds: []Round{{DecideTime: 100 * time.Microsecond, InjectReqs: 4}},
			want:   25 * time.Microsecond},
		{name: "mean pools time and requests across rounds",
			rounds: []Round{
				{DecideTime: 30 * time.Microsecond, InjectReqs: 1},
				{DecideTime: 10 * time.Microsecond, InjectReqs: 3},
			},
			want: 10 * time.Microsecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := &Report{RoundLog: tc.rounds}
			if got := r.MeanDecisionLatency(); got != tc.want {
				t.Errorf("MeanDecisionLatency=%v, want %v", got, tc.want)
			}
		})
	}
}

// The helpers must not reorder the report's round log: callers iterate it
// for Figure 6 after computing medians.
func TestMediansDoNotReorderRoundLog(t *testing.T) {
	r := &Report{RoundLog: []Round{
		{N: 1, InitTime: 9, RunTime: 9, InjectReqs: 9},
		{N: 2, InitTime: 1, RunTime: 1, InjectReqs: 1},
		{N: 3, InitTime: 5, RunTime: 5, InjectReqs: 5},
	}}
	r.MedianInitTime()
	r.MedianRunTime()
	r.MedianInjectReqs()
	r.MeanDecisionLatency()
	for i, rd := range r.RoundLog {
		if rd.N != i+1 {
			t.Fatalf("round log reordered: %+v", r.RoundLog)
		}
	}
}
