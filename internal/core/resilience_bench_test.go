package core_test

// Microbenchmarks for the resilience layer: the recover-wrapped trial
// path is always on, so BenchmarkReproduce/baseline doubles as proof that
// panic isolation costs nothing measurable, and the checkpointed variant
// prices the worst-case checkpoint cadence (every round). Results are
// recorded in BENCH_core_resilience.json.

import (
	"path/filepath"
	"testing"

	"anduril/internal/core"
)

func benchReproduce(b *testing.B, optFor func(i int) core.Options) {
	b.Helper()
	tgt := target(b, "f4")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := core.Reproduce(tgt, optFor(i))
		if !rep.Reproduced {
			b.Fatalf("f4 not reproduced: %+v", rep)
		}
	}
}

func BenchmarkReproduce(b *testing.B) {
	b.Run("baseline", func(b *testing.B) {
		// No checkpoint path configured: maybeCheckpoint is a string
		// compare per round, and the recover wrappers are the only
		// resilience cost on this path.
		benchReproduce(b, func(int) core.Options {
			return core.Options{Strategy: core.FullFeedback, Seed: 1, MaxRounds: 60}
		})
	})
	b.Run("checkpoint-every-round", func(b *testing.B) {
		dir := b.TempDir()
		benchReproduce(b, func(i int) core.Options {
			return core.Options{
				Strategy: core.FullFeedback, Seed: 1, MaxRounds: 60,
				Checkpoint:      filepath.Join(dir, "bench.ck.json"),
				CheckpointEvery: 1,
			}
		})
	})
	b.Run("path-addressing", func(b *testing.B) {
		// Same search under AddrPath: prices the per-reach path
		// bookkeeping (context tracking, canonical-string assembly, the
		// per-site byPath index). Recorded in BENCH_core_addressing.json;
		// the baseline variant above is the proof that none of it is paid
		// in the default mode.
		benchReproduce(b, func(int) core.Options {
			return core.Options{
				Strategy: core.FullFeedback, Seed: 1, MaxRounds: 60,
				Addressing: core.AddrPath,
			}
		})
	})
	b.Run("partial", func(b *testing.B) {
		// Same search with the partial class enabled: prices the partial
		// sweep (per-operation pseudo-site reaches, ID caching, amplitude
		// recording) on a search that still concludes in the site class.
		// Recorded in BENCH_core_partial.json; the baseline variant above
		// is the proof that none of it is paid in the default mode.
		benchReproduce(b, func(int) core.Options {
			return core.Options{
				Strategy: core.FullFeedback, Seed: 1, MaxRounds: 60,
				FaultClasses: []string{core.ClassSite, core.ClassPartial},
			}
		})
	})
}
