package core

// Search is the narrow surface a Strategy explores through. It wraps the
// unexported engine after the free run and setup have completed: the
// candidate fault space is fixed, the observables are extracted, and the
// strategy decides what to inject each round.
//
// Feedback-family strategies drive the full Algorithm 2 loop internally;
// enumerative strategies build an injection queue from the accessors here
// and hand it to Enumerate. External packages can register their own
// strategies via RegisterStrategy and get the identical surface.

import (
	"anduril/internal/cluster"
	"anduril/internal/inject"
	"anduril/internal/logging"
)

// Search exposes the prepared fault-injection search to a Strategy
// implementation.
type Search struct {
	e    *engine
	free *cluster.Result
}

// Options returns the options for this run (read-only copy).
func (s *Search) Options() Options { return s.e.o }

// FreeCounts returns the per-site dynamic occurrence counts observed in
// the free run — the whole dynamic fault space, including sites pruned
// from the candidate set by the causal graph.
func (s *Search) FreeCounts() map[string]int {
	out := make(map[string]int, len(s.free.Counts))
	for k, v := range s.free.Counts {
		out[k] = v
	}
	return out
}

// FailureLog returns the target failure log the search tries to reproduce.
func (s *Search) FailureLog() []logging.Entry { return s.e.t.FailureLog }

// Candidates returns every candidate fault instance after causal-graph
// pruning, in deterministic (site id, occurrence) order. Pair
// pseudo-sites are excluded: the enumerative baselines model published
// single-fault injectors, and a pair candidate needs the feedback loop's
// pair-plan machinery to execute.
func (s *Search) Candidates() []inject.Instance {
	var out []inject.Instance
	for _, st := range s.e.sites {
		if st.isPair {
			continue
		}
		for _, inst := range st.instances {
			out = append(out, candidateFor(st, inst))
		}
	}
	return out
}

// Enumerate runs the shared single-injection loop over a fixed queue: one
// candidate per round, in order, until the oracle is satisfied, the queue
// is exhausted, or the round cap is hit.
func (s *Search) Enumerate(queue []inject.Instance) { s.e.enumerativeLoop(queue) }
