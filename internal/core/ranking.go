package core

// Site priorities F_i = min_k (L_{i,k} + I_k) (§5.2.4) and the ranking
// over them. Two interchangeable rankers maintain the order:
//
//   - naiveRanker re-scores every site and fully re-sorts on each call —
//     the paper's algorithm as literally written, kept behind
//     Options.NaiveRanking for equivalence tests and benchmarks;
//   - indexRanker is the incremental priority index: it tracks which
//     sites are dirty (their F_i may have changed because a feedback
//     update bumped an observable they reach) and on the next ranking
//     re-scores only those, merging them back into the maintained order.
//
// Both produce the identical total order — (F_i, site id) ascending, with
// unique ids making the order strict — so traces, root-rank trajectories
// and golden files are byte-identical between them.

import (
	"math"
	"sort"

	"anduril/internal/inject"
)

// Environment pseudo-sites have no causal-graph node, so their spatial
// distance to every observable is a synthetic per-class constant —
// larger than any graph path in the dataset, so env instances rank
// below every causally-connected error-return site until feedback bumps
// reorder them. The class order (crash < partition < drop < delay)
// encodes blast radius: a crash perturbs the most behavior, so it is
// the most promising guess for an unexplained failure.
const (
	envDistCrash     = 24
	envDistPartition = 26
	envDistDrop      = 28
	envDistDelay     = 30

	// envDistMatched scores an env site against an observable that IS the
	// site's own injection marker (the production log recorded the
	// environment event — "env: message nn>dn1 delayed" names the delay
	// channel directly, modulo sanitized digits). Such evidence outranks
	// every blast-radius prior, so an env-rooted failure whose log carries
	// the marker is searched marker-first instead of class-order.
	envDistMatched = 1
)

// Partial pseudo-sites likewise have no causal-graph node; their
// synthetic distances sit above the env band, so with both classes
// enabled the cleaner, better-understood env faults are tried first.
// Within the class the order encodes how much persistent state the
// fault corrupts: a torn rename leaves a double ledger recovery must
// untangle, a short write or mid-append ENOSPC corrupts one file's
// tail, a duplicated delivery double-applies one message, and eintr
// only surfaces a spurious error for a delivered message.
const (
	partialDistTorn   = 34
	partialDistShort  = 36
	partialDistENOSPC = 38
	partialDistDup    = 40
	partialDistEINTR  = 42

	// partialDistMatched mirrors envDistMatched: an observable equal to a
	// partial site's own injection marker is near-direct failure-log
	// evidence for that site.
	partialDistMatched = 1
)

// partialSiteDistance returns the synthetic distance for a partial site
// (and whether the site is one).
func partialSiteDistance(site string) (float64, bool) {
	switch inject.PartialClassOf(site) {
	case inject.PartialTornRename:
		return partialDistTorn, true
	case inject.PartialShortWrite:
		return partialDistShort, true
	case inject.PartialENOSPC:
		return partialDistENOSPC, true
	case inject.PartialDupDeliver:
		return partialDistDup, true
	case inject.PartialEINTR:
		return partialDistEINTR, true
	}
	return 0, false
}

// envSiteDistance returns the synthetic distance for an env site (and
// whether the site is one).
func envSiteDistance(site string) (float64, bool) {
	switch inject.EnvClassOf(site) {
	case inject.EnvCrash:
		return envDistCrash, true
	case inject.EnvPartition:
		return envDistPartition, true
	case inject.EnvDrop:
		return envDistDrop, true
	case inject.EnvDelay:
		return envDistDelay, true
	}
	return 0, false
}

// computePriorities evaluates F_i = min_k (L_{i,k} + I_k) for every site
// (§5.2.4), with the distance and feedback terms toggled per strategy.
func (e *engine) computePriorities(useDistance, useFeedback bool) {
	e.sumBest = nil
	for _, s := range e.sites {
		e.rescoreSite(s, useDistance, useFeedback)
	}
}

// memberDistance scores one pair member against one observable: the env
// synthetic distance (marker-matched when the observable IS the member's
// own injection marker) for env members, the closest causal-graph
// template distance otherwise.
func (e *engine) memberDistance(site, marker string, o *observable) float64 {
	if d, isEnv := envSiteDistance(site); isEnv {
		if marker != "" && o.key.Msg == marker {
			return envDistMatched
		}
		return d
	}
	l := math.Inf(1)
	dists := e.dist[site]
	for _, tmpl := range o.templates {
		if d, ok := dists[tmpl]; ok && float64(d) < l {
			l = float64(d)
		}
	}
	return l
}

// rescoreSite recomputes one site's F_i and best observable from scratch.
func (e *engine) rescoreSite(s *siteState, useDistance, useFeedback bool) {
	if e.sumBest != nil {
		delete(e.sumBest, s.id)
	}
	s.f = math.Inf(1)
	s.bestObs = -1
	dists := e.dist[s.id]
	envDist, isEnv := envSiteDistance(s.id)
	partialDist, isPartial := partialSiteDistance(s.id)
	for k, o := range e.obs {
		l := math.Inf(1)
		if s.isPair {
			// A pair reaches an observable through whichever member is
			// closer: L is the min of the member distances, so a feedback
			// bump on an observable either member reaches flows into the
			// pair's priority exactly as it does into the member's.
			l = e.memberDistance(s.pairSites[0], s.pairMarkers[0], o)
			if l2 := e.memberDistance(s.pairSites[1], s.pairMarkers[1], o); l2 < l {
				l = l2
			}
		} else if isEnv {
			// Same scoring shape as sites — F = min_k (L + I_k) — with the
			// synthetic class distance standing in for every L_{i,k}, so
			// feedback adjustments flow into env sites unchanged. An
			// observable equal to this site's own marker is scored as a
			// near-direct hit instead.
			l = envDist
			if s.marker != "" && o.key.Msg == s.marker {
				l = envDistMatched
			}
		} else if isPartial {
			// Partial sites score exactly like env sites: the synthetic
			// class distance stands in for every L_{i,k}, and an observable
			// equal to the site's own marker is a near-direct hit.
			l = partialDist
			if s.marker != "" && o.key.Msg == s.marker {
				l = partialDistMatched
			}
		} else {
			for _, tmpl := range o.templates {
				if d, ok := dists[tmpl]; ok && float64(d) < l {
					l = float64(d)
				}
			}
		}
		if math.IsInf(l, 1) {
			continue
		}
		val := 0.0
		if useDistance {
			val += l
		}
		if useFeedback {
			val += float64(o.priority)
		}
		if e.o.AggregateSum {
			// Ablation: sum of partial priorities instead of min. The
			// best observable is still the closest one.
			if math.IsInf(s.f, 1) {
				s.f = 0
			}
			s.f += val
			if s.bestObs < 0 || val < e.bestVal(s) {
				s.bestObs = k
				e.setBestVal(s, val)
			}
			continue
		}
		if val < s.f {
			s.f = val
			s.bestObs = k
		}
	}
}

// bestVal bookkeeping for the sum-aggregation ablation: remembers the
// smallest partial priority so bestObs stays the nearest observable.
func (e *engine) bestVal(s *siteState) float64 {
	if e.sumBest == nil {
		return math.Inf(1)
	}
	v, ok := e.sumBest[s.id]
	if !ok {
		return math.Inf(1)
	}
	return v
}

func (e *engine) setBestVal(s *siteState, v float64) {
	if e.sumBest == nil {
		e.sumBest = map[string]float64{}
	}
	e.sumBest[s.id] = v
}

// siteLess is the ranking order: F ascending, site id as tiebreak. Site
// ids are unique, so this is a strict total order — any correct sort or
// merge yields one identical ranking.
func siteLess(a, b *siteState) bool {
	if a.f != b.f {
		return a.f < b.f
	}
	return a.id < b.id
}

// siteSorter sorts sites by (F, id). The concrete sort.Interface avoids
// the closure and reflection-based swapper sort.Slice allocates per call;
// the order is a strict total one, so any sorting algorithm yields the
// identical ranking.
type siteSorter []*siteState

func (s siteSorter) Len() int           { return len(s) }
func (s siteSorter) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
func (s siteSorter) Less(i, j int) bool { return siteLess(s[i], s[j]) }

// rankedSites returns sites ordered by F ascending (name as tiebreak),
// reusing the engine's ranking buffer. The result is valid until the next
// rankedSites call on the same engine.
func (e *engine) rankedSites() []*siteState {
	if cap(e.rankedBuf) < len(e.sites) {
		e.rankedBuf = make([]*siteState, len(e.sites))
	}
	out := e.rankedBuf[:len(e.sites)]
	copy(out, e.sites)
	sort.Sort(siteSorter(out))
	return out
}

// rootRank finds the 1-based rank of the ground-truth site, for Figure 6.
func (e *engine) rootRank(ranked []*siteState) int {
	if e.t.RootSite == "" {
		return 0
	}
	for i, s := range ranked {
		if s.id == e.t.RootSite {
			return i + 1
		}
	}
	return 0
}

// ranker maintains the site ranking across feedback updates. ranked()
// returns the sites in (F, id) order; the returned slice is read-only and
// valid until the next observableBumped/ranked call. observableBumped
// tells the ranker that observable k's priority I_k changed, so sites
// reaching k must be re-scored before the next ranking.
type ranker interface {
	ranked() []*siteState
	observableBumped(k int)
}

// newRanker picks the ranking implementation for this run.
func (e *engine) newRanker(useFeedback bool) ranker {
	if e.o.NaiveRanking {
		return &naiveRanker{e: e, useFeedback: useFeedback}
	}
	return &indexRanker{e: e, useFeedback: useFeedback}
}

// naiveRanker recomputes every priority and re-sorts on every call.
type naiveRanker struct {
	e           *engine
	useFeedback bool
}

func (r *naiveRanker) ranked() []*siteState {
	r.e.computePriorities(true, r.useFeedback)
	return r.e.rankedSites()
}

func (r *naiveRanker) observableBumped(int) {}

// indexRanker is the incremental priority index. It builds the full
// ranking once, plus a reverse index observable -> sites reaching it;
// afterwards each feedback bump marks only the reaching sites dirty, and
// the next ranked() call re-scores the dirty set and merges it back into
// the sorted order: O(D log D + N) per updated round instead of the naive
// O(N·K·T + N log N), and O(1) for rounds with no feedback change.
type indexRanker struct {
	e           *engine
	useFeedback bool

	obsSites [][]*siteState // k -> sites with a finite L_{i,k}
	order    []*siteState   // current ranking, (F, id) ascending
	dirty    []*siteState   // sites whose F may have changed
	dirtySet map[*siteState]bool
	built    bool

	// keepBuf and spare are reused across updates: keepBuf collects the
	// clean prefix of the old order, spare receives the merge, and the old
	// order's backing array becomes the next update's spare. Each round's
	// re-rank therefore allocates nothing once the buffers reach steady
	// size.
	keepBuf []*siteState
	spare   []*siteState
}

func (r *indexRanker) build() {
	e := r.e
	e.computePriorities(true, r.useFeedback)
	// Copy out of the engine's shared ranking buffer: order is long-lived.
	r.order = append([]*siteState(nil), e.rankedSites()...)
	r.obsSites = make([][]*siteState, len(e.obs))
	for _, s := range e.sites {
		if s.isPair {
			// A pair reaches whatever either member reaches, so a bump on
			// any member-reachable observable dirties the pair.
			for k, o := range e.obs {
				if !math.IsInf(e.memberDistance(s.pairSites[0], s.pairMarkers[0], o), 1) ||
					!math.IsInf(e.memberDistance(s.pairSites[1], s.pairMarkers[1], o), 1) {
					r.obsSites[k] = append(r.obsSites[k], s)
				}
			}
			continue
		}
		if inject.IsEnvSite(s.id) || inject.IsPartialSite(s.id) {
			// An env or partial site's synthetic distance reaches every
			// observable, so any priority bump dirties it.
			for k := range e.obs {
				r.obsSites[k] = append(r.obsSites[k], s)
			}
			continue
		}
		dists := e.dist[s.id]
		for k, o := range e.obs {
			for _, tmpl := range o.templates {
				if _, ok := dists[tmpl]; ok {
					r.obsSites[k] = append(r.obsSites[k], s)
					break
				}
			}
		}
	}
	r.dirtySet = make(map[*siteState]bool)
	r.built = true
}

func (r *indexRanker) observableBumped(k int) {
	if !r.built {
		return // first ranked() builds everything from current priorities
	}
	for _, s := range r.obsSites[k] {
		if !r.dirtySet[s] {
			r.dirtySet[s] = true
			r.dirty = append(r.dirty, s)
		}
	}
}

func (r *indexRanker) ranked() []*siteState {
	if !r.built {
		r.build()
		return r.order
	}
	if len(r.dirty) == 0 {
		return r.order
	}
	for _, s := range r.dirty {
		r.e.rescoreSite(s, true, r.useFeedback)
	}
	keep := r.keepBuf[:0]
	for _, s := range r.order {
		if !r.dirtySet[s] {
			keep = append(keep, s)
		}
	}
	r.keepBuf = keep
	sort.Sort(siteSorter(r.dirty))
	merged := mergeRanked(r.spare[:0], keep, r.dirty)
	r.spare = r.order[:0]
	r.order = merged
	r.dirty = r.dirty[:0]
	for s := range r.dirtySet {
		delete(r.dirtySet, s)
	}
	return r.order
}

// mergeRanked merges two (F, id)-sorted site lists into dst.
func mergeRanked(dst, a, b []*siteState) []*siteState {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if siteLess(a[i], b[j]) {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}
