package core

// White-box tests for the incremental priority index against the naive
// ranker on synthetic engines, driving bump sequences directly.

import (
	"fmt"
	"math/rand"
	"testing"

	"anduril/internal/logdiff"
)

// synthEngine fabricates an engine with nSites sites and nObs observables,
// deterministic pseudo-random reachability, bypassing the free run.
func synthEngine(nSites, nObs int, seed int64) *engine {
	rng := rand.New(rand.NewSource(seed))
	e := newEngine(&Target{ID: "synth"}, Options{}.withDefaults())
	for k := 0; k < nObs; k++ {
		tmpl := fmt.Sprintf("tmpl-%03d", k)
		e.obs = append(e.obs, &observable{
			key:       logdiff.Key{Thread: "t", Msg: tmpl},
			positions: []int{rng.Intn(1000)},
			templates: []string{tmpl},
		})
	}
	e.dist = make(map[string]map[string]int, nSites)
	for i := 0; i < nSites; i++ {
		id := fmt.Sprintf("site-%04d", i)
		d := map[string]int{}
		// Each site reaches a handful of observables at random distances.
		for n := rng.Intn(6); n >= 0; n-- {
			d[fmt.Sprintf("tmpl-%03d", rng.Intn(nObs))] = 1 + rng.Intn(12)
		}
		e.dist[id] = d
		e.sites = append(e.sites, &siteState{
			id:        id,
			instances: []instance{{occ: 1, alignedPos: float64(rng.Intn(1000))}},
		})
	}
	e.siteIndex = make(map[string]*siteState, len(e.sites))
	for _, s := range e.sites {
		e.siteIndex[s.id] = s
	}
	return e
}

// TestIndexRankerMatchesNaive drives both rankers through an identical
// random bump sequence on clones of one synthetic engine and requires the
// identical ranking after every step.
func TestIndexRankerMatchesNaive(t *testing.T) {
	const nSites, nObs, steps = 120, 40, 50
	en := synthEngine(nSites, nObs, 7)
	ei := synthEngine(nSites, nObs, 7)
	naive := en.newRankerNamed(true, true)
	index := ei.newRankerNamed(true, false)
	rng := rand.New(rand.NewSource(99))

	check := func(step int) {
		a, b := naive.ranked(), index.ranked()
		if len(a) != len(b) {
			t.Fatalf("step %d: ranking lengths %d vs %d", step, len(a), len(b))
		}
		for i := range a {
			if a[i].id != b[i].id || a[i].f != b[i].f || a[i].bestObs != b[i].bestObs {
				t.Fatalf("step %d, rank %d: naive (%s F=%v best=%d) vs indexed (%s F=%v best=%d)",
					step, i, a[i].id, a[i].f, a[i].bestObs, b[i].id, b[i].f, b[i].bestObs)
			}
		}
	}

	check(0)
	for step := 1; step <= steps; step++ {
		// Bump a random batch of observables on both engines, as one
		// feedback round would.
		for n := rng.Intn(5); n >= 0; n-- {
			k := rng.Intn(nObs)
			en.obs[k].priority++
			ei.obs[k].priority++
			naive.observableBumped(k)
			index.observableBumped(k)
		}
		check(step)
	}
}

// newRankerNamed builds a specific ranker implementation regardless of the
// engine's own NaiveRanking option — test plumbing only.
func (e *engine) newRankerNamed(useFeedback, naive bool) ranker {
	if naive {
		return &naiveRanker{e: e, useFeedback: useFeedback}
	}
	return &indexRanker{e: e, useFeedback: useFeedback}
}

// The no-bump fast path must hand back the same ranking object without
// re-scoring.
func TestIndexRankerNoBumpStable(t *testing.T) {
	e := synthEngine(50, 10, 3)
	rk := e.newRankerNamed(true, false)
	a := rk.ranked()
	b := rk.ranked()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d changed without any bump", i)
		}
	}
}
