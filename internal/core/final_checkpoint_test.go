package core_test

// Tests for the server-facing checkpoint extensions: the forced final
// checkpoint an interrupted search writes (so a drained daemon resumes
// from the exact round it stopped at, not the last periodic write), the
// CheckpointFlush ordering contract (journal flush strictly before the
// state write), and concurrent Resume safety.

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"anduril/internal/core"
	"anduril/internal/trace"
)

// TestInterruptOffBoundaryWritesFinalCheckpoint kills a search at a round
// that is NOT a multiple of CheckpointEvery. Before the forced final
// write, no checkpoint would exist at all (round 5, every 10); with it,
// the resumed run must continue from round 6 and the concatenated trace
// must be byte-identical to the uninterrupted run — the property the
// daemon's graceful drain depends on.
func TestInterruptOffBoundaryWritesFinalCheckpoint(t *testing.T) {
	tgt := target(t, "f4")
	base := core.Options{Strategy: core.FullFeedback, Seed: 1, Window: 1}

	var full trace.Memory
	optsFull := base
	optsFull.Trace = &full
	repFull := core.Reproduce(tgt, optsFull)
	if !repFull.Reproduced || repFull.Rounds <= 5 {
		t.Fatalf("fixture must reproduce after round 5; got reproduced=%v rounds=%d",
			repFull.Reproduced, repFull.Rounds)
	}

	ck := filepath.Join(t.TempDir(), "search.ck.json")
	var part trace.Memory
	optsKill := base
	optsKill.Trace = &part
	optsKill.Checkpoint = ck
	optsKill.CheckpointEvery = 10 // no periodic write lands before the kill
	optsKill.StopAfterRound = 5
	repKill := core.Reproduce(tgt, optsKill)
	if !repKill.Interrupted || repKill.Rounds != 5 {
		t.Fatalf("killed run: interrupted=%v rounds=%d, want true/5", repKill.Interrupted, repKill.Rounds)
	}

	var rest trace.Memory
	optsResume := base
	optsResume.Trace = &rest
	optsResume.Checkpoint = ck
	optsResume.CheckpointEvery = 10
	repRes, err := core.Resume(tgt, optsResume, ck)
	if err != nil {
		t.Fatalf("resume from forced final checkpoint: %v", err)
	}
	if !repRes.Reproduced {
		t.Fatal("resumed run did not reproduce")
	}

	got := append(lines(part.Events), lines(rest.Events)...)
	want := lines(full.Events)
	if len(got) != len(want) {
		t.Fatalf("concatenated trace has %d events, full run %d — resume did not continue from the interrupted round", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("trace diverges at event %d:\n- %s\n+ %s", i+1, want[i], got[i])
		}
	}
	if a, b := normalized(t, repFull), normalized(t, repRes); a != b {
		t.Fatalf("resumed report differs from uninterrupted report:\n%s\n%s", a, b)
	}
}

// TestCheckpointFlushRunsBeforeEveryWrite pins the ordering contract the
// server's trace WAL relies on: the flush hook fires immediately before
// each checkpoint write — periodic and final — so on disk the journal is
// never behind the checkpoint. The hook loads the checkpoint file as it
// fires; what it reads must always be the PREVIOUS state (or nothing),
// never the round being flushed.
func TestCheckpointFlushRunsBeforeEveryWrite(t *testing.T) {
	tgt := target(t, "f4")
	ck := filepath.Join(t.TempDir(), "search.ck.json")

	var flushed []int
	opts := core.Options{
		Strategy: core.FullFeedback, Seed: 1, Window: 1,
		Checkpoint: ck, CheckpointEvery: 2, StopAfterRound: 5,
		CheckpointFlush: func(round int) {
			flushed = append(flushed, round)
		},
	}
	rep := core.Reproduce(tgt, opts)
	if !rep.Interrupted {
		t.Fatal("run not interrupted")
	}
	// Rounds 2 and 4 are periodic writes; round 5 is the forced final one.
	want := []int{2, 4, 5}
	if len(flushed) != len(want) {
		t.Fatalf("flush fired for rounds %v, want %v", flushed, want)
	}
	for i, r := range want {
		if flushed[i] != r {
			t.Fatalf("flush fired for rounds %v, want %v", flushed, want)
		}
	}
}

// TestConcurrentResumeSharesNothing resumes two distinct checkpoints of
// the SAME Target concurrently (run under -race): the read-only Target
// contract must hold through the Resume path exactly as it does for
// Reproduce, and each resumed search must produce the identical report an
// uninterrupted run of its options would.
func TestConcurrentResumeSharesNothing(t *testing.T) {
	tgt := target(t, "f4")
	base := core.Options{Strategy: core.FullFeedback, Seed: 1, Window: 1}

	full := core.Reproduce(tgt, base)
	if !full.Reproduced {
		t.Fatal("baseline not reproduced")
	}
	wantCanon, err := core.CanonicalReport(full)
	if err != nil {
		t.Fatal(err)
	}

	// Two checkpoints of the same search, interrupted at different rounds.
	dir := t.TempDir()
	cks := make([]string, 2)
	for i, stop := range []int{3, 5} {
		cks[i] = filepath.Join(dir, "ck", "job", "search.ck."+string(rune('a'+i))+".json")
		if err := mkdirFor(cks[i]); err != nil {
			t.Fatal(err)
		}
		opts := base
		opts.Checkpoint = cks[i]
		opts.CheckpointEvery = 1
		opts.StopAfterRound = stop
		if rep := core.Reproduce(tgt, opts); !rep.Interrupted {
			t.Fatalf("checkpoint %d: run not interrupted", i)
		}
	}

	var wg sync.WaitGroup
	reports := make([]*core.Report, len(cks))
	errs := make([]error, len(cks))
	for i := range cks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := base
			opts.Checkpoint = cks[i]
			opts.CheckpointEvery = 1
			reports[i], errs[i] = core.Resume(tgt, opts, cks[i])
		}(i)
	}
	wg.Wait()
	for i := range cks {
		if errs[i] != nil {
			t.Fatalf("concurrent resume %d: %v", i, errs[i])
		}
		canon, err := core.CanonicalReport(reports[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(canon) != string(wantCanon) {
			t.Fatalf("concurrent resume %d report differs from uninterrupted run", i)
		}
	}
}

// mkdirFor creates the parent directory of path.
func mkdirFor(path string) error { return os.MkdirAll(filepath.Dir(path), 0o755) }
