package core_test

// End-to-end tests for the environment-fault search space: the env-rooted
// scenarios reproduce through the ranked search, their traces are
// deterministic, and enabling env enumeration on the paper's 22
// site-rooted failures changes nothing about the site search.

import (
	"fmt"
	"strings"
	"testing"

	"anduril/internal/core"
	"anduril/internal/failures"
	"anduril/internal/inject"
	"anduril/internal/trace"
)

// TestEnvScenariosReproduceEndToEnd is the tentpole acceptance test: each
// env-rooted failure's root instance is enumerated, ranked, injected and
// confirmed by the oracle, and the resulting script replays standalone.
func TestEnvScenariosReproduceEndToEnd(t *testing.T) {
	for _, id := range []string{"f23", "f24", "f25"} {
		id := id
		t.Run(id, func(t *testing.T) {
			tgt := target(t, id)
			rep := core.Reproduce(tgt, core.Options{Strategy: core.FullFeedback, Seed: 1, MaxRounds: 500})
			if !rep.Reproduced {
				t.Fatalf("%s not reproduced in %d rounds", id, rep.Rounds)
			}
			if !rep.EnvRooted {
				t.Fatalf("%s reproduced by %v, not marked env-rooted", id, rep.Script)
			}
			if !inject.IsEnvSite(rep.Script.Site) {
				t.Fatalf("%s script %v is not an env pseudo-site", id, rep.Script)
			}
			// The script alone replays the failure deterministically: the
			// plan carries the env instance, so no enumeration flag needed.
			if !core.Verify(tgt, *rep.Script, rep.ScriptSeed) {
				t.Fatalf("%s script %v does not verify under seed %d", id, rep.Script, rep.ScriptSeed)
			}
		})
	}
}

// TestEnvTraceDeterminism runs the same env-rooted search twice and
// demands byte-identical traces — crash/restart scheduling, partition
// heals and delayed deliveries must introduce no nondeterminism.
func TestEnvTraceDeterminism(t *testing.T) {
	for _, id := range []string{"f23", "f24", "f25"} {
		id := id
		t.Run(id, func(t *testing.T) {
			tgt := target(t, id)
			run := func() []string {
				var mem trace.Memory
				rep := core.Reproduce(tgt, core.Options{
					Strategy: core.FullFeedback, Seed: 1, MaxRounds: 500, Trace: &mem,
				})
				if !rep.Reproduced {
					t.Fatalf("%s not reproduced", id)
				}
				return lines(mem.Events)
			}
			a, b := run(), run()
			if len(a) != len(b) {
				t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("traces diverge at event %d:\n- %s\n+ %s", i+1, a[i], b[i])
				}
			}
		})
	}
}

// TestEnvInjectedTraceEvents: an env-rooted search's trace records the
// injection of its script as an env_injected event carrying the class,
// subject and duration of the executed fault.
func TestEnvInjectedTraceEvents(t *testing.T) {
	tgt := target(t, "f23")
	var mem trace.Memory
	rep := core.Reproduce(tgt, core.Options{Strategy: core.FullFeedback, Seed: 1, MaxRounds: 500, Trace: &mem})
	if !rep.Reproduced {
		t.Fatal("f23 not reproduced")
	}
	found := false
	for i := range mem.Events {
		ev := &mem.Events[i]
		if ev.Type != trace.EnvInjected {
			continue
		}
		if ev.Site == rep.Script.Site && ev.Occ == rep.Script.Occurrence {
			found = true
			if ev.Class != string(inject.EnvCrash) || ev.Subject == "" || ev.Dur <= 0 {
				t.Fatalf("env_injected event incomplete: %+v", ev)
			}
			if l := trace.Line(ev); !strings.Contains(l, "env_injected") {
				t.Fatalf("rendered line does not name the event: %s", l)
			}
		}
	}
	if !found {
		t.Fatalf("no env_injected event for script %v", rep.Script)
	}
}

// roundSummary compresses a report to the fields that define the search
// trajectory — what was injected when, with which window, and the verdict.
func roundSummary(rep *core.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "reproduced=%v rounds=%d script=%v seed=%d\n",
		rep.Reproduced, rep.Rounds, rep.Script, rep.ScriptSeed)
	for _, rd := range rep.RoundLog {
		fmt.Fprintf(&b, "r%d inj=%v sat=%v w=%d\n", rd.N, rd.Injected, rd.Satisfied, rd.WindowSize)
	}
	return b.String()
}

// TestSiteSearchUnchangedByEnvEnumeration is the compatibility acceptance
// criterion: turning env-fault enumeration on for the paper's 22
// site-rooted failures must not perturb the site search — same rounds,
// same injections, same windows, same script.
func TestSiteSearchUnchangedByEnvEnumeration(t *testing.T) {
	for _, s := range failures.SiteDataset() {
		s := s
		t.Run(s.ID, func(t *testing.T) {
			t.Parallel()
			tgt := target(t, s.ID)
			base := core.Reproduce(tgt, core.Options{Strategy: core.FullFeedback, Seed: 1, MaxRounds: 500})
			withEnv := core.Reproduce(tgt, core.Options{
				Strategy: core.FullFeedback, Seed: 1, MaxRounds: 500,
				FaultClasses: []string{core.ClassSite, core.ClassEnv},
			})
			if !base.Reproduced {
				t.Fatalf("%s baseline not reproduced", s.ID)
			}
			if withEnv.EnvRooted {
				t.Fatalf("%s env-rooted under combined classes: %v", s.ID, withEnv.Script)
			}
			if a, b := roundSummary(base), roundSummary(withEnv); a != b {
				t.Fatalf("%s search trajectory changed with env enumeration:\n--- site-only\n%s--- site+env\n%s", s.ID, a, b)
			}
		})
	}
}
