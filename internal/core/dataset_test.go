package core_test

import (
	"testing"

	"anduril/internal/core"
	"anduril/internal/failures"
)

// TestFullFeedbackReproducesEntireDataset is the headline regression: the
// complete algorithm must reproduce every registered failure — the 22
// real-world site-rooted ones plus the env-rooted and dyn scenarios.
func TestFullFeedbackReproducesEntireDataset(t *testing.T) {
	totalRounds := 0
	for _, sc := range failures.All() {
		tgt, err := sc.BuildTarget()
		if err != nil {
			t.Fatalf("%s: %v", sc.ID, err)
		}
		rep := core.Reproduce(tgt, core.Options{Seed: 1, MaxRounds: 500})
		if !rep.Reproduced {
			t.Errorf("%s (%s) not reproduced in %d rounds", sc.ID, sc.Issue, rep.Rounds)
			continue
		}
		totalRounds += rep.Rounds
		// The script must replay deterministically under a fresh seed.
		if !core.Verify(tgt, *rep.Script, rep.ScriptSeed) {
			t.Errorf("%s: script %v does not verify", sc.ID, *rep.Script)
		}
	}
	t.Logf("all %d reproduced, %d total rounds", len(failures.All()), totalRounds)
}

// TestStackTraceBaselineShape checks the paper's §8.4 finding: the
// stacktrace injector succeeds exactly when the failure log names the
// root-cause fault, and fails otherwise.
func TestStackTraceBaselineShape(t *testing.T) {
	// These defect paths log the original exception text. f32/f33 qualify
	// through their partial injection markers, which name the perturbed
	// site verbatim ("partial: torn rename at dfs.namenode.rename-edits");
	// f34's marker names a channel, not a site, so stacktrace misses it.
	inLog := map[string]bool{
		"f1": true, "f2": true, "f3": true, "f4": true, "f7": true,
		"f11": true, "f12": true, "f18": true, "f19": true,
		"f32": true, "f33": true,
	}
	for _, sc := range failures.All() {
		tgt, err := sc.BuildTarget()
		if err != nil {
			t.Fatalf("%s: %v", sc.ID, err)
		}
		rep := core.Reproduce(tgt, core.Options{Strategy: core.StackTrace, Seed: 1, MaxRounds: 500})
		if rep.Reproduced != inLog[sc.ID] {
			t.Errorf("%s: stacktrace reproduced=%v, want %v", sc.ID, rep.Reproduced, inLog[sc.ID])
		}
	}
}

// TestInstanceLimitMissesTimingCriticalFailures checks the §8.3 ablation
// finding: capping each site at its first 3 instances loses exactly the
// failures whose root-cause occurrence is late and state-dependent.
func TestInstanceLimitMissesTimingCriticalFailures(t *testing.T) {
	timingCritical := map[string]bool{"f4": true, "f17": true, "f20": true}
	for id := range map[string]bool{"f4": true, "f17": true, "f20": true, "f1": false, "f16": false} {
		sc, _ := failures.ByID(id)
		tgt, err := sc.BuildTarget()
		if err != nil {
			t.Fatal(err)
		}
		rep := core.Reproduce(tgt, core.Options{Strategy: core.SiteDistanceLimit, Seed: 1, MaxRounds: 500})
		if timingCritical[id] && rep.Reproduced {
			t.Errorf("%s: limit-3 variant should miss this timing-critical failure", id)
		}
		if !timingCritical[id] && !rep.Reproduced {
			t.Errorf("%s: limit-3 variant should still reproduce this one", id)
		}
	}
}

// TestCrashTunerShape: the meta-info heuristic reproduces only the
// failures whose root sits at a crash-recovery point (4 of 22, as in the
// paper).
func TestCrashTunerShape(t *testing.T) {
	count := 0
	for _, sc := range failures.All() {
		tgt, err := sc.BuildTarget()
		if err != nil {
			t.Fatal(err)
		}
		rep := core.Reproduce(tgt, core.Options{Strategy: core.CrashTuner, Seed: 1, MaxRounds: 500})
		if rep.Reproduced {
			count++
		}
	}
	if count < 2 || count > 8 {
		t.Errorf("crashtuner reproduced %d failures; expected a small minority (paper: 4)", count)
	}
	t.Logf("crashtuner reproduced %d/%d", count, len(failures.All()))
}

// TestDatasetSeedRobustness re-runs the headline regression under other
// master seeds: reproduction must not depend on a lucky environment.
func TestDatasetSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, seed := range []int64{42, 777} {
		for _, sc := range failures.All() {
			tgt, err := sc.BuildTarget()
			if err != nil {
				t.Fatal(err)
			}
			rep := core.Reproduce(tgt, core.Options{Seed: seed, MaxRounds: 500})
			if !rep.Reproduced {
				t.Errorf("seed %d: %s (%s) not reproduced", seed, sc.ID, sc.Issue)
			}
		}
	}
}
