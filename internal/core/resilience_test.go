package core_test

// Tests for the resilient search runtime: checkpoint/resume equivalence
// (a killed-and-resumed search is byte-identical to an uninterrupted one),
// trial isolation (target panics, livelocks and oracle panics degrade to
// inconclusive rounds instead of killing the process), and the watchdogs.

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"anduril/internal/cluster"
	"anduril/internal/core"
	"anduril/internal/des"
	"anduril/internal/inject"
	"anduril/internal/trace"
)

// resumeFixtures are the dataset failures the equivalence tests run over.
// Window 1 slows f1/f4 down to 15+ rounds so an interruption at round 4
// leaves real work to resume; f9 needs 19 rounds at the default window.
// f25 is the env-rooted fixture: its delay-channel root takes the search
// past 100 rounds, so the checkpoint envelope round-trips env instances
// in the tried set and the recorded fault classes.
var resumeFixtures = []struct {
	id     string
	window int
}{
	{"f1", 1},
	{"f4", 1},
	{"f9", 0},
	{"f25", 0},
}

func lines(events []trace.Event) []string {
	out := make([]string, len(events))
	for i := range events {
		out[i] = trace.Line(&events[i])
	}
	return out
}

// normalized strips wall-clock measurements — the only fields that can
// differ between two executions of the same deterministic search — and
// returns the report's canonical JSON.
func normalized(t *testing.T, rep *core.Report) string {
	t.Helper()
	cp := *rep
	cp.Elapsed, cp.FreeRunTime = 0, 0
	cp.RoundLog = append([]core.Round(nil), rep.RoundLog...)
	for i := range cp.RoundLog {
		cp.RoundLog[i].InitTime, cp.RoundLog[i].RunTime, cp.RoundLog[i].DecideTime = 0, 0, 0
	}
	raw, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestResumeTraceEquivalence is the core checkpoint contract: run a search
// to completion; run it again but kill it (deterministically) at a
// checkpoint boundary; resume from the checkpoint. The interrupted trace
// must be a strict prefix of the full trace, the resumed trace must be
// exactly the remaining suffix, and the final reports must match.
func TestResumeTraceEquivalence(t *testing.T) {
	for _, fx := range resumeFixtures {
		fx := fx
		t.Run(fx.id, func(t *testing.T) {
			tgt := target(t, fx.id)
			base := core.Options{Strategy: core.FullFeedback, Seed: 1, Window: fx.window}

			var full trace.Memory
			optsFull := base
			optsFull.Trace = &full
			repFull := core.Reproduce(tgt, optsFull)
			if !repFull.Reproduced {
				t.Fatalf("%s baseline not reproduced", fx.id)
			}
			if repFull.Rounds <= 4 {
				t.Fatalf("%s reproduces in %d rounds; fixture must outlive the round-4 kill", fx.id, repFull.Rounds)
			}

			ck := filepath.Join(t.TempDir(), "search.ck.json")
			var part trace.Memory
			optsKill := base
			optsKill.Trace = &part
			optsKill.Checkpoint = ck
			optsKill.CheckpointEvery = 2
			optsKill.StopAfterRound = 4
			repKill := core.Reproduce(tgt, optsKill)
			if !repKill.Interrupted {
				t.Fatal("killed run not marked interrupted")
			}
			if repKill.Reproduced {
				t.Fatal("killed run claims reproduction")
			}
			if repKill.Rounds != 4 {
				t.Fatalf("killed run recorded %d rounds, want 4", repKill.Rounds)
			}

			fullLines, partLines := lines(full.Events), lines(part.Events)
			if len(partLines) == 0 || len(partLines) >= len(fullLines) {
				t.Fatalf("interrupted trace has %d events vs full %d", len(partLines), len(fullLines))
			}
			for i, l := range partLines {
				if l != fullLines[i] {
					t.Fatalf("interrupted trace is not a prefix; event %d:\n- %s\n+ %s", i+1, fullLines[i], l)
				}
			}

			var rest trace.Memory
			optsResume := base
			optsResume.Trace = &rest
			optsResume.Checkpoint = ck
			optsResume.CheckpointEvery = 2
			repRes, err := core.Resume(tgt, optsResume, ck)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			got := append(append([]string(nil), partLines...), lines(rest.Events)...)
			if len(got) != len(fullLines) {
				t.Fatalf("concatenated trace has %d events, full run %d", len(got), len(fullLines))
			}
			for i := range got {
				if got[i] != fullLines[i] {
					t.Fatalf("resumed trace diverges at event %d:\n- %s\n+ %s", i+1, fullLines[i], got[i])
				}
			}
			if a, b := normalized(t, repFull), normalized(t, repRes); a != b {
				t.Fatalf("final reports differ:\nfull:    %s\nresumed: %s", a, b)
			}
		})
	}
}

// pickPoison finds a baseline round whose injected instance is not the
// final script — a candidate the search tries and moves past, which the
// isolation tests turn into a trap.
func pickPoison(t *testing.T, rep *core.Report) inject.Instance {
	t.Helper()
	for _, rd := range rep.RoundLog {
		if rd.Injected != nil && *rd.Injected != *rep.Script {
			return *rd.Injected
		}
	}
	t.Fatal("baseline has no non-script injection to poison")
	return inject.Instance{}
}

// poisonWorkload wraps a target so that injecting the poison instance
// triggers trap (from a watcher actor polling the injection runtime).
func poisonWorkload(tgt *core.Target, poison inject.Instance, trap func(env *cluster.Env)) *core.Target {
	cp := *tgt
	orig := tgt.Workload
	cp.Workload = func(env *cluster.Env) {
		orig(env)
		fired := false
		env.Sim.Every("poison-watch", des.Millisecond, func() {
			if fired {
				return
			}
			for _, ev := range env.FI.InjectedAll() {
				if ev.Site == poison.Site && ev.Occurrence == poison.Occurrence {
					fired = true
					trap(env)
					return
				}
			}
		})
	}
	return &cp
}

func inconclusiveClasses(events []trace.Event) []string {
	var out []string
	for i := range events {
		if events[i].Type == trace.Inconclusive {
			out = append(out, events[i].Class)
		}
	}
	return out
}

// TestPanicIsolation: a target that panics whenever one specific candidate
// is injected must not kill the process; the poisoned rounds degrade to
// inconclusive and the search still reproduces the failure.
func TestPanicIsolation(t *testing.T) {
	tgt := target(t, "f1")
	base := core.Options{Strategy: core.FullFeedback, Seed: 1, Window: 1}
	baseline := core.Reproduce(tgt, base)
	if !baseline.Reproduced {
		t.Fatal("baseline not reproduced")
	}
	poison := pickPoison(t, baseline)

	wrapped := poisonWorkload(tgt, poison, func(env *cluster.Env) {
		panic("poisoned trial: injected " + poison.Site)
	})
	var mem trace.Memory
	opts := base
	opts.Trace = &mem
	rep := core.Reproduce(wrapped, opts)
	if !rep.Reproduced {
		t.Fatalf("search died under a panicking target: %+v", rep)
	}
	if rep.InconclusiveRounds < 1 {
		t.Fatal("no inconclusive rounds recorded for the poisoned candidate")
	}
	classes := inconclusiveClasses(mem.Events)
	if len(classes) == 0 || classes[0] != cluster.ClassPanic {
		t.Fatalf("inconclusive classes = %v, want leading %q", classes, cluster.ClassPanic)
	}
	// The report mirrors the trace.
	found := false
	for _, rd := range rep.RoundLog {
		if rd.Inconclusive && rd.Failure == cluster.ClassPanic {
			found = true
		}
	}
	if !found {
		t.Fatal("report has no inconclusive round of class panic")
	}
}

// TestLivelockWatchdog: a poisoned trial that spins in a zero-delay
// self-scheduling loop never advances virtual time, so only the event
// budget can end it. The round must degrade to inconclusive (class
// event-budget) within the budget, and the search must still reproduce.
func TestLivelockWatchdog(t *testing.T) {
	tgt := target(t, "f1")
	base := core.Options{Strategy: core.FullFeedback, Seed: 1, Window: 1}
	baseline := core.Reproduce(tgt, base)
	if !baseline.Reproduced {
		t.Fatal("baseline not reproduced")
	}
	poison := pickPoison(t, baseline)

	wrapped := poisonWorkload(tgt, poison, func(env *cluster.Env) {
		var spin func()
		spin = func() { env.Sim.Go("livelock", spin) }
		env.Sim.Go("livelock", spin)
	})
	var mem trace.Memory
	opts := base
	opts.Trace = &mem
	opts.EventBudget = 50_000
	rep := core.Reproduce(wrapped, opts)
	if !rep.Reproduced {
		t.Fatalf("search hung or died under a livelocked target: %+v", rep)
	}
	if rep.InconclusiveRounds < 1 {
		t.Fatal("no inconclusive rounds recorded for the livelocked candidate")
	}
	classes := inconclusiveClasses(mem.Events)
	if len(classes) == 0 || classes[0] != cluster.ClassEventBudget {
		t.Fatalf("inconclusive classes = %v, want leading %q", classes, cluster.ClassEventBudget)
	}
}

// TestOraclePanicDegrades: an oracle that panics on one specific injection
// is recovered into an inconclusive round of class oracle.
func TestOraclePanicDegrades(t *testing.T) {
	tgt := target(t, "f1")
	base := core.Options{Strategy: core.FullFeedback, Seed: 1, Window: 1}
	baseline := core.Reproduce(tgt, base)
	if !baseline.Reproduced {
		t.Fatal("baseline not reproduced")
	}
	poison := pickPoison(t, baseline)

	cp := *tgt
	orig := tgt.Oracle
	cp.Oracle.Check = func(r *cluster.Result) bool {
		for _, ev := range r.Env.FI.InjectedAll() {
			if ev.Site == poison.Site && ev.Occurrence == poison.Occurrence {
				panic("oracle bug on " + poison.Site)
			}
		}
		return orig.Satisfied(r)
	}
	var mem trace.Memory
	opts := base
	opts.Trace = &mem
	rep := core.Reproduce(&cp, opts)
	if !rep.Reproduced {
		t.Fatalf("search died under a panicking oracle: %+v", rep)
	}
	if rep.InconclusiveRounds < 1 {
		t.Fatal("no inconclusive rounds recorded for the oracle panic")
	}
	classes := inconclusiveClasses(mem.Events)
	if len(classes) == 0 || classes[0] != cluster.ClassOracle {
		t.Fatalf("inconclusive classes = %v, want leading %q", classes, cluster.ClassOracle)
	}
}

// TestFreeRunPanicIsFatalButContained: a target that always panics cannot
// be searched at all — but the process survives and the report says why.
func TestFreeRunPanicIsFatalButContained(t *testing.T) {
	tgt := target(t, "f1")
	cp := *tgt
	cp.Workload = func(env *cluster.Env) {
		env.Sim.Go("broken", func() { panic("boot failure") })
	}
	var mem trace.Memory
	rep := core.Reproduce(&cp, core.Options{Strategy: core.FullFeedback, Seed: 1, Trace: &mem})
	if rep.Reproduced {
		t.Fatal("reproduced with a target that cannot even boot")
	}
	if rep.Error == "" || !strings.Contains(rep.Error, "free run failed twice") {
		t.Fatalf("Error = %q, want free-run failure", rep.Error)
	}
	if n := len(mem.Events); n == 0 || mem.Events[n-1].Type != trace.Outcome || mem.Events[n-1].Reason != trace.ReasonError {
		t.Fatalf("trace does not end in a %s outcome", trace.ReasonError)
	}
}

// TestResumeRejectsMismatchedCheckpoint: a checkpoint resumed against the
// wrong target, seed or strategy is an error, never a silent wrong search.
func TestResumeRejectsMismatchedCheckpoint(t *testing.T) {
	tgt := target(t, "f1")
	ck := filepath.Join(t.TempDir(), "ck.json")
	opts := core.Options{Strategy: core.FullFeedback, Seed: 1, Window: 1,
		Checkpoint: ck, CheckpointEvery: 2, StopAfterRound: 4}
	rep := core.Reproduce(tgt, opts)
	if !rep.Interrupted {
		t.Fatal("setup run not interrupted")
	}

	cases := []struct {
		name string
		tgt  *core.Target
		opts core.Options
		want string
	}{
		{"wrong target", target(t, "f3"), core.Options{Strategy: core.FullFeedback, Seed: 1, Window: 1}, "target"},
		{"wrong seed", tgt, core.Options{Strategy: core.FullFeedback, Seed: 2, Window: 1}, "seed"},
		{"wrong strategy", tgt, core.Options{Strategy: core.Random, Seed: 1, Window: 1}, "strategy"},
		{"wrong addressing", tgt, core.Options{Strategy: core.FullFeedback, Seed: 1, Window: 1,
			Addressing: core.AddrPath}, "addressing"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := core.Resume(c.tgt, c.opts, ck)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want mention of %q", err, c.want)
			}
		})
	}

	t.Run("missing checkpoint", func(t *testing.T) {
		_, err := core.Resume(tgt, core.Options{Strategy: core.FullFeedback, Seed: 1, Window: 1},
			filepath.Join(t.TempDir(), "nope.json"))
		if err == nil {
			t.Fatal("resume from a missing checkpoint succeeded")
		}
	})
}

// TestResumeRejectsLegacyCheckpointVersion: legacy envelopes — version 1
// predates path-sensitive addressing and the pair fault class, version 2
// predates the partial fault class — must be rejected loudly by the
// envelope layer, never resumed into a search whose instance identities
// or occurrence counters they cannot describe. The fixtures are faithful
// copies of what those releases wrote.
func TestResumeRejectsLegacyCheckpointVersion(t *testing.T) {
	tgt := target(t, "f1")
	cases := []struct {
		fixture string
		want    string
	}{
		{"legacy_v1_checkpoint.json", "version 1, want 3"},
		{"legacy_v2_checkpoint.json", "version 2, want 3"},
	}
	for _, c := range cases {
		t.Run(c.fixture, func(t *testing.T) {
			_, err := core.Resume(tgt, core.Options{Strategy: core.FullFeedback, Seed: 1, Window: 1},
				filepath.Join("testdata", c.fixture))
			if err == nil {
				t.Fatalf("resume accepted the legacy checkpoint %s", c.fixture)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want a version-skew message naming both versions", err)
			}
		})
	}
}

// TestCheckpointRecordsAddressing: a path-addressed search round-trips its
// addressing mode through the checkpoint, and the restored search resumes
// without error under the same mode.
func TestCheckpointRecordsAddressing(t *testing.T) {
	tgt := target(t, "f1")
	ck := filepath.Join(t.TempDir(), "ck.json")
	opts := core.Options{Strategy: core.FullFeedback, Seed: 1, Window: 1,
		Addressing: core.AddrPath, Checkpoint: ck, CheckpointEvery: 2, StopAfterRound: 4}
	rep := core.Reproduce(tgt, opts)
	if !rep.Interrupted {
		t.Fatal("setup run not interrupted")
	}

	// Resuming in the default occurrence mode must fail: the tried set was
	// recorded against path identities.
	_, err := core.Resume(tgt, core.Options{Strategy: core.FullFeedback, Seed: 1, Window: 1}, ck)
	if err == nil || !strings.Contains(err.Error(), "addressing") {
		t.Fatalf("err = %v, want an addressing-mismatch error", err)
	}

	// Resuming under the recorded mode continues the search.
	resumed := core.Options{Strategy: core.FullFeedback, Seed: 1, Window: 1, Addressing: core.AddrPath}
	if _, err := core.Resume(tgt, resumed, ck); err != nil {
		t.Fatalf("resume under the recorded addressing mode: %v", err)
	}
}

// TestInterruptedTraceHasNoOutcome: the prefix property depends on an
// interrupted search never emitting an outcome event.
func TestInterruptedTraceHasNoOutcome(t *testing.T) {
	tgt := target(t, "f1")
	var mem trace.Memory
	rep := core.Reproduce(tgt, core.Options{
		Strategy: core.FullFeedback, Seed: 1, Window: 1,
		StopAfterRound: 2, Trace: &mem,
	})
	if !rep.Interrupted {
		t.Fatal("not interrupted")
	}
	for i := range mem.Events {
		if mem.Events[i].Type == trace.Outcome {
			t.Fatal("interrupted trace carries an outcome event")
		}
	}
}
