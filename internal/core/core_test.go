package core_test

import (
	"testing"

	"anduril/internal/core"
	"anduril/internal/failures"
)

func target(t testing.TB, id string) *core.Target {
	t.Helper()
	s, ok := failures.ByID(id)
	if !ok {
		t.Fatalf("no scenario %s", id)
	}
	tgt, err := s.BuildTarget()
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

func TestFullFeedbackReproducesZKFailures(t *testing.T) {
	for _, id := range []string{"f1", "f2", "f3", "f4"} {
		id := id
		t.Run(id, func(t *testing.T) {
			tgt := target(t, id)
			rep := core.Reproduce(tgt, core.Options{Strategy: core.FullFeedback, Seed: 1})
			if !rep.Reproduced {
				t.Fatalf("%s not reproduced in %d rounds (sites=%d insts=%d obs=%d)",
					id, rep.Rounds, rep.CandidateSites, rep.CandidateInstances, rep.RelevantObservables)
			}
			t.Logf("%s reproduced in %d rounds via %v (obs=%d sites=%d insts=%d)",
				id, rep.Rounds, *rep.Script, rep.RelevantObservables, rep.CandidateSites, rep.CandidateInstances)
			if rep.Script == nil {
				t.Fatal("no reproduction script")
			}
			// The script must deterministically replay under its own seed.
			if !core.Verify(tgt, *rep.Script, rep.ScriptSeed) {
				t.Errorf("script %v does not verify", *rep.Script)
			}
		})
	}
}

func TestCandidateSpaceNontrivial(t *testing.T) {
	tgt := target(t, "f1")
	rep := core.Reproduce(tgt, core.Options{Strategy: core.FullFeedback, Seed: 1})
	if rep.CandidateSites < 3 {
		t.Errorf("candidate sites=%d, expected a real search space", rep.CandidateSites)
	}
	if rep.CandidateInstances < 30 {
		t.Errorf("candidate instances=%d, expected a large dynamic space", rep.CandidateInstances)
	}
	if rep.RelevantObservables == 0 {
		t.Error("no relevant observables extracted")
	}
}

func TestVariantsAlsoSearch(t *testing.T) {
	tgt := target(t, "f1")
	for _, strat := range []core.Strategy{
		core.Exhaustive, core.SiteDistance, core.SiteDistanceLimit,
		core.SiteFeedback, core.MultiplyFeedback,
	} {
		rep := core.Reproduce(tgt, core.Options{Strategy: strat, Seed: 1, MaxRounds: 300})
		t.Logf("%s: reproduced=%v rounds=%d", strat, rep.Reproduced, rep.Rounds)
		if rep.Rounds == 0 {
			t.Errorf("%s: no rounds executed", strat)
		}
	}
}

func TestBaselinesRun(t *testing.T) {
	tgt := target(t, "f1")
	for _, strat := range []core.Strategy{core.FATE, core.CrashTuner, core.StackTrace, core.Random} {
		rep := core.Reproduce(tgt, core.Options{Strategy: strat, Seed: 1, MaxRounds: 100})
		t.Logf("%s: reproduced=%v rounds=%d", strat, rep.Reproduced, rep.Rounds)
		if rep.Rounds == 0 {
			t.Errorf("%s: no rounds executed", strat)
		}
	}
}

func TestRankTracking(t *testing.T) {
	tgt := target(t, "f1")
	rep := core.Reproduce(tgt, core.Options{Strategy: core.FullFeedback, Seed: 1, TrackRank: true})
	if !rep.Reproduced {
		t.Fatal("not reproduced")
	}
	sawRank := false
	for _, rd := range rep.RoundLog {
		if rd.RootRank > 0 {
			sawRank = true
		}
	}
	if !sawRank {
		t.Error("root rank never tracked")
	}
}

func TestReportMetrics(t *testing.T) {
	tgt := target(t, "f1")
	rep := core.Reproduce(tgt, core.Options{Strategy: core.FullFeedback, Seed: 1})
	if rep.MedianRunTime() <= 0 {
		t.Error("median run time not recorded")
	}
	if rep.MedianInjectReqs() <= 0 {
		t.Error("median inject requests not recorded")
	}
	if rep.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
}
