package core

// Microbenchmarks for the ranking layer: the naive full recompute + full
// re-sort per round against the incremental priority index. The workload
// models a feedback round on a mid-sized target: a handful of observables
// bumped, then one ranking. Baseline numbers are recorded in
// BENCH_core_ranking.json at the repo root.

import (
	"math/rand"
	"testing"
)

const (
	benchSites = 1000
	benchObs   = 200
)

// BenchmarkComputePriorities measures one full F_i recompute over every
// site — the fixed per-round cost the naive ranking pays.
func BenchmarkComputePriorities(b *testing.B) {
	e := synthEngine(benchSites, benchObs, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.computePriorities(true, true)
	}
}

// benchRanker measures one feedback round (bump a few observables, then
// rank) under the given ranker implementation.
func benchRanker(b *testing.B, naive bool) {
	e := synthEngine(benchSites, benchObs, 11)
	rk := e.newRankerNamed(true, naive)
	rk.ranked() // initial build outside the loop for both
	rng := rand.New(rand.NewSource(42))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 0; n < 4; n++ {
			k := rng.Intn(benchObs)
			e.obs[k].priority++
			rk.observableBumped(k)
		}
		rk.ranked()
	}
}

func BenchmarkRankedSites(b *testing.B) {
	b.Run("naive", func(b *testing.B) { benchRanker(b, true) })
	b.Run("indexed", func(b *testing.B) { benchRanker(b, false) })
}
