package core_test

// End-to-end regressions for the partial-failure scenarios (f32–f34): the
// partial fault class reproduces them through the ordinary feedback loop,
// the search traces are byte-identical across runs and pinned by goldens,
// the reproduction scripts replay through Verify, and enabling partial
// enumeration on the paper's 22 site-rooted failures changes nothing
// about the site search.
//
// Regenerate the partial trace goldens after an intentional change with:
//
//	go test ./internal/core -run TestPartialGoldenTraces -update

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"

	"anduril/internal/core"
	"anduril/internal/failures"
	"anduril/internal/inject"
	"anduril/internal/trace"
)

var partialIDs = []string{"f32", "f33", "f34"}

// TestPartialScenariosReproduceEndToEnd is the tentpole acceptance test:
// each partial-rooted failure's root instance is enumerated from the free
// run, ranked, injected and confirmed by the oracle, and the resulting
// script replays standalone (the plan carries the partial instance, so
// Verify needs no enumeration flag).
func TestPartialScenariosReproduceEndToEnd(t *testing.T) {
	for _, id := range partialIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			sc, ok := failures.ByID(id)
			if !ok {
				t.Fatalf("scenario %s not registered", id)
			}
			tgt := target(t, id)
			rep := core.Reproduce(tgt, core.Options{Strategy: core.FullFeedback, Seed: 1, MaxRounds: 500})
			if !rep.Reproduced {
				t.Fatalf("%s not reproduced in %d rounds", id, rep.Rounds)
			}
			if !rep.PartialRooted {
				t.Fatalf("%s reproduced by %v, not marked partial-rooted", id, rep.Script)
			}
			if !inject.IsPartialSite(rep.Script.Site) {
				t.Fatalf("%s script %v is not a partial pseudo-site", id, rep.Script)
			}
			if rep.Script.Site != sc.RootSite {
				t.Fatalf("%s reproduced via %v, ground truth %s", id, *rep.Script, sc.RootSite)
			}
			if !core.Verify(tgt, *rep.Script, rep.ScriptSeed) {
				t.Fatalf("%s script %v does not verify under seed %d", id, rep.Script, rep.ScriptSeed)
			}
		})
	}
}

// TestPartialGoldenTraces pins the full search trajectory of each
// partial scenario; TestPartialTraceDeterministic proves a second
// in-process run emits the identical byte stream.
func TestPartialGoldenTraces(t *testing.T) {
	for _, id := range partialIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			got := pairTrace(t, id)
			path := fmt.Sprintf("testdata/%s.trace.jsonl", id)
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("golden trace updated: %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden trace (run with -update to create it): %v", err)
			}
			if bytes.Equal(got, want) {
				return
			}
			gotEv, gerr := trace.ReadAll(bytes.NewReader(got))
			wantEv, werr := trace.ReadAll(bytes.NewReader(want))
			if gerr != nil || werr != nil {
				t.Fatalf("trace differs from golden and does not decode: got err %v, want err %v", gerr, werr)
			}
			for _, d := range trace.Diff(wantEv, gotEv, 10) {
				t.Error(d)
			}
			t.Fatalf("trace differs from %s (%d vs %d events); rerun with -update if intentional",
				path, len(gotEv), len(wantEv))
		})
	}
}

func TestPartialTraceDeterministic(t *testing.T) {
	for _, id := range partialIDs {
		a := pairTrace(t, id)
		b := pairTrace(t, id)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: two runs produced different traces", id)
		}
	}
}

// TestPartialInjectedTraceEvents: a partial-rooted search's trace records
// the injection of its script as a partial_injected event carrying the
// partial class and subject (and peer, for channel-scoped classes like
// dup-deliver) of the executed fault.
func TestPartialInjectedTraceEvents(t *testing.T) {
	tgt := target(t, "f34")
	var mem trace.Memory
	rep := core.Reproduce(tgt, core.Options{Strategy: core.FullFeedback, Seed: 1, MaxRounds: 500, Trace: &mem})
	if !rep.Reproduced {
		t.Fatal("f34 not reproduced")
	}
	found := false
	for i := range mem.Events {
		ev := &mem.Events[i]
		if ev.Type != trace.PartialInjected {
			continue
		}
		if ev.Site == rep.Script.Site && ev.Occ == rep.Script.Occurrence {
			found = true
			if ev.Class != string(inject.PartialDupDeliver) || ev.Subject != "mq-producer-1" || ev.Peer != "broker-a" {
				t.Fatalf("partial_injected event incomplete: %+v", ev)
			}
			if l := trace.Line(ev); !strings.Contains(l, "partial_injected") {
				t.Fatalf("rendered line does not name the event: %s", l)
			}
		}
	}
	if !found {
		t.Fatalf("no partial_injected event for script %v", rep.Script)
	}
}

// TestSiteSearchUnchangedByPartialEnumeration is the compatibility
// acceptance criterion: turning partial-fault enumeration on for the
// paper's 22 site-rooted failures must not perturb the site search —
// same rounds, same injections, same windows, same script. Partial
// instances enter the window only after every site-class instance has
// been tried, and these searches all conclude before that point.
func TestSiteSearchUnchangedByPartialEnumeration(t *testing.T) {
	for _, s := range failures.SiteDataset() {
		s := s
		t.Run(s.ID, func(t *testing.T) {
			t.Parallel()
			tgt := target(t, s.ID)
			base := core.Reproduce(tgt, core.Options{Strategy: core.FullFeedback, Seed: 1, MaxRounds: 500})
			withPartial := core.Reproduce(tgt, core.Options{
				Strategy: core.FullFeedback, Seed: 1, MaxRounds: 500,
				FaultClasses: []string{core.ClassSite, core.ClassPartial},
			})
			if !base.Reproduced {
				t.Fatalf("%s baseline not reproduced", s.ID)
			}
			if withPartial.PartialRooted {
				t.Fatalf("%s partial-rooted under combined classes: %v", s.ID, withPartial.Script)
			}
			if a, b := roundSummary(base), roundSummary(withPartial); a != b {
				t.Fatalf("%s search trajectory changed with partial enumeration:\n--- site-only\n%s--- site+partial\n%s", s.ID, a, b)
			}
		})
	}
}
