package core

// White-box tests for the explorer's priority machinery.

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"anduril/internal/cluster"
	"anduril/internal/inject"
	"anduril/internal/logdiff"
	"anduril/internal/oracle"
)

// stubEngine builds an engine with hand-made observables, distances and
// instances, bypassing the free run.
func stubEngine(o Options) *engine {
	e := newEngine(&Target{ID: "stub"}, o.withDefaults())
	e.obs = []*observable{
		{key: logdiff.Key{Thread: "t", Msg: "alpha"}, positions: []int{100}, templates: []string{"alpha"}},
		{key: logdiff.Key{Thread: "t", Msg: "beta"}, positions: []int{200}, templates: []string{"beta"}},
	}
	e.dist = map[string]map[string]int{
		"s.near":  {"alpha": 2},
		"s.far":   {"alpha": 7},
		"s.beta":  {"beta": 3},
		"s.both":  {"alpha": 5, "beta": 4},
		"s.none":  {},
		"s.gamma": {"gamma": 1}, // reaches only an irrelevant template
	}
	// Sorted by id, as engine.setup leaves them.
	for _, id := range []string{"s.beta", "s.both", "s.far", "s.gamma", "s.near", "s.none"} {
		e.sites = append(e.sites, &siteState{
			id:        id,
			instances: []instance{{occ: 1, alignedPos: 90}, {occ: 2, alignedPos: 195}, {occ: 3, alignedPos: 400}},
		})
	}
	return e
}

func TestComputePrioritiesMin(t *testing.T) {
	e := stubEngine(Options{})
	e.computePriorities(true, true)
	get := func(id string) *siteState {
		for _, s := range e.sites {
			if s.id == id {
				return s
			}
		}
		return nil
	}
	if got := get("s.near").f; got != 2 {
		t.Fatalf("s.near F=%v", got)
	}
	if got := get("s.both").f; got != 4 { // min(5, 4)
		t.Fatalf("s.both F=%v", got)
	}
	if got := get("s.both").bestObs; got != 1 {
		t.Fatalf("s.both bestObs=%d", got)
	}
	if !math.IsInf(get("s.none").f, 1) || !math.IsInf(get("s.gamma").f, 1) {
		t.Fatal("unreachable sites must have infinite priority")
	}

	// Feedback: deprioritizing alpha flips s.both's best observable logic.
	e.obs[1].priority = 10 // beta now expensive
	e.computePriorities(true, true)
	if got := get("s.both").f; got != 5 { // min(5+0, 4+10)
		t.Fatalf("after feedback, s.both F=%v", got)
	}
	if got := get("s.both").bestObs; got != 0 {
		t.Fatalf("after feedback, s.both bestObs=%d", got)
	}
}

func TestComputePrioritiesSumAblation(t *testing.T) {
	e := stubEngine(Options{AggregateSum: true})
	e.computePriorities(true, true)
	for _, s := range e.sites {
		if s.id == "s.both" {
			if s.f != 9 { // 5 + 4
				t.Fatalf("sum F=%v", s.f)
			}
			if s.bestObs != 1 { // nearest partial still beta (4 < 5)
				t.Fatalf("sum bestObs=%d", s.bestObs)
			}
		}
	}
}

func TestTemporalDistance(t *testing.T) {
	e := stubEngine(Options{})
	e.computePriorities(true, true)
	var near *siteState
	for _, s := range e.sites {
		if s.id == "s.near" {
			near = s
		}
	}
	// s.near's best observable is alpha at failure position 100.
	if d := e.temporalDistance(near, instance{alignedPos: 90}); d != 10 {
		t.Fatalf("T=%v", d)
	}
	if d := e.temporalDistance(near, instance{alignedPos: 400}); d != 300 {
		t.Fatalf("T=%v", d)
	}
}

func TestBestUntriedTemporalVsOrder(t *testing.T) {
	e := stubEngine(Options{})
	e.computePriorities(true, true)
	var near *siteState
	for _, s := range e.sites {
		if s.id == "s.near" {
			near = s
		}
	}
	// Temporal: occ=2 (aligned 195) is farther from alpha@100 than occ=1
	// (aligned 90, distance 10), so occ 1 wins.
	inst, ok := e.bestUntried(near, true, 0)
	if !ok || inst.occ != 1 {
		t.Fatalf("temporal best: %+v ok=%v", inst, ok)
	}
	near.tried.Add(1)
	inst, _ = e.bestUntried(near, true, 0)
	if inst.occ != 2 {
		t.Fatalf("after trying occ1: %+v", inst)
	}
	// Order mode ignores alignment: lowest untried occurrence.
	near.tried = triedSet{}
	inst, _ = e.bestUntried(near, false, 0)
	if inst.occ != 1 {
		t.Fatalf("order best: %+v", inst)
	}
	// Instance limit hides occurrences beyond the cap.
	near.tried = triedSet{}
	near.tried.Add(1)
	near.tried.Add(2)
	if _, ok := e.bestUntried(near, false, 2); ok {
		t.Fatal("limit 2 should exhaust after two occurrences")
	}
}

func TestRankedSitesStable(t *testing.T) {
	e := stubEngine(Options{})
	e.computePriorities(true, true)
	ranked := e.rankedSites()
	if ranked[0].id != "s.near" {
		t.Fatalf("rank 1: %s", ranked[0].id)
	}
	// Equal-F sites must order deterministically by id.
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].f == ranked[i].f && ranked[i-1].id > ranked[i].id {
			t.Fatalf("unstable tiebreak at %d", i)
		}
	}
	e.t.RootSite = "s.beta"
	if r := e.rootRank(ranked); r < 1 || r > len(ranked) {
		t.Fatalf("rootRank=%d", r)
	}
	e.t.RootSite = "absent"
	if r := e.rootRank(ranked); r != 0 {
		t.Fatalf("absent rootRank=%d", r)
	}
}

func TestBakedPlanComposition(t *testing.T) {
	e := stubEngine(Options{})
	if e.bakedPlan(nil) != nil {
		t.Fatal("no baked faults should mean nil plan")
	}
	e.baked = []inject.Instance{{Site: "a", Occurrence: 1}}
	plan := e.bakedPlan(inject.Exact(inject.Instance{Site: "b", Occurrence: 1}))
	rt := inject.NewRuntime(plan)
	if rt.Reach("a", inject.IO) == nil || rt.Reach("b", inject.IO) == nil {
		t.Fatal("both faults should inject")
	}
	if !e.isBaked(inject.TraceEvent{Site: "a", Occurrence: 1}) {
		t.Fatal("isBaked failed")
	}
	if e.isBaked(inject.TraceEvent{Site: "b", Occurrence: 1}) {
		t.Fatal("b is not baked")
	}
}

func TestMedianHelpers(t *testing.T) {
	rounds := []Round{
		{InitTime: 3 * time.Millisecond, RunTime: 30, InjectReqs: 5},
		{InitTime: 1 * time.Millisecond, RunTime: 10, InjectReqs: 1},
		{InitTime: 2 * time.Millisecond, RunTime: 20, InjectReqs: 3},
	}
	r := &Report{RoundLog: rounds}
	if got := r.MedianInitTime(); got != 2*time.Millisecond {
		t.Fatalf("median init: %v", got)
	}
	if got := r.MedianInjectReqs(); got != 3 {
		t.Fatalf("median reqs: %d", got)
	}
	empty := &Report{}
	if empty.MedianInitTime() != 0 || empty.MedianInjectReqs() != 0 || empty.MeanDecisionLatency() != 0 {
		t.Fatal("empty report medians should be zero")
	}
}

// Regression for the flexible-window overflow: when no candidate in the
// window occurs, the window doubles every round (§5.2.5). Unclamped, 63+
// consecutive no-injection rounds overflow int — the window goes
// non-positive, candidate selection picks nothing, and the loop falsely
// reports the fault space exhausted. The clamp caps growth at the total
// candidate-instance count, so the search keeps probing until MaxRounds.
func TestFlexibleWindowOverflowClamped(t *testing.T) {
	const maxRounds = 80 // > 63, enough to overflow without the clamp
	e := stubEngine(Options{Window: 1, MaxRounds: maxRounds})
	// An empty workload never reaches a fault site, so every round is a
	// no-injection round and the window doubles each time.
	e.t.Workload = func(env *cluster.Env) {}
	e.t.Oracle = oracle.Predicate("never", func(*cluster.Result) bool { return false })
	total := 0
	for _, s := range e.sites {
		total += len(s.instances)
	}
	e.report.CandidateInstances = total // what setup would have counted

	e.feedbackLoop(feedbackSpec{})

	if e.report.Reproduced {
		t.Fatal("nothing should reproduce")
	}
	if e.report.Rounds != maxRounds {
		t.Fatalf("stopped after %d rounds, want %d (false fault-space exhaustion)", e.report.Rounds, maxRounds)
	}
	for _, rd := range e.report.RoundLog {
		if rd.WindowSize < 1 || rd.WindowSize > total {
			t.Fatalf("round %d: window %d out of [1,%d]", rd.N, rd.WindowSize, total)
		}
	}
}

func TestGrowWindow(t *testing.T) {
	e := stubEngine(Options{})
	e.report.CandidateInstances = 18
	cases := []struct{ in, want int }{
		{1, 2}, {2, 4}, {8, 16}, {16, 18}, {18, 18}, {100, 18},
	}
	for _, c := range cases {
		if got := e.growWindow(c.in); got != c.want {
			t.Fatalf("growWindow(%d)=%d want %d", c.in, got, c.want)
		}
	}
	// Fixed-window ablation never grows.
	e.o.FixedWindow = true
	if got := e.growWindow(3); got != 3 {
		t.Fatalf("fixed window grew to %d", got)
	}
	// Degenerate: no candidate instances counted — must stay positive.
	e.o.FixedWindow = false
	e.report.CandidateInstances = 0
	if got := e.growWindow(4); got != 1 {
		t.Fatalf("growWindow with no instances = %d, want 1", got)
	}
}

// markTried must hit the indexed site and ignore unknown sites.
func TestMarkTriedIndex(t *testing.T) {
	e := stubEngine(Options{})
	e.siteIndex = make(map[string]*siteState, len(e.sites))
	for _, s := range e.sites {
		e.siteIndex[s.id] = s
	}
	e.markTried(inject.Instance{Site: "s.near", Occurrence: 2})
	e.markTried(inject.Instance{Site: "no.such.site", Occurrence: 1})
	for _, s := range e.sites {
		want := s.id == "s.near"
		if s.tried.Has(2) != want {
			t.Fatalf("site %s tried.Has(2)=%v want %v", s.id, s.tried.Has(2), want)
		}
	}
}

// Property: temporal distance is non-negative and zero exactly at an
// observable position.
func TestTemporalDistanceProperty(t *testing.T) {
	e := stubEngine(Options{})
	e.computePriorities(true, true)
	var near *siteState
	for _, s := range e.sites {
		if s.id == "s.near" {
			near = s
		}
	}
	f := func(pos uint16) bool {
		d := e.temporalDistance(near, instance{alignedPos: float64(pos)})
		if d < 0 {
			return false
		}
		if pos == 100 && d != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
