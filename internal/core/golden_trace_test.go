package core_test

// Golden-trace regression: the explorer's structured trace for the
// quickstart target (f3, ZK-4203) under a fixed seed must match the
// committed golden file byte for byte. This pins down the whole search
// trajectory — observables, site ranking, window growth, feedback deltas,
// outcome — not just the final report, proving end-to-end determinism.
//
// Regenerate after an intentional explorer change with:
//
//	go test ./internal/core -run TestGoldenTraceQuickstart -update

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"anduril/internal/core"
	"anduril/internal/failures"
	"anduril/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

const goldenTracePath = "testdata/quickstart.trace.jsonl"

// quickstartTrace runs the quickstart reproduction (examples/quickstart:
// f3 with seed 1 and default options) with a JSONL sink attached.
func quickstartTrace(t *testing.T) []byte {
	t.Helper()
	sc, ok := failures.ByID("f3")
	if !ok {
		t.Fatal("no quickstart failure f3")
	}
	tgt, err := sc.BuildTarget()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := trace.NewWriter(&buf)
	rep := core.Reproduce(tgt, core.Options{Seed: 1, Trace: sink})
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	if !rep.Reproduced {
		t.Fatalf("quickstart target not reproduced in %d rounds", rep.Rounds)
	}
	return buf.Bytes()
}

func TestGoldenTraceQuickstart(t *testing.T) {
	got := quickstartTrace(t)

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenTracePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTracePath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden trace updated: %s (%d bytes)", goldenTracePath, len(got))
		return
	}

	want, err := os.ReadFile(goldenTracePath)
	if err != nil {
		t.Fatalf("read golden trace (run with -update to create it): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	// Decode both streams for a readable event-level diff before failing.
	gotEv, gerr := trace.ReadAll(bytes.NewReader(got))
	wantEv, werr := trace.ReadAll(bytes.NewReader(want))
	if gerr != nil || werr != nil {
		t.Fatalf("trace differs from golden and does not decode: got err %v, want err %v", gerr, werr)
	}
	for _, d := range trace.Diff(wantEv, gotEv, 10) {
		t.Error(d)
	}
	t.Fatalf("trace differs from %s (%d vs %d events); rerun with -update if the change is intentional",
		goldenTracePath, len(gotEv), len(wantEv))
}

// The trace must be identical across repeated in-process runs: no map
// iteration order, scheduling, or wall clock may leak into events.
func TestTraceDeterministicAcrossRuns(t *testing.T) {
	a := quickstartTrace(t)
	b := quickstartTrace(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two runs of the same (target, options) produced different traces")
	}
}

// A trace stream is well-formed: starts with free_run, ends with outcome,
// decodes cleanly, and its aggregate stats agree with the report.
func TestTraceWellFormed(t *testing.T) {
	sc, _ := failures.ByID("f17")
	tgt, err := sc.BuildTarget()
	if err != nil {
		t.Fatal(err)
	}
	mem := &trace.Memory{}
	rep := core.Reproduce(tgt, core.Options{Seed: 1, MaxRounds: 500, Trace: mem})
	if len(mem.Events) < 3 {
		t.Fatalf("only %d events", len(mem.Events))
	}
	if mem.Events[0].Type != trace.FreeRun {
		t.Fatalf("first event %s, want free_run", mem.Events[0].Type)
	}
	last := mem.Events[len(mem.Events)-1]
	if last.Type != trace.Outcome {
		t.Fatalf("last event %s, want outcome", last.Type)
	}
	if last.Reproduced != rep.Reproduced || last.Rounds != rep.Rounds {
		t.Fatalf("outcome (reproduced=%v rounds=%d) disagrees with report (%v, %d)",
			last.Reproduced, last.Rounds, rep.Reproduced, rep.Rounds)
	}
	if rep.Reproduced && (last.Site != rep.Script.Site || last.Occ != rep.Script.Occurrence ||
		last.ScriptSeed != rep.ScriptSeed || last.Reason != trace.ReasonReproduced) {
		t.Fatalf("outcome script %s#%d seed %d reason %s disagrees with report %v seed %d",
			last.Site, last.Occ, last.ScriptSeed, last.Reason, *rep.Script, rep.ScriptSeed)
	}
	stats := mem.Stats()
	if stats.Rounds != rep.Rounds {
		t.Fatalf("stats.Rounds=%d, report.Rounds=%d", stats.Rounds, rep.Rounds)
	}
	if stats.Injections == 0 || !stats.Reproduced {
		t.Fatalf("stats: %+v", stats)
	}
	// One free_run event, one outcome, and a decision per non-empty round.
	if stats.Events[trace.FreeRun] != 1 || stats.Events[trace.Outcome] != 1 {
		t.Fatalf("event counts: %v", stats.Events)
	}
}

// The terminal outcome distinguishes the guards: an unreproducible search
// under a tiny round cap reports round-cap; an exhausted queue reports
// fault-space exhaustion.
func TestTraceOutcomeReasons(t *testing.T) {
	sc, _ := failures.ByID("f17")
	tgt, err := sc.BuildTarget()
	if err != nil {
		t.Fatal(err)
	}
	mem := &trace.Memory{}
	core.Reproduce(tgt, core.Options{Strategy: core.Exhaustive, Seed: 1, MaxRounds: 1, Trace: mem})
	last := mem.Events[len(mem.Events)-1]
	if last.Type != trace.Outcome || last.Reproduced {
		t.Fatalf("outcome: %+v", last)
	}
	if last.Reason != trace.ReasonRoundCap {
		t.Fatalf("reason %q, want %q", last.Reason, trace.ReasonRoundCap)
	}

	// The CrashTuner queue for a failure without meta-info sites can drain
	// before the cap: the outcome must say exhausted, not round-cap.
	mem = &trace.Memory{}
	rep := core.Reproduce(tgt, core.Options{Strategy: core.CrashTuner, Seed: 1, MaxRounds: 500, Trace: mem})
	last = mem.Events[len(mem.Events)-1]
	if !rep.Reproduced && rep.Rounds < 500 && last.Reason != trace.ReasonExhausted {
		t.Fatalf("reason %q after %d rounds, want %q", last.Reason, rep.Rounds, trace.ReasonExhausted)
	}
}
