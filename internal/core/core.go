// Package core implements ANDURIL's Explorer (§5): the feedback-driven
// search over the fault space for the root-cause fault and timing.
//
// A reproduction run follows the workflow of §3: one free run of the
// workload collects the normal log and the dynamic fault-instance timeline;
// the failure log is diffed against it to extract relevant observables
// (§5.1); the static causal graph supplies spatial distances from fault
// sites to observables (§5.2.2); the free-run timeline, aligned onto the
// failure log's timeline, supplies temporal distances for fault instances
// (§5.2.3); and each unsuccessful injection feeds back into observable
// priorities (§5.2.1, Algorithm 2). Candidate instances are injected
// through a flexible priority window (§5.2.5).
//
// The package also implements the five ablation variants of §8.3 and the
// comparison systems of §8.4 (FATE, CrashTuner, stacktrace-injector, plus
// a chaos-style random injector) behind the same interface.
package core

import (
	"context"
	"encoding/json"
	"sort"
	"time"

	"anduril/internal/analysis"
	"anduril/internal/cluster"
	"anduril/internal/des"
	"anduril/internal/inject"
	"anduril/internal/logging"
	"anduril/internal/oracle"
	"anduril/internal/trace"
)

// Strategy selects the exploration algorithm.
type Strategy string

// Addressing selects how injection plans name dynamic fault instances.
type Addressing string

// Addressing modes. AddrOccurrence is the paper's (site, occurrence)
// currency: instance j of site i is "the j-th time the run reaches i".
// AddrPath is distributed execution indexing: an instance is named by its
// position in the distributed call tree — the chain of message-send edges
// from the workload root down to the reach, e.g.
// "client.put>coord.write[2]>dyn.store.persist#1". Path addresses are
// stable across runs whose interleavings shuffle global occurrence
// numbers, at the cost of per-reach path bookkeeping.
const (
	AddrOccurrence Addressing = "occurrence"
	AddrPath       Addressing = "path"
)

// ValidAddressing reports whether an addressing-mode name is recognized
// (for CLI validation). The empty string is valid and means the default.
func ValidAddressing(a string) bool {
	return a == "" || Addressing(a) == AddrOccurrence || Addressing(a) == AddrPath
}

// Strategies. FullFeedback is complete ANDURIL; the next five are the
// ablation variants of §8.3; the last four are the §8.4 baselines.
const (
	FullFeedback      Strategy = "full-feedback"
	Exhaustive        Strategy = "exhaustive-instance"
	SiteDistance      Strategy = "site-distance"
	SiteDistanceLimit Strategy = "site-distance-limit"
	SiteFeedback      Strategy = "site-feedback"
	MultiplyFeedback  Strategy = "multiply-feedback"
	FATE              Strategy = "fate"
	CrashTuner        Strategy = "crashtuner"
	StackTrace        Strategy = "stacktrace"
	Random            Strategy = "random"
)

// Target is one failure to reproduce: the inputs of §2.
//
// A Target is read-only during Reproduce: the explorer only reads its
// fields and derives all mutable search state internally, so one Target
// may back any number of concurrent Reproduce/Verify calls (the parallel
// evaluation harness relies on this). The contract extends to the field
// values — Workload must build a fresh system into the Env it is handed
// and Oracle.Check must only inspect the Result it receives; neither may
// capture mutable state shared across rounds.
type Target struct {
	ID          string // dataset id, e.g. "f17"
	Issue       string // upstream issue, e.g. "HB-25905"
	System      string
	Description string

	Workload cluster.Workload
	Horizon  des.Time
	Oracle   oracle.Oracle

	// FailureLog is the parsed production log from the uninstrumented
	// deployment.
	FailureLog []logging.Entry

	// Analysis is the static causal graph et al. for the target system.
	Analysis *analysis.Result

	// RootSite is the ground-truth root-cause site, used only for rank
	// tracking (Figure 6) and reporting — never by the search itself.
	RootSite string

	// FaultClasses are the fault classes the search explores for this
	// target by default ("site", "env", "pair", "partial"); nil means
	// site-only, the paper's fault space. Options.FaultClasses overrides
	// per run.
	FaultClasses []string
}

// Options tune the explorer.
type Options struct {
	Strategy      Strategy
	Window        int   // initial flexible-window size k (§5.2.5); default 10
	Adjust        int   // observable priority adjustment s (§5.2.1); default 1
	MaxRounds     int   // round cap; default 2000
	Seed          int64 // master seed; round r runs with Seed+r
	InstanceLimit int   // per-site instance cap for the limited variants; default 3
	TrackRank     bool  // record the root site's rank each round (Figure 6)

	// FaultClasses selects which fault classes the search explores:
	// "site" (error-return sites, the paper's fault space), "env"
	// (environment pseudo-sites: node crash/restart, pairwise
	// partition/heal, message drop/delay), "partial" (partial-failure
	// pseudo-sites at the sim-syscall boundary: short write, mid-append
	// ENOSPC, torn rename, duplicated delivery, eintr), and/or "pair"
	// (combined faults: two member instances injected in one round,
	// addressed through pair/ pseudo-sites). nil defaults to the
	// target's FaultClasses, and site-only when the target declares
	// none. Wider classes never perturb narrower searches: the window
	// admits env instances only after every selectable site-class
	// instance has been tried, partial instances only after the env
	// space is also spent, and pair instances last of all — each class
	// runs to exhaustion in its exact original order.
	FaultClasses []string

	// Addressing selects how candidate instances are named in plans:
	// AddrOccurrence (the default) uses the (site, occurrence) pairs of
	// the paper, AddrPath uses distributed execution indexing (canonical
	// call-path strings). Path addressing is seed-stable: the same
	// failure reproduces at the same address across runs even when
	// interleaving shifts renumber global occurrences.
	Addressing Addressing

	// RunsPerRound re-executes an unsuccessful injection under extra seeds
	// and feeds back the combined logs — the §6 mitigation for runs whose
	// internal concurrency makes crucial log messages probabilistic.
	// Default 1 (the paper's base algorithm).
	RunsPerRound int

	// Ablation knobs for the design choices §5.2.4 discusses. All default
	// to the paper's choices (min aggregation, #log-messages temporal
	// distance, doubling window, per-thread diff).
	AggregateSum    bool // F_i = sum_k(p_{i,k}) instead of min_k
	TemporalByOrder bool // T by instance order instead of log-message count
	FixedWindow     bool // never double the window on empty rounds
	GlobalDiff      bool // diff logs globally instead of per thread

	// NaiveRanking disables the incremental priority index and re-scores
	// every site with a full re-sort each round — the paper's algorithm as
	// literally written. Both rankers produce the identical (F_i, site id)
	// order; this knob exists for the equivalence tests and benchmarks.
	NaiveRanking bool

	// Checkpoint, when non-empty, is a file path the engine atomically
	// writes its search state to every CheckpointEvery rounds, so a killed
	// search can continue via Resume. "" (the default) disables
	// checkpointing at zero cost. Because per-round seeds derive from
	// Seed+round, a resumed run is byte-identical — trace and final report —
	// to the same run uninterrupted.
	Checkpoint      string
	CheckpointEvery int // rounds between checkpoint writes; default 10

	// CheckpointFlush, when non-nil alongside Checkpoint, is invoked
	// immediately BEFORE each checkpoint write — periodic or the forced
	// final write on interrupt — with the round the checkpoint will
	// record. External journals (the server's buffered trace WAL) flush
	// their per-round state here, so on disk the journal is always at or
	// ahead of the checkpoint: a crash between the flush and the write
	// loses only the newer checkpoint, never journaled events, and
	// recovery trims the journal back to whatever round the surviving
	// checkpoint names.
	CheckpointFlush func(round int)

	// EventBudget caps the DES events of a single trial run. A livelocked
	// target (a zero-delay self-scheduling loop) never advances virtual
	// time, so the time horizon alone cannot stop it; the budget is the
	// watchdog that bounds the round, degrading it to inconclusive.
	// Default DefaultEventBudget; negative means unlimited.
	EventBudget int

	// Context, when non-nil, cancels the search from outside: the engine
	// checks it between rounds and the DES kernel polls it inside runs.
	// A cancelled search returns with Report.Interrupted set and emits no
	// trace outcome, so its trace stays a resumable prefix.
	Context context.Context

	// StopAfterRound, when positive, interrupts the search after recording
	// that many rounds, exactly as an external kill at a round boundary
	// would — the deterministic "kill switch" behind the resume-equivalence
	// tests and `anduril -stop-after`.
	StopAfterRound int

	// Trace receives the structured event stream of the search: free-run
	// setup, per-round ranked-site snapshots, injection decisions, feedback
	// deltas and the terminal outcome. Events carry only seed-determined
	// data, so the stream is byte-identical for a fixed (Target, Options).
	// nil (the default) disables tracing at zero cost: the engine checks
	// the sink before building any event.
	Trace trace.Sink
}

func (o Options) withDefaults() Options {
	if o.Strategy == "" {
		o.Strategy = FullFeedback
	}
	if o.Window <= 0 {
		o.Window = 10
	}
	if o.Adjust <= 0 {
		o.Adjust = 1
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 2000
	}
	if o.InstanceLimit <= 0 {
		o.InstanceLimit = 3
	}
	if o.RunsPerRound <= 0 {
		o.RunsPerRound = 1
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 10
	}
	if o.Addressing == "" {
		o.Addressing = AddrOccurrence
	}
	if o.EventBudget == 0 {
		o.EventBudget = DefaultEventBudget
	}
	return o
}

// DefaultEventBudget is the per-trial DES event cap. The dataset's free
// runs execute under ~2k events, so a million-event trial is a livelock,
// not a slow run.
const DefaultEventBudget = 1 << 20

// Round records one injection round.
type Round struct {
	N          int
	Injected   *inject.Instance // nil when no candidate occurred
	Satisfied  bool
	RootRank   int // 1-based rank of the ground-truth site; 0 if untracked
	MissingObs int // relevant observables still missing after this round
	WindowSize int
	InitTime   time.Duration // priority computation before the run
	RunTime    time.Duration // wall time of the workload run
	InjectReqs int           // injection requests the runtime received
	DecideTime time.Duration // total plan-decision latency in the run

	// Inconclusive marks a round whose trial could not be judged even
	// after one retry under the next derived seed; Failure carries the
	// class (cluster.ClassPanic, ClassEventBudget, ClassOracle). The round
	// contributed no feedback, but its injected instance (if any) counts
	// as tried so the search moves on.
	Inconclusive bool
	Failure      string `json:",omitempty"`
}

// Report is the outcome of a reproduction attempt.
type Report struct {
	Target     string
	Issue      string
	Strategy   Strategy
	Reproduced bool
	Rounds     int
	Script     *inject.Instance // deterministic reproduction plan (step 4.a)
	ScriptSeed int64            // the seed of the reproducing round: Exact(Script) under this seed replays deterministically

	// EnvRooted marks a reproduction whose script is an environment
	// fault (node crash, partition, message drop/delay) rather than an
	// error-return site.
	EnvRooted bool `json:",omitempty"`

	// PartialRooted marks a reproduction whose script is a partial
	// failure (short write, mid-append ENOSPC, torn rename, duplicated
	// delivery, eintr) rather than an error-return site.
	PartialRooted bool `json:",omitempty"`
	RoundLog      []Round
	Elapsed   time.Duration

	RelevantObservables int
	CandidateSites      int
	CandidateInstances  int
	FreeRunLogLines     int
	FreeRunTime         time.Duration

	// BestPartial is the injection whose round log came closest to the
	// failure log (fewest still-missing observables). When the search
	// fails, this is the §3 hint for iterative multi-fault reproduction.
	BestPartial        *inject.Instance
	BestPartialMissing int

	// Interrupted is set when the search stopped early — Options.Context
	// cancelled or Options.StopAfterRound reached — instead of finishing.
	// An interrupted report is not a verdict: resume from the checkpoint
	// to continue the search.
	Interrupted bool `json:",omitempty"`

	// InconclusiveRounds counts rounds degraded by trial isolation (see
	// Round.Inconclusive).
	InconclusiveRounds int `json:",omitempty"`

	// Error is set when the search could not start at all: the free run
	// failed twice (e.g. the target panics without any injection).
	Error string `json:",omitempty"`

	// CheckpointError records the first failed checkpoint write, if any.
	// Checkpointing is best-effort: a write failure never stops the search.
	CheckpointError string `json:",omitempty"`
}

// MedianInitTime returns the median per-round initialization time.
func (r *Report) MedianInitTime() time.Duration {
	return medianDuration(r.RoundLog, func(rd Round) time.Duration { return rd.InitTime })
}

// MedianRunTime returns the median per-round workload time.
func (r *Report) MedianRunTime() time.Duration {
	return medianDuration(r.RoundLog, func(rd Round) time.Duration { return rd.RunTime })
}

// MedianInjectReqs returns the median injection requests per round.
func (r *Report) MedianInjectReqs() int {
	if len(r.RoundLog) == 0 {
		return 0
	}
	vals := make([]int, 0, len(r.RoundLog))
	for _, rd := range r.RoundLog {
		vals = append(vals, rd.InjectReqs)
	}
	sort.Ints(vals)
	return vals[len(vals)/2]
}

// MeanDecisionLatency returns the mean latency of one injection decision.
func (r *Report) MeanDecisionLatency() time.Duration {
	var total time.Duration
	reqs := 0
	for _, rd := range r.RoundLog {
		total += rd.DecideTime
		reqs += rd.InjectReqs
	}
	if reqs == 0 {
		return 0
	}
	return total / time.Duration(reqs)
}

func medianDuration(rounds []Round, f func(Round) time.Duration) time.Duration {
	if len(rounds) == 0 {
		return 0
	}
	vals := make([]time.Duration, 0, len(rounds))
	for _, rd := range rounds {
		vals = append(vals, f(rd))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals[len(vals)/2]
}

// CanonicalReport renders a report as canonical JSON with every wall-clock
// measurement (and the best-effort checkpoint error) zeroed — the only
// fields two executions of the same deterministic search can disagree on.
// Any two runs of one (Target, Options) pair, however interrupted, resumed
// or scheduled, produce byte-identical canonical reports; the server's
// soak and crash-recovery gates compare exactly these bytes.
func CanonicalReport(r *Report) ([]byte, error) {
	cp := *r
	cp.Elapsed, cp.FreeRunTime = 0, 0
	cp.CheckpointError = ""
	cp.RoundLog = make([]Round, len(r.RoundLog))
	for i, rd := range r.RoundLog {
		rd.InitTime, rd.RunTime, rd.DecideTime = 0, 0, 0
		cp.RoundLog[i] = rd
	}
	return json.Marshal(&cp)
}

// Reproduce searches for an injection that satisfies the target's oracle.
// It treats t as read-only (see Target), so concurrent calls may share one
// Target; the result depends only on (t, opts), never on scheduling.
func Reproduce(t *Target, opts Options) *Report {
	opts = opts.withDefaults()
	e := newEngine(t, opts)
	return e.run()
}

// IterReport is the outcome of an iterative multi-fault reproduction.
type IterReport struct {
	Reproduced bool
	// Scripts are the faults to inject together, in discovery order; the
	// last one satisfied the oracle with the earlier ones baked in.
	Scripts []inject.Instance
	Reports []*Report
}

// ReproduceIterative extends the single-fault workflow to failures caused
// by multiple causally-independent faults, automating the iterative usage
// §3 describes: when a search pass cannot reproduce the failure, the
// injection that brought the run log closest to the failure log is baked
// into the workload and the search repeats for the next fault.
func ReproduceIterative(t *Target, opts Options, maxFaults int) *IterReport {
	opts = opts.withDefaults()
	if maxFaults <= 0 {
		maxFaults = 2
	}
	out := &IterReport{}
	var baked []inject.Instance
	for pass := 0; pass < maxFaults; pass++ {
		e := newEngine(t, opts)
		e.baked = baked
		rep := e.run()
		out.Reports = append(out.Reports, rep)
		if rep.Reproduced {
			out.Reproduced = true
			out.Scripts = append(append([]inject.Instance(nil), baked...), *rep.Script)
			return out
		}
		if rep.BestPartial == nil {
			break
		}
		baked = append(baked, *rep.BestPartial)
	}
	out.Scripts = baked
	return out
}

// VerifyMulti replays a multi-fault script deterministically.
func VerifyMulti(t *Target, scripts []inject.Instance, seed int64) bool {
	plans := make([]inject.Plan, len(scripts))
	for i, s := range scripts {
		plans[i] = inject.Exact(s)
	}
	res := cluster.Execute(seed, inject.Multi(plans...), false, t.Workload, t.Horizon)
	return t.Oracle.Satisfied(res)
}

// Verify replays a reproduction script deterministically and reports
// whether the oracle is satisfied — workflow step 4.a's output check.
func Verify(t *Target, script inject.Instance, seed int64) bool {
	res := cluster.Execute(seed, inject.Exact(script), false, t.Workload, t.Horizon)
	return t.Oracle.Satisfied(res)
}
