package core

// Checkpoint/resume for the explorer search. The engine periodically
// serializes its mutable search state — completed round, flexible-window
// size, observable feedback priorities I_k, the tried set, and the
// accumulated Report — into an atomically-written, versioned envelope
// (internal/checkpoint). Resume rebuilds everything else from scratch:
// the free run, observables, candidate sites, and distances are all
// deterministic functions of (Target, Options.Seed), and every round r
// runs under Seed+r, so a restored search continues exactly where the
// interrupted one stopped and produces the identical trace suffix and
// final report.
//
// The equivalence contract: interrupt a search at a checkpoint boundary
// (StopAfterRound a multiple of CheckpointEvery, or an external kill right
// after a checkpoint write), resume it, and the concatenation of the two
// JSONL traces is byte-identical to the uninterrupted run's trace — an
// interrupted search emits no outcome event, so its trace is a pure
// prefix. A kill between checkpoints loses only the rounds after the last
// write: resume re-executes them (deterministically), so the final report
// is still identical, but the concatenated trace repeats those rounds.
//
// Resume does not support iterative multi-fault passes (engine.baked):
// ReproduceIterative restarts its current pass from scratch instead.

import (
	"encoding/json"
	"fmt"
	"time"

	"anduril/internal/checkpoint"
)

// searchKind and searchVersion identify the explorer checkpoint envelope.
// Version 3 added the partial fault class (a version-2 tried set may lack
// partial occurrence counters a version-3 search would have accumulated);
// version 2 added the addressing field and the pair fault class; version
// 1 envelopes predate path-sensitive addressing. Older versions are
// rejected loudly by the envelope layer rather than resumed into a
// different search.
const (
	searchKind    = "explorer-search"
	searchVersion = 3
)

// searchState is the serialized form of the engine's mutable search state
// after a completed round. Everything not here is reconstructed by the
// resumed free run.
type searchState struct {
	Target   string   `json:"target"`
	Strategy Strategy `json:"strategy"`
	Seed     int64    `json:"seed"`

	Round    int `json:"round"`  // completed rounds; resume starts at Round+1
	Window   int `json:"window"` // flexible-window size for the next round
	ObsCount int `json:"obs_count"`

	// FaultClasses records the resolved fault classes of the run in
	// canonical order; resuming with a different class set would search a
	// different space. Absent (nil) in pre-env checkpoints = site-only.
	FaultClasses []string `json:"fault_classes,omitempty"`

	// Addressing records the run's instance-addressing mode; absent means
	// occurrence addressing, the canonical default. Resuming a
	// path-addressed search in occurrence mode (or vice versa) would match
	// the tried set against different instance identities.
	Addressing string `json:"addressing,omitempty"`

	// Priorities are the feedback priorities I_k in observable order (the
	// deterministic order setup extracts them in).
	Priorities []int `json:"priorities"`

	// Tried maps site id -> sorted tried occurrences.
	Tried map[string][]int `json:"tried"`

	Report *Report `json:"report"`
}

// maybeCheckpoint writes the search state after the given completed round
// when checkpointing is enabled and the round lands on the interval.
// Writes are best-effort: the first failure is recorded on the report and
// the search continues.
func (e *engine) maybeCheckpoint(round, window int) {
	if e.o.Checkpoint == "" || round%e.o.CheckpointEvery != 0 {
		return
	}
	e.saveCheckpoint(round, window)
}

// forceCheckpoint writes the search state regardless of the interval — the
// engine's last act on an interrupt, so a gracefully-drained search resumes
// from the exact round it stopped at instead of re-executing everything
// since the last periodic write. Interrupts before the first completed
// round have no state worth persisting and are skipped.
func (e *engine) forceCheckpoint(round, window int) {
	if e.o.Checkpoint == "" || round < 1 {
		return
	}
	e.saveCheckpoint(round, window)
}

// saveCheckpoint flushes the caller's journal (Options.CheckpointFlush)
// and then persists the state for the given completed round.
func (e *engine) saveCheckpoint(round, window int) {
	if e.o.CheckpointFlush != nil {
		e.o.CheckpointFlush(round)
	}
	st := e.snapshotState(round, window)
	if err := checkpoint.Save(e.o.Checkpoint, searchKind, searchVersion, st); err != nil {
		if e.report.CheckpointError == "" {
			e.report.CheckpointError = err.Error()
		}
	}
}

// snapshotState captures the engine's mutable state in serializable form.
// The report is snapshotted with Interrupted cleared: the flag describes
// the dying run, not the checkpointed state, and the forced final write on
// interrupt happens after the engine marked the report — persisting the
// flag would make the resumed run believe it too was interrupted and
// suppress its trace outcome.
func (e *engine) snapshotState(round, window int) *searchState {
	rep := *e.report
	rep.Interrupted = false
	st := &searchState{
		Target: e.t.ID, Strategy: e.o.Strategy, Seed: e.o.Seed,
		Round: round, Window: window,
		ObsCount:     len(e.obs),
		FaultClasses: e.classList(),
		Priorities:   make([]int, len(e.obs)),
		Tried:        map[string][]int{},
		Report:       &rep,
	}
	if len(st.FaultClasses) == 1 && st.FaultClasses[0] == ClassSite {
		st.FaultClasses = nil // canonical site-only form, compatible with pre-env checkpoints
	}
	if e.o.Addressing != AddrOccurrence {
		st.Addressing = string(e.o.Addressing)
	}
	for i, o := range e.obs {
		st.Priorities[i] = o.priority
	}
	for _, s := range e.sites {
		if s.tried.Len() == 0 {
			continue
		}
		st.Tried[s.id] = s.tried.Occurrences()
	}
	return st
}

// CheckpointRound reports the completed round recorded by the search
// checkpoint at path. The server's crash recovery uses it to align its
// external trace journal with the checkpoint before resuming: the journal
// flushes strictly before each checkpoint write, so after a kill it may
// run ahead of the checkpoint and must be trimmed back to this round. ok
// is false when the file is missing, corrupt, or from a different
// checkpoint version — Resume would reject it anyway, so callers treat
// that as "start fresh".
func CheckpointRound(path string) (round int, ok bool) {
	st, err := loadSearchState(path)
	if err != nil {
		return 0, false
	}
	return st.Round, true
}

// loadSearchState reads and decodes an explorer checkpoint.
func loadSearchState(path string) (*searchState, error) {
	raw, err := checkpoint.Load(path, searchKind, searchVersion)
	if err != nil {
		return nil, err
	}
	st := &searchState{}
	if err := json.Unmarshal(raw, st); err != nil {
		return nil, fmt.Errorf("core: decode checkpoint %s: %w", path, err)
	}
	return st, nil
}

// validate checks the checkpoint belongs to this (target, options) pair —
// resuming under a different seed or strategy would silently produce a
// different search, so it is an error instead.
func (st *searchState) validate(t *Target, opts Options) error {
	switch {
	case st.Target != t.ID:
		return fmt.Errorf("core: checkpoint is for target %q, resuming %q", st.Target, t.ID)
	case st.Strategy != opts.Strategy:
		return fmt.Errorf("core: checkpoint used strategy %q, resuming with %q", st.Strategy, opts.Strategy)
	case st.Seed != opts.Seed:
		return fmt.Errorf("core: checkpoint used seed %d, resuming with %d", st.Seed, opts.Seed)
	case !st.classesMatch(t, opts):
		return fmt.Errorf("core: checkpoint searched fault classes %v, resuming run resolves differently", st.classNames())
	case st.addressing() != opts.Addressing:
		return fmt.Errorf("core: checkpoint used %s addressing, resuming with %s", st.addressing(), opts.Addressing)
	case st.Round < 1:
		return fmt.Errorf("core: checkpoint has invalid round %d", st.Round)
	case st.Window < 1:
		return fmt.Errorf("core: checkpoint has invalid window %d", st.Window)
	case len(st.Priorities) != st.ObsCount:
		return fmt.Errorf("core: checkpoint carries %d priorities for %d observables", len(st.Priorities), st.ObsCount)
	case st.Report == nil:
		return fmt.Errorf("core: checkpoint has no report")
	}
	return nil
}

// addressing returns the checkpoint's recorded addressing mode, expanding
// the canonical absent form to the occurrence default.
func (st *searchState) addressing() Addressing {
	if st.Addressing == "" {
		return AddrOccurrence
	}
	return Addressing(st.Addressing)
}

// classesMatch reports whether the checkpoint's recorded fault classes
// (nil = site-only, the pre-env form) equal the resuming run's
// resolution: a site-only checkpoint resumed with env enumeration (or
// vice versa) would silently search a different space.
func (st *searchState) classesMatch(t *Target, opts Options) bool {
	site, env, pair, partial := resolveClasses(t, opts)
	ckSite, ckEnv, ckPair, ckPartial := st.FaultClasses == nil, false, false, false
	for _, c := range st.FaultClasses {
		switch c {
		case ClassSite:
			ckSite = true
		case ClassEnv:
			ckEnv = true
		case ClassPair:
			ckPair = true
		case ClassPartial:
			ckPartial = true
		}
	}
	return site == ckSite && env == ckEnv && pair == ckPair && partial == ckPartial
}

// classNames renders the recorded classes for error messages, expanding
// the canonical nil form.
func (st *searchState) classNames() []string {
	if st.FaultClasses == nil {
		return []string{ClassSite}
	}
	return st.FaultClasses
}

// applyState restores the checkpointed search state onto a prepared
// engine. The free run must have produced the same observable and site
// universe the checkpoint was taken against; a mismatch means the target
// or dataset changed under the checkpoint and is an error.
func (e *engine) applyState() error {
	st := e.resume
	if len(e.obs) != st.ObsCount {
		return fmt.Errorf("core: checkpoint expects %d observables, free run produced %d — target or dataset changed", st.ObsCount, len(e.obs))
	}
	for i, p := range st.Priorities {
		e.obs[i].priority = p
	}
	for site, occs := range st.Tried {
		s, ok := e.siteIndex[site]
		if !ok {
			return fmt.Errorf("core: checkpoint tried unknown site %q — target or dataset changed", site)
		}
		for _, occ := range occs {
			s.tried.Add(occ)
		}
	}
	e.startRound = st.Round
	e.resumeWindow = st.Window
	e.report = st.Report
	return nil
}

// Resume continues a checkpointed search. opts must carry the same
// Strategy and Seed the interrupted run used (Window etc. likewise — the
// engine cannot verify every knob, only what the checkpoint records); the
// checkpoint at path names the last completed round, and the resumed
// search continues from the next one, producing the identical trace
// suffix and final report an uninterrupted run would have. Iterative
// multi-fault passes (ReproduceIterative) are not resumable.
func Resume(t *Target, opts Options, path string) (*Report, error) {
	opts = opts.withDefaults()
	st, err := loadSearchState(path)
	if err != nil {
		return nil, err
	}
	if err := st.validate(t, opts); err != nil {
		return nil, err
	}
	e := newEngine(t, opts)
	e.resume = st
	start := time.Now()
	if err := e.prepare(); err != nil {
		return nil, fmt.Errorf("core: resume: %w", err)
	}
	if err := e.applyState(); err != nil {
		return nil, err
	}
	e.explore()
	e.finish(start)
	return e.report, nil
}
