package core_test

// End-to-end regressions for the dyn anti-entropy scenarios (f26–f29):
// feedback-driven reproduction finds the declared root cause, the search
// trace is byte-identical across runs and pinned by goldens, and
// registering the dyn target changes nothing about the f1–f25 search
// trajectories (proved against a golden generated before dyn existed).
//
// Regenerate the dyn trace goldens after an intentional change with:
//
//	go test ./internal/core -run TestDynGoldenTraces -update
//
// The trajectory golden (site_trajectories.golden) pins the pre-dyn
// behavior of f1–f25; regenerate it the same way only when the explorer
// itself changes, never to absorb a dyn-side effect.

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"

	"anduril/internal/core"
	"anduril/internal/failures"
	"anduril/internal/trace"
)

var dynIDs = []string{"f26", "f27", "f28", "f29"}

// TestDynScenariosReproduceEndToEnd: the full feedback workflow finds the
// declared ground-truth root cause of every dyn scenario and the script
// verifies deterministically.
func TestDynScenariosReproduceEndToEnd(t *testing.T) {
	for _, id := range dynIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			sc, ok := failures.ByID(id)
			if !ok {
				t.Fatalf("scenario %s not registered", id)
			}
			tgt, err := sc.BuildTarget()
			if err != nil {
				t.Fatal(err)
			}
			rep := core.Reproduce(tgt, core.Options{Seed: 1, MaxRounds: 500})
			if !rep.Reproduced {
				t.Fatalf("%s not reproduced in %d rounds", id, rep.Rounds)
			}
			if rep.Script.Site != sc.RootSite {
				t.Fatalf("%s reproduced via %v, ground truth %s", id, *rep.Script, sc.RootSite)
			}
			if !core.Verify(tgt, *rep.Script, rep.ScriptSeed) {
				t.Fatalf("%s: script %v does not verify", id, *rep.Script)
			}
		})
	}
}

// dynTrace runs one dyn scenario's reproduction with a trace sink.
func dynTrace(t *testing.T, id string) []byte {
	t.Helper()
	sc, _ := failures.ByID(id)
	tgt, err := sc.BuildTarget()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := trace.NewWriter(&buf)
	rep := core.Reproduce(tgt, core.Options{Seed: 1, MaxRounds: 500, Trace: sink})
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	if !rep.Reproduced {
		t.Fatalf("%s not reproduced in %d rounds", id, rep.Rounds)
	}
	return buf.Bytes()
}

// TestDynGoldenTraces pins the full search trajectory of each dyn
// scenario, and TestDynTraceDeterministic proves a second in-process run
// emits the identical byte stream.
func TestDynGoldenTraces(t *testing.T) {
	for _, id := range dynIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			got := dynTrace(t, id)
			path := fmt.Sprintf("testdata/%s.trace.jsonl", id)
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("golden trace updated: %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden trace (run with -update to create it): %v", err)
			}
			if bytes.Equal(got, want) {
				return
			}
			gotEv, gerr := trace.ReadAll(bytes.NewReader(got))
			wantEv, werr := trace.ReadAll(bytes.NewReader(want))
			if gerr != nil || werr != nil {
				t.Fatalf("trace differs from golden and does not decode: got err %v, want err %v", gerr, werr)
			}
			for _, d := range trace.Diff(wantEv, gotEv, 10) {
				t.Error(d)
			}
			t.Fatalf("trace differs from %s (%d vs %d events); rerun with -update if intentional",
				path, len(gotEv), len(wantEv))
		})
	}
}

func TestDynTraceDeterministic(t *testing.T) {
	for _, id := range dynIDs {
		a := dynTrace(t, id)
		b := dynTrace(t, id)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: two runs produced different traces", id)
		}
	}
}

// trajectory renders one scenario's search trajectory in the fixed format
// shared with the golden generator: every deterministic per-round datum,
// nothing wall-clock dependent.
func trajectory(sc *failures.Scenario, rep *core.Report) string {
	var b strings.Builder
	script := "none"
	if rep.Script != nil {
		script = fmt.Sprintf("%s#%d", rep.Script.Site, rep.Script.Occurrence)
	}
	fmt.Fprintf(&b, "%s reproduced=%v rounds=%d script=%s\n", sc.ID, rep.Reproduced, rep.Rounds, script)
	for _, rd := range rep.RoundLog {
		inj := "none"
		if rd.Injected != nil {
			inj = fmt.Sprintf("%s#%d", rd.Injected.Site, rd.Injected.Occurrence)
		}
		fmt.Fprintf(&b, "round %d inj=%s sat=%v rank=%d missing=%d window=%d\n",
			rd.N, inj, rd.Satisfied, rd.RootRank, rd.MissingObs, rd.WindowSize)
	}
	return b.String()
}

const trajectoryGolden = "testdata/site_trajectories.golden"

// TestSiteSearchUnchangedByDynEnumeration: the f1–f25 search trajectories
// must be byte-equal to the golden captured before the dyn target and its
// scenarios existed — registering more scenarios and target systems must
// not perturb any other search. The pair-class scenarios (f30–f31) and
// partial-class scenarios (f32–f34) postdate the golden and search
// different spaces, so they are excluded like the dyn ones.
func TestSiteSearchUnchangedByDynEnumeration(t *testing.T) {
	var b strings.Builder
	for _, sc := range failures.All() {
		if sc.System == "dyn" || sc.SearchesPair() || sc.SearchesPartial() {
			continue
		}
		tgt, err := sc.BuildTarget()
		if err != nil {
			t.Fatalf("%s: %v", sc.ID, err)
		}
		rep := core.Reproduce(tgt, core.Options{Seed: 1, MaxRounds: 500})
		b.WriteString(trajectory(sc, rep))
	}
	got := b.String()
	want, err := os.ReadFile(trajectoryGolden)
	if err != nil {
		t.Fatalf("read trajectory golden: %v", err)
	}
	if got != string(want) {
		t.Fatal("f1–f25 search trajectories changed with the dyn target registered; diff the golden to locate the drift")
	}
}
