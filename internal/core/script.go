package core

import (
	"encoding/json"
	"fmt"
	"time"

	"anduril/internal/inject"
)

// ScriptFile is the serializable reproduction artifact of workflow step
// 4.a: everything needed to deterministically re-trigger the failure, plus
// the provenance of the search that found it.
type ScriptFile struct {
	Target      string            `json:"target"`
	Issue       string            `json:"issue,omitempty"`
	Strategy    Strategy          `json:"strategy"`
	Faults      []inject.Instance `json:"faults"`
	Rounds      int               `json:"rounds"`
	Elapsed     string            `json:"elapsed"`
	Observables int               `json:"relevant_observables"`
	Sites       int               `json:"candidate_sites"`
	Instances   int               `json:"candidate_instances"`
	GeneratedBy string            `json:"generated_by"`
}

// ScriptOf extracts the reproduction artifact from a report.
func ScriptOf(r *Report) (*ScriptFile, error) {
	if r == nil || !r.Reproduced || r.Script == nil {
		return nil, fmt.Errorf("core: no reproduction to export")
	}
	return &ScriptFile{
		Target:      r.Target,
		Issue:       r.Issue,
		Strategy:    r.Strategy,
		Faults:      []inject.Instance{*r.Script},
		Rounds:      r.Rounds,
		Elapsed:     r.Elapsed.Round(time.Microsecond).String(),
		Observables: r.RelevantObservables,
		Sites:       r.CandidateSites,
		Instances:   r.CandidateInstances,
		GeneratedBy: "anduril (feedback-driven fault injection)",
	}, nil
}

// ScriptOfIter extracts the multi-fault artifact of an iterative run.
func ScriptOfIter(r *IterReport) (*ScriptFile, error) {
	if r == nil || !r.Reproduced || len(r.Scripts) == 0 {
		return nil, fmt.Errorf("core: no reproduction to export")
	}
	last := r.Reports[len(r.Reports)-1]
	rounds := 0
	for _, rep := range r.Reports {
		rounds += rep.Rounds
	}
	return &ScriptFile{
		Target:      last.Target,
		Issue:       last.Issue,
		Strategy:    last.Strategy,
		Faults:      append([]inject.Instance(nil), r.Scripts...),
		Rounds:      rounds,
		Elapsed:     sumElapsed(r.Reports).Round(time.Microsecond).String(),
		Observables: last.RelevantObservables,
		Sites:       last.CandidateSites,
		Instances:   last.CandidateInstances,
		GeneratedBy: "anduril (iterative multi-fault mode)",
	}, nil
}

func sumElapsed(reports []*Report) time.Duration {
	var total time.Duration
	for _, r := range reports {
		total += r.Elapsed
	}
	return total
}

// Marshal renders the artifact as indented JSON.
func (s *ScriptFile) Marshal() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// LoadScript parses a serialized reproduction artifact.
func LoadScript(data []byte) (*ScriptFile, error) {
	var s ScriptFile
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("core: bad script file: %w", err)
	}
	if len(s.Faults) == 0 {
		return nil, fmt.Errorf("core: script file has no faults")
	}
	return &s, nil
}

// Plan builds the injection plan the script describes.
func (s *ScriptFile) Plan() inject.Plan {
	if len(s.Faults) == 1 {
		return inject.Exact(s.Faults[0])
	}
	plans := make([]inject.Plan, len(s.Faults))
	for i, f := range s.Faults {
		plans[i] = inject.Exact(f)
	}
	return inject.Multi(plans...)
}
