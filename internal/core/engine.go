package core

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"time"

	"anduril/internal/cluster"
	"anduril/internal/inject"
	"anduril/internal/logdiff"
	"anduril/internal/trace"
)

// observable is one relevant observable o_k (§5.1): a log message that only
// appears in the failure log, with its positions on the failure timeline,
// its matching static templates, and its feedback priority I_k.
type observable struct {
	key       logdiff.Key
	positions []int
	templates []string
	priority  int
}

// instance is one dynamic fault candidate f_{i,j} from the free run.
type instance struct {
	occ        int
	logPos     int
	alignedPos float64 // position mapped onto the failure-log timeline
	path       string  // canonical PathAddr string (path addressing only)
	amp        int     // observed amplitude (partial pseudo-sites only)

	// memberPos holds each member's own aligned position for pair
	// instances (both equal to alignedPos otherwise, unused): temporal
	// ranking scores a pair by how close each fault lands to a relevant
	// observable, not just where the combined effect completes.
	memberPos [2]float64
}

// triedSet tracks which occurrences of a site have been injected. It is a
// dense bitset: occurrence numbers are small (bounded by how often the
// site fires in a run), and the selection loop probes the set for every
// untried instance on every round, so the constant-time word test replaces
// a map probe on the search hot path. The zero value is an empty set.
type triedSet struct {
	words []uint64
	n     int
}

// Has reports whether occ is in the set.
func (t *triedSet) Has(occ int) bool {
	w := occ >> 6
	return w < len(t.words) && t.words[w]&(1<<(uint(occ)&63)) != 0
}

// Add inserts occ, reporting whether it was newly added.
func (t *triedSet) Add(occ int) bool {
	w := occ >> 6
	for w >= len(t.words) {
		t.words = append(t.words, 0)
	}
	bit := uint64(1) << (uint(occ) & 63)
	if t.words[w]&bit != 0 {
		return false
	}
	t.words[w] |= bit
	t.n++
	return true
}

// Len returns the number of occurrences in the set.
func (t *triedSet) Len() int { return t.n }

// Occurrences returns the set's members in ascending order.
func (t *triedSet) Occurrences() []int {
	out := make([]int, 0, t.n)
	for w, word := range t.words {
		for ; word != 0; word &= word - 1 {
			out = append(out, w<<6+bits.TrailingZeros64(word))
		}
	}
	return out
}

// siteState is the explorer's view of one static fault site f_i.
type siteState struct {
	id        string
	instances []instance
	tried     triedSet

	// marker is the sanitized injection-marker line for env and partial
	// pseudo-sites ("" otherwise): an observable equal to it is direct
	// failure-log evidence for this site, scored with envDistMatched
	// (partialDistMatched for partial sites).
	marker string

	// byPath maps canonical path strings to free-run occurrence identity
	// (path addressing only): an injection run's reach is matched by path,
	// and its tried-set entry is the free-run instance that path names.
	byPath map[string]int

	// Pair pseudo-site state (isPair set): the two member site IDs (sorted,
	// equal for a self-pair), the members' env markers for marker-matched
	// scoring ("" for error-return members), and the full pair Instance per
	// enumerated instance, parallel to instances.
	isPair      bool
	pairSites   [2]string
	pairMarkers [2]string
	pairInsts   []inject.Instance

	f       float64 // current priority F_i (smaller = higher priority)
	bestObs int     // index of the observable realizing F_i
}

// engine holds all mutable search state for one Reproduce call. A fresh
// engine is built per call and never shared, so concurrent Reproduce runs
// are independent as long as they treat the (possibly shared) Target as
// read-only — which every method here does: the engine only ever reads
// t.FailureLog, t.Analysis, t.Oracle and t.Workload, and all derived
// state (observables, site states, distance tables) lives on the engine.
//
// The search itself is split across phase files: setup.go (observable
// extraction and candidate discovery), ranking.go (site priorities and the
// incremental priority index), selection.go (instance selection and the
// flexible window), feedback.go (the Algorithm 2 loop), and strategies.go
// (the strategy registry and the enumerative baselines).
type engine struct {
	t *Target
	o Options

	obs       []*observable
	sites     []*siteState
	siteIndex map[string]*siteState // id -> state, for O(1) markTried
	dist      map[string]map[string]int
	align     *logdiff.Alignment

	sumBest map[string]float64 // sum-aggregation ablation bookkeeping

	// Per-round scratch, reused across the thousands of rounds a search
	// runs: the ranking snapshot, the candidate window, the multiply-
	// feedback pair buffer, and the missing-observable vector. Each is
	// valid only until the next round recomputes it.
	rankedBuf []*siteState
	candBuf   []inject.Instance
	pairBuf   []scoredPair
	missBuf   []bool

	// baked faults are injected in every run of this pass (iterative
	// multi-fault reproduction); the search explores candidates on top.
	baked []inject.Instance

	// ctx cancels the search from outside (Options.Context).
	ctx context.Context

	// freeRes is the free run the strategies explore from.
	freeRes *cluster.Result

	// Enabled fault classes, resolved from Options/Target (site-only by
	// default). instSite counts the site-class candidate instances and
	// triedSite how many are tried, so the window logic can tell when the
	// site-class space is saturated and env candidates may enter.
	siteClass    bool
	envClass     bool
	pairClass    bool
	partialClass bool
	instSite     int
	triedSite    int

	// pairWindow is the pair-round candidate list the current round armed,
	// indexed like the PairPlan's rank order; tryOnce maps the plan's
	// committed index back through it to the canonical pair Instance.
	pairWindow []inject.Instance

	// Resume state: the checkpoint being restored (nil on a fresh run),
	// the round the restored search had completed, and its window size.
	resume       *searchState
	startRound   int
	resumeWindow int

	report *Report
}

func newEngine(t *Target, o Options) *engine {
	e := &engine{t: t, o: o, ctx: o.Context, report: &Report{
		Target: t.ID, Issue: t.Issue, Strategy: o.Strategy,
	}}
	e.siteClass, e.envClass, e.pairClass, e.partialClass = resolveClasses(t, o)
	return e
}

// resolveClasses resolves the enabled fault classes from Options (which
// wins when set) or the Target, defaulting to site-only. Unknown names
// are ignored here; callers validate with ValidFaultClass up front.
func resolveClasses(t *Target, o Options) (site, env, pair, partial bool) {
	classes := o.FaultClasses
	if classes == nil {
		classes = t.FaultClasses
	}
	if classes == nil {
		return true, false, false, false
	}
	for _, c := range classes {
		switch c {
		case ClassSite:
			site = true
		case ClassEnv:
			env = true
		case ClassPair:
			pair = true
		case ClassPartial:
			partial = true
		}
	}
	return site, env, pair, partial
}

// Fault-class names for Options.FaultClasses / Target.FaultClasses.
const (
	ClassSite    = "site"
	ClassEnv     = "env"
	ClassPair    = "pair"
	ClassPartial = "partial"
)

// ValidFaultClass reports whether a class name is recognized (for CLI
// validation).
func ValidFaultClass(c string) bool {
	return c == ClassSite || c == ClassEnv || c == ClassPair || c == ClassPartial
}

// classList renders the engine's resolved fault classes canonically
// (for the checkpoint envelope): alphabetical, matching classNames.
func (e *engine) classList() []string {
	var out []string
	if e.envClass {
		out = append(out, ClassEnv)
	}
	if e.pairClass {
		out = append(out, ClassPair)
	}
	if e.partialClass {
		out = append(out, ClassPartial)
	}
	if e.siteClass {
		out = append(out, ClassSite)
	}
	return out
}

// retrySeedOffset derives the retry seed of a failed trial: far outside
// both the per-round stream (Seed+round, round <= MaxRounds) and the
// combined-log stream (Seed+MaxRounds+round*RunsPerRound+extra), so a
// retry never collides with a seed the search would use anyway.
const retrySeedOffset = int64(1) << 32

// tracing reports whether a trace sink is attached. Every emission below
// is guarded by it, so a disabled trace builds no events and allocates
// nothing on the search path.
func (e *engine) tracing() bool { return e.o.Trace != nil }

func (e *engine) emit(ev *trace.Event) { e.o.Trace.Emit(ev) }

// obsLabel renders an observable's identity for trace events.
func obsLabel(o *observable) string { return o.key.Thread + ": " + o.key.Msg }

// traceInjected records the reach at which a round's fault fired. An
// environment injection is a distinct event type carrying the decoded
// class, subject node(s) and virtual-time duration; a pair injection
// carries its two decoded member instances.
func (e *engine) traceInjected(round int, inst inject.Instance, satisfied bool) {
	if !e.tracing() {
		return
	}
	ev := &trace.Event{
		Type: trace.Injected, Round: round,
		Site: inst.Site, Occ: inst.Occurrence, Path: inst.Path, Satisfied: satisfied,
	}
	if f, ok := inject.ParseEnvSite(inst.Site); ok {
		ev.Type = trace.EnvInjected
		ev.Class = string(f.Class)
		ev.Subject = f.Subject
		ev.Peer = f.Peer
		ev.Dur = int64(f.Duration)
	} else if f, ok := inject.ParsePartialSite(inst.Site); ok {
		ev.Type = trace.PartialInjected
		ev.Class = string(f.Class)
		ev.Subject = f.Subject
		ev.Peer = f.Peer
	} else if a, b, ok := inject.PairMembers(inst); ok {
		ev.Type = trace.PairInjected
		ev.Path = "" // the member list already carries the references
		ev.Members = []trace.Candidate{
			{Site: a.Site, Occ: a.Occurrence, Path: a.Path},
			{Site: b.Site, Occ: b.Occurrence, Path: b.Path},
		}
	}
	e.emit(ev)
}

// traceDecision records the candidate window handed to the runtime: the
// first trace.MaxCandidates members, the full count, and the injection
// budget (1 searched fault plus any baked ones).
func (e *engine) traceDecision(round, window int, candidates []inject.Instance) {
	if !e.tracing() {
		return
	}
	list := candidates
	if len(list) > trace.MaxCandidates {
		list = list[:trace.MaxCandidates]
	}
	cs := make([]trace.Candidate, len(list))
	for i, c := range list {
		cs[i] = trace.Candidate{Site: c.Site, Occ: c.Occurrence, Path: c.Path}
	}
	e.emit(&trace.Event{
		Type: trace.Decision, Round: round, Window: window,
		Candidates: cs, CandidateCount: len(candidates), Budget: 1 + len(e.baked),
	})
}

// bakedPlan returns the plan injecting the baked faults (nil when none).
func (e *engine) bakedPlan(extra inject.Plan) inject.Plan {
	if len(e.baked) == 0 {
		return extra
	}
	plans := make([]inject.Plan, 0, len(e.baked)+1)
	for _, b := range e.baked {
		plans = append(plans, inject.Exact(b))
	}
	if extra != nil {
		plans = append(plans, extra)
	}
	return inject.Multi(plans...)
}

// matchesEvent reports whether an instance names the given injected
// reach. A path-addressed instance matches by its canonical path (the
// global occurrence of a reach may legitimately differ between runs).
func matchesEvent(b inject.Instance, ev inject.TraceEvent) bool {
	if b.Site != ev.Site {
		return false
	}
	if b.Path != "" {
		return b.Path == ev.Path
	}
	return b.Occurrence == ev.Occurrence
}

// isBaked reports whether an injected event is one of the baked faults.
// A baked pair fault injects through its two members, so either member
// reach counts as baked.
func (e *engine) isBaked(ev inject.TraceEvent) bool {
	for _, b := range e.baked {
		if a, c, ok := inject.PairMembers(b); ok {
			if matchesEvent(a, ev) || matchesEvent(c, ev) {
				return true
			}
			continue
		}
		if matchesEvent(b, ev) {
			return true
		}
	}
	return false
}

// run executes the whole workflow: free run, setup, then the strategy
// resolved from the registry. An unregistered strategy explores nothing
// and reports the fault space exhausted after zero rounds (callers are
// expected to validate names against Strategies() up front).
func (e *engine) run() *Report {
	start := time.Now()
	if err := e.prepare(); err != nil {
		if isInterrupted(err) {
			e.report.Interrupted = true
		} else {
			e.report.Error = err.Error()
		}
		e.finish(start)
		return e.report
	}
	e.explore()
	e.finish(start)
	return e.report
}

// prepare performs the free run (workflow step 1) and setup (step 2). The
// free run is isolated like any trial: a panic or budget exhaustion is
// retried once under the next derived seed, and a second failure aborts
// the search with an error (there is no timeline to search without it).
func (e *engine) prepare() error {
	freeStart := time.Now()
	free, err := e.trial(e.o.Seed, e.bakedPlan(nil), true)
	if err != nil && !isInterrupted(err) {
		free, err = e.trial(e.o.Seed+retrySeedOffset, e.bakedPlan(nil), true)
	}
	if err != nil {
		if !isInterrupted(err) {
			err = fmt.Errorf("free run failed twice: %w", err)
		}
		return err
	}
	e.report.FreeRunTime = time.Since(freeStart)
	e.report.FreeRunLogLines = len(free.Entries)
	e.freeRes = free
	e.setup(free)
	return nil
}

// explore dispatches the prepared search to the registered strategy.
func (e *engine) explore() {
	if impl, ok := lookupStrategy(e.o.Strategy); ok {
		impl.Explore(&Search{e: e, free: e.freeRes})
	}
}

// finish closes the report. An interrupted search emits no trace outcome:
// its trace must stay a pure prefix of the uninterrupted stream so a
// resumed continuation concatenates into the identical trace.
func (e *engine) finish(start time.Time) {
	e.report.Elapsed += time.Since(start)
	if e.report.Script != nil {
		e.report.EnvRooted = inject.IsEnvSite(e.report.Script.Site)
		e.report.PartialRooted = inject.IsPartialSite(e.report.Script.Site)
	}
	if e.report.Interrupted {
		return
	}
	if e.tracing() {
		ev := &trace.Event{
			Type: trace.Outcome, Reproduced: e.report.Reproduced,
			Rounds: e.report.Rounds,
		}
		switch {
		case e.report.Reproduced:
			ev.Reason = trace.ReasonReproduced
			ev.Site = e.report.Script.Site
			ev.Occ = e.report.Script.Occurrence
			ev.Path = e.report.Script.Path
			ev.ScriptSeed = e.report.ScriptSeed
		case e.report.Error != "":
			ev.Reason = trace.ReasonError
			ev.Detail = e.report.Error
		case e.report.Rounds >= e.o.MaxRounds:
			ev.Reason = trace.ReasonRoundCap
		default:
			ev.Reason = trace.ReasonExhausted
		}
		if n := len(e.report.RoundLog); n > 0 {
			ev.RootRank = e.report.RoundLog[n-1].RootRank
		}
		e.emit(ev)
	}
}

// trial runs the workload once under the engine's watchdogs: panic
// recovery, the event budget, and the cancellation context.
func (e *engine) trial(seed int64, plan inject.Plan, keepTrace bool) (*cluster.Result, error) {
	budget := e.o.EventBudget
	if budget < 0 {
		budget = 0 // negative means unlimited
	}
	var opts []cluster.ExecOption
	if e.envClass {
		opts = append(opts, cluster.WithEnvFaults())
	}
	if e.partialClass {
		opts = append(opts, cluster.WithPartialFaults())
	}
	if e.o.Addressing == AddrPath {
		opts = append(opts, cluster.WithPathAddressing())
	}
	return cluster.TryExecute(e.ctx, seed, plan, keepTrace, e.t.Workload, e.t.Horizon, budget, opts...)
}

// interrupted reports whether the search must stop before starting the
// given round — the simulated kill switch fired or the context was
// cancelled — and marks the report resumable if so.
func (e *engine) interrupted(round int) bool {
	if e.o.StopAfterRound > 0 && round > e.o.StopAfterRound {
		e.report.Interrupted = true
		return true
	}
	if e.ctx != nil && e.ctx.Err() != nil {
		e.report.Interrupted = true
		return true
	}
	return false
}

// isInterrupted matches the trial error of an externally-cancelled run.
func isInterrupted(err error) bool {
	var te *cluster.TrialError
	return errors.As(err, &te) && te.Class == cluster.ClassInterrupted
}

// failureClass maps a trial error to its (class, detail) pair.
func failureClass(err error) (string, string) {
	var te *cluster.TrialError
	if errors.As(err, &te) {
		return te.Class, te.Detail
	}
	return "error", err.Error()
}

// safeSatisfied judges a result, recovering an oracle panic into a trial
// error of class oracle.
func (e *engine) safeSatisfied(res *cluster.Result) (sat bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			sat = false
			err = &cluster.TrialError{Class: cluster.ClassOracle, Detail: fmt.Sprint(p)}
		}
	}()
	return e.t.Oracle.Satisfied(res), nil
}

// attempt is the outcome of one round's isolated trial: the run result and
// round bookkeeping, the seed the (possibly retried) trial actually ran
// under, the oracle verdict, and the terminal error when both the trial
// and its retry failed.
type attempt struct {
	res  *cluster.Result
	rd   *Round
	seed int64
	sat  bool
	err  error
}

// attemptRound runs one round with the trial-isolation policy: execute
// the plan and judge the result; on any failure — target panic, event
// budget, oracle panic — retry once under the next derived seed; a second
// failure degrades the round to inconclusive (err set, rd.Failure
// classified). Cancellation is never retried.
func (e *engine) attemptRound(round int, plan inject.Plan, initTime time.Duration, windowSize, rootRank int) attempt {
	rd := &Round{N: round, RootRank: rootRank, WindowSize: windowSize, InitTime: initTime}
	runStart := time.Now()
	a := e.tryOnce(e.o.Seed+int64(round), plan, rd)
	if a.err != nil && !isInterrupted(a.err) {
		// Stateful plans (PairPlan's commit, Multi's fired counters) must
		// start the retry trial fresh, or the retry replays half-spent state.
		if r, ok := plan.(inject.Resetter); ok {
			r.Reset()
		}
		a = e.tryOnce(e.o.Seed+int64(round)+retrySeedOffset, plan, rd)
	}
	rd.RunTime = time.Since(runStart)
	a.rd = rd
	if a.err != nil && !isInterrupted(a.err) {
		rd.Inconclusive = true
		rd.Failure, _ = failureClass(a.err)
	}
	return a
}

// tryOnce executes the plan under one seed and judges the result,
// recording the round's runtime bookkeeping from whatever the run
// produced (a recovered panic still yields a partial result).
func (e *engine) tryOnce(seed int64, plan inject.Plan, rd *Round) attempt {
	res, err := e.trial(seed, e.bakedPlan(plan), false)
	if res != nil {
		reqs, decTime := res.Env.FI.Decisions()
		rd.InjectReqs, rd.DecideTime = reqs, decTime
		// The round's searched injection is the one that is not baked. A
		// pair round reports the committed pair instance (reconstructed
		// from the plan's commit index) rather than a single member reach.
		rd.Injected = nil
		if pp, ok := plan.(*inject.PairPlan); ok {
			if idx, committed := pp.Committed(); committed {
				inst := e.pairWindow[idx]
				rd.Injected = &inst
			}
		} else {
			for _, ev := range res.Env.FI.InjectedAll() {
				if e.isBaked(ev) {
					continue
				}
				rd.Injected = &inject.Instance{Site: ev.Site, Occurrence: ev.Occurrence, Path: ev.Path}
				break
			}
		}
	}
	if err != nil {
		return attempt{res: res, seed: seed, err: err}
	}
	sat, serr := e.safeSatisfied(res)
	if serr != nil {
		return attempt{res: res, seed: seed, err: serr}
	}
	return attempt{res: res, seed: seed, sat: sat}
}

// recordInconclusive books a degraded round: the report and trace record
// the failure class, the attempted instance (if one injected before the
// failure) counts as tried so the search advances, and no feedback flows.
func (e *engine) recordInconclusive(a attempt, window int) {
	rd := a.rd
	if rd.Injected != nil {
		e.markTried(*rd.Injected)
	}
	e.report.InconclusiveRounds++
	e.report.RoundLog = append(e.report.RoundLog, *rd)
	e.report.Rounds = rd.N
	if e.tracing() {
		class, detail := failureClass(a.err)
		ev := &trace.Event{Type: trace.Inconclusive, Round: rd.N, Class: class, Detail: detail}
		var te *cluster.TrialError
		if errors.As(a.err, &te) {
			// Subject identifiers: the trial seed that failed and — for
			// panics — the actor (node thread) executing when it fired.
			ev.Seed = te.Seed
			ev.Actor = te.Actor
		}
		if rd.Injected != nil {
			ev.Site, ev.Occ = rd.Injected.Site, rd.Injected.Occurrence
		}
		e.emit(ev)
	}
	e.maybeCheckpoint(rd.N, window)
}

func (e *engine) markTried(inst inject.Instance) {
	s, ok := e.siteIndex[inst.Site]
	if !ok {
		return
	}
	occ := inst.Occurrence
	if inst.Path != "" && !inject.IsPairSite(inst.Site) {
		// A path-addressed injection reports the run-local occurrence of
		// the reach; the tried set is keyed by the free-run identity, so
		// resolve the canonical path back through the site's path index.
		if o, found := s.byPath[inst.Path]; found {
			occ = o
		}
	}
	if !s.tried.Add(occ) {
		return
	}
	if !inject.IsEnvSite(inst.Site) && !inject.IsPairSite(inst.Site) && !inject.IsPartialSite(inst.Site) {
		e.triedSite++
	}
}
