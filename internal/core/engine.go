package core

import (
	"math"
	"sort"
	"time"

	"anduril/internal/analysis"
	"anduril/internal/cluster"
	"anduril/internal/inject"
	"anduril/internal/logdiff"
	"anduril/internal/logging"
	"anduril/internal/trace"
)

// observable is one relevant observable o_k (§5.1): a log message that only
// appears in the failure log, with its positions on the failure timeline,
// its matching static templates, and its feedback priority I_k.
type observable struct {
	key       logdiff.Key
	positions []int
	templates []string
	priority  int
}

// instance is one dynamic fault candidate f_{i,j} from the free run.
type instance struct {
	occ        int
	logPos     int
	alignedPos float64 // position mapped onto the failure-log timeline
}

// siteState is the explorer's view of one static fault site f_i.
type siteState struct {
	id        string
	instances []instance
	tried     map[int]bool

	f       float64 // current priority F_i (smaller = higher priority)
	bestObs int     // index of the observable realizing F_i
}

// engine holds all mutable search state for one Reproduce call. A fresh
// engine is built per call and never shared, so concurrent Reproduce runs
// are independent as long as they treat the (possibly shared) Target as
// read-only — which every method here does: the engine only ever reads
// t.FailureLog, t.Analysis, t.Oracle and t.Workload, and all derived
// state (observables, site states, distance tables) lives on the engine.
type engine struct {
	t *Target
	o Options

	obs       []*observable
	sites     []*siteState
	siteIndex map[string]*siteState // id -> state, for O(1) markTried
	dist      map[string]map[string]int
	align     *logdiff.Alignment

	sumBest map[string]float64 // sum-aggregation ablation bookkeeping

	// baked faults are injected in every run of this pass (iterative
	// multi-fault reproduction); the search explores candidates on top.
	baked []inject.Instance

	report *Report
}

func newEngine(t *Target, o Options) *engine {
	return &engine{t: t, o: o, report: &Report{
		Target: t.ID, Issue: t.Issue, Strategy: o.Strategy,
	}}
}

// tracing reports whether a trace sink is attached. Every emission below
// is guarded by it, so a disabled trace builds no events and allocates
// nothing on the search path.
func (e *engine) tracing() bool { return e.o.Trace != nil }

func (e *engine) emit(ev *trace.Event) { e.o.Trace.Emit(ev) }

// obsLabel renders an observable's identity for trace events.
func obsLabel(o *observable) string { return o.key.Thread + ": " + o.key.Msg }

// traceInjected records the reach at which a round's fault fired.
func (e *engine) traceInjected(round int, inst inject.Instance, satisfied bool) {
	if !e.tracing() {
		return
	}
	e.emit(&trace.Event{
		Type: trace.Injected, Round: round,
		Site: inst.Site, Occ: inst.Occurrence, Satisfied: satisfied,
	})
}

// bakedPlan returns the plan injecting the baked faults (nil when none).
func (e *engine) bakedPlan(extra inject.Plan) inject.Plan {
	if len(e.baked) == 0 {
		return extra
	}
	plans := make([]inject.Plan, 0, len(e.baked)+1)
	for _, b := range e.baked {
		plans = append(plans, inject.Exact(b))
	}
	if extra != nil {
		plans = append(plans, extra)
	}
	return inject.Multi(plans...)
}

// isBaked reports whether an injected event is one of the baked faults.
func (e *engine) isBaked(ev inject.TraceEvent) bool {
	for _, b := range e.baked {
		if b.Site == ev.Site && b.Occurrence == ev.Occurrence {
			return true
		}
	}
	return false
}

// run executes the whole workflow: free run, setup, then the strategy.
func (e *engine) run() *Report {
	start := time.Now()
	freeStart := time.Now()
	free := cluster.Execute(e.o.Seed, e.bakedPlan(nil), true, e.t.Workload, e.t.Horizon)
	e.report.FreeRunTime = time.Since(freeStart)
	e.report.FreeRunLogLines = len(free.Entries)

	e.setup(free)

	switch e.o.Strategy {
	case FullFeedback, SiteDistance, SiteDistanceLimit, SiteFeedback, MultiplyFeedback:
		e.feedbackLoop()
	default:
		e.enumerativeLoop(free)
	}
	e.report.Elapsed = time.Since(start)

	if e.tracing() {
		ev := &trace.Event{
			Type: trace.Outcome, Reproduced: e.report.Reproduced,
			Rounds: e.report.Rounds,
		}
		switch {
		case e.report.Reproduced:
			ev.Reason = trace.ReasonReproduced
			ev.Site = e.report.Script.Site
			ev.Occ = e.report.Script.Occurrence
			ev.ScriptSeed = e.report.ScriptSeed
		case e.report.Rounds >= e.o.MaxRounds:
			ev.Reason = trace.ReasonRoundCap
		default:
			ev.Reason = trace.ReasonExhausted
		}
		if n := len(e.report.RoundLog); n > 0 {
			ev.RootRank = e.report.RoundLog[n-1].RootRank
		}
		e.emit(ev)
	}
	return e.report
}

// flatten collapses thread names for the global-diff ablation.
func (e *engine) flatten(entries []logging.Entry) []logging.Entry {
	if !e.o.GlobalDiff {
		return entries
	}
	out := make([]logging.Entry, len(entries))
	for i, en := range entries {
		en.Thread = "*"
		out[i] = en
	}
	return out
}

// setup performs workflow steps 1-2: extract relevant observables, match
// them to causal-graph templates, compute spatial distances and the
// fault-instance timeline alignment.
func (e *engine) setup(free *cluster.Result) {
	cmp := logdiff.Compare(e.flatten(free.Entries), e.flatten(e.t.FailureLog))
	e.align = logdiff.NewAlignment(cmp, len(free.Entries), len(e.t.FailureLog))

	var templates []string
	for _, l := range e.t.Analysis.Logs {
		templates = append(templates, l.Template)
	}
	matcher := analysis.NewMatcher(templates)

	for _, key := range cmp.MissingKeys() {
		e.obs = append(e.obs, &observable{
			key:       key,
			positions: cmp.Missing[key],
			templates: matcher.Match(key.Msg),
		})
	}
	e.report.RelevantObservables = len(e.obs)

	// Spatial distances L_{i,k} from the static causal graph.
	e.dist = e.t.Analysis.Graph.SiteDistances()

	// Candidate sites: causally connected to at least one relevant
	// observable AND exercised by the workload (otherwise there is no
	// instance to inject).
	relevantTemplates := map[string]bool{}
	for _, o := range e.obs {
		for _, t := range o.templates {
			relevantTemplates[t] = true
		}
	}
	bySite := map[string][]instance{}
	for _, ev := range free.Trace {
		bySite[ev.Site] = append(bySite[ev.Site], instance{
			occ:        ev.Occurrence,
			logPos:     ev.LogPos,
			alignedPos: e.align.Map(ev.LogPos),
		})
	}
	total := 0
	for siteID, dists := range e.dist {
		reachesRelevant := false
		for tmpl := range dists {
			if relevantTemplates[tmpl] {
				reachesRelevant = true
				break
			}
		}
		if !reachesRelevant {
			continue
		}
		insts := bySite[siteID]
		if len(insts) == 0 {
			continue
		}
		e.sites = append(e.sites, &siteState{id: siteID, instances: insts, tried: make(map[int]bool)})
		total += len(insts)
	}
	sort.Slice(e.sites, func(i, j int) bool { return e.sites[i].id < e.sites[j].id })
	e.siteIndex = make(map[string]*siteState, len(e.sites))
	for _, s := range e.sites {
		e.siteIndex[s.id] = s
	}
	e.report.CandidateSites = len(e.sites)
	e.report.CandidateInstances = total

	// Baked faults are part of the workload now; never re-explore them.
	for _, b := range e.baked {
		e.markTried(b)
	}

	if e.tracing() {
		obsLabels := make([]string, len(e.obs))
		for i, o := range e.obs {
			obsLabels[i] = obsLabel(o)
		}
		siteCounts := make([]trace.SiteCount, len(e.sites))
		for i, s := range e.sites {
			siteCounts[i] = trace.SiteCount{Site: s.id, Instances: len(s.instances)}
		}
		e.emit(&trace.Event{
			Type: trace.FreeRun, Target: e.t.ID, Strategy: string(e.o.Strategy),
			Seed: e.o.Seed, LogLines: len(free.Entries), Observables: obsLabels,
			Sites: siteCounts,
		})
	}
}

// computePriorities evaluates F_i = min_k (L_{i,k} + I_k) for every site
// (§5.2.4), with the distance and feedback terms toggled per strategy.
func (e *engine) computePriorities(useDistance, useFeedback bool) {
	e.sumBest = nil
	for _, s := range e.sites {
		s.f = math.Inf(1)
		s.bestObs = -1
		dists := e.dist[s.id]
		for k, o := range e.obs {
			l := math.Inf(1)
			for _, tmpl := range o.templates {
				if d, ok := dists[tmpl]; ok && float64(d) < l {
					l = float64(d)
				}
			}
			if math.IsInf(l, 1) {
				continue
			}
			val := 0.0
			if useDistance {
				val += l
			}
			if useFeedback {
				val += float64(o.priority)
			}
			if e.o.AggregateSum {
				// Ablation: sum of partial priorities instead of min. The
				// best observable is still the closest one.
				if math.IsInf(s.f, 1) {
					s.f = 0
				}
				s.f += val
				if s.bestObs < 0 || val < e.bestVal(s) {
					s.bestObs = k
					e.setBestVal(s, val)
				}
				continue
			}
			if val < s.f {
				s.f = val
				s.bestObs = k
			}
		}
	}
}

// bestVal bookkeeping for the sum-aggregation ablation: remembers the
// smallest partial priority so bestObs stays the nearest observable.
func (e *engine) bestVal(s *siteState) float64 {
	if e.sumBest == nil {
		e.sumBest = map[string]float64{}
	}
	v, ok := e.sumBest[s.id]
	if !ok {
		return math.Inf(1)
	}
	return v
}

func (e *engine) setBestVal(s *siteState, v float64) {
	if e.sumBest == nil {
		e.sumBest = map[string]float64{}
	}
	e.sumBest[s.id] = v
}

// temporalDistance computes T_{i,j,k} for an instance against the site's
// chosen observable: the number of log messages between the instance's
// aligned position and the observable on the failure timeline (§5.2.3).
func (e *engine) temporalDistance(s *siteState, inst instance) float64 {
	if s.bestObs < 0 {
		return inst.alignedPos
	}
	best := math.Inf(1)
	for _, p := range e.obs[s.bestObs].positions {
		d := math.Abs(inst.alignedPos - float64(p))
		if d < best {
			best = d
		}
	}
	return best
}

// bestUntried returns the site's highest-priority untried instance.
func (e *engine) bestUntried(s *siteState, useTemporal bool, limit int) (instance, bool) {
	bestScore := math.Inf(1)
	var best instance
	found := false
	for i, inst := range s.instances {
		if limit > 0 && i >= limit {
			break
		}
		if s.tried[inst.occ] {
			continue
		}
		score := float64(inst.occ)
		if useTemporal {
			score = e.temporalDistance(s, inst)
		}
		if score < bestScore {
			bestScore = score
			best = inst
			found = true
		}
	}
	return best, found
}

// rankedSites returns sites ordered by F ascending (name as tiebreak).
func (e *engine) rankedSites() []*siteState {
	out := make([]*siteState, len(e.sites))
	copy(out, e.sites)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].f != out[j].f {
			return out[i].f < out[j].f
		}
		return out[i].id < out[j].id
	})
	return out
}

// rootRank finds the 1-based rank of the ground-truth site, for Figure 6.
func (e *engine) rootRank(ranked []*siteState) int {
	if e.t.RootSite == "" {
		return 0
	}
	for i, s := range ranked {
		if s.id == e.t.RootSite {
			return i + 1
		}
	}
	return 0
}

// executeRound runs the workload once with the given plan and records the
// round bookkeeping. Returns the run result.
func (e *engine) executeRound(round int, plan inject.Plan, initTime time.Duration, windowSize int, rootRank int) (*cluster.Result, *Round) {
	runStart := time.Now()
	res := cluster.Execute(e.o.Seed+int64(round), e.bakedPlan(plan), false, e.t.Workload, e.t.Horizon)
	reqs, decTime := res.Env.FI.Decisions()
	rd := Round{
		N:          round,
		Satisfied:  false,
		RootRank:   rootRank,
		WindowSize: windowSize,
		InitTime:   initTime,
		RunTime:    time.Since(runStart),
		InjectReqs: reqs,
		DecideTime: decTime,
	}
	// The round's searched injection is the one that is not a baked fault.
	for _, ev := range res.Env.FI.InjectedAll() {
		if e.isBaked(ev) {
			continue
		}
		rd.Injected = &inject.Instance{Site: ev.Site, Occurrence: ev.Occurrence}
		break
	}
	return res, &rd
}

// feedbackLoop is the priority-driven exploration shared by ANDURIL and its
// ablation variants.
func (e *engine) feedbackLoop() {
	useFeedback := e.o.Strategy == FullFeedback || e.o.Strategy == SiteFeedback || e.o.Strategy == MultiplyFeedback
	useTemporal := (e.o.Strategy == FullFeedback || e.o.Strategy == MultiplyFeedback) && !e.o.TemporalByOrder
	multiply := e.o.Strategy == MultiplyFeedback
	limit := 0
	if e.o.Strategy == SiteDistanceLimit || e.o.Strategy == SiteFeedback {
		limit = e.o.InstanceLimit
	}

	window := e.o.Window
	for round := 1; round <= e.o.MaxRounds; round++ {
		initStart := time.Now()
		e.computePriorities(true, useFeedback)
		ranked := e.rankedSites()
		rootRank := 0
		if e.o.TrackRank {
			rootRank = e.rootRank(ranked)
		}

		if e.tracing() {
			rank := rootRank
			if !e.o.TrackRank {
				rank = e.rootRank(ranked)
			}
			top := ranked
			if len(top) > trace.TopK {
				top = top[:trace.TopK]
			}
			snap := make([]trace.SiteRank, len(top))
			for i, s := range top {
				sr := trace.SiteRank{Site: s.id, F: trace.Float(s.f), Tried: len(s.tried)}
				if s.bestObs >= 0 {
					sr.BestObs = obsLabel(e.obs[s.bestObs])
				}
				snap[i] = sr
			}
			e.emit(&trace.Event{
				Type: trace.RoundStart, Round: round, Window: window,
				RootRank: rank, Top: snap,
			})
		}

		var candidates []inject.Instance
		if multiply {
			candidates = e.multiplyCandidates(ranked, window)
		} else {
			for _, s := range ranked {
				if len(candidates) >= window {
					break
				}
				if inst, ok := e.bestUntried(s, useTemporal, limit); ok {
					candidates = append(candidates, inject.Instance{Site: s.id, Occurrence: inst.occ})
				}
			}
		}
		if len(candidates) == 0 {
			return // fault space exhausted: cannot reproduce (step 5)
		}
		initTime := time.Since(initStart)
		e.traceDecision(round, window, candidates)

		res, rd := e.executeRound(round, inject.Window(candidates), initTime, window, rootRank)
		if rd.Injected == nil {
			// Nothing in the window occurred this round: widen it (§5.2.5).
			grown := e.growWindow(window)
			if e.tracing() {
				e.emit(&trace.Event{
					Type: trace.WindowGrow, Round: round, From: window, To: grown,
					Clamped: !e.o.FixedWindow && grown < window*2,
				})
			}
			window = grown
			e.report.RoundLog = append(e.report.RoundLog, *rd)
			e.report.Rounds = round
			continue
		}
		e.markTried(*rd.Injected)

		if e.t.Oracle.Satisfied(res) {
			e.traceInjected(round, *rd.Injected, true)
			rd.Satisfied = true
			e.report.RoundLog = append(e.report.RoundLog, *rd)
			e.report.Rounds = round
			e.report.Reproduced = true
			e.report.Script = rd.Injected
			e.report.ScriptSeed = e.o.Seed + int64(round)
			return
		}

		// Combined-log mitigation (§6): re-run the same injection under
		// extra seeds; crucial observables missing only probabilistically
		// then show up in at least one of the runs.
		results := []*cluster.Result{res}
		for extra := 1; extra < e.o.RunsPerRound; extra++ {
			seed := e.o.Seed + int64(e.o.MaxRounds) + int64(round*e.o.RunsPerRound+extra)
			res2 := cluster.Execute(seed, e.bakedPlan(inject.Exact(*rd.Injected)), false, e.t.Workload, e.t.Horizon)
			if e.t.Oracle.Satisfied(res2) {
				e.traceInjected(round, *rd.Injected, true)
				rd.Satisfied = true
				e.report.RoundLog = append(e.report.RoundLog, *rd)
				e.report.Rounds = round
				e.report.Reproduced = true
				e.report.Script = rd.Injected
				e.report.ScriptSeed = seed
				return
			}
			results = append(results, res2)
		}
		e.traceInjected(round, *rd.Injected, false)

		missing := e.missingIn(results)
		missingCount := 0
		var bumped []trace.ObsPriority
		for i, still := range missing {
			if still {
				missingCount++
			} else if useFeedback {
				e.obs[i].priority += e.o.Adjust
				if e.tracing() {
					bumped = append(bumped, trace.ObsPriority{
						Obs: obsLabel(e.obs[i]), Priority: e.obs[i].priority,
					})
				}
			}
		}
		rd.MissingObs = missingCount
		e.traceFeedback(round, missingCount, bumped, useFeedback)
		if e.report.BestPartial == nil || missingCount < e.report.BestPartialMissing {
			e.report.BestPartial = rd.Injected
			e.report.BestPartialMissing = missingCount
		}
		e.report.RoundLog = append(e.report.RoundLog, *rd)
		e.report.Rounds = round
	}
}

// traceDecision records the candidate window handed to the runtime: the
// first trace.MaxCandidates members, the full count, and the injection
// budget (1 searched fault plus any baked ones).
func (e *engine) traceDecision(round, window int, candidates []inject.Instance) {
	if !e.tracing() {
		return
	}
	list := candidates
	if len(list) > trace.MaxCandidates {
		list = list[:trace.MaxCandidates]
	}
	cs := make([]trace.Candidate, len(list))
	for i, c := range list {
		cs[i] = trace.Candidate{Site: c.Site, Occ: c.Occurrence}
	}
	e.emit(&trace.Event{
		Type: trace.Decision, Round: round, Window: window,
		Candidates: cs, CandidateCount: len(candidates), Budget: 1 + len(e.baked),
	})
}

// traceFeedback records an Algorithm 2 update: the observables whose I_k
// was adjusted and the resulting F_i deltas. The deltas need next round's
// priorities; recomputing them here is idempotent (the next round's
// computePriorities produces the same values) and only happens when a
// sink is attached.
func (e *engine) traceFeedback(round, missing int, bumped []trace.ObsPriority, useFeedback bool) {
	if !e.tracing() {
		return
	}
	ev := &trace.Event{Type: trace.Feedback, Round: round, Missing: missing, Bumped: bumped}
	if useFeedback && len(bumped) > 0 {
		before := make(map[string]float64, len(e.sites))
		for _, s := range e.sites {
			before[s.id] = s.f
		}
		e.computePriorities(true, useFeedback)
		for _, s := range e.sites {
			if s.f != before[s.id] {
				ev.Deltas = append(ev.Deltas, trace.SiteDelta{
					Site: s.id, Before: trace.Float(before[s.id]), After: trace.Float(s.f),
				})
			}
		}
	}
	e.emit(ev)
}

// growWindow doubles the flexible window (§5.2.5), clamped to the total
// candidate-instance count: a window wider than the whole fault space
// selects nothing extra, and unclamped doubling overflows int after ~62
// consecutive no-injection rounds — the window goes non-positive, the
// candidate loop selects nothing, and the search falsely reports the
// fault space exhausted.
func (e *engine) growWindow(window int) int {
	if e.o.FixedWindow {
		return window
	}
	max := e.report.CandidateInstances
	if max < 1 {
		max = 1
	}
	if window >= max {
		return max
	}
	window *= 2
	if window > max || window <= 0 {
		window = max
	}
	return window
}

// missingIn reports, per relevant observable, whether it is missing from
// ALL of the given run logs (Algorithm 2's COMPARE over combined logs).
func (e *engine) missingIn(results []*cluster.Result) []bool {
	miss := make([]bool, len(e.obs))
	for i := range miss {
		miss[i] = true
	}
	for _, res := range results {
		m := logdiff.Compare(e.flatten(res.Entries), e.flatten(e.t.FailureLog)).Missing
		for i, o := range e.obs {
			if _, still := m[o.key]; !still {
				miss[i] = false
			}
		}
	}
	return miss
}

// multiplyCandidates ranks all untried (site, instance) pairs by the
// product (F_i+1) x (T_{i,j}+1) — the §8.3 "multiply feedback" variant that
// replaces the two-level selection.
func (e *engine) multiplyCandidates(ranked []*siteState, window int) []inject.Instance {
	type pair struct {
		inst  inject.Instance
		score float64
	}
	var pairs []pair
	for _, s := range ranked {
		if math.IsInf(s.f, 1) {
			continue
		}
		for _, inst := range s.instances {
			if s.tried[inst.occ] {
				continue
			}
			t := e.temporalDistance(s, inst)
			pairs = append(pairs, pair{
				inst:  inject.Instance{Site: s.id, Occurrence: inst.occ},
				score: (s.f + 1) * (t + 1),
			})
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool {
		if pairs[i].score != pairs[j].score {
			return pairs[i].score < pairs[j].score
		}
		if pairs[i].inst.Site != pairs[j].inst.Site {
			return pairs[i].inst.Site < pairs[j].inst.Site
		}
		return pairs[i].inst.Occurrence < pairs[j].inst.Occurrence
	})
	if len(pairs) > window {
		pairs = pairs[:window]
	}
	out := make([]inject.Instance, len(pairs))
	for i, p := range pairs {
		out[i] = p.inst
	}
	return out
}

func (e *engine) markTried(inst inject.Instance) {
	if s, ok := e.siteIndex[inst.Site]; ok {
		s.tried[inst.Occurrence] = true
	}
}
