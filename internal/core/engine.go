package core

import (
	"time"

	"anduril/internal/cluster"
	"anduril/internal/inject"
	"anduril/internal/logdiff"
	"anduril/internal/trace"
)

// observable is one relevant observable o_k (§5.1): a log message that only
// appears in the failure log, with its positions on the failure timeline,
// its matching static templates, and its feedback priority I_k.
type observable struct {
	key       logdiff.Key
	positions []int
	templates []string
	priority  int
}

// instance is one dynamic fault candidate f_{i,j} from the free run.
type instance struct {
	occ        int
	logPos     int
	alignedPos float64 // position mapped onto the failure-log timeline
}

// siteState is the explorer's view of one static fault site f_i.
type siteState struct {
	id        string
	instances []instance
	tried     map[int]bool

	f       float64 // current priority F_i (smaller = higher priority)
	bestObs int     // index of the observable realizing F_i
}

// engine holds all mutable search state for one Reproduce call. A fresh
// engine is built per call and never shared, so concurrent Reproduce runs
// are independent as long as they treat the (possibly shared) Target as
// read-only — which every method here does: the engine only ever reads
// t.FailureLog, t.Analysis, t.Oracle and t.Workload, and all derived
// state (observables, site states, distance tables) lives on the engine.
//
// The search itself is split across phase files: setup.go (observable
// extraction and candidate discovery), ranking.go (site priorities and the
// incremental priority index), selection.go (instance selection and the
// flexible window), feedback.go (the Algorithm 2 loop), and strategies.go
// (the strategy registry and the enumerative baselines).
type engine struct {
	t *Target
	o Options

	obs       []*observable
	sites     []*siteState
	siteIndex map[string]*siteState // id -> state, for O(1) markTried
	dist      map[string]map[string]int
	align     *logdiff.Alignment

	sumBest map[string]float64 // sum-aggregation ablation bookkeeping

	// baked faults are injected in every run of this pass (iterative
	// multi-fault reproduction); the search explores candidates on top.
	baked []inject.Instance

	report *Report
}

func newEngine(t *Target, o Options) *engine {
	return &engine{t: t, o: o, report: &Report{
		Target: t.ID, Issue: t.Issue, Strategy: o.Strategy,
	}}
}

// tracing reports whether a trace sink is attached. Every emission below
// is guarded by it, so a disabled trace builds no events and allocates
// nothing on the search path.
func (e *engine) tracing() bool { return e.o.Trace != nil }

func (e *engine) emit(ev *trace.Event) { e.o.Trace.Emit(ev) }

// obsLabel renders an observable's identity for trace events.
func obsLabel(o *observable) string { return o.key.Thread + ": " + o.key.Msg }

// traceInjected records the reach at which a round's fault fired.
func (e *engine) traceInjected(round int, inst inject.Instance, satisfied bool) {
	if !e.tracing() {
		return
	}
	e.emit(&trace.Event{
		Type: trace.Injected, Round: round,
		Site: inst.Site, Occ: inst.Occurrence, Satisfied: satisfied,
	})
}

// traceDecision records the candidate window handed to the runtime: the
// first trace.MaxCandidates members, the full count, and the injection
// budget (1 searched fault plus any baked ones).
func (e *engine) traceDecision(round, window int, candidates []inject.Instance) {
	if !e.tracing() {
		return
	}
	list := candidates
	if len(list) > trace.MaxCandidates {
		list = list[:trace.MaxCandidates]
	}
	cs := make([]trace.Candidate, len(list))
	for i, c := range list {
		cs[i] = trace.Candidate{Site: c.Site, Occ: c.Occurrence}
	}
	e.emit(&trace.Event{
		Type: trace.Decision, Round: round, Window: window,
		Candidates: cs, CandidateCount: len(candidates), Budget: 1 + len(e.baked),
	})
}

// bakedPlan returns the plan injecting the baked faults (nil when none).
func (e *engine) bakedPlan(extra inject.Plan) inject.Plan {
	if len(e.baked) == 0 {
		return extra
	}
	plans := make([]inject.Plan, 0, len(e.baked)+1)
	for _, b := range e.baked {
		plans = append(plans, inject.Exact(b))
	}
	if extra != nil {
		plans = append(plans, extra)
	}
	return inject.Multi(plans...)
}

// isBaked reports whether an injected event is one of the baked faults.
func (e *engine) isBaked(ev inject.TraceEvent) bool {
	for _, b := range e.baked {
		if b.Site == ev.Site && b.Occurrence == ev.Occurrence {
			return true
		}
	}
	return false
}

// run executes the whole workflow: free run, setup, then the strategy
// resolved from the registry. An unregistered strategy explores nothing
// and reports the fault space exhausted after zero rounds (callers are
// expected to validate names against Strategies() up front).
func (e *engine) run() *Report {
	start := time.Now()
	freeStart := time.Now()
	free := cluster.Execute(e.o.Seed, e.bakedPlan(nil), true, e.t.Workload, e.t.Horizon)
	e.report.FreeRunTime = time.Since(freeStart)
	e.report.FreeRunLogLines = len(free.Entries)

	e.setup(free)

	if impl, ok := lookupStrategy(e.o.Strategy); ok {
		impl.Explore(&Search{e: e, free: free})
	}
	e.report.Elapsed = time.Since(start)

	if e.tracing() {
		ev := &trace.Event{
			Type: trace.Outcome, Reproduced: e.report.Reproduced,
			Rounds: e.report.Rounds,
		}
		switch {
		case e.report.Reproduced:
			ev.Reason = trace.ReasonReproduced
			ev.Site = e.report.Script.Site
			ev.Occ = e.report.Script.Occurrence
			ev.ScriptSeed = e.report.ScriptSeed
		case e.report.Rounds >= e.o.MaxRounds:
			ev.Reason = trace.ReasonRoundCap
		default:
			ev.Reason = trace.ReasonExhausted
		}
		if n := len(e.report.RoundLog); n > 0 {
			ev.RootRank = e.report.RoundLog[n-1].RootRank
		}
		e.emit(ev)
	}
	return e.report
}

// executeRound runs the workload once with the given plan and records the
// round bookkeeping. Returns the run result.
func (e *engine) executeRound(round int, plan inject.Plan, initTime time.Duration, windowSize int, rootRank int) (*cluster.Result, *Round) {
	runStart := time.Now()
	res := cluster.Execute(e.o.Seed+int64(round), e.bakedPlan(plan), false, e.t.Workload, e.t.Horizon)
	reqs, decTime := res.Env.FI.Decisions()
	rd := Round{
		N:          round,
		Satisfied:  false,
		RootRank:   rootRank,
		WindowSize: windowSize,
		InitTime:   initTime,
		RunTime:    time.Since(runStart),
		InjectReqs: reqs,
		DecideTime: decTime,
	}
	// The round's searched injection is the one that is not a baked fault.
	for _, ev := range res.Env.FI.InjectedAll() {
		if e.isBaked(ev) {
			continue
		}
		rd.Injected = &inject.Instance{Site: ev.Site, Occurrence: ev.Occurrence}
		break
	}
	return res, &rd
}

func (e *engine) markTried(inst inject.Instance) {
	if s, ok := e.siteIndex[inst.Site]; ok {
		s.tried[inst.Occurrence] = true
	}
}
