package core_test

// End-to-end regressions for the combined-fault scenarios (f30–f31): the
// pair fault class reproduces them through the ordinary feedback loop,
// the search trace is byte-identical across runs and pinned by goldens,
// and the reproduction script replays deterministically through Verify.
//
// Regenerate the pair trace goldens after an intentional change with:
//
//	go test ./internal/core -run TestPairGoldenTraces -update

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"anduril/internal/core"
	"anduril/internal/failures"
	"anduril/internal/inject"
	"anduril/internal/trace"
)

var pairIDs = []string{"f30", "f31"}

// TestPairScenariosReproduceEndToEnd: the full feedback workflow finds
// the declared ground-truth pair for every combined-fault scenario, the
// script decomposes into two members, and Verify replays it.
func TestPairScenariosReproduceEndToEnd(t *testing.T) {
	for _, id := range pairIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			sc, ok := failures.ByID(id)
			if !ok {
				t.Fatalf("scenario %s not registered", id)
			}
			tgt, err := sc.BuildTarget()
			if err != nil {
				t.Fatal(err)
			}
			rep := core.Reproduce(tgt, core.Options{Seed: 1, MaxRounds: 500})
			if !rep.Reproduced {
				t.Fatalf("%s not reproduced in %d rounds", id, rep.Rounds)
			}
			if rep.Script.Site != sc.RootSite {
				t.Fatalf("%s reproduced via %v, ground truth %s", id, *rep.Script, sc.RootSite)
			}
			if _, _, ok := inject.PairMembers(*rep.Script); !ok {
				t.Fatalf("%s: script %v does not decompose into pair members", id, *rep.Script)
			}
			if !core.Verify(tgt, *rep.Script, rep.ScriptSeed) {
				t.Fatalf("%s: script %v does not verify", id, *rep.Script)
			}
		})
	}
}

// pairTrace runs one pair scenario's reproduction with a trace sink.
func pairTrace(t *testing.T, id string) []byte {
	t.Helper()
	sc, _ := failures.ByID(id)
	tgt, err := sc.BuildTarget()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := trace.NewWriter(&buf)
	rep := core.Reproduce(tgt, core.Options{Seed: 1, MaxRounds: 500, Trace: sink})
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	if !rep.Reproduced {
		t.Fatalf("%s not reproduced in %d rounds", id, rep.Rounds)
	}
	return buf.Bytes()
}

// TestPairGoldenTraces pins the full search trajectory of each pair
// scenario; TestPairTraceDeterministic proves a second in-process run
// emits the identical byte stream.
func TestPairGoldenTraces(t *testing.T) {
	for _, id := range pairIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			got := pairTrace(t, id)
			path := fmt.Sprintf("testdata/%s.trace.jsonl", id)
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("golden trace updated: %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden trace (run with -update to create it): %v", err)
			}
			if bytes.Equal(got, want) {
				return
			}
			gotEv, gerr := trace.ReadAll(bytes.NewReader(got))
			wantEv, werr := trace.ReadAll(bytes.NewReader(want))
			if gerr != nil || werr != nil {
				t.Fatalf("trace differs from golden and does not decode: got err %v, want err %v", gerr, werr)
			}
			for _, d := range trace.Diff(wantEv, gotEv, 10) {
				t.Error(d)
			}
			t.Fatalf("trace differs from %s (%d vs %d events); rerun with -update if intentional",
				path, len(gotEv), len(wantEv))
		})
	}
}

func TestPairTraceDeterministic(t *testing.T) {
	for _, id := range pairIDs {
		a := pairTrace(t, id)
		b := pairTrace(t, id)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: two runs produced different traces", id)
		}
	}
}
